(** Swiss-army tool for the Wasm substrate: validate, run, and dump
    binaries produced by this project (or any MVP binary).

      wasm_tool validate file.wasm
      wasm_tool run file.wasm --invoke run [--arg i32:3 ...]
      wasm_tool wat file.wasm
      wasm_tool info file.wasm
*)

open Cmdliner

let read_module path =
  let ic = open_in_bin path in
  let bin =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Wasm.Decode.decode bin

(* Taxonomy failures become a one-line message and a per-phase exit code
   (decode 3, validate 4, link 5, trap 6, exhaustion 7); anything else is
   a genuine bug and keeps its backtrace. *)
let structured f =
  try f () with
  | e ->
    (match Wasm.Error.classify e with
     | Some err ->
       Printf.eprintf "wasm_tool: %s\n" (Wasm.Error.to_string err);
       exit (Wasm.Error.exit_code err)
     | None -> raise e)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")

let parse_value s =
  match String.index_opt s ':' with
  | None -> Wasm.Value.I32 (Int32.of_string s)
  | Some k ->
    let ty = String.sub s 0 k in
    let rest = String.sub s (k + 1) (String.length s - k - 1) in
    (match ty with
     | "i32" -> Wasm.Value.I32 (Int32.of_string rest)
     | "i64" -> Wasm.Value.I64 (Int64.of_string rest)
     | "f32" -> Wasm.Value.f32 (float_of_string rest)
     | "f64" -> Wasm.Value.F64 (float_of_string rest)
     | _ -> invalid_arg ("unknown value type " ^ ty))

let validate_cmd =
  let run input =
    structured (fun () ->
      Wasm.Validate.validate_module (read_module input);
      print_endline "valid")
  in
  Cmd.v (Cmd.info "validate" ~doc:"Type check a binary") Term.(const run $ input_arg)

let run_cmd =
  let invoke_arg =
    Arg.(value & opt string "run" & info [ "invoke" ] ~docv:"EXPORT" ~doc:"Export to call")
  in
  let args_arg =
    Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"TY:VALUE" ~doc:"Argument (repeatable)")
  in
  let fuel_arg =
    Arg.(value & opt int max_int & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget")
  in
  let run input invoke args fuel =
    structured (fun () ->
      let m = read_module input in
      Wasm.Validate.validate_module m;
      let inst = Wasm.Interp.instantiate ~fuel ~imports:[] m in
      let values = List.map parse_value args in
      let results = Wasm.Interp.invoke_export inst invoke values in
      Printf.printf "[%s]\n" (String.concat "; " (List.map Wasm.Value.to_string results));
      Printf.printf "(%d instructions executed)\n" inst.Wasm.Interp.steps)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Instantiate a binary and call an export")
    Term.(const run $ input_arg $ invoke_arg $ args_arg $ fuel_arg)

let wat_cmd =
  let run input = structured (fun () -> print_string (Wasm.Wat.to_string (read_module input))) in
  Cmd.v (Cmd.info "wat" ~doc:"Print the text format") Term.(const run $ input_arg)

let compile_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT.wasm" ~doc:"Output path")
  in
  let run input output =
    structured (fun () ->
      let ic = open_in input in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let m = Wasm.Wat_parse.parse src in
      Wasm.Validate.validate_module m;
      let out =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension input ^ ".wasm"
      in
      let oc = open_out_bin out in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Wasm.Encode.encode m));
      Printf.printf "wrote %s (%d B)\n" out (Wasm.Encode.size m))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Assemble a text-format module to binary (wat -> wasm)")
    Term.(const run $ input_arg $ output)

let info_cmd =
  let run input =
    structured @@ fun () ->
    let m = read_module input in
    let open Wasm.Ast in
    Printf.printf "types:     %d\n" (List.length m.types);
    Printf.printf "imports:   %d (%d functions)\n" (List.length m.imports) (num_imported_funcs m);
    Printf.printf "functions: %d defined\n" (List.length m.funcs);
    Printf.printf "instrs:    %d\n" (instruction_count m);
    Printf.printf "tables:    %d, memories: %d, globals: %d\n" (List.length m.tables)
      (List.length m.memories) (List.length m.globals);
    Printf.printf "exports:   %s\n"
      (String.concat ", " (List.map (fun (e : export) -> e.name) m.exports));
    Printf.printf "start:     %s\n"
      (match m.start with None -> "-" | Some f -> string_of_int f)
  in
  Cmd.v (Cmd.info "info" ~doc:"Summarise a binary") Term.(const run $ input_arg)

let () =
  let info = Cmd.info "wasm_tool" ~version:"1.0.0" ~doc:"WebAssembly substrate tool" in
  exit (Cmd.eval (Cmd.group info [ validate_cmd; run_cmd; wat_cmd; compile_cmd; info_cmd ]))
