(** The [wasabi] command-line tool: instrument a WebAssembly binary on
    disk, selecting hooks as the original tool does, and optionally run an
    exported function under one of the bundled analyses.

      wasabi instrument input.wasm -o output.wasm --hooks binary,call
      wasabi analyze input.wasm --analysis cryptominer --invoke run
      wasabi callgraph input.wasm --dot -o input.dot
      wasabi lint input.wasm --selective
      wasabi fuzz --seed 42 --gen 2000 --mut 2000
      wasabi hooks

    Structured pipeline failures exit with distinct codes and a one-line
    message (decode 3, validate 4, link 5, trap 6, exhaustion 7) instead
    of an uncaught-exception backtrace; lint soundness errors exit 8.
*)

open Cmdliner
module W = Wasabi

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let read_module path = Wasm.Decode.decode (read_file path)
let write_module path m = write_file path (Wasm.Encode.encode m)

(** Run a subcommand body under the structured-error boundary: taxonomy
    failures become one-line messages with their distinct exit code. *)
let structured f =
  try f () with
  | e ->
    (match Wasm.Error.classify e with
     | Some err ->
       Printf.eprintf "wasabi: %s\n" (Wasm.Error.to_string err);
       exit (Wasm.Error.exit_code err)
     | None -> raise e)

let parse_groups = function
  | None | Some "all" -> W.Hook.all
  | Some s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.map W.Hook.group_of_name
    |> W.Hook.of_list

let hooks_arg =
  let doc = "Comma-separated hook groups to instrument (default: all). See $(b,wasabi hooks)." in
  Arg.(value & opt (some string) None & info [ "hooks" ] ~docv:"GROUPS" ~doc)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")

(* --- instrument ------------------------------------------------------ *)

let instrument_cmd =
  let output =
    Arg.(value & opt string "out.wasm" & info [ "o"; "output" ] ~docv:"OUTPUT" ~doc:"Output path")
  in
  let selective =
    Arg.(value & flag
         & info [ "selective" ]
             ~doc:"Leave functions unreachable from any export/start root uninstrumented \
                   (static call-graph pruning; skipped indices are recorded in the metadata)")
  in
  let run input output hooks selective =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let groups = parse_groups hooks in
    let t0 = Sys.time () in
    let res = W.Instrument.instrument ~groups ~prune_unreachable:selective m in
    let dt = Sys.time () -. t0 in
    write_module output res.W.Instrument.instrumented;
    let meta = res.W.Instrument.metadata in
    Printf.printf "instrumented %s -> %s in %.1f ms\n" input output (dt *. 1000.0);
    Printf.printf "  %d low-level hooks generated on demand (import module %S)\n"
      meta.W.Metadata.num_hooks W.Hook.import_module;
    (match meta.W.Metadata.pruned_funcs with
     | [] -> ()
     | pruned ->
       Printf.printf "  %d statically-unreachable function%s left uninstrumented\n"
         (List.length pruned)
         (if List.length pruned = 1 then "" else "s"));
    Printf.printf "  original %d B, instrumented %d B\n"
      (String.length (Wasm.Encode.encode m))
      (String.length (Wasm.Encode.encode res.W.Instrument.instrumented))
  in
  let info = Cmd.info "instrument" ~doc:"Insert analysis hook calls into a Wasm binary" in
  Cmd.v info Term.(const run $ input_arg $ output $ hooks_arg $ selective)

(* --- analyze --------------------------------------------------------- *)

type packaged_analysis =
  | Packaged : {
      groups : W.Hook.Group_set.t;
      state : 'st;
      analysis : 'st -> W.Analysis.t;
      report : 'st -> string;
    } -> packaged_analysis

let bundled_analyses () =
  [ ("instruction-mix",
     Packaged { groups = Analyses.Instruction_mix.groups;
                state = Analyses.Instruction_mix.create ();
                analysis = Analyses.Instruction_mix.analysis;
                report = Analyses.Instruction_mix.report });
    ("basic-blocks",
     Packaged { groups = Analyses.Basic_block_profiling.groups;
                state = Analyses.Basic_block_profiling.create ();
                analysis = Analyses.Basic_block_profiling.analysis;
                report = Analyses.Basic_block_profiling.report ~limit:10 });
    ("coverage",
     Packaged { groups = Analyses.Branch_coverage.groups;
                state = Analyses.Branch_coverage.create ();
                analysis = Analyses.Branch_coverage.analysis;
                report = Analyses.Branch_coverage.report });
    ("call-graph",
     Packaged { groups = Analyses.Call_graph.groups;
                state = Analyses.Call_graph.create ();
                analysis = Analyses.Call_graph.analysis;
                report = Analyses.Call_graph.to_dot ?name:None });
    ("cryptominer",
     Packaged { groups = Analyses.Cryptominer.groups;
                state = Analyses.Cryptominer.create ();
                analysis = Analyses.Cryptominer.analysis;
                report = Analyses.Cryptominer.report });
    ("memory-trace",
     Packaged { groups = Analyses.Memory_tracing.groups;
                state = Analyses.Memory_tracing.create ();
                analysis = Analyses.Memory_tracing.analysis;
                report = Analyses.Memory_tracing.report });
    ("taint",
     Packaged { groups = Analyses.Taint.groups;
                state = Analyses.Taint.create ();
                analysis = Analyses.Taint.analysis;
                report = Analyses.Taint.report });
    ("trace",
     Packaged { groups = Analyses.Trace.groups;
                state = Analyses.Trace.create ();
                analysis = Analyses.Trace.analysis;
                report = (fun t -> Analyses.Trace.report t ^ Analyses.Trace.to_log t ^ "\n") }) ]

let analyze_cmd =
  let analysis_arg =
    let doc = "Bundled analysis to run (instruction-mix, basic-blocks, coverage, call-graph, cryptominer, memory-trace, taint)" in
    Arg.(value & opt string "instruction-mix" & info [ "analysis" ] ~docv:"NAME" ~doc)
  in
  let invoke_arg =
    Arg.(value & opt string "run" & info [ "invoke" ] ~docv:"EXPORT" ~doc:"Exported function to call")
  in
  let run input analysis_name invoke =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    match List.assoc_opt analysis_name (bundled_analyses ()) with
    | None ->
      Printf.eprintf "unknown analysis %S\n" analysis_name;
      exit 2
    | Some (Packaged a) ->
      let res = W.Instrument.instrument ~groups:a.groups m in
      let inst, _ = W.Runtime.instantiate res (a.analysis a.state) in
      let results = Wasm.Interp.invoke_export inst invoke [] in
      Printf.printf "%s returned [%s]\n" invoke
        (String.concat "; " (List.map Wasm.Value.to_string results));
      print_string (a.report a.state)
  in
  let info = Cmd.info "analyze" ~doc:"Instrument, run, and report a bundled dynamic analysis" in
  Cmd.v info Term.(const run $ input_arg $ analysis_arg $ invoke_arg)

(* --- generate-js ------------------------------------------------------ *)

let generate_js_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUTPUT.js"
           ~doc:"Output path (default: INPUT.wasabi.js)")
  in
  let run input output hooks =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let groups = parse_groups hooks in
    let res = W.Instrument.instrument ~groups m in
    let js = W.Js_codegen.generate res in
    let out_wasm = Filename.remove_extension input ^ ".instrumented.wasm" in
    let out_js =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension input ^ ".wasabi.js"
    in
    write_module out_wasm res.W.Instrument.instrumented;
    write_file out_js js;
    Printf.printf "wrote %s and %s\n" out_wasm out_js;
    Printf.printf "load the instrumented binary with importObject {%S: Wasabi.lowlevelHooks}\n"
      W.Hook.import_module
  in
  let info =
    Cmd.info "generate-js"
      ~doc:"Instrument a binary and emit the companion JavaScript runtime for browser hosts"
  in
  Cmd.v info Term.(const run $ input_arg $ output $ hooks_arg)

(* --- hooks ----------------------------------------------------------- *)

let hooks_cmd =
  let run () =
    print_endline "hook groups (selective instrumentation units):";
    List.iter (fun g -> Printf.printf "  %s\n" (W.Hook.group_name g)) W.Hook.all_groups
  in
  let info = Cmd.info "hooks" ~doc:"List the available hook groups" in
  Cmd.v info Term.(const run $ const ())

(* --- callgraph ------------------------------------------------------- *)

let callgraph_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT instead of the text rendering")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  let no_tighten_arg =
    Arg.(value & flag
         & info [ "no-tighten" ]
             ~doc:"Skip the constant-stack analysis that resolves constant-index indirect \
                   calls exactly (faster, coarser)")
  in
  let run input dot out no_tighten =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let cg = Static.Callgraph.build ~tighten:(not no_tighten) m in
    let text =
      if dot then Static.Callgraph.to_dot cg
      else begin
        let name i =
          match Static.Callgraph.func_name cg i with
          | Some n -> Printf.sprintf "f%d (%s)" i n
          | None -> Printf.sprintf "f%d" i
        in
        let indirect = Static.Callgraph.indirect_edges cg in
        let edge_lines =
          List.map
            (fun (a, b) ->
               Printf.sprintf "  %s -> %s%s" (name a) (name b)
                 (if List.mem (a, b) indirect then "  [indirect]" else ""))
            (Static.Callgraph.edges cg)
        in
        let dead_line =
          match Static.Callgraph.dead_functions cg with
          | [] -> []
          | dead -> [ "unreachable: " ^ String.concat ", " (List.map name dead) ]
        in
        String.concat "\n" ((Static.Callgraph.summary cg :: edge_lines) @ dead_line) ^ "\n"
      end
    in
    match out with
    | Some path ->
      write_file path text;
      Printf.printf "wrote %s\n" path
    | None -> print_string text
  in
  let info =
    Cmd.info "callgraph"
      ~doc:"Static call graph: direct and type/table-resolved indirect edges, export-rooted \
            reachability, unreachable-function report"
  in
  Cmd.v info Term.(const run $ input_arg $ dot_arg $ out_arg $ no_tighten_arg)

(* --- lint ------------------------------------------------------------ *)

(** Distinct from the taxonomy codes (3..7): the pipeline succeeded but
    the instrumented module failed soundness verification. *)
let lint_exit_code = 8

let lint_cmd =
  let input_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")
  in
  let selective_arg =
    Arg.(value & flag
         & info [ "selective" ] ~doc:"Instrument with static call-graph pruning before linting")
  in
  let corpus_arg =
    Arg.(value & flag
         & info [ "corpus" ]
             ~doc:"Lint every workload of the built-in benchmark corpus instead of a file")
  in
  let fuzz_arg =
    Arg.(value & opt (some int) None
         & info [ "fuzz" ] ~docv:"N"
             ~doc:"Lint N fixed-seed generated modules (full and pruned instrumentation) \
                   instead of a file")
  in
  let seed_arg =
    Arg.(value & opt int Fuzz.Harness.default_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for --fuzz module generation")
  in
  let run input hooks selective corpus fuzz seed =
    structured @@ fun () ->
    let groups = parse_groups hooks in
    let errors = ref 0 in
    let lint_one label m =
      Wasm.Validate.validate_module m;
      let res = W.Instrument.instrument ~groups ~prune_unreachable:selective m in
      match Lint.check res with
      | [] -> Printf.printf "%s: clean\n" label
      | findings ->
        List.iter (fun f -> Printf.printf "%s: %s\n" label (Lint.to_string f)) findings;
        errors := !errors + List.length (Lint.errors findings)
    in
    (match corpus, fuzz, input with
     | true, _, _ ->
       List.iter
         (fun (e : Workloads.Corpus.entry) -> lint_one e.name e.module_)
         (Workloads.Corpus.make ())
     | false, Some n, _ ->
       for index = 0 to n - 1 do
         let info = Fuzz.Harness.gen_case ~seed ~index in
         (match Fuzz.Oracle.lint_instrumented info.Fuzz.Gen.module_ with
          | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
          | Fuzz.Oracle.Violation { kind; detail } ->
            incr errors;
            Printf.printf "gen case %d (seed %d): [%s] %s\n" index seed kind detail);
         if (index + 1) mod 500 = 0 then Printf.eprintf "lint: %d/%d\n%!" (index + 1) n
       done;
       Printf.printf "linted %d generated modules (seed %d): %d violation%s\n" n seed !errors
         (if !errors = 1 then "" else "s")
     | false, None, Some path -> lint_one path (read_module path)
     | false, None, None ->
       Printf.eprintf "wasabi lint: need INPUT.wasm, --corpus, or --fuzz N\n";
       exit 2);
    if !errors > 0 then exit lint_exit_code
  in
  let info =
    Cmd.info "lint"
      ~doc:"Instrument and statically verify instrumentation soundness (original \
            instructions preserved in order and stack shape, hook imports match their \
            specs, sections unchanged up to remapping); soundness errors exit 8"
  in
  Cmd.v info
    Term.(const run $ input_opt $ hooks_arg $ selective_arg $ corpus_arg $ fuzz_arg $ seed_arg)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int Fuzz.Harness.default_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; every case replays from (seed, index)")
  in
  let gen_arg =
    Arg.(value & opt int 5000 & info [ "gen" ] ~docv:"N" ~doc:"Number of generated-module cases")
  in
  let mut_arg =
    Arg.(value & opt int 5000 & info [ "mut" ] ~docv:"N" ~doc:"Number of mutated-binary cases")
  in
  let out_arg =
    Arg.(value & opt string "fuzz-out"
         & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Directory for failing inputs (original + minimized)")
  in
  let replay_arg =
    let doc = "Replay a single case instead of running a campaign: $(docv) is gen:INDEX or mut:INDEX." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"CASE" ~doc)
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output")
  in
  let run seed gen mut out replay quiet =
    match replay with
    | Some spec ->
      let case, index =
        match String.split_on_char ':' spec with
        | [ "gen"; i ] -> (Fuzz.Harness.Generated, int_of_string i)
        | [ "mut"; i ] -> (Fuzz.Harness.Mutated, int_of_string i)
        | _ ->
          Printf.eprintf "bad --replay spec %S (expected gen:INDEX or mut:INDEX)\n" spec;
          exit 2
      in
      let disposition = Fuzz.Harness.replay ~seed ~index case in
      Printf.printf "seed %d, %s case %d: %s\n" seed
        (match case with Fuzz.Harness.Generated -> "generated" | Fuzz.Harness.Mutated -> "mutated")
        index disposition;
      if String.length disposition >= 4 && String.sub disposition 0 4 = "FAIL" then exit 1
    | None ->
      let log = if quiet then fun _ -> () else fun s -> Printf.eprintf "%s\n%!" s in
      let stats, failures =
        Fuzz.Harness.run ~log ~out_dir:out ~seed ~gen_count:gen ~mut_count:mut ()
      in
      Printf.printf "%s\n" (Fuzz.Harness.summary stats);
      List.iter
        (fun (f : Fuzz.Harness.failure) ->
           Printf.printf "  FAIL [%s] replay with: wasabi fuzz --seed %d --replay %s:%d\n"
             f.Fuzz.Harness.oracle seed
             (match f.Fuzz.Harness.case with
              | Fuzz.Harness.Generated -> "gen"
              | Fuzz.Harness.Mutated -> "mut")
             f.Fuzz.Harness.index)
        failures;
      if failures <> [] then exit 1
  in
  let info =
    Cmd.info "fuzz"
      ~doc:"Differential fuzzing: generated + mutated modules against the totality, round-trip, instrumentation-soundness and differential-equivalence oracles"
  in
  Cmd.v info Term.(const run $ seed_arg $ gen_arg $ mut_arg $ out_arg $ replay_arg $ quiet_arg)

(* --- corpus ---------------------------------------------------------- *)

let corpus_cmd =
  let dir_arg =
    Arg.(value & opt string "corpus" & info [ "o" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (e : Workloads.Corpus.entry) ->
         let path = Filename.concat dir (e.name ^ ".wasm") in
         write_module path e.module_;
         Printf.printf "wrote %s\n" path)
      (Workloads.Corpus.make ())
  in
  let info = Cmd.info "corpus" ~doc:"Write the 32-program benchmark corpus as .wasm files" in
  Cmd.v info Term.(const run $ dir_arg)

let () =
  let info = Cmd.info "wasabi" ~version:"1.0.0" ~doc:"Dynamic analysis for WebAssembly" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ instrument_cmd; analyze_cmd; generate_js_cmd; hooks_cmd; callgraph_cmd; lint_cmd;
            fuzz_cmd; corpus_cmd ]))
