(** The [wasabi] command-line tool: instrument a WebAssembly binary on
    disk, selecting hooks as the original tool does, and optionally run an
    exported function under one of the bundled analyses.

      wasabi instrument input.wasm -o output.wasm --hooks binary,call
      wasabi analyze input.wasm --analysis cryptominer --invoke run
      wasabi callgraph input.wasm --dot -o input.dot
      wasabi lint input.wasm --selective
      wasabi fuzz --seed 42 --gen 2000 --mut 2000
      wasabi hooks

    Structured pipeline failures exit with distinct codes and a one-line
    message (decode 3, validate 4, link 5, trap 6, exhaustion 7) instead
    of an uncaught-exception backtrace; lint soundness errors exit 8, and
    hook-dispatch argument errors (a bug in the instrumentation, not the
    input program) exit 9.
*)

open Cmdliner
module W = Wasabi

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let read_module path = Wasm.Decode.decode (read_file path)
let write_module path m = write_file path (Wasm.Encode.encode m)

(** Run a subcommand body under the structured-error boundary: taxonomy
    failures become one-line messages with their distinct exit code. *)
let structured f =
  try f () with
  | e ->
    (match Wasm.Error.classify e with
     | Some err ->
       Printf.eprintf "wasabi: %s\n" (Wasm.Error.to_string err);
       exit (Wasm.Error.exit_code err)
     | None -> raise e)

let parse_groups = function
  | None | Some "all" -> W.Hook.all
  | Some s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.map W.Hook.group_of_name
    |> W.Hook.of_list

let hooks_arg =
  let doc = "Comma-separated hook groups to instrument (default: all). See $(b,wasabi hooks)." in
  Arg.(value & opt (some string) None & info [ "hooks" ] ~docv:"GROUPS" ~doc)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")

let tier_arg =
  let doc =
    "Tier-up threshold for the closure-compiled execution tier: a function is \
     compiled to closures after $(docv) interpreted entries. 0 disables tiering. \
     Defaults to the $(b,WASABI_TIER) environment variable (unset = disabled; \
     $(b,on) = default threshold; a positive integer = that threshold)."
  in
  Arg.(value & opt (some int) None & info [ "tier" ] ~docv:"N" ~doc)

(** Apply the tier policy requested by [--tier] (explicit) or
    [WASABI_TIER] (ambient) to a fresh instance. *)
let apply_tier tier inst =
  match tier with
  | Some 0 -> ()
  | Some n -> Wasm.Tier1.enable ~threshold:n inst
  | None -> Wasm.Tier1.enable_from_env inst

(* resource-governor flags: per-run budgets beyond fuel, each violation
   exiting with its own code (deadline 10, growth cap 11, call budget 12) *)
let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-run wall-clock deadline in milliseconds, checked at fuel-batch \
                 boundaries (exit code 10 when exceeded)")

let max_grow_arg =
  Arg.(value & opt (some int) None
       & info [ "max-grow-pages" ] ~docv:"PAGES"
           ~doc:"Per-run memory-growth cap: total pages memory.grow may acquire, on top of \
                 the module's declared maximum (exit code 11 when exceeded)")

let host_call_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "host-call-budget" ] ~docv:"N"
           ~doc:"Per-run host-call budget, counting analysis hook calls and imported host \
                 functions (exit code 12 when exceeded)")

(** Attach and arm a governor when any budget flag is set; compiled
    bodies then also deopt to tier 0 on a governor kill. *)
let apply_governor ~deadline_ms ~max_grow_pages ~host_call_budget inst =
  match deadline_ms, max_grow_pages, host_call_budget with
  | None, None, None -> ()
  | _ ->
    let gov = Wasm.Governor.create ?deadline_ms ?max_grow_pages ?host_call_budget () in
    Wasm.Interp.set_governor inst (Some gov);
    Wasm.Interp.set_deopt_on_fault inst true;
    Wasm.Governor.arm gov

(* --- instrument ------------------------------------------------------ *)

let instrument_cmd =
  let output =
    Arg.(value & opt string "out.wasm" & info [ "o"; "output" ] ~docv:"OUTPUT" ~doc:"Output path")
  in
  let selective =
    Arg.(value & flag
         & info [ "selective" ]
             ~doc:"Leave functions unreachable from any export/start root uninstrumented \
                   (static call-graph pruning; skipped indices are recorded in the metadata)")
  in
  let fold =
    Arg.(value & flag
         & info [ "fold" ]
             ~doc:"Discharge hook sites statically from abstract-interpretation facts: \
                   drop hooks at proven-unreachable sites and pass proven-constant hook \
                   arguments as immediates (folded sites are recorded in the metadata)")
  in
  let run input output hooks selective fold =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let groups = parse_groups hooks in
    let t0 = Sys.time () in
    let res = W.Instrument.instrument ~groups ~prune_unreachable:selective ~fold m in
    let dt = Sys.time () -. t0 in
    write_module output res.W.Instrument.instrumented;
    let meta = res.W.Instrument.metadata in
    Printf.printf "instrumented %s -> %s in %.1f ms\n" input output (dt *. 1000.0);
    Printf.printf "  %d low-level hooks generated on demand (import module %S)\n"
      meta.W.Metadata.num_hooks W.Hook.import_module;
    (match meta.W.Metadata.pruned_funcs with
     | [] -> ()
     | pruned ->
       Printf.printf "  %d statically-unreachable function%s left uninstrumented\n"
         (List.length pruned)
         (if List.length pruned = 1 then "" else "s"));
    (match meta.W.Metadata.folded with
     | [] -> ()
     | folded ->
       let dead, args =
         List.partition (function W.Metadata.F_dead _ -> true | _ -> false) folded
       in
       Printf.printf "  %d hook site%s discharged statically (%d dead, %d constant-args)\n"
         (List.length folded)
         (if List.length folded = 1 then "" else "s")
         (List.length dead) (List.length args));
    Printf.printf "  original %d B, instrumented %d B\n"
      (String.length (Wasm.Encode.encode m))
      (String.length (Wasm.Encode.encode res.W.Instrument.instrumented))
  in
  let info = Cmd.info "instrument" ~doc:"Insert analysis hook calls into a Wasm binary" in
  Cmd.v info Term.(const run $ input_arg $ output $ hooks_arg $ selective $ fold)

(* --- analyze --------------------------------------------------------- *)

type packaged_analysis =
  | Packaged : {
      groups : W.Hook.Group_set.t;
      state : 'st;
      analysis : 'st -> W.Analysis.t;
      report : 'st -> string;
    } -> packaged_analysis

let bundled_analyses () =
  [ ("instruction-mix",
     Packaged { groups = Analyses.Instruction_mix.groups;
                state = Analyses.Instruction_mix.create ();
                analysis = Analyses.Instruction_mix.analysis;
                report = Analyses.Instruction_mix.report });
    ("basic-blocks",
     Packaged { groups = Analyses.Basic_block_profiling.groups;
                state = Analyses.Basic_block_profiling.create ();
                analysis = Analyses.Basic_block_profiling.analysis;
                report = Analyses.Basic_block_profiling.report ~limit:10 });
    ("coverage",
     Packaged { groups = Analyses.Branch_coverage.groups;
                state = Analyses.Branch_coverage.create ();
                analysis = Analyses.Branch_coverage.analysis;
                report = Analyses.Branch_coverage.report });
    ("call-graph",
     Packaged { groups = Analyses.Call_graph.groups;
                state = Analyses.Call_graph.create ();
                analysis = Analyses.Call_graph.analysis;
                report = Analyses.Call_graph.to_dot ?name:None });
    ("cryptominer",
     Packaged { groups = Analyses.Cryptominer.groups;
                state = Analyses.Cryptominer.create ();
                analysis = Analyses.Cryptominer.analysis;
                report = Analyses.Cryptominer.report });
    ("memory-trace",
     Packaged { groups = Analyses.Memory_tracing.groups;
                state = Analyses.Memory_tracing.create ();
                analysis = Analyses.Memory_tracing.analysis;
                report = Analyses.Memory_tracing.report });
    ("taint",
     Packaged { groups = Analyses.Taint.groups;
                state = Analyses.Taint.create ();
                analysis = Analyses.Taint.analysis;
                report = Analyses.Taint.report });
    ("trace",
     Packaged { groups = Analyses.Trace.groups;
                state = Analyses.Trace.create ();
                analysis = Analyses.Trace.analysis;
                report = (fun t -> Analyses.Trace.report t ^ Analyses.Trace.to_log t ^ "\n") }) ]

let analyze_cmd =
  let analysis_arg =
    let doc = "Bundled analysis to run (instruction-mix, basic-blocks, coverage, call-graph, cryptominer, memory-trace, taint)" in
    Arg.(value & opt string "instruction-mix" & info [ "analysis" ] ~docv:"NAME" ~doc)
  in
  let invoke_arg =
    Arg.(value & opt string "run" & info [ "invoke" ] ~docv:"EXPORT" ~doc:"Exported function to call")
  in
  let run input analysis_name invoke tier deadline_ms max_grow_pages host_call_budget =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    match List.assoc_opt analysis_name (bundled_analyses ()) with
    | None ->
      Printf.eprintf "unknown analysis %S\n" analysis_name;
      exit 2
    | Some (Packaged a) ->
      let res = W.Instrument.instrument ~groups:a.groups m in
      let inst, _ = W.Runtime.instantiate res (a.analysis a.state) in
      apply_tier tier inst;
      apply_governor ~deadline_ms ~max_grow_pages ~host_call_budget inst;
      let results = Wasm.Interp.invoke_export inst invoke [] in
      Printf.printf "%s returned [%s]\n" invoke
        (String.concat "; " (List.map Wasm.Value.to_string results));
      print_string (a.report a.state)
  in
  let info = Cmd.info "analyze" ~doc:"Instrument, run, and report a bundled dynamic analysis" in
  Cmd.v info
    Term.(const run $ input_arg $ analysis_arg $ invoke_arg $ tier_arg $ deadline_arg
          $ max_grow_arg $ host_call_budget_arg)

(* --- generate-js ------------------------------------------------------ *)

let generate_js_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUTPUT.js"
           ~doc:"Output path (default: INPUT.wasabi.js)")
  in
  let run input output hooks =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let groups = parse_groups hooks in
    let res = W.Instrument.instrument ~groups m in
    let js = W.Js_codegen.generate res in
    let out_wasm = Filename.remove_extension input ^ ".instrumented.wasm" in
    let out_js =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension input ^ ".wasabi.js"
    in
    write_module out_wasm res.W.Instrument.instrumented;
    write_file out_js js;
    Printf.printf "wrote %s and %s\n" out_wasm out_js;
    Printf.printf "load the instrumented binary with importObject {%S: Wasabi.lowlevelHooks}\n"
      W.Hook.import_module
  in
  let info =
    Cmd.info "generate-js"
      ~doc:"Instrument a binary and emit the companion JavaScript runtime for browser hosts"
  in
  Cmd.v info Term.(const run $ input_arg $ output $ hooks_arg)

(* --- hooks ----------------------------------------------------------- *)

(** Monomorphization-cache statistics of one instrumentation run: the
    generated hooks with their signatures and request counts, and the
    hit/miss summary of the on-demand cache (paper, Section 2.4.3). *)
let print_hook_stats (hook_map : W.Hook.Map.t) =
  let requests = W.Hook.Map.requests hook_map in
  Printf.printf "%-12s %-28s %-28s %9s\n" "group" "hook" "signature" "requests";
  Array.iter
    (fun (spec, reqs) ->
       Printf.printf "%-12s %-28s %-28s %9d\n"
         (W.Hook.group_name (W.Hook.group_of_spec spec))
         (W.Hook.name spec)
         (Wasm.Types.string_of_func_type (W.Hook.signature spec))
         reqs)
    requests;
  let total = W.Hook.Map.total_requests hook_map in
  Printf.printf
    "monomorphization cache: %d hooks generated for %d requests (%d hits, %d misses, %.1f%% hit rate)\n"
    (W.Hook.Map.count hook_map) total (W.Hook.Map.hits hook_map) (W.Hook.Map.misses hook_map)
    (if total = 0 then 0.0 else 100.0 *. Float.of_int (W.Hook.Map.hits hook_map) /. Float.of_int total)

let hooks_cmd =
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Instrument INPUT (or the built-in corpus when no input is given) and \
                   print monomorphization-cache statistics: generated hooks by kind and \
                   type signature, request counts, hit/miss totals")
  in
  let input_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary for --stats")
  in
  let run stats input hooks =
    structured @@ fun () ->
    if not stats then begin
      print_endline "hook groups (selective instrumentation units):";
      List.iter (fun g -> Printf.printf "  %s\n" (W.Hook.group_name g)) W.Hook.all_groups
    end
    else begin
      let groups = parse_groups hooks in
      let modules =
        match input with
        | Some path -> [ (path, read_module path) ]
        | None ->
          List.map
            (fun (e : Workloads.Corpus.entry) -> (e.name, e.module_))
            (Workloads.Corpus.make ())
      in
      List.iteri
        (fun i (label, m) ->
           if i > 0 then print_newline ();
           Printf.printf "== %s ==\n" label;
           Wasm.Validate.validate_module m;
           let res = W.Instrument.instrument ~groups m in
           print_hook_stats res.W.Instrument.hook_map)
        modules
    end
  in
  let info =
    Cmd.info "hooks"
      ~doc:"List the available hook groups, or (with --stats) print \
            monomorphization-cache statistics for an instrumentation run"
  in
  Cmd.v info Term.(const run $ stats_arg $ input_opt $ hooks_arg)

(* --- callgraph ------------------------------------------------------- *)

let callgraph_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT instead of the text rendering")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  let no_tighten_arg =
    Arg.(value & flag
         & info [ "no-tighten" ]
             ~doc:"Skip the constant-stack analysis that resolves constant-index indirect \
                   calls exactly (faster, coarser)")
  in
  let precise_arg =
    Arg.(value & flag
         & info [ "precise" ]
             ~doc:"Resolve indirect edges with the interprocedural abstract interpreter \
                   (value-set table indices) instead of type pools")
  in
  let run input dot out no_tighten precise =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    let cg = Static.Callgraph.build ~tighten:(not no_tighten) ~precise m in
    let text =
      if dot then Static.Callgraph.to_dot cg
      else begin
        let name i =
          match Static.Callgraph.func_name cg i with
          | Some n -> Printf.sprintf "f%d (%s)" i n
          | None -> Printf.sprintf "f%d" i
        in
        let indirect = Static.Callgraph.indirect_edges cg in
        let edge_lines =
          List.map
            (fun (a, b) ->
               Printf.sprintf "  %s -> %s%s" (name a) (name b)
                 (if List.mem (a, b) indirect then "  [indirect]" else ""))
            (Static.Callgraph.edges cg)
        in
        let dead_line =
          match Static.Callgraph.dead_functions cg with
          | [] -> []
          | dead -> [ "unreachable: " ^ String.concat ", " (List.map name dead) ]
        in
        String.concat "\n" ((Static.Callgraph.summary cg :: edge_lines) @ dead_line) ^ "\n"
      end
    in
    match out with
    | Some path ->
      write_file path text;
      Printf.printf "wrote %s\n" path
    | None -> print_string text
  in
  let info =
    Cmd.info "callgraph"
      ~doc:"Static call graph: direct and type/table-resolved indirect edges, export-rooted \
            reachability, unreachable-function report"
  in
  Cmd.v info Term.(const run $ input_arg $ dot_arg $ out_arg $ no_tighten_arg $ precise_arg)

(* --- absint ----------------------------------------------------------- *)

let absint_cmd =
  let summary_arg =
    Arg.(value & flag & info [ "summary" ] ~doc:"Print only the one-line module summary")
  in
  let func_arg =
    Arg.(value & opt (some int) None
         & info [ "func" ] ~docv:"N" ~doc:"Dump facts for function N only")
  in
  let stacks_arg =
    Arg.(value & flag
         & info [ "stacks" ] ~doc:"Include the per-instruction abstract stack in the dump")
  in
  let dot_arg =
    Arg.(value & flag
         & info [ "dot" ] ~doc:"Emit the precise call graph as GraphViz DOT instead of facts")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  let corpus_arg =
    Arg.(value & flag
         & info [ "corpus" ]
             ~doc:"Analyze every workload of the built-in benchmark corpus (one summary \
                   line each) instead of a file")
  in
  let run input summary func stacks dot out corpus =
    structured @@ fun () ->
    if corpus then begin
      List.iter
        (fun (e : Workloads.Corpus.entry) ->
           let fx = Static.Absint.analyze e.module_ in
           Printf.printf "%-16s %s\n" e.name (Static.Absint.summary fx))
        (Workloads.Corpus.make ());
      exit 0
    end;
    let m =
      match input with
      | Some path -> read_module path
      | None ->
        Printf.eprintf "wasabi absint: need INPUT.wasm or --corpus\n";
        exit 2
    in
    Wasm.Validate.validate_module m;
    let text =
      if dot then Static.Callgraph.to_dot (Static.Callgraph.build ~precise:true m)
      else begin
        let fx = Static.Absint.analyze m in
        if summary then Static.Absint.summary fx ^ "\n"
        else begin
          let buf = Buffer.create 1024 in
          Buffer.add_string buf (Static.Absint.summary fx);
          Buffer.add_char buf '\n';
          let n_globals =
            Wasm.Ast.num_imported_globals m + List.length m.Wasm.Ast.globals
          in
          if n_globals > 0 then begin
            Buffer.add_string buf "globals:";
            for g = 0 to n_globals - 1 do
              Buffer.add_string buf
                (Printf.sprintf " g%d=%s" g
                   (Static.Interval.to_string (Static.Absint.global_fact fx g)))
            done;
            Buffer.add_char buf '\n'
          end;
          let dump f = Buffer.add_string buf (Static.Absint.dump_func ~stacks fx f) in
          (match func with
           | Some f -> dump f
           | None ->
             let n_imp = Wasm.Ast.num_imported_funcs m in
             for f = n_imp to Wasm.Ast.num_funcs m - 1 do
               dump f
             done);
          Buffer.contents buf
        end
      end
    in
    match out with
    | Some path ->
      write_file path text;
      Printf.printf "wrote %s\n" path
    | None -> print_string text
  in
  let info =
    Cmd.info "absint"
      ~doc:"Whole-module abstract interpretation: per-function value-set facts (parameter \
            and result summaries, global cells, resolved indirect-call target sets, dead \
            code), or (--dot) the precise call graph"
  in
  let input_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")
  in
  Cmd.v info
    Term.(const run $ input_opt $ summary_arg $ func_arg $ stacks_arg $ dot_arg $ out_arg
          $ corpus_arg)

(* --- lint ------------------------------------------------------------ *)

(** Distinct from the taxonomy codes (3..7): the pipeline succeeded but
    the instrumented module failed soundness verification. *)
let lint_exit_code = 8

let lint_cmd =
  let input_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")
  in
  let selective_arg =
    Arg.(value & flag
         & info [ "selective" ] ~doc:"Instrument with static call-graph pruning before linting")
  in
  let fold_arg =
    Arg.(value & flag
         & info [ "fold" ]
             ~doc:"Instrument with static hook folding before linting (folded sites are \
                   verified against recomputed abstract-interpretation facts)")
  in
  let corpus_arg =
    Arg.(value & flag
         & info [ "corpus" ]
             ~doc:"Lint every workload of the built-in benchmark corpus instead of a file")
  in
  let fuzz_arg =
    Arg.(value & opt (some int) None
         & info [ "fuzz" ] ~docv:"N"
             ~doc:"Lint N fixed-seed generated modules (full and pruned instrumentation) \
                   instead of a file")
  in
  let seed_arg =
    Arg.(value & opt int Fuzz.Harness.default_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for --fuzz module generation")
  in
  let run input hooks selective fold corpus fuzz seed =
    structured @@ fun () ->
    let groups = parse_groups hooks in
    let errors = ref 0 in
    let lint_one label m =
      Wasm.Validate.validate_module m;
      let res = W.Instrument.instrument ~groups ~prune_unreachable:selective ~fold m in
      match Lint.check res with
      | [] -> Printf.printf "%s: clean\n" label
      | findings ->
        List.iter (fun f -> Printf.printf "%s: %s\n" label (Lint.to_string f)) findings;
        errors := !errors + List.length (Lint.errors findings)
    in
    (match corpus, fuzz, input with
     | true, _, _ ->
       List.iter
         (fun (e : Workloads.Corpus.entry) -> lint_one e.name e.module_)
         (Workloads.Corpus.make ())
     | false, Some n, _ ->
       for index = 0 to n - 1 do
         let info = Fuzz.Harness.gen_case ~seed ~index in
         (match Fuzz.Oracle.lint_instrumented info.Fuzz.Gen.module_ with
          | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
          | Fuzz.Oracle.Violation { kind; detail } ->
            incr errors;
            Printf.printf "gen case %d (seed %d): [%s] %s\n" index seed kind detail);
         if (index + 1) mod 500 = 0 then Printf.eprintf "lint: %d/%d\n%!" (index + 1) n
       done;
       Printf.printf "linted %d generated modules (seed %d): %d violation%s\n" n seed !errors
         (if !errors = 1 then "" else "s")
     | false, None, Some path -> lint_one path (read_module path)
     | false, None, None ->
       Printf.eprintf "wasabi lint: need INPUT.wasm, --corpus, or --fuzz N\n";
       exit 2);
    if !errors > 0 then exit lint_exit_code
  in
  let info =
    Cmd.info "lint"
      ~doc:"Instrument and statically verify instrumentation soundness (original \
            instructions preserved in order and stack shape, hook imports match their \
            specs, sections unchanged up to remapping); soundness errors exit 8"
  in
  Cmd.v info
    Term.(const run $ input_opt $ hooks_arg $ selective_arg $ fold_arg $ corpus_arg $ fuzz_arg
          $ seed_arg)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int Fuzz.Harness.default_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; every case replays from (seed, index)")
  in
  let gen_arg =
    Arg.(value & opt int 5000 & info [ "gen" ] ~docv:"N" ~doc:"Number of generated-module cases")
  in
  let mut_arg =
    Arg.(value & opt int 5000 & info [ "mut" ] ~docv:"N" ~doc:"Number of mutated-binary cases")
  in
  let out_arg =
    Arg.(value & opt string "fuzz-out"
         & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Directory for failing inputs (original + minimized)")
  in
  let replay_arg =
    let doc = "Replay a single case instead of running a campaign: $(docv) is gen:INDEX or mut:INDEX." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"CASE" ~doc)
  in
  let dump_arg =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE"
             ~doc:"With --replay: also write the case's input bytes to FILE (corpus promotion)")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output")
  in
  let faults_arg =
    Arg.(value & flag
         & info [ "faults" ]
             ~doc:"Run every generated case through the restore-equivalence oracle under a \
                   deterministic host-fault plan (hook traps, corrupt returns, budget burns) \
                   derived from (seed, index); failure dumps record the plan and replay with \
                   this flag")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write campaign metrics (cases/s, per-oracle timing histograms) to FILE: \
                   Prometheus text when it ends in .prom, JSON otherwise")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Shard cases across N domains. Every case is determined by (seed, index) \
                   alone, so the findings are byte-identical for any job count")
  in
  let run seed gen mut out replay dump quiet faults metrics_out jobs =
    match replay with
    | Some spec ->
      let case, index =
        match String.split_on_char ':' spec with
        | [ "gen"; i ] -> (Fuzz.Harness.Generated, int_of_string i)
        | [ "mut"; i ] -> (Fuzz.Harness.Mutated, int_of_string i)
        | _ ->
          Printf.eprintf "bad --replay spec %S (expected gen:INDEX or mut:INDEX)\n" spec;
          exit 2
      in
      (match dump with
       | None -> ()
       | Some path ->
         let bytes =
           match case with
           | Fuzz.Harness.Generated ->
             Wasm.Encode.encode (Fuzz.Harness.gen_case ~seed ~index).Fuzz.Gen.module_
           | Fuzz.Harness.Mutated -> Fuzz.Harness.mut_case ~seed ~index
         in
         write_file path bytes;
         Printf.eprintf "wrote %s (%d bytes)\n" path (String.length bytes));
      let disposition = Fuzz.Harness.replay ~faults ~seed ~index case in
      Printf.printf "seed %d, %s case %d%s: %s\n" seed
        (match case with Fuzz.Harness.Generated -> "generated" | Fuzz.Harness.Mutated -> "mutated")
        index
        (if faults then " (with faults)" else "")
        (Fuzz.Harness.disposition_to_string disposition);
      (match disposition with Fuzz.Harness.Fail _ -> exit 1 | Fuzz.Harness.Pass _ | Fuzz.Harness.Skip _ -> ())
    | None ->
      let log = if quiet then fun _ -> () else fun s -> Printf.eprintf "%s\n%!" s in
      let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_out in
      let stats, failures =
        Fuzz.Harness.run ~log ~out_dir:out ?metrics ~faults ~jobs ~seed ~gen_count:gen
          ~mut_count:mut ()
      in
      (match metrics_out, metrics with
       | Some path, Some reg ->
         let text =
           if Filename.check_suffix path ".prom" then Obs.Metrics.to_prometheus reg
           else Obs.Metrics.to_json reg
         in
         write_file path text;
         Printf.eprintf "wrote %s\n" path
       | _ -> ());
      Printf.printf "%s\n" (Fuzz.Harness.summary stats);
      List.iter
        (fun (f : Fuzz.Harness.failure) ->
           Printf.printf "  FAIL [%s] replay with: wasabi fuzz --seed %d --replay %s:%d%s\n"
             f.Fuzz.Harness.oracle seed
             (match f.Fuzz.Harness.case with
              | Fuzz.Harness.Generated -> "gen"
              | Fuzz.Harness.Mutated -> "mut")
             f.Fuzz.Harness.index
             (if f.Fuzz.Harness.fault_plan = None then "" else " --faults"))
        failures;
      if failures <> [] then exit 1
  in
  let info =
    Cmd.info "fuzz"
      ~doc:"Differential fuzzing: generated + mutated modules against the totality, round-trip, instrumentation-soundness, differential-equivalence, tier-parity, probe-parity, absint-soundness and (with --faults) restore-equivalence oracles"
  in
  Cmd.v info
    Term.(const run $ seed_arg $ gen_arg $ mut_arg $ out_arg $ replay_arg $ dump_arg
          $ quiet_arg $ faults_arg $ metrics_out_arg $ jobs_arg)

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let entry_arg =
    Arg.(value & opt string "run" & info [ "entry" ] ~docv:"EXPORT" ~doc:"Exported function each run invokes")
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains serving runs")
  in
  let runs_arg =
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc:"Total executions to serve")
  in
  let mode_arg =
    Arg.(value & opt (enum [ ("sync", `Sync); ("async", `Async) ]) `Sync
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Analysis dispatch: $(b,sync) runs callbacks inline in the workers \
                   (reference semantics); $(b,async) ships reified events through \
                   per-worker rings to consumer domains")
  in
  let consumers_arg =
    Arg.(value & opt int 1
         & info [ "consumers" ] ~docv:"N" ~doc:"Consumer domains draining rings (async mode)")
  in
  let capacity_arg =
    Arg.(value & opt int 1024
         & info [ "ring-capacity" ] ~docv:"N"
             ~doc:"Per-worker ring capacity in events, rounded up to a power of two; a full \
                   ring blocks its producer (backpressure, async mode)")
  in
  let analysis_arg =
    let doc = "Bundled analysis every run feeds (instruction-mix, basic-blocks, coverage, call-graph, cryptominer, memory-trace, taint, trace)" in
    Arg.(value & opt string "instruction-mix" & info [ "analysis" ] ~docv:"NAME" ~doc)
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Before serving, differentially check that the async event stream equals \
                   the sync stream for this module and entry (exit 13 on mismatch)")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write farm metrics (runs, faults, instances/s, event-latency histogram) \
                   to FILE: Prometheus text when it ends in .prom, JSON otherwise")
  in
  let run input entry domains runs mode consumers capacity analysis_name verify tier
      deadline_ms max_grow_pages host_call_budget metrics_out =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    match List.assoc_opt analysis_name (bundled_analyses ()) with
    | None ->
      Printf.eprintf "unknown analysis %S\n" analysis_name;
      exit 2
    | Some (Packaged a) ->
      let groups = a.groups in
      let res = W.Instrument.instrument ~groups m in
      if verify && not (Serve.Farm.verify_stream_equality ~entry res) then begin
        Printf.eprintf "wasabi serve: async event stream differs from sync reference\n";
        exit 13
      end;
      let mode =
        match mode with
        | `Sync -> Serve.Farm.Sync
        | `Async -> Serve.Farm.Async { consumers; capacity }
      in
      let tier1 = match tier with Some n when n > 0 -> true | _ -> false in
      let make_governor =
        match deadline_ms, max_grow_pages, host_call_budget with
        | None, None, None -> None
        | _ ->
          Some (fun () -> Wasm.Governor.create ?deadline_ms ?max_grow_pages ?host_call_budget ())
      in
      (* fresh analysis state per worker: each is touched by exactly one
         domain, so the bundled analyses need no locking *)
      let make_analysis _w =
        match List.assoc analysis_name (bundled_analyses ()) with
        | Packaged b -> b.analysis b.state
      in
      let st =
        Serve.Farm.run ~tier1 ?make_governor ~mode ~domains ~runs ~entry ~make_analysis res
      in
      Printf.printf "served %d runs (%d contained faults) on %d domains [%s]\n"
        st.Serve.Farm.st_runs st.Serve.Farm.st_faults st.Serve.Farm.st_domains
        st.Serve.Farm.st_mode;
      Printf.printf "  %.1f instances/s over %.3f s\n" st.Serve.Farm.st_instances_per_sec
        st.Serve.Farm.st_elapsed_s;
      if st.Serve.Farm.st_events > 0 then
        Printf.printf "  %d events shipped; sampled delivery latency p50 %.1f us, p99 %.1f us\n"
          st.Serve.Farm.st_events
          (st.Serve.Farm.st_lat_p50_ns /. 1e3)
          (st.Serve.Farm.st_lat_p99_ns /. 1e3);
      (match metrics_out with
       | None -> ()
       | Some path ->
         let reg = Obs.Metrics.default in
         let text =
           if Filename.check_suffix path ".prom" then Obs.Metrics.to_prometheus reg
           else Obs.Metrics.to_json reg
         in
         write_file path text;
         Printf.eprintf "wrote %s\n" path)
  in
  let info =
    Cmd.info "serve"
      ~doc:"Serve repeated isolated executions from one instrumented instance across domains \
            (decode/instrument/compile once, fork + snapshot-restore per run), with sync or \
            async analysis dispatch"
  in
  Cmd.v info
    Term.(const run $ input_arg $ entry_arg $ domains_arg $ runs_arg $ mode_arg
          $ consumers_arg $ capacity_arg $ analysis_arg $ verify_arg $ tier_arg
          $ deadline_arg $ max_grow_arg $ host_call_budget_arg $ metrics_out_arg)

(* --- profile --------------------------------------------------------- *)

let profile_cmd =
  let input_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.wasm" ~doc:"Input binary")
  in
  let corpus_arg =
    Arg.(value & flag
         & info [ "corpus" ]
             ~doc:"Profile every workload of the built-in benchmark corpus instead of a file")
  in
  let invoke_arg =
    Arg.(value & opt string "run" & info [ "invoke" ] ~docv:"EXPORT" ~doc:"Exported function to call")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows of the function/opcode tables")
  in
  let folded_arg =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write folded stacks (flamegraph.pl / speedscope input) to FILE")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the pipeline + run spans as Chrome trace-event JSON (Perfetto-loadable)")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write per-workload profile metrics to FILE: Prometheus text when it ends \
                   in .prom, JSON otherwise")
  in
  let run input hooks corpus invoke top folded trace_out metrics_out tier =
    structured @@ fun () ->
    if trace_out <> None then begin
      Obs.Span.set_enabled true;
      Obs.Span.reset ()
    end;
    let workloads =
      if corpus then
        List.map (fun (e : Workloads.Corpus.entry) -> (e.name, e.module_)) (Workloads.Corpus.make ())
      else
        match input with
        | Some path -> [ (Filename.remove_extension (Filename.basename path), read_module path) ]
        | None ->
          Printf.eprintf "wasabi profile: need INPUT.wasm or --corpus\n";
          exit 2
    in
    let registry = Obs.Metrics.create () in
    let folded_buf = Buffer.create 256 in
    let many = List.length workloads > 1 in
    List.iteri
      (fun i (label, m) ->
         if i > 0 then print_newline ();
         Printf.printf "== %s ==\n" label;
         Obs.Span.with_ label @@ fun () ->
         Wasm.Validate.validate_module m;
         let prof = Obs.Profile.create () in
         let inst, hook_map =
           match hooks with
           | None ->
             let inst = Wasm.Interp.instantiate ~fuel:max_int ~imports:[] m in
             Wasm.Interp.set_profiler inst (Some prof);
             (inst, None)
           | Some _ ->
             let groups = parse_groups hooks in
             let res = W.Instrument.instrument ~groups m in
             let inst, rt = W.Runtime.instantiate ~fuel:max_int res W.Analysis.default in
             W.Runtime.attach_profiler rt (Some prof);
             (inst, Some res.W.Instrument.hook_map)
         in
         apply_tier tier inst;
         let t0 = Obs.Clock.now_ns () in
         let results =
           Obs.Span.with_ "run" (fun () -> Wasm.Interp.invoke_export inst invoke [])
         in
         let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
         Printf.printf "%s returned [%s] in %.3f ms (%d instructions)\n\n" invoke
           (String.concat "; " (List.map Wasm.Value.to_string results))
           (Obs.Clock.ns_to_ms wall_ns) inst.Wasm.Interp.steps;
         print_string (Wasm.Profile_report.func_table ~top inst prof);
         print_newline ();
         print_string (Wasm.Profile_report.render_opcode_mix ~top inst prof);
         (match hook_map with
          | None -> ()
          | Some hm ->
            print_newline ();
            (* hook-overhead breakdown: dispatch count and time per group,
               then the decode-vs-analysis split of the same time (the
               "dispatch." timers re-slice the per-group totals, so they
               are excluded from the per-group sum) *)
            let phases, timers =
              List.partition
                (fun (key, _, _) -> String.starts_with ~prefix:"dispatch." key)
                (Obs.Profile.timer_list prof)
            in
            if timers <> [] then begin
              Printf.printf "%-24s %12s %12s %10s\n" "hook dispatch" "calls" "total ms" "avg ns";
              List.iter
                (fun (key, calls, ns) ->
                   Printf.printf "%-24s %12d %12.3f %10.0f\n" key calls (Obs.Clock.ns_to_ms ns)
                     (if calls = 0 then 0.0 else Int64.to_float ns /. Float.of_int calls))
                timers;
              let hook_ns = List.fold_left (fun acc (_, _, ns) -> Int64.add acc ns) 0L timers in
              Printf.printf "hook dispatch total: %.3f ms (%.1f%% of wall time)\n\n"
                (Obs.Clock.ns_to_ms hook_ns)
                (if Int64.equal wall_ns 0L then 0.0
                  else 100.0 *. Int64.to_float hook_ns /. Int64.to_float wall_ns)
            end;
            if phases <> [] then begin
              let phase_ns =
                List.fold_left (fun acc (_, _, ns) -> Int64.add acc ns) 0L phases
              in
              Printf.printf "%-24s %12s %12s %10s\n" "dispatch phase" "calls" "total ms" "share";
              List.iter
                (fun (key, calls, ns) ->
                   Printf.printf "%-24s %12d %12.3f %9.1f%%\n" key calls
                     (Obs.Clock.ns_to_ms ns)
                     (if Int64.equal phase_ns 0L then 0.0
                      else 100.0 *. Int64.to_float ns /. Int64.to_float phase_ns))
                phases;
              print_newline ()
            end;
            print_hook_stats hm);
         (* folded stacks, one workload's paths prefixed by its name *)
         List.iter
           (fun line ->
              if many then Buffer.add_string folded_buf (label ^ ";");
              Buffer.add_string folded_buf line;
              Buffer.add_char folded_buf '\n')
           (Wasm.Profile_report.folded inst prof);
         (* machine-readable summary *)
         let labels = [ ("workload", label) ] in
         Obs.Metrics.set
           (Obs.Metrics.gauge ~registry ~labels ~help:"Wall time of the profiled invocation"
              "profile_run_seconds")
           (Obs.Clock.ns_to_s wall_ns);
         Obs.Metrics.inc ~by:(Float.of_int inst.Wasm.Interp.steps)
           (Obs.Metrics.counter ~registry ~labels ~help:"Instructions retired"
              "profile_instructions_total");
         let calls =
           List.fold_left
             (fun acc (r : Obs.Profile.func_row) -> acc + r.fr_calls)
             0 (Obs.Profile.func_rows prof)
         in
         Obs.Metrics.inc ~by:(Float.of_int calls)
           (Obs.Metrics.counter ~registry ~labels ~help:"Wasm function calls"
              "profile_calls_total");
         List.iter
           (fun (key, n, ns) ->
              let labels = ("hook", key) :: labels in
              Obs.Metrics.inc ~by:(Float.of_int n)
                (Obs.Metrics.counter ~registry ~labels ~help:"Hook dispatches"
                   "profile_hook_dispatch_total");
              Obs.Metrics.set
                (Obs.Metrics.gauge ~registry ~labels ~help:"Time in hook dispatch"
                   "profile_hook_dispatch_seconds")
                (Obs.Clock.ns_to_s ns))
           (Obs.Profile.timer_list prof);
         match hook_map with
         | None -> ()
         | Some hm ->
           Obs.Metrics.set
             (Obs.Metrics.gauge ~registry ~labels ~help:"Monomorphic hooks generated"
                "profile_monomorph_generated") (Float.of_int (W.Hook.Map.count hm));
           Obs.Metrics.set
             (Obs.Metrics.gauge ~registry ~labels ~help:"Monomorphization cache hits"
                "profile_monomorph_hits") (Float.of_int (W.Hook.Map.hits hm)))
      workloads;
    (match folded with
     | None -> ()
     | Some path ->
       write_file path (Buffer.contents folded_buf);
       Printf.eprintf "wrote %s\n" path);
    (match trace_out with
     | None -> ()
     | Some path ->
       write_file path (Obs.Span.to_chrome_json ());
       Printf.eprintf "wrote %s\n" path);
    match metrics_out with
    | None -> ()
    | Some path ->
      let text =
        if Filename.check_suffix path ".prom" then Obs.Metrics.to_prometheus registry
        else Obs.Metrics.to_json registry
      in
      write_file path text;
      Printf.eprintf "wrote %s\n" path
  in
  let info =
    Cmd.info "profile"
      ~doc:"Run a binary (or the benchmark corpus) under the interpreter profiler: hot \
            functions (calls, self/inclusive time), executed opcode mix, hook-dispatch \
            overhead when instrumented (--hooks), folded stacks, Chrome trace JSON and \
            machine-readable metrics"
  in
  Cmd.v info
    Term.(const run $ input_opt $ hooks_arg $ corpus_arg $ invoke_arg $ top_arg $ folded_arg
          $ trace_out_arg $ metrics_out_arg $ tier_arg)

(* --- probe ------------------------------------------------------------ *)

let probe_cmd =
  let analysis_arg =
    let doc = "Bundled analysis the probes deliver events to (same registry as $(b,wasabi analyze))" in
    Arg.(value & opt string "instruction-mix" & info [ "analysis" ] ~docv:"NAME" ~doc)
  in
  let invoke_arg =
    Arg.(value & opt string "run" & info [ "invoke" ] ~docv:"EXPORT" ~doc:"Exported function to call")
  in
  let attach_arg =
    Arg.(value & opt_all string []
         & info [ "attach" ] ~docv:"SPEC"
             ~doc:"Attach a probe: $(i,GROUPS)[@func=N][@loc=F:I][@nth=K], where GROUPS is \
                   $(b,all) or comma-separated hook group names. Repeatable. Default when \
                   none given: $(b,all)")
  in
  let probe_at_arg =
    Arg.(value & opt (some string) None
         & info [ "probe-at" ] ~docv:"step=N"
             ~doc:"Defer every --attach until the instance's step counter first reaches N \
                   (checked at fuel-batch boundaries on every tier)")
  in
  let detach_at_arg =
    Arg.(value & opt (some int) None
         & info [ "detach-at" ] ~docv:"N"
             ~doc:"Detach all probes once the step counter reaches N")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"Print the armed probe set before running")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"After the run, print per-probe hit/fire counts and the \
                   attached/fired/detached totals")
  in
  let run input analysis_name invoke attach_specs probe_at detach_at list_probes stats tier =
    structured @@ fun () ->
    let m = read_module input in
    Wasm.Validate.validate_module m;
    match List.assoc_opt analysis_name (bundled_analyses ()) with
    | None ->
      Printf.eprintf "unknown analysis %S\n" analysis_name;
      exit 2
    | Some (Packaged a) ->
      let module P = W.Runtime.Probe in
      let inst = Wasm.Interp.instantiate ~fuel:max_int ~imports:[] m in
      let c = P.create inst (a.analysis a.state) in
      let specs = if attach_specs = [] then [ "all" ] else attach_specs in
      let probe_at_step =
        match probe_at with
        | None -> None
        | Some s ->
          let n =
            if String.length s > 5 && String.sub s 0 5 = "step=" then
              int_of_string_opt (String.sub s 5 (String.length s - 5))
            else None
          in
          (match n with
           | Some n when n >= 0 -> Some n
           | _ ->
             Printf.eprintf "wasabi probe: --probe-at expects step=N, got %S\n" s;
             exit 2)
      in
      List.iter
        (fun raw ->
           match P.validate_spec raw with
           | Error e ->
             Printf.eprintf "wasabi probe: bad --attach %S: %s\n" raw e;
             exit 2
           | Ok spec ->
             (match probe_at_step with
              | None -> ignore (P.attach c spec)
              | Some step -> P.attach_at c ~step spec))
        specs;
      (match detach_at with
       | None -> ()
       | Some step -> Wasm.Interp.add_step_trigger inst ~at:step (fun () -> P.detach_all c));
      if list_probes then begin
        (match P.entries c with
         | [] ->
           (match probe_at_step with
            | Some step ->
              List.iter
                (fun raw -> Printf.printf "probe (armed at step %d)  %s\n" step raw)
                specs
            | None -> print_endline "no probes attached")
         | entries ->
           List.iter
             (fun (e : Obs.Probe.entry) ->
                Printf.printf "probe %d  %s\n" e.Obs.Probe.e_id
                  (Obs.Probe.spec_to_string e.Obs.Probe.e_spec))
             entries)
      end;
      apply_tier tier inst;
      let results = Wasm.Interp.invoke_export inst invoke [] in
      Printf.printf "%s returned [%s]\n" invoke
        (String.concat "; " (List.map Wasm.Value.to_string results));
      print_string (a.report a.state);
      if stats then begin
        let mgr = P.manager c in
        print_newline ();
        List.iter
          (fun (e : Obs.Probe.entry) ->
             Printf.printf "probe %d  %-40s %s  hits %d  fired %d\n" e.Obs.Probe.e_id
               (Obs.Probe.spec_to_string e.Obs.Probe.e_spec)
               (if e.Obs.Probe.e_active then "active  " else "detached")
               e.Obs.Probe.e_hits e.Obs.Probe.e_fired)
          (P.all_entries c);
        Printf.printf "attached %d  fired %d  detached %d\n"
          (Obs.Probe.attached_total mgr) (Obs.Probe.fired_total mgr)
          (Obs.Probe.detached_total mgr)
      end
  in
  let info =
    Cmd.info "probe"
      ~doc:"Run a bundled analysis via live engine probes (no binary rewrite)"
      ~man:
        [ `S Manpage.s_description;
          `P "Instead of rewriting the module ahead of time ($(b,wasabi analyze)), \
              $(b,probe) instantiates the original binary and installs in-engine \
              instruction-stream probes that dispatch to the same analysis callbacks. \
              Probes attach and detach live: $(b,--probe-at) arms them mid-run at a step \
              count, $(b,--detach-at) disarms them, and a probe attached from inside a \
              host call takes effect at the next function entry. Tier-1 compiled \
              functions deopt to probed tier-0 execution while a probe matches them and \
              re-tier after detach." ]
  in
  Cmd.v info
    Term.(const run $ input_arg $ analysis_arg $ invoke_arg $ attach_arg $ probe_at_arg
          $ detach_at_arg $ list_arg $ stats_arg $ tier_arg)

(* --- corpus ---------------------------------------------------------- *)

let corpus_cmd =
  let dir_arg =
    Arg.(value & opt string "corpus" & info [ "o" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (e : Workloads.Corpus.entry) ->
         let path = Filename.concat dir (e.name ^ ".wasm") in
         write_module path e.module_;
         Printf.printf "wrote %s\n" path)
      (Workloads.Corpus.make ())
  in
  let info = Cmd.info "corpus" ~doc:"Write the 32-program benchmark corpus as .wasm files" in
  Cmd.v info Term.(const run $ dir_arg)

let () =
  let info = Cmd.info "wasabi" ~version:"1.0.0" ~doc:"Dynamic analysis for WebAssembly" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ instrument_cmd; analyze_cmd; generate_js_cmd; hooks_cmd; callgraph_cmd; absint_cmd;
            lint_cmd; fuzz_cmd; serve_cmd; profile_cmd; probe_cmd; corpus_cmd ]))
