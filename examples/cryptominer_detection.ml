(** Cryptominer detection (the paper's Figure 1 scenario): profile the
    integer instruction signature of two in-browser workloads — a
    hash-mining loop and an innocuous numeric kernel — and flag the miner.

    Run with: dune exec examples/cryptominer_detection.exe *)

open Minic.Mc_ast
open Minic.Mc_ast.Dsl

(* a hash loop with the add/and/shl/shr_u/xor signature typical of
   CryptoNight-style mining kernels *)
let miner =
  Minic.Mc_compile.compile
    (program
       [ func "run" ~params:[] ~result:TFloat
           ~locals:[ ("k", TInt); ("h", TInt); ("x", TInt) ]
           [ "h" := i 0x9E3779B9;
             For ("k", i 0, i 5000,
                  [ "x" := Binop (BXor, v "h", Binop (ShrU, v "h", i 16));
                    "x" := Binop (BAnd, v "x" * i 0x85EBCA6B, i 0x7FFFFFFF);
                    "x" := Binop (BXor, v "x", Binop (Shl, v "x", i 13));
                    "x" := v "x" + Binop (BXor, v "x", Binop (ShrU, v "x", i 7));
                    "x" := Binop (BAnd, v "x", i 0x00FFFFFF) + Binop (Shl, v "x", i 3);
                    "h" := v "x" + v "k" ]);
             Return (Some (Cast (TFloat, Binop (BAnd, v "h", i 0xFFFF)))) ] ])

let innocuous =
  let _, p = Workloads.Polybench.gemm ~n:8 in
  Minic.Mc_compile.compile p

let profile name m =
  let detector = Analyses.Cryptominer.create () in
  let result = Wasabi.Instrument.instrument ~groups:Analyses.Cryptominer.groups m in
  let inst, _ = Wasabi.Runtime.instantiate result (Analyses.Cryptominer.analysis detector) in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  Printf.printf "%s:\n%s\n" name (Analyses.Cryptominer.report detector);
  Analyses.Cryptominer.looks_like_miner detector

let () =
  let miner_flagged = profile "suspected miner" miner in
  let gemm_flagged = profile "gemm (numeric kernel)" innocuous in
  Printf.printf "verdicts: miner=%b, gemm=%b\n" miner_flagged gemm_flagged;
  match miner_flagged, gemm_flagged with
  | true, false -> print_endline "detection works as intended"
  | _, _ -> print_endline "unexpected verdicts!"
