(** Value-origin tracking: where did the value that reaches a critical
    operation come from? Here a configuration value read from memory and a
    computed fallback both flow into a "set_speed" call; provenance
    reports the exact source locations of each argument — the technique of
    origin tracking for unwanted values, built on the same shadow machine
    as the taint analysis.

    Run with: dune exec examples/origin_tracking.exe *)

open Minic.Mc_ast
open Minic.Mc_ast.Dsl

(* set_speed=0, run=1 *)
let program_under_test =
  program
    ~data:[ (128, "\x40\x00\x00\x00") ]  (* config value 64 at address 128 *)
    [ func "set_speed" ~params:[ ("v", TInt) ] ~export:false [ Expr (v "v" + i 0) ];
      func "run" ~params:[] ~result:TInt
        ~locals:[ ("config", TInt); ("fallback", TInt) ]
        [ "config" := iload (i 128) (i 0);
          "fallback" := i 30 * i 2;
          Expr (Call ("set_speed", [ v "config" ]));
          Expr (Call ("set_speed", [ v "fallback" ]));
          Return (Some (v "config" + v "fallback")) ] ]

let () =
  let m = Minic.Mc_compile.compile_checked program_under_test in
  let prov = Analyses.Provenance.create ~probes:[ 0 ] () in
  let result = Wasabi.Instrument.instrument ~groups:Analyses.Provenance.groups m in
  let inst, _ = Wasabi.Runtime.instantiate result (Analyses.Provenance.analysis prov) in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  print_string (Analyses.Provenance.report prov);
  match Analyses.Provenance.probes prov with
  | [ from_config; from_fallback ] ->
    Printf.printf "first call's argument originates at %d site(s) (the config load)\n"
      (Wasabi.Location.Set.cardinal from_config.Analyses.Provenance.probe_origins);
    Printf.printf "second call's argument originates at %d site(s) (the two constants)\n"
      (Wasabi.Location.Set.cardinal from_fallback.Analyses.Provenance.probe_origins)
  | ps -> Printf.printf "unexpected probe count: %d\n" (List.length ps)
