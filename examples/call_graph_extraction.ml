(** Dynamic call graph extraction (paper, Section 4.2), including
    indirect calls resolved to their actual targets: runs the zen_garden
    workload and prints the observed call graph in Graphviz dot format.

    Run with: dune exec examples/call_graph_extraction.exe *)

let () =
  let m = Minic.Mc_compile.compile (Workloads.Realworld.zen_garden ()) in
  Wasm.Validate.validate_module m;
  let cg = Analyses.Call_graph.create () in
  let result = Wasabi.Instrument.instrument ~groups:Analyses.Call_graph.groups m in
  let inst, _ = Wasabi.Runtime.instantiate result (Analyses.Call_graph.analysis cg) in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  print_string (Analyses.Call_graph.report cg);
  (* label nodes with export names where available *)
  let meta = result.Wasabi.Instrument.metadata in
  let name idx =
    match Wasabi.Metadata.func_name meta idx with
    | Some n -> n
    | None -> Printf.sprintf "func_%d" idx
  in
  print_string (Analyses.Call_graph.to_dot ~name cg);
  (* which functions are reachable from the exported entry point? *)
  let run_idx =
    (* "run" is exported; find its index *)
    let rec find k =
      if k >= Wasabi.Metadata.num_functions meta then 0
      else match Wasabi.Metadata.func_name meta k with
        | Some "run" -> k
        | _ -> find (k + 1)
    in
    find 0
  in
  let reachable = Analyses.Call_graph.reachable cg [ run_idx ] in
  Printf.printf "functions dynamically reachable from run: %s\n"
    (String.concat ", " (List.map name reachable))
