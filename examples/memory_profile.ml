(** Memory access profiling (paper, Section 4.2): trace every load and
    store of two stencil kernels and compare their access patterns — the
    row-major jacobi-2d walks memory with small strides, while a
    column-major matrix traversal (mvt's transposed product) jumps whole
    rows. Also demonstrates basic block profiling on the same run via
    analysis composition.

    Run with: dune exec examples/memory_profile.exe *)

let profile name (m : Wasm.Ast.module_) =
  let trace = Analyses.Memory_tracing.create () in
  let blocks = Analyses.Basic_block_profiling.create () in
  let groups =
    Wasabi.Hook.Group_set.union Analyses.Memory_tracing.groups
      Analyses.Basic_block_profiling.groups
  in
  let analysis =
    Wasabi.Analysis.combine
      (Analyses.Memory_tracing.analysis trace)
      (Analyses.Basic_block_profiling.analysis blocks)
  in
  let result = Wasabi.Instrument.instrument ~groups m in
  let inst, _ = Wasabi.Runtime.instantiate result analysis in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  Printf.printf "%s:\n  %s" name (Analyses.Memory_tracing.report trace);
  (match Analyses.Basic_block_profiling.hottest blocks with
   | ((loc, kind), n) :: _ ->
     Printf.printf "  hottest block: %s %s executed %d times\n"
       (Wasabi.Hook.block_kind_name kind)
       (Wasabi.Location.to_string loc) n
   | [] -> ());
  Analyses.Memory_tracing.average_stride trace

let () =
  let kernel gen = Minic.Mc_compile.compile (snd (gen ~n:10)) in
  let jacobi_stride = profile "jacobi-2d (row-major stencil)" (kernel Workloads.Polybench.jacobi_2d) in
  let mvt_stride = profile "mvt (includes column-major walk)" (kernel Workloads.Polybench.mvt) in
  Printf.printf "average stride: jacobi-2d %.1f B vs mvt %.1f B\n" jacobi_stride mvt_stride;
  if mvt_stride > jacobi_stride then
    print_endline "the column-major traversal is visibly less cache friendly"
