(** Taint tracking with memory shadowing (paper, Sections 2.3 and 4.2):
    a secret value returned by [source] is stored to linear memory,
    laundered through arithmetic, loaded back and finally passed to
    [sink] — the analysis reports the illegal flow without touching the
    program's own heap.

    Run with: dune exec examples/taint_tracking.exe *)

open Minic.Mc_ast
open Minic.Mc_ast.Dsl

(* function indices follow declaration order: source=0, sink=1, run=2 *)
let program_under_test =
  program
    [ func "source" ~params:[] ~result:TInt ~export:false
        [ Return (Some (i 424242)) ];
      func "sink" ~params:[ ("x", TInt) ] ~result:TInt ~export:false
        [ Return (Some (v "x")) ];
      func "run" ~params:[] ~result:TInt
        ~locals:[ ("secret", TInt); ("laundered", TInt); ("innocent", TInt) ]
        [ "secret" := Call ("source", []);
          (* store the secret, mix it, load it back *)
          istore (i 0) (i 16) (v "secret");
          "laundered" := iload (i 0) (i 16) * i 3 + i 1;
          istore (i 0) (i 20) (v "laundered");
          (* an unrelated, untainted value *)
          "innocent" := i 7 * i 6;
          Expr (Call ("sink", [ v "innocent" ]));  (* fine *)
          Expr (Call ("sink", [ iload (i 0) (i 20) ]));  (* illegal flow! *)
          Return (Some (v "laundered")) ] ]

let () =
  let m = Minic.Mc_compile.compile_checked program_under_test in
  let taint = Analyses.Taint.create ~sources:[ 0 ] ~sinks:[ 1 ] () in
  let result = Wasabi.Instrument.instrument ~groups:Analyses.Taint.groups m in
  let inst, _ = Wasabi.Runtime.instantiate result (Analyses.Taint.analysis taint) in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  print_string (Analyses.Taint.report taint);
  match Analyses.Taint.flows taint with
  | [ flow ] ->
    Printf.printf
      "exactly one flow found: sink argument %d at %s — the innocent call passed\n"
      flow.Analyses.Taint.flow_arg
      (Wasabi.Location.to_string flow.Analyses.Taint.flow_sink_loc)
  | flows -> Printf.printf "unexpected number of flows: %d\n" (List.length flows)
