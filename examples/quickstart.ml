(** Quickstart: build a module, instrument it, and watch it execute.

    Run with: dune exec examples/quickstart.exe

    This is the 30-second tour of the public API:
    1. build (or decode) a WebAssembly module;
    2. pick the hook groups your analysis needs (selective instrumentation);
    3. implement some of the 23 high-level hooks;
    4. instantiate the instrumented module with the analysis attached. *)

module B = Wasm.Builder

let () =
  (* 1. a module computing gcd(a, b), built programmatically; a binary
     from disk works the same via Wasm.Decode.decode *)
  let bld = B.create () in
  let gcd =
    B.add_func bld ~params:[ Wasm.Types.I32T; Wasm.Types.I32T ] ~results:[ Wasm.Types.I32T ]
      ~locals:[ Wasm.Types.I32T ]
      ~body:
        (B.block
           (B.loop
              ([ B.local_get 1; Wasm.Ast.Test (Wasm.Ast.IEqz Wasm.Types.S32); Wasm.Ast.BrIf 1 ]
               @ [ B.local_get 1; B.local_set 2 ]
               @ [ B.local_get 0; B.local_get 1; B.i32_rem_s; B.local_set 1 ]
               @ [ B.local_get 2; B.local_set 0; Wasm.Ast.Br 0 ]))
         @ [ B.local_get 0 ])
  in
  B.export_func bld ~name:"gcd" gcd;
  let m = B.build bld in
  Wasm.Validate.validate_module m;

  (* 2. instrument for the groups we care about *)
  let groups = Wasabi.Hook.of_list [ Wasabi.Hook.G_binary; Wasabi.Hook.G_br_if ] in
  let result = Wasabi.Instrument.instrument ~groups m in

  (* 3. an analysis: log every binary operation and loop exit *)
  let analysis =
    { Wasabi.Analysis.default with
      binary =
        (fun loc op a b r ->
           Printf.printf "  %s at %s: %s %s -> %s\n" op
             (Wasabi.Location.to_string loc)
             (Wasm.Value.to_string a) (Wasm.Value.to_string b) (Wasm.Value.to_string r));
      br_if =
        (fun _ target taken ->
           Printf.printf "  br_if -> %s taken=%b\n"
             (Wasabi.Location.to_string target.Wasabi.Metadata.target_loc)
             taken) }
  in

  (* 4. run it *)
  let inst, _runtime = Wasabi.Runtime.instantiate result analysis in
  print_endline "executing gcd(48, 18) under instrumentation:";
  match Wasm.Interp.invoke_export inst "gcd" [ Wasm.Value.i32_of_int 48; Wasm.Value.i32_of_int 18 ] with
  | [ Wasm.Value.I32 r ] -> Printf.printf "gcd(48, 18) = %ld\n" r
  | _ -> assert false
