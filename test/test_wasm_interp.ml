(** Interpreter behaviour: arithmetic, control flow, memory, calls, traps. *)

open Wasm
open Wasm.Ast
open Helpers
module B = Wasm.Builder

let case name f = Alcotest.test_case name `Quick f

let test_consts () =
  check_values "i32 const" [ i32 42 ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] [ B.i32 42 ] []);
  check_values "i64 const" [ Value.I64 77L ]
    (run_f ~params:[] ~results:[ Types.I64T ] ~locals:[] [ B.i64 77L ] []);
  check_values "f64 const" [ f64 2.5 ]
    (run_f ~params:[] ~results:[ Types.F64T ] ~locals:[] [ B.f64 2.5 ] [])

let test_arith () =
  let bin op x y = run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] [ B.i32 x; B.i32 y; op ] [] in
  check_values "add" [ i32 7 ] (bin B.i32_add 3 4);
  check_values "sub" [ i32 (-1) ] (bin B.i32_sub 3 4);
  check_values "mul" [ i32 12 ] (bin B.i32_mul 3 4);
  check_values "div_s" [ i32 (-2) ] (bin B.i32_div_s (-7) 3);
  check_values "rem_s" [ i32 (-1) ] (bin B.i32_rem_s (-7) 3);
  check_values "shl" [ i32 16 ] (bin B.i32_shl 1 4);
  check_values "xor" [ i32 6 ] (bin B.i32_xor 5 3)

let test_unsigned () =
  let v =
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32' (-1l); B.i32 2; Binary (IBin (Types.S32, DivU)) ] []
  in
  check_values "div_u of -1" [ Value.I32 0x7FFFFFFFl ] v;
  let v =
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32' (-1l); B.i32 0; Compare (IRel (Types.S32, LtU)) ] []
  in
  check_values "-1 <u 0 is false" [ i32 0 ] v

let test_clz_popcnt () =
  let un op x =
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] [ B.i32' x; Unary (IUn (Types.S32, op)) ] []
  in
  check_values "clz 1" [ i32 31 ] (un Clz 1l);
  check_values "clz 0" [ i32 32 ] (un Clz 0l);
  check_values "ctz 8" [ i32 3 ] (un Ctz 8l);
  check_values "popcnt 0xFF" [ i32 8 ] (un Popcnt 0xFFl)

let test_float () =
  let binf op x y =
    run_f ~params:[] ~results:[ Types.F64T ] ~locals:[] [ B.f64 x; B.f64 y; op ] []
  in
  check_values "f64 add" [ f64 5.75 ] (binf B.f64_add 2.25 3.5);
  check_values "f64 div" [ f64 2.5 ] (binf B.f64_div 5.0 2.0);
  check_values "min -0" [ f64 (-0.0) ] (binf (Binary (FBin (Types.SF64, Min))) (-0.0) 0.0);
  let nearest x =
    run_f ~params:[] ~results:[ Types.F64T ] ~locals:[]
      [ B.f64 x; Unary (FUn (Types.SF64, Nearest)) ] []
  in
  check_values "nearest 2.5 -> 2 (ties to even)" [ f64 2.0 ] (nearest 2.5);
  check_values "nearest 3.5 -> 4" [ f64 4.0 ] (nearest 3.5)

let test_conversions () =
  let cvt op v rty = run_f ~params:[] ~results:[ rty ] ~locals:[] [ Const v; Convert op ] [] in
  check_values "wrap" [ i32 1 ] (cvt I32WrapI64 (Value.I64 0x1_0000_0001L) Types.I32T);
  check_values "extend_s" [ Value.I64 (-1L) ] (cvt I64ExtendI32S (Value.I32 (-1l)) Types.I64T);
  check_values "extend_u" [ Value.I64 0xFFFFFFFFL ] (cvt I64ExtendI32U (Value.I32 (-1l)) Types.I64T);
  check_values "trunc" [ i32 (-3) ] (cvt I32TruncF64S (Value.F64 (-3.7)) Types.I32T);
  check_values "convert" [ f64 5.0 ] (cvt F64ConvertI32S (i32 5) Types.F64T);
  check_values "reinterpret" [ Value.I64 0x3FF0000000000000L ]
    (cvt I64ReinterpretF64 (Value.F64 1.0) Types.I64T)

let test_trunc_traps () =
  check_traps "trunc nan" "invalid conversion" (fun () ->
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.f64 Float.nan; Convert I32TruncF64S ] []);
  check_traps "trunc overflow" "integer overflow" (fun () ->
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.f64 3e9; Convert I32TruncF64S ] [])

let test_div_traps () =
  check_traps "div by zero" "divide by zero" (fun () ->
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] [ B.i32 1; B.i32 0; B.i32_div_s ] []);
  check_traps "overflow" "integer overflow" (fun () ->
    run_f ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32' Int32.min_int; B.i32' (-1l); B.i32_div_s ] [])

let test_locals_params () =
  let body =
    [ B.local_get 0; B.i32 10; B.i32_mul; B.local_get 1; B.i32_add;
      B.local_set 2; B.local_get 2 ]
  in
  check_values "params and locals" [ i32 74 ]
    (run_f ~params:[ Types.I32T; Types.I32T ] ~results:[ Types.I32T ] ~locals:[ Types.I32T ]
       body [ i32 7; i32 4 ])

let test_block_br () =
  let body = B.block ~result:Types.I32T [ B.i32 1; Br 0; Unreachable ] in
  check_values "br out of block" [ i32 1 ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] body [])

let test_if_else () =
  let body cond =
    [ B.i32 cond ] @ B.if_ ~result:Types.I32T ~then_:[ B.i32 10 ] ~else_:[ B.i32 20 ] ()
  in
  check_values "then" [ i32 10 ] (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] (body 1) []);
  check_values "else" [ i32 20 ] (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] (body 0) [])

let test_if_no_else () =
  let body =
    [ B.local_get 0 ]
    @ B.if_ ~then_:[ B.i32 5; B.local_set 1 ] ~else_:[] ()
    @ [ B.local_get 1 ]
  in
  check_values "if taken" [ i32 5 ]
    (run_f ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[ Types.I32T ] body [ i32 1 ]);
  check_values "if not taken" [ i32 0 ]
    (run_f ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[ Types.I32T ] body [ i32 0 ])

(* sum 1..n with a loop: local 0 = n, local 1 = acc *)
let loop_sum_body =
  [ B.i32 0; B.local_set 1 ]
  @ B.block
      (B.loop
         ([ B.local_get 0; B.i32_eqz; BrIf 1 ]
          @ [ B.local_get 1; B.local_get 0; B.i32_add; B.local_set 1 ]
          @ [ B.local_get 0; B.i32 1; B.i32_sub; B.local_set 0 ]
          @ [ Br 0 ]))
  @ [ B.local_get 1 ]

let test_loop () =
  check_values "sum 1..10" [ i32 55 ]
    (run_f ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[ Types.I32T ]
       loop_sum_body [ i32 10 ])

let test_br_table () =
  let body =
    [ Block (Some Types.I32T);
      Block None;
      Block None;
      Block None;
      B.local_get 0;
      BrTable ([ 0; 1; 2 ], 2);
      End;
      B.i32 100; Br 2;
      End;
      B.i32 200; Br 1;
      End;
      B.i32 300;
      End ]
  in
  let run v = run_f ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[] body [ i32 v ] in
  check_values "case 0" [ i32 100 ] (run 0);
  check_values "case 1" [ i32 200 ] (run 1);
  check_values "case 2 (default target)" [ i32 300 ] (run 2);
  check_values "out of range -> default" [ i32 300 ] (run 9)

let test_calls () =
  let bld = B.create () in
  let g = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 1; B.i32_add ]
  in
  let f = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; Call g; B.i32 2; B.i32_mul ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  check_values "call" [ i32 8 ] (Interp.invoke_export inst "f" [ i32 3 ])

let test_recursion () =
  let bld = B.create () in
  let fh = B.declare_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] in
  B.set_body fh ~locals:[]
    ~body:
      ([ B.local_get 0; B.i32 1; B.i32_le_s ]
       @ B.if_ ~result:Types.I32T
           ~then_:[ B.i32 1 ]
           ~else_:[ B.local_get 0; B.local_get 0; B.i32 1; B.i32_sub; Call fh.B.fh_index; B.i32_mul ]
           ());
  B.export_func bld ~name:"f" fh.B.fh_index;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  check_values "5!" [ i32 120 ] (Interp.invoke_export inst "f" [ i32 5 ]);
  check_values "10!" [ i32 3628800 ] (Interp.invoke_export inst "f" [ i32 10 ])

let test_call_indirect () =
  let bld = B.create () in
  let double = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 2; B.i32_mul ]
  in
  let square = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.local_get 0; B.i32_mul ]
  in
  B.add_table bld ~min_size:2 ~max_size:None;
  B.add_elem bld ~offset:0 ~funcs:[ double; square ];
  let ti = B.add_type bld (Types.func_type [ Types.I32T ] [ Types.I32T ]) in
  let f = B.add_func bld ~params:[ Types.I32T; Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 1; B.local_get 0; CallIndirect ti ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  check_values "table[0] = double" [ i32 14 ] (Interp.invoke_export inst "f" [ i32 0; i32 7 ]);
  check_values "table[1] = square" [ i32 49 ] (Interp.invoke_export inst "f" [ i32 1; i32 7 ]);
  check_traps "table[5] undefined" "undefined element" (fun () ->
    ignore (Interp.invoke_export inst "f" [ i32 5; i32 7 ]))

let test_memory () =
  let body = [ B.i32 8; B.i32 12345; B.i32_store (); B.i32 8; B.i32_load () ] in
  check_values "store/load roundtrip" [ i32 12345 ]
    (run_f ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[] body []);
  let body = [ B.i32 100; B.i32' (-1l); B.i32_store8 (); B.i32 100; B.i32_load8_u () ] in
  check_values "packed store8/load8_u" [ i32 255 ]
    (run_f ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[] body [])

let test_memory_oob () =
  check_traps "oob load" "out of bounds" (fun () ->
    run_f ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 65536; B.i32_load () ] []);
  check_traps "oob straddling end" "out of bounds" (fun () ->
    run_f ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 65533; B.i32_load () ] [])

let test_memory_grow () =
  let body = [ MemorySize; Drop; B.i32 2; MemoryGrow; Drop; MemorySize ] in
  check_values "grow 1 -> 3 pages" [ i32 3 ]
    (run_f ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[] body [])

let test_host_call () =
  let calls = ref [] in
  let ext =
    Interp.host_func ~name:"log" ~params:[ Types.I32T ] ~results:[]
      (fun args -> calls := args :: !calls; [])
  in
  let r =
    run_f
      ~imports:[ ("env", "log", [ Types.I32T ], []) ]
      ~externs:[ ("env", "log", ext) ]
      ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 11; Call 0; B.i32 99 ] []
  in
  check_values "result" [ i32 99 ] r;
  check_values "host saw arg" [ i32 11 ] (List.concat !calls)

let test_globals () =
  let bld = B.create () in
  let g = B.add_global bld ~ty:Types.I32T ~mutable_:true ~init:(Value.I32 5l) in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.global_get g; B.i32 1; B.i32_add; B.global_set g; B.global_get g ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  check_values "first bump" [ i32 6 ] (Interp.invoke_export inst "f" []);
  check_values "state persists" [ i32 7 ] (Interp.invoke_export inst "f" [])

let test_start_and_data () =
  let bld = B.create () in
  B.add_memory bld ~min_pages:1 ~max_pages:None;
  B.add_data bld ~offset:16 ~bytes:"\x2A\x00\x00\x00";
  let s = B.add_func bld ~params:[] ~results:[] ~locals:[]
      ~body:[ B.i32 20; B.i32 7; B.i32_store () ]
  in
  B.set_start bld s;
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 16; B.i32_load (); B.i32 20; B.i32_load (); B.i32_add ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  check_values "data + start effects" [ i32 49 ] (Interp.invoke_export inst "f" [])

let test_select_drop () =
  let body c = [ B.i32 111; B.i32 222; B.i32 c; Select ] in
  check_values "select true" [ i32 111 ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] (body 1) []);
  check_values "select false" [ i32 222 ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] (body 0) []);
  check_values "drop" [ i32 1 ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] [ B.i32 1; B.f64 9.9; Drop ] [])

let test_fuel () =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[] ~locals:[] ~body:(B.loop [ Br 0 ]) in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~fuel:10_000 ~imports:[] m in
  Alcotest.check_raises "fuel exhausted" (Interp.Exhaustion "out of fuel") (fun () ->
    ignore (Interp.invoke_export inst "f" []))

let test_call_stack_exhaustion () =
  (* unbounded recursion raises Exhaustion instead of crashing the host stack *)
  let bld = B.create () in
  let fh = B.declare_func bld ~params:[] ~results:[ Types.I32T ] in
  B.set_body fh ~locals:[] ~body:[ Call fh.B.fh_index ];
  B.export_func bld ~name:"f" fh.B.fh_index;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  Alcotest.check_raises "deep recursion" (Interp.Exhaustion "call stack exhausted") (fun () ->
    ignore (Interp.invoke_export inst "f" []));
  (* the guard unwinds: a subsequent shallow call still works *)
  Alcotest.(check int) "depth restored" 0 inst.Interp.call_depth

let test_i64_memory () =
  let body = [ B.i32 0; Const (Value.I64 0x0123456789ABCDEFL); B.i64_store (); B.i32 0; B.i64_load () ] in
  check_values "i64 roundtrip" [ Value.I64 0x0123456789ABCDEFL ]
    (run_f ~memory:1 ~params:[] ~results:[ Types.I64T ] ~locals:[] body [])

let test_multi_arg_ordering () =
  (* regression for the operand-stack pop_n: with >= 4 differently-typed
     arguments, each argument must land in its own parameter slot, in
     order, whether the function is entered via invoke, Call or
     CallIndirect. The weighted sum is order-sensitive: any permutation
     of the arguments changes the result. *)
  let bld = B.create () in
  let sig_params = [ Types.I32T; Types.I64T; Types.F64T; Types.I32T ] in
  let callee = B.add_func bld ~params:sig_params ~results:[ Types.F64T ] ~locals:[]
      ~body:
        [ B.local_get 0; Convert F64ConvertI32S; B.f64 1000.0; B.f64_mul;
          B.local_get 1; Convert F64ConvertI64S; B.f64 100.0; B.f64_mul; B.f64_add;
          B.local_get 2; B.f64 10.0; B.f64_mul; B.f64_add;
          B.local_get 3; Convert F64ConvertI32S; B.f64_add ]
  in
  B.add_table bld ~min_size:1 ~max_size:None;
  B.add_elem bld ~offset:0 ~funcs:[ callee ];
  let ti = B.add_type bld (Types.func_type sig_params [ Types.F64T ]) in
  let push_args = [ B.i32 1; B.i64 2L; B.f64 3.0; B.i32 4 ] in
  let via_call = B.add_func bld ~params:[] ~results:[ Types.F64T ] ~locals:[]
      ~body:(push_args @ [ Call callee ])
  in
  let via_indirect = B.add_func bld ~params:[] ~results:[ Types.F64T ] ~locals:[]
      ~body:(push_args @ [ B.i32 0; CallIndirect ti ])
  in
  B.export_func bld ~name:"callee" callee;
  B.export_func bld ~name:"via_call" via_call;
  B.export_func bld ~name:"via_indirect" via_indirect;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  let expect = [ f64 1234.0 ] in
  check_values "direct invoke" expect
    (Interp.invoke_export inst "callee" [ i32 1; i64 2; f64 3.0; i32 4 ]);
  check_values "via call" expect (Interp.invoke_export inst "via_call" []);
  check_values "via call_indirect" expect (Interp.invoke_export inst "via_indirect" [])

let test_br_table_large () =
  (* the precomputed br_table side table with a 100-entry target list:
     every entry dispatches correctly, and out-of-range selectors
     (including negative ones, which are huge unsigned) take the
     default *)
  let targets = List.init 100 (fun i -> i mod 3) in
  let body =
    [ Block (Some Types.I32T);
      Block None;
      Block None;
      Block None;
      B.local_get 0;
      BrTable (targets, 2);
      End;
      B.i32 100; Br 2;
      End;
      B.i32 200; Br 1;
      End;
      B.i32 300;
      End ]
  in
  let run v = run_f ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[] body [ i32 v ] in
  let expect i = [ i32 (match i mod 3 with 0 -> 100 | 1 -> 200 | _ -> 300) ] in
  List.iter
    (fun i -> check_values (Printf.sprintf "entry %d" i) (expect i) (run i))
    [ 0; 1; 2; 3; 49; 97; 98; 99 ];
  check_values "100 (one past the end) -> default" [ i32 300 ] (run 100);
  check_values "-1 (unsigned huge) -> default" [ i32 300 ] (run (-1))

let test_shift_masking () =
  (* shift and rotate counts use only the low log2(width) bits: counts
     at or beyond the width, and negative counts (huge unsigned), must
     wrap — identically on the dispatch loop and the compiled tier *)
  let run32 tier op x c =
    let body = [ B.i32' x; B.i32' c; Binary (IBin (Types.S32, op)) ] in
    (if tier then run_f_tiered ?fuel:None else run_f)
      ~params:[] ~results:[ Types.I32T ] ~locals:[] body []
  in
  let run64 tier op x c =
    let body = [ B.i64 x; B.i64 c; Binary (IBin (Types.S64, op)) ] in
    (if tier then run_f_tiered ?fuel:None else run_f)
      ~params:[] ~results:[ Types.I64T ] ~locals:[] body []
  in
  List.iter
    (fun tier ->
       let t = if tier then "t1" else "t0" in
       let chk name expect op x c =
         check_values (t ^ " i32 " ^ name) [ Value.I32 expect ] (run32 tier op x c)
       in
       chk "shl by 32 is identity" 1l Shl 1l 32l;
       chk "shl by 33 shifts by 1" 2l Shl 1l 33l;
       chk "shl by -1 shifts by 31" 0x80000000l Shl 1l (-1l);
       chk "shr_u by 32 is identity" 0x80000000l ShrU 0x80000000l 32l;
       chk "shr_s by 33 shifts by 1" (-2l) ShrS (-4l) 33l;
       chk "shr_u by -1 shifts by 31" 1l ShrU 0x80000000l (-1l);
       chk "rotl by 36 rotates by 4" 0xFl Rotl 0xF0000000l 36l;
       chk "rotr by 36 rotates by 4" 0xF0000000l Rotr 0xFl 36l;
       let chk name expect op x c =
         check_values (t ^ " i64 " ^ name) [ Value.I64 expect ] (run64 tier op x c)
       in
       chk "shl by 64 is identity" 1L Shl 1L 64L;
       chk "shl by 65 shifts by 1" 2L Shl 1L 65L;
       chk "shl by -1 shifts by 63" Int64.min_int Shl 1L (-1L);
       chk "shr_u by 64 is identity" Int64.min_int ShrU Int64.min_int 64L;
       chk "shr_s by 65 shifts by 1" (-2L) ShrS (-4L) 65L;
       chk "shr_u by -1 shifts by 63" 1L ShrU Int64.min_int (-1L);
       chk "rotl by 68 rotates by 4" 0xFL Rotl 0xF000000000000000L 68L;
       chk "rotr by 68 rotates by 4" 0xF000000000000000L Rotr 0xFL 68L)
    [ false; true ]

let test_tier1_traps () =
  (* traps and exhaustion must carry the same identity out of compiled
     frames as out of the dispatch loop *)
  check_traps "t1 div by zero" "divide by zero" (fun () ->
    run_f_tiered ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 1; B.i32 0; B.i32_div_s ] []);
  check_traps "t1 div overflow" "integer overflow" (fun () ->
    run_f_tiered ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32' Int32.min_int; B.i32' (-1l); B.i32_div_s ] []);
  check_traps "t1 oob load" "out of bounds" (fun () ->
    run_f_tiered ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 65536; B.i32_load () ] []);
  check_traps "t1 oob straddling end" "out of bounds" (fun () ->
    run_f_tiered ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 65533; B.i32_load () ] []);
  check_traps "t1 unreachable" "unreachable executed" (fun () ->
    run_f_tiered ~params:[] ~results:[] ~locals:[] [ Unreachable ] []);
  (* call-depth exhaustion with every frame compiled *)
  let bld = B.create () in
  let fh = B.declare_func bld ~params:[] ~results:[ Types.I32T ] in
  B.set_body fh ~locals:[] ~body:[ Call fh.B.fh_index ];
  B.export_func bld ~name:"f" fh.B.fh_index;
  let m = B.build bld in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  ignore (Tier1.compile_all inst);
  Alcotest.check_raises "t1 deep recursion" (Interp.Exhaustion "call stack exhausted")
    (fun () -> ignore (Interp.invoke_export inst "f" []));
  Alcotest.(check int) "t1 depth restored" 0 inst.Interp.call_depth

let test_tier1_fuel_parity () =
  (* out of fuel must cut both tiers at exactly the same instruction:
     the same exception and the same step count *)
  let mk () =
    let bld = B.create () in
    let f =
      B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[ Types.I32T ]
        ~body:loop_sum_body
    in
    B.export_func bld ~name:"f" f;
    B.build bld
  in
  let run tiered =
    let m = mk () in
    Validate.validate_module m;
    let inst = Interp.instantiate ~fuel:1_000 ~imports:[] m in
    if tiered then ignore (Tier1.compile_all inst);
    (match Interp.invoke_export inst "f" [ i32 1_000_000 ] with
     | _ -> Alcotest.fail "expected exhaustion"
     | exception Interp.Exhaustion "out of fuel" -> ());
    inst.Interp.steps
  in
  Alcotest.(check int) "same steps at exhaustion" (run false) (run true)

let test_deep_operand_stack () =
  (* push 3000 constants before consuming any: the shared operand stack
     must grow well past its initial capacity and keep every slot *)
  let n = 3000 in
  let body =
    List.init n (fun _ -> B.i32 1) @ List.init (n - 1) (fun _ -> B.i32_add)
  in
  check_values "sum of 3000 ones" [ i32 n ]
    (run_f ~params:[] ~results:[ Types.I32T ] ~locals:[] body [])

let suite =
  [
    case "consts" test_consts;
    case "arith" test_arith;
    case "unsigned" test_unsigned;
    case "clz/ctz/popcnt" test_clz_popcnt;
    case "float" test_float;
    case "conversions" test_conversions;
    case "trunc traps" test_trunc_traps;
    case "div traps" test_div_traps;
    case "locals and params" test_locals_params;
    case "block and br" test_block_br;
    case "if/else" test_if_else;
    case "if without else" test_if_no_else;
    case "loop" test_loop;
    case "br_table" test_br_table;
    case "calls" test_calls;
    case "recursion" test_recursion;
    case "call_indirect" test_call_indirect;
    case "memory" test_memory;
    case "memory oob" test_memory_oob;
    case "memory.grow" test_memory_grow;
    case "host calls" test_host_call;
    case "globals" test_globals;
    case "start and data segments" test_start_and_data;
    case "select/drop" test_select_drop;
    case "fuel" test_fuel;
    case "call stack exhaustion" test_call_stack_exhaustion;
    case "i64 memory" test_i64_memory;
    case "multi-arg ordering (call / call_indirect)" test_multi_arg_ordering;
    case "br_table with 100 entries" test_br_table_large;
    case "shift/rotate count masking (t0 and t1)" test_shift_masking;
    case "tier-1 traps" test_tier1_traps;
    case "tier-1 out-of-fuel parity" test_tier1_fuel_parity;
    case "deep operand stack" test_deep_operand_stack;
  ]
