(** Validator: well-typed modules pass, each class of type error is
    rejected with a meaningful message. *)

open Wasm
open Wasm.Ast
module B = Wasm.Builder

let case name f = Alcotest.test_case name `Quick f

let simple_module ?(params = []) ?(results = []) ?(locals = []) ?memory ?table body =
  let bld = B.create () in
  (match memory with Some p -> B.add_memory bld ~min_pages:p ~max_pages:None | None -> ());
  (match table with Some s -> B.add_table bld ~min_size:s ~max_size:None | None -> ());
  ignore (B.add_func bld ~params ~results ~locals ~body);
  B.build bld

let expect_invalid name substring m =
  match Validate.validate_module m with
  | () -> Alcotest.failf "%s: expected Invalid" name
  | exception Validate.Invalid msg ->
    if not (Helpers.contains msg substring) then
      Alcotest.failf "%s: message %S does not mention %S" name msg substring

let test_corpus_valid () =
  List.iter
    (fun (e : Workloads.Corpus.entry) -> Validate.validate_module e.module_)
    (Workloads.Corpus.make ~n:4 ())

let test_stack_underflow () =
  expect_invalid "add on empty stack" "underflow"
    (simple_module ~results:[ Types.I32T ] [ B.i32 1; B.i32_add ])

let test_type_mismatch () =
  expect_invalid "i32 + f64" "type mismatch"
    (simple_module ~results:[ Types.I32T ] [ B.i32 1; B.f64 2.0; B.i32_add ])

let test_wrong_result () =
  expect_invalid "returns f64 from i32 function" "type mismatch"
    (simple_module ~results:[ Types.I32T ] [ B.f64 1.0 ])

let test_superfluous_values () =
  expect_invalid "two values left" "superfluous"
    (simple_module ~results:[ Types.I32T ] [ B.i32 1; B.i32 2 ])

let test_missing_result () =
  expect_invalid "nothing left" "underflow"
    (simple_module ~results:[ Types.I32T ] [])

let test_bad_local () =
  expect_invalid "local out of range" "local index"
    (simple_module ~results:[ Types.I32T ] [ B.local_get 3 ])

let test_local_type_mismatch () =
  expect_invalid "set f64 local with i32" "type mismatch"
    (simple_module ~locals:[ Types.F64T ] [ B.i32 1; B.local_set 0 ])

let test_bad_label () =
  expect_invalid "br 5" "label"
    (simple_module [ Br 5 ])

let test_unbalanced_blocks () =
  expect_invalid "unclosed block" "unclosed"
    (simple_module [ Block None ]);
  expect_invalid "stray end" "unbalanced" (simple_module [ End ])

let test_else_without_if () =
  expect_invalid "else at top" "else" (simple_module [ Else; End ])

let test_if_result_needs_else () =
  expect_invalid "if (result i32) without else" "without else"
    (simple_module ~results:[ Types.I32T ] [ B.i32 1; If (Some Types.I32T); B.i32 2; End ])

let test_select_mismatch () =
  expect_invalid "select arms differ" "select"
    (simple_module ~results:[ Types.I32T ] [ B.i32 1; B.f64 2.0; B.i32 0; Select ])

let test_memory_required () =
  expect_invalid "load without memory" "no memory"
    (simple_module ~results:[ Types.I32T ] [ B.i32 0; B.i32_load () ])

let test_table_required () =
  expect_invalid "call_indirect without table" "no table"
    (simple_module ~results:[ Types.I32T ] [ B.i32 0; CallIndirect 0 ])

let test_bad_alignment () =
  expect_invalid "align 8 bytes on i32 load" "alignment"
    (simple_module ~memory:1 ~results:[ Types.I32T ]
       [ B.i32 0; Load { lty = Types.I32T; lalign = 3; loffset = 0; lpack = None } ])

let test_immutable_global () =
  let bld = B.create () in
  ignore (B.add_global bld ~ty:Types.I32T ~mutable_:false ~init:(Value.I32 1l));
  ignore (B.add_func bld ~params:[] ~results:[] ~locals:[] ~body:[ B.i32 2; B.global_set 0 ]);
  expect_invalid "set immutable global" "immutable" (B.build bld)

let test_bad_call_index () =
  expect_invalid "call unknown function" "function index"
    (simple_module [ Call 42 ])

let test_bad_export () =
  let bld = B.create () in
  ignore (B.add_func bld ~params:[] ~results:[] ~locals:[] ~body:[]);
  B.export_func bld ~name:"f" 9;
  expect_invalid "export of missing function" "out of range" (B.build bld)

let test_duplicate_export () =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[] ~locals:[] ~body:[] in
  B.export_func bld ~name:"f" f;
  B.export_func bld ~name:"f" f;
  expect_invalid "duplicate export name" "duplicate" (B.build bld)

let test_bad_start () =
  let bld = B.create () in
  let f = B.add_func bld ~params:[ Types.I32T ] ~results:[] ~locals:[] ~body:[] in
  B.set_start bld f;
  expect_invalid "start with params" "start function" (B.build bld)

let test_br_table_arity () =
  (* one label targets a block with a result, the other without *)
  let body =
    [ Block (Some Types.I32T); Block None;
      B.i32 0; BrTable ([ 0 ], 1);
      End; B.i32 1; End ]
  in
  expect_invalid "br_table label types differ" "br_table"
    (simple_module ~results:[ Types.I32T ] body)

let test_dead_code_is_valid () =
  (* values of any type may be consumed after an unconditional branch *)
  Validate.validate_module
    (simple_module ~results:[ Types.I32T ]
       [ Block (Some Types.I32T); B.i32 1; Br 0; B.f64 1.0; Drop; B.i32_add; End ]);
  Validate.validate_module
    (simple_module ~results:[ Types.I32T ] [ Unreachable; B.i32_add ])

let test_loop_label_types () =
  (* a branch to a loop takes no values even when the loop has a result *)
  Validate.validate_module
    (simple_module ~results:[ Types.I32T ]
       [ Loop (Some Types.I32T); B.i32 0; BrIf 0; B.i32 5; End ])

let test_global_init_checked () =
  let m =
    { empty_module with
      globals = [ { gtype = { Types.content = Types.I32T; mutability = Types.Mutable };
                    ginit = [ Const (Value.F64 1.0) ] } ] }
  in
  expect_invalid "global init type" "constant expression" m

let test_multiple_memories_rejected () =
  let m =
    { empty_module with
      memories =
        [ { Types.mem_limits = { Types.lim_min = 1; lim_max = None } };
          { Types.mem_limits = { Types.lim_min = 1; lim_max = None } } ] }
  in
  expect_invalid "two memories" "multiple memories" m

let test_limits_checked () =
  let m =
    { empty_module with
      memories = [ { Types.mem_limits = { Types.lim_min = 5; lim_max = Some 2 } } ] }
  in
  expect_invalid "max < min" "maximum" m

let suite =
  [
    case "corpus modules are valid" test_corpus_valid;
    case "stack underflow" test_stack_underflow;
    case "operand type mismatch" test_type_mismatch;
    case "wrong result type" test_wrong_result;
    case "superfluous values" test_superfluous_values;
    case "missing result" test_missing_result;
    case "bad local index" test_bad_local;
    case "local type mismatch" test_local_type_mismatch;
    case "bad branch label" test_bad_label;
    case "unbalanced blocks" test_unbalanced_blocks;
    case "else without if" test_else_without_if;
    case "if with result needs else" test_if_result_needs_else;
    case "select arm mismatch" test_select_mismatch;
    case "load needs memory" test_memory_required;
    case "call_indirect needs table" test_table_required;
    case "over-aligned access" test_bad_alignment;
    case "immutable global assignment" test_immutable_global;
    case "bad call index" test_bad_call_index;
    case "bad export index" test_bad_export;
    case "duplicate export names" test_duplicate_export;
    case "start signature" test_bad_start;
    case "br_table arity check" test_br_table_arity;
    case "dead code validates" test_dead_code_is_valid;
    case "loop label types" test_loop_label_types;
    case "global initialiser checked" test_global_init_checked;
    case "single memory only" test_multiple_memories_rejected;
    case "limits checked" test_limits_checked;
  ]
