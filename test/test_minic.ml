(** MiniC compiler: compiled programs validate and compute correctly. *)

open Wasm
open Minic
open Mc_ast
open Mc_ast.Dsl

let case name fn = Alcotest.test_case name `Quick fn

let run_program ?(fuel = 100_000_000) p fname args =
  let m = Mc_compile.compile_checked p in
  let inst = Interp.instantiate ~fuel ~imports:[] m in
  Interp.invoke_export inst fname args

let check_i32 msg expected actual =
  Helpers.check_values msg [ Helpers.i32 expected ] actual

let test_arith () =
  let p =
    program
      [ func "calc" ~params:[ ("x", TInt) ] ~result:TInt
          [ Return (Some ((v "x" * i 3 + i 4) / i 2)) ] ]
  in
  check_i32 "(5*3+4)/2" 9 (run_program p "calc" [ Helpers.i32 5 ])

let test_float_arith () =
  let p =
    program
      [ func "hypot2" ~params:[ ("a", TFloat); ("b", TFloat) ] ~result:TFloat
          [ Return (Some (v "a" * v "a" + v "b" * v "b")) ] ]
  in
  Helpers.check_values "3^2+4^2" [ Helpers.f64 25.0 ]
    (run_program p "hypot2" [ Helpers.f64 3.0; Helpers.f64 4.0 ])

let test_while_loop () =
  (* gcd via Euclid *)
  let p =
    program
      [ func "gcd" ~params:[ ("a", TInt); ("b", TInt) ] ~result:TInt ~locals:[ ("t", TInt) ]
          [ While (v "b" <> i 0,
                   [ "t" := v "b";
                     "b" := v "a" % v "b";
                     "a" := v "t" ]);
            Return (Some (v "a")) ] ]
  in
  check_i32 "gcd(48,18)" 6 (run_program p "gcd" [ Helpers.i32 48; Helpers.i32 18 ])

let test_for_loop () =
  let p =
    program
      [ func "sum" ~params:[ ("n", TInt) ] ~result:TInt
          ~locals:[ ("k", TInt); ("acc", TInt) ]
          [ "acc" := i 0;
            For ("k", i 1, v "n" + i 1, [ "acc" := v "acc" + v "k" ]);
            Return (Some (v "acc")) ] ]
  in
  check_i32 "sum 1..100" 5050 (run_program p "sum" [ Helpers.i32 100 ])

let test_for_step_break_continue () =
  let p =
    program
      [ func "quirky" ~params:[] ~result:TInt ~locals:[ ("k", TInt); ("acc", TInt) ]
          [ "acc" := i 0;
            ForStep ("k", i 0, i 100, i 2,
                     [ If (v "k" = i 10, [ Continue ], []);
                       If (v "k" > i 20, [ Break ], []);
                       "acc" := v "acc" + v "k" ]);
            Return (Some (v "acc")) ] ]
  in
  (* 0+2+4+6+8+12+14+16+18+20 = 100 *)
  check_i32 "break/continue" 100 (run_program p "quirky" [])

let test_recursion () =
  let p =
    program
      [ func "fib" ~params:[ ("n", TInt) ] ~result:TInt
          [ If (v "n" < i 2, [ Return (Some (v "n")) ], []);
            Return (Some (Call ("fib", [ v "n" - i 1 ]) + Call ("fib", [ v "n" - i 2 ]))) ] ]
  in
  check_i32 "fib 15" 610 (run_program p "fib" [ Helpers.i32 15 ])

let test_memory () =
  let p =
    program
      [ func "reverse_sum" ~params:[ ("n", TInt) ] ~result:TInt
          ~locals:[ ("k", TInt); ("acc", TInt) ]
          [ For ("k", i 0, v "n", [ istore (i 0) (v "k") (v "k" * v "k") ]);
            "acc" := i 0;
            For ("k", i 0, v "n", [ "acc" := v "acc" + iload (i 0) (v "k") ]);
            Return (Some (v "acc")) ] ]
  in
  (* sum of squares 0..9 = 285 *)
  check_i32 "array of squares" 285 (run_program p "reverse_sum" [ Helpers.i32 10 ])

let test_switch () =
  let p =
    program
      [ func "classify" ~params:[ ("x", TInt) ] ~result:TInt ~locals:[ ("r", TInt) ]
          [ Switch (v "x",
                    [ [ "r" := i 100 ];  (* case 0 *)
                      [ "r" := i 200 ];  (* case 1 *)
                      [ "r" := i 300 ] ],  (* case 2 *)
                    [ "r" := i (-1) ]);
            Return (Some (v "r")) ] ]
  in
  let run x = run_program p "classify" [ Helpers.i32 x ] in
  check_i32 "case 0" 100 (run 0);
  check_i32 "case 1" 200 (run 1);
  check_i32 "case 2" 300 (run 2);
  check_i32 "default" (-1) (run 7)

let test_globals () =
  let p =
    program
      ~globals:[ ("counter", TInt, Int 0l) ]
      [ func "bump" ~params:[] ~result:TInt
          [ SetGlobal ("counter", Global "counter" + i 1);
            Return (Some (Global "counter")) ] ]
  in
  let m = Mc_compile.compile_checked p in
  let inst = Interp.instantiate ~imports:[] m in
  check_i32 "1st" 1 (Interp.invoke_export inst "bump" []);
  check_i32 "2nd" 2 (Interp.invoke_export inst "bump" [])

let test_long_arith () =
  let p =
    program
      [ func "mix64" ~params:[ ("x", TLong) ] ~result:TInt
          ~locals:[ ("h", TLong) ]
          [ "h" := Binop (BXor, v "x", Binop (ShrU, v "x", Long 33L));
            "h" := Binop (Mul, v "h", Long 0xff51afd7ed558ccdL);
            Return (Some (Cast (TInt, Binop (BAnd, v "h", Long 0xFFFFL)))) ] ]
  in
  let r = run_program p "mix64" [ Value.I64 42L ] in
  (* reference value computed with OCaml Int64 semantics *)
  let h = Int64.logxor 42L (Int64.shift_right_logical 42L 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let expected = Int64.to_int (Int64.logand h 0xFFFFL) in
  check_i32 "murmur-style mix" expected r

let test_single_arith () =
  let p =
    program
      [ func "f32ops" ~params:[] ~result:TFloat
          ~locals:[ ("s", TSingle) ]
          [ "s" := Binop (Add, Single 1.5, Single 2.25);
            Return (Some (Cast (TFloat, v "s"))) ] ]
  in
  Helpers.check_values "f32 add" [ Helpers.f64 3.75 ] (run_program p "f32ops" [])

let test_select_expr () =
  let p =
    program
      [ func "max3" ~params:[ ("a", TInt); ("b", TInt) ] ~result:TInt
          [ Return (Some (Select (v "a" > v "b", v "a", v "b"))) ] ]
  in
  check_i32 "max" 9 (run_program p "max3" [ Helpers.i32 4; Helpers.i32 9 ])

let test_indirect_call () =
  let p =
    program
      ~table:[ "ten"; "twenty" ]
      [ func "ten" ~params:[] ~result:TInt [ Return (Some (i 10)) ];
        func "twenty" ~params:[] ~result:TInt [ Return (Some (i 20)) ];
        func "dispatch" ~params:[ ("which", TInt) ] ~result:TInt
          [ Return (Some (CallIndirect (v "which", [], Some TInt))) ] ]
  in
  check_i32 "table[0]" 10 (run_program p "dispatch" [ Helpers.i32 0 ]);
  check_i32 "table[1]" 20 (run_program p "dispatch" [ Helpers.i32 1 ])

let test_data_and_start () =
  let p =
    program
      ~data:[ (64, "\x07\x00\x00\x00") ]
      ~start:"init"
      [ func "init" ~params:[] ~export:false
          [ istore (i 0) (i 20) (iload (i 64) (i 0) * i 6) ];
        func "get" ~params:[] ~result:TInt [ Return (Some (iload (i 0) (i 20))) ] ]
  in
  check_i32 "start ran over data" 42 (run_program p "get" [])

let test_nested_loops () =
  (* matrix multiply 3x3, the classic PolyBench shape *)
  let n = 3 in
  let a = 0 and b = 1024 and c = 2048 in
  let p =
    program
      [ func "matmul" ~params:[] ~result:TFloat
          ~locals:[ ("i", TInt); ("j", TInt); ("k", TInt); ("acc", TFloat) ]
          [ For ("i", i 0, i n,
                 [ For ("j", i 0, i n,
                        [ fstore (i a) (v "i" * i n + v "j")
                            (Cast (TFloat, v "i" + v "j"));
                          fstore (i b) (v "i" * i n + v "j")
                            (Cast (TFloat, v "i" - v "j")) ]) ]);
            For ("i", i 0, i n,
                 [ For ("j", i 0, i n,
                        [ "acc" := f 0.0;
                          For ("k", i 0, i n,
                               [ "acc" := v "acc"
                                          + fload (i a) (v "i" * i n + v "k")
                                            * fload (i b) (v "k" * i n + v "j") ]);
                          fstore (i c) (v "i" * i n + v "j") (v "acc") ]) ]);
            Return (Some (fload (i c) (i 8))) ] ]
  in
  (* C[2][2] = sum_k A[2][k] * B[k][2] = (2)(−2)+(3)(−1)+(4)(0) = -7 *)
  Helpers.check_values "C[2][2]" [ Helpers.f64 (-7.0) ] (run_program p "matmul" [])

let test_instrumented_minic () =
  (* a compiled MiniC program survives full instrumentation (RQ2 again) *)
  let p =
    program
      [ func "work" ~params:[ ("n", TInt) ] ~result:TInt
          ~locals:[ ("k", TInt); ("acc", TInt) ]
          [ "acc" := i 1;
            For ("k", i 0, v "n",
                 [ "acc" := v "acc" * i 3 + v "k";
                   istore (i 0) (v "k" % i 16) (v "acc") ]);
            Return (Some (v "acc" + iload (i 0) (i 2))) ] ]
  in
  let m = Mc_compile.compile_checked p in
  let res = Wasabi.Instrument.instrument m in
  Validate.validate_module res.Wasabi.Instrument.instrumented;
  let expected = Interp.invoke_export (Interp.instantiate ~imports:[] m) "work" [ Helpers.i32 20 ] in
  let inst, _ = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  Helpers.check_values "same result" expected (Interp.invoke_export inst "work" [ Helpers.i32 20 ])

let test_type_errors () =
  let bad =
    program [ func "bad" ~params:[] ~result:TInt [ Return (Some (Float 1.0)) ] ]
  in
  (match Mc_compile.compile_checked bad with
   | _ -> Alcotest.fail "expected a compile error"
   | exception Mc_compile.Compile_error _ -> ());
  let bad2 =
    program [ func "bad2" ~params:[] [ Expr (Binop (Add, Int 1l, Float 2.0)) ] ]
  in
  (match Mc_compile.compile_checked bad2 with
   | _ -> Alcotest.fail "expected a compile error"
   | exception Mc_compile.Compile_error _ -> ())

let suite =
  [
    case "arith" test_arith;
    case "float arith" test_float_arith;
    case "while (gcd)" test_while_loop;
    case "for (sum)" test_for_loop;
    case "for with step/break/continue" test_for_step_break_continue;
    case "recursion (fib)" test_recursion;
    case "memory arrays" test_memory;
    case "switch -> br_table" test_switch;
    case "globals" test_globals;
    case "i64 arithmetic" test_long_arith;
    case "f32 arithmetic" test_single_arith;
    case "select" test_select_expr;
    case "indirect calls" test_indirect_call;
    case "data segments + start" test_data_and_start;
    case "nested loops (matmul)" test_nested_loops;
    case "instrumented MiniC is faithful" test_instrumented_minic;
    case "type errors rejected" test_type_errors;
  ]
