let () =
  Alcotest.run "wasabi"
    [
      ("wasm:value", Test_wasm_value.suite);
      ("wasm:binary", Test_wasm_binary.suite);
      ("wasm:validate", Test_wasm_validate.suite);
      ("wasm:wat", Test_wat.suite);
      ("wasm:spec", Test_spec_corpus.suite);
      ("wasm:interp", Test_wasm_interp.suite);
      ("wasm:malformed", Test_malformed.suite);
      ("wasm:linking", Test_linking.suite);
      ("wasabi:hooks", Test_hooks.suite);
      ("wasabi:decoders", Test_decoders.suite);
      ("wasabi:instrument", Test_instrument.suite);
      ("static", Test_static.suite);
      ("absint", Test_absint.suite);
      ("analyses", Test_analyses.suite);
      ("minic", Test_minic.suite);
      ("faithfulness", Test_faithfulness.suite);
      ("extensions", Test_extensions.suite);
      ("workloads", Test_workloads.suite);
      ("bench:support", Test_bench.suite);
      ("probes", Test_probes.suite);
      ("fuzz", Test_fuzz.suite);
      ("robust", Test_robust.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
    ]
