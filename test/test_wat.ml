(** Text format: parser (linear and folded forms, names, memargs) and
    printer/parser round trips. *)

open Wasm
open Helpers

let case name fn = Alcotest.test_case name `Quick fn

let run_wat ?(fname = "f") src args =
  let m = Wat_parse.parse src in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  Interp.invoke_export inst fname args

let test_linear () =
  let r =
    run_wat
      {|(module
          (func (export "f") (param i32) (result i32)
            local.get 0
            i32.const 10
            i32.add))|}
      [ i32 32 ]
  in
  check_values "32+10" [ i32 42 ] r

let test_folded () =
  let r =
    run_wat
      {|(module
          (func (export "f") (result i32)
            (i32.mul (i32.add (i32.const 2) (i32.const 3)) (i32.const 4))))|}
      []
  in
  check_values "(2+3)*4" [ i32 20 ] r

let test_folded_if () =
  let src =
    {|(module
        (func (export "f") (param i32) (result i32)
          (if (result i32) (i32.gt_s (local.get 0) (i32.const 5))
            (then (i32.const 100))
            (else (i32.const 200)))))|}
  in
  check_values "then" [ i32 100 ] (run_wat src [ i32 9 ]);
  check_values "else" [ i32 200 ] (run_wat src [ i32 1 ])

let test_named_identifiers () =
  let src =
    {|(module
        (func $double (param $x i32) (result i32)
          (i32.mul (local.get $x) (i32.const 2)))
        (func (export "f") (param i32) (result i32)
          (call $double (local.get 0))))|}
  in
  check_values "call by name" [ i32 14 ] (run_wat src [ i32 7 ])

let test_block_labels () =
  let src =
    {|(module
        (func (export "f") (param i32) (result i32)
          (local $acc i32)
          block $exit
            loop $continue
              local.get 0
              i32.eqz
              br_if $exit
              local.get $acc
              local.get 0
              i32.add
              local.set $acc
              local.get 0
              i32.const 1
              i32.sub
              local.set 0
              br $continue
            end
          end
          local.get $acc))|}
  in
  check_values "sum via labels" [ i32 55 ] (run_wat src [ i32 10 ])

let test_memory_and_memarg () =
  let src =
    {|(module
        (memory 1)
        (func (export "f") (result i32)
          i32.const 8
          i32.const 77
          i32.store offset=4
          i32.const 4
          i32.load offset=8))|}
  in
  check_values "store/load with offsets" [ i32 77 ] (run_wat src [])

let test_consecutive_memargs () =
  (* regression: an earlier load must not steal a later load's memarg *)
  let src =
    {|(module
        (memory 1)
        (func (export "f") (result i32)
          i32.const 0
          i32.const 5
          i32.store offset=4
          i32.const 0
          i32.const 7
          i32.store offset=12
          i32.const 0
          i32.load offset=4
          i32.const 0
          i32.load offset=12
          i32.add))|}
  in
  check_values "5+7" [ i32 12 ] (run_wat src [])

let test_globals_data_start () =
  let src =
    {|(module
        (memory 1)
        (global $g (mut i32) (i32.const 5))
        (data (i32.const 64) "\2a\00\00\00")
        (func $init
          global.get $g
          i32.const 64
          i32.load
          i32.add
          global.set $g)
        (start $init)
        (func (export "f") (result i32)
          global.get $g))|}
  in
  check_values "5 + 42 from data" [ i32 47 ] (run_wat src [])

let test_table_and_indirect () =
  let src =
    {|(module
        (type $sig (func (result i32)))
        (table 2 funcref)
        (elem (i32.const 0) $ten $twenty)
        (func $ten (result i32) i32.const 10)
        (func $twenty (result i32) i32.const 20)
        (func (export "f") (param i32) (result i32)
          local.get 0
          call_indirect (type $sig)))|}
  in
  check_values "table 0" [ i32 10 ] (run_wat src [ i32 0 ]);
  check_values "table 1" [ i32 20 ] (run_wat src [ i32 1 ])

let test_br_table_text () =
  let src =
    {|(module
        (func (export "f") (param i32) (result i32)
          block $b2
            block $b1
              block $b0
                local.get 0
                br_table $b0 $b1 $b2
              end
              i32.const 10
              return
            end
            i32.const 20
            return
          end
          i32.const 30))|}
  in
  check_values "case 0" [ i32 10 ] (run_wat src [ i32 0 ]);
  check_values "case 1" [ i32 20 ] (run_wat src [ i32 1 ]);
  check_values "default" [ i32 30 ] (run_wat src [ i32 5 ])

let test_comments () =
  let src =
    {|(module
        ;; line comment
        (; block (; nested ;) comment ;)
        (func (export "f") (result i32)
          i32.const 3 ;; trailing
          i32.const 4
          i32.add))|}
  in
  check_values "comments ignored" [ i32 7 ] (run_wat src [])

let test_imports_text () =
  let src =
    {|(module
        (import "env" "add1" (func $add1 (param i32) (result i32)))
        (func (export "f") (param i32) (result i32)
          (call $add1 (local.get 0))))|}
  in
  let m = Wat_parse.parse src in
  Validate.validate_module m;
  let ext =
    Interp.host_func ~name:"add1" ~params:[ Types.I32T ] ~results:[ Types.I32T ]
      (function [ Value.I32 x ] -> [ Value.I32 (Int32.add x 1l) ] | _ -> assert false)
  in
  let inst = Interp.instantiate ~imports:[ ("env", "add1", ext) ] m in
  check_values "imported call" [ i32 6 ] (Interp.invoke_export inst "f" [ i32 5 ])

let test_print_parse_roundtrip () =
  (* our printer's output parses back to a behaviourally equal module *)
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let text = Wat.to_string e.module_ in
       let m' = Wat_parse.parse text in
       Validate.validate_module m';
       let expected = Interp.invoke_export (Interp.instantiate ~imports:[] e.module_) "run" [] in
       let actual = Interp.invoke_export (Interp.instantiate ~imports:[] m') "run" [] in
       check_values e.name expected actual)
    (Workloads.Corpus.make ~n:4 ())

let test_instrumented_print_parse_roundtrip () =
  (* instrumented modules (hook imports with (type n) uses) also survive
     the text format *)
  let e = Workloads.Corpus.find (Workloads.Corpus.make ~n:4 ()) "gemm" in
  let res = Wasabi.Instrument.instrument e.module_ in
  let text = Wat.to_string res.Wasabi.Instrument.instrumented in
  let reparsed = Wat_parse.parse text in
  Validate.validate_module reparsed;
  let expected = Interp.invoke_export (Interp.instantiate ~imports:[] e.module_) "run" [] in
  let res' = { res with Wasabi.Instrument.instrumented = reparsed } in
  let inst, _ = Wasabi.Runtime.instantiate res' Wasabi.Analysis.default in
  check_values "same behaviour" expected (Interp.invoke_export inst "run" [])

let test_parse_errors () =
  let bad name src substring =
    match Wat_parse.parse src with
    | _ -> Alcotest.failf "%s: expected Parse_error" name
    | exception Wat_parse.Parse_error msg ->
      if not (Helpers.contains msg substring) then
        Alcotest.failf "%s: %S does not mention %S" name msg substring
  in
  bad "unclosed paren" "(module (func" "unclosed";
  bad "unknown instruction" "(module (func i32.bogus))" "unknown instruction";
  bad "unknown label" "(module (func br $nope))" "unknown label";
  bad "unknown function" "(module (func call $nope))" "unknown function";
  bad "bad literal" "(module (func i32.const zzz))" "bad i32"

let suite =
  [
    case "linear instructions" test_linear;
    case "folded expressions" test_folded;
    case "folded if/then/else" test_folded_if;
    case "$names for funcs/params" test_named_identifiers;
    case "block labels" test_block_labels;
    case "memory and memarg" test_memory_and_memarg;
    case "consecutive memargs" test_consecutive_memargs;
    case "globals, data, start" test_globals_data_start;
    case "table and call_indirect" test_table_and_indirect;
    case "br_table with labels" test_br_table_text;
    case "comments" test_comments;
    case "imports with names" test_imports_text;
    case "print/parse round trip over corpus" test_print_parse_roundtrip;
    case "instrumented print/parse round trip" test_instrumented_print_parse_roundtrip;
    case "parse errors" test_parse_errors;
  ]
