(** Numeric semantics: unit tests against known values plus qcheck
    properties for the word-level operations and conversions. *)

open Wasm

let case name fn = Alcotest.test_case name `Quick fn

(* --- unit: known values ------------------------------------------------ *)

let test_i32_edge_cases () =
  Alcotest.(check int32) "min/-1 rem" 0l (Value.I32_ops.rem_s Int32.min_int (-1l));
  Alcotest.(check int32) "shl by 32 wraps to 0 shift" 5l (Value.I32_ops.shl 5l 32l);
  Alcotest.(check int32) "shr_u -1 by 31" 1l (Value.I32_ops.shr_u (-1l) 31l);
  Alcotest.(check int32) "rotl full circle" 0x12345678l (Value.I32_ops.rotl 0x12345678l 32l);
  Alcotest.(check bool) "u-compare wraps" true (Value.I32_ops.gt_u (-1l) 0l)

let test_i64_edge_cases () =
  Alcotest.(check int64) "min/-1 rem" 0L (Value.I64_ops.rem_s Int64.min_int (-1L));
  Alcotest.(check int64) "rotr" 0x8000000000000000L (Value.I64_ops.rotr 1L 1L);
  Alcotest.(check int) "popcnt -1" 64 (Value.I64_ops.popcnt (-1L));
  Alcotest.(check int) "ctz min_int" 63 (Value.I64_ops.ctz Int64.min_int)

let test_float_semantics () =
  Alcotest.(check bool) "min(nan, 1) is nan" true (Float.is_nan (Value.F_ops.fmin Float.nan 1.0));
  Alcotest.(check bool) "max(1, nan) is nan" true (Float.is_nan (Value.F_ops.fmax 1.0 Float.nan));
  Alcotest.(check (float 0.0)) "min(-0, +0) = -0" (1.0 /. -0.0)
    (1.0 /. Value.F_ops.fmin (-0.0) 0.0);
  Alcotest.(check (float 0.0)) "max(-0, +0) = +0" (1.0 /. 0.0)
    (1.0 /. Value.F_ops.fmax (-0.0) 0.0);
  Alcotest.(check (float 0.0)) "nearest -0.5 = -0" (1.0 /. -0.0)
    (1.0 /. Value.F_ops.nearest (-0.5))

let test_f32_rounding () =
  (* 0.1 is not representable; f32 rounds to a different double than f64 *)
  let f32_01 = Value.F32_repr.to_float (Value.F32_repr.of_float 0.1) in
  Alcotest.(check bool) "f32(0.1) <> 0.1" true (f32_01 <> 0.1);
  Alcotest.(check bool) "but close" true (Float.abs (f32_01 -. 0.1) < 1e-8);
  (* integers in f32 range are exact *)
  Alcotest.(check (float 0.0)) "2^20 exact" 1048576.0
    (Value.F32_repr.to_float (Value.F32_repr.of_float 1048576.0))

let test_trunc_boundaries () =
  Alcotest.(check int32) "max int32" 2147483647l (Value.Cvt.i32_trunc_s 2147483647.0);
  Alcotest.(check int32) "min int32" Int32.min_int (Value.Cvt.i32_trunc_s (-2147483648.0));
  Helpers.check_traps "2^31 overflows" "overflow" (fun () ->
    Value.Cvt.i32_trunc_s 2147483648.0);
  Alcotest.(check int32) "u32 max" (-1l) (Value.Cvt.i32_trunc_u 4294967295.0);
  Helpers.check_traps "2^32 overflows unsigned" "overflow" (fun () ->
    Value.Cvt.i32_trunc_u 4294967296.0);
  Alcotest.(check int64) "u64 top bit" Int64.min_int (Value.Cvt.i64_trunc_u 9223372036854775808.0)

let test_trunc_sat () =
  Alcotest.(check int32) "sat nan" 0l (Value.Cvt.i32_trunc_sat_s Float.nan);
  Alcotest.(check int32) "sat high" Int32.max_int (Value.Cvt.i32_trunc_sat_s 1e20);
  Alcotest.(check int32) "sat low" Int32.min_int (Value.Cvt.i32_trunc_sat_s (-1e20));
  Alcotest.(check int32) "sat u high" (-1l) (Value.Cvt.i32_trunc_sat_u 1e20);
  Alcotest.(check int32) "sat u low" 0l (Value.Cvt.i32_trunc_sat_u (-3.5));
  Alcotest.(check int64) "sat i64 exact" 123L (Value.Cvt.i64_trunc_sat_s 123.9)

let test_u64_to_float () =
  Alcotest.(check (float 0.0)) "positive" 42.0 (Value.Cvt.u64_to_float 42L);
  Alcotest.(check (float 1e4)) "max u64" 1.8446744073709552e19 (Value.Cvt.u64_to_float (-1L))

(* --- properties -------------------------------------------------------- *)

let i32_arb = QCheck.int32
let i64_arb = QCheck.int64

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb f)

let props =
  [
    prop "i32: rotl then rotr is identity" QCheck.(pair int32 int32) (fun (x, n) ->
      Int32.equal x (Value.I32_ops.rotr (Value.I32_ops.rotl x n) n));
    prop "i64: rotl then rotr is identity" QCheck.(pair int64 int64) (fun (x, n) ->
      Int64.equal x (Value.I64_ops.rotr (Value.I64_ops.rotl x n) n));
    prop "i32: clz in [0;32]" i32_arb (fun x ->
      let n = Value.I32_ops.clz x in
      n >= 0 && n <= 32);
    prop "i32: popcnt(x) + popcnt(~x) = 32" i32_arb (fun x ->
      Value.I32_ops.popcnt x + Value.I32_ops.popcnt (Int32.lognot x) = 32);
    prop "i32: div_u * b + rem_u = a" QCheck.(pair int32 int32) (fun (a, b) ->
      QCheck.assume (not (Int32.equal b 0l));
      let q = Value.I32_ops.div_u a b and r = Value.I32_ops.rem_u a b in
      Int32.equal a (Int32.add (Int32.mul q b) r));
    prop "i64: div_s * b + rem_s = a" QCheck.(pair int64 int64) (fun (a, b) ->
      QCheck.assume (not (Int64.equal b 0L));
      QCheck.assume (not (Int64.equal a Int64.min_int && Int64.equal b (-1L)));
      let q = Value.I64_ops.div_s a b and r = Value.I64_ops.rem_s a b in
      Int64.equal a (Int64.add (Int64.mul q b) r));
    prop "i32: shl = mul by power of two" QCheck.(pair int32 (int_range 0 31)) (fun (x, n) ->
      Int32.equal (Value.I32_ops.shl x (Int32.of_int n))
        (Int32.mul x (Int32.shift_left 1l n)));
    prop "f64: nearest is integral or nan" QCheck.float (fun f ->
      let r = Value.F_ops.nearest f in
      Float.is_nan r || Float.is_integer r || Float.is_integer (Float.abs r) || not (Float.is_finite f));
    prop "f64: min <= both (when not nan)" QCheck.(pair float float) (fun (a, b) ->
      QCheck.assume (not (Float.is_nan a) && not (Float.is_nan b));
      let m = Value.F_ops.fmin a b in
      m <= a && m <= b);
    prop "f32 bits roundtrip" i32_arb (fun bits ->
      (* converting bits -> float -> bits is the identity except for NaNs *)
      let f = Value.F32_repr.to_float bits in
      Float.is_nan f || Int32.equal bits (Value.F32_repr.of_float f));
    prop "sat trunc never raises" QCheck.float (fun f ->
      ignore (Value.Cvt.i32_trunc_sat_s f);
      ignore (Value.Cvt.i32_trunc_sat_u f);
      ignore (Value.Cvt.i64_trunc_sat_s f);
      ignore (Value.Cvt.i64_trunc_sat_u f);
      true);
    prop "extend-then-wrap is identity" i32_arb (fun x ->
      match
        Eval_numeric.eval_cvtop Ast.I32WrapI64
          (Eval_numeric.eval_cvtop Ast.I64ExtendI32S (Value.I32 x))
      with
      | Value.I32 y -> Int32.equal x y
      | _ -> false);
    prop "reinterpret roundtrip f64" QCheck.float (fun f ->
      match
        Eval_numeric.eval_cvtop Ast.F64ReinterpretI64
          (Eval_numeric.eval_cvtop Ast.I64ReinterpretF64 (Value.F64 f))
      with
      | Value.F64 g -> Value.equal (Value.F64 f) (Value.F64 g)
      | _ -> false);
  ]

(* --- memory ------------------------------------------------------------ *)

let test_memory_endianness () =
  let mem = Memory.create ~min_pages:1 ~max_pages:None in
  Memory.store mem { Ast.sty = Types.I32T; salign = 2; soffset = 0; spack = None } 0l
    (Value.I32 0x0A0B0C0Dl);
  Alcotest.(check int) "little endian low byte first" 0x0D (Memory.read_byte mem 0);
  Alcotest.(check int) "high byte last" 0x0A (Memory.read_byte mem 3)

let test_memory_grow_limits () =
  let mem = Memory.create ~min_pages:1 ~max_pages:(Some 3) in
  Alcotest.(check int) "grow by 1" 1 (Memory.grow mem 1);
  Alcotest.(check int) "grow to max" 2 (Memory.grow mem 1);
  Alcotest.(check int) "past max fails" (-1) (Memory.grow mem 1);
  Alcotest.(check int) "zero grow ok" 3 (Memory.grow mem 0);
  Alcotest.(check int) "negative fails" (-1) (Memory.grow mem (-1))

let test_memory_grow_address_space_cap () =
  (* the 32-bit address space cap (65536 pages) applies independently of
     the declared maximum; failed grows must not change the size. None of
     these grows may succeed, so no multi-GiB buffer is ever allocated. *)
  let mem = Memory.create ~min_pages:1 ~max_pages:(Some 70000) in
  Alcotest.(check int) "declared max beyond 2^32 is clamped" (-1) (Memory.grow mem 65536);
  Alcotest.(check int) "absurd delta fails" (-1) (Memory.grow mem max_int);
  Alcotest.(check int) "size unchanged by failed grows" 1 (Memory.size_pages mem);
  Alcotest.(check int) "ordinary grow still works" 1 (Memory.grow mem 1);
  let unlimited = Memory.create ~min_pages:0 ~max_pages:None in
  Alcotest.(check int) "no declared max: 65537 pages still refused" (-1)
    (Memory.grow unlimited 65537);
  Alcotest.(check int) "still zero pages" 0 (Memory.size_pages unlimited);
  (match Memory.create ~min_pages:65537 ~max_pages:None with
   | _ -> Alcotest.fail "expected invalid_arg for min_pages > 65536"
   | exception Invalid_argument _ -> ())

let test_memory_effective_address_overflow () =
  let mem = Memory.create ~min_pages:1 ~max_pages:None in
  (* base + offset overflows 32 bits: must trap, not wrap around *)
  Helpers.check_traps "wraparound" "out of bounds" (fun () ->
    Memory.load mem { Ast.lty = Types.I32T; lalign = 2; loffset = 0x7FFFFFFF; lpack = None }
      0x7FFFFFFFl)

let prop_memory_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"memory i64 store/load roundtrip" ~count:300
       QCheck.(pair int64 (int_range 0 65528))
       (fun (v, addr) ->
          let mem = Memory.create ~min_pages:1 ~max_pages:None in
          let sop = { Ast.sty = Types.I64T; salign = 3; soffset = 0; spack = None } in
          let lop = { Ast.lty = Types.I64T; lalign = 3; loffset = 0; lpack = None } in
          Memory.store mem sop (Int32.of_int addr) (Value.I64 v);
          Value.equal (Value.I64 v) (Memory.load mem lop (Int32.of_int addr))))

let suite =
  [
    case "i32 edge cases" test_i32_edge_cases;
    case "i64 edge cases" test_i64_edge_cases;
    case "float min/max/nearest" test_float_semantics;
    case "f32 rounding" test_f32_rounding;
    case "trunc boundaries" test_trunc_boundaries;
    case "saturating trunc" test_trunc_sat;
    case "u64 to float" test_u64_to_float;
    case "memory endianness" test_memory_endianness;
    case "memory grow limits" test_memory_grow_limits;
    case "memory grow address space cap" test_memory_grow_address_space_cap;
    case "effective address overflow" test_memory_effective_address_overflow;
    prop_memory_roundtrip;
  ]
  @ props
