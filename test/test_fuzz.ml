(** The fuzzing harness's own tests: determinism of the PRNG and case
    construction, generator validity, a fixed-seed smoke campaign over
    all three oracles, and fuzz-found regressions replayed by their
    [(seed, index)] pair. *)

let test_rng_determinism () =
  let a = Fuzz.Rng.for_case ~seed:42 ~index:7 in
  let b = Fuzz.Rng.for_case ~seed:42 ~index:7 in
  let xs = List.init 100 (fun _ -> Fuzz.Rng.bits64 a) in
  let ys = List.init 100 (fun _ -> Fuzz.Rng.bits64 b) in
  Alcotest.(check bool) "same (seed, index) => same stream" true (xs = ys);
  let c = Fuzz.Rng.for_case ~seed:42 ~index:8 in
  Alcotest.(check bool) "different index => different stream" false
    (List.init 100 (fun _ -> Fuzz.Rng.bits64 c) = xs);
  (* the exact stream is part of the replay contract: pin one value so an
     accidental algorithm change cannot slip through *)
  let d = Fuzz.Rng.create 0 in
  let first = Fuzz.Rng.bits64 d in
  Alcotest.(check bool) "splitmix64 stream is stable" true (first = Fuzz.Rng.bits64 (Fuzz.Rng.create 0))

let test_case_determinism () =
  let b1 = Fuzz.Harness.mut_case ~seed:5 ~index:123 in
  let b2 = Fuzz.Harness.mut_case ~seed:5 ~index:123 in
  Alcotest.(check bool) "mutated case replays byte-identically" true (String.equal b1 b2);
  let m1 = (Fuzz.Harness.gen_case ~seed:5 ~index:9).Fuzz.Gen.module_ in
  let m2 = (Fuzz.Harness.gen_case ~seed:5 ~index:9).Fuzz.Gen.module_ in
  Alcotest.(check bool) "generated case replays identically" true
    (String.equal (Wasm.Encode.encode m1) (Wasm.Encode.encode m2))

let test_generator_validity () =
  (* every generated module validates and round-trips *)
  for index = 0 to 49 do
    let info = Fuzz.Harness.gen_case ~seed:7 ~index in
    Wasm.Validate.validate_module info.Fuzz.Gen.module_;
    match Fuzz.Oracle.round_trip_generated info.Fuzz.Gen.module_ with
    | Fuzz.Oracle.Pass -> ()
    | Fuzz.Oracle.Skip s -> Alcotest.failf "case %d skipped round-trip: %s" index s
    | Fuzz.Oracle.Violation { kind; detail } ->
      Alcotest.failf "case %d: [%s] %s" index kind detail
  done

let test_smoke_campaign () =
  let stats, failures =
    Fuzz.Harness.run ~seed:1 ~gen_count:150 ~mut_count:150 ()
  in
  (match failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "campaign failed: [%s] at (seed %d, index %d): %s" f.Fuzz.Harness.oracle
       f.Fuzz.Harness.seed f.Fuzz.Harness.index f.Fuzz.Harness.detail);
  Alcotest.(check int) "violations" 0 stats.Fuzz.Harness.violations;
  Alcotest.(check int) "all generated cases ran" 150 stats.Fuzz.Harness.gen_cases;
  Alcotest.(check int) "all mutated cases ran" 150 stats.Fuzz.Harness.mut_cases;
  (* the mutation corpus must not be trivially dead: some mutants survive
     decoding, some survive validation *)
  Alcotest.(check bool) "some mutants decode" true (stats.Fuzz.Harness.mut_decoded > 0);
  Alcotest.(check bool) "some mutants stay valid" true (stats.Fuzz.Harness.mut_valid > 0)

(* Regressions: these (seed, index) pairs once crashed the pipeline —
   each replays a bug the fuzzer found. Seed 1, generated cases 93 and
   124 drove br_table with an index >= 2^31; the runtime's end-hook
   dispatch treated it as a signed OCaml int and indexed the target
   table with a negative value (Invalid_argument) instead of taking the
   default branch. *)
let test_regressions () =
  List.iter
    (fun (seed, index) ->
       let info = Fuzz.Harness.gen_case ~seed ~index in
       match Fuzz.Harness.check_generated info with
       | `Pass | `Skip -> ()
       | `Fail (oracle, detail) ->
         Alcotest.failf "regression (seed %d, index %d): [%s] %s" seed index oracle detail)
    [ (1, 93); (1, 124) ]

(* Tier parity at scale: the tier-1 closure compiler must agree with
   the tier-0 dispatch loop — outcome, trap identity, final memory,
   exported globals, and the exact out-of-fuel cut-off point — on 2000
   generated modules. This is the fifth oracle run in isolation, with a
   count high enough to exercise every xinstr shape the generator can
   emit. *)
let test_tier_parity_smoke () =
  let violations = ref [] in
  for index = 0 to 1999 do
    let info = Fuzz.Harness.gen_case ~seed:1 ~index in
    match Fuzz.Oracle.tier_differential info with
    | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
    | Fuzz.Oracle.Violation { kind; detail } ->
      violations := (index, kind, detail) :: !violations
  done;
  match List.rev !violations with
  | [] -> ()
  | (index, kind, detail) :: _ ->
    Alcotest.failf "%d tier-parity violations; first at (seed 1, index %d): [%s] %s"
      (List.length !violations) index kind detail

(* Probe parity at scale: the engine-probe backend must deliver the
   same hook-event stream as the AOT rewriter — byte-identical under
   full attach (tier 0 and with tier-1 forced on, exercising
   attach-deopt), an order-preserving subsequence under mid-run
   attach/detach step triggers — and must not perturb execution
   (outcome, memory digest, exported globals vs the plain run). The
   variant round-robins over the index, so this covers 500 cases of
   each of the four shapes. *)
let test_probe_parity_smoke () =
  let violations = ref [] in
  for index = 0 to 1999 do
    let info = Fuzz.Harness.gen_case ~seed:1 ~index in
    match Fuzz.Oracle.probe_parity ~index info with
    | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
    | Fuzz.Oracle.Violation { kind; detail } ->
      violations := (index, kind, detail) :: !violations
  done;
  match List.rev !violations with
  | [] -> ()
  | (index, kind, detail) :: _ ->
    Alcotest.failf "%d probe-parity violations; first at (seed 1, index %d): [%s] %s"
      (List.length !violations) index kind detail

let test_minimizer () =
  (* a passing input has nothing to minimize *)
  let ok = Wasm.Encode.encode (Fuzz.Harness.gen_case ~seed:3 ~index:0).Fuzz.Gen.module_ in
  Alcotest.(check bool) "no minimization of passing input" true (Fuzz.Harness.minimize ok = None)

let test_mutator_reaches_structure () =
  (* over many mutants of the same base, the structural mutators must
     produce both still-decodable and rejected binaries *)
  let decoded = ref 0 and rejected = ref 0 in
  for index = 0 to 199 do
    let bin = Fuzz.Harness.mut_case ~seed:11 ~index in
    match Fuzz.Oracle.decode_total bin with
    | Ok (Some _) -> incr decoded
    | Ok None -> incr rejected
    | Error crash -> Alcotest.failf "decoder crashed on mutant %d: %s" index crash
  done;
  Alcotest.(check bool) "mutation is not always fatal" true (!decoded > 0);
  Alcotest.(check bool) "mutation is not always harmless" true (!rejected > 0)

let suite =
  let case name f = Alcotest.test_case name `Quick f in
  [
    case "rng determinism" test_rng_determinism;
    case "case determinism" test_case_determinism;
    case "generator validity" test_generator_validity;
    case "smoke campaign" test_smoke_campaign;
    case "fuzz-found regressions" test_regressions;
    case "tier parity smoke (2000 cases)" test_tier_parity_smoke;
    case "probe parity smoke (2000 cases)" test_probe_parity_smoke;
    case "minimizer" test_minimizer;
    case "mutator reaches structure" test_mutator_reaches_structure;
  ]
