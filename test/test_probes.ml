(** Engine-probe backend tests: spec parsing, event synthesis against
    hand-computed expected streams (so the fuzz oracle's stream equality
    is never vacuous), site/count predicates, live attach/detach — from
    the host side, from a step trigger, and from inside a probe callback
    (re-entrancy) — tier-1 deopt/re-tier around attachment, explicit
    snapshot/restore of the probe set, the probe metric counters, and
    byte-exact exposition goldens for the probe metric families. *)

open Wasm
module B = Builder
module P = Wasabi.Runtime.Probe

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden golden actual =
  let expected = read_file (Filename.concat "golden" golden) in
  if not (String.equal expected actual) then begin
    let dump = Filename.temp_file "probe-golden" ("-" ^ golden) in
    let oc = open_out_bin dump in
    output_string oc actual;
    close_out oc;
    Alcotest.failf "golden mismatch for %s (actual dumped to %s)" golden dump
  end

(** A compact event recorder over the callbacks these tests assert on. *)
let recorder buf : Wasabi.Analysis.t =
  let l (loc : Wasabi.Location.t) =
    Printf.sprintf "%d:%d" loc.Wasabi.Location.func loc.Wasabi.Location.instr
  in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf ' ') fmt in
  {
    Wasabi.Analysis.default with
    const = (fun loc v -> p "const@%s=%s" (l loc) (Value.to_string v));
    binary = (fun loc op _ _ r -> p "binary@%s:%s=%s" (l loc) op (Value.to_string r));
    drop = (fun loc _ -> p "drop@%s" (l loc));
    local = (fun loc op x _ -> p "local@%s:%s.%d" (l loc) op x);
    begin_ = (fun loc _ -> p "begin@%s" (l loc));
    end_ = (fun loc _ _ -> p "end@%s" (l loc));
    call_pre = (fun loc callee _ _ -> p "call@%s->%d" (l loc) callee);
    call_post = (fun loc _ -> p "ret@%s" (l loc));
  }

let all_spec = { Obs.Probe.sp_groups = []; sp_func = None; sp_loc = None; sp_nth = 1 }

(** Module: [f] computes [(7 + 35) * 2] with a local round-trip. *)
let arith_module () =
  let b = B.create () in
  let f =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[ Types.I32T ]
      ~body:[ B.i32 7; B.i32 35; B.i32_add; B.local_tee 0; B.local_get 0; B.i32_add ]
  in
  B.export_func b ~name:"f" f;
  B.build b

(* --- spec syntax ----------------------------------------------------- *)

let test_spec_parsing () =
  (match Obs.Probe.parse_spec "const,binary@func=3@nth=5" with
   | Error m -> Alcotest.failf "parse failed: %s" m
   | Ok sp ->
     Alcotest.(check (list string)) "groups" [ "const"; "binary" ] sp.Obs.Probe.sp_groups;
     Alcotest.(check (option int)) "func" (Some 3) sp.Obs.Probe.sp_func;
     Alcotest.(check int) "nth" 5 sp.Obs.Probe.sp_nth;
     Alcotest.(check string) "round-trip" "const,binary@func=3@nth=5"
       (Obs.Probe.spec_to_string sp));
  (match Obs.Probe.parse_spec "all@loc=2:17" with
   | Error m -> Alcotest.failf "parse failed: %s" m
   | Ok sp ->
     Alcotest.(check (list string)) "all is empty group list" [] sp.Obs.Probe.sp_groups;
     Alcotest.(check bool) "loc" true (sp.Obs.Probe.sp_loc = Some (2, 17)));
  List.iter
    (fun bad ->
       match Obs.Probe.parse_spec bad with
       | Ok _ -> Alcotest.failf "accepted %S" bad
       | Error _ -> ())
    [ ""; "const@nth=0"; "const@loc=x"; "const@wat=1"; ",const" ];
  (* validate_spec also vets group names against the hook vocabulary *)
  (match P.validate_spec "const,load" with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "rejected valid spec: %s" m);
  match P.validate_spec "cosnt" with
  | Ok _ -> Alcotest.fail "accepted unknown group"
  | Error m ->
    Alcotest.(check bool) "names the group" true (Helpers.contains m "cosnt")

(* --- event synthesis ------------------------------------------------- *)

let test_events_exact () =
  let m = arith_module () in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  ignore (P.attach c all_spec);
  let r = Interp.invoke_export inst "f" [] in
  Alcotest.(check bool) "result" true (r = [ Value.i32_of_int 84 ]);
  Alcotest.(check string) "exact event stream"
    ("begin@0:-1 const@0:0=i32:7 const@0:1=i32:35 binary@0:2:i32.add=i32:42 "
     ^ "local@0:3:local.tee.0 local@0:4:local.get.0 binary@0:5:i32.add=i32:84 end@0:6 ")
    (Buffer.contents buf)

let test_no_probe_no_events () =
  let m = arith_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let buf = Buffer.create 16 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  ignore c;
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check string) "no probes, no events" "" (Buffer.contents buf)

(* --- predicates ------------------------------------------------------ *)

(** Module: [g] (func 0) returns 1; [f] (func 1) calls [g] twice and
    sums. *)
let two_func_module () =
  let b = B.create () in
  let g = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 1 ] in
  let f =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ Ast.Call g; Ast.Call g; B.i32_add ]
  in
  B.export_func b ~name:"f" f;
  B.build b

let run_two_funcs spec =
  let m = two_func_module () in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:[] m in
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  ignore (P.attach c spec);
  ignore (Interp.invoke_export inst "f" []);
  Buffer.contents buf

let test_group_predicate () =
  Alcotest.(check string) "only const events"
    "const@0:0=i32:1 const@0:0=i32:1 "
    (run_two_funcs { all_spec with sp_groups = [ "const" ] })

let test_func_predicate () =
  Alcotest.(check string) "only func 0's events"
    "begin@0:-1 const@0:0=i32:1 end@0:1 begin@0:-1 const@0:0=i32:1 end@0:1 "
    (run_two_funcs { all_spec with sp_func = Some 0 })

let test_loc_predicate () =
  Alcotest.(check string) "only the second call site"
    "call@1:1->0 ret@1:1 "
    (run_two_funcs { all_spec with sp_loc = Some (1, 1) })

let test_nth_predicate () =
  (* const at 0:0 executes twice; @nth=2 skips the first occurrence *)
  Alcotest.(check string) "fires from the 2nd match on"
    "const@0:0=i32:1 "
    (run_two_funcs { all_spec with sp_groups = [ "const" ]; sp_nth = 2 })

(* --- live attach / detach ------------------------------------------- *)

let test_host_call_attach () =
  (* the host function [hook] attaches the probe mid-run: events appear
     only for work after the call returns (next function entries) *)
  let b = B.create () in
  ignore (B.import_func b ~module_name:"env" ~name:"hook" ~params:[] ~results:[]);
  let g = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 1 ] in
  let f =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ Ast.Call g; Ast.Call 0; Ast.Call g; B.i32_add ]
  in
  B.export_func b ~name:"f" f;
  let m = B.build b in
  Validate.validate_module m;
  let cref = ref None in
  let ext =
    Interp.host_func ~name:"hook" ~params:[] ~results:[] (fun _ ->
      (match !cref with Some c -> ignore (P.attach c all_spec) | None -> ());
      [])
  in
  let inst = Interp.instantiate ~imports:[ ("env", "hook", ext) ] m in
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  cref := Some c;
  let r = Interp.invoke_export inst "f" [] in
  Alcotest.(check bool) "result" true (r = [ Value.i32_of_int 2 ]);
  (* the first Call g ran unprobed; [f]'s own frame entered before the
     attach, so only [g]'s second activation reports *)
  Alcotest.(check string) "events only after the host-side attach"
    "begin@1:-1 const@1:0=i32:1 end@1:1 "
    (Buffer.contents buf)

let test_step_trigger_attach_detach () =
  (* a counting loop that calls a helper every iteration; attachment
     takes effect at the next function {e entry}, so the helper's later
     activations are what a mid-run attach observes *)
  let b = B.create () in
  let g = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 1 ] in
  let body =
    [ B.i32 200; B.local_set 0 ]
    @ B.loop
        ([ Ast.Call g; Ast.Drop; B.local_get 0; B.i32 1; B.i32_sub; B.local_tee 0 ]
         @ [ Ast.BrIf 0 ])
    @ [ B.local_get 0 ]
  in
  let f = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[ Types.I32T ] ~body in
  B.export_func b ~name:"f" f;
  let m = B.build b in
  Validate.validate_module m;
  let count_probed probed_setup =
    let inst = Interp.instantiate ~imports:[] m in
    let buf = Buffer.create 1024 in
    let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
    probed_setup c;
    ignore (Interp.invoke_export inst "f" []);
    List.length (String.split_on_char ' ' (Buffer.contents buf)) - 1
  in
  let full = count_probed (fun c -> ignore (P.attach c all_spec)) in
  let head =
    (* attached from the start, detached once the step trigger fires *)
    count_probed (fun c ->
      let e = P.attach c all_spec in
      P.detach_at c ~step:300 e)
  in
  let tail =
    (* nothing until the trigger attaches mid-loop *)
    count_probed (fun c -> P.attach_at c ~step:600 all_spec)
  in
  Alcotest.(check bool) "full-attach stream is large" true (full > 800);
  Alcotest.(check bool) "detach-at window is non-empty" true (head > 0);
  Alcotest.(check bool) "detach-at window is a strict subset" true (head < full);
  Alcotest.(check bool) "attach-at window is non-empty" true (tail > 0);
  Alcotest.(check bool) "attach-at window is a strict subset" true (tail < full)

let test_reentrant_attach_detach () =
  (* a probe callback that bumps a counter and attaches/detaches probes
     from inside the dispatch: must not deadlock, crash, or corrupt the
     entry list; the newly attached probe takes over on later entries *)
  let m = two_func_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let registry = Obs.Metrics.create () in
  let hits = Obs.Metrics.counter ~registry "reentrant_hits_total" in
  let cref = ref None in
  let first = ref None in
  let analysis =
    {
      Wasabi.Analysis.default with
      const =
        (fun _ _ ->
           Obs.Metrics.inc hits;
           match !cref with
           | None -> ()
           | Some c ->
             (match !first with
              | Some e ->
                first := None;
                P.detach c e;
                ignore (P.attach c { all_spec with sp_groups = [ "call" ] })
              | None -> ()));
    }
  in
  let c = P.create ~registry inst analysis in
  cref := Some c;
  first := Some (P.attach c { all_spec with sp_groups = [ "const" ] });
  ignore (Interp.invoke_export inst "f" []);
  (* first const fires, detaches itself, attaches the call probe; the
     second const is silenced (its closure checks the active flag) *)
  Alcotest.(check (float 1e-9)) "exactly one re-entrant hit" 1.0
    (Obs.Metrics.counter_value hits);
  Alcotest.(check int) "one active probe left" 1 (List.length (P.entries c));
  Alcotest.(check int) "both probes recorded" 2 (List.length (P.all_entries c));
  (* the counters observed the re-entrant churn *)
  Alcotest.(check int) "attached" 2 (Obs.Probe.attached_total (P.manager c));
  Alcotest.(check int) "detached" 1 (Obs.Probe.detached_total (P.manager c))

(* --- tier interaction ------------------------------------------------ *)

let tier_of inst j =
  match inst.Interp.inst_code.(j).Interp.c_tier with
  | Interp.T_compiled _ -> `Compiled
  | Interp.T_interp -> `Interp
  | Interp.T_unsupported -> `Unsupported

let test_tier_deopt_and_retier () =
  let m = arith_module () in
  let inst = Interp.instantiate ~imports:[] m in
  Tier1.enable ~threshold:1 inst;
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check bool) "hot body is tier-1" true (tier_of inst 0 = `Compiled);
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  let e = P.attach c all_spec in
  Alcotest.(check bool) "attach deopts to probed tier-0" true (tier_of inst 0 = `Interp);
  Alcotest.(check bool) "probe hooks installed" true
    (inst.Interp.inst_code.(0).Interp.c_probe <> None);
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check bool) "probed run reports events" true (Buffer.length buf > 0);
  P.detach c e;
  Alcotest.(check bool) "detach removes the probed body" true
    (inst.Interp.inst_code.(0).Interp.c_probe = None);
  ignore (Interp.invoke_export inst "f" []);
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check bool) "body re-tiers after detach" true (tier_of inst 0 = `Compiled)

(* --- snapshot/restore ------------------------------------------------ *)

let test_snapshot_rearms_probe_set () =
  let m = two_func_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  let a = P.attach c { all_spec with sp_groups = [ "const" ]; sp_nth = 2 } in
  ignore (Interp.invoke_export inst "f" []);
  let snap = Snapshot.capture inst in
  (* mutate the probe set after the snapshot: detach A, attach B *)
  P.detach c a;
  ignore (P.attach c { all_spec with sp_groups = [ "call" ] });
  Snapshot.restore snap inst;
  (* exactly the captured set is active again, with fresh hit counters *)
  (match P.entries c with
   | [ e ] ->
     Alcotest.(check (list string)) "captured spec re-armed" [ "const" ]
       e.Obs.Probe.e_spec.Obs.Probe.sp_groups;
     Alcotest.(check int) "nth predicate preserved" 2 e.Obs.Probe.e_spec.Obs.Probe.sp_nth;
     Alcotest.(check int) "hit counter is fresh" 0 e.Obs.Probe.e_hits
   | es -> Alcotest.failf "expected 1 re-armed probe, got %d" (List.length es));
  Buffer.clear buf;
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check string) "restored run fires like the captured set"
    "const@0:0=i32:1 " (Buffer.contents buf)

let test_snapshot_predating_probes_detaches () =
  let m = arith_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let snap = Snapshot.capture inst in
  (* the controller and its probe arrive only after the capture *)
  let buf = Buffer.create 16 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  ignore (P.attach c all_spec);
  Snapshot.restore snap inst;
  Alcotest.(check int) "restore detaches post-snapshot probes" 0
    (List.length (P.entries c));
  ignore (Interp.invoke_export inst "f" []);
  Alcotest.(check string) "no events after restore" "" (Buffer.contents buf)

(* --- metrics --------------------------------------------------------- *)

let test_probe_counters () =
  let m = two_func_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let registry = Obs.Metrics.create () in
  let c = P.create ~registry inst Wasabi.Analysis.default in
  let e = P.attach c { all_spec with sp_groups = [ "const" ] } in
  ignore (Interp.invoke_export inst "f" []);
  P.detach c e;
  P.detach c e;
  let mgr = P.manager c in
  Alcotest.(check int) "attached" 1 (Obs.Probe.attached_total mgr);
  Alcotest.(check int) "fired counts both const events" 2 (Obs.Probe.fired_total mgr);
  Alcotest.(check int) "detach is idempotent" 1 (Obs.Probe.detached_total mgr);
  Alcotest.(check int) "entry-level fire count" 2 e.Obs.Probe.e_fired

(** The registry both probe-metric goldens render from: a deterministic
    attach / fire / detach sequence over the two-function module. *)
let probe_golden_registry () =
  let registry = Obs.Metrics.create () in
  let m = two_func_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let c = P.create ~registry inst Wasabi.Analysis.default in
  let e = P.attach c { all_spec with sp_groups = [ "const" ] } in
  let e2 = P.attach c { all_spec with sp_groups = [ "call" ]; sp_nth = 2 } in
  ignore (Interp.invoke_export inst "f" []);
  P.detach c e;
  P.detach c e2;
  registry

let test_probe_metrics_prometheus_golden () =
  check_golden "probe_metrics.prom" (Obs.Metrics.to_prometheus (probe_golden_registry ()))

let test_probe_metrics_json_golden () =
  check_golden "probe_metrics.json" (Obs.Metrics.to_json (probe_golden_registry ()))

(* --- profiling ------------------------------------------------------- *)

let test_profile_distinguishes_probe_dispatch () =
  let m = arith_module () in
  let inst = Interp.instantiate ~imports:[] m in
  let buf = Buffer.create 128 in
  let c = P.create ~registry:(Obs.Metrics.create ()) inst (recorder buf) in
  ignore (P.attach c all_spec);
  let prof = Obs.Profile.create () in
  P.attach_profiler c (Some prof);
  ignore (Interp.invoke_export inst "f" []);
  let timers = List.map (fun (name, _, _) -> name) (Obs.Profile.timer_list prof) in
  Alcotest.(check bool) "dispatch.probe present" true (List.mem "dispatch.probe" timers);
  Alcotest.(check bool) "dispatch.analysis present" true
    (List.mem "dispatch.analysis" timers);
  Alcotest.(check bool) "per-group hook timer present" true (List.mem "hook.const" timers);
  (* the AOT decode split must not appear: no marshalling happens here *)
  Alcotest.(check bool) "dispatch.decode absent" false (List.mem "dispatch.decode" timers)

let suite =
  let case name f = Alcotest.test_case name `Quick f in
  [
    case "spec parsing and validation" test_spec_parsing;
    case "exact event stream" test_events_exact;
    case "no probes, no events" test_no_probe_no_events;
    case "group predicate" test_group_predicate;
    case "@func predicate" test_func_predicate;
    case "@loc predicate" test_loc_predicate;
    case "@nth predicate" test_nth_predicate;
    case "host-call live attach" test_host_call_attach;
    case "step-trigger attach/detach window" test_step_trigger_attach_detach;
    case "re-entrant attach/detach from a probe callback" test_reentrant_attach_detach;
    case "tier-1 deopt on attach, re-tier on detach" test_tier_deopt_and_retier;
    case "snapshot re-arms the captured probe set" test_snapshot_rearms_probe_set;
    case "snapshot predating probes detaches on restore" test_snapshot_predating_probes_detaches;
    case "probe counters" test_probe_counters;
    case "probe metrics: Prometheus golden" test_probe_metrics_prometheus_golden;
    case "probe metrics: JSON golden" test_probe_metrics_json_golden;
    case "profile splits out dispatch.probe" test_profile_distinguishes_probe_dispatch;
  ]
