(** Serving-runtime tests: SPSC ring discipline, copy-on-write forks,
    concurrent snapshot restore, sync/async dispatch equality, sharded
    fuzzing determinism, and domain-safe observability primitives. *)

open Wasm
module W = Wasabi
module S = Serve

(* A small workload with memory traffic, globals, branches and arithmetic,
   so instrumentation produces a varied event stream. *)
let workload_src =
  {|(module
      (memory 1)
      (global (mut i32) (i32.const 0))
      (func (export "run") (result i32)
        (local i32) (local i32)
        (block
          (loop
            (i32.store (i32.const 16) (local.get 1))
            (local.set 1 (i32.add (i32.load (i32.const 16)) (i32.const 3)))
            (local.set 0 (i32.add (local.get 0) (i32.const 1)))
            (br_if 1 (i32.ge_s (local.get 0) (i32.const 25)))
            (br 0)))
        (global.set 0 (local.get 1))
        (global.get 0)))|}

let trap_src = {|(module (func (export "run") (unreachable)))|}

let instrumented src =
  let m = Wat_parse.parse src in
  Validate.validate_module m;
  W.Instrument.instrument m

let mix () =
  let st = Analyses.Instruction_mix.create () in
  (st, Analyses.Instruction_mix.analysis st)

(* ------------------------------------------------------------------ *)
(* Ring: FIFO order, wraparound, capacity rounding, blocking           *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = S.Ring.create ~dummy:(-1) 5 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8 (S.Ring.capacity r);
  Alcotest.(check bool) "empty try_pop" true (S.Ring.try_pop r = None);
  (* several wraparounds through an 8-slot buffer; drain whenever the
     ring fills — a single-domain pusher must never block on full *)
  let next = ref 0 in
  let pop_one msg =
    match S.Ring.try_pop r with
    | Some v ->
      Alcotest.(check int) msg !next v;
      incr next
    | None -> Alcotest.fail "ring unexpectedly empty"
  in
  for i = 0 to 99 do
    S.Ring.push r i;
    if S.Ring.length r = S.Ring.capacity r then
      for _ = 1 to 4 do
        pop_one "FIFO order"
      done
  done;
  while S.Ring.length r > 0 do
    pop_one "FIFO order (tail)"
  done;
  Alcotest.(check int) "every element came out exactly once" 100 !next;
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (S.Ring.create ~dummy:0 0))

let test_ring_cross_domain () =
  (* a tiny ring forces the producer to block on full and the consumer
     to block on empty — the backpressure path, exercised cross-domain *)
  let r = S.Ring.create ~dummy:(-1) 2 in
  let n = 5000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          S.Ring.push r i
        done)
  in
  for i = 0 to n - 1 do
    Alcotest.(check int) "cross-domain FIFO" i (S.Ring.pop r)
  done;
  Domain.join producer;
  Alcotest.(check bool) "ring drained" true (S.Ring.try_pop r = None)

(* ------------------------------------------------------------------ *)
(* Runtime.fork: isolation and equivalence                             *)
(* ------------------------------------------------------------------ *)

let test_fork_isolation () =
  let res = instrumented workload_src in
  let tmpl_inst, template = W.Runtime.instantiate res W.Analysis.default in
  let pristine = Snapshot.state_digest tmpl_inst in
  let st, analysis = mix () in
  let inst, _rt = W.Runtime.fork template analysis in
  Alcotest.(check string) "fork starts at the template's pristine state" pristine
    (Snapshot.state_digest inst);
  let out = Interp.invoke_export inst "run" [] in
  Alcotest.(check bool) "fork's analysis observed events" true
    (Analyses.Instruction_mix.total st > 0);
  Alcotest.(check string) "running the fork left the template untouched" pristine
    (Snapshot.state_digest tmpl_inst);
  let out' = Interp.invoke_export tmpl_inst "run" [] in
  Alcotest.(check bool) "fork and template compute the same result" true
    (compare out out' = 0)

(* ------------------------------------------------------------------ *)
(* Concurrent snapshot restore: N domains, one capture                 *)
(* ------------------------------------------------------------------ *)

(* Fork, optionally tier-compile and govern, restore the SHARED capture
   (cross-instance), run, and digest both the restored and final states. *)
let restore_run ~tier1 ~governed template snap =
  let _st, analysis = mix () in
  let inst, _rt = W.Runtime.fork template analysis in
  if tier1 then ignore (Tier1.compile_all inst : int);
  let gov = if governed then Some (Governor.create ~deadline_ms:60_000.0 ()) else None in
  Interp.set_governor inst gov;
  Snapshot.restore snap inst;
  let restored = Snapshot.state_digest inst in
  Option.iter Governor.arm gov;
  ignore (Interp.invoke_export inst "run" [] : Value.t list);
  (restored, Snapshot.state_digest inst)

let test_concurrent_restore () =
  let res = instrumented workload_src in
  let tmpl_inst, template = W.Runtime.instantiate res W.Analysis.default in
  let snap = Snapshot.capture tmpl_inst in
  List.iter
    (fun (tier1, governed) ->
       let label =
         Printf.sprintf "tier1=%b governed=%b" tier1 governed
       in
       (* sequential reference: N restores of the same capture in a row *)
       let seq = Array.init 4 (fun _ -> restore_run ~tier1 ~governed template snap) in
       (* concurrent: N domains fork + restore the same capture at once *)
       let par =
         Array.map Domain.join
           (Array.init 4 (fun _ ->
                Domain.spawn (fun () -> restore_run ~tier1 ~governed template snap)))
       in
       Array.iteri
         (fun i (restored, final) ->
            let r0, f0 = seq.(0) in
            Alcotest.(check string)
              (Printf.sprintf "%s: sequential restore %d reaches the same state" label i)
              r0 restored;
            Alcotest.(check string)
              (Printf.sprintf "%s: sequential run %d ends in the same state" label i)
              f0 final)
         seq;
       Array.iteri
         (fun i (restored, final) ->
            let r0, f0 = seq.(0) in
            Alcotest.(check string)
              (Printf.sprintf "%s: concurrent restore %d ≡ sequential" label i)
              r0 restored;
            Alcotest.(check string)
              (Printf.sprintf "%s: concurrent run %d ≡ sequential" label i)
              f0 final)
         par)
    [ (false, false); (true, false); (false, true); (true, true) ]

(* ------------------------------------------------------------------ *)
(* Farm: totals, fault containment, async dispatch                     *)
(* ------------------------------------------------------------------ *)

let test_farm_sync_totals () =
  let res = instrumented workload_src in
  let states = Array.init 3 (fun _ -> Analyses.Instruction_mix.create ()) in
  let stats =
    S.Farm.run ~mode:S.Farm.Sync ~domains:3 ~runs:10 ~entry:"run"
      ~make_analysis:(fun w -> Analyses.Instruction_mix.analysis states.(w))
      res
  in
  Alcotest.(check int) "every requested run served" 10 stats.S.Farm.st_runs;
  Alcotest.(check int) "no faults on a clean workload" 0 stats.S.Farm.st_faults;
  (* restore-per-run means every run observes the same events, so the
     merged per-worker mixes must equal 10 × one reference run *)
  let merged = states.(0) in
  Analyses.Instruction_mix.merge ~into:merged states.(1);
  Analyses.Instruction_mix.merge ~into:merged states.(2);
  let ref_st, ref_analysis = mix () in
  let _tmpl, template = W.Runtime.instantiate res W.Analysis.default in
  let inst, _rt = W.Runtime.fork template ref_analysis in
  ignore (Interp.invoke_export inst "run" [] : Value.t list);
  Alcotest.(check int) "merged mix = runs × one run's mix"
    (10 * Analyses.Instruction_mix.total ref_st)
    (Analyses.Instruction_mix.total merged)

let test_farm_fault_containment () =
  let res = instrumented trap_src in
  let stats =
    S.Farm.run ~mode:S.Farm.Sync ~domains:2 ~runs:6 ~entry:"run"
      ~make_analysis:(fun _ -> W.Analysis.default)
      res
  in
  Alcotest.(check int) "all runs served despite trapping" 6 stats.S.Farm.st_runs;
  Alcotest.(check int) "every trap contained by restore" 6 stats.S.Farm.st_faults

let test_farm_async () =
  let res = instrumented workload_src in
  let states = Array.init 2 (fun _ -> Analyses.Instruction_mix.create ()) in
  let stats =
    S.Farm.run
      ~mode:(S.Farm.Async { consumers = 1; capacity = 64 })
      ~domains:2 ~runs:8 ~entry:"run"
      ~make_analysis:(fun w -> Analyses.Instruction_mix.analysis states.(w))
      res
  in
  Alcotest.(check int) "async serves every run" 8 stats.S.Farm.st_runs;
  Alcotest.(check bool) "events were shipped through the rings" true
    (stats.S.Farm.st_events > 0);
  let total =
    Analyses.Instruction_mix.total states.(0) + Analyses.Instruction_mix.total states.(1)
  in
  Alcotest.(check int) "consumer applied exactly the shipped events" stats.S.Farm.st_events
    total

let test_stream_equality () =
  let res = instrumented workload_src in
  Alcotest.(check bool) "async event stream ≡ sync reference" true
    (S.Farm.verify_stream_equality ~runs:2 ~entry:"run" res);
  let trap_res = instrumented trap_src in
  Alcotest.(check bool) "stream equality holds across contained traps" true
    (S.Farm.verify_stream_equality ~runs:2 ~entry:"run" trap_res)

(* ------------------------------------------------------------------ *)
(* Sharded fuzzing determinism                                         *)
(* ------------------------------------------------------------------ *)

let test_fuzz_jobs_determinism () =
  let campaign jobs =
    Fuzz.Harness.run ~jobs ~seed:Fuzz.Harness.default_seed ~gen_count:20 ~mut_count:20 ()
  in
  let s1, f1 = campaign 1 in
  let s3, f3 = campaign 3 in
  Alcotest.(check bool) "stats identical for any job count" true (s1 = s3);
  Alcotest.(check bool) "failures identical for any job count" true (f1 = f3)

(* ------------------------------------------------------------------ *)
(* Domain-safe observability                                           *)
(* ------------------------------------------------------------------ *)

let test_metrics_parallel_exactness () =
  let registry = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry ~help:"t" "par_counter" in
  let h = Obs.Metrics.histogram ~registry ~help:"t" "par_hist" in
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25_000 do
              Obs.Metrics.inc c
            done;
            for _ = 1 to 1_000 do
              Obs.Metrics.observe h 0.001
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check (float 0.0)) "no lost counter increments" 100_000.0
    (Obs.Metrics.counter_value c);
  Alcotest.(check int) "no lost histogram observations" 4_000
    (Obs.Metrics.histogram_count h)

let test_span_parallel_nesting () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    (fun () ->
       let doms =
         Array.init 4 (fun _ ->
             Domain.spawn (fun () ->
                 for _ = 1 to 50 do
                   Obs.Span.with_ "outer" (fun () -> Obs.Span.with_ "inner" (fun () -> ()))
                 done))
       in
       Array.iter Domain.join doms;
       let evs = Obs.Span.events () in
       Alcotest.(check int) "every span recorded" 400 (List.length evs);
       List.iter
         (fun (ev : Obs.Span.event) ->
            let expected = if ev.Obs.Span.ev_name = "inner" then 1 else 0 in
            Alcotest.(check int)
              ("per-domain nesting depth for " ^ ev.Obs.Span.ev_name)
              expected ev.Obs.Span.ev_depth)
         evs)

let test_profile_merge () =
  let p1 = Obs.Profile.create () in
  let p2 = Obs.Profile.create () in
  Obs.Profile.count ~by:2 p1 "a";
  Obs.Profile.add_time p1 "t" 5L;
  Obs.Profile.count ~by:3 p2 "a";
  Obs.Profile.count p2 "b";
  Obs.Profile.add_time p2 "t" 7L;
  Obs.Profile.merge ~into:p1 p2;
  let counters = List.sort compare (Obs.Profile.counter_list p1) in
  Alcotest.(check (list (pair string int))) "counters summed" [ ("a", 5); ("b", 1) ] counters;
  match Obs.Profile.timer_list p1 with
  | [ ("t", n, total) ] ->
    Alcotest.(check int) "timer count summed" 2 n;
    Alcotest.(check int64) "timer total summed" 12L total
  | other -> Alcotest.failf "unexpected timers (%d entries)" (List.length other)

let test_instruction_mix_merge () =
  let res = instrumented workload_src in
  let _tmpl, template = W.Runtime.instantiate res W.Analysis.default in
  let run_with analysis =
    let inst, _rt = W.Runtime.fork template analysis in
    ignore (Interp.invoke_export inst "run" [] : Value.t list)
  in
  (* one state observing two runs ... *)
  let both, analysis_both = mix () in
  run_with analysis_both;
  run_with analysis_both;
  (* ... must equal two single-run states merged *)
  let a, analysis_a = mix () in
  let b, analysis_b = mix () in
  run_with analysis_a;
  run_with analysis_b;
  Analyses.Instruction_mix.merge ~into:a b;
  Alcotest.(check int) "merged total" (Analyses.Instruction_mix.total both)
    (Analyses.Instruction_mix.total a);
  Alcotest.(check (list (pair string int))) "merged per-opcode counts"
    (Analyses.Instruction_mix.sorted both)
    (Analyses.Instruction_mix.sorted a)

let suite =
  let case name f = Alcotest.test_case name `Quick f in
  [
    case "ring: FIFO + wraparound + rounding" test_ring_fifo;
    case "ring: cross-domain backpressure" test_ring_cross_domain;
    case "fork: isolation + equivalence" test_fork_isolation;
    case "snapshot: concurrent restore of one capture" test_concurrent_restore;
    case "farm: sync totals" test_farm_sync_totals;
    case "farm: fault containment" test_farm_fault_containment;
    case "farm: async dispatch" test_farm_async;
    case "farm: async ≡ sync event stream" test_stream_equality;
    case "fuzz: --jobs determinism" test_fuzz_jobs_determinism;
    case "metrics: parallel exactness" test_metrics_parallel_exactness;
    case "span: parallel nesting" test_span_parallel_nesting;
    case "profile: merge" test_profile_merge;
    case "instruction-mix: merge" test_instruction_mix_merge;
  ]
