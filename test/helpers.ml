(** Shared test helpers: small module constructors and value checks. *)

open Wasm

let value = Alcotest.testable Value.pp Value.equal

let check_values msg expected actual =
  Alcotest.(check (list value)) msg expected actual

(** A module with a single exported function "f" of the given signature. *)
let single_func ?(imports = []) ?memory ~params ~results ~locals body =
  let b = Builder.create () in
  List.iter
    (fun (module_name, name, ps, rs) ->
       ignore (Builder.import_func b ~module_name ~name ~params:ps ~results:rs))
    imports;
  (match memory with
   | Some pages -> Builder.add_memory b ~min_pages:pages ~max_pages:None
   | None -> ());
  let f = Builder.add_func b ~params ~results ~locals ~body in
  Builder.export_func b ~name:"f" f;
  Builder.build b

(** Validate, instantiate and invoke "f" in one go. *)
let run_f ?(imports = []) ?(externs = []) ?memory ~params ~results ~locals body args =
  let m = single_func ~imports ?memory ~params ~results ~locals body in
  Validate.validate_module m;
  let inst = Interp.instantiate ~imports:externs m in
  Interp.invoke_export inst "f" args

(** As {!run_f}, but with every body eagerly compiled to tier 1, so the
    same program exercises the closure-compiled backend. *)
let run_f_tiered ?(imports = []) ?(externs = []) ?memory ?fuel ~params ~results ~locals body
    args =
  let m = single_func ~imports ?memory ~params ~results ~locals body in
  Validate.validate_module m;
  let inst = Interp.instantiate ?fuel ~imports:externs m in
  ignore (Tier1.compile_all inst);
  Interp.invoke_export inst "f" args

let i32 = Value.i32_of_int
let i64 x = Value.I64 (Int64.of_int x)
let f64 x = Value.F64 x

(** [contains s sub] tests for a substring without extra dependencies. *)
let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

(** Expect a trap whose message contains [substring]. *)
let check_traps msg substring f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a trap containing %S" msg substring
  | exception Value.Trap m ->
    if not (contains m substring) then
      Alcotest.failf "%s: trap %S does not mention %S" msg m substring
