(** Hook machinery: monomorphization map, names, signatures, index
    remapping. *)

module H = Wasabi.Hook

let case name fn = Alcotest.test_case name `Quick fn

let test_group_names_roundtrip () =
  List.iter
    (fun g -> Alcotest.(check bool) (H.group_name g) true (H.group_of_name (H.group_name g) = g))
    H.all_groups;
  (match H.group_of_name "bogus" with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

let test_map_ordinals_stable () =
  let m = H.Map.create () in
  let a = H.Map.ordinal m H.S_nop in
  let b = H.Map.ordinal m (H.S_const Wasm.Types.I32T) in
  let a' = H.Map.ordinal m H.S_nop in
  Alcotest.(check int) "first is 0" 0 a;
  Alcotest.(check int) "second is 1" 1 b;
  Alcotest.(check int) "repeat returns the same ordinal" a a';
  Alcotest.(check int) "count" 2 (H.Map.count m);
  let specs = H.Map.specs m in
  Alcotest.(check bool) "specs in ordinal order" true
    (specs.(0) = H.S_nop && specs.(1) = H.S_const Wasm.Types.I32T)

let test_map_thread_safety () =
  (* hammer the map from several domains; ordinals stay consistent *)
  let m = H.Map.create () in
  let spec_of k = H.S_binary (Printf.sprintf "op%d" (k mod 50), Wasm.Types.I32T, Wasm.Types.I32T, Wasm.Types.I32T) in
  let worker () =
    for k = 0 to 999 do
      ignore (H.Map.ordinal m (spec_of k))
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check int) "exactly 50 distinct hooks" 50 (H.Map.count m);
  (* each spec's ordinal is unique and within range *)
  let specs = H.Map.specs m in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun s ->
       Alcotest.(check bool) "no duplicate spec" false (Hashtbl.mem seen s);
       Hashtbl.add seen s ())
    specs

let test_signatures_are_js_safe () =
  (* with splitting on, no hook signature contains an i64 parameter *)
  let res =
    Wasabi.Instrument.instrument
      (Minic.Mc_compile.compile (Workloads.Realworld.pdfkit ~doc_len:50 ()))
  in
  Array.iter
    (fun spec ->
       let ft = H.signature spec in
       Alcotest.(check bool)
         (H.name spec ^ " has no i64 params")
         false
         (List.mem Wasm.Types.I64T ft.Wasm.Types.params);
       Alcotest.(check (list bool)) "hooks return nothing" []
         (List.map (fun _ -> true) ft.Wasm.Types.results))
    res.Wasabi.Instrument.metadata.Wasabi.Metadata.hook_specs

let test_names_unique_per_module () =
  (* within one instrumented module, hook import names are unique: the
     name encodes the op and the monomorphic type variant *)
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = Wasabi.Instrument.instrument e.module_ in
       let names =
         Array.to_list
           (Array.map H.name res.Wasabi.Instrument.metadata.Wasabi.Metadata.hook_specs)
       in
       Alcotest.(check int) e.name (List.length names)
         (List.length (List.sort_uniq String.compare names)))
    (Workloads.Corpus.make ~n:4 ())

let test_remap_index () =
  (* 2 original imports, 5 original functions total, 3 hooks *)
  let remap = Wasabi.Instrument.remap_index ~n_imp:2 ~n_orig:5 ~h:3 in
  Alcotest.(check int) "import 0 fixed" 0 (remap 0);
  Alcotest.(check int) "import 1 fixed" 1 (remap 1);
  Alcotest.(check int) "defined 2 shifts" 5 (remap 2);
  Alcotest.(check int) "defined 4 shifts" 7 (remap 4);
  Alcotest.(check int) "hook placeholder 5 -> 2" 2 (remap 5);
  Alcotest.(check int) "hook placeholder 7 -> 4" 4 (remap 7)

let test_eager_bound () =
  Alcotest.(check (float 0.1)) "0 params" 1.0 (H.eager_call_hook_count ~max_params:0);
  Alcotest.(check (float 0.1)) "1 param" 5.0 (H.eager_call_hook_count ~max_params:1);
  Alcotest.(check (float 1.0)) "2 params" 21.0 (H.eager_call_hook_count ~max_params:2);
  (* the paper's 4^22 example *)
  Alcotest.(check bool) "22 params explodes" true
    (H.eager_call_hook_count ~max_params:22 > 1.7e13)

let prop_selective_size_monotone =
  (* instrumenting for more groups never shrinks the output *)
  let gemm =
    lazy
      ((Workloads.Corpus.find (Workloads.Corpus.make ~n:4 ()) "gemm").Workloads.Corpus.module_)
  in
  let arb_groups =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 0 6) (oneofl H.all_groups) >|= fun gs -> H.of_list gs)
      ~print:(fun gs ->
        String.concat "," (List.map H.group_name (H.Group_set.elements gs)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"selective instrumentation size is monotone" ~count:40
       (QCheck.pair arb_groups arb_groups)
       (fun (a, b) ->
          let size groups =
            String.length
              (Wasm.Encode.encode
                 (Wasabi.Instrument.instrument ~groups (Lazy.force gemm))
                   .Wasabi.Instrument.instrumented)
          in
          size (H.Group_set.union a b) >= max (size a) (size b)))

let test_figure_groups () =
  Alcotest.(check int) "21 figure columns" 21 (List.length H.figure_groups);
  Alcotest.(check int) "22 groups total" 22 (List.length H.all_groups);
  Alcotest.(check bool) "start not in figures" false (List.mem H.G_start H.figure_groups)

let suite =
  [
    case "group name round trip" test_group_names_roundtrip;
    case "map ordinals stable" test_map_ordinals_stable;
    case "map is thread safe" test_map_thread_safety;
    case "signatures are JS safe" test_signatures_are_js_safe;
    case "hook names unique per module" test_names_unique_per_module;
    case "index remapping" test_remap_index;
    case "eager monomorphization bound" test_eager_bound;
    case "figure groups" test_figure_groups;
    prop_selective_size_monotone;
  ]
