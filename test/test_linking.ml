(** Instantiation and linking: imported functions, globals, memories and
    tables — including entities shared between two instances — and import
    error reporting. *)

open Wasm
open Helpers
module B = Wasm.Builder

let case name fn = Alcotest.test_case name `Quick fn

let test_imported_global () =
  let bld = B.create () in
  let g = B.import_global bld ~module_name:"env" ~name:"base" ~ty:Types.I32T ~mutable_:false in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.global_get g; B.i32 2; B.i32_mul ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let ext = Interp.Extern_global { Interp.g_type = { Types.content = Types.I32T; mutability = Types.Immutable }; g_value = i32 21 } in
  let inst = Interp.instantiate ~imports:[ ("env", "base", ext) ] m in
  check_values "21*2" [ i32 42 ] (Interp.invoke_export inst "f" [])

let test_global_init_from_import () =
  (* a defined global initialised from an imported immutable global *)
  let m =
    { Ast.empty_module with
      Ast.imports =
        [ { Ast.module_name = "env"; item_name = "base";
            idesc = Ast.GlobalImport { Types.content = Types.I32T; mutability = Types.Immutable } } ];
      types = [ Types.func_type [] [ Types.I32T ] ];
      globals =
        [ { Ast.gtype = { Types.content = Types.I32T; mutability = Types.Mutable };
            ginit = [ Ast.GlobalGet 0 ] } ];
      funcs = [ { Ast.ftype = 0; locals = []; body = [ Ast.GlobalGet 1 ] } ];
      exports = [ { Ast.name = "f"; edesc = Ast.FuncExport 0 } ] }
  in
  Validate.validate_module m;
  let ext = Interp.Extern_global { Interp.g_type = { Types.content = Types.I32T; mutability = Types.Immutable }; g_value = i32 7 } in
  let inst = Interp.instantiate ~imports:[ ("env", "base", ext) ] m in
  check_values "initialised from import" [ i32 7 ] (Interp.invoke_export inst "f" [])

let make_writer () =
  (* a module exporting its memory and a poke function *)
  let bld = B.create () in
  B.add_memory bld ~min_pages:1 ~max_pages:None;
  B.export_memory bld ~name:"memory";
  let poke = B.add_func bld ~params:[ Types.I32T; Types.I32T ] ~results:[] ~locals:[]
      ~body:[ B.local_get 0; B.local_get 1; B.i32_store () ]
  in
  B.export_func bld ~name:"poke" poke;
  B.build bld

let make_reader () =
  (* a module importing a memory and reading from it *)
  let m =
    { Ast.empty_module with
      Ast.imports =
        [ { Ast.module_name = "shared"; item_name = "memory";
            idesc = Ast.MemoryImport { Types.mem_limits = { Types.lim_min = 1; lim_max = None } } } ];
      types = [ Types.func_type [ Types.I32T ] [ Types.I32T ] ];
      funcs = [ { Ast.ftype = 0; locals = []; body = [ Ast.LocalGet 0; B.i32_load () ] } ];
      exports = [ { Ast.name = "peek"; edesc = Ast.FuncExport 0 } ] }
  in
  m

let test_shared_memory () =
  let writer = Interp.instantiate ~imports:[] (make_writer ()) in
  let mem = Interp.export_memory writer "memory" in
  let reader_m = make_reader () in
  Validate.validate_module reader_m;
  let reader =
    Interp.instantiate ~imports:[ ("shared", "memory", Interp.Extern_memory mem) ] reader_m
  in
  ignore (Interp.invoke_export writer "poke" [ i32 64; i32 12345 ]);
  check_values "reader sees writer's store" [ i32 12345 ]
    (Interp.invoke_export reader "peek" [ i32 64 ])

let test_cross_instance_call () =
  (* instance B imports a function exported by instance A *)
  let bld = B.create () in
  let triple = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 3; B.i32_mul ]
  in
  B.export_func bld ~name:"triple" triple;
  let a = Interp.instantiate ~imports:[] (B.build bld) in
  let triple_fn = Interp.export_func a "triple" in
  let bld2 = B.create () in
  let imp = B.import_func bld2 ~module_name:"a" ~name:"triple"
      ~params:[ Types.I32T ] ~results:[ Types.I32T ]
  in
  let f = B.add_func bld2 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 14; Ast.Call imp ]
  in
  B.export_func bld2 ~name:"f" f;
  let m2 = B.build bld2 in
  Validate.validate_module m2;
  let b = Interp.instantiate ~imports:[ ("a", "triple", Interp.Extern_func triple_fn) ] m2 in
  check_values "cross-instance call" [ i32 42 ] (Interp.invoke_export b "f" [])

let expect_link_error name substring f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Link_error" name
  | exception Interp.Link_error msg ->
    if not (contains msg substring) then
      Alcotest.failf "%s: %S does not mention %S" name msg substring

let test_link_errors () =
  let reader_m = make_reader () in
  expect_link_error "missing import" "unknown import" (fun () ->
    Interp.instantiate ~imports:[] reader_m);
  (* kind mismatch: provide a function where a memory is expected *)
  let bogus = Interp.host_func ~name:"memory" ~params:[] ~results:[] (fun _ -> []) in
  expect_link_error "kind mismatch" "kind mismatch" (fun () ->
    Interp.instantiate ~imports:[ ("shared", "memory", bogus) ] reader_m);
  (* function type mismatch *)
  let bld = B.create () in
  ignore (B.import_func bld ~module_name:"env" ~name:"f" ~params:[ Types.I32T ] ~results:[]);
  let m = B.build bld in
  let wrong = Interp.host_func ~name:"f" ~params:[ Types.F64T ] ~results:[] (fun _ -> []) in
  expect_link_error "signature mismatch" "type mismatch" (fun () ->
    Interp.instantiate ~imports:[ ("env", "f", wrong) ] m)

let test_element_out_of_bounds () =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[] ~locals:[] ~body:[] in
  B.add_table bld ~min_size:1 ~max_size:None;
  B.add_elem bld ~offset:5 ~funcs:[ f ];
  let m = B.build bld in
  expect_link_error "element segment oob" "element segment" (fun () ->
    Interp.instantiate ~imports:[] m)

let test_data_out_of_bounds () =
  let bld = B.create () in
  B.add_memory bld ~min_pages:1 ~max_pages:None;
  B.add_data bld ~offset:65534 ~bytes:"hello";
  let m = B.build bld in
  expect_link_error "data segment oob" "data segment" (fun () ->
    Interp.instantiate ~imports:[] m)

let suite =
  [
    case "imported immutable global" test_imported_global;
    case "global initialised from import" test_global_init_from_import;
    case "memory shared between instances" test_shared_memory;
    case "cross-instance function call" test_cross_instance_call;
    case "link errors" test_link_errors;
    case "element segment bounds" test_element_out_of_bounds;
    case "data segment bounds" test_data_out_of_bounds;
  ]
