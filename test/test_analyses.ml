(** The eight paper analyses: behavioural tests on small programs with
    known ground truth. *)

open Minic
open Mc_ast
open Mc_ast.Dsl
module W = Wasabi

let case name fn = Alcotest.test_case name `Quick fn

let run_with_analysis ?entry:(fname = "run") m groups analysis =
  let res = W.Instrument.instrument ~groups m in
  let inst, _ = W.Runtime.instantiate res analysis in
  ignore (Wasm.Interp.invoke_export inst fname []);
  res

(* a tiny program with known instruction counts: 10-iteration loop *)
let counting_program =
  Mc_compile.compile_checked
    (program
       [ func "run" ~params:[] ~result:TInt ~locals:[ ("k", TInt); ("acc", TInt) ]
           [ "acc" := i 0;
             For ("k", i 0, i 10, [ "acc" := v "acc" + v "k" ]);
             Return (Some (v "acc")) ] ])

let test_instruction_mix () =
  let mix = Analyses.Instruction_mix.create () in
  ignore
    (run_with_analysis counting_program Analyses.Instruction_mix.groups
       (Analyses.Instruction_mix.analysis mix));
  (* the loop body's add executes 10 times, the increment 10 times, and
     the exit comparison 11 times: 10+10 adds, 11 ge_s *)
  Alcotest.(check int) "i32.add" 20 (Analyses.Instruction_mix.count mix "i32.add");
  Alcotest.(check int) "i32.ge_s" 11 (Analyses.Instruction_mix.count mix "i32.ge_s");
  Alcotest.(check int) "return" 1 (Analyses.Instruction_mix.count mix "return");
  Alcotest.(check bool) "total counts everything" true
    (Stdlib.( > ) (Analyses.Instruction_mix.total mix) 100)

let test_basic_block_profiling () =
  let bb = Analyses.Basic_block_profiling.create () in
  ignore
    (run_with_analysis counting_program Analyses.Basic_block_profiling.groups
       (Analyses.Basic_block_profiling.analysis bb));
  (* hottest block is the loop header: once per iteration + exit check *)
  match Analyses.Basic_block_profiling.hottest bb with
  | ((_, kind), n) :: _ ->
    Alcotest.(check string) "hottest is a loop" "loop" (W.Hook.block_kind_name kind);
    Alcotest.(check int) "11 iterations (10 + exit)" 11 n
  | [] -> Alcotest.fail "no blocks recorded"

let test_instruction_coverage () =
  let p =
    Mc_compile.compile_checked
      (program
         [ func "run" ~params:[] ~result:TInt
             [ If (i 1, [ Return (Some (i 10)) ], [ Return (Some (i 20)) ]) ] ])
  in
  let cov = Analyses.Instruction_coverage.create () in
  ignore
    (run_with_analysis p Analyses.Instruction_coverage.groups
       (Analyses.Instruction_coverage.analysis cov));
  let ratio = Analyses.Instruction_coverage.coverage cov p in
  Alcotest.(check bool) "partial coverage: else branch never runs" true
    (Stdlib.( && ) (Stdlib.( > ) ratio 0.3) (Stdlib.( < ) ratio 1.0))

let test_branch_coverage () =
  (* a condition that is always true and one exercised both ways *)
  let p =
    Mc_compile.compile_checked
      (program
         [ func "run" ~params:[] ~result:TInt ~locals:[ ("k", TInt); ("acc", TInt) ]
             [ For ("k", i 0, i 4,
                    [ If (v "k" >= i 0, [ "acc" := v "acc" + i 1 ], []);  (* always true *)
                      If (Binop (Rem, v "k", i 2) = i 0,
                          [ "acc" := v "acc" + i 10 ], [ "acc" := v "acc" - i 1 ]) ]);
               Return (Some (v "acc")) ] ])
  in
  let bc = Analyses.Branch_coverage.create () in
  ignore
    (run_with_analysis p Analyses.Branch_coverage.groups (Analyses.Branch_coverage.analysis bc));
  let one_sided = Analyses.Branch_coverage.partially_covered bc in
  (* the always-true if is one-sided; loop exit br_ifs go both ways *)
  Alcotest.(check bool) "at least one one-sided branch" true (Stdlib.( >= ) (List.length one_sided) 1);
  Alcotest.(check bool) "some branches fully covered" true
    (Stdlib.( > ) (Analyses.Branch_coverage.covered_locations bc) (List.length one_sided))

let test_call_graph () =
  let p =
    Mc_compile.compile_checked
      (program
         ~table:[ "c" ]
         [ func "a" ~params:[] ~result:TInt ~export:false [ Return (Some (Call ("b", []) + i 1)) ];
           func "b" ~params:[] ~result:TInt ~export:false [ Return (Some (i 1)) ];
           func "c" ~params:[] ~result:TInt ~export:false [ Return (Some (i 2)) ];
           func "run" ~params:[] ~result:TInt
             [ Return (Some (Call ("a", []) + CallIndirect (i 0, [], Some TInt))) ] ])
  in
  (* indices by declaration order: a=0 b=1 c=2 run=3 *)
  let cg = Analyses.Call_graph.create () in
  ignore (run_with_analysis p Analyses.Call_graph.groups (Analyses.Call_graph.analysis cg));
  Alcotest.(check bool) "run -> a" true (Analyses.Call_graph.has_edge cg 3 0);
  Alcotest.(check bool) "a -> b" true (Analyses.Call_graph.has_edge cg 0 1);
  Alcotest.(check bool) "run -> c via table" true (Analyses.Call_graph.has_edge cg 3 2);
  Alcotest.(check bool) "no bogus b -> c" false (Analyses.Call_graph.has_edge cg 1 2);
  Alcotest.(check (list int)) "reachable from run" [ 0; 1; 2; 3 ]
    (Analyses.Call_graph.reachable cg [ 3 ]);
  Alcotest.(check (list int)) "reachable from a" [ 0; 1 ]
    (Analyses.Call_graph.reachable cg [ 0 ]);
  let dot = Analyses.Call_graph.to_dot cg in
  Alcotest.(check bool) "dot has dashed indirect edge" true
    (Helpers.contains dot "style=dashed")

let test_cryptominer () =
  let hashy =
    Mc_compile.compile_checked
      (program
         [ func "run" ~params:[] ~result:TInt ~locals:[ ("k", TInt); ("h", TInt) ]
             [ For ("k", i 0, i 50,
                    [ "h" := Binop (BXor, v "h", Binop (Shl, v "h", i 5));
                      "h" := Binop (BAnd, v "h" + v "k", i 0xFFFFFF);
                      "h" := Binop (BXor, v "h", Binop (ShrU, v "h", i 3)) ]);
               Return (Some (v "h")) ] ])
  in
  let det = Analyses.Cryptominer.create () in
  ignore (run_with_analysis hashy Analyses.Cryptominer.groups (Analyses.Cryptominer.analysis det));
  Alcotest.(check bool) "high signature ratio" true
    (Stdlib.( > ) (Analyses.Cryptominer.signature_ratio det) 0.7);
  Alcotest.(check int) "xor counted" 100 (Analyses.Cryptominer.count det "i32.xor")

let test_memory_tracing () =
  let p =
    Mc_compile.compile_checked
      (program
         [ func "run" ~params:[] ~result:TInt ~locals:[ ("k", TInt); ("acc", TInt) ]
             [ For ("k", i 0, i 8, [ istore (i 0) (v "k") (v "k") ]);
               For ("k", i 0, i 4, [ "acc" := v "acc" + iload (i 0) (v "k" * i 2) ]);
               Return (Some (v "acc")) ] ])
  in
  let mt = Analyses.Memory_tracing.create () in
  ignore (run_with_analysis p Analyses.Memory_tracing.groups (Analyses.Memory_tracing.analysis mt));
  Alcotest.(check int) "stores" 8 (Analyses.Memory_tracing.num_stores mt);
  Alcotest.(check int) "loads" 4 (Analyses.Memory_tracing.num_loads mt);
  Alcotest.(check int) "unique addresses" 8 (Analyses.Memory_tracing.unique_addresses mt);
  let trace = Analyses.Memory_tracing.trace mt in
  Alcotest.(check int) "trace in order" 12 (List.length trace);
  match trace with
  | first :: _ ->
    Alcotest.(check bool) "first access is the store of k=0" true
      first.Analyses.Memory_tracing.acc_is_store
  | [] -> Alcotest.fail "empty trace"

(* --- taint ------------------------------------------------------------ *)

let taint_program body =
  (* source=0, sink=1, run=2 *)
  Mc_compile.compile_checked
    (program
       [ func "source" ~params:[] ~result:TInt ~export:false [ Return (Some (i 1234)) ];
         func "sink" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0); ];
         func "run" ~params:[] ~result:TInt
           ~locals:[ ("s", TInt); ("t", TInt) ]
           body ])

let run_taint p =
  let taint = Analyses.Taint.create ~sources:[ 0 ] ~sinks:[ 1 ] () in
  ignore (run_with_analysis p Analyses.Taint.groups (Analyses.Taint.analysis taint));
  taint

let test_taint_direct_flow () =
  let p = taint_program
      [ "s" := Call ("source", []);
        Expr (Call ("sink", [ v "s" ]));
        Return (Some (i 0)) ]
  in
  Alcotest.(check int) "one flow" 1 (Analyses.Taint.num_flows (run_taint p))

let test_taint_through_arithmetic () =
  let p = taint_program
      [ "s" := Call ("source", []);
        "t" := v "s" * i 3 + i 7;
        Expr (Call ("sink", [ v "t" ]));
        Return (Some (i 0)) ]
  in
  Alcotest.(check int) "flow through arithmetic" 1 (Analyses.Taint.num_flows (run_taint p))

let test_taint_through_memory () =
  let p = taint_program
      [ "s" := Call ("source", []);
        istore (i 0) (i 5) (v "s");
        "t" := iload (i 0) (i 5);
        Expr (Call ("sink", [ v "t" ]));
        Return (Some (i 0)) ]
  in
  Alcotest.(check int) "flow through memory" 1 (Analyses.Taint.num_flows (run_taint p))

let test_taint_memory_overwrite_clears () =
  let p = taint_program
      [ "s" := Call ("source", []);
        istore (i 0) (i 5) (v "s");
        istore (i 0) (i 5) (i 99);  (* overwrite with a clean value *)
        "t" := iload (i 0) (i 5);
        Expr (Call ("sink", [ v "t" ]));
        Return (Some (i 0)) ]
  in
  Alcotest.(check int) "overwrite clears the taint" 0 (Analyses.Taint.num_flows (run_taint p))

let test_taint_untainted_ok () =
  let p = taint_program
      [ "s" := Call ("source", []);
        "t" := i 5 * i 8;
        Expr (Call ("sink", [ v "t" ]));
        Return (Some (v "s")) ]
  in
  Alcotest.(check int) "no false positive" 0 (Analyses.Taint.num_flows (run_taint p))

let test_taint_through_call () =
  (* the taint survives a round trip through a helper function *)
  let p =
    Mc_compile.compile_checked
      (program
         [ func "source" ~params:[] ~result:TInt ~export:false [ Return (Some (i 1)) ];
           func "sink" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0) ];
           func "id" ~params:[ ("x", TInt) ] ~result:TInt ~export:false
             [ Return (Some (v "x" + i 0)) ];
           func "run" ~params:[] ~result:TInt ~locals:[ ("s", TInt) ]
             [ "s" := Call ("id", [ Call ("source", []) ]);
               Expr (Call ("sink", [ v "s" ]));
               Return (Some (i 0)) ] ])
  in
  let taint = Analyses.Taint.create ~sources:[ 0 ] ~sinks:[ 1 ] () in
  ignore (run_with_analysis p Analyses.Taint.groups (Analyses.Taint.analysis taint));
  Alcotest.(check int) "flow through callee" 1 (Analyses.Taint.num_flows taint)

let test_taint_through_select_and_global () =
  let p =
    Mc_compile.compile_checked
      (program
         ~globals:[ ("g", TInt, Int 0l) ]
         [ func "source" ~params:[] ~result:TInt ~export:false [ Return (Some (i 1)) ];
           func "sink" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0) ];
           func "run" ~params:[] ~result:TInt ~locals:[ ("s", TInt) ]
             [ "s" := Call ("source", []);
               SetGlobal ("g", Select (i 1, v "s", i 0));
               Expr (Call ("sink", [ Global "g" ]));
               Return (Some (i 0)) ] ])
  in
  let taint = Analyses.Taint.create ~sources:[ 0 ] ~sinks:[ 1 ] () in
  ignore (run_with_analysis p Analyses.Taint.groups (Analyses.Taint.analysis taint));
  Alcotest.(check int) "flow through select and global" 1 (Analyses.Taint.num_flows taint)

let test_taint_manual_memory () =
  (* taint a memory region by hand, as for an untrusted network buffer *)
  let p =
    Mc_compile.compile_checked
      (program
         [ func "sink" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0) ];
           func "run" ~params:[] ~result:TInt ~locals:[ ("t", TInt) ]
             [ "t" := iload (i 0) (i 8);
               Expr (Call ("sink", [ v "t" ]));
               Return (Some (i 0)) ] ])
  in
  let taint = Analyses.Taint.create ~sinks:[ 0 ] () in
  ignore (Analyses.Taint.taint_memory taint ~addr:32 ~len:4);
  ignore (run_with_analysis p Analyses.Taint.groups (Analyses.Taint.analysis taint));
  Alcotest.(check int) "byte 32 is tainted" 1
    (Analyses.Taint.Int_set.cardinal (Analyses.Taint.memory_taint_at taint 32));
  Alcotest.(check int) "flow from tainted buffer at addr 32? (load was at 32..35? no: 32+len)" 1
    (Analyses.Taint.num_flows taint)

(* --- provenance --------------------------------------------------------- *)

let test_provenance_const_origin () =
  (* probe=0, run=1: the probed value originates at its two constants *)
  let p =
    Mc_compile.compile_checked
      (program
         [ func "probe" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0) ];
           func "run" ~params:[] ~result:TInt ~locals:[ ("a", TInt) ]
             [ "a" := i 40 + i 2;
               Expr (Call ("probe", [ v "a" ]));
               Return (Some (v "a")) ] ])
  in
  let prov = Analyses.Provenance.create ~probes:[ 0 ] () in
  ignore (run_with_analysis p Analyses.Provenance.groups (Analyses.Provenance.analysis prov));
  match Analyses.Provenance.probes prov with
  | [ probe ] ->
    (* both constant sites contribute to the sum's origin set *)
    Alcotest.(check int) "two origins" 2
      (Wasabi.Location.Set.cardinal probe.Analyses.Provenance.probe_origins)
  | ps -> Alcotest.failf "expected 1 probe, got %d" (List.length ps)

let test_provenance_through_memory () =
  let p =
    Mc_compile.compile_checked
      (program
         [ func "probe" ~params:[ ("x", TInt) ] ~export:false [ Expr (v "x" + i 0) ];
           func "run" ~params:[] ~result:TInt ~locals:[ ("t", TInt) ]
             [ istore (i 0) (i 3) (i 77);
               "t" := iload (i 0) (i 3);
               Expr (Call ("probe", [ v "t" ]));
               Return (Some (v "t")) ] ])
  in
  let prov = Analyses.Provenance.create ~probes:[ 0 ] () in
  ignore (run_with_analysis p Analyses.Provenance.groups (Analyses.Provenance.analysis prov));
  match Analyses.Provenance.probes prov with
  | [ probe ] ->
    (* the origin survives the store/load round trip: it is the const 77's
       location (possibly joined with address-constant sites) *)
    Alcotest.(check bool) "has an origin" false
      (Wasabi.Location.Set.is_empty probe.Analyses.Provenance.probe_origins)
  | ps -> Alcotest.failf "expected 1 probe, got %d" (List.length ps)

let test_analysis_combine () =
  let mix = Analyses.Instruction_mix.create () in
  let cg = Analyses.Call_graph.create () in
  let combined =
    W.Analysis.combine (Analyses.Instruction_mix.analysis mix) (Analyses.Call_graph.analysis cg)
  in
  let p =
    Mc_compile.compile_checked
      (program
         [ func "helper" ~params:[] ~result:TInt ~export:false [ Return (Some (i 2)) ];
           func "run" ~params:[] ~result:TInt [ Return (Some (Call ("helper", []) * i 2)) ] ])
  in
  ignore (run_with_analysis p W.Hook.all combined);
  Alcotest.(check bool) "mix sees instructions" true (Stdlib.( > ) (Analyses.Instruction_mix.total mix) 0);
  Alcotest.(check int) "call graph sees the call" 1 (Analyses.Call_graph.num_edges cg)

let suite =
  [
    case "instruction mix counts" test_instruction_mix;
    case "basic block profile" test_basic_block_profiling;
    case "instruction coverage" test_instruction_coverage;
    case "branch coverage" test_branch_coverage;
    case "call graph" test_call_graph;
    case "cryptominer signature" test_cryptominer;
    case "memory tracing" test_memory_tracing;
    case "taint: direct flow" test_taint_direct_flow;
    case "taint: through arithmetic" test_taint_through_arithmetic;
    case "taint: through memory (shadowing)" test_taint_through_memory;
    case "taint: overwrite clears" test_taint_memory_overwrite_clears;
    case "taint: no false positives" test_taint_untainted_ok;
    case "taint: through calls" test_taint_through_call;
    case "taint: select + global" test_taint_through_select_and_global;
    case "taint: manual memory tainting" test_taint_manual_memory;
    case "provenance: constant origins" test_provenance_const_origin;
    case "provenance: through memory" test_provenance_through_memory;
    case "analysis composition" test_analysis_combine;
  ]
