(** Instrumenter correctness: instrumented modules validate, behave like
    the original (RQ2), and deliver the right events to the analysis API. *)

open Wasm
open Wasm.Ast
open Helpers
module B = Wasm.Builder
module W = Wasabi

let case name f = Alcotest.test_case name `Quick f

(* A module exercising many instruction kinds: arithmetic, locals,
   globals, memory, blocks, loops, branches, calls, i64, select, drop. *)
let rich_module () =
  let bld = B.create () in
  B.add_memory bld ~min_pages:1 ~max_pages:None;
  let g = B.add_global bld ~ty:Types.I32T ~mutable_:true ~init:(Value.I32 0l) in
  let helper = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 3; B.i32_mul ]
  in
  let i64f = B.add_func bld ~params:[ Types.I64T ] ~results:[ Types.I64T ] ~locals:[]
      ~body:[ B.local_get 0; B.i64 0x1_0000_0001L; B.i64_mul ]
  in
  (* main: mixes everything; returns an i32 summary *)
  let body =
    (* store/load roundtrip *)
    [ B.i32 16; B.local_get 0; B.i32_store (); B.i32 16; B.i32_load () ]
    (* call helper *)
    @ [ Call helper ]
    (* loop: add 1..3 *)
    @ [ B.local_set 1; B.i32 3; B.local_set 2 ]
    @ B.block
        (B.loop
           ([ B.local_get 2; B.i32_eqz; BrIf 1 ]
            @ [ B.local_get 1; B.local_get 2; B.i32_add; B.local_set 1 ]
            @ [ B.local_get 2; B.i32 1; B.i32_sub; B.local_set 2; Br 0 ]))
    (* if/else with select and drop *)
    @ [ B.local_get 1; B.i32 10; B.i32_gt_s ]
    @ B.if_ ~result:Types.I32T
        ~then_:[ B.local_get 1; B.i32 100; B.i32 1; Select ]
        ~else_:[ B.i32 7; B.f64 3.5; Drop ]
        ()
    (* i64 round trip through a call *)
    @ [ B.i64 5L; Call i64f; Convert I32WrapI64; B.i32_add ]
    (* global update *)
    @ [ B.global_get g; B.i32_add; B.global_set g; B.global_get g ]
  in
  let f = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ]
      ~locals:[ Types.I32T; Types.I32T ] ~body
  in
  B.export_func bld ~name:"f" f;
  B.build bld

let br_table_module () =
  let bld = B.create () in
  let body =
    [ Block (Some Types.I32T);
      Block None;
      Block None;
      Block None;
      B.local_get 0;
      BrTable ([ 0; 1; 2 ], 2);
      End;
      B.i32 100; Br 2;
      End;
      B.i32 200; Br 1;
      End;
      B.i32 300;
      End ]
  in
  let f = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[] ~body in
  B.export_func bld ~name:"f" f;
  B.build bld

let instrument ?groups m =
  Validate.validate_module m;
  W.Instrument.instrument ?groups m

let run_instrumented ?analysis res name args =
  let analysis = Option.value analysis ~default:W.Analysis.default in
  let inst, _rt = W.Runtime.instantiate res analysis in
  Interp.invoke_export inst name args

(* --- validation of instrumented output ------------------------------- *)

let test_instrumented_validates () =
  let m = rich_module () in
  let res = instrument m in
  Validate.validate_module res.W.Instrument.instrumented;
  (* also after an encode/decode round trip *)
  let bin = Encode.encode res.W.Instrument.instrumented in
  Validate.validate_module (Decode.decode bin)

let test_br_table_validates () =
  let res = instrument (br_table_module ()) in
  Validate.validate_module res.W.Instrument.instrumented

let test_selective_validates () =
  let m = rich_module () in
  List.iter
    (fun g ->
       let res = instrument ~groups:(W.Hook.of_list [ g ]) m in
       try Validate.validate_module res.W.Instrument.instrumented
       with Validate.Invalid msg ->
         Alcotest.failf "group %s: invalid instrumented module: %s" (W.Hook.group_name g) msg)
    W.Hook.all_groups

(* --- faithfulness (RQ2) ---------------------------------------------- *)

let test_faithful_rich () =
  let m = rich_module () in
  let res = instrument m in
  List.iter
    (fun x ->
       let expected = Interp.invoke_export (Interp.instantiate ~imports:[] m) "f" [ i32 x ] in
       let actual = run_instrumented res "f" [ i32 x ] in
       check_values (Printf.sprintf "f(%d)" x) expected actual)
    [ 0; 1; 5; 42; -3 ]

let test_faithful_br_table () =
  let m = br_table_module () in
  let res = instrument m in
  List.iter
    (fun x ->
       let expected = Interp.invoke_export (Interp.instantiate ~imports:[] m) "f" [ i32 x ] in
       let actual = run_instrumented res "f" [ i32 x ] in
       check_values (Printf.sprintf "f(%d)" x) expected actual)
    [ 0; 1; 2; 3; 17 ]

let test_faithful_selective () =
  let m = rich_module () in
  let expected = Interp.invoke_export (Interp.instantiate ~imports:[] m) "f" [ i32 6 ] in
  List.iter
    (fun g ->
       let res = instrument ~groups:(W.Hook.of_list [ g ]) m in
       let actual = run_instrumented res "f" [ i32 6 ] in
       check_values (W.Hook.group_name g) expected actual)
    W.Hook.all_groups

let test_faithful_memory () =
  (* paper: Wasabi preserves the program's memory behaviour exactly *)
  let m = rich_module () in
  let res = instrument m in
  let inst0 = Interp.instantiate ~imports:[] m in
  ignore (Interp.invoke_export inst0 "f" [ i32 9 ]);
  let inst1, _ = W.Runtime.instantiate res W.Analysis.default in
  ignore (Interp.invoke_export inst1 "f" [ i32 9 ]);
  let bytes inst = Memory.to_string (Option.get inst.Interp.inst_memory) ~at:0 ~len:64 in
  Alcotest.(check string) "first 64 bytes of memory" (bytes inst0) (bytes inst1)

(* --- hook event delivery --------------------------------------------- *)

let events : string list ref = ref []
let record fmt = Printf.ksprintf (fun s -> events := s :: !events) fmt
let reset () = events := []
let got () = List.rev !events

let test_const_hook () =
  reset ();
  let m =
    single_func ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 7; B.i64 0x1_0000_0002L; Convert I32WrapI64; B.i32_add ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_const ]) m in
  let analysis =
    { W.Analysis.default with const = (fun _ v -> record "const %s" (Value.to_string v)) }
  in
  ignore (run_instrumented ~analysis res "f" []);
  Alcotest.(check (list string)) "const events"
    [ "const i32:7"; "const i64:4294967298" ] (got ())

let test_binary_hook () =
  reset ();
  let m =
    single_func ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 6; B.i32 7; B.i32_mul ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_binary ]) m in
  let analysis =
    { W.Analysis.default with
      binary = (fun _ op a b r ->
        record "%s %s %s -> %s" op (Value.to_string a) (Value.to_string b) (Value.to_string r)) }
  in
  ignore (run_instrumented ~analysis res "f" []);
  Alcotest.(check (list string)) "binary events" [ "i32.mul i32:6 i32:7 -> i32:42" ] (got ())

let test_call_hooks () =
  reset ();
  let bld = B.create () in
  let g = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 1; B.i32_add ]
  in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 41; Call g ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_call ]) m in
  let analysis =
    { W.Analysis.default with
      call_pre = (fun loc callee args ti ->
        record "pre %s -> func %d args [%s] indirect=%b" (W.Location.to_string loc) callee
          (String.concat ";" (List.map Value.to_string args))
          (ti <> None));
      call_post = (fun _ results ->
        record "post [%s]" (String.concat ";" (List.map Value.to_string results))) }
  in
  let r = run_instrumented ~analysis res "f" [] in
  check_values "result" [ i32 42 ] r;
  Alcotest.(check (list string)) "call events"
    [ "pre 1:1 -> func 0 args [i32:41] indirect=false"; "post [i32:42]" ] (got ())

let test_indirect_call_resolution () =
  reset ();
  let bld = B.create () in
  let double = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 2; B.i32_mul ]
  in
  let square = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.local_get 0; B.i32_mul ]
  in
  B.add_table bld ~min_size:2 ~max_size:None;
  B.add_elem bld ~offset:0 ~funcs:[ double; square ];
  let ti = B.add_type bld (Types.func_type [ Types.I32T ] [ Types.I32T ]) in
  let f = B.add_func bld ~params:[ Types.I32T; Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 1; B.local_get 0; CallIndirect ti ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_call ]) m in
  let analysis =
    { W.Analysis.default with
      call_pre = (fun _ callee _ ti ->
        record "pre func=%d table=%s" callee
          (match ti with Some i -> string_of_int i | None -> "-")) }
  in
  let r = run_instrumented ~analysis res "f" [ i32 1; i32 5 ] in
  check_values "square(5)" [ i32 25 ] r;
  (* table index 1 resolves to the original index of [square] *)
  Alcotest.(check (list string)) "resolution"
    [ Printf.sprintf "pre func=%d table=1" square ] (got ())

let test_begin_end_balanced () =
  reset ();
  let m = rich_module () in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_begin; W.Hook.G_end ]) m in
  let depth = ref 0 and max_depth = ref 0 and unbalanced = ref false in
  let analysis =
    { W.Analysis.default with
      begin_ = (fun _ _ -> incr depth; if !depth > !max_depth then max_depth := !depth);
      end_ = (fun _ _ _ -> decr depth; if !depth < 0 then unbalanced := true) }
  in
  ignore (run_instrumented ~analysis res "f" [ i32 4 ]);
  Alcotest.(check bool) "never negative" false !unbalanced;
  Alcotest.(check int) "balanced at exit" 0 !depth;
  Alcotest.(check bool) "saw nesting" true (!max_depth >= 3)

let test_branch_resolution () =
  reset ();
  (* block; loop; br_if 1 -> resolved target is the instruction after the
     block's end *)
  let body =
    [ Block None;  (* 0 *)
      Loop None;  (* 1 *)
      B.local_get 0;  (* 2 *)
      BrIf 1;  (* 3 -> resolved to 6 *)
      Br 0;  (* 4 -> resolved to 2 (loop header body) *)
      End;  (* 5 *)
      End;  (* 6 *)
      B.i32 1 ]
  in
  let m = single_func ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[] body in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_br; W.Hook.G_br_if ]) m in
  let analysis =
    { W.Analysis.default with
      br = (fun loc t ->
        record "br at %s label %d -> %s" (W.Location.to_string loc) t.W.Metadata.label
          (W.Location.to_string t.W.Metadata.target_loc));
      br_if = (fun loc t cond ->
        record "br_if at %s label %d -> %s taken=%b" (W.Location.to_string loc)
          t.W.Metadata.label (W.Location.to_string t.W.Metadata.target_loc) cond) }
  in
  ignore (run_instrumented ~analysis res "f" [ i32 1 ]);
  Alcotest.(check (list string)) "resolved targets"
    [ "br_if at 0:3 label 1 -> 0:7 taken=true" ] (got ());
  reset ();
  (* not taken once, loops back once, then exits *)
  let inst, _ = W.Runtime.instantiate res
      { W.Analysis.default with
        br = (fun _ t -> record "br->%s" (W.Location.to_string t.W.Metadata.target_loc));
        br_if = (fun _ _ c -> record "br_if taken=%b" c) }
  in
  (* local 0 = 0 would loop forever; instead run with 1 again *)
  ignore (Interp.invoke_export inst "f" [ i32 1 ]);
  Alcotest.(check (list string)) "events" [ "br_if taken=true" ] (got ())

let test_end_hooks_on_branch () =
  reset ();
  (* br 1 out of a loop nested in a block: end hooks for loop and block
     must fire (Table 3, row 5) *)
  let body =
    [ Block None;  (* 0 *)
      Loop None;  (* 1 *)
      Br 1;  (* 2 *)
      End;  (* 3 *)
      End;  (* 4 *)
      B.i32 9 ]
  in
  let m = single_func ~params:[] ~results:[ Types.I32T ] ~locals:[] body in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_begin; W.Hook.G_end ]) m in
  let analysis =
    { W.Analysis.default with
      begin_ = (fun loc k -> record "begin %s %s" (W.Hook.block_kind_name k) (W.Location.to_string loc));
      end_ = (fun loc k b ->
        record "end %s %s (begin %s)" (W.Hook.block_kind_name k) (W.Location.to_string loc)
          (W.Location.to_string b)) }
  in
  ignore (run_instrumented ~analysis res "f" []);
  Alcotest.(check (list string)) "begin/end sequence"
    [ "begin function 0:-1";
      "begin block 0:0";
      "begin loop 0:1";
      "end loop 0:3 (begin 0:1)";
      "end block 0:4 (begin 0:0)";
      "end function 0:6 (begin 0:-1)" ]
    (got ())

let test_br_table_end_hooks () =
  reset ();
  let m = br_table_module () in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_br_table; W.Hook.G_end ]) m in
  let analysis =
    { W.Analysis.default with
      br_table = (fun _ targets default idx ->
        record "br_table idx=%d targets=%d default->%s" idx (Array.length targets)
          (W.Location.to_string default.W.Metadata.target_loc));
      end_ = (fun _ k _ -> record "end %s" (W.Hook.block_kind_name k)) }
  in
  ignore (run_instrumented ~analysis res "f" [ i32 1 ]);
  (* idx 1 jumps out of the two innermost blocks; execution then reaches
     "i32 200; br 1", which ends the remaining two blocks *)
  let evs = got () in
  Alcotest.(check bool) "br_table event first" true
    (match evs with e :: _ -> Helpers.contains e "br_table idx=1" | [] -> false);
  let ends = List.filter (fun e -> Helpers.contains e "end block") evs in
  Alcotest.(check int) "2 blocks ended by br_table + 2 by the br" 4 (List.length ends)

let test_i64_join () =
  reset ();
  let m =
    single_func ~params:[] ~results:[ Types.I64T ] ~locals:[]
      [ B.i64 (-2L); B.i64 3L; B.i64_mul ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_binary ]) m in
  let analysis =
    { W.Analysis.default with
      binary = (fun _ op a b r ->
        record "%s %s %s -> %s" op (Value.to_string a) (Value.to_string b) (Value.to_string r)) }
  in
  let r = run_instrumented ~analysis res "f" [] in
  check_values "result intact" [ Value.I64 (-6L) ] r;
  Alcotest.(check (list string)) "negative i64 joined correctly"
    [ "i64.mul i64:-2 i64:3 -> i64:-6" ] (got ())

let test_load_store_hooks () =
  reset ();
  let m =
    single_func ~memory:1 ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 4; B.i32 99; B.i32_store ~offset:12 (); B.i32 4; B.i32_load ~offset:12 () ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_load; W.Hook.G_store ]) m in
  let analysis =
    { W.Analysis.default with
      load = (fun _ op (ma : W.Analysis.memarg) v ->
        record "load %s addr=%ld+%d %s" op ma.addr ma.offset (Value.to_string v));
      store = (fun _ op (ma : W.Analysis.memarg) v ->
        record "store %s addr=%ld+%d %s" op ma.addr ma.offset (Value.to_string v)) }
  in
  ignore (run_instrumented ~analysis res "f" []);
  Alcotest.(check (list string)) "memory events"
    [ "store i32.store addr=4+12 i32:99"; "load i32.load addr=4+12 i32:99" ] (got ())

let test_drop_select_hooks () =
  reset ();
  let m =
    single_func ~params:[] ~results:[ Types.F64T ] ~locals:[]
      [ B.i32 1; Drop;
        B.f64 1.5; B.f64 2.5; B.i32 0; Select ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_drop; W.Hook.G_select ]) m in
  let analysis =
    { W.Analysis.default with
      drop = (fun _ v -> record "drop %s" (Value.to_string v));
      select = (fun _ c a b ->
        record "select %b %s %s" c (Value.to_string a) (Value.to_string b)) }
  in
  let r = run_instrumented ~analysis res "f" [] in
  check_values "select false -> second" [ f64 2.5 ] r;
  Alcotest.(check (list string)) "events"
    [ "drop i32:1"; "select false f64:0x1.8p+0 f64:0x1.4p+1" ] (got ())

let test_local_global_hooks () =
  reset ();
  let bld = B.create () in
  let g = B.add_global bld ~ty:Types.I64T ~mutable_:true ~init:(Value.I64 7L) in
  let f = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I64T ] ~locals:[]
      ~body:[ B.local_get 0; Drop; B.global_get g ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_local; W.Hook.G_global ]) m in
  let analysis =
    { W.Analysis.default with
      local = (fun _ op i v -> record "%s %d %s" op i (Value.to_string v));
      global = (fun _ op i v -> record "%s %d %s" op i (Value.to_string v)) }
  in
  ignore (run_instrumented ~analysis res "f" [ i32 3 ]);
  Alcotest.(check (list string)) "events"
    [ "local.get 0 i32:3"; "global.get 0 i64:7" ] (got ())

let test_return_hook () =
  reset ();
  let m =
    single_func ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ Block None; B.i32 5; Return; End; B.i32 1 ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_return; W.Hook.G_end ]) m in
  let analysis =
    { W.Analysis.default with
      return_ = (fun _ rs -> record "return [%s]" (String.concat ";" (List.map Value.to_string rs)));
      end_ = (fun _ k _ -> record "end %s" (W.Hook.block_kind_name k)) }
  in
  let r = run_instrumented ~analysis res "f" [] in
  check_values "returned 5" [ i32 5 ] r;
  Alcotest.(check (list string)) "return + all ends"
    [ "return [i32:5]"; "end block"; "end function" ] (got ())

let test_monomorphization_on_demand () =
  (* hooks are generated only for type variants present in the module *)
  let m =
    single_func ~params:[] ~results:[ Types.I32T ] ~locals:[]
      [ B.i32 1; Drop; B.i32 2; Drop; B.f64 1.0; Drop; B.i32 0 ]
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_drop ]) m in
  let specs = res.W.Instrument.metadata.W.Metadata.hook_specs in
  let drops =
    Array.to_list specs
    |> List.filter (function W.Hook.S_drop _ -> true | _ -> false)
  in
  (* i32 used twice but one hook; f64 once; i64/f32 never -> absent *)
  Alcotest.(check int) "two drop variants" 2 (List.length drops)

let test_unreachable_code_skipped () =
  (* code after an unconditional branch is dead; instrumentation must not
     produce an invalid module *)
  let body =
    [ Block None; Br 0; B.i32 1; Drop; End; B.i32 3 ]
  in
  let m = single_func ~params:[] ~results:[ Types.I32T ] ~locals:[] body in
  let res = instrument m in
  Validate.validate_module res.W.Instrument.instrumented;
  check_values "still works" [ i32 3 ] (run_instrumented res "f" [])

let test_if_hook () =
  reset ();
  let m =
    single_func ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ([ B.local_get 0 ] @ B.if_ ~result:Types.I32T ~then_:[ B.i32 1 ] ~else_:[ B.i32 2 ] ())
  in
  let res = instrument ~groups:(W.Hook.of_list [ W.Hook.G_if ]) m in
  let analysis = { W.Analysis.default with if_ = (fun _ c -> record "if %b" c) } in
  let r = run_instrumented ~analysis res "f" [ i32 0 ] in
  check_values "else branch" [ i32 2 ] r;
  Alcotest.(check (list string)) "events" [ "if false" ] (got ())

let test_instrument_module_with_imports () =
  (* original imports keep their indices; hook imports slot in between;
     call_pre reports the imported callee's original index *)
  reset ();
  let bld = B.create () in
  let log = B.import_func bld ~module_name:"env" ~name:"log"
      ~params:[ Types.I32T ] ~results:[ Types.I32T ]
  in
  let helper = B.add_func bld ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.local_get 0; B.i32 1; B.i32_add ]
  in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 5; Call log; Call helper ]
  in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  let res = instrument m in
  Validate.validate_module res.W.Instrument.instrumented;
  let analysis =
    { W.Analysis.default with
      call_pre = (fun _ callee _ _ -> record "call func=%d" callee) }
  in
  let rt = W.Runtime.create res analysis in
  let ext =
    Interp.host_func ~name:"log" ~params:[ Types.I32T ] ~results:[ Types.I32T ]
      (function [ Value.I32 x ] -> [ Value.I32 (Int32.mul x 10l) ] | _ -> assert false)
  in
  let inst =
    Interp.instantiate
      ~imports:(W.Runtime.imports rt @ [ ("env", "log", ext) ])
      res.W.Instrument.instrumented
  in
  rt.W.Runtime.instance <- Some inst;
  check_values "5 *10 +1" [ i32 51 ] (Interp.invoke_export inst "f" []);
  (* callee indices are reported in the ORIGINAL index space *)
  Alcotest.(check (list string)) "call events"
    [ Printf.sprintf "call func=%d" log; Printf.sprintf "call func=%d" helper ]
    (got ())

let test_parallel_instrumentation () =
  (* functions instrumented across 4 domains: the module still validates
     and behaves identically (hook ordinals may differ from serial) *)
  let m =
    Minic.Mc_compile.compile (Workloads.Realworld.pdfkit ~doc_len:200 ())
  in
  Validate.validate_module m;
  let serial = W.Instrument.instrument m in
  let parallel = W.Instrument.instrument ~domains:4 m in
  Validate.validate_module parallel.W.Instrument.instrumented;
  Alcotest.(check int) "same number of hooks"
    (serial.W.Instrument.metadata.W.Metadata.num_hooks)
    (parallel.W.Instrument.metadata.W.Metadata.num_hooks);
  let run res =
    let inst, _ = W.Runtime.instantiate res W.Analysis.default in
    Interp.invoke_export inst "run" []
  in
  check_values "parallel = serial behaviour" (run serial) (run parallel)

let test_export_names_preserved () =
  let m = rich_module () in
  let res = instrument m in
  let names = List.map (fun (e : export) -> e.name) res.W.Instrument.instrumented.exports in
  Alcotest.(check (list string)) "exports kept" [ "f" ] names

let suite =
  [
    case "instrumented module validates" test_instrumented_validates;
    case "br_table instrumentation validates" test_br_table_validates;
    case "every selective group validates" test_selective_validates;
    case "faithful: rich module" test_faithful_rich;
    case "faithful: br_table" test_faithful_br_table;
    case "faithful: per group" test_faithful_selective;
    case "faithful: memory contents" test_faithful_memory;
    case "const hook" test_const_hook;
    case "binary hook" test_binary_hook;
    case "call hooks" test_call_hooks;
    case "indirect call resolution" test_indirect_call_resolution;
    case "begin/end balanced" test_begin_end_balanced;
    case "branch target resolution" test_branch_resolution;
    case "end hooks on branch" test_end_hooks_on_branch;
    case "br_table end hooks" test_br_table_end_hooks;
    case "i64 split and join" test_i64_join;
    case "load/store hooks" test_load_store_hooks;
    case "drop/select hooks" test_drop_select_hooks;
    case "local/global hooks" test_local_global_hooks;
    case "return hook" test_return_hook;
    case "on-demand monomorphization" test_monomorphization_on_demand;
    case "dead code handled" test_unreachable_code_skipped;
    case "if hook" test_if_hook;
    case "module with imports" test_instrument_module_with_imports;
    case "parallel instrumentation" test_parallel_instrumentation;
    case "exports preserved" test_export_names_preserved;
  ]
