(** RQ2 at test scale: instrumented execution is observably identical to
    the original — over the whole benchmark corpus and over randomly
    generated MiniC programs (property-based). *)

open Minic
open Mc_ast
module W = Wasabi

let case name fn = Alcotest.test_case name `Quick fn

let corpus = lazy (Workloads.Corpus.make ~n:4 ())

let checksum_of m =
  let inst = Wasm.Interp.instantiate ~imports:[] m in
  match Wasm.Interp.invoke_export inst "run" [] with
  | [ Wasm.Value.F64 x ] -> x
  | other ->
    Alcotest.failf "run returned %s"
      (String.concat ";" (List.map Wasm.Value.to_string other))

let instrumented_checksum ?groups m =
  let res = W.Instrument.instrument ?groups m in
  Wasm.Validate.validate_module res.W.Instrument.instrumented;
  let inst, _ = W.Runtime.instantiate res W.Analysis.default in
  match Wasm.Interp.invoke_export inst "run" [] with
  | [ Wasm.Value.F64 x ] -> x
  | _ -> Alcotest.fail "instrumented run returned junk"

let test_corpus_fully_instrumented () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let expected = checksum_of e.module_ in
       let actual = instrumented_checksum e.module_ in
       Alcotest.(check (float 1e-9)) e.name expected actual)
    (Lazy.force corpus)

let test_corpus_instrumented_binary_roundtrip () =
  (* the behaviour also survives encode -> decode of the instrumented
     module, i.e. what the CLI writes to disk is equivalent *)
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let expected = checksum_of e.module_ in
       let res = W.Instrument.instrument e.module_ in
       let reloaded = Wasm.Decode.decode (Wasm.Encode.encode res.W.Instrument.instrumented) in
       (* re-attach the runtime to the reloaded module *)
       let res' = { res with W.Instrument.instrumented = reloaded } in
       let inst, _ = W.Runtime.instantiate res' W.Analysis.default in
       match Wasm.Interp.invoke_export inst "run" [] with
       | [ Wasm.Value.F64 actual ] ->
         Alcotest.(check (float 1e-9)) e.name expected actual
       | _ -> Alcotest.fail "junk result")
    (Lazy.force corpus)

let test_begin_end_balance_corpus () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let depth = ref 0 and bad = ref false in
       let analysis =
         { W.Analysis.default with
           begin_ = (fun _ _ -> incr depth);
           end_ = (fun _ _ _ -> decr depth; if Stdlib.( < ) !depth 0 then bad := true) }
       in
       let res = W.Instrument.instrument ~groups:(W.Hook.of_list [ W.Hook.G_begin; W.Hook.G_end ])
           e.module_
       in
       let inst, _ = W.Runtime.instantiate res analysis in
       ignore (Wasm.Interp.invoke_export inst "run" []);
       Alcotest.(check bool) (e.name ^ ": depth never negative") false !bad;
       Alcotest.(check int) (e.name ^ ": balanced") 0 !depth)
    (Lazy.force corpus)

(* --- random program generation ---------------------------------------- *)

(** Random MiniC programs: two int variables, bounded loops, arithmetic
    without division, memory accesses masked into the first pages. *)
module Gen_prog = struct
  open QCheck.Gen

  let gen_leaf =
    oneof
      [ map (fun k -> Int (Int32.of_int k)) (int_range (-100) 100);
        return (Var "a");
        return (Var "b");
        return (Load (TInt, Binop (BAnd, Var "a", Int 252l))) ]

  let gen_binop = oneofl [ Add; Sub; Mul; BAnd; BOr; BXor ]
  let gen_cmp = oneofl [ Eq; Ne; Lt; Le; Gt; Ge ]

  let rec gen_expr n =
    if n <= 0 then gen_leaf
    else
      frequency
        [ (3, gen_leaf);
          (4,
           gen_binop >>= fun op ->
           gen_expr (n - 1) >>= fun x ->
           gen_expr (n / 2) >>= fun y -> return (Binop (op, x, y)));
          (1,
           gen_cmp >>= fun op ->
           gen_expr (n / 2) >>= fun x ->
           gen_expr (n / 2) >>= fun y -> return (Binop (op, x, y)));
          (1,
           gen_expr (n / 2) >>= fun c ->
           gen_expr (n / 2) >>= fun x ->
           gen_expr (n / 2) >>= fun y -> return (Select (c, x, y))) ]

  let gen_assign =
    oneofl [ "a"; "b" ] >>= fun lhs ->
    gen_expr 3 >>= fun e -> return (Assign (lhs, e))

  let gen_store =
    gen_expr 2 >>= fun addr ->
    gen_expr 2 >>= fun value ->
    return (Store (TInt, Binop (BAnd, addr, Int 252l), value))

  let rec gen_stmt depth =
    if depth <= 0 then oneof [ gen_assign; gen_store ]
    else
      frequency
        [ (4, gen_assign);
          (2, gen_store);
          (2,
           gen_expr 2 >>= fun cond ->
           list_size (int_range 1 3) (gen_stmt (depth - 1)) >>= fun then_ ->
           list_size (int_range 0 2) (gen_stmt (depth - 1)) >>= fun else_ ->
           return (If (cond, then_, else_)));
          (2,
           int_range 1 4 >>= fun bound ->
           list_size (int_range 1 3) (gen_stmt (depth - 1)) >>= fun body ->
           let var = Printf.sprintf "k%d" depth in
           return (For (var, Int 0l, Int (Int32.of_int bound), body)));
          (1,
           int_range 0 2 >>= fun ncases ->
           list_repeat ncases (list_size (int_range 1 2) (gen_stmt (depth - 1)))
           >>= fun cases ->
           list_size (int_range 0 2) (gen_stmt (depth - 1)) >>= fun default ->
           gen_expr 1 >>= fun scrut ->
           return (Switch (Binop (BAnd, scrut, Int 3l), cases, default))) ]

  let gen_program =
    list_size (int_range 3 10) (gen_stmt 2) >>= fun stmts ->
    let checksum_loop =
      For ("k1", Int 0l, Int 64l,
           [ Assign ("a", Binop (Add, Var "a", Load (TInt, Binop (Mul, Var "k1", Int 4l)))) ])
    in
    let body =
      (Assign ("a", Int 17l) :: Assign ("b", Int 23l) :: stmts)
      @ [ checksum_loop;
          Return (Some (Cast (TFloat, Binop (BXor, Var "a", Binop (Mul, Var "b", Int 31l))))) ]
    in
    return
      (program
         [ func "run" ~params:[] ~result:TFloat
             ~locals:[ ("a", TInt); ("b", TInt); ("k1", TInt); ("k2", TInt) ]
             body ])

  let arbitrary =
    QCheck.make gen_program
      ~print:(fun p ->
        match Mc_compile.compile p with
        | m -> Wasm.Wat.to_string m
        | exception Mc_compile.Compile_error msg -> "compile error: " ^ msg)
end

let prop_random_faithful =
  QCheck.Test.make ~name:"random programs: instrumented = original" ~count:120
    Gen_prog.arbitrary (fun p ->
      let m = Mc_compile.compile_checked p in
      let expected = checksum_of m in
      let actual = instrumented_checksum m in
      Float.equal expected actual)

let group_subsets =
  (* deterministic selection of interesting subsets *)
  [ [ W.Hook.G_binary ];
    [ W.Hook.G_local; W.Hook.G_const ];
    [ W.Hook.G_begin; W.Hook.G_end ];
    [ W.Hook.G_br; W.Hook.G_br_if; W.Hook.G_br_table; W.Hook.G_end ];
    [ W.Hook.G_load; W.Hook.G_store; W.Hook.G_select ];
    [ W.Hook.G_call; W.Hook.G_return ] ]

let prop_random_faithful_selective =
  QCheck.Test.make ~name:"random programs: selective instrumentation faithful" ~count:60
    Gen_prog.arbitrary (fun p ->
      let m = Mc_compile.compile_checked p in
      let expected = checksum_of m in
      List.for_all
        (fun gs ->
           Float.equal expected (instrumented_checksum ~groups:(W.Hook.of_list gs) m))
        group_subsets)

let prop_random_instrumented_validates =
  QCheck.Test.make ~name:"random programs: instrumented module validates" ~count:120
    Gen_prog.arbitrary (fun p ->
      let m = Mc_compile.compile_checked p in
      let res = W.Instrument.instrument m in
      Wasm.Validate.is_valid res.W.Instrument.instrumented)

let test_stress_module_faithful () =
  (* a hand-built module exercising interpreter fast paths the MiniC
     corpus does not reach: mixed-type multi-argument calls (split i64
     hook arguments), call_indirect through the table, a dense br_table
     and f64 memory round trips — instrumented and uninstrumented runs
     must agree exactly *)
  let module B = Wasm.Builder in
  let open Wasm.Ast in
  let open Wasm.Types in
  let bld = B.create () in
  B.add_memory bld ~min_pages:1 ~max_pages:None;
  let kernel =
    B.add_func bld ~params:[ I32T; I64T; F64T; I32T ] ~results:[ F64T ] ~locals:[]
      ~body:
        [ B.local_get 0; Convert F64ConvertI32S; B.f64 1000.0; B.f64_mul;
          B.local_get 1; Convert F64ConvertI64S; B.f64 100.0; B.f64_mul; B.f64_add;
          B.local_get 2; B.f64 10.0; B.f64_mul; B.f64_add;
          B.local_get 3; Convert F64ConvertI32S; B.f64_add ]
  in
  B.add_table bld ~min_size:1 ~max_size:None;
  B.add_elem bld ~offset:0 ~funcs:[ kernel ];
  let ti = B.add_type bld (func_type [ I32T; I64T; F64T; I32T ] [ F64T ]) in
  let select =
    B.add_func bld ~params:[ I32T ] ~results:[ I32T ] ~locals:[]
      ~body:
        [ Block (Some I32T); Block None; Block None; Block None;
          B.local_get 0;
          BrTable (List.init 16 (fun i -> i mod 3), 2);
          End; B.i32 5; Br 2;
          End; B.i32 7; Br 1;
          End; B.i32 11;
          End ]
  in
  (* local 0 = loop counter i, local 1 = accumulator *)
  let addr = [ B.local_get 0; B.i32 15; B.i32_and; B.i32 3; B.i32_shl ] in
  let run =
    B.add_func bld ~params:[] ~results:[ F64T ] ~locals:[ I32T; F64T ]
      ~body:
        ([ B.i32 0; B.local_set 0;
           Block None; Loop None;
           B.local_get 0; B.i32 48; B.i32_ge_s; BrIf 1 ]
         (* acc += kernel (i, 3i, float i, select (i land 15)), directly *)
         @ [ B.local_get 1;
             B.local_get 0;
             B.local_get 0; Convert I64ExtendI32S; B.i64 3L; B.i64_mul;
             B.local_get 0; Convert F64ConvertI32S;
             B.local_get 0; B.i32 15; B.i32_and; Call select;
             Call kernel; B.f64_add; B.local_set 1 ]
         (* acc += kernel (i + 7, i, i / 2, 9), through the table *)
         @ [ B.local_get 1;
             B.local_get 0; B.i32 7; B.i32_add;
             B.local_get 0; Convert I64ExtendI32S;
             B.local_get 0; Convert F64ConvertI32S; B.f64 0.5; B.f64_mul;
             B.i32 9;
             B.i32 0; CallIndirect ti; B.f64_add; B.local_set 1 ]
         (* round-trip the accumulator through linear memory *)
         @ addr @ [ B.local_get 1; B.f64_store () ]
         @ addr @ [ B.f64_load (); B.local_set 1 ]
         @ [ B.local_get 0; B.i32 1; B.i32_add; B.local_set 0;
             Br 0; End; End;
             B.local_get 1 ])
  in
  B.export_func bld ~name:"run" run;
  let m = B.build bld in
  Wasm.Validate.validate_module m;
  let expected = checksum_of m in
  Alcotest.(check bool) "finite, non-zero checksum" true
    (Float.is_finite expected && expected <> 0.0);
  Alcotest.(check (float 0.0)) "fully instrumented" expected (instrumented_checksum m);
  Alcotest.(check (float 0.0)) "call and br_table hooks only" expected
    (instrumented_checksum
       ~groups:(W.Hook.of_list [ W.Hook.G_call; W.Hook.G_br_table ]) m)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_faithful; prop_random_faithful_selective; prop_random_instrumented_validates ]

let suite =
  [
    case "corpus: fully instrumented behaviour" test_corpus_fully_instrumented;
    case "corpus: instrumented binary round trip" test_corpus_instrumented_binary_roundtrip;
    case "corpus: begin/end balance" test_begin_end_balance_corpus;
    case "stress module: calls, call_indirect, br_table" test_stress_module_faithful;
  ]
  @ qcheck_cases
