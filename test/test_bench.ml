(** Unit tests for the benchmark support library: the block-comment-aware
    OCaml LoC counter backing the paper's Table 4 (analysis LoC). *)

let case name f = Alcotest.test_case name `Quick f

let loc = Bench_support.Support.ml_loc_of_string

let test_basic () =
  Alcotest.(check int) "empty" 0 (loc "");
  Alcotest.(check int) "blank lines only" 0 (loc "\n  \n\t\n");
  Alcotest.(check int) "single line without newline" 1 (loc "let x = 1");
  Alcotest.(check int) "two lines" 2 (loc "let x = 1\nlet y = 2\n")

let test_block_comments () =
  Alcotest.(check int) "whole-line comment" 0 (loc "(* nothing here *)\n");
  Alcotest.(check int) "multi-line comment interior" 0
    (loc "(* first\n   second\n   third *)\n");
  Alcotest.(check int) "code before a trailing comment counts" 1
    (loc "let x = 1 (* trailing note *)\n");
  Alcotest.(check int) "code after a leading comment counts" 1
    (loc "(* leading note *) let x = 1\n");
  Alcotest.(check int) "comment sandwich" 3
    (loc "let a = 1\n(* a\n   long\n   explanation *)\nlet b = 2\nlet c = a + b\n")

let test_nested_comments () =
  (* OCaml block comments nest; the counter must track the depth *)
  Alcotest.(check int) "nested comment on one line" 0
    (loc "(* outer (* inner *) still a comment *)\n");
  Alcotest.(check int) "code resumes only at depth zero" 1
    (loc "(* outer (* inner *) still a comment *)\nlet x = 1\n");
  Alcotest.(check int) "nested comment spanning lines" 1
    (loc "(* a (* b\n c *) d\n*) let live = ()\n")

let test_edge_cases () =
  (* '*' not preceded by '(' is ordinary code *)
  Alcotest.(check int) "multiplication is code" 1 (loc "let f = a * b\n");
  Alcotest.(check int) "unterminated comment swallows the rest" 1
    (loc "let x = 1\n(* never closed\nlet y = 2\n")

let suite =
  [
    case "LoC counter basics" test_basic;
    case "LoC counter block comments" test_block_comments;
    case "LoC counter nested comments" test_nested_comments;
    case "LoC counter edge cases" test_edge_cases;
  ]
