(** Observability layer tests: metrics registry semantics (registration
    idempotence, histogram bucket boundaries), byte-exact golden files
    for the Prometheus and Chrome-trace emitters, span nesting, the
    profiler's shadow-call-stack accounting under a fake clock, and the
    profiler wired end to end through the interpreter and the hook
    dispatch path. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Compare [actual] against the golden file; on mismatch, dump the
    actual output next to the golden so the diff is one [diff] away. *)
let check_golden golden actual =
  let expected = read_file (Filename.concat "golden" golden) in
  if not (String.equal expected actual) then begin
    let dump = Filename.temp_file "obs-golden" ("-" ^ golden) in
    let oc = open_out_bin dump in
    output_string oc actual;
    close_out oc;
    Alcotest.failf "golden mismatch for %s (actual dumped to %s)" golden dump
  end

(* --- metrics --------------------------------------------------------- *)

let test_metrics_basics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "requests_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:2.5 c;
  Alcotest.(check (float 1e-9)) "counter accumulates" 3.5 (Obs.Metrics.counter_value c);
  (* same (name, labels) yields the same metric *)
  let c' = Obs.Metrics.counter ~registry:reg "requests_total" in
  Obs.Metrics.inc c';
  Alcotest.(check (float 1e-9)) "registration is idempotent" 4.5 (Obs.Metrics.counter_value c);
  (* distinct labels are distinct metrics *)
  let cl = Obs.Metrics.counter ~registry:reg ~labels:[ ("kind", "a") ] "requests_total" in
  Obs.Metrics.inc cl;
  Alcotest.(check (float 1e-9)) "labels separate metrics" 1.0 (Obs.Metrics.counter_value cl);
  let g = Obs.Metrics.gauge ~registry:reg "depth" in
  Obs.Metrics.set g 7.0;
  Obs.Metrics.set g 3.0;
  Alcotest.(check (float 1e-9)) "gauge keeps last value" 3.0 (Obs.Metrics.gauge_value g);
  (* a name registered as one kind cannot be re-registered as another *)
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "depth: registered with a different metric type")
    (fun () -> ignore (Obs.Metrics.counter ~registry:reg "depth"))

let test_histogram_buckets () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg ~bounds:[| 1.0; 2.0 |] "latency" in
  (* bounds are inclusive upper bounds; above the last bound is +Inf *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0 ];
  Alcotest.(check (array int)) "bucket boundaries are inclusive" [| 2; 2; 1 |]
    h.Obs.Metrics.h_buckets;
  Alcotest.(check int) "count" 5 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 8.0 (Obs.Metrics.histogram_sum h)

(** The registry that both exposition goldens are rendered from:
    exercises label escaping, family grouping, help-less metrics and
    histogram bucket emission. *)
let golden_registry () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg ~help:"Total cases" ~labels:[ ("kind", "gen") ] "cases_total" in
  Obs.Metrics.inc ~by:41.0 c;
  let c2 = Obs.Metrics.counter ~registry:reg ~help:"Total cases" ~labels:[ ("kind", "mut") ] "cases_total" in
  Obs.Metrics.inc ~by:7.0 c2;
  let esc =
    Obs.Metrics.counter ~registry:reg ~labels:[ ("path", "a\\b\"c\nd") ] "escapes_total"
  in
  Obs.Metrics.inc esc;
  let g = Obs.Metrics.gauge ~registry:reg ~help:"Cases per second" "rate" in
  Obs.Metrics.set g 123.5;
  let h =
    Obs.Metrics.histogram ~registry:reg ~help:"Oracle seconds" ~bounds:[| 0.001; 0.01; 0.1 |]
      ~labels:[ ("oracle", "decode") ] "oracle_seconds"
  in
  List.iter (Obs.Metrics.observe h) [ 0.0005; 0.002; 0.02; 0.05; 0.5 ];
  reg

let test_prometheus_golden () =
  check_golden "metrics.prom" (Obs.Metrics.to_prometheus (golden_registry ()))

let test_json_golden () =
  check_golden "metrics.json" (Obs.Metrics.to_json (golden_registry ()))

(* --- spans ----------------------------------------------------------- *)

let test_trace_golden () =
  Obs.Span.reset ();
  (* a parent enclosing two children, Chrome "complete" events: nesting
     is encoded purely by ts/dur containment *)
  Obs.Span.add_complete ~depth:1 ~name:"decode" ~ts_ns:1_000L ~dur_ns:2_500L ();
  Obs.Span.add_complete ~depth:1 ~name:"va\"lidate" ~ts_ns:4_000L ~dur_ns:1_500L ();
  Obs.Span.add_complete ~depth:0 ~name:"pipeline" ~ts_ns:0L ~dur_ns:10_000L ();
  check_golden "trace.json" (Obs.Span.to_chrome_json ());
  Obs.Span.reset ()

let test_span_nesting () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false; Obs.Span.reset ())
    (fun () ->
       let r =
         Obs.Span.with_ "outer" (fun () ->
             Obs.Span.with_ "inner" (fun () -> ());
             (try Obs.Span.with_ "raises" (fun () -> failwith "boom") with Failure _ -> ());
             17)
       in
       Alcotest.(check int) "with_ passes the result through" 17 r;
       match Obs.Span.events () with
       | [ inner; raises; outer ] ->
         Alcotest.(check string) "children emitted before parent" "inner" inner.Obs.Span.ev_name;
         Alcotest.(check string) "span recorded despite exception" "raises" raises.Obs.Span.ev_name;
         Alcotest.(check string) "parent last" "outer" outer.Obs.Span.ev_name;
         Alcotest.(check int) "child depth" 1 inner.Obs.Span.ev_depth;
         Alcotest.(check int) "parent depth" 0 outer.Obs.Span.ev_depth;
         Alcotest.(check bool) "parent starts before child" true
           (Int64.compare outer.Obs.Span.ev_ts_ns inner.Obs.Span.ev_ts_ns <= 0);
         Alcotest.(check bool) "parent contains child" true
           (Int64.compare
              (Int64.add inner.Obs.Span.ev_ts_ns inner.Obs.Span.ev_dur_ns)
              (Int64.add outer.Obs.Span.ev_ts_ns outer.Obs.Span.ev_dur_ns)
            <= 0)
       | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_span_disabled () =
  Obs.Span.reset ();
  Alcotest.(check int) "disabled with_ is transparent" 5 (Obs.Span.with_ "x" (fun () -> 5));
  Alcotest.(check int) "disabled with_ records nothing" 0 (List.length (Obs.Span.events ()))

(* --- profiler -------------------------------------------------------- *)

(** A fake clock advancing 10 ns per reading gives every enter/leave
    pair deterministic timestamps. *)
let fake_clock () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 10L;
    !t

let test_profile_self_incl () =
  let p = Obs.Profile.create ~clock:(fake_clock ()) () in
  (* f0 calls f1; each clock reading advances 10 ns *)
  Obs.Profile.enter p 0;  (* t=10 *)
  Obs.Profile.enter p 1;  (* t=20 *)
  Obs.Profile.leave p;    (* t=30: f1 total 10, self 10 *)
  Obs.Profile.leave p;    (* t=40: f0 total 30, child 10, self 20 *)
  match Obs.Profile.func_rows p with
  | [ a; b ] ->
    Alcotest.(check int) "hottest first" 0 a.Obs.Profile.fr_fid;
    Alcotest.(check int) "calls" 1 a.Obs.Profile.fr_calls;
    Alcotest.(check int64) "caller self = total - child" 20L a.Obs.Profile.fr_self_ns;
    Alcotest.(check int64) "caller inclusive" 30L a.Obs.Profile.fr_incl_ns;
    Alcotest.(check int64) "callee self" 10L b.Obs.Profile.fr_self_ns;
    Alcotest.(check int64) "callee inclusive" 10L b.Obs.Profile.fr_incl_ns;
    Alcotest.(check (list string)) "folded stacks"
      [ "f0 20"; "f0;f1 10" ]
      (Obs.Profile.folded_lines ~name_of:(Printf.sprintf "f%d") p)
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_profile_recursion () =
  let p = Obs.Profile.create ~clock:(fake_clock ()) () in
  (* f0 -> f0 -> f0: inclusive must only count the outermost activation *)
  Obs.Profile.enter p 0;  (* t=10 *)
  Obs.Profile.enter p 0;  (* t=20 *)
  Obs.Profile.enter p 0;  (* t=30 *)
  Obs.Profile.leave p;    (* t=40 *)
  Obs.Profile.leave p;    (* t=50 *)
  Obs.Profile.leave p;    (* t=60 *)
  match Obs.Profile.func_rows p with
  | [ r ] ->
    Alcotest.(check int) "three activations" 3 r.Obs.Profile.fr_calls;
    Alcotest.(check int64) "inclusive counted once, not tripled" 50L r.Obs.Profile.fr_incl_ns;
    (* self: innermost 10, middle 30-10=20... no: each frame's self is
       total minus child time; 10 + 20 + 20 = 50 = wall time of the
       outermost activation *)
    Alcotest.(check int64) "self sums to wall time" 50L r.Obs.Profile.fr_self_ns
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_profile_sites_and_counters () =
  let p = Obs.Profile.create ~clock:(fake_clock ()) () in
  Obs.Profile.bump_run p ~fid:3 ~body_len:5 ~pc:0 ~len:3;
  Obs.Profile.bump_run p ~fid:3 ~body_len:5 ~pc:2 ~len:3;
  (match Obs.Profile.site_counts p 3 with
   | Some counts -> Alcotest.(check (array int)) "per-site counts" [| 1; 1; 2; 1; 1 |] counts
   | None -> Alcotest.fail "no site counts recorded");
  Obs.Profile.count p "x";
  Obs.Profile.count ~by:4 p "x";
  Alcotest.(check (list (pair string int))) "string counters" [ ("x", 5) ]
    (Obs.Profile.counter_list p);
  Obs.Profile.add_time p "hook.load" 100L;
  Obs.Profile.add_time p "hook.load" 50L;
  (match Obs.Profile.timer_list p with
   | [ ("hook.load", 2, 150L) ] -> ()
   | _ -> Alcotest.fail "timer accumulation")

let test_profile_fused_site_attribution () =
  (* fused superinstructions charge every original site exactly once.
     The loop body below fuses (local.get i / const / add / local.set i
     is one XIncrL slot, the back-edge compare another group), yet the
     per-site counts must equal those of an unfused reference — which,
     for site attribution, is simply "each executed original
     instruction counts once per execution". Both tiers must agree with
     it. *)
  let module B = Wasm.Builder in
  let open Wasm.Ast in
  let mk () =
    let bld = B.create () in
    (* for (i = 0; i != 10; i++) acc += i; return acc *)
    let body =
      B.block
        (B.loop
           ([ B.local_get 0; B.i32 10; Compare (IRel (Wasm.Types.S32, Eq)); BrIf 1 ]
            @ [ B.local_get 1; B.local_get 0; B.i32_add; B.local_set 1 ]
            @ [ B.local_get 0; B.i32 1; B.i32_add; B.local_set 0 ]
            @ [ Br 0 ]))
      @ [ B.local_get 1 ]
    in
    let f =
      B.add_func bld ~params:[] ~results:[ Wasm.Types.I32T ]
        ~locals:[ Wasm.Types.I32T; Wasm.Types.I32T ] ~body
    in
    B.export_func bld ~name:"f" f;
    let m = B.build bld in
    Wasm.Validate.validate_module m;
    m
  in
  let profile tiered =
    let inst = Wasm.Interp.instantiate ~imports:[] (mk ()) in
    if tiered then ignore (Wasm.Tier1.compile_all inst);
    let p = Obs.Profile.create () in
    Wasm.Interp.set_profiler inst (Some p);
    Helpers.check_values "result" [ Helpers.i32 45 ]
      (Wasm.Interp.invoke_export inst "f" []);
    (inst, p)
  in
  let inst, p = profile false in
  let fid =
    (* the only defined function *)
    Array.length inst.Wasm.Interp.inst_code - 1
  in
  let counts =
    match Obs.Profile.site_counts p fid with
    | Some c -> c
    | None -> Alcotest.fail "no site counts recorded"
  in
  let xbody = inst.Wasm.Interp.inst_code.(fid).Wasm.Interp.c_xbody in
  Alcotest.(check bool) "the loop body actually fused" true
    (Array.exists (fun x -> x = Wasm.Interp.XFusedTail) xbody);
  (* the reference, per original site: block/loop entry once; the header
     compare (local.get/const/eq/br_if — a fused group) 11 times, ten
     failing passes plus the exit pass; the two fused groups in the loop
     body (acc += i and the i++ increment) 10 times each at every
     original position; the two end instructions never (the br_if exits
     over them); the epilogue once *)
  let expected =
    [| 1; 1; 11; 11; 11; 11; 10; 10; 10; 10; 10; 10; 10; 10; 10; 0; 0; 1 |]
  in
  Alcotest.(check (array int)) "fused sites charge like the unfused reference"
    expected counts;
  Alcotest.(check int) "site counts sum to retired instructions"
    inst.Wasm.Interp.steps (Array.fold_left ( + ) 0 counts);
  (* and the compiled tier produces the identical profile *)
  let inst1, p1 = profile true in
  Alcotest.(check int) "tiers retire the same instruction count"
    inst.Wasm.Interp.steps inst1.Wasm.Interp.steps;
  (match Obs.Profile.site_counts p1 fid with
   | Some c1 -> Alcotest.(check (array int)) "tier-1 site counts match tier 0" counts c1
   | None -> Alcotest.fail "no tier-1 site counts recorded")

(* --- profiler through the interpreter -------------------------------- *)

(** Two-function workload: [run] calls [helper] 50 times. *)
let two_func_module () =
  let open Minic.Mc_ast in
  let open Minic.Mc_ast.Dsl in
  Minic.Mc_compile.compile
    (program
       [ func "helper" ~params:[ ("x", TInt) ] ~result:TInt
           [ Return (Some (Binop (Mul, v "x", v "x"))) ];
         func "run" ~result:TFloat ~locals:[ ("i", TInt); ("acc", TInt) ]
           [ For ("i", i 0, i 50,
                  [ Assign ("acc", Binop (Add, v "acc", Call ("helper", [ v "i" ]))) ]);
             Return (Some (Cast (TFloat, v "acc"))) ] ])

let test_interp_profiler () =
  let m = two_func_module () in
  Wasm.Validate.validate_module m;
  let inst = Wasm.Interp.instantiate ~imports:[] m in
  let p = Obs.Profile.create () in
  Wasm.Interp.set_profiler inst (Some p);
  ignore (Wasm.Interp.invoke_export inst "run" []);
  let rows = Obs.Profile.func_rows p in
  Alcotest.(check int) "both functions profiled" 2 (List.length rows);
  let by_name =
    List.map (fun (r : Obs.Profile.func_row) ->
        (Wasm.Profile_report.func_name inst r.fr_fid, r))
      rows
  in
  let helper = List.assoc "helper" by_name and run = List.assoc "run" by_name in
  Alcotest.(check int) "helper called 50 times" 50 helper.Obs.Profile.fr_calls;
  Alcotest.(check int) "run called once" 1 run.Obs.Profile.fr_calls;
  (* every retired instruction is attributed to exactly one site *)
  let site_total = ref 0 in
  Obs.Profile.iter_sites p (fun _ counts -> Array.iter (fun c -> site_total := !site_total + c) counts);
  Alcotest.(check int) "site counts sum to retired instructions"
    inst.Wasm.Interp.steps !site_total;
  let mix = Wasm.Profile_report.opcode_mix inst p in
  Alcotest.(check bool) "opcode mix includes the multiply" true
    (List.mem_assoc "i32.mul" mix);
  let table = Wasm.Profile_report.func_table inst p in
  Alcotest.(check bool) "table names the exports" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains table "helper" && contains table "run");
  (* detaching stops the accounting *)
  Wasm.Interp.set_profiler inst None;
  let steps_before = !site_total in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  let site_total' = ref 0 in
  Obs.Profile.iter_sites p (fun _ counts -> Array.iter (fun c -> site_total' := !site_total' + c) counts);
  Alcotest.(check int) "no accounting after detach" steps_before !site_total'

let test_hook_dispatch_profiling () =
  let m = two_func_module () in
  Wasm.Validate.validate_module m;
  let groups = Wasabi.Hook.of_list [ Wasabi.Hook.G_binary; Wasabi.Hook.G_call ] in
  let res = Wasabi.Instrument.instrument ~groups m in
  let inst, rt = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  let p = Obs.Profile.create () in
  Wasabi.Runtime.attach_profiler rt (Some p);
  ignore (Wasm.Interp.invoke_export inst "run" []);
  let timers = Obs.Profile.timer_list p in
  let keys = List.map (fun (k, _, _) -> k) timers in
  Alcotest.(check bool) "binary hook dispatches timed" true (List.mem "hook.binary" keys);
  Alcotest.(check bool) "call hook dispatches timed" true (List.mem "hook.call" keys);
  List.iter
    (fun (k, calls, ns) ->
       Alcotest.(check bool) (k ^ " has dispatches") true (calls > 0);
       Alcotest.(check bool) (k ^ " time is non-negative") true (Int64.compare ns 0L >= 0))
    timers

(* --- monomorphization-cache statistics ------------------------------- *)

let test_hook_map_stats () =
  let m = two_func_module () in
  let res = Wasabi.Instrument.instrument m in
  let hm = res.Wasabi.Instrument.hook_map in
  let total = Wasabi.Hook.Map.total_requests hm in
  Alcotest.(check bool) "requests recorded" true (total > 0);
  Alcotest.(check int) "requests = hits + misses" total
    (Wasabi.Hook.Map.hits hm + Wasabi.Hook.Map.misses hm);
  Alcotest.(check int) "misses = generated hooks" (Wasabi.Hook.Map.count hm)
    (Wasabi.Hook.Map.misses hm);
  let reqs = Wasabi.Hook.Map.requests hm in
  Alcotest.(check int) "one row per generated hook" (Wasabi.Hook.Map.count hm)
    (Array.length reqs);
  Array.iter
    (fun (spec, n) ->
       Alcotest.(check bool) (Wasabi.Hook.name spec ^ " requested at least once") true (n >= 1))
    reqs;
  Alcotest.(check int) "request rows sum to the total" total
    (Array.fold_left (fun acc (_, n) -> acc + n) 0 reqs)

(* --- fuzz replay disposition ----------------------------------------- *)

let test_replay_disposition () =
  (* fixed-seed cases replay deterministically; a passing case must come
     back as [Pass], not as a string to be sniffed *)
  (match Fuzz.Harness.replay ~seed:42 ~index:3 Fuzz.Harness.Generated with
   | Fuzz.Harness.Pass _ | Fuzz.Harness.Skip _ -> ()
   | Fuzz.Harness.Fail { oracle; detail } ->
     Alcotest.failf "seed 42 gen:3 regressed: [%s] %s" oracle detail);
  Alcotest.(check string) "fail rendering"
    "FAIL [totality-decode]: boom"
    (Fuzz.Harness.disposition_to_string
       (Fuzz.Harness.Fail { oracle = "totality-decode"; detail = "boom" }));
  Alcotest.(check string) "plain pass rendering" "pass"
    (Fuzz.Harness.disposition_to_string (Fuzz.Harness.Pass ""))

let test_fuzz_metrics () =
  let reg = Obs.Metrics.create () in
  let stats, _ =
    Fuzz.Harness.run ~metrics:reg ~seed:7 ~gen_count:5 ~mut_count:5 ()
  in
  Alcotest.(check int) "gen cases" 5 stats.Fuzz.Harness.gen_cases;
  let gen =
    Obs.Metrics.counter ~registry:reg ~labels:[ ("kind", "gen") ] "fuzz_cases_total"
  in
  Alcotest.(check (float 1e-9)) "case counter matches stats" 5.0
    (Obs.Metrics.counter_value gen);
  (* per-oracle histograms exist and observed every generated case *)
  let h =
    Obs.Metrics.histogram ~registry:reg ~labels:[ ("oracle", "totality-validate") ]
      "fuzz_oracle_seconds"
  in
  Alcotest.(check bool) "oracle timings recorded" true
    (Obs.Metrics.histogram_count h >= 5)

let suite =
  [ Alcotest.test_case "metrics: counters, gauges, registration" `Quick test_metrics_basics;
    Alcotest.test_case "metrics: histogram bucket boundaries" `Quick test_histogram_buckets;
    Alcotest.test_case "metrics: Prometheus exposition golden" `Quick test_prometheus_golden;
    Alcotest.test_case "metrics: JSON exposition golden" `Quick test_json_golden;
    Alcotest.test_case "span: Chrome trace JSON golden" `Quick test_trace_golden;
    Alcotest.test_case "span: nesting and exception safety" `Quick test_span_nesting;
    Alcotest.test_case "span: disabled tracing is transparent" `Quick test_span_disabled;
    Alcotest.test_case "profile: self/inclusive with fake clock" `Quick test_profile_self_incl;
    Alcotest.test_case "profile: recursion-safe inclusive time" `Quick test_profile_recursion;
    Alcotest.test_case "profile: site counts and counters" `Quick test_profile_sites_and_counters;
    Alcotest.test_case "profile: fused site attribution (t0 = reference = t1)" `Quick
      test_profile_fused_site_attribution;
    Alcotest.test_case "interp: end-to-end profiling" `Quick test_interp_profiler;
    Alcotest.test_case "runtime: hook dispatch timing" `Quick test_hook_dispatch_profiling;
    Alcotest.test_case "hooks: monomorphization-cache stats" `Quick test_hook_map_stats;
    Alcotest.test_case "fuzz: structured replay disposition" `Quick test_replay_disposition;
    Alcotest.test_case "fuzz: campaign metrics" `Quick test_fuzz_metrics ]
