(** Tests for the static-analysis subsystem ([lib/static]): CFG shape,
    the worklist dataflow solver, the constant stack-value analysis, the
    static call graph with indirect-call resolution, selective
    instrumentation, and the instrumentation-soundness lint — including
    its agreement with the {e dynamic} call-graph analysis over the whole
    benchmark corpus. *)

open Wasm
open Wasm.Ast
module B = Builder
module W = Wasabi
module Cfg = Static.Cfg
module Callgraph = Static.Callgraph

let cfg_of ~params ~results ~locals body =
  let m = Helpers.single_func ~params ~results ~locals body in
  Validate.validate_module m;
  (Cfg.build (Validate.Module_ctx.create m) (List.hd m.funcs), m)

(* ------------------------------------------------------------------ *)
(* CFG construction                                                    *)
(* ------------------------------------------------------------------ *)

let test_cfg_straightline () =
  let cfg, _ = cfg_of ~params:[] ~results:[] ~locals:[] [ B.i32 1; Drop ] in
  Alcotest.(check int) "two blocks (body + exit)" 2 (Array.length cfg.Cfg.blocks);
  (match Cfg.successors cfg cfg.Cfg.entry with
   | [ { Cfg.dst; kind = Cfg.Fallthrough; carried = None } ] ->
     Alcotest.(check int) "falls through to the exit block" cfg.Cfg.exit_ dst
   | _ -> Alcotest.fail "expected a single fallthrough edge");
  Alcotest.(check int) "no unreachable blocks" 0 (List.length (Cfg.unreachable_blocks cfg))

let test_cfg_if_else () =
  (* 0:const 1:if 2:const 3:drop 4:else 5:const 6:drop 7:end *)
  let body = (B.i32 1 :: B.if_ ~then_:[ B.i32 2; Drop ] ~else_:[ B.i32 3; Drop ] ()) in
  let cfg, _ = cfg_of ~params:[] ~results:[] ~locals:[] body in
  Alcotest.(check int) "four blocks" 4 (Array.length cfg.Cfg.blocks);
  (match Cfg.successors cfg 0 with
   | [ { Cfg.kind = Cfg.IfTrue; dst = t; _ }; { Cfg.kind = Cfg.IfFalse; dst = f; _ } ] ->
     Alcotest.(check int) "then-arm starts after the if" 2 cfg.Cfg.blocks.(t).Cfg.first;
     Alcotest.(check int) "else-arm starts after the else" 5 cfg.Cfg.blocks.(f).Cfg.first
   | _ -> Alcotest.fail "expected IfTrue/IfFalse out of the condition block");
  (* falling out of the then-arm jumps past the matching end *)
  let then_block = cfg.Cfg.block_at.(2) in
  (match Cfg.successors cfg then_block with
   | [ { Cfg.kind = Cfg.Jump; dst; _ } ] ->
     Alcotest.(check int) "then-arm jumps to the exit" cfg.Cfg.exit_ dst
   | _ -> Alcotest.fail "expected a jump over the else-arm")

let test_cfg_loop_backedge () =
  (* 0:block 1:loop 2:const 3:br_if(loop) 4:end 5:end *)
  let body = [ Block None; Loop None; B.i32 1; BrIf 0; End; End ] in
  let cfg, _ = cfg_of ~params:[] ~results:[] ~locals:[] body in
  let header = cfg.Cfg.block_at.(2) in
  (match Cfg.successors cfg header with
   | [ { Cfg.kind = Cfg.Taken; dst; carried }; { Cfg.kind = Cfg.NotTaken; dst = nt; _ } ] ->
     Alcotest.(check int) "back edge targets the loop header" header dst;
     Alcotest.(check (option int)) "loop labels carry no values" (Some 0) carried;
     Alcotest.(check int) "fall-through continues after the br_if" 4
       cfg.Cfg.blocks.(nt).Cfg.first
   | _ -> Alcotest.fail "expected Taken/NotTaken out of the loop body");
  Alcotest.(check (list int)) "header is its own predecessor"
    [ cfg.Cfg.entry; header ]
    (Cfg.predecessors cfg header)

let test_cfg_dead_code () =
  (* 0:return 1:const 2:drop — pc 1.. is statically dead *)
  let cfg, _ = cfg_of ~params:[] ~results:[] ~locals:[] [ Return; B.i32 1; Drop ] in
  (match Cfg.unreachable_blocks cfg with
   | [ b ] -> Alcotest.(check int) "the dead block starts after the return" 1 b.Cfg.first
   | bs -> Alcotest.failf "expected exactly one unreachable block, got %d" (List.length bs));
  Alcotest.(check bool) "validator dead flag recorded" true cfg.Cfg.dead.(1);
  (match Cfg.successors cfg cfg.Cfg.entry with
   | [ { Cfg.kind = Cfg.Jump; dst; carried } ] ->
     Alcotest.(check int) "return jumps to the exit" cfg.Cfg.exit_ dst;
     Alcotest.(check (option int)) "return carries the result arity" (Some 0) carried
   | _ -> Alcotest.fail "expected return to be a jump to the exit")

(* ------------------------------------------------------------------ *)
(* Dataflow solver                                                     *)
(* ------------------------------------------------------------------ *)

module Reach = Static.Dataflow.Make (struct
  type t = bool
  let bottom = false
  let join = ( || )
  let equal = Bool.equal
end)

let test_dataflow_directions () =
  (* return; const; drop — the middle block is forward-unreachable but
     still reaches the exit backwards *)
  let cfg, _ = cfg_of ~params:[] ~results:[] ~locals:[] [ Return; B.i32 1; Drop ] in
  let transfer _ _ fact = fact in
  let fwd = Reach.solve cfg ~init:true ~transfer in
  let bwd = Reach.solve ~direction:Static.Dataflow.Backward cfg ~init:true ~transfer in
  let dead_block = cfg.Cfg.block_at.(1) in
  Alcotest.(check bool) "entry is forward-reachable" true fwd.Reach.before.(cfg.Cfg.entry);
  Alcotest.(check bool) "dead block stays at bottom forward" false
    fwd.Reach.before.(dead_block);
  Alcotest.(check bool) "exit is forward-reachable" true fwd.Reach.before.(cfg.Cfg.exit_);
  Alcotest.(check bool) "dead block reaches the exit backward" true
    bwd.Reach.before.(dead_block);
  (* the fixpoint must agree with plain graph reachability everywhere *)
  let seen = Cfg.reachable_blocks cfg in
  Array.iteri
    (fun id b ->
       Alcotest.(check bool)
         (Printf.sprintf "solver agrees with reachable_blocks at block %d" id)
         seen.(id) b)
    fwd.Reach.before

(* ------------------------------------------------------------------ *)
(* Constant stack-value analysis                                       *)
(* ------------------------------------------------------------------ *)

let test_stackval_folds_constants () =
  let body = [ B.i32 3; B.i32 4; B.i32_add; Drop ] in
  let m = Helpers.single_func ~params:[] ~results:[] ~locals:[] body in
  Validate.validate_module m;
  let ctx = Validate.Module_ctx.create m in
  let cfg = Cfg.build ctx (List.hd m.funcs) in
  let sv = Static.Stackval.analyze ctx cfg in
  Alcotest.(check (option Helpers.value)) "top before the add"
    (Some (Helpers.i32 4)) (Static.Stackval.top_of_stack sv 2);
  Alcotest.(check (option Helpers.value)) "3 + 4 folded to 7"
    (Some (Helpers.i32 7)) (Static.Stackval.top_of_stack sv 3)

let test_stackval_tightens_brif () =
  (* 0:block 1:const-1 2:br_if 3:const-5 4:drop 5:end — the branch is
     always taken, so pcs 3..4 are statically dead after tightening *)
  let body = [ Block None; B.i32 1; BrIf 0; B.i32 5; Drop; End ] in
  let m = Helpers.single_func ~params:[] ~results:[] ~locals:[] body in
  Validate.validate_module m;
  let ctx = Validate.Module_ctx.create m in
  let cfg = Cfg.build ctx (List.hd m.funcs) in
  Alcotest.(check int) "nothing unreachable before tightening" 0
    (List.length (Cfg.unreachable_blocks cfg));
  let tight = Static.Stackval.tighten (Static.Stackval.analyze ctx cfg) cfg in
  (match Cfg.unreachable_blocks tight with
   | [ b ] -> Alcotest.(check int) "not-taken arm is dead" 3 b.Cfg.first
   | bs -> Alcotest.failf "expected one dead block after tightening, got %d" (List.length bs))

(* ------------------------------------------------------------------ *)
(* Static call graph                                                   *)
(* ------------------------------------------------------------------ *)

let test_callgraph_direct_and_dead () =
  let b = B.create () in
  let leaf = B.add_func b ~params:[] ~results:[] ~locals:[] ~body:[ Nop ] in
  let main = B.add_func b ~params:[] ~results:[] ~locals:[] ~body:[ Call leaf ] in
  let dead = B.add_func b ~params:[] ~results:[] ~locals:[] ~body:[ Call leaf ] in
  B.export_func b ~name:"main" main;
  let m = B.build b in
  Validate.validate_module m;
  let cg = Callgraph.build m in
  Alcotest.(check bool) "main -> leaf" true (Callgraph.has_edge cg main leaf);
  Alcotest.(check bool) "dead -> leaf recorded too" true (Callgraph.has_edge cg dead leaf);
  Alcotest.(check (list int)) "roots are the exports" [ main ] (Callgraph.roots cg);
  Alcotest.(check bool) "leaf reachable" true (Callgraph.is_reachable cg leaf);
  Alcotest.(check (list int)) "uncalled unexported function is dead" [ dead ]
    (Callgraph.dead_functions cg)

let indirect_module ~export_table =
  let b = B.create () in
  let g0 = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 10 ] in
  let g1 = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 20 ] in
  let ty = B.add_type b { Types.params = []; results = [ Types.I32T ] } in
  let caller =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 1; CallIndirect ty ]
  in
  B.add_table b ~min_size:2 ~max_size:None;
  B.add_elem b ~offset:0 ~funcs:[ g0; g1 ];
  B.export_func b ~name:"main" caller;
  if export_table then B.export_table b ~name:"table";
  let m = B.build b in
  Validate.validate_module m;
  (m, g0, g1, caller)

let test_callgraph_indirect_exact () =
  let m, g0, g1, caller = indirect_module ~export_table:false in
  let cg = Callgraph.build m in
  Alcotest.(check bool) "constant index resolves to slot 1" true
    (Callgraph.has_edge cg caller g1);
  Alcotest.(check bool) "slot 0 is not a target" false (Callgraph.has_edge cg caller g0);
  Alcotest.(check (list int)) "unselected slot is dead" [ g0 ] (Callgraph.dead_functions cg);
  (* without the constant analysis, any type-compatible elem entry remains *)
  let coarse = Callgraph.build ~tighten:false m in
  Alcotest.(check bool) "coarse: slot 0 possible" true (Callgraph.has_edge coarse caller g0);
  Alcotest.(check bool) "coarse: slot 1 possible" true (Callgraph.has_edge coarse caller g1);
  Alcotest.(check (list int)) "coarse: nothing dead" [] (Callgraph.dead_functions coarse)

let test_callgraph_escaping_table () =
  let m, _g0, _g1, _caller = indirect_module ~export_table:true in
  let cg = Callgraph.build m in
  Alcotest.(check bool) "exported table escapes" true (Callgraph.table_escapes cg);
  (* the host can re-point slots, so nothing behind the table may be pruned *)
  Alcotest.(check (list int)) "nothing is dead" [] (Callgraph.dead_functions cg)

(* ------------------------------------------------------------------ *)
(* Static vs dynamic call graph over the corpus                        *)
(* ------------------------------------------------------------------ *)

let corpus = lazy (Workloads.Corpus.make ~n:4 ())

let test_static_superset_of_dynamic () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let cg = Callgraph.build e.module_ in
       let dyn = Analyses.Call_graph.create () in
       let res = W.Instrument.instrument ~groups:Analyses.Call_graph.groups e.module_ in
       let inst, _ = W.Runtime.instantiate res (Analyses.Call_graph.analysis dyn) in
       ignore (Interp.invoke_export inst "run" []);
       List.iter
         (fun (caller, callee) ->
            if not (Callgraph.has_edge cg caller callee) then
              Alcotest.failf "%s: dynamic edge %d -> %d missing from the static graph" e.name
                caller callee;
            if not (Callgraph.is_reachable cg callee) then
              Alcotest.failf "%s: dynamically-called f%d is statically unreachable" e.name
                callee)
         (Analyses.Call_graph.edges dyn))
    (Lazy.force corpus)

let test_selective_instrumentation_realworld () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let full = W.Instrument.instrument e.module_ in
       let sel = W.Instrument.instrument ~prune_unreachable:true e.module_ in
       let full_size = String.length (Encode.encode full.W.Instrument.instrumented) in
       let sel_size = String.length (Encode.encode sel.W.Instrument.instrumented) in
       Alcotest.(check bool)
         (e.name ^ ": pruning leaves dead helpers uninstrumented") true
         (List.length sel.W.Instrument.metadata.W.Metadata.pruned_funcs > 0);
       Alcotest.(check bool) (e.name ^ ": selective binary is smaller") true
         (sel_size < full_size);
       (match Lint.errors (Lint.check sel) with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "%s: lint rejects the pruned module: %s" e.name (Lint.to_string f));
       (* identical behaviour, differential-oracle style *)
       let reference = Workloads.Corpus.run_reference e in
       let inst, _ = W.Runtime.instantiate sel W.Analysis.default in
       (match Interp.invoke_export inst "run" [] with
        | [ Value.F64 x ] ->
          Alcotest.(check (float 1e-9)) (e.name ^ ": checksum unchanged") reference x
        | vs -> Alcotest.failf "%s: run returned %d values" e.name (List.length vs)))
    (Workloads.Corpus.realworld (Lazy.force corpus))

let test_lint_clean_on_corpus () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = W.Instrument.instrument e.module_ in
       match Lint.errors (Lint.check res) with
       | [] -> ()
       | f :: _ -> Alcotest.failf "%s: %s" e.name (Lint.to_string f))
    (Lazy.force corpus)

let test_lint_oracle_on_generated_modules () =
  for index = 0 to 49 do
    let info = Fuzz.Harness.gen_case ~seed:Fuzz.Harness.default_seed ~index in
    match Fuzz.Oracle.lint_instrumented info.Fuzz.Gen.module_ with
    | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
    | Fuzz.Oracle.Violation { kind; detail } ->
      Alcotest.failf "generated case %d: [%s] %s" index kind detail
  done

(* ------------------------------------------------------------------ *)
(* The lint flags deliberately broken instrumentation                  *)
(* ------------------------------------------------------------------ *)

let codes findings = List.map (fun (f : Lint.finding) -> f.Lint.code) (Lint.errors findings)

let has_code c findings = List.mem c (codes findings)

let sample_result () =
  let m =
    Helpers.single_func ~params:[] ~results:[] ~locals:[]
      [ B.i32 1; Drop; B.i32 2; Drop ]
  in
  Validate.validate_module m;
  W.Instrument.instrument m

let test_lint_flags_dropped_hook_import () =
  let res = sample_result () in
  let inst = res.W.Instrument.instrumented in
  let broken = { inst with imports = List.tl inst.imports } in
  let findings = Lint.check { res with W.Instrument.instrumented = broken } in
  Alcotest.(check bool) "hook-import error reported" true
    (has_code "hook-import" findings || has_code "import" findings)

let test_lint_flags_lost_instruction () =
  let res = sample_result () in
  let inst = res.W.Instrument.instrumented in
  let f = List.hd inst.funcs in
  (* delete the image of the last original instruction *)
  let n = List.length f.body in
  let body = List.filteri (fun i _ -> i < n - 1) f.body in
  let broken = { inst with funcs = [ { f with body } ] } in
  let findings = Lint.check { res with W.Instrument.instrumented = broken } in
  Alcotest.(check bool) "lost original instruction reported" true
    (has_code "order" findings || has_code "invalid" findings
     || has_code "stack-shape" findings)

let test_lint_flags_rogue_insertion () =
  let res = sample_result () in
  let inst = res.W.Instrument.instrumented in
  let f = List.hd inst.funcs in
  (* a nop is harmless at runtime but outside the insertion vocabulary *)
  let broken = { inst with funcs = [ { f with body = Nop :: f.body } ] } in
  let findings = Lint.check { res with W.Instrument.instrumented = broken } in
  Alcotest.(check bool) "vocabulary violation reported" true (has_code "insertion" findings)

let test_lint_flags_unbalanced_insertion () =
  let res = sample_result () in
  let inst = res.W.Instrument.instrumented in
  let f = List.hd inst.funcs in
  (* an in-vocabulary constant that nothing consumes: not stack-neutral *)
  let broken = { inst with funcs = [ { f with body = f.body @ [ B.i32 9 ] } ] } in
  let findings = Lint.check { res with W.Instrument.instrumented = broken } in
  Alcotest.(check bool) "stack-shape violation reported" true
    (has_code "stack-shape" findings || has_code "invalid" findings)

let test_lint_flags_changed_export () =
  let res = sample_result () in
  let inst = res.W.Instrument.instrumented in
  let exports =
    List.map (fun (e : export) -> { e with name = e.name ^ "_renamed" }) inst.exports
  in
  let findings = Lint.check { res with W.Instrument.instrumented = { inst with exports } } in
  Alcotest.(check bool) "export change reported" true (has_code "export" findings)

(* ------------------------------------------------------------------ *)
(* Dead-branch diagnostics from the instrumenter                       *)
(* ------------------------------------------------------------------ *)

let test_dead_skip_diagnostics () =
  (* br_if / return / br_table in code the validator knows is dead: the
     instrumenter cannot compute their stack shapes and must skip their
     hooks, recording each location instead of silently falling through *)
  let body = [ B.i32 7; Block None; Br 0; BrIf 0; Return; BrTable ([ 0 ], 0); End ] in
  let m = Helpers.single_func ~params:[] ~results:[ Types.I32T ] ~locals:[] body in
  Validate.validate_module m;
  let res = W.Instrument.instrument m in
  let md = res.W.Instrument.metadata in
  Alcotest.(check int) "three skipped sites recorded" 3
    (List.length md.W.Metadata.dead_skipped);
  Alcotest.(check (list int)) "at the br_if, return and br_table" [ 3; 4; 5 ]
    (List.map (fun (l : W.Location.t) -> l.W.Location.instr) md.W.Metadata.dead_skipped);
  Validate.validate_module res.W.Instrument.instrumented;
  let findings = Lint.check res in
  Alcotest.(check (list string)) "no lint errors" [] (codes findings);
  Alcotest.(check int) "surfaced as info findings" 3
    (List.length
       (List.filter (fun (f : Lint.finding) -> f.Lint.code = "dead-skip") findings));
  (* the instrumented function still runs *)
  let inst, _ = W.Runtime.instantiate res W.Analysis.default in
  Helpers.check_values "dead-code function still runs" [ Helpers.i32 7 ]
    (Interp.invoke_export inst "f" [])

let suite =
  [
    Alcotest.test_case "cfg: straight-line" `Quick test_cfg_straightline;
    Alcotest.test_case "cfg: if/else diamond" `Quick test_cfg_if_else;
    Alcotest.test_case "cfg: loop back edge" `Quick test_cfg_loop_backedge;
    Alcotest.test_case "cfg: dead code after return" `Quick test_cfg_dead_code;
    Alcotest.test_case "dataflow: forward vs backward" `Quick test_dataflow_directions;
    Alcotest.test_case "stackval: constant folding" `Quick test_stackval_folds_constants;
    Alcotest.test_case "stackval: br_if tightening" `Quick test_stackval_tightens_brif;
    Alcotest.test_case "callgraph: direct edges and dead functions" `Quick
      test_callgraph_direct_and_dead;
    Alcotest.test_case "callgraph: exact indirect resolution" `Quick
      test_callgraph_indirect_exact;
    Alcotest.test_case "callgraph: escaping table" `Quick test_callgraph_escaping_table;
    Alcotest.test_case "corpus: static graph covers dynamic edges" `Slow
      test_static_superset_of_dynamic;
    Alcotest.test_case "corpus: selective instrumentation" `Slow
      test_selective_instrumentation_realworld;
    Alcotest.test_case "corpus: lint clean everywhere" `Slow test_lint_clean_on_corpus;
    Alcotest.test_case "fuzz: lint oracle on generated modules" `Slow
      test_lint_oracle_on_generated_modules;
    Alcotest.test_case "lint: dropped hook import" `Quick test_lint_flags_dropped_hook_import;
    Alcotest.test_case "lint: lost original instruction" `Quick
      test_lint_flags_lost_instruction;
    Alcotest.test_case "lint: rogue insertion" `Quick test_lint_flags_rogue_insertion;
    Alcotest.test_case "lint: unbalanced insertion" `Quick test_lint_flags_unbalanced_insertion;
    Alcotest.test_case "lint: changed export" `Quick test_lint_flags_changed_export;
    Alcotest.test_case "instrument: dead-branch skip diagnostics" `Quick
      test_dead_skip_diagnostics;
  ]
