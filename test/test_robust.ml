(** Fault containment: the resource governor (deadline / memory-growth /
    host-call budgets and their structured exit codes), instance
    snapshot/restore idempotence over the fuzz corpus on both tiers,
    tier-1 deopt after a contained fault, and the restore-equivalence
    fault-injection campaign (the acceptance gate: 2000 fixed-seed
    cases, zero violations). *)

open Wasm

let case name fn = Alcotest.test_case name `Quick fn

let classify_exn e =
  match Error.classify e with
  | Some t -> t
  | None -> Alcotest.failf "unclassified exception: %s" (Printexc.to_string e)

let raised f =
  match f () with
  | _ -> Alcotest.fail "expected an exception"
  | exception e -> e

let instantiate_wat ?fuel ?(imports = []) src =
  let m = Wat_parse.parse src in
  Validate.validate_module m;
  Interp.instantiate ?fuel ~imports m

(* ------------------------------------------------------------------ *)
(* Taxonomy: codes and exit codes of the new failure modes             *)
(* ------------------------------------------------------------------ *)

let test_error_codes () =
  let fuel = classify_exn (Interp.Exhaustion "out of fuel") in
  Alcotest.(check string) "fuel code" "resource-exhausted" fuel.Error.code;
  Alcotest.(check int) "fuel exit" 7 (Error.exit_code fuel);
  let depth = classify_exn (Interp.Exhaustion "call stack exhausted") in
  Alcotest.(check string) "call-depth code" "resource-exhausted" depth.Error.code;
  Alcotest.(check int) "call-depth exit" 7 (Error.exit_code depth);
  Alcotest.(check bool) "messages still distinguish the two" true
    (not (String.equal fuel.Error.message depth.Error.message));
  let gov code = classify_exn (raised (fun () -> Error.governor_error ~code "boom")) in
  List.iter
    (fun (code, exit) ->
       let t = gov code in
       Alcotest.(check string) (code ^ " code") code t.Error.code;
       Alcotest.(check int) (code ^ " exit") exit (Error.exit_code t))
    [ ("deadline-exceeded", 10); ("memory-growth-limit", 11); ("host-call-budget", 12) ];
  let inj = classify_exn (Value.Trap "injected host fault") in
  Alcotest.(check string) "injected fault code" "injected-fault" inj.Error.code;
  Alcotest.(check int) "injected fault is a trap" 6 (Error.exit_code inj)

(* ------------------------------------------------------------------ *)
(* Governor: deadline                                                  *)
(* ------------------------------------------------------------------ *)

let loop_src =
  {|(module
      (func (export "run")
        (local i32)
        (block
          (loop
            (local.set 0 (i32.add (local.get 0) (i32.const 1)))
            (br_if 1 (i32.ge_s (local.get 0) (i32.const 1000000)))
            (br 0)))))|}

let test_deadline () =
  let inst = instantiate_wat ~fuel:50_000_000 loop_src in
  let gov = Governor.create ~deadline_ms:60_000.0 () in
  Interp.set_governor inst (Some gov);
  (* a generous deadline does not interfere *)
  Governor.arm gov;
  ignore (Interp.invoke_export inst "run" []);
  (* a forced expiry kills the run at the next batch boundary *)
  Governor.arm gov;
  Governor.expire gov;
  (match raised (fun () -> Interp.invoke_export inst "run" []) with
   | Error.Governor_limit t ->
     Alcotest.(check string) "expired code" "deadline-exceeded" t.Error.code
   | e -> Alcotest.failf "expected Governor_limit, got %s" (Printexc.to_string e));
  (* a real zero deadline is hit by the clock inside one long run *)
  inst.Interp.fuel <- 50_000_000;
  let zero = Governor.create ~deadline_ms:0.0 () in
  Interp.set_governor inst (Some zero);
  Governor.arm zero;
  (match raised (fun () -> Interp.invoke_export inst "run" []) with
   | Error.Governor_limit t ->
     Alcotest.(check string) "clock code" "deadline-exceeded" t.Error.code
   | e -> Alcotest.failf "expected Governor_limit, got %s" (Printexc.to_string e));
  (* re-arming recovers the instance for governed use *)
  Interp.set_governor inst (Some gov);
  Governor.arm gov;
  inst.Interp.fuel <- 50_000_000;
  inst.Interp.inst_stack.Interp.size <- 0;
  inst.Interp.call_depth <- 0;
  ignore (Interp.invoke_export inst "run" [])

(* ------------------------------------------------------------------ *)
(* Governor: host-call budget                                          *)
(* ------------------------------------------------------------------ *)

let tick_src =
  {|(module
      (import "env" "tick" (func $tick))
      (func (export "run") (call $tick) (call $tick) (call $tick)))|}

let tick_import calls =
  ( "env",
    "tick",
    Interp.host_func ~name:"tick" ~params:[] ~results:[]
      (fun _ -> incr calls; []) )

let test_host_call_budget () =
  let calls = ref 0 in
  let inst = instantiate_wat ~imports:[ tick_import calls ] tick_src in
  (* budget of 3 covers the run exactly *)
  let enough = Governor.create ~host_call_budget:3 () in
  Interp.set_governor inst (Some enough);
  Governor.arm enough;
  ignore (Interp.invoke_export inst "run" []);
  Alcotest.(check int) "all three calls made" 3 !calls;
  (* budget of 2: the third dispatch is rejected before the host runs *)
  calls := 0;
  let tight = Governor.create ~host_call_budget:2 () in
  Interp.set_governor inst (Some tight);
  Governor.arm tight;
  (match raised (fun () -> Interp.invoke_export inst "run" []) with
   | Error.Governor_limit t ->
     Alcotest.(check string) "budget code" "host-call-budget" t.Error.code
   | e -> Alcotest.failf "expected Governor_limit, got %s" (Printexc.to_string e));
  Alcotest.(check int) "host ran only inside the budget" 2 !calls;
  (* arm resets the budget *)
  calls := 0;
  inst.Interp.inst_stack.Interp.size <- 0;
  inst.Interp.call_depth <- 0;
  Interp.set_governor inst (Some enough);
  Governor.arm enough;
  ignore (Interp.invoke_export inst "run" []);
  Alcotest.(check int) "re-armed budget covers a fresh run" 3 !calls

(* ------------------------------------------------------------------ *)
(* Governor: memory-growth cap, composing with the declared maximum    *)
(* ------------------------------------------------------------------ *)

let test_grow_cap () =
  let mem = Memory.create ~min_pages:1 ~max_pages:(Some 4) in
  let gov = Governor.create ~max_grow_pages:2 () in
  Governor.arm gov;
  Alcotest.(check int) "first governed grow" 1 (Governor.governed_grow gov mem 1);
  Alcotest.(check int) "second governed grow" 2 (Governor.governed_grow gov mem 1);
  (* per-run budget exhausted: structured violation, no partial commit *)
  (match raised (fun () -> Governor.governed_grow gov mem 1) with
   | Error.Governor_limit t ->
     Alcotest.(check string) "cap code" "memory-growth-limit" t.Error.code
   | e -> Alcotest.failf "expected Governor_limit, got %s" (Printexc.to_string e));
  Alcotest.(check int) "size unchanged after rejection" 3 (Memory.size_pages mem);
  (* the declared maximum still applies underneath the budget, with wasm
     semantics (-1), and a rejected grow does not debit the budget: the
     100-page attempt fits the 100-page budget, so a debit would leave
     nothing for the final 1-page grow *)
  let roomy = Governor.create ~max_grow_pages:100 () in
  Governor.arm roomy;
  Memory.store_i32 mem 0l 0 0x1234l;
  Alcotest.(check int) "declared max rejects" (-1) (Governor.governed_grow roomy mem 100);
  Alcotest.(check int) "no partial commit" 3 (Memory.size_pages mem);
  Alcotest.(check int32) "contents untouched" 0x1234l (Memory.load_i32 mem 0l 0);
  Alcotest.(check int) "budget not debited by the failed grow" 3
    (Governor.governed_grow roomy mem 1);
  Alcotest.(check int) "final size" 4 (Memory.size_pages mem)

(* ------------------------------------------------------------------ *)
(* Snapshot/restore: idempotence over the fuzz corpus, both tiers      *)
(* ------------------------------------------------------------------ *)

let outcome_of inst =
  match Interp.invoke_export inst "run" [] with
  | vs -> Ok (List.map Value.to_string vs)
  | exception e ->
    (match Error.classify e with
     | Some t -> Error t.Error.code
     | None -> raise e)

let test_restore_idempotence () =
  let cases = ref 0 in
  for index = 0 to 149 do
    let info = Fuzz.Harness.gen_case ~seed:21 ~index in
    let fuel = Fuzz.Oracle.base_fuel in
    match Interp.instantiate ~fuel ~imports:[] info.Fuzz.Gen.module_ with
    | exception e when Error.classify e <> None -> ()
    | inst ->
      incr cases;
      if index land 1 = 0 then Tier1.enable ~threshold:1 inst;
      let snap = Snapshot.capture inst in
      let pristine = Snapshot.state_digest inst in
      let fuel0 = inst.Interp.fuel in
      (* first run: success, trap or exhaustion — all must rewind *)
      let out1 = outcome_of inst in
      let after1 = Snapshot.state_digest inst in
      Snapshot.restore snap inst;
      Alcotest.(check string)
        (Printf.sprintf "case %d: restore reaches the pristine digest" index)
        pristine (Snapshot.state_digest inst);
      Alcotest.(check int)
        (Printf.sprintf "case %d: fuel rewound" index)
        fuel0 inst.Interp.fuel;
      Alcotest.(check int)
        (Printf.sprintf "case %d: stack pointer rewound" index)
        0 inst.Interp.inst_stack.Interp.size;
      (* re-running from the restored state reproduces the first run *)
      let out2 = outcome_of inst in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: replayed outcome identical" index)
        true (out1 = out2);
      Alcotest.(check string)
        (Printf.sprintf "case %d: replayed final state identical" index)
        after1 (Snapshot.state_digest inst);
      (* and restore is idempotent from any of those states *)
      Snapshot.restore snap inst;
      Alcotest.(check string)
        (Printf.sprintf "case %d: second restore idempotent" index)
        pristine (Snapshot.state_digest inst)
  done;
  Alcotest.(check bool) "corpus was not trivially skipped" true (!cases > 100)

let test_restore_metric () =
  let before = Obs.Metrics.histogram_count (Obs.Metrics.histogram "wasabi_restore_seconds") in
  let inst = instantiate_wat {|(module (memory 1) (func (export "run")))|} in
  let snap = Snapshot.capture inst in
  Snapshot.restore snap inst;
  let after = Obs.Metrics.histogram_count (Obs.Metrics.histogram "wasabi_restore_seconds") in
  Alcotest.(check bool) "restore observed wasabi_restore_seconds" true (after > before)

(* ------------------------------------------------------------------ *)
(* Tier-1 deopt: a contained fault sends the body back to tier 0       *)
(* ------------------------------------------------------------------ *)

let run_code_of inst =
  match Interp.export_func inst "run" with
  | Interp.Wasm_func (ci, owner) -> owner.Interp.inst_code.(ci)
  | Interp.Host_func _ -> Alcotest.fail "run is not a wasm function"

let test_deopt_on_injected_fault () =
  let calls = ref 0 in
  let faulty =
    ( "env",
      "tick",
      Interp.host_func ~name:"tick" ~params:[] ~results:[]
        (fun _ ->
           incr calls;
           if !calls >= 2 then raise (Value.Trap "injected host fault");
           []) )
  in
  let inst =
    instantiate_wat ~imports:[ faulty ]
      {|(module
          (import "env" "tick" (func $tick))
          (func (export "run") (call $tick)))|}
  in
  Tier1.enable ~threshold:1 inst;
  Interp.set_deopt_on_fault inst true;
  let deopts = Obs.Metrics.counter "wasabi_deopt_total" in
  let before = Obs.Metrics.counter_value deopts in
  ignore (Interp.invoke_export inst "run" []);
  let code = run_code_of inst in
  (match code.Interp.c_tier with
   | Interp.T_compiled _ -> ()
   | _ -> Alcotest.fail "body was not tiered up before the fault");
  (match raised (fun () -> Interp.invoke_export inst "run" []) with
   | Value.Trap "injected host fault" -> ()
   | e -> Alcotest.failf "expected the injected trap, got %s" (Printexc.to_string e));
  (match code.Interp.c_tier with
   | Interp.T_unsupported -> ()
   | _ -> Alcotest.fail "faulted compiled body did not deopt");
  Alcotest.(check bool) "wasabi_deopt_total incremented" true
    (Obs.Metrics.counter_value deopts > before);
  (* the deopt is permanent: the body stays on tier 0 on later runs *)
  calls := 0;
  inst.Interp.inst_stack.Interp.size <- 0;
  inst.Interp.call_depth <- 0;
  ignore (Interp.invoke_export inst "run" []);
  (match code.Interp.c_tier with
   | Interp.T_unsupported -> ()
   | _ -> Alcotest.fail "deopt did not stick")

let test_deopt_on_governor_violation () =
  let calls = ref 0 in
  let inst = instantiate_wat ~imports:[ tick_import calls ] tick_src in
  Tier1.enable ~threshold:1 inst;
  Interp.set_deopt_on_fault inst true;
  let gov = Governor.create ~host_call_budget:100 () in
  Interp.set_governor inst (Some gov);
  Governor.arm gov;
  ignore (Interp.invoke_export inst "run" []);
  let code = run_code_of inst in
  (match code.Interp.c_tier with
   | Interp.T_compiled _ -> ()
   | _ -> Alcotest.fail "body was not tiered up");
  let tight = Governor.create ~host_call_budget:1 () in
  Interp.set_governor inst (Some tight);
  Governor.arm tight;
  (match raised (fun () -> Interp.invoke_export inst "run" []) with
   | Error.Governor_limit t ->
     Alcotest.(check string) "violation code" "host-call-budget" t.Error.code
   | e -> Alcotest.failf "expected Governor_limit, got %s" (Printexc.to_string e));
  (match code.Interp.c_tier with
   | Interp.T_unsupported -> ()
   | _ -> Alcotest.fail "governor-killed compiled body did not deopt")

(* ------------------------------------------------------------------ *)
(* Fault plans: determinism and replay                                 *)
(* ------------------------------------------------------------------ *)

let test_fault_plan_determinism () =
  for index = 0 to 19 do
    let a = Fuzz.Faults.describe (Fuzz.Faults.plan ~seed:9 ~index) in
    let b = Fuzz.Faults.describe (Fuzz.Faults.plan ~seed:9 ~index) in
    Alcotest.(check string) (Printf.sprintf "plan %d stable" index) a b
  done;
  let distinct =
    List.sort_uniq compare
      (List.init 20 (fun index -> Fuzz.Faults.describe (Fuzz.Faults.plan ~seed:9 ~index)))
  in
  Alcotest.(check bool) "plans vary across indices" true (List.length distinct > 1)

let test_faulted_replay () =
  List.iter
    (fun index ->
       let d1 = Fuzz.Harness.replay ~faults:true ~seed:1 ~index Fuzz.Harness.Generated in
       let d2 = Fuzz.Harness.replay ~faults:true ~seed:1 ~index Fuzz.Harness.Generated in
       Alcotest.(check string)
         (Printf.sprintf "faulted replay of gen:%d deterministic" index)
         (Fuzz.Harness.disposition_to_string d1)
         (Fuzz.Harness.disposition_to_string d2);
       (match d1 with
        | Fuzz.Harness.Fail { oracle; detail } ->
          Alcotest.failf "gen:%d failed under faults: [%s] %s" index oracle detail
        | _ -> ()))
    [ 0; 7; 42 ]

(* ------------------------------------------------------------------ *)
(* The acceptance gate: 2000-case restore-equivalence fault campaign   *)
(* ------------------------------------------------------------------ *)

let test_fault_campaign () =
  let stats, failures = Fuzz.Harness.run ~faults:true ~seed:1 ~gen_count:2000 ~mut_count:0 () in
  (match failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "fault campaign: [%s] at (seed %d, index %d): %s%s" f.Fuzz.Harness.oracle
       f.Fuzz.Harness.seed f.Fuzz.Harness.index f.Fuzz.Harness.detail
       (match f.Fuzz.Harness.fault_plan with None -> "" | Some p -> " under " ^ p));
  Alcotest.(check int) "violations" 0 stats.Fuzz.Harness.violations;
  Alcotest.(check int) "all cases ran the restore-equivalence oracle" 2000
    stats.Fuzz.Harness.faulted

let suite =
  [
    case "error codes and exit codes" test_error_codes;
    case "governor deadline" test_deadline;
    case "governor host-call budget" test_host_call_budget;
    case "governor memory-growth cap" test_grow_cap;
    case "snapshot/restore idempotence (150 cases, both tiers)" test_restore_idempotence;
    case "restore observes its histogram" test_restore_metric;
    case "tier-1 deopt on injected fault" test_deopt_on_injected_fault;
    case "tier-1 deopt on governor violation" test_deopt_on_governor_violation;
    case "fault plan determinism" test_fault_plan_determinism;
    case "faulted replay determinism" test_faulted_replay;
    case "restore-equivalence fault campaign (2000 cases)" test_fault_campaign;
  ]
