(** Workloads: the PolyBench kernels and real-world stand-ins are valid,
    deterministic, size-scalable, and produce finite checksums; the MiniC
    pretty-printer renders them. *)

open Wasm

let case name fn = Alcotest.test_case name `Quick fn

let run_checksum m =
  let inst = Interp.instantiate ~fuel:500_000_000 ~imports:[] m in
  match Interp.invoke_export inst "run" [] with
  | [ Value.F64 x ] -> x
  | _ -> Alcotest.fail "run did not return one f64"

let test_all_kernels_finite () =
  List.iter
    (fun (name, m) ->
       Validate.validate_module m;
       let x = run_checksum m in
       if Float.is_nan x || not (Float.is_finite x) then
         Alcotest.failf "%s: checksum %f not finite" name x)
    (Workloads.Polybench.all ~n:6 () @ Workloads.Realworld.all ())

let test_deterministic () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let a = Workloads.Corpus.run_reference e in
       let b = Workloads.Corpus.run_reference e in
       Alcotest.(check (float 0.0)) e.name a b)
    (Workloads.Corpus.make ~n:4 ())

let test_scaling () =
  (* problem size changes work, not code size (PolyBench-style) *)
  let at n name =
    let m = List.assoc name (Workloads.Polybench.all ~n ()) in
    let inst = Interp.instantiate ~fuel:500_000_000 ~imports:[] m in
    ignore (Interp.invoke_export inst "run" []);
    (String.length (Encode.encode m), inst.Interp.steps)
  in
  let size4, steps4 = at 4 "gemm" in
  let size8, steps8 = at 8 "gemm" in
  Alcotest.(check bool) "code size nearly constant" true (abs (size8 - size4) < 8);
  Alcotest.(check bool) "work grows superlinearly" true (steps8 > steps4 * 4)

let test_corpus_registry () =
  let entries = Workloads.Corpus.make ~n:4 () in
  Alcotest.(check int) "32 programs" 32 (List.length entries);
  Alcotest.(check int) "30 PolyBench" 30 (List.length (Workloads.Corpus.polybench entries));
  Alcotest.(check int) "2 real-world" 2 (List.length (Workloads.Corpus.realworld entries));
  Alcotest.(check bool) "find works" true
    ((Workloads.Corpus.find entries "gemm").Workloads.Corpus.name = "gemm");
  (match Workloads.Corpus.find entries "nope" with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  (* all names unique *)
  let names = List.map (fun (e : Workloads.Corpus.entry) -> e.name) entries in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_realworld_diversity () =
  (* the stand-ins exercise the instruction classes the paper's real-world
     programs are chosen for: calls, indirect calls, i64, f32, byte memory *)
  let check name ops m =
    let mix = Analyses.Instruction_mix.create () in
    let res = Wasabi.Instrument.instrument m in
    let inst, _ = Wasabi.Runtime.instantiate res (Analyses.Instruction_mix.analysis mix) in
    ignore (Interp.invoke_export inst "run" []);
    List.iter
      (fun op ->
         if Analyses.Instruction_mix.count mix op = 0 then
           Alcotest.failf "%s executed no %s" name op)
      ops
  in
  check "pdfkit"
    [ "call"; "call_indirect"; "i64.mul"; "i32.load8_u"; "i32.store8" ]
    (Minic.Mc_compile.compile (Workloads.Realworld.pdfkit ~doc_len:300 ()));
  check "zen_garden"
    [ "call"; "call_indirect"; "i64.xor"; "i32.load8_u"; "i32.store8"; "f64.mul" ]
    (Minic.Mc_compile.compile (Workloads.Realworld.zen_garden ~verts:10 ~particles:8 ~frames:2 ()))

let test_pretty_printer () =
  let _, p = Workloads.Polybench.gemm ~n:4 in
  let text = Minic.Mc_print.to_string p in
  Alcotest.(check bool) "has function header" true (Helpers.contains text "float run()");
  Alcotest.(check bool) "has loops" true (Helpers.contains text "for (");
  Alcotest.(check bool) "has float stores" true (Helpers.contains text "*(float*)");
  let pdf = Workloads.Realworld.pdfkit () in
  let text = Minic.Mc_print.to_string pdf in
  Alcotest.(check bool) "switch rendered" true (Helpers.contains text "switch (");
  Alcotest.(check bool) "globals rendered" true (Helpers.contains text "@rng");
  Alcotest.(check bool) "table rendered" true (Helpers.contains text "table = [")

let suite =
  [
    case "all 32 programs valid and finite" test_all_kernels_finite;
    case "deterministic checksums" test_deterministic;
    case "problem size scales work, not code" test_scaling;
    case "corpus registry" test_corpus_registry;
    case "real-world stand-ins are diverse" test_realworld_diversity;
    case "MiniC pretty printer" test_pretty_printer;
  ]
