(** Binary format: LEB128, encode/decode round trips (hand-written,
    corpus-wide, and property-based), and malformed-input handling. *)

open Wasm
module B = Wasm.Builder

let case name f = Alcotest.test_case name `Quick f

(* --- LEB128 ----------------------------------------------------------- *)

let leb_u64_roundtrip x =
  let buf = Buffer.create 10 in
  Leb128.write_u64 buf x;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let y = Leb128.read_u64 s pos in
  Int64.equal x y && !pos = String.length s

let leb_s64_roundtrip x =
  let buf = Buffer.create 10 in
  Leb128.write_s64 buf x;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let y = Leb128.read_s64 s pos in
  Int64.equal x y && !pos = String.length s

let test_leb_examples () =
  (* known encodings from the spec/DWARF documentation *)
  let enc_u x =
    let buf = Buffer.create 8 in
    Leb128.write_uint buf x;
    Buffer.contents buf
  in
  Alcotest.(check string) "0" "\x00" (enc_u 0);
  Alcotest.(check string) "2" "\x02" (enc_u 2);
  Alcotest.(check string) "127" "\x7f" (enc_u 127);
  Alcotest.(check string) "128" "\x80\x01" (enc_u 128);
  Alcotest.(check string) "624485" "\xe5\x8e\x26" (enc_u 624485);
  let enc_s x =
    let buf = Buffer.create 8 in
    Leb128.write_s64 buf x;
    Buffer.contents buf
  in
  Alcotest.(check string) "-1" "\x7f" (enc_s (-1L));
  Alcotest.(check string) "-123456" "\xc0\xbb\x78" (enc_s (-123456L));
  Alcotest.(check string) "63" "\x3f" (enc_s 63L);
  Alcotest.(check string) "64" "\xc0\x00" (enc_s 64L)

let test_leb_boundaries () =
  List.iter
    (fun x -> Alcotest.(check bool) (Int64.to_string x) true (leb_u64_roundtrip x))
    [ 0L; 1L; 127L; 128L; 0xFFFFFFFFL; Int64.max_int; -1L (* = 2^64-1 unsigned *) ];
  List.iter
    (fun x -> Alcotest.(check bool) (Int64.to_string x) true (leb_s64_roundtrip x))
    [ 0L; -1L; 63L; -64L; 64L; -65L; Int64.max_int; Int64.min_int ]

let test_leb_strict_widths () =
  let u32 s = let pos = ref 0 in Leb128.read_u32 s pos in
  let u64 s = let pos = ref 0 in Leb128.read_u64 s pos in
  let s32 s = let pos = ref 0 in Leb128.read_s32 s pos in
  let s64 s = let pos = ref 0 in Leb128.read_s64 s pos in
  let rejects name f s =
    match f s with
    | _ -> Alcotest.failf "%s: expected Overflow" name
    | exception Leb128.Overflow _ -> ()
  in
  (* padded (non-minimal) encodings inside the width limit are legal *)
  Alcotest.(check int32) "padded zero u32" 0l (u32 "\x80\x80\x80\x80\x00");
  Alcotest.(check int32) "u32 max (maximal form)" (-1l) (u32 "\xff\xff\xff\xff\x0f");
  (* a 6th byte is never legal for u32, even encoding zero *)
  rejects "u32 six bytes" u32 "\x80\x80\x80\x80\x80\x00";
  (* in-bounds length, but the final byte sets bits beyond bit 31 *)
  rejects "u32 excess bits (0x7f)" u32 "\xff\xff\xff\xff\x7f";
  rejects "u32 excess bits (0x10)" u32 "\x80\x80\x80\x80\x10";
  (* u64: at most 10 bytes, and the 10th may only contribute bit 63 *)
  Alcotest.(check int64) "u64 2^63 (maximal form)" Int64.min_int
    (u64 "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01");
  rejects "u64 eleven bytes" u64 "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x00";
  rejects "u64 excess bits" u64 "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x02";
  (* s64: the unused bits of a maximal-length final byte must replicate
     the sign bit *)
  Alcotest.(check int64) "s64 min_int (maximal form)" Int64.min_int
    (s64 "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x7f");
  rejects "s64 bad sign extension" s64 "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01";
  rejects "s32 bad sign extension" s32 "\xff\xff\xff\xff\x4f";
  (* the extreme values round-trip through their natural width *)
  let roundtrip_s32 x =
    let buf = Buffer.create 8 in
    Leb128.write_s32 buf x;
    let s = Buffer.contents buf in
    let pos = ref 0 in
    let y = Leb128.read_s32 s pos in
    Alcotest.(check int32) (Int32.to_string x) x y;
    Alcotest.(check int) "consumed fully" (String.length s) !pos
  in
  roundtrip_s32 Int32.min_int;
  roundtrip_s32 Int32.max_int;
  let buf = Buffer.create 12 in
  Leb128.write_s64 buf Int64.min_int;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Alcotest.(check int64) "s64 min_int round trip" Int64.min_int (Leb128.read_s64 s pos);
  (* truncated input is a distinct error from overflow *)
  (match u32 "\x80\x80" with
   | _ -> Alcotest.fail "expected truncation error"
   | exception Invalid_argument _ -> ())

let test_leb_overflow_rejected () =
  (* 6 continuation bytes exceed a u32 *)
  let s = "\xff\xff\xff\xff\xff\x0f" in
  let pos = ref 0 in
  (match Leb128.read_u32 s pos with
   | _ -> Alcotest.fail "expected overflow"
   | exception Leb128.Overflow _ -> ());
  (* truncated input *)
  let pos = ref 0 in
  (match Leb128.read_u64 "\x80" pos with
   | _ -> Alcotest.fail "expected truncation error"
   | exception Invalid_argument _ -> ())

let prop_leb_u64 =
  QCheck.Test.make ~name:"leb128 u64 roundtrip" ~count:1000 QCheck.int64 (fun x ->
    leb_u64_roundtrip x)

let prop_leb_s64 =
  QCheck.Test.make ~name:"leb128 s64 roundtrip" ~count:1000 QCheck.int64 (fun x ->
    leb_s64_roundtrip x)

(* --- module round trips ----------------------------------------------- *)

let module_roundtrip m =
  let bin = Encode.encode m in
  let m' = Decode.decode bin in
  let bin' = Encode.encode m' in
  Alcotest.(check string) "stable after one round trip" bin bin'

let test_corpus_roundtrip () =
  List.iter
    (fun (e : Workloads.Corpus.entry) -> module_roundtrip e.module_)
    (Workloads.Corpus.make ~n:4 ())

let test_instrumented_roundtrip () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = Wasabi.Instrument.instrument e.module_ in
       module_roundtrip res.Wasabi.Instrument.instrumented)
    (Workloads.Corpus.make ~n:4 ())

let test_roundtrip_preserves_structure () =
  let e = Workloads.Corpus.find (Workloads.Corpus.make ~n:4 ()) "pdfkit" in
  let m = e.module_ in
  let m' = Decode.decode (Encode.encode m) in
  Alcotest.(check int) "types" (List.length m.Ast.types) (List.length m'.Ast.types);
  Alcotest.(check int) "funcs" (List.length m.Ast.funcs) (List.length m'.Ast.funcs);
  Alcotest.(check int) "instruction count" (Ast.instruction_count m) (Ast.instruction_count m');
  Alcotest.(check bool) "same exports" true (m.Ast.exports = m'.Ast.exports);
  Alcotest.(check bool) "same bodies" true
    (List.for_all2 (fun (a : Ast.func) b -> a.Ast.body = b.Ast.body) m.Ast.funcs m'.Ast.funcs)

let test_bad_binaries_rejected () =
  let expect_error name bin =
    match Decode.decode bin with
    | _ -> Alcotest.failf "%s: expected Decode_error" name
    | exception Decode.Decode_error _ -> ()
  in
  expect_error "empty" "";
  expect_error "bad magic" "\x00bad\x01\x00\x00\x00";
  expect_error "bad version" "\x00asm\x02\x00\x00\x00";
  expect_error "truncated section" "\x00asm\x01\x00\x00\x00\x01\x05\x01";
  expect_error "invalid section id" "\x00asm\x01\x00\x00\x00\x0D\x01\x00";
  expect_error "out-of-order sections" "\x00asm\x01\x00\x00\x00\x03\x01\x00\x01\x01\x00"

let test_custom_sections_skipped () =
  (* insert a custom section between the magic and a valid type section *)
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 1 ] in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  let bin = Encode.encode m in
  let custom = "\x00\x07\x04name\x01\x02" in
  let with_custom =
    String.sub bin 0 8 ^ custom ^ String.sub bin 8 (String.length bin - 8)
  in
  let m' = Decode.decode with_custom in
  Alcotest.(check int) "function preserved" 1 (List.length m'.Ast.funcs)

(* --- NaN bit patterns -------------------------------------------------- *)

(* Float constants travel as raw bit patterns: crafted NaN payloads
   (signalling and quiet, either sign) must survive encode -> decode ->
   encode byte-exactly, reach the interpreter unchanged, and pass
   bit-exactly through the sign-only operators (copysign) and through
   nearest, which returns NaN inputs as-is. *)

let run_expr ~result body =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[ result ] ~locals:[] ~body in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  Validate.validate_module m;
  match Interp.invoke_export (Interp.instantiate ~imports:[] m) "f" [] with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected one result, got %d" (List.length vs)

let reencode_expr ~result body =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[ result ] ~locals:[] ~body in
  B.export_func bld ~name:"f" f;
  let m = B.build bld in
  let bin = Encode.encode m in
  Alcotest.(check bool) "nan payload re-encodes byte-identically" true
    (String.equal bin (Encode.encode (Decode.decode bin)))

let as_f32_bits = function
  | Value.F32 b -> b
  | v -> Alcotest.failf "expected f32, got %s" (Format.asprintf "%a" Value.pp v)

let as_f64_bits = function
  | Value.F64 f -> Int64.bits_of_float f
  | v -> Alcotest.failf "expected f64, got %s" (Format.asprintf "%a" Value.pp v)

let test_nan_payload_roundtrip () =
  (* sNaN (quiet bit clear, payload set), qNaN with payload, negative qNaN *)
  let payloads32 = [ 0x7FA0_0001l; 0x7FC0_1234l; 0xFFC0_BEEFl ] in
  let payloads64 =
    [ 0x7FF4_0000_0000_0001L; 0x7FF8_0000_DEAD_BEEFL; 0xFFF8_0000_0000_0099L ]
  in
  List.iter
    (fun bits ->
       reencode_expr ~result:Types.F32T [ Ast.Const (Value.F32 bits) ];
       Alcotest.(check int32)
         (Printf.sprintf "f32 payload 0x%lX reaches execution intact" bits)
         bits
         (as_f32_bits (run_expr ~result:Types.F32T [ Ast.Const (Value.F32 bits) ])))
    payloads32;
  List.iter
    (fun bits ->
       let v = Value.F64 (Int64.float_of_bits bits) in
       reencode_expr ~result:Types.F64T [ Ast.Const v ];
       Alcotest.(check int64)
         (Printf.sprintf "f64 payload 0x%LX reaches execution intact" bits)
         bits
         (as_f64_bits (run_expr ~result:Types.F64T [ Ast.Const v ])))
    payloads64

let test_nan_payload_ops () =
  let open Ast in
  (* f64 copysign keeps the payload, only the sign bit moves *)
  let nan64 = 0x7FF4_0000_0000_0001L in
  Alcotest.(check int64) "f64 copysign(NaN, -1) keeps payload"
    (Int64.logor nan64 Int64.min_int)
    (as_f64_bits
       (run_expr ~result:Types.F64T
          [ Const (Value.F64 (Int64.float_of_bits nan64)); Const (Value.F64 (-1.0));
            Binary (FBin (Types.SF64, CopySign)) ]));
  (* f64 nearest returns a NaN input unchanged *)
  Alcotest.(check int64) "f64 nearest(NaN) keeps payload" nan64
    (as_f64_bits
       (run_expr ~result:Types.F64T
          [ Const (Value.F64 (Int64.float_of_bits nan64));
            Unary (FUn (Types.SF64, Nearest)) ]));
  (* f32 copysign is a pure bit operation, even on a signalling NaN *)
  let snan32 = 0x7FA0_0001l in
  Alcotest.(check int32) "f32 copysign(sNaN, -2) keeps payload"
    (Int32.logor snan32 Int32.min_int)
    (as_f32_bits
       (run_expr ~result:Types.F32T
          [ Const (Value.F32 snan32); Const (Value.f32 (-2.0));
            Binary (FBin (Types.SF32, CopySign)) ]));
  (* a non-sign f32 unary operator on a NaN quiets it but keeps the payload *)
  Alcotest.(check int32) "f32 nearest(sNaN) = quieted payload"
    (Int32.logor snan32 0x0040_0000l)
    (as_f32_bits
       (run_expr ~result:Types.F32T
          [ Const (Value.F32 snan32); Unary (FUn (Types.SF32, Nearest)) ]))

(* random expression modules for property-based round trips *)
let gen_const_instr =
  QCheck.Gen.(
    oneof
      [ map (fun x -> Ast.Const (Value.I32 x)) int32;
        map (fun x -> Ast.Const (Value.I64 x)) int64;
        map (fun x -> Ast.Const (Value.F64 x)) (float_bound_inclusive 1e9);
        map (fun x -> Ast.Const (Value.f32 x)) (float_bound_inclusive 1e9) ])

let gen_i32_op =
  QCheck.Gen.(
    oneofl
      Ast.[ Binary (IBin (Types.S32, Add)); Binary (IBin (Types.S32, Sub));
            Binary (IBin (Types.S32, Mul)); Binary (IBin (Types.S32, And));
            Binary (IBin (Types.S32, Or)); Binary (IBin (Types.S32, Xor));
            Binary (IBin (Types.S32, Shl)); Binary (IBin (Types.S32, Rotl));
            Compare (IRel (Types.S32, Eq)); Compare (IRel (Types.S32, LtS));
            Test (IEqz Types.S32); Unary (IUn (Types.S32, Clz));
            Unary (IUn (Types.S32, Popcnt)) ])

(** A random well-typed i32 expression in postfix form, [depth] operations. *)
let rec gen_i32_expr depth =
  QCheck.Gen.(
    if depth = 0 then map (fun x -> [ Ast.Const (Value.I32 x) ]) int32
    else
      gen_i32_op >>= fun op ->
      let arity =
        match op with
        | Ast.Binary _ | Ast.Compare _ -> 2
        | _ -> 1
      in
      if arity = 2 then
        gen_i32_expr (depth - 1) >>= fun a ->
        gen_i32_expr (depth / 2) >>= fun b -> return (a @ b @ [ op ])
      else gen_i32_expr (depth - 1) >>= fun a -> return (a @ [ op ]))

let module_of_body body =
  let bld = B.create () in
  let f = B.add_func bld ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body in
  B.export_func bld ~name:"f" f;
  B.build bld

let arb_expr_module =
  QCheck.make
    ~print:(fun m -> Wat.to_string m)
    QCheck.Gen.(gen_i32_expr 8 >|= module_of_body)

let prop_module_roundtrip =
  QCheck.Test.make ~name:"random module encode/decode roundtrip" ~count:300 arb_expr_module
    (fun m ->
       let bin = Encode.encode m in
       let m' = Decode.decode bin in
       Encode.encode m' = bin)

let prop_random_valid =
  QCheck.Test.make ~name:"random expression modules validate" ~count:300 arb_expr_module
    (fun m -> Validate.is_valid m)

let prop_wat_roundtrip =
  QCheck.Test.make ~name:"random modules: wat print/parse preserves encoding" ~count:200
    arb_expr_module (fun m ->
      let m' = Wat_parse.parse (Wat.to_string m) in
      Encode.encode m' = Encode.encode m)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_leb_u64; prop_leb_s64; prop_module_roundtrip; prop_random_valid; prop_wat_roundtrip ]

let suite =
  [
    case "LEB128 known encodings" test_leb_examples;
    case "LEB128 boundary values" test_leb_boundaries;
    case "LEB128 overflow rejected" test_leb_overflow_rejected;
    case "LEB128 strict width checks" test_leb_strict_widths;
    case "corpus round trips" test_corpus_roundtrip;
    case "instrumented corpus round trips" test_instrumented_roundtrip;
    case "round trip preserves structure" test_roundtrip_preserves_structure;
    case "malformed binaries rejected" test_bad_binaries_rejected;
    case "custom sections skipped" test_custom_sections_skipped;
    case "NaN payload round trips" test_nan_payload_roundtrip;
    case "NaN payload through copysign/nearest" test_nan_payload_ops;
  ]
  @ qcheck_cases
