(** Tests for the whole-module abstract interpreter and its consumers:
    the {!Static.Interval} value-set domain, backward dataflow (a
    liveness analysis over diamond and loop CFGs), the all-slots
    {!Static.Stackval.value_at} view, interprocedural {!Static.Absint}
    facts (masked indirect-call indices, global cells, function
    summaries), static hook folding ([~fold]) with its lint
    verification, and the promoted fuzz corpus of indirect-call-heavy
    modules under the soundness oracle. *)

open Wasm
open Wasm.Ast
module B = Builder
module W = Wasabi
module Cfg = Static.Cfg
module Interval = Static.Interval
module Absint = Static.Absint
module Callgraph = Static.Callgraph

let interval = Alcotest.testable (Fmt.of_to_string Interval.to_string) Interval.equal

(* ------------------------------------------------------------------ *)
(* The interval domain                                                 *)
(* ------------------------------------------------------------------ *)

let test_interval_sets () =
  let s = Interval.of_values [ Helpers.i32 3; Helpers.i32 1; Helpers.i32 3 ] in
  Alcotest.(check interval) "dedup + sort" (Interval.Set [ Helpers.i32 1; Helpers.i32 3 ]) s;
  Alcotest.(check bool) "contains member" true (Interval.contains s (Helpers.i32 3));
  Alcotest.(check bool) "rejects non-member" false (Interval.contains s (Helpers.i32 2));
  Alcotest.(check (option Helpers.value)) "two values are no singleton" None
    (Interval.singleton s);
  Alcotest.(check (option Helpers.value)) "one value is" (Some (Helpers.i32 7))
    (Interval.singleton (Interval.of_value (Helpers.i32 7)))

let test_interval_widening () =
  (* more than max_set i32s widen to a threshold-rounded interval *)
  let vs = List.init (Interval.max_set + 1) (fun i -> Helpers.i32 i) in
  (match Interval.of_values vs with
   | Interval.I32R (lo, hi) ->
     Alcotest.(check int32) "low bound on the ladder" 0l lo;
     Alcotest.(check bool) "high bound rounded outward" true (hi >= 8l)
   | t -> Alcotest.failf "expected an i32 interval, got %s" (Interval.to_string t));
  let r = Interval.i32_range 5l 9l in
  Alcotest.(check bool) "rounding keeps every member" true
    (List.for_all (fun k -> Interval.contains r (Value.I32 k)) [ 5l; 6l; 7l; 8l; 9l ]);
  (* a collapsed range is an exact set again *)
  Alcotest.(check interval) "one-point range collapses" (Interval.of_value (Helpers.i32 7))
    (Interval.i32_range 7l 7l)

let test_interval_signed_zero () =
  (* regression: Stdlib.compare on floats is numeric, so a sort_uniq-based
     join used to collapse {+0.0, -0.0} to one element while [contains]
     stays bit-exact — an unsound join *)
  let j = Interval.join (Interval.of_value (Value.F64 0.0)) (Interval.of_value (Value.F64 (-0.0))) in
  Alcotest.(check bool) "+0.0 survives the join" true (Interval.contains j (Value.F64 0.0));
  Alcotest.(check bool) "-0.0 survives the join" true (Interval.contains j (Value.F64 (-0.0)));
  Alcotest.(check (option Helpers.value)) "and the join is not a singleton" None
    (Interval.singleton j)

let test_interval_branch_predicates () =
  Alcotest.(check bool) "bool01 may be zero" true (Interval.may_be_zero Interval.bool01);
  Alcotest.(check bool) "bool01 may be nonzero" true (Interval.may_be_nonzero Interval.bool01);
  let one = Interval.of_value (Helpers.i32 1) in
  Alcotest.(check bool) "constant 1 cannot be zero" false (Interval.may_be_zero one);
  Alcotest.(check bool) "case 1 selectable" true (Interval.may_select_case Interval.bool01 1);
  Alcotest.(check bool) "case 2 not selectable" false
    (Interval.may_select_case Interval.bool01 2);
  Alcotest.(check bool) "in-range set avoids the default" false
    (Interval.may_select_default Interval.bool01 ~n_cases:2);
  Alcotest.(check bool) "out-of-range value selects it" true
    (Interval.may_select_default Interval.bool01 ~n_cases:1);
  (* br_table indices are unsigned: negative i32s select the default *)
  Alcotest.(check bool) "negative bound selects the default" true
    (Interval.may_select_default (Interval.i32_range (-1l) 0l) ~n_cases:4)

(* ------------------------------------------------------------------ *)
(* Backward dataflow: live locals over diamond and loop CFGs           *)
(* ------------------------------------------------------------------ *)

(* live-local sets as sorted int lists *)
module Live = Static.Dataflow.Make (struct
  type t = int list
  let bottom = []
  let join a b = List.sort_uniq compare (a @ b)
  let equal = ( = )
end)

(* gen/kill by scanning the block's instructions backward *)
let liveness cfg =
  let transfer (c : Cfg.t) id fact =
    let b = c.Cfg.blocks.(id) in
    let live = ref fact in
    for pc = b.Cfg.last downto b.Cfg.first do
      if pc >= 0 && pc < Array.length c.Cfg.body then
        match c.Cfg.body.(pc) with
        | LocalGet x -> live := List.sort_uniq compare (x :: !live)
        | LocalSet x -> live := List.filter (( <> ) x) !live
        | LocalTee x -> live := List.sort_uniq compare (x :: List.filter (( <> ) x) !live)
        | _ -> ()
    done;
    !live
  in
  Live.solve ~direction:Static.Dataflow.Backward cfg ~init:[] ~transfer

let cfg_of ~params ~results ~locals body =
  let m = Helpers.single_func ~params ~results ~locals body in
  Validate.validate_module m;
  Cfg.build (Validate.Module_ctx.create m) (List.hd m.funcs)

let test_liveness_diamond () =
  (* 0:get0 1:if 2:get1 3:set2 4:else 5:const 6:set2 7:end 8:get2 9:drop
     local 1 is live only into the then-arm; local 2 is dead at entry
     (both arms define it) but live out of each arm *)
  let body =
    LocalGet 0
    :: B.if_
         ~then_:[ LocalGet 1; LocalSet 2 ]
         ~else_:[ B.i32 7; LocalSet 2 ]
         ()
    @ [ LocalGet 2; Drop ]
  in
  let cfg =
    cfg_of ~params:[ Types.I32T; Types.I32T ] ~results:[] ~locals:[ Types.I32T ] body
  in
  let r = liveness cfg in
  (* backward: [after] is the fact at block entry (live-in), [before] the
     fact at block exit (live-out) *)
  let then_b = cfg.Cfg.block_at.(2) and else_b = cfg.Cfg.block_at.(5) in
  Alcotest.(check (list int)) "live-in of then-arm uses local 1" [ 1 ] r.Live.after.(then_b);
  Alcotest.(check (list int)) "live-in of else-arm uses nothing" [] r.Live.after.(else_b);
  Alcotest.(check (list int)) "both arms keep local 2 live out" [ 2 ] r.Live.before.(then_b);
  Alcotest.(check (list int)) "function entry needs locals 0 and 1" [ 0; 1 ]
    r.Live.after.(cfg.Cfg.entry);
  Alcotest.(check (list int)) "nothing live at the exit" [] r.Live.before.(cfg.Cfg.exit_)

let test_liveness_loop () =
  (* 0:block 1:loop 2:get0 3:const1 4:sub 5:tee0 6:br_if(loop) 7:end 8:end
     the counter is live around the back edge, so the fixpoint must
     propagate it into the loop header's live-out — one pass is not
     enough *)
  let body = [ Block None; Loop None; LocalGet 0; B.i32 1; B.i32_sub; LocalTee 0; BrIf 0; End; End ] in
  let cfg = cfg_of ~params:[ Types.I32T ] ~results:[] ~locals:[] body in
  let r = liveness cfg in
  let header = cfg.Cfg.block_at.(2) in
  Alcotest.(check (list int)) "counter live into the loop" [ 0 ] r.Live.after.(header);
  Alcotest.(check (list int)) "counter live around the back edge" [ 0 ] r.Live.before.(header);
  Alcotest.(check (list int)) "counter live at function entry" [ 0 ]
    r.Live.after.(cfg.Cfg.entry)

(* ------------------------------------------------------------------ *)
(* Stackval: the all-slots view                                        *)
(* ------------------------------------------------------------------ *)

let test_stackval_all_slots () =
  let body = [ B.i32 3; B.i32 4; B.i32_add; Drop ] in
  let m = Helpers.single_func ~params:[] ~results:[] ~locals:[] body in
  Validate.validate_module m;
  let ctx = Validate.Module_ctx.create m in
  let cfg = Cfg.build ctx (List.hd m.funcs) in
  let sv = Static.Stackval.analyze ctx cfg in
  Alcotest.(check interval) "depth 0 before the add" (Interval.of_value (Helpers.i32 4))
    (Static.Stackval.value_at sv 2 0);
  Alcotest.(check interval) "depth 1 before the add" (Interval.of_value (Helpers.i32 3))
    (Static.Stackval.value_at sv 2 1);
  Alcotest.(check interval) "folded sum on top before the drop"
    (Interval.of_value (Helpers.i32 7))
    (Static.Stackval.value_at sv 3 0)

(* ------------------------------------------------------------------ *)
(* Whole-module absint facts                                           *)
(* ------------------------------------------------------------------ *)

let test_absint_masked_indirect () =
  (* index = host-controlled param & 3 over a non-escaping 4-slot table:
     the site must narrow to exactly those four targets *)
  let b = B.create () in
  let mk k = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 k ] in
  let g0 = mk 10 and g1 = mk 20 and g2 = mk 30 and g3 = mk 40 in
  let ty = B.add_type b { Types.params = []; results = [ Types.I32T ] } in
  let main =
    B.add_func b ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ LocalGet 0; B.i32 3; B.i32_and; CallIndirect ty ]
  in
  B.add_table b ~min_size:4 ~max_size:None;
  B.add_elem b ~offset:0 ~funcs:[ g0; g1; g2; g3 ];
  B.export_func b ~name:"main" main;
  let m = B.build b in
  Validate.validate_module m;
  let fx = Absint.analyze m in
  (match Absint.indirect_site fx ~func:main ~pc:3 with
   | None -> Alcotest.fail "call_indirect site not recorded"
   | Some (idx, targets) ->
     List.iter
       (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "masked index may be %ld" k)
            true
            (Interval.contains idx (Value.I32 k)))
       [ 0l; 1l; 2l; 3l ];
     Alcotest.(check bool) "but not 4" false (Interval.contains idx (Value.I32 4l));
     Alcotest.(check (list int)) "targets are the four table slots" [ g0; g1; g2; g3 ]
       (List.sort compare targets));
  (* the precise call graph sees exactly those edges *)
  let cg = Callgraph.build ~precise:true m in
  List.iter
    (fun g ->
       Alcotest.(check bool) (Printf.sprintf "precise edge main -> f%d" g) true
         (Callgraph.has_edge cg main g))
    [ g0; g1; g2; g3 ]

let test_absint_narrows_constant_index () =
  (* constant index: the precise graph keeps one edge where the type-pool
     graph keeps every type-compatible elem entry *)
  let b = B.create () in
  let mk k = B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[] ~body:[ B.i32 k ] in
  let g0 = mk 10 and g1 = mk 20 in
  let ty = B.add_type b { Types.params = []; results = [ Types.I32T ] } in
  let main =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 0; B.i32 1; B.i32_and; CallIndirect ty ]
  in
  B.add_table b ~min_size:2 ~max_size:None;
  B.add_elem b ~offset:0 ~funcs:[ g0; g1 ];
  B.export_func b ~name:"main" main;
  let m = B.build b in
  Validate.validate_module m;
  let prec = Callgraph.build ~precise:true m in
  Alcotest.(check bool) "slot 0 kept" true (Callgraph.has_edge prec main g0);
  Alcotest.(check bool) "slot 1 dropped" false (Callgraph.has_edge prec main g1);
  Alcotest.(check (list int)) "unselected slot is dead" [ g1 ] (Callgraph.dead_functions prec)

let test_absint_global_cells () =
  (* a private mutable global only ever holds its init or one stored
     constant *)
  let b = B.create () in
  let g = B.add_global b ~ty:Types.I32T ~mutable_:true ~init:(Helpers.i32 5) in
  let main =
    B.add_func b ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:
        (LocalGet 0
         :: B.if_ ~then_:[ B.i32 10; GlobalSet g ] ~else_:[] ()
         @ [ GlobalGet g ])
  in
  B.export_func b ~name:"main" main;
  let m = B.build b in
  Validate.validate_module m;
  let fx = Absint.analyze m in
  let cell = Absint.global_fact fx g in
  Alcotest.(check bool) "init value possible" true (Interval.contains cell (Helpers.i32 5));
  Alcotest.(check bool) "stored value possible" true (Interval.contains cell (Helpers.i32 10));
  Alcotest.(check bool) "other values are not" false (Interval.contains cell (Helpers.i32 11))

let test_absint_interprocedural_summaries () =
  (* every call site passes a constant, so the callee's parameter summary
     is the set of those constants and its result flows back *)
  let b = B.create () in
  let callee =
    B.add_func b ~params:[ Types.I32T ] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ LocalGet 0; B.i32 1; B.i32_add ]
  in
  let main =
    B.add_func b ~params:[] ~results:[ Types.I32T ] ~locals:[]
      ~body:[ B.i32 4; Call callee; Drop; B.i32 6; Call callee ]
  in
  B.export_func b ~name:"main" main;
  let m = B.build b in
  Validate.validate_module m;
  let fx = Absint.analyze m in
  (match Absint.param_facts fx callee with
   | [ p ] ->
     Alcotest.(check bool) "4 flows in" true (Interval.contains p (Helpers.i32 4));
     Alcotest.(check bool) "6 flows in" true (Interval.contains p (Helpers.i32 6));
     Alcotest.(check bool) "5 does not" false (Interval.contains p (Helpers.i32 5))
   | ps -> Alcotest.failf "expected one parameter summary, got %d" (List.length ps));
  (match Absint.result_facts fx callee with
   | [ r ] ->
     Alcotest.(check bool) "result may be 5" true (Interval.contains r (Helpers.i32 5));
     Alcotest.(check bool) "result may be 7" true (Interval.contains r (Helpers.i32 7))
   | rs -> Alcotest.failf "expected one result summary, got %d" (List.length rs));
  (* the return value of the second call is on the stack at the exit *)
  let body_len = List.length (List.nth m.funcs 1).body in
  let at_exit = Absint.value_at fx ~func:main ~pc:body_len ~depth:0 in
  Alcotest.(check bool) "exit fact contains 7" true (Interval.contains at_exit (Helpers.i32 7))

(* ------------------------------------------------------------------ *)
(* Static hook folding                                                 *)
(* ------------------------------------------------------------------ *)

let test_fold_discharges_and_lints () =
  (* the br_if condition is constant-true, so edge tightening proves the
     fall-through arm dead (its hooks are dropped) and the br_if / add
     hooks get their operands as immediates *)
  let body =
    (Block (Some Types.I32T)
     :: B.i32 2 :: B.i32 3 :: B.i32_add
     :: B.i32 1 :: BrIf 0
     :: [ Drop; B.i32 9; B.i32 9; B.i32_mul; End ])
  in
  let m = Helpers.single_func ~params:[] ~results:[ Types.I32T ] ~locals:[] body in
  Validate.validate_module m;
  let res = W.Instrument.instrument ~fold:true m in
  let md = res.W.Instrument.metadata in
  let dead, const_args =
    List.partition (function W.Metadata.F_dead _ -> true | W.Metadata.F_args _ -> false)
      md.W.Metadata.folded
  in
  Alcotest.(check bool) "dead-arm hooks dropped" true (List.length dead > 0);
  Alcotest.(check bool) "constant hook arguments folded" true (List.length const_args > 0);
  Validate.validate_module res.W.Instrument.instrumented;
  (match Lint.errors (Lint.check res) with
   | [] -> ()
   | f :: _ -> Alcotest.failf "lint rejects the folded module: %s" (Lint.to_string f));
  let inst, _ = W.Runtime.instantiate res W.Analysis.default in
  Helpers.check_values "folded module still takes the branch" [ Helpers.i32 5 ]
    (Interp.invoke_export inst "f" [])

let test_fold_lint_catches_bogus_fold () =
  (* claiming a live site was dead-folded must be flagged *)
  let m =
    Helpers.single_func ~params:[] ~results:[] ~locals:[] [ B.i32 1; Drop; B.i32 2; Drop ]
  in
  Validate.validate_module m;
  let res = W.Instrument.instrument ~fold:true m in
  let md = res.W.Instrument.metadata in
  let forged =
    { md with W.Metadata.folded = [ W.Metadata.F_dead (W.Location.make ~func:0 ~instr:0) ] }
  in
  let findings = Lint.check { res with W.Instrument.metadata = forged } in
  Alcotest.(check bool) "forged dead-fold reported" true
    (List.exists (fun (f : Lint.finding) -> f.Lint.code = "fold") (Lint.errors findings))

let corpus = lazy (Workloads.Corpus.make ~n:2 ())

let test_fold_realworld () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = W.Instrument.instrument ~prune_unreachable:true ~fold:true e.module_ in
       Alcotest.(check bool) (e.name ^ ": some hook sites discharged") true
         (res.W.Instrument.metadata.W.Metadata.folded <> []);
       (match Lint.errors (Lint.check res) with
        | [] -> ()
        | f :: _ -> Alcotest.failf "%s: lint rejects folding: %s" e.name (Lint.to_string f));
       let reference = Workloads.Corpus.run_reference e in
       let inst, _ = W.Runtime.instantiate res W.Analysis.default in
       match Interp.invoke_export inst "run" [] with
       | [ Value.F64 x ] ->
         Alcotest.(check (float 1e-9)) (e.name ^ ": checksum unchanged") reference x
       | vs -> Alcotest.failf "%s: run returned %d values" e.name (List.length vs))
    (Workloads.Corpus.realworld (Lazy.force corpus))

(* ------------------------------------------------------------------ *)
(* Promoted fuzz corpus: indirect-call-heavy generated modules         *)
(* ------------------------------------------------------------------ *)

let corpus_files =
  [ "corpus/indirect-mixed.wasm";
    "corpus/indirect-top-index.wasm";
    "corpus/indirect-many-sites.wasm" ]

let read_module path =
  let bin = In_channel.with_open_bin path In_channel.input_all in
  let m = Decode.decode bin in
  Validate.validate_module m;
  m

let test_corpus_modules_sound () =
  List.iter
    (fun path ->
       let m = read_module path in
       let n_indirect =
         List.fold_left
           (fun acc (f : func) ->
              acc
              + List.length
                  (List.filter (function CallIndirect _ -> true | _ -> false) f.body))
           0 m.funcs
       in
       Alcotest.(check bool) (path ^ ": stresses call_indirect") true (n_indirect > 0);
       let info =
         { Fuzz.Gen.module_ = m;
           has_memory = m.memories <> [];
           n_globals = List.length m.globals }
       in
       (match Fuzz.Oracle.absint_soundness info with
        | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
        | Fuzz.Oracle.Violation { kind; detail } ->
          Alcotest.failf "%s: [%s] %s" path kind detail);
       (match Fuzz.Oracle.lint_instrumented m with
        | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
        | Fuzz.Oracle.Violation { kind; detail } ->
          Alcotest.failf "%s: [%s] %s" path kind detail))
    corpus_files

let test_corpus_precise_graph_narrower () =
  List.iter
    (fun path ->
       let m = read_module path in
       let pool = List.length (Callgraph.indirect_edges (Callgraph.build m)) in
       let prec = List.length (Callgraph.indirect_edges (Callgraph.build ~precise:true m)) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: precise <= pool (%d <= %d)" path prec pool)
         true (prec <= pool))
    corpus_files

let suite =
  [
    Alcotest.test_case "interval: sets" `Quick test_interval_sets;
    Alcotest.test_case "interval: threshold widening" `Quick test_interval_widening;
    Alcotest.test_case "interval: signed-zero join" `Quick test_interval_signed_zero;
    Alcotest.test_case "interval: branch predicates" `Quick test_interval_branch_predicates;
    Alcotest.test_case "dataflow: liveness over a diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "dataflow: liveness around a loop" `Quick test_liveness_loop;
    Alcotest.test_case "stackval: all stack slots" `Quick test_stackval_all_slots;
    Alcotest.test_case "absint: masked indirect index" `Quick test_absint_masked_indirect;
    Alcotest.test_case "absint: constant index narrows the graph" `Quick
      test_absint_narrows_constant_index;
    Alcotest.test_case "absint: global cells" `Quick test_absint_global_cells;
    Alcotest.test_case "absint: interprocedural summaries" `Quick
      test_absint_interprocedural_summaries;
    Alcotest.test_case "fold: discharge + lint + behaviour" `Quick
      test_fold_discharges_and_lints;
    Alcotest.test_case "fold: lint catches a forged fold" `Quick
      test_fold_lint_catches_bogus_fold;
    Alcotest.test_case "fold: real-world workloads" `Slow test_fold_realworld;
    Alcotest.test_case "corpus: promoted indirect modules are sound" `Slow
      test_corpus_modules_sound;
    Alcotest.test_case "corpus: precise graph never wider" `Quick
      test_corpus_precise_graph_narrower;
  ]
