(** Differential regression test for the hook-dispatch fast path: for
    every hook spec exercised by the corpus (and by a hand-built kitchen
    sink covering the long tail — i64 splitting, br_table, indirect
    calls, memory.grow), the compiled per-spec decoder and the retained
    list-based reference decoder must produce byte-identical high-level
    hook invocations, in the same order, with the same program result. *)

open Minic.Mc_ast
module W = Wasabi

let case name fn = Alcotest.test_case name `Quick fn

let corpus = lazy (Workloads.Corpus.make ~n:4 ())

(* --- a recording analysis --------------------------------------------- *)

(** Every callback appends one fully formatted line (location, operands,
    resolved targets, ops) to a rolling digest, so transcripts of
    millions of events compare in constant memory. *)
let recorder () =
  let buf = Buffer.create (1 lsl 16) in
  let digest = ref "" in
  let count = ref 0 in
  let fold () =
    digest := Digest.string (!digest ^ Digest.string (Buffer.contents buf));
    Buffer.clear buf
  in
  let emit fmt =
    incr count;
    Printf.ksprintf
      (fun s ->
         Buffer.add_string buf s;
         Buffer.add_char buf '\n';
         if Buffer.length buf > 1 lsl 20 then fold ())
      fmt
  in
  let final () = fold (); (!digest, !count) in
  let loc = W.Location.to_string in
  let value = Wasm.Value.to_string in
  let values vs = String.concat "," (List.map value vs) in
  let target (t : W.Metadata.target) =
    Printf.sprintf "%d@%s" t.W.Metadata.label (loc t.W.Metadata.target_loc)
  in
  let kind = W.Hook.block_kind_name in
  let analysis =
    { W.Analysis.nop = (fun l -> emit "nop %s" (loc l));
      unreachable = (fun l -> emit "unreachable %s" (loc l));
      if_ = (fun l c -> emit "if %s %b" (loc l) c);
      br = (fun l t -> emit "br %s %s" (loc l) (target t));
      br_if = (fun l t c -> emit "br_if %s %s %b" (loc l) (target t) c);
      br_table =
        (fun l table default idx ->
           emit "br_table %s [%s] %s %d" (loc l)
             (String.concat ";" (Array.to_list (Array.map target table)))
             (target default) idx);
      begin_ = (fun l k -> emit "begin %s %s" (loc l) (kind k));
      end_ = (fun l k b -> emit "end %s %s %s" (loc l) (kind k) (loc b));
      const = (fun l x -> emit "const %s %s" (loc l) (value x));
      drop = (fun l x -> emit "drop %s %s" (loc l) (value x));
      select =
        (fun l c a b -> emit "select %s %b %s %s" (loc l) c (value a) (value b));
      unary =
        (fun l op x r -> emit "unary %s %s %s %s" (loc l) op (value x) (value r));
      binary =
        (fun l op x y r ->
           emit "binary %s %s %s %s %s" (loc l) op (value x) (value y) (value r));
      local =
        (fun l op idx x -> emit "local %s %s %d %s" (loc l) op idx (value x));
      global =
        (fun l op idx x -> emit "global %s %s %d %s" (loc l) op idx (value x));
      load =
        (fun l op m x ->
           emit "load %s %s %ld+%d %s" (loc l) op m.W.Analysis.addr
             m.W.Analysis.offset (value x));
      store =
        (fun l op m x ->
           emit "store %s %s %ld+%d %s" (loc l) op m.W.Analysis.addr
             m.W.Analysis.offset (value x));
      memory_size = (fun l pages -> emit "memory_size %s %d" (loc l) pages);
      memory_grow =
        (fun l delta prev -> emit "memory_grow %s %d %d" (loc l) delta prev);
      call_pre =
        (fun l callee args tbl ->
           emit "call_pre %s %d [%s] %s" (loc l) callee (values args)
             (match tbl with None -> "-" | Some t -> string_of_int t));
      call_post = (fun l rs -> emit "call_post %s [%s]" (loc l) (values rs));
      return_ = (fun l rs -> emit "return %s [%s]" (loc l) (values rs));
      start = (fun l -> emit "start %s" (loc l));
    }
  in
  (analysis, final)

(** Run an instrumented module's [run] export under one decoder; returns
    (program results, transcript digest, event count). *)
let transcript ~decoder (res : W.Instrument.result) =
  let analysis, final = recorder () in
  let inst, _rt = W.Runtime.instantiate ~decoder res analysis in
  let results = Wasm.Interp.invoke_export inst "run" [] in
  let digest, count = final () in
  (List.map Wasm.Value.to_string results, digest, count)

let check_identical name (res : W.Instrument.result) =
  let r_c, d_c, n_c = transcript ~decoder:`Compiled res in
  let r_r, d_r, n_r = transcript ~decoder:`Reference res in
  Alcotest.(check (list string)) (name ^ ": results") r_r r_c;
  Alcotest.(check int) (name ^ ": event count") n_r n_c;
  Alcotest.(check string) (name ^ ": transcript") d_r d_c;
  Alcotest.(check bool) (name ^ ": observed events") true (n_c > 0)

(* --- corpus ----------------------------------------------------------- *)

let test_corpus_differential () =
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       check_identical e.name (W.Instrument.instrument e.module_))
    (Lazy.force corpus)

(* --- kitchen sink: the long tail the corpus may not reach ------------- *)

(** i64 arithmetic (split across two i32 hook params), direct and
    indirect calls with mixed-type arguments and results, [switch]
    (br_table), [select], typed loads/stores, casts, memory.size/grow. *)
let kitchen_sink () =
  let open Dsl in
  Minic.Mc_compile.compile
    (program
       ~globals:[ ("h", TLong, Long 0xcbf29ce484222325L); ("acc", TFloat, Float 0.0) ]
       ~table:[ "ticks" ]
       [ func "mixi" ~params:[ ("a", TInt); ("b", TLong) ] ~result:TLong
           ~export:false
           [ Return (Some (Binop (BXor, Cast (TLong, v "a"),
                                  Binop (Mul, v "b", Long 0x100000001b3L)))) ];
         func "mixf" ~params:[ ("x", TFloat); ("n", TInt) ] ~result:TFloat
           ~export:false
           [ Return (Some (v "x" * Cast (TFloat, v "n" + i 1))) ];
         func "ticks" ~result:TLong ~export:false
           [ Return (Some (Binop (BAnd, Global "h", Long 0xFFL))) ];
         func "run" ~result:TFloat ~locals:[ ("k", TInt); ("t", TLong) ]
           [ Expr (MemGrow (i 1));
             For ("k", i 0, i 40,
                  [ SetGlobal ("h", Binop (BXor, Global "h", Cast (TLong, v "k")));
                    SetGlobal ("h", Binop (Mul, Global "h", Long 0x100000001b3L));
                    Assign ("t", Call ("mixi", [ v "k"; Global "h" ]));
                    Assign ("t", CallIndirect (i 0, [], Some TLong));
                    If (Binop (BAnd, v "k", i 1) = i 0,
                        [ SetGlobal ("acc", Call ("mixf", [ Global "acc"; v "k" ])) ],
                        []);
                    Switch (Binop (BAnd, v "k", i 3),
                            [ [ SetGlobal ("acc", Global "acc" + f 1.0) ];
                              [ istore (i 0) (Binop (BAnd, v "k", i 15))
                                  (Cast (TInt, v "t")) ] ],
                            [ SetGlobal ("acc",
                                         Global "acc"
                                         + Cast (TFloat,
                                                 Select (v "k" < i 20,
                                                         iload (i 0) (Binop (BAnd, v "k", i 15)),
                                                         MemSize))) ]) ]);
             Return (Some (Global "acc"
                           + Cast (TFloat, Binop (BAnd, Global "h", Long 0xFFFFFL)))) ] ])

let test_kitchen_sink_split () =
  check_identical "kitchen-sink (split i64)"
    (W.Instrument.instrument (kitchen_sink ()))

let test_kitchen_sink_nosplit () =
  check_identical "kitchen-sink (native i64)"
    (W.Instrument.instrument ~split_i64:false (kitchen_sink ()))

(* --- spec coverage sanity --------------------------------------------- *)

(** The differential runs above are only as strong as the specs they
    exercise: assert the tested modules, together, monomorphize hooks in
    every group the instrumenter can target (minus the trap-only ones a
    terminating corpus cannot execute). *)
let test_spec_coverage () =
  let groups = Hashtbl.create 32 in
  let collect (res : W.Instrument.result) =
    Array.iter
      (fun s -> Hashtbl.replace groups (W.Hook.group_of_spec s) ())
      res.W.Instrument.metadata.W.Metadata.hook_specs
  in
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       collect (W.Instrument.instrument e.module_))
    (Lazy.force corpus);
  collect (W.Instrument.instrument (kitchen_sink ()));
  let expect =
    [ W.Hook.G_if; G_br; G_br_if; G_br_table; G_begin; G_end; G_const;
      G_drop; G_select; G_unary; G_binary; G_local; G_global; G_load;
      G_store; G_memory_size; G_memory_grow; G_call; G_return ]
  in
  List.iter
    (fun g ->
       Alcotest.(check bool)
         (Printf.sprintf "group %s monomorphized" (W.Hook.group_name g))
         true (Hashtbl.mem groups g))
    expect

let suite =
  [ case "corpus: compiled = reference" test_corpus_differential;
    case "kitchen sink, split i64" test_kitchen_sink_split;
    case "kitchen sink, native i64" test_kitchen_sink_nosplit;
    case "spec coverage across tested modules" test_spec_coverage ]
