(** A spec-style corpus: small text-format programs with golden results,
    playing the role of the official suite the paper instruments (63
    programs, Section 4.3). Every program is executed uninstrumented and
    fully instrumented; results must agree with the golden value and the
    instrumented module must validate. *)

open Wasm
open Helpers

(* (name, wat source, arguments, expected results) *)
let corpus : (string * string * Value.t list * Value.t list) list =
  [
    ("const", {|(module (func (export "f") (result i32) i32.const -7))|}, [], [ i32 (-7) ]);
    ("add-overflow",
     {|(module (func (export "f") (result i32) i32.const 2147483647 i32.const 1 i32.add))|},
     [], [ Value.I32 Int32.min_int ]);
    ("mul-wrap",
     {|(module (func (export "f") (result i32) i32.const 65536 i32.const 65536 i32.mul))|},
     [], [ i32 0 ]);
    ("div-s-neg",
     {|(module (func (export "f") (result i32) i32.const -7 i32.const 2 i32.div_s))|},
     [], [ i32 (-3) ]);
    ("rem-sign",
     {|(module (func (export "f") (result i32) i32.const -5 i32.const 3 i32.rem_s))|},
     [], [ i32 (-2) ]);
    ("shr-u",
     {|(module (func (export "f") (result i32) i32.const -1 i32.const 28 i32.shr_u))|},
     [], [ i32 15 ]);
    ("shl-mask",
     {|(module (func (export "f") (result i32) i32.const 1 i32.const 33 i32.shl))|},
     [], [ i32 2 ]);
    ("rotl",
     {|(module (func (export "f") (result i32) i32.const 0x80000001 i32.const 1 i32.rotl))|},
     [], [ i32 3 ]);
    ("clz-zero", {|(module (func (export "f") (result i32) i32.const 0 i32.clz))|}, [], [ i32 32 ]);
    ("i64-mul",
     {|(module (func (export "f") (result i64) i64.const 123456789 i64.const 987654321 i64.mul))|},
     [], [ Value.I64 121932631112635269L ]);
    ("i64-shr-s",
     {|(module (func (export "f") (result i64) i64.const -16 i64.const 2 i64.shr_s))|},
     [], [ Value.I64 (-4L) ]);
    ("eqz", {|(module (func (export "f") (param i32) (result i32) local.get 0 i32.eqz))|},
     [ i32 0 ], [ i32 1 ]);
    ("lt-u-wraparound",
     {|(module (func (export "f") (result i32) i32.const -1 i32.const 1 i32.lt_u))|},
     [], [ i32 0 ]);
    ("f64-arith",
     {|(module (func (export "f") (result f64) f64.const 0.1 f64.const 0.2 f64.add))|},
     [], [ f64 (0.1 +. 0.2) ]);
    ("f64-min-nan",
     {|(module (func (export "f") (result f64) f64.const nan f64.const 1 f64.min))|},
     [], [ f64 Float.nan ]);
    ("f64-neg-zero",
     {|(module (func (export "f") (result f64) f64.const -0 f64.const 0 f64.min))|},
     [], [ f64 (-0.0) ]);
    ("f32-demote",
     {|(module (func (export "f") (result f32) f64.const 0.1 f32.demote_f64))|},
     [], [ Value.f32 0.1 ]);
    ("f64-floor",
     {|(module (func (export "f") (result f64) f64.const -2.5 f64.floor))|},
     [], [ f64 (-3.0) ]);
    ("nearest-even",
     {|(module (func (export "f") (result f64) f64.const 0.5 f64.nearest))|},
     [], [ f64 0.0 ]);
    ("sqrt", {|(module (func (export "f") (result f64) f64.const 6.25 f64.sqrt))|}, [], [ f64 2.5 ]);
    ("copysign",
     {|(module (func (export "f") (result f64) f64.const 3 f64.const -1 f64.copysign))|},
     [], [ f64 (-3.0) ]);
    ("trunc-sat-edge",
     {|(module (func (export "f") (result i32) f64.const 2147483520 i32.trunc_f64_s))|},
     [], [ i32 2147483520 ]);
    ("convert-u",
     {|(module (func (export "f") (result f64) i32.const -1 f64.convert_i32_u))|},
     [], [ f64 4294967295.0 ]);
    ("reinterpret",
     {|(module (func (export "f") (result i64) f64.const 2 i64.reinterpret_f64))|},
     [], [ Value.I64 0x4000000000000000L ]);
    ("extend-u",
     {|(module (func (export "f") (result i64) i32.const -1 i64.extend_i32_u))|},
     [], [ Value.I64 4294967295L ]);
    ("wrap",
     {|(module (func (export "f") (result i32) i64.const 4294967298 i32.wrap_i64))|},
     [], [ i32 2 ]);
    ("nested-blocks",
     {|(module
         (func (export "f") (result i32)
           (block (result i32)
             (block (result i32)
               i32.const 1
               br 1))))|},
     [], [ i32 1 ]);
    ("loop-counter",
     {|(module
         (func (export "f") (result i32)
           (local $n i32)
           block
             loop
               local.get $n
               i32.const 100
               i32.ge_s
               br_if 1
               local.get $n
               i32.const 7
               i32.add
               local.set $n
               br 0
             end
           end
           local.get $n))|},
     [], [ i32 105 ]);
    ("early-return",
     {|(module
         (func (export "f") (param i32) (result i32)
           (if (local.get 0) (then i32.const 11 return))
           i32.const 22))|},
     [ i32 1 ], [ i32 11 ]);
    ("select-types",
     {|(module
         (func (export "f") (result f64)
           f64.const 1.25 f64.const 2.5 i32.const 1 select))|},
     [], [ f64 1.25 ]);
    ("memory-pack",
     {|(module
         (memory 1)
         (func (export "f") (result i32)
           i32.const 0
           i32.const -2
           i32.store8
           i32.const 0
           i32.load8_u))|},
     [], [ i32 254 ]);
    ("memory-sign-extend",
     {|(module
         (memory 1)
         (func (export "f") (result i32)
           i32.const 0
           i32.const 128
           i32.store8
           i32.const 0
           i32.load8_s))|},
     [], [ i32 (-128) ]);
    ("memory-grow-size",
     {|(module
         (memory 1 3)
         (func (export "f") (result i32)
           i32.const 1
           memory.grow
           drop
           memory.size))|},
     [], [ i32 2 ]);
    ("memory-grow-fail",
     {|(module
         (memory 1 2)
         (func (export "f") (result i32)
           i32.const 5
           memory.grow))|},
     [], [ i32 (-1) ]);
    ("call-chain",
     {|(module
         (func $a (param i32) (result i32) (i32.add (local.get 0) (i32.const 1)))
         (func $b (param i32) (result i32) (call $a (i32.mul (local.get 0) (i32.const 2))))
         (func (export "f") (param i32) (result i32) (call $b (local.get 0))))|},
     [ i32 20 ], [ i32 41 ]);
    ("mutual-recursion",
     {|(module
         (func $even (param i32) (result i32)
           (if (result i32) (i32.eqz (local.get 0))
             (then i32.const 1)
             (else (call $odd (i32.sub (local.get 0) (i32.const 1))))))
         (func $odd (param i32) (result i32)
           (if (result i32) (i32.eqz (local.get 0))
             (then i32.const 0)
             (else (call $even (i32.sub (local.get 0) (i32.const 1))))))
         (func (export "f") (param i32) (result i32) (call $even (local.get 0))))|},
     [ i32 10 ], [ i32 1 ]);
    ("global-state",
     {|(module
         (global $g (mut i64) (i64.const 40))
         (func (export "f") (result i64)
           global.get $g
           i64.const 2
           i64.add
           global.set $g
           global.get $g))|},
     [], [ Value.I64 42L ]);
    ("tee",
     {|(module
         (func (export "f") (param i32) (result i32)
           (local $t i32)
           local.get 0
           local.tee $t
           local.get $t
           i32.add))|},
     [ i32 21 ], [ i32 42 ]);
    ("drop-keeps-order",
     {|(module
         (func (export "f") (result i32)
           i32.const 1
           i32.const 2
           drop))|},
     [], [ i32 1 ]);
    ("unreachable-after-br",
     {|(module
         (func (export "f") (result i32)
           (block (result i32)
             i32.const 5
             br 0
             unreachable)))|},
     [], [ i32 5 ]);
    (* post-MVP extension operators *)
    ("extend8_s",
     {|(module (func (export "f") (result i32) i32.const 0x80 i32.extend8_s))|},
     [], [ i32 (-128) ]);
    ("extend16_s",
     {|(module (func (export "f") (result i32) i32.const 0x8000 i32.extend16_s))|},
     [], [ i32 (-32768) ]);
    ("extend8_s-positive",
     {|(module (func (export "f") (result i32) i32.const 0x17F i32.extend8_s))|},
     [], [ i32 127 ]);
    ("i64-extend32_s",
     {|(module (func (export "f") (result i64) i64.const 0x80000000 i64.extend32_s))|},
     [], [ Value.I64 (-2147483648L) ]);
    ("trunc-sat-nan",
     {|(module (func (export "f") (result i32) f64.const nan i32.trunc_sat_f64_s))|},
     [], [ i32 0 ]);
    ("trunc-sat-clamp-high",
     {|(module (func (export "f") (result i32) f64.const 1e300 i32.trunc_sat_f64_s))|},
     [], [ Value.I32 Int32.max_int ]);
    ("trunc-sat-clamp-low",
     {|(module (func (export "f") (result i32) f64.const -1e300 i32.trunc_sat_f64_s))|},
     [], [ Value.I32 Int32.min_int ]);
    ("trunc-sat-u-negative",
     {|(module (func (export "f") (result i32) f64.const -5.5 i32.trunc_sat_f64_u))|},
     [], [ i32 0 ]);
    ("trunc-sat-u-max",
     {|(module (func (export "f") (result i32) f64.const 1e300 i32.trunc_sat_f64_u))|},
     [], [ Value.I32 (-1l) ]);
    ("trunc-sat-i64",
     {|(module (func (export "f") (result i64) f64.const -1e300 i64.trunc_sat_f64_s))|},
     [], [ Value.I64 Int64.min_int ]);
    (* f32 arithmetic rounds to single precision *)
    ("f32-add",
     {|(module (func (export "f") (result f32) f32.const 1.5 f32.const 2.25 f32.add))|},
     [], [ Value.f32 3.75 ]);
    ("f32-mul-rounding",
     {|(module (func (export "f") (result f32) f32.const 0.1 f32.const 10 f32.mul))|},
     [], [ Value.f32_bits (Int32.bits_of_float (Int32.float_of_bits (Int32.bits_of_float 0.1) *. 10.0)) ]);
    ("f32-sqrt",
     {|(module (func (export "f") (result f32) f32.const 2 f32.sqrt))|},
     [], [ Value.f32 (sqrt 2.0) ]);
    ("f32-compare",
     {|(module (func (export "f") (result i32) f32.const 1.5 f32.const 1.5 f32.le))|},
     [], [ i32 1 ]);
    ("f32-nan-compare",
     {|(module (func (export "f") (result i32) f32.const nan f32.const nan f32.eq))|},
     [], [ i32 0 ]);
    (* i64 comparisons and shifts *)
    ("i64-lt-u",
     {|(module (func (export "f") (result i32) i64.const -1 i64.const 1 i64.lt_u))|},
     [], [ i32 0 ]);
    ("i64-ge-s",
     {|(module (func (export "f") (result i32) i64.const -9223372036854775808 i64.const 0 i64.ge_s))|},
     [], [ i32 0 ]);
    ("i64-rotl",
     {|(module (func (export "f") (result i64) i64.const 1 i64.const 63 i64.rotl))|},
     [], [ Value.I64 Int64.min_int ]);
    ("i64-clz",
     {|(module (func (export "f") (result i64) i64.const 1 i64.clz))|},
     [], [ Value.I64 63L ]);
    (* packed i64 memory accesses *)
    ("i64-store32-load32",
     {|(module
         (memory 1)
         (func (export "f") (result i64)
           i32.const 0
           i64.const -1
           i64.store32
           i32.const 0
           i64.load32_u))|},
     [], [ Value.I64 4294967295L ]);
    ("i64-load16-sign",
     {|(module
         (memory 1)
         (func (export "f") (result i64)
           i32.const 0
           i64.const 0x8000
           i64.store16
           i32.const 0
           i64.load16_s))|},
     [], [ Value.I64 (-32768L) ]);
    (* control flow corners *)
    ("block-result-through-br_if",
     {|(module
         (func (export "f") (param i32) (result i32)
           (block (result i32)
             i32.const 7
             local.get 0
             br_if 0
             drop
             i32.const 9)))|},
     [ i32 1 ], [ i32 7 ]);
    ("if-inside-loop",
     {|(module
         (func (export "f") (param i32) (result i32)
           (local $acc i32)
           block
             loop
               local.get 0
               i32.eqz
               br_if 1
               (if (i32.rem_s (local.get 0) (i32.const 2))
                 (then local.get $acc i32.const 1 i32.add local.set $acc))
               local.get 0
               i32.const 1
               i32.sub
               local.set 0
               br 0
             end
           end
           local.get $acc))|},
     [ i32 10 ], [ i32 5 ]);
    ("nested-br_table",
     {|(module
         (func (export "f") (param i32) (result i32)
           (local $r i32)
           i32.const 99
           local.set $r
           (block $exit
             (block $b1
               (block $b0
                 local.get 0
                 br_table $b0 $b1 $exit)
               i32.const 10
               local.set $r
               br $exit)
             i32.const 20
             local.set $r)
           local.get $r
           i32.const 1
           i32.add))|},
     [ i32 0 ], [ i32 11 ]);
    ("select-after-call",
     {|(module
         (func $one (result i32) i32.const 1)
         (func (export "f") (result f64)
           f64.const 2.5
           f64.const 3.5
           call $one
           select))|},
     [], [ f64 2.5 ]);
    ("start-initialises",
     {|(module
         (memory 1)
         (global $g (mut i32) (i32.const 0))
         (func $boot (global.set $g (i32.const 41)))
         (start $boot)
         (func (export "f") (result i32)
           global.get $g
           i32.const 1
           i32.add))|},
     [], [ i32 42 ]);
    ("deep-block-nesting",
     {|(module
         (func (export "f") (result i32)
           (block (result i32)
             (block (result i32)
               (block (result i32)
                 (block (result i32)
                   i32.const 3
                   br 2))))
           i32.const 4
           i32.add))|},
     [], [ i32 7 ]);
    ("loop-with-result",
     {|(module
         (func (export "f") (result i32)
           (loop (result i32) i32.const 5)
           i32.const 2
           i32.mul))|},
     [], [ i32 10 ]);
    ("i64-div-u-large",
     {|(module (func (export "f") (result i64) i64.const -1 i64.const 3 i64.div_u))|},
     [], [ Value.I64 6148914691236517205L ]);
    ("i64-rem-u",
     {|(module (func (export "f") (result i64) i64.const -1 i64.const 10 i64.rem_u))|},
     [], [ Value.I64 5L ]);
    ("tee-chain",
     {|(module
         (func (export "f") (result i32)
           (local $a i32) (local $b i32)
           i32.const 6
           local.tee $a
           local.tee $b
           local.get $a
           i32.add
           local.get $b
           i32.add))|},
     [], [ i32 18 ]);
    ("store16-load16",
     {|(module
         (memory 1)
         (func (export "f") (result i32)
           i32.const 2
           i32.const 0x1F0F3
           i32.store16
           i32.const 2
           i32.load16_u))|},
     [], [ i32 0xF0F3 ]);
    ("immutable-global",
     {|(module
         (global $c i32 (i32.const 11))
         (func (export "f") (result i32)
           global.get $c
           global.get $c
           i32.mul))|},
     [], [ i32 121 ]);
    ("select-f32",
     {|(module
         (func (export "f") (param i32) (result f32)
           f32.const 1.5
           f32.const -1.5
           local.get 0
           select))|},
     [ i32 0 ], [ Value.f32 (-1.5) ]);
    ("br-value-from-if",
     {|(module
         (func (export "f") (param i32) (result i32)
           (block (result i32)
             (if (result i32) (local.get 0)
               (then i32.const 1 br 1)
               (else i32.const 2)))))|},
     [ i32 1 ], [ i32 1 ]);
    ("f64-max-neg-zero",
     {|(module (func (export "f") (result f64) f64.const -0 f64.const 0 f64.max))|},
     [], [ f64 0.0 ]);
    ("i32-rotr",
     {|(module (func (export "f") (result i32) i32.const 3 i32.const 1 i32.rotr))|},
     [], [ Value.I32 0x80000001l ]);
  ]

(* programs expected to trap, with the trap message fragment *)
let trapping : (string * string * string) list =
  [
    ("div-zero", {|(module (func (export "f") (result i32) i32.const 1 i32.const 0 i32.div_s))|},
     "divide by zero");
    ("div-overflow",
     {|(module (func (export "f") (result i32) i32.const -2147483648 i32.const -1 i32.div_s))|},
     "integer overflow");
    ("unreachable", {|(module (func (export "f") unreachable))|}, "unreachable");
    ("oob", {|(module (memory 1) (func (export "f") (result i32) i32.const 70000 i32.load))|},
     "out of bounds");
    ("trunc-nan",
     {|(module (func (export "f") (result i32) f64.const nan i32.trunc_f64_s))|},
     "invalid conversion");
    ("trunc-overflow",
     {|(module (func (export "f") (result i32) f64.const 1e300 i32.trunc_f64_s))|},
     "integer overflow");
    ("uninitialized-table",
     {|(module
         (type $s (func))
         (table 2 funcref)
         (func (export "f") i32.const 1 call_indirect (type $s)))|},
     "uninitialized element");
    ("indirect-type-mismatch",
     {|(module
         (type $takes_arg (func (param i32) (result i32)))
         (table 1 funcref)
         (elem (i32.const 0) $noargs)
         (func $noargs (result i32) i32.const 1)
         (func (export "f") (result i32)
           i32.const 7
           i32.const 0
           call_indirect (type $takes_arg)))|},
     "indirect call type mismatch");
    ("oob-store",
     {|(module
         (memory 1)
         (func (export "f")
           i32.const 65535
           i64.const 1
           i64.store))|},
     "out of bounds");
    ("i64-div-zero",
     {|(module (func (export "f") (result i64) i64.const 9 i64.const 0 i64.div_u))|},
     "divide by zero");
  ]

let run_original src args =
  let m = Wat_parse.parse src in
  Validate.validate_module m;
  Interp.invoke_export (Interp.instantiate ~imports:[] m) "f" args

let run_instrumented src args =
  let m = Wat_parse.parse src in
  let res = Wasabi.Instrument.instrument m in
  Validate.validate_module res.Wasabi.Instrument.instrumented;
  let inst, _ = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  Interp.invoke_export inst "f" args

let golden_cases =
  List.map
    (fun (name, src, args, expected) ->
       Alcotest.test_case name `Quick (fun () ->
         check_values (name ^ " (original)") expected (run_original src args);
         check_values (name ^ " (instrumented)") expected (run_instrumented src args)))
    corpus

let trap_cases =
  List.map
    (fun (name, src, fragment) ->
       Alcotest.test_case ("trap: " ^ name) `Quick (fun () ->
         check_traps (name ^ " original") fragment (fun () -> run_original src []);
         check_traps (name ^ " instrumented") fragment (fun () -> run_instrumented src [])))
    trapping

let suite = golden_cases @ trap_cases
