(** Malformed-binary corpus: crafted bad inputs asserting the exact
    structured decode error (taxonomy code, and where it matters, the
    byte offset). These pin down the hardened decoder's behaviour on
    adversarial input — each case is one of the failure shapes the
    mutation fuzzer keeps rediscovering. *)

open Wasm

(* --- tiny binary-writer DSL --- *)

let uleb n =
  let buf = Buffer.create 5 in
  let rec go n =
    let b = n land 0x7F and rest = n lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr b)
    else begin
      Buffer.add_char buf (Char.chr (b lor 0x80));
      go rest
    end
  in
  go n;
  Buffer.contents buf

let byte b = String.make 1 (Char.chr b)
let section id payload = byte id ^ uleb (String.length payload) ^ payload
let vec items = uleb (List.length items) ^ String.concat "" items
let header = "\x00asm\x01\x00\x00\x00"
let module_ sections = header ^ String.concat "" sections

(* one [] -> [] function type *)
let type_section = section 1 (vec [ "\x60\x00\x00" ])
let func_section = section 3 (vec [ uleb 0 ])

(* a module with one function whose (unterminated) body is [body] *)
let module_with_body body =
  let entry = uleb (String.length body + 1) ^ vec [] ^ body in
  module_ [ type_section; func_section; section 10 (vec [ entry ]) ]

(* --- assertion helpers --- *)

let check_code name expected bin =
  match Decode.decode bin with
  | _ -> Alcotest.failf "%s: decoded instead of raising [%s]" name expected
  | exception Decode.Decode_error e -> Alcotest.(check string) name expected e.Error.code
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Decode_error [%s]" name (Printexc.to_string e)
      expected

let check_offset name expected bin =
  match Decode.decode bin with
  | _ -> Alcotest.failf "%s: decoded" name
  | exception Decode.Decode_error e ->
    Alcotest.(check (option int)) name (Some expected) e.Error.offset

(* --- the corpus --- *)

let test_header_errors () =
  check_code "empty input" "unexpected-eof" "";
  check_code "bad magic" "bad-magic" "\x00foo\x01\x00\x00\x00";
  check_code "bad version" "bad-version" "\x00asm\x02\x00\x00\x00";
  check_code "truncated header" "unexpected-eof" "\x00asm\x01\x00";
  check_offset "bad magic offset" 0 "\x00bad\x01\x00\x00\x00";
  check_offset "bad version offset" 4 "\x00asm\x09\x00\x00\x00"

let test_section_structure () =
  check_code "truncated section" "unexpected-eof" (header ^ "\x01\x0A");
  check_code "truncated size LEB" "unexpected-eof" (header ^ "\x01\x80");
  check_code "over-long size LEB" "malformed-leb128"
    (header ^ "\x01\x80\x80\x80\x80\x80\x80\x00");
  check_code "out-of-order sections" "section-order"
    (module_ [ section 5 (vec [ "\x00" ^ uleb 1 ]); type_section ]);
  check_code "duplicate section" "section-order" (module_ [ type_section; type_section ]);
  check_code "invalid section id" "bad-section-id" (module_ [ section 13 "" ]);
  check_code "section size mismatch" "size-mismatch"
    (module_ [ section 1 (vec [ "\x60\x00\x00" ] ^ "\x00") ]);
  check_code "function/code count mismatch" "func-code-mismatch"
    (module_ [ type_section; func_section ])

let test_vec_and_types () =
  (* a 2-byte payload claiming a 1000-element vector: must be rejected
     before any allocation *)
  check_code "vec longer than input" "vec-too-long" (module_ [ section 1 (uleb 1000) ]);
  check_code "bad functype tag" "bad-functype-tag" (module_ [ section 1 (vec [ "\x61" ]) ]);
  check_code "bad value type" "bad-value-type"
    (module_ [ section 1 (vec [ "\x60" ^ vec [ "\x7A" ] ]) ]);
  check_code "bad limits flag" "bad-limits-flag" (module_ [ section 5 (vec [ "\x02\x01" ]) ]);
  check_code "bad mutability" "bad-mutability" (module_ [ section 6 (vec [ "\x7F\x02" ]) ]);
  check_code "bad elemtype" "bad-elemtype" (module_ [ section 4 (vec [ "\x71" ]) ]);
  check_code "bad import kind" "bad-import-kind"
    (module_ [ section 2 (vec [ uleb 0 ^ uleb 0 ^ "\x07" ]) ]);
  check_code "bad export kind" "bad-export-kind"
    (module_ [ section 7 (vec [ uleb 0 ^ "\x09" ]) ])

let test_code_bodies () =
  check_code "bad opcode" "bad-opcode" (module_with_body "\x1C");
  check_code "bad 0xFC sub-opcode" "bad-subopcode" (module_with_body "\xFC\x0A");
  check_code "non-zero table index" "nonzero-table-index" (module_with_body "\x11\x00\x01");
  check_code "non-zero memory index" "nonzero-memory-index" (module_with_body "\x3F\x01");
  check_code "truncated body" "unexpected-eof" (module_with_body "\x41");
  (* code entry whose declared size exceeds the input *)
  check_code "oversized code entry" "unexpected-eof"
    (module_ [ type_section; func_section; section 10 (uleb 1 ^ uleb 100) ])

let test_resource_limits () =
  (* nesting depth: default limit is 1024 open blocks *)
  let deep = String.concat "" (List.init 1100 (fun _ -> "\x02\x40")) in
  check_code "nesting too deep" "nesting-too-deep" (module_with_body deep);
  (* just inside the custom limit decodes fine *)
  let shallow =
    String.concat "" (List.init 10 (fun _ -> "\x02\x40"))
    ^ String.concat "" (List.init 10 (fun _ -> "\x0B"))
    ^ "\x0B" (* the expression's own End *)
  in
  let m = Decode.decode (module_with_body shallow) in
  Alcotest.(check int) "shallow nesting decodes" 1 (List.length m.Ast.funcs);
  (* a tighter configured limit rejects it *)
  (match
     Decode.decode
       ~limits:{ Decode.default_limits with Decode.max_nesting = 5 }
       (module_with_body shallow)
   with
   | _ -> Alcotest.fail "tight nesting limit not enforced"
   | exception Decode.Decode_error e ->
     Alcotest.(check string) "tight nesting limit" "nesting-too-deep" e.Error.code);
  (* locals: two run-length groups summing to 100_000 in a few bytes *)
  let locals = vec [ uleb 50_000 ^ "\x7F"; uleb 50_000 ^ "\x7F" ] in
  let entry = uleb (String.length locals + 1) ^ locals ^ "\x0B" in
  check_code "too many locals" "too-many-locals"
    (module_ [ type_section; func_section; section 10 (vec [ entry ]) ])

let test_taxonomy () =
  (* exceptions rebound across modules are the same exception *)
  (try Error.decode_error ~code:"x" "boom"
   with Decode.Decode_error e -> Alcotest.(check string) "rebinding" "x" e.Error.code);
  (* classify covers the full structured surface, and nothing else *)
  let code e = match Error.classify e with Some t -> t.Error.code | None -> "<crash>" in
  Alcotest.(check string) "trap" "divide-by-zero" (code (Value.Trap "integer divide by zero"));
  Alcotest.(check string) "exhaustion" "resource-exhausted" (code (Interp.Exhaustion "out of fuel"));
  Alcotest.(check string) "call depth" "resource-exhausted"
    (code (Interp.Exhaustion "call stack exhausted"));
  Alcotest.(check string) "invalid" "invalid-module" (code (Validate.Invalid "x"));
  Alcotest.(check string) "link" "link" (code (Interp.Link_error "x"));
  Alcotest.(check string) "crash is unclassified" "<crash>" (code (Invalid_argument "x"));
  Alcotest.(check string) "failure is unclassified" "<crash>" (code (Failure "x"));
  (* exit codes are distinct per phase *)
  let ec e = match Error.classify e with Some t -> Error.exit_code t | None -> 0 in
  Alcotest.(check (list int)) "exit codes" [ 4; 5; 6; 7 ]
    [ ec (Validate.Invalid "x"); ec (Interp.Link_error "x");
      ec (Value.Trap "unreachable executed"); ec (Interp.Exhaustion "out of fuel") ];
  (try ignore (Decode.decode "") with Decode.Decode_error e ->
    Alcotest.(check int) "decode exit code" 3 (Error.exit_code e));
  (* hook-dispatch argument errors: structured, own code and exit code *)
  (try Error.hook_error ~code:"bad-hook-args" "hook %d: wrong arity" 3
   with Wasabi.Runtime.Bad_hook_args e ->
     Alcotest.(check string) "hook error code" "bad-hook-args" e.Error.code;
     Alcotest.(check int) "hook exit code" 9 (Error.exit_code e);
     Alcotest.(check string) "hook classify" "bad-hook-args"
       (code (Error.Hook_error e)))

let test_control_errors () =
  (* compute_jumps raises structured control errors on unbalanced bodies *)
  let check name body =
    match Interp.compute_jumps (Array.of_list body) with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Decode.Decode_error e -> Alcotest.(check string) name "control" e.Error.code
  in
  check "unbalanced end" [ Ast.End; Ast.End ];
  check "unclosed block" [ Ast.Block None ];
  check "else without if" [ Ast.Else ]

let suite =
  let case name f = Alcotest.test_case name `Quick f in
  [
    case "header errors" test_header_errors;
    case "section structure" test_section_structure;
    case "vectors and types" test_vec_and_types;
    case "code bodies" test_code_bodies;
    case "resource limits" test_resource_limits;
    case "error taxonomy" test_taxonomy;
    case "control errors" test_control_errors;
  ]
