(** Extension components: JS runtime generation (Figure 2's "generate"
    arrow) and the record/replay trace analysis. *)

open Minic
open Mc_ast
open Mc_ast.Dsl
module W = Wasabi

let case name fn = Alcotest.test_case name `Quick fn

let sample_program =
  Mc_compile.compile_checked
    (program
       ~table:[ "helper" ]
       [ func "helper" ~params:[] ~result:TInt ~export:false [ Return (Some (i 7)) ];
         func "run" ~params:[] ~result:TFloat ~locals:[ ("k", TInt); ("acc", TInt); ("h", TLong) ]
           [ "h" := Long 7L;
             For ("k", i 0, i 5,
                  [ "acc" := v "acc" + CallIndirect (i 0, [], Some TInt);
                    "h" := Binop (Mul, v "h", Long 0x100000001b3L);
                    istore (i 0) (v "k") (v "acc") ]);
             Return (Some (Cast (TFloat, v "acc") + Cast (TFloat, Binop (BAnd, v "h", Long 0xFFL)))) ] ])

(* --- JS codegen -------------------------------------------------------- *)

let test_js_mentions_all_hooks () =
  let res = W.Instrument.instrument sample_program in
  let js = W.Js_codegen.generate res in
  Array.iter
    (fun spec ->
       let id =
         String.map
           (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
           (W.Hook.name spec)
       in
       if not (Helpers.contains js (id ^ ": function")) then
         Alcotest.failf "generated JS lacks hook %s" id)
    res.W.Instrument.metadata.W.Metadata.hook_specs

let test_js_structure () =
  let res = W.Instrument.instrument sample_program in
  let js = W.Js_codegen.generate res in
  let count c = String.fold_left (fun acc ch -> if Stdlib.( = ) ch c then Stdlib.( + ) acc 1 else acc) 0 js in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced parens" (count '(') (count ')');
  Alcotest.(check bool) "i64 halves joined with long.js" true
    (Helpers.contains js "new Long(");
  Alcotest.(check bool) "module info present" true (Helpers.contains js "module: { info:");
  Alcotest.(check bool) "indirect calls resolved" true (Helpers.contains js "resolveTableIdx");
  Alcotest.(check bool) "import module documented" true
    (Helpers.contains js W.Hook.import_module)

let test_js_no_split () =
  let res = W.Instrument.instrument ~split_i64:false sample_program in
  let js = W.Js_codegen.generate res in
  Alcotest.(check bool) "no joins when splitting is off" false (Helpers.contains js "new Long(")

let test_js_br_table_metadata () =
  let p =
    program
      [ func "run" ~params:[] ~result:TFloat ~locals:[ ("r", TInt) ]
          [ Switch (i 1, [ [ "r" := i 1 ]; [ "r" := i 2 ] ], [ "r" := i 3 ]);
            Return (Some (Cast (TFloat, v "r"))) ] ]
  in
  let res = W.Instrument.instrument (Mc_compile.compile_checked p) in
  let js = W.Js_codegen.generate res in
  Alcotest.(check bool) "brTables table present" true (Helpers.contains js "brTables");
  Alcotest.(check bool) "has a resolved entry" true (Helpers.contains js "endedDefault")

(* --- trace record/replay ---------------------------------------------- *)

let record_trace m =
  let trace = Analyses.Trace.create () in
  let res = W.Instrument.instrument m in
  let inst, _ = W.Runtime.instantiate res (Analyses.Trace.analysis trace) in
  let result = Wasm.Interp.invoke_export inst "run" [] in
  (trace, result)

let test_trace_replay_equals_live () =
  (* replaying the trace into instruction-mix gives the same counts as a
     live run of instruction-mix *)
  let trace, _ = record_trace sample_program in
  let live = Analyses.Instruction_mix.create () in
  let res = W.Instrument.instrument sample_program in
  let inst, _ = W.Runtime.instantiate res (Analyses.Instruction_mix.analysis live) in
  ignore (Wasm.Interp.invoke_export inst "run" []);
  let replayed = Analyses.Instruction_mix.create () in
  Analyses.Trace.replay trace (Analyses.Instruction_mix.analysis replayed);
  Alcotest.(check int) "same total" (Analyses.Instruction_mix.total live)
    (Analyses.Instruction_mix.total replayed);
  List.iter
    (fun (op, n) ->
       Alcotest.(check int) op n (Analyses.Instruction_mix.count replayed op))
    (Analyses.Instruction_mix.sorted live)

let test_trace_replay_call_graph () =
  let trace, _ = record_trace sample_program in
  let cg = Analyses.Call_graph.create () in
  Analyses.Trace.replay trace (Analyses.Call_graph.analysis cg);
  (* run=1 calls helper=0 through the table *)
  Alcotest.(check bool) "indirect edge recovered offline" true
    (Analyses.Call_graph.has_edge cg 1 0)

let test_trace_log_renders () =
  let trace, _ = record_trace sample_program in
  let log = Analyses.Trace.to_log trace in
  Alcotest.(check bool) "nonempty" true (Stdlib.( > ) (String.length log) 100);
  Alcotest.(check bool) "has store events" true (Helpers.contains log "i32.store");
  Alcotest.(check bool) "has i64 values" true (Helpers.contains log "i64:");
  Alcotest.(check int) "one line per event" (Analyses.Trace.length trace)
    (List.length (String.split_on_char '\n' log))

let suite =
  [
    case "JS: every hook generated" test_js_mentions_all_hooks;
    case "JS: structure and long.js joins" test_js_structure;
    case "JS: no joins without splitting" test_js_no_split;
    case "JS: br_table metadata embedded" test_js_br_table_metadata;
    case "trace: replay = live (instruction mix)" test_trace_replay_equals_live;
    case "trace: offline call graph" test_trace_replay_call_graph;
    case "trace: text log" test_trace_log_renders;
  ]
