(** Synthetic stand-ins for the paper's two real-world programs (the
    Unreal Engine 4 "Zen Garden" demo and the PSPDFKit benchmark), which
    are proprietary binaries we cannot ship.

    What matters for the evaluation's shape is that these programs are
    {e diverse}: many small functions, direct and indirect calls, byte-
    granular memory traffic, integer hashing (i64), f32 and f64 math, and
    branchy control flow — in contrast to PolyBench's pure numeric loop
    nests. Both export [run : () -> f64] returning a deterministic
    checksum. *)

open Minic
open Mc_ast
open Mc_ast.Dsl

let fl e = Cast (TFloat, e)

(* ------------------------------------------------------------------ *)
(* "pdfkit": text layout, compression, and checksumming                *)
(* ------------------------------------------------------------------ *)

(** Memory map: document bytes at 0; line-length table at 32 KiB; match
    table at 40 KiB; glyph histogram at 48 KiB. *)
let pdfkit ?(doc_len = 2000) () =
  let doc = 0 and lines = 32768 and histo = 49152 in
  let funcs =
    [
      (* xorshift-style PRNG over an i64 global *)
      func "next_rand" ~params:[] ~result:TLong ~export:false
        [ SetGlobal ("rng", Binop (BXor, Global "rng", Binop (Shl, Global "rng", Long 13L)));
          SetGlobal ("rng", Binop (BXor, Global "rng", Binop (ShrU, Global "rng", Long 7L)));
          SetGlobal ("rng", Binop (BXor, Global "rng", Binop (Shl, Global "rng", Long 17L)));
          Return (Some (Global "rng")) ];
      (* generate a pseudo-document of letters, spaces and newlines *)
      func "gen_doc" ~params:[ ("len", TInt) ] ~export:false
        ~locals:[ ("k", TInt); ("r", TInt) ]
        [ For ("k", i 0, v "len",
               [ "r" := Cast (TInt, Binop (BAnd, Call ("next_rand", []), Long 63L));
                 If (v "r" < i 10,
                     [ Store8 (i doc + v "k", i 32) ],  (* space *)
                     [ If (v "r" = i 10,
                           [ Store8 (i doc + v "k", i 10) ],  (* newline *)
                           [ Store8 (i doc + v "k", i 97 + Binop (Rem, v "r", i 26)) ]) ]) ]) ];
      (* character class: 0 space, 1 newline, 2 letter, 3 other *)
      func "char_class" ~params:[ ("c", TInt) ] ~result:TInt ~export:false
        [ If (v "c" = i 32, [ Return (Some (i 0)) ], []);
          If (v "c" = i 10, [ Return (Some (i 1)) ], []);
          If ((v "c" >= i 97) && (v "c" <= i 122), [ Return (Some (i 2)) ], []);
          Return (Some (i 3)) ];
      (* count words using a small state machine over char classes *)
      func "count_words" ~params:[ ("len", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("k", TInt); ("in_word", TInt); ("words", TInt); ("cls", TInt) ]
        [ "in_word" := i 0;
          "words" := i 0;
          For ("k", i 0, v "len",
               [ "cls" := Call ("char_class", [ Load8u (i doc + v "k") ]);
                 Switch (v "cls",
                         [ [ "in_word" := i 0 ];  (* space *)
                           [ "in_word" := i 0 ];  (* newline *)
                           [ If (Unop (Not, v "in_word"),
                                 [ "words" := v "words" + i 1; "in_word" := i 1 ], []) ] ],
                         [ (* other: keep state *) ]) ]);
          Return (Some (v "words")) ];
      (* greedy word wrap: store each line's length, return line count *)
      func "layout" ~params:[ ("len", TInt); ("width", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("k", TInt); ("col", TInt); ("line", TInt); ("c", TInt) ]
        [ "col" := i 0;
          "line" := i 0;
          For ("k", i 0, v "len",
               [ "c" := Load8u (i doc + v "k");
                 If ((v "c" = i 10) || (v "col" >= v "width"),
                     [ istore (i lines) (v "line") (v "col");
                       "line" := v "line" + i 1;
                       "col" := i 0 ],
                     [ "col" := v "col" + i 1 ]) ]);
          istore (i lines) (v "line") (v "col");
          Return (Some (v "line" + i 1)) ];
      (* LZ77-style match length at two positions *)
      func "match_len" ~params:[ ("a", TInt); ("b", TInt); ("limit", TInt) ] ~result:TInt
        ~export:false ~locals:[ ("k", TInt) ]
        [ "k" := i 0;
          While ((v "k" < v "limit")
                 && (Load8u (i doc + v "a" + v "k") = Load8u (i doc + v "b" + v "k")),
                 [ "k" := v "k" + i 1 ]);
          Return (Some (v "k")) ];
      (* back-window compression: returns the "compressed" size *)
      func "compress" ~params:[ ("len", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("pos", TInt); ("cand", TInt); ("best", TInt); ("size", TInt);
                  ("window", TInt); ("l", TInt) ]
        [ "pos" := i 0;
          "size" := i 0;
          While (v "pos" < v "len",
                 [ "best" := i 0;
                   "window" := Select (v "pos" < i 32, v "pos", i 32);
                   For ("cand", v "pos" - v "window", v "pos",
                        [ "l" := Call ("match_len",
                                       [ v "cand"; v "pos"; v "len" - v "pos" ]);
                          If (v "l" > v "best", [ "best" := v "l" ], []) ]);
                   If (v "best" >= i 3,
                       [ "size" := v "size" + i 2; "pos" := v "pos" + v "best" ],
                       [ "size" := v "size" + i 1; "pos" := v "pos" + i 1 ]) ]);
          Return (Some (v "size")) ];
      (* bitwise CRC-32 *)
      func "crc32" ~params:[ ("len", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("k", TInt); ("bit", TInt); ("crc", TInt) ]
        [ "crc" := i (-1);
          For ("k", i 0, v "len",
               [ "crc" := Binop (BXor, v "crc", Load8u (i doc + v "k"));
                 For ("bit", i 0, i 8,
                      [ "crc" := Select (Binop (BAnd, v "crc", i 1) <> i 0,
                                         Binop (BXor, Binop (ShrU, v "crc", i 1),
                                                Int 0xEDB88320l),
                                         Binop (ShrU, v "crc", i 1)) ]) ]);
          Return (Some (Binop (BXor, v "crc", i (-1)))) ];
      (* FNV-1a over the document (64-bit) *)
      func "hash64" ~params:[ ("len", TInt) ] ~result:TLong ~export:false
        ~locals:[ ("k", TInt); ("h", TLong) ]
        [ "h" := Long 0xcbf29ce484222325L;
          For ("k", i 0, v "len",
               [ "h" := Binop (BXor, v "h", Cast (TLong, Load8u (i doc + v "k")));
                 "h" := Binop (Mul, v "h", Long 0x100000001b3L) ]);
          Return (Some (v "h")) ];
      (* glyph "rendering": f32 advance widths accumulated per line *)
      func "render" ~params:[ ("nlines", TInt) ] ~result:TFloat ~export:false
        ~locals:[ ("k", TInt); ("w", TSingle); ("total", TFloat) ]
        [ "total" := f 0.0;
          For ("k", i 0, v "nlines",
               [ "w" := Binop (Mul, Cast (TSingle, iload (i lines) (v "k")), Single 7.25);
                 fstore (i histo) (Binop (Rem, v "k", i 64)) (Cast (TFloat, v "w"));
                 "total" := v "total" + Cast (TFloat, v "w") ]);
          Return (Some (v "total")) ];
      (* filters dispatched indirectly, as a PDF pipeline would *)
      func "filter_crc" ~params:[] ~result:TInt ~export:false
        [ Return (Some (Call ("crc32", [ Global "doclen" ]))) ];
      func "filter_words" ~params:[] ~result:TInt ~export:false
        [ Return (Some (Call ("count_words", [ Global "doclen" ]))) ];
      func "filter_compress" ~params:[] ~result:TInt ~export:false
        [ Return (Some (Call ("compress", [ Global "doclen" ]))) ];
      (* linked-in but never called: the inverse/diagnostic paths a real
         PDF library ships and a benchmark never exercises (alternative
         checksum, decompression probe, its table-typed filter wrapper) *)
      func "adler32" ~params:[ ("len", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("k", TInt); ("a", TInt); ("b", TInt) ]
        [ "a" := i 1;
          "b" := i 0;
          For ("k", i 0, v "len",
               [ "a" := Binop (Rem, v "a" + Load8u (i doc + v "k"), i 65521);
                 "b" := Binop (Rem, v "b" + v "a", i 65521) ]);
          Return (Some (Binop (BOr, Binop (Shl, v "b", i 16), v "a"))) ];
      func "decompress_probe" ~params:[ ("len", TInt) ] ~result:TInt ~export:false
        ~locals:[ ("pos", TInt); ("out", TInt) ]
        [ "pos" := i 0;
          "out" := i 0;
          While (v "pos" < v "len",
                 [ "out" := v "out"
                            + Call ("match_len", [ i 0; v "pos"; v "len" - v "pos" ]) + i 1;
                   "pos" := v "pos" + i 2 ]);
          Return (Some (v "out")) ];
      func "filter_adler" ~params:[] ~result:TInt ~export:false
        [ Return (Some (Call ("adler32", [ Global "doclen" ]))) ];
      func "run" ~params:[] ~result:TFloat
        ~locals:[ ("nlines", TInt); ("k", TInt); ("acc", TFloat) ]
        [ SetGlobal ("rng", Long 88172645463325252L);
          Expr (Call ("gen_doc", [ Global "doclen" ]));
          "nlines" := Call ("layout", [ Global "doclen"; i 60 ]);
          "acc" := Call ("render", [ v "nlines" ]);
          (* run the three filters through the table *)
          For ("k", i 0, i 3,
               [ "acc" := v "acc"
                          + fl (Binop (BAnd, CallIndirect (v "k", [], Some TInt),
                                       Int 0xFFFFl)) ]);
          "acc" := v "acc"
                   + fl (Cast (TInt, Binop (BAnd, Call ("hash64", [ Global "doclen" ]),
                                            Long 0xFFFFL)));
          Return (Some (v "acc")) ];
    ]
  in
  program
    ~globals:[ ("rng", TLong, Long 1L); ("doclen", TInt, Int (Int32.of_int doc_len)) ]
    ~memory_pages:1
    ~table:[ "filter_crc"; "filter_words"; "filter_compress" ]
    funcs

(* ------------------------------------------------------------------ *)
(* "zen_garden": scene transform, particles, rasterisation             *)
(* ------------------------------------------------------------------ *)

(** Memory map: vertex array (x,y,z f64 triples) at 0; particle array
    (x,y,vx,vy) at 16 KiB; 64x64 byte framebuffer at 48 KiB. *)
let zen_garden ?(verts = 60) ?(particles = 40) ?(frames = 4) () =
  let vbase = 0 and pbase = 16384 and fb = 49152 in
  let fbw = 64 in
  let funcs =
    [
      func "next_rand" ~params:[] ~result:TLong ~export:false
        [ SetGlobal ("rng", Binop (BXor, Global "rng", Binop (Shl, Global "rng", Long 13L)));
          SetGlobal ("rng", Binop (BXor, Global "rng", Binop (ShrU, Global "rng", Long 7L)));
          SetGlobal ("rng", Binop (BXor, Global "rng", Binop (Shl, Global "rng", Long 17L)));
          Return (Some (Global "rng")) ];
      (* uniform float in [0,1) from the PRNG *)
      func "frand" ~params:[] ~result:TFloat ~export:false
        [ Return (Some (fl (Cast (TInt, Binop (BAnd, Call ("next_rand", []), Long 0xFFFFL)))
                        / f 65536.0)) ];
      (* sine by Taylor series (no trig instructions in Wasm) *)
      func "sin_approx" ~params:[ ("x", TFloat) ] ~result:TFloat ~export:false
        ~locals:[ ("x2", TFloat) ]
        [ "x2" := v "x" * v "x";
          Return (Some (v "x" * (f 1.0 - v "x2" / f 6.0 * (f 1.0 - v "x2" / f 20.0
                                                           * (f 1.0 - v "x2" / f 42.0))))) ];
      func "cos_approx" ~params:[ ("x", TFloat) ] ~result:TFloat ~export:false
        ~locals:[ ("x2", TFloat) ]
        [ "x2" := v "x" * v "x";
          Return (Some (f 1.0 - v "x2" / f 2.0 * (f 1.0 - v "x2" / f 12.0
                                                  * (f 1.0 - v "x2" / f 30.0)))) ];
      func "init_scene" ~params:[] ~export:false ~locals:[ ("k", TInt) ]
        [ For ("k", i 0, i (Stdlib.( * ) verts 3),
               [ fstore (i vbase) (v "k") (Call ("frand", []) * f 2.0 - f 1.0) ]);
          For ("k", i 0, i (Stdlib.( * ) particles 4),
               [ fstore (i pbase) (v "k") (Call ("frand", [])) ]) ];
      (* rotate all vertices around the y axis *)
      func "rotate_scene" ~params:[ ("angle", TFloat) ] ~export:false
        ~locals:[ ("k", TInt); ("s", TFloat); ("c", TFloat); ("x", TFloat); ("z", TFloat) ]
        [ "s" := Call ("sin_approx", [ v "angle" ]);
          "c" := Call ("cos_approx", [ v "angle" ]);
          For ("k", i 0, i verts,
               [ "x" := fload (i vbase) (v "k" * i 3);
                 "z" := fload (i vbase) (v "k" * i 3 + i 2);
                 fstore (i vbase) (v "k" * i 3) (v "c" * v "x" + v "s" * v "z");
                 fstore (i vbase) (v "k" * i 3 + i 2)
                   (f 0.0 - v "s" * v "x" + v "c" * v "z") ]) ];
      (* project and splat vertices into the byte framebuffer *)
      func "rasterize" ~params:[] ~export:false
        ~locals:[ ("k", TInt); ("px", TInt); ("py", TInt); ("d", TFloat); ("old", TInt) ]
        [ For ("k", i 0, i verts,
               [ "d" := fload (i vbase) (v "k" * i 3 + i 2) + f 3.0;
                 "px" := Cast (TInt, (fload (i vbase) (v "k" * i 3) / v "d" + f 0.5)
                                     * f 64.0);
                 "py" := Cast (TInt, (fload (i vbase) (v "k" * i 3 + i 1) / v "d" + f 0.5)
                                     * f 64.0);
                 If ((v "px" >= i 0) && (v "px" < i fbw)
                     && ((v "py" >= i 0) && (v "py" < i fbw)),
                     [ "old" := Load8u (i fb + v "py" * i fbw + v "px");
                       Store8 (i fb + v "py" * i fbw + v "px",
                               Select (v "old" < i 255, v "old" + i 1, v "old")) ],
                     []) ]) ];
      (* particle physics step with ground bounce *)
      func "step_particles" ~params:[ ("dt", TFloat) ] ~export:false
        ~locals:[ ("k", TInt); ("y", TFloat); ("vy", TFloat) ]
        [ For ("k", i 0, i particles,
               [ fstore (i pbase) (v "k" * i 4)
                   (fload (i pbase) (v "k" * i 4) + fload (i pbase) (v "k" * i 4 + i 2) * v "dt");
                 "vy" := fload (i pbase) (v "k" * i 4 + i 3) - f 9.81 * v "dt";
                 "y" := fload (i pbase) (v "k" * i 4 + i 1) + v "vy" * v "dt";
                 If (v "y" < f 0.0,
                     [ "y" := f 0.0 - v "y"; "vy" := f 0.0 - v "vy" * f 0.8 ],
                     []);
                 fstore (i pbase) (v "k" * i 4 + i 1) (v "y");
                 fstore (i pbase) (v "k" * i 4 + i 3) (v "vy") ]) ];
      (* per-frame effects picked through the table, engine-style *)
      func "effect_blur" ~params:[] ~export:false ~locals:[ ("k", TInt) ]
        [ For ("k", i 1, i (Stdlib.( - ) (Stdlib.( * ) fbw fbw) 1),
               [ Store8 (i fb + v "k",
                         (Load8u (i fb + v "k" - i 1) + Load8u (i fb + v "k")
                          + Load8u (i fb + v "k" + i 1)) / i 3) ]) ];
      func "effect_fade" ~params:[] ~export:false ~locals:[ ("k", TInt) ]
        [ For ("k", i 0, i (Stdlib.( * ) fbw fbw),
               [ Store8 (i fb + v "k", Load8u (i fb + v "k") * i 7 / i 8) ]) ];
      func "frame" ~params:[ ("t", TInt) ] ~export:false
        [ Expr (Call ("rotate_scene", [ fl (v "t") * f 0.1 ]));
          Expr (Call ("step_particles", [ f 0.016 ]));
          Expr (Call ("rasterize", []));
          (* alternate the two effects through the table *)
          Expr (CallIndirect (Binop (Rem, v "t", i 2), [], None)) ];
      (* dead engine code: an unused trig helper, an effect that is
         registered in the table but never selected (the frame loop only
         alternates slots 0 and 1), and a culling pass the demo's camera
         never needs *)
      func "tan_approx" ~params:[ ("x", TFloat) ] ~result:TFloat ~export:false
        [ Return (Some (Call ("sin_approx", [ v "x" ]) / Call ("cos_approx", [ v "x" ]))) ];
      func "effect_invert" ~params:[] ~export:false ~locals:[ ("k", TInt) ]
        [ For ("k", i 0, i (Stdlib.( * ) fbw fbw),
               [ Store8 (i fb + v "k", i 255 - Load8u (i fb + v "k")) ]) ];
      func "frustum_cull" ~params:[ ("fov", TFloat) ] ~result:TInt ~export:false
        ~locals:[ ("k", TInt); ("kept", TInt); ("lim", TFloat) ]
        [ "lim" := Call ("tan_approx", [ v "fov" / f 2.0 ]);
          "kept" := i 0;
          For ("k", i 0, i verts,
               [ If (fload (i vbase) (v "k" * i 3) / (fload (i vbase) (v "k" * i 3 + i 2) + f 3.0)
                     < v "lim",
                     [ "kept" := v "kept" + i 1 ], []) ]);
          Return (Some (v "kept")) ];
      func "run" ~params:[] ~result:TFloat
        ~locals:[ ("t", TInt); ("k", TInt); ("acc", TFloat) ]
        [ SetGlobal ("rng", Long 2463534242L);
          Expr (Call ("init_scene", []));
          For ("t", i 0, i frames, [ Expr (Call ("frame", [ v "t" ])) ]);
          "acc" := f 0.0;
          For ("k", i 0, i (Stdlib.( * ) fbw fbw),
               [ "acc" := v "acc" + fl (Load8u (i fb + v "k")) ]);
          For ("k", i 0, i (Stdlib.( * ) particles 4),
               [ "acc" := v "acc" + fload (i pbase) (v "k") ]);
          Return (Some (v "acc")) ];
    ]
  in
  program
    ~globals:[ ("rng", TLong, Long 1L) ]
    ~memory_pages:1
    ~table:[ "effect_blur"; "effect_fade"; "effect_invert" ]
    funcs

(** Both real-world stand-ins, compiled. *)
let all ?(scale = 1) () =
  [ ("pdfkit", Mc_compile.compile (pdfkit ~doc_len:(Stdlib.( * ) 1200 scale) ()));
    ("zen_garden",
     Mc_compile.compile
       (zen_garden ~verts:(Stdlib.( * ) 50 scale) ~particles:(Stdlib.( * ) 30 scale)
          ~frames:4 ())) ]
