(** Synthetic stand-ins for the paper's proprietary real-world programs
    (Unreal Engine "Zen Garden" and PSPDFKit): large, diverse MiniC
    programs — many functions, indirect calls, byte-level memory traffic,
    i64 hashing, f32/f64 math. Both export [run : () -> f64]. *)

val pdfkit : ?doc_len:int -> unit -> Minic.Mc_ast.program
(** Text layout, word counting (a [switch] state machine), LZ77-style
    compression, CRC-32, FNV-1a hashing, glyph rendering, with a filter
    pipeline dispatched through the table. *)

val zen_garden :
  ?verts:int -> ?particles:int -> ?frames:int -> unit -> Minic.Mc_ast.program
(** Scene rotation (Taylor-series trigonometry), point rasterisation into
    a byte framebuffer, particle physics with bounce, per-frame effects
    dispatched through the table. *)

val all : ?scale:int -> unit -> (string * Wasm.Ast.module_) list
