(** The 30 PolyBench/C 4.2 kernels, written in MiniC: same loop-nest
    shapes, deterministic PolyBench-style initialisation, checksum over
    the output array. Each exports [run : () -> f64]. *)

val default_n : int
(** Default problem size. *)

val generators : (n:int -> string * Minic.Mc_ast.program) list
(** All 30 kernels as (name, program) generators. *)

val names : string list

val all : ?n:int -> unit -> (string * Wasm.Ast.module_) list
(** Every kernel, compiled. *)

(** Individual kernels (exposed for targeted examples and tests). *)

val gemm : n:int -> string * Minic.Mc_ast.program
val jacobi_2d : n:int -> string * Minic.Mc_ast.program
val mvt : n:int -> string * Minic.Mc_ast.program
val floyd_warshall : n:int -> string * Minic.Mc_ast.program
val cholesky : n:int -> string * Minic.Mc_ast.program
