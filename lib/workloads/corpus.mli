(** The benchmark corpus of the paper's evaluation (Section 4.1): the 30
    PolyBench kernels plus the two real-world stand-ins, each exporting
    [run : () -> f64]. *)

type kind = Polybench | Realworld

type entry = {
  name : string;
  kind : kind;
  module_ : Wasm.Ast.module_;
}

val make : ?n:int -> ?scale:int -> unit -> entry list
(** [n] scales the PolyBench problem size, [scale] the real-world
    programs; defaults keep fully instrumented interpreted runs fast. *)

val polybench : entry list -> entry list
val realworld : entry list -> entry list

val find : entry list -> string -> entry
(** @raise Invalid_argument on unknown names. *)

val run_reference : ?fuel:int -> entry -> float
(** Uninstrumented execution; returns the checksum. *)
