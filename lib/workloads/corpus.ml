(** The benchmark corpus of the paper's evaluation (Section 4.1): the 30
    PolyBench kernels plus the two real-world stand-ins, each exporting
    [run : () -> f64]. *)

type kind = Polybench | Realworld

type entry = {
  name : string;
  kind : kind;
  module_ : Wasm.Ast.module_;
}

(** Build the corpus. [n] scales the PolyBench problem size and [scale]
    the real-world programs; the defaults keep interpreted, fully
    instrumented runs fast enough for CI. *)
let make ?(n = Polybench.default_n) ?(scale = 1) () =
  List.map (fun (name, m) -> { name; kind = Polybench; module_ = m }) (Polybench.all ~n ())
  @ List.map (fun (name, m) -> { name; kind = Realworld; module_ = m }) (Realworld.all ~scale ())

let polybench entries = List.filter (fun e -> e.kind = Polybench) entries
let realworld entries = List.filter (fun e -> e.kind = Realworld) entries

let find entries name =
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "unknown corpus entry %S" name)

(** Uninstrumented reference execution; returns the checksum. *)
let run_reference ?(fuel = max_int) (e : entry) : float =
  let inst = Wasm.Interp.instantiate ~fuel ~imports:[] e.module_ in
  match Wasm.Interp.invoke_export inst "run" [] with
  | [ Wasm.Value.F64 x ] -> x
  | _ -> invalid_arg (e.name ^ ": run did not return a single f64")
