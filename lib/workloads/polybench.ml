(** The 30 PolyBench/C 4.2 kernels, written in MiniC and compiled to Wasm
    by {!Minic.Mc_compile}. These stand in for the emscripten-compiled
    PolyBench binaries of the paper's evaluation (Section 4.1).

    Every kernel follows the PolyBench structure: deterministic
    initialisation (the same index formulas as the C sources), the kernel
    loop nest, and a checksum over the output array, returned by an
    exported function [run : () -> f64]. Problem sizes are scaled down
    (interpreted execution) but preserve the loop-nest shapes and
    instruction mix. *)

open Minic
open Mc_ast
open Mc_ast.Dsl

(** float(e) for an int expression. *)
let fl e = Cast (TFloat, e)

(** Default problem size; kernels derive their extents from it. *)
let default_n = 8

(* Distinct array base addresses; at n <= 32 every array fits in 64 KiB:
   the largest use is 3D n^3 * 8 bytes = 256 KiB for n=32 -> use 8 pages. *)
let base k = i (Stdlib.( * ) k 65536)

let pages = 9

(* locals shared by most kernels *)
let ijk = [ ("i", TInt); ("j", TInt); ("k", TInt); ("acc", TFloat); ("n", TInt) ]

(** Sum the [count] f64 values starting at [arr] into "acc". *)
let checksum ?(var = "acc") arr count =
  [ var := f 0.0;
    For ("i", i 0, count, [ var := v var + fload arr (v "i") ]);
  ]

let kernel ?(locals = ijk) ~n name body =
  let fd =
    func "run" ~params:[] ~result:TFloat ~locals
      (("n" := i n) :: body)
  in
  (name, program ~memory_pages:pages [ fd ])

(* 2D index i*n + j as an expression *)
let idx2 a b = v a * v "n" + v b
let idx2' a b = a * v "n" + b

(** init A[i][j] = ((i*j+c1) mod n) / n, the PolyBench pattern *)
let init2d arr c1 =
  For ("i", i 0, v "n",
       [ For ("j", i 0, v "n",
              [ fstore arr (idx2 "i" "j")
                  (fl (Binop (Rem, v "i" * v "j" + i c1, v "n")) / fl (v "n")) ]) ])

let init1d arr c1 =
  For ("i", i 0, v "n",
       [ fstore arr (v "i") (fl (Binop (Rem, v "i" + i c1, v "n")) / fl (v "n")) ])

(* ------------------------------------------------------------------ *)
(* Linear algebra / BLAS                                               *)
(* ------------------------------------------------------------------ *)

let gemm ~n =
  let a = base 0 and b = base 1 and c = base 2 in
  kernel ~n "gemm"
    ([ init2d a 1; init2d b 2; init2d c 3 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore c (idx2 "i" "j") (fload c (idx2 "i" "j") * f 1.2);
                       For ("k", i 0, v "n",
                            [ fstore c (idx2 "i" "j")
                                (fload c (idx2 "i" "j")
                                 + f 1.5 * fload a (idx2 "i" "k") * fload b (idx2 "k" "j")) ]) ]) ]) ]
     @ checksum c (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let two_mm ~n =
  let a = base 0 and b = base 1 and c = base 2 and d = base 3 and tmp = base 4 in
  kernel ~n "2mm"
    ([ init2d a 1; init2d b 2; init2d c 3; init2d d 4 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore tmp (idx2 "i" "j") (f 0.0);
                       For ("k", i 0, v "n",
                            [ fstore tmp (idx2 "i" "j")
                                (fload tmp (idx2 "i" "j")
                                 + f 1.5 * fload a (idx2 "i" "k") * fload b (idx2 "k" "j")) ]) ]) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore d (idx2 "i" "j") (fload d (idx2 "i" "j") * f 1.2);
                       For ("k", i 0, v "n",
                            [ fstore d (idx2 "i" "j")
                                (fload d (idx2 "i" "j")
                                 + fload tmp (idx2 "i" "k") * fload c (idx2 "k" "j")) ]) ]) ]) ]
     @ checksum d (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let three_mm ~n =
  let a = base 0 and b = base 1 and c = base 2 and d = base 3 in
  let e = base 4 and ff = base 5 and g = base 6 in
  let mm dst x y =
    For ("i", i 0, v "n",
         [ For ("j", i 0, v "n",
                [ fstore dst (idx2 "i" "j") (f 0.0);
                  For ("k", i 0, v "n",
                       [ fstore dst (idx2 "i" "j")
                           (fload dst (idx2 "i" "j")
                            + fload x (idx2 "i" "k") * fload y (idx2 "k" "j")) ]) ]) ])
  in
  kernel ~n "3mm"
    ([ init2d a 1; init2d b 2; init2d c 3; init2d d 4 ]
     @ [ mm e a b; mm ff c d; mm g e ff ]
     @ checksum g (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let atax ~n =
  let a = base 0 and x = base 1 and y = base 2 and tmp = base 3 in
  kernel ~n "atax"
    ([ init2d a 1; init1d x 2 ]
     @ [ For ("i", i 0, v "n", [ fstore y (v "i") (f 0.0) ]);
         For ("i", i 0, v "n",
              [ fstore tmp (v "i") (f 0.0);
                For ("j", i 0, v "n",
                     [ fstore tmp (v "i")
                         (fload tmp (v "i") + fload a (idx2 "i" "j") * fload x (v "j")) ]);
                For ("j", i 0, v "n",
                     [ fstore y (v "j")
                         (fload y (v "j") + fload a (idx2 "i" "j") * fload tmp (v "i")) ]) ]) ]
     @ checksum y (v "n")
     @ [ Return (Some (v "acc")) ])

let bicg ~n =
  let a = base 0 and s = base 1 and q = base 2 and p = base 3 and r = base 4 in
  kernel ~n "bicg"
    ([ init2d a 1; init1d p 2; init1d r 3 ]
     @ [ For ("i", i 0, v "n", [ fstore s (v "i") (f 0.0) ]);
         For ("i", i 0, v "n",
              [ fstore q (v "i") (f 0.0);
                For ("j", i 0, v "n",
                     [ fstore s (v "j")
                         (fload s (v "j") + fload r (v "i") * fload a (idx2 "i" "j"));
                       fstore q (v "i")
                         (fload q (v "i") + fload a (idx2 "i" "j") * fload p (v "j")) ]) ]) ]
     @ checksum s (v "n")
     @ [ "j" := i 0;
         While (v "j" < v "n",
                [ "acc" := v "acc" + fload q (v "j"); "j" := v "j" + i 1 ]);
         Return (Some (v "acc")) ])

let mvt ~n =
  let a = base 0 and x1 = base 1 and x2 = base 2 and y1 = base 3 and y2 = base 4 in
  kernel ~n "mvt"
    ([ init2d a 1; init1d x1 2; init1d x2 3; init1d y1 4; init1d y2 5 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore x1 (v "i")
                         (fload x1 (v "i") + fload a (idx2 "i" "j") * fload y1 (v "j")) ]) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore x2 (v "i")
                         (fload x2 (v "i") + fload a (idx2 "j" "i") * fload y2 (v "j")) ]) ]) ]
     @ checksum x1 (v "n")
     @ [ For ("j", i 0, v "n", [ "acc" := v "acc" + fload x2 (v "j") ]);
         Return (Some (v "acc")) ])

let gemver ~n =
  let a = base 0 and u1 = base 1 and v1 = base 2 and u2 = base 3 and v2 = base 4 in
  let w = base 5 and x = base 6 and y = base 7 and z = base 8 in
  kernel ~n "gemver"
    ([ init2d a 1; init1d u1 1; init1d v1 2; init1d u2 3; init1d v2 4;
       init1d y 5; init1d z 6;
       For ("i", i 0, v "n", [ fstore w (v "i") (f 0.0); fstore x (v "i") (f 0.0) ]) ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore a (idx2 "i" "j")
                         (fload a (idx2 "i" "j")
                          + fload u1 (v "i") * fload v1 (v "j")
                          + fload u2 (v "i") * fload v2 (v "j")) ]) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore x (v "i")
                         (fload x (v "i") + f 1.2 * fload a (idx2 "j" "i") * fload y (v "j")) ]) ]);
         For ("i", i 0, v "n",
              [ fstore x (v "i") (fload x (v "i") + fload z (v "i")) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore w (v "i")
                         (fload w (v "i") + f 1.5 * fload a (idx2 "i" "j") * fload x (v "j")) ]) ]) ]
     @ checksum w (v "n")
     @ [ Return (Some (v "acc")) ])

let gesummv ~n =
  let a = base 0 and b = base 1 and x = base 2 and y = base 3 and tmp = base 4 in
  kernel ~n "gesummv"
    ([ init2d a 1; init2d b 2; init1d x 3 ]
     @ [ For ("i", i 0, v "n",
              [ fstore tmp (v "i") (f 0.0);
                fstore y (v "i") (f 0.0);
                For ("j", i 0, v "n",
                     [ fstore tmp (v "i")
                         (fload tmp (v "i") + fload a (idx2 "i" "j") * fload x (v "j"));
                       fstore y (v "i")
                         (fload y (v "i") + fload b (idx2 "i" "j") * fload x (v "j")) ]);
                fstore y (v "i") (f 1.5 * fload tmp (v "i") + f 1.2 * fload y (v "i")) ]) ]
     @ checksum y (v "n")
     @ [ Return (Some (v "acc")) ])

let symm ~n =
  let a = base 0 and b = base 1 and c = base 2 in
  kernel ~n ~locals:(ijk @ [ ("temp2", TFloat) ]) "symm"
    ([ init2d a 1; init2d b 2; init2d c 3 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ "temp2" := f 0.0;
                       For ("k", i 0, v "i",
                            [ fstore c (idx2 "k" "j")
                                (fload c (idx2 "k" "j")
                                 + f 1.5 * fload b (idx2 "i" "j") * fload a (idx2 "i" "k"));
                              "temp2" := v "temp2"
                                         + fload b (idx2 "k" "j") * fload a (idx2 "i" "k") ]);
                       fstore c (idx2 "i" "j")
                         (f 1.2 * fload c (idx2 "i" "j")
                          + f 1.5 * fload b (idx2 "i" "j") * fload a (idx2 "i" "i")
                          + f 1.5 * v "temp2") ]) ]) ]
     @ checksum c (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let syrk ~n =
  let a = base 0 and c = base 1 in
  kernel ~n "syrk"
    ([ init2d a 1; init2d c 2 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "i" + i 1,
                     [ fstore c (idx2 "i" "j") (fload c (idx2 "i" "j") * f 1.2) ]);
                For ("k", i 0, v "n",
                     [ For ("j", i 0, v "i" + i 1,
                            [ fstore c (idx2 "i" "j")
                                (fload c (idx2 "i" "j")
                                 + f 1.5 * fload a (idx2 "i" "k") * fload a (idx2 "j" "k")) ]) ]) ]) ]
     @ checksum c (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let syr2k ~n =
  let a = base 0 and b = base 1 and c = base 2 in
  kernel ~n "syr2k"
    ([ init2d a 1; init2d b 2; init2d c 3 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "i" + i 1,
                     [ fstore c (idx2 "i" "j") (fload c (idx2 "i" "j") * f 1.2) ]);
                For ("k", i 0, v "n",
                     [ For ("j", i 0, v "i" + i 1,
                            [ fstore c (idx2 "i" "j")
                                (fload c (idx2 "i" "j")
                                 + fload a (idx2 "j" "k") * f 1.5 * fload b (idx2 "i" "k")
                                 + fload b (idx2 "j" "k") * f 1.5 * fload a (idx2 "i" "k")) ]) ]) ]) ]
     @ checksum c (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let trmm ~n =
  let a = base 0 and b = base 1 in
  kernel ~n "trmm"
    ([ init2d a 1; init2d b 2 ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ For ("k", v "i" + i 1, v "n",
                            [ fstore b (idx2 "i" "j")
                                (fload b (idx2 "i" "j")
                                 + fload a (idx2 "k" "i") * fload b (idx2 "k" "j")) ]);
                       fstore b (idx2 "i" "j") (f 1.5 * fload b (idx2 "i" "j")) ]) ]) ]
     @ checksum b (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

(* ------------------------------------------------------------------ *)
(* Linear algebra kernels and solvers                                  *)
(* ------------------------------------------------------------------ *)

let doitgen ~n =
  (* 3D tensor contraction; nr = nq = np = n *)
  let a = base 0 and c4 = base 1 and sum = base 2 in
  let idx3 r q p = (v r * v "n" + v q) * v "n" + v p in
  kernel ~n ~locals:(ijk @ [ ("r", TInt); ("q", TInt); ("p", TInt); ("s", TInt) ]) "doitgen"
    ([ For ("r", i 0, v "n",
            [ For ("q", i 0, v "n",
                   [ For ("p", i 0, v "n",
                          [ fstore a (idx3 "r" "q" "p")
                              (fl (Binop (Rem, (v "r" * v "q" + v "p"), v "n")) / fl (v "n")) ]) ]) ]);
       init2d c4 1 ]
     @ [ For ("r", i 0, v "n",
              [ For ("q", i 0, v "n",
                     [ For ("p", i 0, v "n",
                            [ fstore sum (v "p") (f 0.0);
                              For ("s", i 0, v "n",
                                   [ fstore sum (v "p")
                                       (fload sum (v "p")
                                        + fload a (idx3 "r" "q" "s") * fload c4 (idx2 "s" "p")) ]) ]);
                       For ("p", i 0, v "n",
                            [ fstore a (idx3 "r" "q" "p") (fload sum (v "p")) ]) ]) ]) ]
     @ [ "acc" := f 0.0;
         For ("i", i 0, v "n" * v "n" * v "n", [ "acc" := v "acc" + fload a (v "i") ]);
         Return (Some (v "acc")) ])

let cholesky ~n =
  let a = base 0 in
  (* make A positive definite: A = I*n + small symmetric part *)
  kernel ~n "cholesky"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ fstore a (idx2 "i" "j")
                       (Select (v "i" = v "j",
                                fl (v "n" + v "i") + f 1.0,
                                f 1.0 / fl (v "i" + v "j" + i 1))) ]) ]) ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "i",
                     [ For ("k", i 0, v "j",
                            [ fstore a (idx2 "i" "j")
                                (fload a (idx2 "i" "j")
                                 - fload a (idx2 "i" "k") * fload a (idx2 "j" "k")) ]);
                       fstore a (idx2 "i" "j") (fload a (idx2 "i" "j") / fload a (idx2 "j" "j")) ]);
                For ("k", i 0, v "i",
                     [ fstore a (idx2 "i" "i")
                         (fload a (idx2 "i" "i")
                          - fload a (idx2 "i" "k") * fload a (idx2 "i" "k")) ]);
                fstore a (idx2 "i" "i") (Unop (Sqrt, fload a (idx2 "i" "i"))) ]) ]
     @ checksum a (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let lu ~n =
  let a = base 0 in
  kernel ~n "lu"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ fstore a (idx2 "i" "j")
                       (Select (v "i" = v "j",
                                fl (v "n" * i 2 + v "i"),
                                f 1.0 / fl (v "i" + v "j" + i 1))) ]) ]) ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "i",
                     [ For ("k", i 0, v "j",
                            [ fstore a (idx2 "i" "j")
                                (fload a (idx2 "i" "j")
                                 - fload a (idx2 "i" "k") * fload a (idx2 "k" "j")) ]);
                       fstore a (idx2 "i" "j") (fload a (idx2 "i" "j") / fload a (idx2 "j" "j")) ]);
                For ("j", v "i", v "n",
                     [ For ("k", i 0, v "i",
                            [ fstore a (idx2 "i" "j")
                                (fload a (idx2 "i" "j")
                                 - fload a (idx2 "i" "k") * fload a (idx2 "k" "j")) ]) ]) ]) ]
     @ checksum a (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let ludcmp ~n =
  let a = base 0 and b = base 1 and x = base 2 and y = base 3 in
  kernel ~n ~locals:(ijk @ [ ("w", TFloat) ]) "ludcmp"
    ([ For ("i", i 0, v "n",
            [ fstore b (v "i") (fl (v "i" + i 1) / fl (v "n") / f 2.0 + f 4.0);
              For ("j", i 0, v "n",
                   [ fstore a (idx2 "i" "j")
                       (Select (v "i" = v "j",
                                fl (v "n" * i 2 + v "i"),
                                f 1.0 / fl (v "i" + v "j" + i 1))) ]) ]) ]
     @ [ For ("i", i 0, v "n",
              [ For ("j", i 0, v "i",
                     [ "w" := fload a (idx2 "i" "j");
                       For ("k", i 0, v "j",
                            [ "w" := v "w" - fload a (idx2 "i" "k") * fload a (idx2 "k" "j") ]);
                       fstore a (idx2 "i" "j") (v "w" / fload a (idx2 "j" "j")) ]);
                For ("j", v "i", v "n",
                     [ "w" := fload a (idx2 "i" "j");
                       For ("k", i 0, v "i",
                            [ "w" := v "w" - fload a (idx2 "i" "k") * fload a (idx2 "k" "j") ]);
                       fstore a (idx2 "i" "j") (v "w") ]) ]);
         For ("i", i 0, v "n",
              [ "w" := fload b (v "i");
                For ("j", i 0, v "i",
                     [ "w" := v "w" - fload a (idx2 "i" "j") * fload y (v "j") ]);
                fstore y (v "i") (v "w") ]);
         ForStep ("i", v "n" - i 1, i 0 - i 1, i 0 - i 1,
                  [ "w" := fload y (v "i");
                    For ("j", v "i" + i 1, v "n",
                         [ "w" := v "w" - fload a (idx2 "i" "j") * fload x (v "j") ]);
                    fstore x (v "i") (v "w" / fload a (idx2 "i" "i")) ]) ]
     @ checksum x (v "n")
     @ [ Return (Some (v "acc")) ])

let trisolv ~n =
  let l = base 0 and x = base 1 and b = base 2 in
  kernel ~n "trisolv"
    ([ For ("i", i 0, v "n",
            [ fstore b (v "i") (fl (v "i") / fl (v "n") / f 2.0);
              For ("j", i 0, v "i" + i 1,
                   [ fstore l (idx2 "i" "j")
                       (Select (v "i" = v "j",
                                fl (v "n" + v "i") + f 1.0,
                                fl (v "i" + v "j") / fl (v "n"))) ]) ]) ]
     @ [ For ("i", i 0, v "n",
              [ fstore x (v "i") (fload b (v "i"));
                For ("j", i 0, v "i",
                     [ fstore x (v "i")
                         (fload x (v "i") - fload l (idx2 "i" "j") * fload x (v "j")) ]);
                fstore x (v "i") (fload x (v "i") / fload l (idx2 "i" "i")) ]) ]
     @ checksum x (v "n")
     @ [ Return (Some (v "acc")) ])

let durbin ~n =
  let r = base 0 and y = base 1 and z = base 2 in
  kernel ~n
    ~locals:(ijk @ [ ("alpha", TFloat); ("beta", TFloat); ("sum", TFloat) ])
    "durbin"
    ([ For ("i", i 0, v "n",
            [ fstore r (v "i") (fl (v "n" + i 1 - v "i") / fl (v "n") / f 2.0) ]) ]
     @ [ fstore y (i 0) (Unop (Neg, fload r (i 0)));
         "beta" := f 1.0;
         "alpha" := Unop (Neg, fload r (i 0));
         For ("k", i 1, v "n",
              [ "beta" := (f 1.0 - v "alpha" * v "alpha") * v "beta";
                "sum" := f 0.0;
                For ("i", i 0, v "k",
                     [ "sum" := v "sum" + fload r (v "k" - v "i" - i 1) * fload y (v "i") ]);
                "alpha" := Unop (Neg, fload r (v "k") + v "sum") / v "beta";
                For ("i", i 0, v "k",
                     [ fstore z (v "i")
                         (fload y (v "i") + v "alpha" * fload y (v "k" - v "i" - i 1)) ]);
                For ("i", i 0, v "k", [ fstore y (v "i") (fload z (v "i")) ]);
                fstore y (v "k") (v "alpha") ]) ]
     @ checksum y (v "n")
     @ [ Return (Some (v "acc")) ])

let gramschmidt ~n =
  let a = base 0 and q = base 1 and r = base 2 in
  kernel ~n ~locals:(ijk @ [ ("nrm", TFloat) ]) "gramschmidt"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ fstore a (idx2 "i" "j")
                       (fl (Binop (Rem, v "i" * v "j" + i 1, v "n")) / fl (v "n") + f 1.0) ]) ]) ]
     @ [ For ("k", i 0, v "n",
              [ "nrm" := f 0.0;
                For ("i", i 0, v "n",
                     [ "nrm" := v "nrm" + fload a (idx2 "i" "k") * fload a (idx2 "i" "k") ]);
                fstore r (idx2 "k" "k") (Unop (Sqrt, v "nrm"));
                For ("i", i 0, v "n",
                     [ fstore q (idx2 "i" "k") (fload a (idx2 "i" "k") / fload r (idx2 "k" "k")) ]);
                For ("j", v "k" + i 1, v "n",
                     [ fstore r (idx2 "k" "j") (f 0.0);
                       For ("i", i 0, v "n",
                            [ fstore r (idx2 "k" "j")
                                (fload r (idx2 "k" "j")
                                 + fload q (idx2 "i" "k") * fload a (idx2 "i" "j")) ]);
                       For ("i", i 0, v "n",
                            [ fstore a (idx2 "i" "j")
                                (fload a (idx2 "i" "j")
                                 - fload q (idx2 "i" "k") * fload r (idx2 "k" "j")) ]) ]) ]) ]
     @ checksum r (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

(* ------------------------------------------------------------------ *)
(* Data mining                                                         *)
(* ------------------------------------------------------------------ *)

let covariance ~n =
  let data = base 0 and cov = base 1 and mean = base 2 in
  kernel ~n "covariance"
    ([ init2d data 1 ]
     @ [ For ("j", i 0, v "n",
              [ fstore mean (v "j") (f 0.0);
                For ("i", i 0, v "n",
                     [ fstore mean (v "j") (fload mean (v "j") + fload data (idx2 "i" "j")) ]);
                fstore mean (v "j") (fload mean (v "j") / fl (v "n")) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore data (idx2 "i" "j")
                         (fload data (idx2 "i" "j") - fload mean (v "j")) ]) ]);
         For ("i", i 0, v "n",
              [ For ("j", v "i", v "n",
                     [ fstore cov (idx2 "i" "j") (f 0.0);
                       For ("k", i 0, v "n",
                            [ fstore cov (idx2 "i" "j")
                                (fload cov (idx2 "i" "j")
                                 + fload data (idx2 "k" "i") * fload data (idx2 "k" "j")) ]);
                       fstore cov (idx2 "i" "j") (fload cov (idx2 "i" "j") / fl (v "n" - i 1));
                       fstore cov (idx2 "j" "i") (fload cov (idx2 "i" "j")) ]) ]) ]
     @ checksum cov (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let correlation ~n =
  let data = base 0 and corr = base 1 and mean = base 2 and stddev = base 3 in
  kernel ~n "correlation"
    ([ init2d data 1 ]
     @ [ For ("j", i 0, v "n",
              [ fstore mean (v "j") (f 0.0);
                For ("i", i 0, v "n",
                     [ fstore mean (v "j") (fload mean (v "j") + fload data (idx2 "i" "j")) ]);
                fstore mean (v "j") (fload mean (v "j") / fl (v "n")) ]);
         For ("j", i 0, v "n",
              [ fstore stddev (v "j") (f 0.0);
                For ("i", i 0, v "n",
                     [ fstore stddev (v "j")
                         (fload stddev (v "j")
                          + (fload data (idx2 "i" "j") - fload mean (v "j"))
                            * (fload data (idx2 "i" "j") - fload mean (v "j"))) ]);
                fstore stddev (v "j") (Unop (Sqrt, fload stddev (v "j") / fl (v "n")));
                If (fload stddev (v "j") <= f 0.1, [ fstore stddev (v "j") (f 1.0) ], []) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore data (idx2 "i" "j")
                         ((fload data (idx2 "i" "j") - fload mean (v "j"))
                          / (Unop (Sqrt, fl (v "n")) * fload stddev (v "j"))) ]) ]);
         For ("i", i 0, v "n",
              [ fstore corr (idx2 "i" "i") (f 1.0);
                For ("j", v "i" + i 1, v "n",
                     [ fstore corr (idx2 "i" "j") (f 0.0);
                       For ("k", i 0, v "n",
                            [ fstore corr (idx2 "i" "j")
                                (fload corr (idx2 "i" "j")
                                 + fload data (idx2 "k" "i") * fload data (idx2 "k" "j")) ]);
                       fstore corr (idx2 "j" "i") (fload corr (idx2 "i" "j")) ]) ]) ]
     @ checksum corr (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

(* ------------------------------------------------------------------ *)
(* Medley                                                              *)
(* ------------------------------------------------------------------ *)

let floyd_warshall ~n =
  let path = base 0 in
  (* integer kernel, as in PolyBench *)
  kernel ~n "floyd-warshall"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ istore path (idx2 "i" "j")
                       (Select (Binop (Rem, v "i" * v "j", i 7) = i 0,
                                Binop (Rem, v "i" + v "j", i 13) + i 1,
                                i 999)) ]) ]) ]
     @ [ For ("k", i 0, v "n",
              [ For ("i", i 0, v "n",
                     [ For ("j", i 0, v "n",
                            [ istore path (idx2 "i" "j")
                                (Select
                                   (iload path (idx2 "i" "j")
                                    <= iload path (idx2 "i" "k") + iload path (idx2 "k" "j"),
                                    iload path (idx2 "i" "j"),
                                    iload path (idx2 "i" "k") + iload path (idx2 "k" "j"))) ]) ]) ]) ]
     @ [ "acc" := f 0.0;
         For ("i", i 0, v "n" * v "n",
              [ "acc" := v "acc" + fl (iload path (v "i")) ]);
         Return (Some (v "acc")) ])

let nussinov ~n =
  let seq = base 0 and table = base 1 in
  (* RNA folding dynamic program over an integer table *)
  let max2 a b = Select (a >= b, a, b) in
  kernel ~n "nussinov"
    ([ For ("i", i 0, v "n", [ istore seq (v "i") (Binop (Rem, v "i" + i 1, i 4)) ]);
       For ("i", i 0, v "n" * v "n", [ istore table (v "i") (i 0) ]) ]
     @ [ ForStep ("i", v "n" - i 1, i 0 - i 1, i 0 - i 1,
                  [ For ("j", v "i" + i 1, v "n",
                         [ If (v "j" - i 1 >= i 0,
                               [ istore table (idx2 "i" "j")
                                   (max2 (iload table (idx2 "i" "j"))
                                      (iload table (idx2' (v "i") (v "j" - i 1)))) ], []);
                           If (v "i" + i 1 < v "n",
                               [ istore table (idx2 "i" "j")
                                   (max2 (iload table (idx2 "i" "j"))
                                      (iload table (idx2' (v "i" + i 1) (v "j")))) ], []);
                           If ((v "j" - i 1 >= i 0) && (v "i" + i 1 < v "n"),
                               [ If (v "i" < v "j" - i 1,
                                     [ istore table (idx2 "i" "j")
                                         (max2 (iload table (idx2 "i" "j"))
                                            (iload table (idx2' (v "i" + i 1) (v "j" - i 1))
                                             + Select (iload seq (v "i") + iload seq (v "j") = i 3,
                                                       i 1, i 0))) ],
                                     [ istore table (idx2 "i" "j")
                                         (max2 (iload table (idx2 "i" "j"))
                                            (iload table (idx2' (v "i" + i 1) (v "j" - i 1)))) ]) ], []);
                           For ("k", v "i" + i 1, v "j",
                                [ istore table (idx2 "i" "j")
                                    (max2 (iload table (idx2 "i" "j"))
                                       (iload table (idx2' (v "i") (v "k"))
                                        + iload table (idx2' (v "k" + i 1) (v "j")))) ]) ]) ]) ]
     @ [ "acc" := f 0.0;
         For ("i", i 0, v "n" * v "n", [ "acc" := v "acc" + fl (iload table (v "i")) ]);
         Return (Some (v "acc")) ])

let deriche ~n =
  (* recursive 2D edge-detection filter; simplified coefficient setup *)
  let img_in = base 0 and img_out = base 1 and y1 = base 2 and y2 = base 3 in
  kernel ~n
    ~locals:(ijk @ [ ("xm1", TFloat); ("ym1", TFloat); ("ym2", TFloat) ])
    "deriche"
    ([ init2d img_in 1 ]
     @ [ (* horizontal forward pass *)
         For ("i", i 0, v "n",
              [ "ym1" := f 0.0; "ym2" := f 0.0; "xm1" := f 0.0;
                For ("j", i 0, v "n",
                     [ fstore y1 (idx2 "i" "j")
                         (f 0.5 * fload img_in (idx2 "i" "j") + f 0.25 * v "xm1"
                          + f 0.125 * v "ym1" + f 0.0625 * v "ym2");
                       "xm1" := fload img_in (idx2 "i" "j");
                       "ym2" := v "ym1";
                       "ym1" := fload y1 (idx2 "i" "j") ]) ]);
         (* horizontal backward pass *)
         For ("i", i 0, v "n",
              [ "ym1" := f 0.0; "ym2" := f 0.0; "xm1" := f 0.0;
                ForStep ("j", v "n" - i 1, i 0 - i 1, i 0 - i 1,
                         [ fstore y2 (idx2 "i" "j")
                             (f 0.25 * v "xm1" + f 0.125 * v "ym1" + f 0.0625 * v "ym2");
                           "xm1" := fload img_in (idx2 "i" "j");
                           "ym2" := v "ym1";
                           "ym1" := fload y2 (idx2 "i" "j") ]) ]);
         For ("i", i 0, v "n",
              [ For ("j", i 0, v "n",
                     [ fstore img_out (idx2 "i" "j")
                         (fload y1 (idx2 "i" "j") + fload y2 (idx2 "i" "j")) ]) ]) ]
     @ checksum img_out (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

(* ------------------------------------------------------------------ *)
(* Stencils                                                            *)
(* ------------------------------------------------------------------ *)

let jacobi_1d ~n =
  let a = base 0 and b = base 1 in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "jacobi-1d"
    ([ For ("i", i 0, v "n",
            [ fstore a (v "i") (fl (v "i" + i 2) / fl (v "n"));
              fstore b (v "i") (fl (v "i" + i 3) / fl (v "n")) ]) ]
     @ [ For ("t", i 0, i 10,
              [ For ("i", i 1, v "n" - i 1,
                     [ fstore b (v "i")
                         (f 0.33333 * (fload a (v "i" - i 1) + fload a (v "i") + fload a (v "i" + i 1))) ]);
                For ("i", i 1, v "n" - i 1,
                     [ fstore a (v "i")
                         (f 0.33333 * (fload b (v "i" - i 1) + fload b (v "i") + fload b (v "i" + i 1))) ]) ]) ]
     @ checksum a (v "n")
     @ [ Return (Some (v "acc")) ])

let jacobi_2d ~n =
  let a = base 0 and b = base 1 in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "jacobi-2d"
    ([ init2d a 1; init2d b 2 ]
     @ [ For ("t", i 0, i 4,
              [ For ("i", i 1, v "n" - i 1,
                     [ For ("j", i 1, v "n" - i 1,
                            [ fstore b (idx2 "i" "j")
                                (f 0.2
                                 * (fload a (idx2 "i" "j")
                                    + fload a (idx2' (v "i") (v "j" - i 1))
                                    + fload a (idx2' (v "i") (v "j" + i 1))
                                    + fload a (idx2' (v "i" + i 1) (v "j"))
                                    + fload a (idx2' (v "i" - i 1) (v "j")))) ]) ]);
                For ("i", i 1, v "n" - i 1,
                     [ For ("j", i 1, v "n" - i 1,
                            [ fstore a (idx2 "i" "j")
                                (f 0.2
                                 * (fload b (idx2 "i" "j")
                                    + fload b (idx2' (v "i") (v "j" - i 1))
                                    + fload b (idx2' (v "i") (v "j" + i 1))
                                    + fload b (idx2' (v "i" + i 1) (v "j"))
                                    + fload b (idx2' (v "i" - i 1) (v "j")))) ]) ]) ]) ]
     @ checksum a (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let seidel_2d ~n =
  let a = base 0 in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "seidel-2d"
    ([ init2d a 1 ]
     @ [ For ("t", i 0, i 4,
              [ For ("i", i 1, v "n" - i 1,
                     [ For ("j", i 1, v "n" - i 1,
                            [ fstore a (idx2 "i" "j")
                                ((fload a (idx2' (v "i" - i 1) (v "j" - i 1))
                                  + fload a (idx2' (v "i" - i 1) (v "j"))
                                  + fload a (idx2' (v "i" - i 1) (v "j" + i 1))
                                  + fload a (idx2' (v "i") (v "j" - i 1))
                                  + fload a (idx2 "i" "j")
                                  + fload a (idx2' (v "i") (v "j" + i 1))
                                  + fload a (idx2' (v "i" + i 1) (v "j" - i 1))
                                  + fload a (idx2' (v "i" + i 1) (v "j"))
                                  + fload a (idx2' (v "i" + i 1) (v "j" + i 1)))
                                 / f 9.0) ]) ]) ]) ]
     @ checksum a (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let fdtd_2d ~n =
  let ex = base 0 and ey = base 1 and hz = base 2 in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "fdtd-2d"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ fstore ex (idx2 "i" "j") (fl (v "i" * (v "j" + i 1)) / fl (v "n"));
                     fstore ey (idx2 "i" "j") (fl (v "i" * (v "j" + i 2)) / fl (v "n"));
                     fstore hz (idx2 "i" "j") (fl (v "i" * (v "j" + i 3)) / fl (v "n")) ]) ]) ]
     @ [ For ("t", i 0, i 4,
              [ For ("j", i 0, v "n", [ fstore ey (idx2' (i 0) (v "j")) (fl (v "t")) ]);
                For ("i", i 1, v "n",
                     [ For ("j", i 0, v "n",
                            [ fstore ey (idx2 "i" "j")
                                (fload ey (idx2 "i" "j")
                                 - f 0.5 * (fload hz (idx2 "i" "j") - fload hz (idx2' (v "i" - i 1) (v "j")))) ]) ]);
                For ("i", i 0, v "n",
                     [ For ("j", i 1, v "n",
                            [ fstore ex (idx2 "i" "j")
                                (fload ex (idx2 "i" "j")
                                 - f 0.5 * (fload hz (idx2 "i" "j") - fload hz (idx2' (v "i") (v "j" - i 1)))) ]) ]);
                For ("i", i 0, v "n" - i 1,
                     [ For ("j", i 0, v "n" - i 1,
                            [ fstore hz (idx2 "i" "j")
                                (fload hz (idx2 "i" "j")
                                 - f 0.7
                                   * (fload ex (idx2' (v "i") (v "j" + i 1)) - fload ex (idx2 "i" "j")
                                      + fload ey (idx2' (v "i" + i 1) (v "j")) - fload ey (idx2 "i" "j"))) ]) ]) ]) ]
     @ checksum hz (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

let heat_3d ~n =
  let a = base 0 and b = base 4 in
  let idx3 x y z = (x * v "n" + y) * v "n" + z in
  let stencil src dst =
    For ("i", i 1, v "n" - i 1,
         [ For ("j", i 1, v "n" - i 1,
                [ For ("k", i 1, v "n" - i 1,
                       [ fstore dst (idx3 (v "i") (v "j") (v "k"))
                           (f 0.125
                            * (fload src (idx3 (v "i" + i 1) (v "j") (v "k"))
                               - f 2.0 * fload src (idx3 (v "i") (v "j") (v "k"))
                               + fload src (idx3 (v "i" - i 1) (v "j") (v "k")))
                            + f 0.125
                              * (fload src (idx3 (v "i") (v "j" + i 1) (v "k"))
                                 - f 2.0 * fload src (idx3 (v "i") (v "j") (v "k"))
                                 + fload src (idx3 (v "i") (v "j" - i 1) (v "k")))
                            + f 0.125
                              * (fload src (idx3 (v "i") (v "j") (v "k" + i 1))
                                 - f 2.0 * fload src (idx3 (v "i") (v "j") (v "k"))
                                 + fload src (idx3 (v "i") (v "j") (v "k" - i 1)))
                            + fload src (idx3 (v "i") (v "j") (v "k"))) ]) ]) ])
  in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "heat-3d"
    ([ For ("i", i 0, v "n",
            [ For ("j", i 0, v "n",
                   [ For ("k", i 0, v "n",
                          [ fstore a (idx3 (v "i") (v "j") (v "k"))
                              (fl (v "i" + v "j" + (v "n" - v "k")) * f 10.0 / fl (v "n"));
                            fstore b (idx3 (v "i") (v "j") (v "k"))
                              (fl (v "i" + v "j" + (v "n" - v "k")) * f 10.0 / fl (v "n")) ]) ]) ]) ]
     @ [ For ("t", i 0, i 2, [ stencil a b; stencil b a ]) ]
     @ [ "acc" := f 0.0;
         For ("i", i 0, v "n" * v "n" * v "n", [ "acc" := v "acc" + fload a (v "i") ]);
         Return (Some (v "acc")) ])

let adi ~n =
  (* alternating direction implicit; simplified tridiagonal sweeps *)
  let u = base 0 and vv = base 1 and p = base 2 and q = base 3 in
  kernel ~n ~locals:(ijk @ [ ("t", TInt) ]) "adi"
    ([ init2d u 1 ]
     @ [ For ("t", i 0, i 2,
              [ (* column sweep *)
                For ("i", i 1, v "n" - i 1,
                     [ fstore vv (idx2' (i 0) (v "i")) (f 1.0);
                       fstore p (idx2' (v "i") (i 0)) (f 0.0);
                       fstore q (idx2' (v "i") (i 0)) (f 1.0);
                       For ("j", i 1, v "n" - i 1,
                            [ fstore p (idx2 "i" "j")
                                (Unop (Neg, f 0.25)
                                 / (f 0.25 * fload p (idx2' (v "i") (v "j" - i 1)) - f 1.5));
                              fstore q (idx2 "i" "j")
                                ((Unop (Neg, f 0.25) * fload u (idx2' (v "j") (v "i" - i 1))
                                  + (f 1.0 + f 0.5) * fload u (idx2' (v "j") (v "i"))
                                  - f 0.25 * fload u (idx2' (v "j") (v "i" + i 1))
                                  - f 0.25 * fload q (idx2' (v "i") (v "j" - i 1)))
                                 / (f 0.25 * fload p (idx2' (v "i") (v "j" - i 1)) - f 1.5)) ]);
                       fstore vv (idx2' (v "n" - i 1) (v "i")) (f 1.0);
                       ForStep ("j", v "n" - i 2, i 0, i 0 - i 1,
                                [ fstore vv (idx2 "j" "i")
                                    (fload p (idx2 "i" "j") * fload vv (idx2' (v "j" + i 1) (v "i"))
                                     + fload q (idx2 "i" "j")) ]) ]);
                (* row sweep *)
                For ("i", i 1, v "n" - i 1,
                     [ fstore u (idx2' (v "i") (i 0)) (f 1.0);
                       fstore p (idx2' (v "i") (i 0)) (f 0.0);
                       fstore q (idx2' (v "i") (i 0)) (f 1.0);
                       For ("j", i 1, v "n" - i 1,
                            [ fstore p (idx2 "i" "j")
                                (Unop (Neg, f 0.25)
                                 / (f 0.25 * fload p (idx2' (v "i") (v "j" - i 1)) - f 1.5));
                              fstore q (idx2 "i" "j")
                                ((Unop (Neg, f 0.25) * fload vv (idx2' (v "i" - i 1) (v "j"))
                                  + (f 1.0 + f 0.5) * fload vv (idx2 "i" "j")
                                  - f 0.25 * fload vv (idx2' (v "i" + i 1) (v "j"))
                                  - f 0.25 * fload q (idx2' (v "i") (v "j" - i 1)))
                                 / (f 0.25 * fload p (idx2' (v "i") (v "j" - i 1)) - f 1.5)) ]);
                       fstore u (idx2' (v "i") (v "n" - i 1)) (f 1.0);
                       ForStep ("j", v "n" - i 2, i 0, i 0 - i 1,
                                [ fstore u (idx2 "i" "j")
                                    (fload p (idx2 "i" "j") * fload u (idx2' (v "i") (v "j" + i 1))
                                     + fload q (idx2 "i" "j")) ]) ]) ]) ]
     @ checksum u (v "n" * v "n")
     @ [ Return (Some (v "acc")) ])

(** All 30 kernels with their default problem size. *)
let generators =
  [ two_mm; three_mm; adi; atax; bicg; cholesky; correlation; covariance;
    deriche; doitgen; durbin; fdtd_2d; floyd_warshall; gemm; gemver; gesummv;
    gramschmidt; heat_3d; jacobi_1d; jacobi_2d; lu; ludcmp; mvt; nussinov;
    seidel_2d; symm; syr2k; syrk; trisolv; trmm ]

(** [all ~n ()] builds every kernel as (name, compiled module). *)
let all ?(n = default_n) () =
  List.map
    (fun gen ->
       let name, p = gen ~n in
       (name, Mc_compile.compile p))
    generators

let names = List.map (fun gen -> fst (gen ~n:2)) generators
