(** The analysis consumer: drains hook-event rings and replays each
    event into the unmodified {!Wasabi.Analysis.t} callbacks via
    {!Wasabi.Analysis.apply}.

    A consumer owns one or more (ring, analysis) pairs — worker [w]'s
    ring goes to consumer [w mod consumers] — and each pair's analysis
    state is touched only by this consumer domain, so user analyses need
    no locking. A single-ring consumer blocks on {!Ring.pop}; a
    multi-ring consumer round-robins {!Ring.try_pop} in bounded batches
    (fairness between rings) with a spin-then-sleep backoff when every
    ring is empty, since one cannot block on several conditions at once.

    Latency samples ([Ev_t]) are measured at application time: the
    reported delivery latency is production-to-{e applied}, the figure
    that tells you how stale the analysis's view of the execution is. *)

type outcome = {
  c_events : int;  (** events applied *)
  c_lat_ns : int64 list;  (** sampled production-to-applied latencies *)
}

let apply_msg a events lats = function
  | Worker.Ev ev ->
    incr events;
    Wasabi.Analysis.apply a ev;
    false
  | Worker.Ev_t (t0, ev) ->
    incr events;
    Wasabi.Analysis.apply a ev;
    lats := Int64.sub (Obs.Clock.now_ns ()) t0 :: !lats;
    false
  | Worker.Done -> true

(** Drain every ring to its [Done] marker. Call from inside the
    consumer's own domain. *)
let drain (pairs : (Worker.msg Ring.t * Wasabi.Analysis.t) array) : outcome =
  let events = ref 0 and lats = ref [] in
  (match pairs with
   | [| (ring, a) |] ->
     (* sole ring: block on it directly *)
     let rec loop () = if not (apply_msg a events lats (Ring.pop ring)) then loop () in
     loop ()
   | _ ->
     let n = Array.length pairs in
     let finished = Array.make n false in
     let remaining = ref n in
     let idle_sweeps = ref 0 in
     while !remaining > 0 do
       let progressed = ref false in
       Array.iteri
         (fun i (ring, a) ->
            if not finished.(i) then begin
              (* bounded batch per sweep so one busy ring cannot starve
                 the others' backpressure *)
              let budget = ref 256 in
              let continue_ = ref true in
              while !continue_ && !budget > 0 do
                match Ring.try_pop ring with
                | None -> continue_ := false
                | Some msg ->
                  progressed := true;
                  decr budget;
                  if apply_msg a events lats msg then begin
                    finished.(i) <- true;
                    decr remaining;
                    continue_ := false
                  end
              done
            end)
         pairs;
       if !progressed then idle_sweeps := 0
       else begin
         incr idle_sweeps;
         (* spin briefly for latency, then yield the core: on machines
            with fewer cores than domains the producers need it *)
         if !idle_sweeps < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002
       end
     done);
  { c_events = !events; c_lat_ns = !lats }
