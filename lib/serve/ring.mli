(** A bounded single-producer single-consumer ring buffer — the
    hook-event channel between one interpreter worker domain and its
    analysis consumer. Lock-free on the fast path (SC atomic indices
    publish plain slot writes); a mutex/condition pair exists only to
    block on full/empty, so the ring behaves on boxes with fewer cores
    than domains. [push] blocking on a full ring is the backpressure
    contract: a slow analysis throttles its producer, it never loses
    events.

    Exactly one domain may push and exactly one may pop; the two may
    differ. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy capacity]: capacity is rounded up to a power of two.
    [dummy] fills unused slots so consumed events are not retained.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
(** Elements currently buffered (racy by nature; exact when quiescent). *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while the ring is full (producer side only). *)

val pop : 'a t -> 'a
(** Dequeue, blocking while the ring is empty (consumer side only). *)

val try_pop : 'a t -> 'a option
(** Dequeue if an element is ready, never blocking (consumer side only).
    Lets one consumer multiplex several rings. *)
