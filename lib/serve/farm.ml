(** The instance farm: instrument/instantiate a module {e once}, then
    serve batches of isolated executions across OCaml 5 domains.

    Sharing model (what one decode+instrument+instantiate buys every
    worker): the template runtime owns the metadata, hook specs,
    [br_table] index and the instance's pre-decoded instruction streams
    with all per-function side tables — all immutable after binding.
    Each worker domain forks a copy-on-write instance ([Runtime.fork]:
    fresh memory/globals/table/stack, rebound hook imports), optionally
    tier-1 compiles its own closures (closures close over their
    instance, so they are per-fork by construction), captures a pristine
    snapshot, and serves its batch restore-per-run.

    Work distribution is static sharding — worker [w] of [N] serves
    ⌈runs/N⌉ or ⌊runs/N⌋ runs — not work stealing: batches are uniform
    (same module, same entry), so stealing would buy nothing and cost a
    shared queue on the hot path.

    Dispatch modes:
    - [Sync]: analysis callbacks run inline in the worker's hooks — the
      default and the reference semantics;
    - [Async]: hooks reify events into per-worker SPSC rings drained by
      [consumers] consumer domains (worker [w] → consumer [w mod
      consumers]); bounded rings give backpressure, so the stream stays
      equal to sync dispatch ({!verify_stream_equality} checks exactly
      this), just decoupled — a heavy analysis overlaps the next run's
      interpretation instead of stalling it.

    Everything the farm measures is exported through {!Obs.Metrics}
    (runs, faults, events, instances/s, sampled event delivery
    latency), so `wasabi serve --metrics-out` and the Prometheus
    scrape see the same numbers the bench reports. *)

open Wasm

type mode = Sync | Async of { consumers : int; capacity : int }

type stats = {
  st_domains : int;
  st_mode : string;  (** ["sync"] or ["async(c=N,cap=N)"] *)
  st_runs : int;
  st_faults : int;
  st_events : int;  (** events shipped through rings (async mode) *)
  st_elapsed_s : float;
  st_instances_per_sec : float;
  st_lat_p50_ns : float;  (** production-to-applied, sampled; 0 in sync *)
  st_lat_p99_ns : float;
}

let mode_label = function
  | Sync -> "sync"
  | Async { consumers; capacity } -> Printf.sprintf "async(c=%d,cap=%d)" consumers capacity

let m_runs =
  lazy (Obs.Metrics.counter "wasabi_serve_runs_total" ~help:"Executions served by the farm")
let m_faults =
  lazy
    (Obs.Metrics.counter "wasabi_serve_faults_total"
       ~help:"Served executions contained by restore (trap/exhaustion/governor)")
let m_events =
  lazy
    (Obs.Metrics.counter "wasabi_serve_events_total"
       ~help:"Hook events shipped through async dispatch rings")
let m_ips =
  lazy
    (Obs.Metrics.gauge "wasabi_serve_instances_per_second"
       ~help:"Aggregate served executions per second, last farm run")
let m_lat =
  lazy
    (Obs.Metrics.histogram "wasabi_serve_event_latency_seconds"
       ~help:"Sampled hook-event production-to-applied latency (async dispatch)")

let percentile (sorted : int64 array) p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (p *. float_of_int (n - 1) +. 0.5) in
    Int64.to_float sorted.(max 0 (min (n - 1) i))

(** Serve [runs] executions of [entry] across [domains] worker domains.
    [make_analysis w] builds worker [w]'s analysis (its state is only
    ever touched by one domain: the worker itself under [Sync], the
    draining consumer under [Async]). [profile_into] turns on
    per-worker profilers and merges them at the end. *)
let run ?(tier1 = false) ?make_governor ?profile_into ?(args = []) ~mode ~domains
    ~runs ~entry ~(make_analysis : int -> Wasabi.Analysis.t)
    (res : Wasabi.Instrument.result) : stats =
  if domains < 1 then invalid_arg "Farm.run: domains must be positive";
  if runs < 0 then invalid_arg "Farm.run: runs must be non-negative";
  let _inst, template = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  let runs_of w = (runs / domains) + (if w < runs mod domains then 1 else 0) in
  let profile = Option.is_some profile_into in
  let spawn_worker w dispatch =
    Domain.spawn (fun () ->
        Worker.run ~template ~dispatch ~tier1 ?make_governor ~profile ~entry ~args
          ~runs:(runs_of w) ())
  in
  let t0 = Obs.Clock.now_ns () in
  let worker_outcomes, consumer_outcomes =
    match mode with
    | Sync ->
      let analyses = Array.init domains make_analysis in
      let doms = Array.init domains (fun w -> spawn_worker w (Worker.Sync analyses.(w))) in
      (Array.map Domain.join doms, [||])
    | Async { consumers; capacity } ->
      let consumers = max 1 (min consumers domains) in
      let rings = Array.init domains (fun _ -> Ring.create ~dummy:Worker.Done capacity) in
      let analyses = Array.init domains make_analysis in
      (* consumers first: a full ring blocks its producer until drained *)
      let cons =
        Array.init consumers (fun c ->
            let pairs =
              Array.of_list
                (List.filter_map
                   (fun w ->
                      if w mod consumers = c then Some (rings.(w), analyses.(w)) else None)
                   (List.init domains Fun.id))
            in
            Domain.spawn (fun () -> Consumer.drain pairs))
      in
      let doms = Array.init domains (fun w -> spawn_worker w (Worker.Async rings.(w))) in
      let wo = Array.map Domain.join doms in
      let co = Array.map Domain.join cons in
      (wo, co)
  in
  let elapsed_s = Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0) in
  (match profile_into with
   | None -> ()
   | Some into ->
     Array.iter
       (fun (o : Worker.outcome) ->
          Option.iter (fun p -> Obs.Profile.merge ~into p) o.Worker.w_profile)
       worker_outcomes);
  let total_runs = Array.fold_left (fun a (o : Worker.outcome) -> a + o.w_runs) 0 worker_outcomes in
  let faults = Array.fold_left (fun a (o : Worker.outcome) -> a + o.w_faults) 0 worker_outcomes in
  let events =
    Array.fold_left (fun a (o : Consumer.outcome) -> a + o.c_events) 0 consumer_outcomes
  in
  let lats =
    Array.of_list
      (Array.fold_left
         (fun acc (o : Consumer.outcome) -> List.rev_append o.c_lat_ns acc)
         [] consumer_outcomes)
  in
  Array.sort Int64.compare lats;
  let ips = if elapsed_s > 0.0 then float_of_int total_runs /. elapsed_s else 0.0 in
  Obs.Metrics.inc (Lazy.force m_runs) ~by:(float_of_int total_runs);
  Obs.Metrics.inc (Lazy.force m_faults) ~by:(float_of_int faults);
  Obs.Metrics.inc (Lazy.force m_events) ~by:(float_of_int events);
  Obs.Metrics.set (Lazy.force m_ips) ips;
  Array.iter
    (fun ns -> Obs.Metrics.observe (Lazy.force m_lat) (Obs.Clock.ns_to_s ns))
    lats;
  {
    st_domains = domains;
    st_mode = mode_label mode;
    st_runs = total_runs;
    st_faults = faults;
    st_events = events;
    st_elapsed_s = elapsed_s;
    st_instances_per_sec = ips;
    st_lat_p50_ns = percentile lats 0.50;
    st_lat_p99_ns = percentile lats 0.99;
  }

(** Differential check backing the async path's correctness claim: the
    reified event stream delivered through a real ring to a consumer
    domain equals the stream a synchronous sink observes, per instance,
    in order. Uses [compare] (not [=]) so NaN payloads compare equal to
    themselves. *)
let verify_stream_equality ?(runs = 1) ?(args = []) ~entry
    (res : Wasabi.Instrument.result) : bool =
  let _inst, template = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  let sync_events =
    let acc = ref [] in
    let inst, _rt =
      Wasabi.Runtime.fork ~sink:(fun ev -> acc := ev :: !acc) template
        Wasabi.Analysis.default
    in
    let snap = Snapshot.capture inst in
    for _ = 1 to runs do
      Snapshot.restore snap inst;
      try ignore (Interp.invoke_export inst entry args : Value.t list)
      with e when Worker.is_contained e -> ()
    done;
    List.rev !acc
  in
  let async_events =
    let ring = Ring.create ~dummy:Worker.Done 512 in
    let collector =
      Domain.spawn (fun () ->
          let acc = ref [] in
          let rec loop () =
            match Ring.pop ring with
            | Worker.Done -> List.rev !acc
            | Worker.Ev ev | Worker.Ev_t (_, ev) ->
              acc := ev :: !acc;
              loop ()
          in
          loop ())
    in
    ignore
      (Worker.run ~template ~dispatch:(Worker.Async ring) ~tier1:false ~entry ~args
         ~runs ()
        : Worker.outcome);
    Domain.join collector
  in
  compare sync_events async_events = 0
