(** A bounded single-producer single-consumer ring buffer: the hook-event
    channel between one interpreter worker domain and its analysis
    consumer domain.

    The fast path is lock-free: [head] (consumed count) and [tail]
    (produced count) are monotonically increasing SC atomics, and slot
    contents are published by the [tail] store (an atomic write an atomic
    read observes carries a happens-before edge over the preceding plain
    slot write, per the OCaml 5 memory model). The mutex and conditions
    exist only to {e block}: a full push or empty pop parks on a
    condition instead of spinning, which matters on machines with fewer
    cores than domains — a spin-only ring would starve the very consumer
    it is waiting for.

    Lost-wakeup freedom is the classic Dekker argument over SC atomics:
    a sleeper increments [sleepers] (under the lock) {e before}
    re-checking the indices, and a waker updates its index {e before}
    reading [sleepers] — so either the waker sees the sleeper and
    broadcasts under the lock, or the sleeper's re-check sees the new
    index and never sleeps.

    Backpressure is the contract, not an accident: [push] blocks when the
    ring is full, so a slow analysis throttles its producer instead of
    dropping events — the async event stream stays {e equal} to the
    synchronous one, just decoupled in time. *)

type 'a t = {
  buf : 'a array;
  mask : int;  (** capacity - 1; capacity is a power of two *)
  dummy : 'a;  (** parks in consumed slots so events are not retained *)
  head : int Atomic.t;  (** total elements consumed *)
  tail : int Atomic.t;  (** total elements produced *)
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  sleepers : int Atomic.t;  (** threads parked on either condition *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ~dummy capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  let cap = next_pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    sleepers = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head

(* Broadcast [cond] if anyone may be parked. The broadcast happens under
   the lock, after the index update: a sleeper is either already in
   [Condition.wait] (and is woken) or still holds the lock pre-wait (the
   waker blocks on the mutex until the sleeper releases it by waiting). *)
let wake t cond =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast cond;
    Mutex.unlock t.lock
  end

(* Park until [ready ()]; counted in [sleepers] so wakers broadcast. *)
let park t cond ready =
  Mutex.lock t.lock;
  Atomic.incr t.sleepers;
  while not (ready ()) do
    Condition.wait cond t.lock
  done;
  Atomic.decr t.sleepers;
  Mutex.unlock t.lock

let push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then
    park t t.not_full (fun () -> tail - Atomic.get t.head <= t.mask);
  t.buf.(tail land t.mask) <- v;
  Atomic.set t.tail (tail + 1);
  wake t t.not_empty

(* Single consumer: only [pop]/[try_pop] advance [head]. *)
let take t head =
  let i = head land t.mask in
  let v = t.buf.(i) in
  t.buf.(i) <- t.dummy;
  Atomic.set t.head (head + 1);
  wake t t.not_full;
  v

let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then
    park t t.not_empty (fun () -> Atomic.get t.tail <> head);
  take t head

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None else Some (take t head)
