(** The instance farm: instrument/instantiate once, serve batches of
    restore-isolated executions across OCaml 5 domains, with analysis
    dispatch either inline in the workers ([Sync], the reference
    semantics) or reified through per-worker SPSC rings to consumer
    domains ([Async], backpressured so the event stream stays equal).
    Throughput and sampled event latency are exported through
    {!Obs.Metrics}. *)

type mode =
  | Sync
  | Async of { consumers : int; capacity : int }
      (** [consumers] draining domains (clamped to [1..domains]); each
          worker's ring holds [capacity] events (rounded to a power of
          two) — a full ring blocks its producer (backpressure). *)

type stats = {
  st_domains : int;
  st_mode : string;  (** ["sync"] or ["async(c=N,cap=N)"] *)
  st_runs : int;
  st_faults : int;  (** runs contained by restore (trap/exhaustion/budget) *)
  st_events : int;  (** events shipped through rings (async mode) *)
  st_elapsed_s : float;
  st_instances_per_sec : float;
  st_lat_p50_ns : float;  (** production-to-applied, sampled; 0 in sync *)
  st_lat_p99_ns : float;
}

val run :
  ?tier1:bool ->
  ?make_governor:(unit -> Wasm.Governor.t) ->
  ?profile_into:Obs.Profile.t ->
  ?args:Wasm.Value.t list ->
  mode:mode ->
  domains:int ->
  runs:int ->
  entry:string ->
  make_analysis:(int -> Wasabi.Analysis.t) ->
  Wasabi.Instrument.result ->
  stats
(** Serve [runs] executions of the [entry] export across [domains]
    worker domains (static sharding). [make_analysis w] builds worker
    [w]'s analysis; its state is touched by exactly one domain (the
    worker under [Sync], the draining consumer under [Async]), so
    analyses need no locking. [make_governor] builds one governor per
    worker, re-armed before every run. [profile_into] enables
    per-worker profilers, merged into the given profile at the end.
    @raise Invalid_argument on [domains < 1] or [runs < 0]. *)

val verify_stream_equality :
  ?runs:int ->
  ?args:Wasm.Value.t list ->
  entry:string ->
  Wasabi.Instrument.result ->
  bool
(** Differentially verify that the async path's event stream — reified,
    shipped through a real ring, applied by a consumer domain — equals
    the stream a synchronous sink observes for the same executions, in
    order. NaN payloads compare equal to themselves. *)
