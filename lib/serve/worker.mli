(** One serving worker: a copy-on-write fork of the farm's template
    runtime, run for a batch of executions with restore-per-run
    isolation. Sync dispatch binds the analysis callbacks directly into
    the hooks; async dispatch reifies events into the worker's SPSC ring
    for a consumer domain, sampling production timestamps for latency
    percentiles. *)

type msg =
  | Ev of Wasabi.Analysis.event
  | Ev_t of int64 * Wasabi.Analysis.event
      (** latency sample: production timestamp (ns) + the event *)
  | Done  (** the worker's batch is complete; no more events follow *)

val sample_every : int
(** Every [sample_every]-th event is pushed as [Ev_t]. *)

type dispatch = Sync of Wasabi.Analysis.t | Async of msg Ring.t

type outcome = {
  w_runs : int;  (** completed runs (including contained faults) *)
  w_faults : int;  (** runs that trapped / exhausted / hit a budget *)
  w_events : int;  (** events produced (async mode; 0 in sync mode) *)
  w_profile : Obs.Profile.t option;
}

val is_contained : exn -> bool
(** Faults a restore erases: traps, fuel exhaustion, governor kills,
    injected host faults. Anything else propagates out of the worker. *)

val run :
  template:Wasabi.Runtime.t ->
  dispatch:dispatch ->
  tier1:bool ->
  ?make_governor:(unit -> Wasm.Governor.t) ->
  ?profile:bool ->
  entry:string ->
  args:Wasm.Value.t list ->
  runs:int ->
  unit ->
  outcome
(** Fork the template, optionally tier-1 compile and attach a fresh
    profiler, capture a pristine snapshot, then execute [runs]
    restore-isolated invocations of [entry]. Call from inside the
    worker's own domain. In async mode, pushes [Done] after the batch. *)
