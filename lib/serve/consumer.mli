(** The analysis consumer: drains hook-event rings and replays each
    event into unmodified {!Wasabi.Analysis.t} callbacks. Each (ring,
    analysis) pair's state is touched only by the consumer domain
    draining it, so user analyses need no locking. *)

type outcome = {
  c_events : int;  (** events applied *)
  c_lat_ns : int64 list;  (** sampled production-to-applied latencies *)
}

val drain : (Worker.msg Ring.t * Wasabi.Analysis.t) array -> outcome
(** Drain every ring to its [Done] marker, applying events in order per
    ring. A sole ring is blocked on directly; several are round-robined
    in bounded batches with spin-then-sleep backoff. Call from inside
    the consumer's own domain. *)
