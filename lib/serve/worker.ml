(** One serving worker: a copy-on-write fork of the farm's template
    runtime, run for a batch of governed executions with restore-per-run
    isolation.

    Setup per worker (once, amortized over the batch): [Runtime.fork]
    rebinds the shared instrumented module's hook imports to this
    worker's own runtime — pre-decoded code, hook specs and [br_table]
    metadata stay shared with every other worker — then optionally
    tier-1-compiles the fork's bodies and captures a pristine
    {!Wasm.Snapshot}. Each run restores the snapshot, re-arms the
    governor and invokes the entry export; traps, fuel exhaustion and
    governor kills are contained per run (the next restore erases them).

    Dispatch is pluggable: [`Sync a] binds the analysis callbacks
    directly into the hooks (the reference path); [`Async ring] binds a
    reifying sink that ships {!Wasabi.Analysis.event}s through the
    worker's SPSC ring to a consumer domain, stamping every
    {!sample_every}-th event with its production time so consumers can
    report hook-event delivery latency percentiles. *)

open Wasm

type msg =
  | Ev of Wasabi.Analysis.event
  | Ev_t of int64 * Wasabi.Analysis.event
      (** latency sample: production timestamp (ns) + the event *)
  | Done  (** the worker's batch is complete; no more events follow *)

(** Every 64th event carries a timestamp: cheap enough to leave on, dense
    enough for stable p50/p99 estimates. *)
let sample_every = 64

type dispatch = Sync of Wasabi.Analysis.t | Async of msg Ring.t

type outcome = {
  w_runs : int;  (** completed runs (including contained faults) *)
  w_faults : int;  (** runs that trapped / exhausted / hit a budget *)
  w_events : int;  (** events produced (async mode; 0 in sync mode) *)
  w_profile : Obs.Profile.t option;
}

(** Faults contained per run: anything restore erases. *)
let is_contained = function
  | Value.Trap _ | Interp.Exhaustion _ | Error.Governor_limit _ -> true
  | e -> Interp.is_fault_exn e

(** The worker body. Runs inside its own domain; everything it touches
    after the fork is worker-private except the ring (SPSC by
    construction: this worker is the only producer). *)
let run ~(template : Wasabi.Runtime.t) ~dispatch ~tier1 ?make_governor
    ?(profile = false) ~entry ~args ~runs () : outcome =
  let events = ref 0 in
  let sink, analysis =
    match dispatch with
    | Sync a -> (None, a)
    | Async ring ->
      let push ev =
        let n = !events in
        events := n + 1;
        if n mod sample_every = 0 then
          Ring.push ring (Ev_t (Obs.Clock.now_ns (), ev))
        else Ring.push ring (Ev ev)
      in
      (Some push, Wasabi.Analysis.default)
  in
  let inst, rt = Wasabi.Runtime.fork ?sink template analysis in
  if tier1 then ignore (Tier1.compile_all inst : int);
  let prof =
    match profile with
    | false -> None
    | true ->
      let p = Obs.Profile.create () in
      Wasabi.Runtime.attach_profiler rt (Some p);
      Some p
  in
  let gov = Option.map (fun mk -> mk ()) make_governor in
  Interp.set_governor inst gov;
  let snap = Snapshot.capture inst in
  let faults = ref 0 in
  for _ = 1 to runs do
    Snapshot.restore snap inst;
    Option.iter Governor.arm gov;
    try ignore (Interp.invoke_export inst entry args : Value.t list)
    with e when is_contained e -> incr faults
  done;
  (match dispatch with Async ring -> Ring.push ring Done | Sync _ -> ());
  { w_runs = runs; w_faults = !faults; w_events = !events; w_profile = prof }
