(** Instruction coverage (paper, Table 4, 11 LoC): records which static
    instructions were executed at least once; useful for assessing test
    quality. Uses all hooks. *)

open Wasabi

type t = {
  executed : (Location.t, unit) Hashtbl.t;
}

let create () = { executed = Hashtbl.create 256 }

let groups = Hook.all

let mark t loc = Hashtbl.replace t.executed loc ()

let analysis (t : t) : Analysis.t =
  let m1 loc = mark t loc in
  let m2 loc _ = mark t loc in
  let m3 loc _ _ = mark t loc in
  let m4 loc _ _ _ = mark t loc in
  let m5 loc _ _ _ _ = mark t loc in
  {
    Analysis.nop = m1;
    unreachable = m1;
    if_ = m2;
    br = m2;
    br_if = m3;
    br_table = m4;
    begin_ = m2;
    end_ = m3;
    const = m2;
    drop = m2;
    select = m4;
    unary = m4;
    binary = m5;
    local = m4;
    global = m4;
    load = m4;
    store = m4;
    memory_size = m2;
    memory_grow = m3;
    call_pre = m4;
    call_post = m2;
    return_ = m2;
    start = m1;
  }

let executed_count t = Hashtbl.length t.executed
let is_covered t loc = Hashtbl.mem t.executed loc

(** Fraction of the module's static instructions that executed (block
    delimiters included, matching what hooks can observe). Synthetic
    locations — the implicit function begin ([-1]) and end (body length)
    — are excluded from the numerator. *)
let coverage t (m : Wasm.Ast.module_) =
  let n_imp = Wasm.Ast.num_imported_funcs m in
  let body_lengths = Array.of_list (List.map (fun f -> List.length f.Wasm.Ast.body) m.funcs) in
  let real loc =
    let k = loc.Wasabi.Location.func - n_imp in
    loc.Wasabi.Location.instr >= 0
    && k >= 0
    && k < Array.length body_lengths
    && loc.Wasabi.Location.instr < body_lengths.(k)
  in
  let executed = Hashtbl.fold (fun loc () acc -> if real loc then acc + 1 else acc) t.executed 0 in
  let static = Wasm.Ast.instruction_count m in
  if static = 0 then 1.0 else float_of_int executed /. float_of_int static

let report t m =
  Printf.sprintf "instruction coverage: %d locations executed (%.1f%% of static instructions)\n"
    (executed_count t)
    (100.0 *. coverage t m)
