(** Branch coverage (paper, Table 4 and Figure 7): which directions of
    every conditional construct were taken. Uses the [if], [br_if],
    [br_table], and [select] hooks. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val branches_at : t -> Wasabi.Location.t -> int list
(** Directions observed at a location (0/1 for two-way branches, table
    indices for [br_table]), sorted. *)

val partially_covered : t -> Wasabi.Location.t list
(** Locations where only one direction of a two-way branch was observed. *)

val covered_locations : t -> int
val report : t -> string
