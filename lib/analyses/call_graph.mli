(** Dynamic call graph (paper, Table 4), including indirect calls resolved
    to their actual targets. Uses only the [call] hooks. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val edges : t -> (int * int) list
val has_edge : t -> int -> int -> bool
val num_edges : t -> int

val reachable : t -> int list -> int list
(** Functions reachable from the given roots in the recorded graph. *)

val to_dot : ?name:(int -> string) -> t -> string
(** Graphviz rendering; indirect-call edges are dashed. *)

val report : t -> string
