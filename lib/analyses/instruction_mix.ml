(** Instruction mix analysis (paper, Table 4, 42 LoC): counts how often
    each kind of instruction is executed. Serves as a basis for
    performance and security analyses. Uses all hooks. *)

open Wasabi

type t = {
  counts : (string, int ref) Hashtbl.t;
  mutable total : int;
}

let create () = { counts = Hashtbl.create 64; total = 0 }

let groups = Hook.all

(* The hook-dispatch fast path makes the analysis callback itself the
   dominant cost for this analysis, so the counters avoid per-event
   allocation: one hash lookup per bump (int ref cells instead of
   find + replace) and statically allocated keys for the block/const
   shapes that would otherwise concatenate a fresh string per event. *)
let bump t key =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts key with
  | Some cell -> incr cell
  | None -> Hashtbl.add t.counts key (ref 1)

let begin_key = function
  | Hook.Bfunction -> "begin_function"
  | Bblock -> "begin_block"
  | Bloop -> "begin_loop"
  | Bif -> "begin_if"
  | Belse -> "begin_else"

let end_key = function
  | Hook.Bfunction -> "end_function"
  | Bblock -> "end_block"
  | Bloop -> "end_loop"
  | Bif -> "end_if"
  | Belse -> "end_else"

let const_key v =
  match Wasm.Value.type_of v with
  | Wasm.Types.I32T -> "i32.const"
  | I64T -> "i64.const"
  | F32T -> "f32.const"
  | F64T -> "f64.const"

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    nop = (fun _ -> bump t "nop");
    unreachable = (fun _ -> bump t "unreachable");
    if_ = (fun _ _ -> bump t "if");
    br = (fun _ _ -> bump t "br");
    br_if = (fun _ _ _ -> bump t "br_if");
    br_table = (fun _ _ _ _ -> bump t "br_table");
    begin_ = (fun _ k -> bump t (begin_key k));
    end_ = (fun _ k _ -> bump t (end_key k));
    const = (fun _ v -> bump t (const_key v));
    drop = (fun _ _ -> bump t "drop");
    select = (fun _ _ _ _ -> bump t "select");
    unary = (fun _ op _ _ -> bump t op);
    binary = (fun _ op _ _ _ -> bump t op);
    local = (fun _ op _ _ -> bump t op);
    global = (fun _ op _ _ -> bump t op);
    load = (fun _ op _ _ -> bump t op);
    store = (fun _ op _ _ -> bump t op);
    memory_size = (fun _ _ -> bump t "memory.size");
    memory_grow = (fun _ _ _ -> bump t "memory.grow");
    call_pre =
      (fun _ _ _ ti ->
         bump t (match ti with None -> "call" | Some _ -> "call_indirect"));
    return_ = (fun _ _ -> bump t "return");
    start = (fun _ -> bump t "start");
  }

(** Absorb [src] into [into]: per-key counts and the total are summed.
    The ref-cell counters are single-domain state, so parallel runs
    (serve workers, fuzz jobs) each count into their own [t] and merge
    at report time. [src] is left unchanged. *)
let merge ~into src =
  Hashtbl.iter
    (fun key cell ->
       match Hashtbl.find_opt into.counts key with
       | Some dst -> dst := !dst + !cell
       | None -> Hashtbl.add into.counts key (ref !cell))
    src.counts;
  into.total <- into.total + src.total

let count t key =
  match Hashtbl.find_opt t.counts key with Some c -> !c | None -> 0

let total t = t.total

(** Counts sorted by frequency, most frequent first. *)
let sorted t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "instruction mix: %d instructions executed\n" t.total);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-20s %8d\n" k v))
    (sorted t);
  Buffer.contents buf
