(** Instruction mix analysis (paper, Table 4, 42 LoC): counts how often
    each kind of instruction is executed. Serves as a basis for
    performance and security analyses. Uses all hooks. *)

open Wasabi

type t = {
  counts : (string, int) Hashtbl.t;
  mutable total : int;
}

let create () = { counts = Hashtbl.create 64; total = 0 }

let groups = Hook.all

let bump t key =
  t.total <- t.total + 1;
  Hashtbl.replace t.counts key (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key))

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    nop = (fun _ -> bump t "nop");
    unreachable = (fun _ -> bump t "unreachable");
    if_ = (fun _ _ -> bump t "if");
    br = (fun _ _ -> bump t "br");
    br_if = (fun _ _ _ -> bump t "br_if");
    br_table = (fun _ _ _ _ -> bump t "br_table");
    begin_ = (fun _ k -> bump t ("begin_" ^ Hook.block_kind_name k));
    end_ = (fun _ k _ -> bump t ("end_" ^ Hook.block_kind_name k));
    const = (fun _ v -> bump t (Wasm.Types.string_of_value_type (Wasm.Value.type_of v) ^ ".const"));
    drop = (fun _ _ -> bump t "drop");
    select = (fun _ _ _ _ -> bump t "select");
    unary = (fun _ op _ _ -> bump t op);
    binary = (fun _ op _ _ _ -> bump t op);
    local = (fun _ op _ _ -> bump t op);
    global = (fun _ op _ _ -> bump t op);
    load = (fun _ op _ _ -> bump t op);
    store = (fun _ op _ _ -> bump t op);
    memory_size = (fun _ _ -> bump t "memory.size");
    memory_grow = (fun _ _ _ -> bump t "memory.grow");
    call_pre = (fun _ _ _ ti -> bump t (if ti = None then "call" else "call_indirect"));
    return_ = (fun _ _ -> bump t "return");
    start = (fun _ -> bump t "start");
  }

let count t key = Option.value ~default:0 (Hashtbl.find_opt t.counts key)
let total t = t.total

(** Counts sorted by frequency, most frequent first. *)
let sorted t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "instruction mix: %d instructions executed\n" t.total);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-20s %8d\n" k v))
    (sorted t);
  Buffer.contents buf
