(** Instruction coverage (paper, Table 4): which static instructions
    executed at least once. Uses all hooks. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val executed_count : t -> int
val is_covered : t -> Wasabi.Location.t -> bool

val coverage : t -> Wasm.Ast.module_ -> float
(** Fraction of the module's static instructions that executed; synthetic
    function begin/end locations are excluded. *)

val report : t -> Wasm.Ast.module_ -> string
