(** Value-origin (provenance) tracking: every value carries the set of
    source locations where it was created, propagated through the generic
    {!Shadow} machine. Origins are reported for the arguments of calls to
    configured probe functions. *)

type probe = {
  probe_loc : Wasabi.Location.t;
  probe_func : int;
  probe_arg : int;
  probe_origins : Wasabi.Location.Set.t;
}

type t

val create : ?probes:int list -> unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val probes : t -> probe list
(** Probe observations in execution order. *)

val memory_origins : t -> int -> Wasabi.Location.Set.t
val report : t -> string
