(** Memory access tracing (paper, Table 4, 11 LoC): records all loads and
    stores for later off-line analysis, e.g. to detect cache-unfriendly
    access patterns. Uses the [load] and [store] hooks. *)

open Wasabi

type access = {
  acc_loc : Location.t;
  acc_op : string;
  acc_addr : int32;
  acc_offset : int;
  acc_value : Wasm.Value.t;
  acc_is_store : bool;
}

type t = {
  mutable trace : access list;  (** reversed *)
  mutable loads : int;
  mutable stores : int;
}

let create () = { trace = []; loads = 0; stores = 0 }

let groups = Hook.of_list [ Hook.G_load; Hook.G_store ]

let effective_address (a : access) =
  Int64.add (Int64.logand (Int64.of_int32 a.acc_addr) 0xFFFFFFFFL) (Int64.of_int a.acc_offset)

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    load =
      (fun loc op (ma : Analysis.memarg) v ->
         t.loads <- t.loads + 1;
         t.trace <-
           { acc_loc = loc; acc_op = op; acc_addr = ma.addr; acc_offset = ma.offset;
             acc_value = v; acc_is_store = false }
           :: t.trace);
    store =
      (fun loc op (ma : Analysis.memarg) v ->
         t.stores <- t.stores + 1;
         t.trace <-
           { acc_loc = loc; acc_op = op; acc_addr = ma.addr; acc_offset = ma.offset;
             acc_value = v; acc_is_store = true }
           :: t.trace);
  }

(** Accesses in execution order. *)
let trace t = List.rev t.trace

let num_loads t = t.loads
let num_stores t = t.stores

let unique_addresses t =
  let seen = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace seen (effective_address a) ()) t.trace;
  Hashtbl.length seen

(** Average absolute stride between consecutive accesses — a simple
    cache-friendliness indicator. *)
let average_stride t =
  let rec go acc n = function
    | a :: (b :: _ as rest) ->
      let d = Int64.abs (Int64.sub (effective_address a) (effective_address b)) in
      go (acc +. Int64.to_float d) (n + 1) rest
    | _ -> if n = 0 then 0.0 else acc /. float_of_int n
  in
  go 0.0 0 (trace t)

let report t =
  Printf.sprintf
    "memory trace: %d loads, %d stores, %d unique addresses, avg stride %.1f bytes\n"
    t.loads t.stores (unique_addresses t) (average_stride t)
