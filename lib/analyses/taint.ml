(** Dynamic taint analysis (paper, Table 4, 208 LoC): associates a taint
    with every value and tracks propagation through instructions, function
    calls, locals, globals, and linear memory (memory shadowing as
    sketched in Section 2.3 of the paper), reporting illegal flows from
    sources to sinks.

    Implemented as an instantiation of the generic {!Shadow} machine with
    the lattice of source-id sets: results of calls to {e source}
    functions are freshly tainted, and every call to a {e sink} function
    is checked for tainted arguments. *)

open Wasabi

module Int_set = Set.Make (Int)

(** A taint is the set of source identifiers a value depends on. *)
type taint = Int_set.t

let untainted : taint = Int_set.empty
let join = Int_set.union

module Machine = Shadow.Make (struct
  type t = taint

  let bottom = untainted
  let join = join
  let is_bottom = Int_set.is_empty
end)

(** An illegal flow: a tainted value reached a sink. *)
type flow = {
  flow_sink_loc : Location.t;  (** call site of the sink *)
  flow_sink_func : int;
  flow_arg : int;  (** which sink argument was tainted *)
  flow_sources : Int_set.t;
}

type t = {
  machine : Machine.t;
  source_funcs : Int_set.t;
  sink_funcs : Int_set.t;
  mutable flows : flow list;
  mutable next_source : int;
}

let groups = Machine.groups

(** Mark a fresh source; returns its id. *)
let fresh_source t =
  let id = t.next_source in
  t.next_source <- id + 1;
  id

let create ?(sources = []) ?(sinks = []) () =
  (* tie the knot: the machine's transfer functions consult the analysis
     state, which holds the machine *)
  let self = ref None in
  let hooks = {
    Machine.default_hooks with
    call_observe =
      (fun loc ~callee ~args ~table_idx:_ ->
         let t = Option.get !self in
         if Int_set.mem callee t.sink_funcs then
           List.iteri
             (fun i taint ->
                if not (Int_set.is_empty taint) then
                  t.flows <-
                    { flow_sink_loc = loc; flow_sink_func = callee; flow_arg = i;
                      flow_sources = taint }
                    :: t.flows)
             args);
    call_result =
      (fun loc ~callee ~args ~frame_result ->
         let t = Option.get !self in
         if Int_set.mem callee t.source_funcs then Int_set.singleton (fresh_source t)
         else Machine.default_hooks.Machine.call_result loc ~callee ~args ~frame_result);
  } in
  let t = {
    machine = Machine.create ~hooks ();
    source_funcs = Int_set.of_list sources;
    sink_funcs = Int_set.of_list sinks;
    flows = [];
    next_source = 0;
  } in
  self := Some t;
  t

let analysis (t : t) : Analysis.t = Machine.analysis t.machine

(** Manually taint a memory range (e.g. a network buffer). *)
let taint_memory t ~addr ~len =
  let id = fresh_source t in
  Machine.set_memory t.machine ~addr ~len (Int_set.singleton id);
  id

let flows t = List.rev t.flows
let num_flows t = List.length t.flows

(** Taint currently associated with a byte of memory (for tests). *)
let memory_taint_at t addr = Machine.memory_at t.machine addr

let report t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "taint analysis: %d illegal flow(s)\n" (num_flows t));
  List.iter
    (fun f ->
       Buffer.add_string buf
         (Printf.sprintf "  sink func %d at %s, argument %d, sources {%s}\n" f.flow_sink_func
            (Location.to_string f.flow_sink_loc) f.flow_arg
            (String.concat "," (List.map string_of_int (Int_set.elements f.flow_sources)))))
    (flows t);
  Buffer.contents buf
