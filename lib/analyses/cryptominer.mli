(** Cryptominer detection (paper, Figure 1): profiles the integer
    instructions characteristic of mining kernels. Uses only [binary]. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val watched : string list
(** The signature instructions: i32 add/and/shl/shr_u/xor. *)

val count : t -> string -> int
val signature_ratio : t -> float
(** Fraction of executed binary instructions in the signature. *)

val looks_like_miner : ?threshold:float -> t -> bool
val report : t -> string
