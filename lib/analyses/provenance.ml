(** Value-origin (provenance) tracking, in the spirit of origin tracking
    for unwanted values (Bond et al., cited in the paper's related work):
    every runtime value carries the set of source-code locations where it
    was created (constants, loads from initial memory), propagated through
    the same shadow machine as the taint analysis.

    Useful to answer "where did this value come from?" — e.g. the origin
    of a zero that reaches a division, or of an index that goes out of
    bounds. The analysis reports the origins of values observed at
    configurable {e probe} functions. *)

open Wasabi

module Machine = Shadow.Make (struct
  type t = Location.Set.t

  let bottom = Location.Set.empty
  let join = Location.Set.union
  let is_bottom = Location.Set.is_empty
end)

type probe = {
  probe_loc : Location.t;  (** call site of the probe *)
  probe_func : int;
  probe_arg : int;
  probe_origins : Location.Set.t;
}

type t = {
  machine : Machine.t;
  probe_funcs : int list;
  mutable probes : probe list;
}

let groups = Machine.groups

(** [create ~probes ()] tracks origins and records them for every argument
    of calls to the given function indices. *)
let create ?(probes = []) () =
  let self = ref None in
  let hooks = {
    Machine.default_hooks with
    (* constants originate at their own location *)
    const_value = (fun loc _ -> Location.Set.singleton loc);
    (* loads merge the memory's origins with the load site itself, so
       values materialising from initial memory are attributed *)
    load_result =
      (fun loc _ ~memory ~address:_ ->
         if Location.Set.is_empty memory then Location.Set.singleton loc else memory);
    call_observe =
      (fun loc ~callee ~args ~table_idx:_ ->
         let t = Option.get !self in
         if List.mem callee t.probe_funcs then
           List.iteri
             (fun i origins ->
                t.probes <-
                  { probe_loc = loc; probe_func = callee; probe_arg = i;
                    probe_origins = origins }
                  :: t.probes)
             args);
  } in
  let t = { machine = Machine.create ~hooks (); probe_funcs = probes; probes = [] } in
  self := Some t;
  t

let analysis (t : t) : Analysis.t = Machine.analysis t.machine

(** Probes in execution order. *)
let probes t = List.rev t.probes

(** Origins of the value currently shadowing a byte of memory. *)
let memory_origins t addr = Machine.memory_at t.machine addr

let report t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "provenance: %d probe observation(s)\n" (List.length t.probes));
  List.iter
    (fun p ->
       Buffer.add_string buf
         (Printf.sprintf "  probe func %d at %s, argument %d, origins {%s}\n" p.probe_func
            (Location.to_string p.probe_loc) p.probe_arg
            (String.concat ","
               (List.map Location.to_string (Location.Set.elements p.probe_origins)))))
    (probes t);
  Buffer.contents buf
