(** Memory access tracing (paper, Table 4): records all loads and stores
    for later off-line analysis. Uses the [load] and [store] hooks. *)

type access = {
  acc_loc : Wasabi.Location.t;
  acc_op : string;
  acc_addr : int32;
  acc_offset : int;
  acc_value : Wasm.Value.t;
  acc_is_store : bool;
}

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val effective_address : access -> int64
val trace : t -> access list
(** Accesses in execution order. *)

val num_loads : t -> int
val num_stores : t -> int
val unique_addresses : t -> int

val average_stride : t -> float
(** Mean absolute address distance between consecutive accesses. *)

val report : t -> string
