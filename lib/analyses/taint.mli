(** Dynamic taint analysis (paper, Table 4): tracks taints through
    instructions, calls, locals, globals, and linear memory (memory
    shadowing, paper Section 2.3); reports flows from sources to sinks.
    An instantiation of the generic {!Shadow} machine. *)

module Int_set : Set.S with type elt = int

type taint = Int_set.t

val untainted : taint
val join : taint -> taint -> taint

type flow = {
  flow_sink_loc : Wasabi.Location.t;
  flow_sink_func : int;
  flow_arg : int;
  flow_sources : Int_set.t;
}

type t

val create : ?sources:int list -> ?sinks:int list -> unit -> t
(** Results of calls to [sources] (original function indices) are freshly
    tainted; arguments of calls to [sinks] are checked. *)

val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val taint_memory : t -> addr:int -> len:int -> int
(** Manually taint a memory range (e.g. a network buffer); returns the
    fresh source id. *)

val flows : t -> flow list
val num_flows : t -> int
val memory_taint_at : t -> int -> taint
val report : t -> string
