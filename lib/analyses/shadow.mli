(** A generic shadow machine over the Wasabi hook API: mirrors execution
    with shadow frames (stack + locals), shadow globals, and byte-granular
    shadow memory drawn from a join semilattice. The taint and provenance
    analyses are thin instantiations. *)

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val is_bottom : t -> bool
end

module Make (L : LATTICE) : sig
  type t

  (** Client-overridable transfer functions; unspecified behaviour is
      join-everything, bottom-for-fresh-values. *)
  type hooks = {
    const_value : Wasabi.Location.t -> Wasm.Value.t -> L.t;
    unary_result : Wasabi.Location.t -> string -> L.t -> L.t;
    binary_result : Wasabi.Location.t -> string -> L.t -> L.t -> L.t;
    load_result : Wasabi.Location.t -> string -> memory:L.t -> address:L.t -> L.t;
    call_observe :
      Wasabi.Location.t -> callee:int -> args:L.t list -> table_idx:int option -> unit;
    call_result :
      Wasabi.Location.t -> callee:int -> args:L.t list -> frame_result:L.t option -> L.t;
  }

  val default_hooks : hooks
  val create : ?hooks:hooks -> unit -> t
  val groups : Wasabi.Hook.Group_set.t
  val analysis : t -> Wasabi.Analysis.t

  val memory_at : t -> int -> L.t
  val set_memory : t -> addr:int -> len:int -> L.t -> unit
end
