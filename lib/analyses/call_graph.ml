(** Dynamic call graph analysis (paper, Table 4, 18 LoC): records the
    edges (caller function, callee function), including indirect calls —
    resolved to the actually called function by the Wasabi runtime — and
    calls between functions that are neither imported nor exported.
    Useful for finding dynamically dead code or reverse-engineering.
    Uses only the [call_pre] hook. *)

open Wasabi

module Edge_set = Set.Make (struct
  type t = int * int
  let compare = Stdlib.compare
end)

type t = {
  mutable edges : Edge_set.t;
  mutable indirect_edges : Edge_set.t;
}

let create () = { edges = Edge_set.empty; indirect_edges = Edge_set.empty }

let groups = Hook.of_list [ Hook.G_call ]

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    call_pre =
      (fun loc callee _args table_idx ->
         let edge = (loc.Location.func, callee) in
         t.edges <- Edge_set.add edge t.edges;
         if table_idx <> None then t.indirect_edges <- Edge_set.add edge t.indirect_edges);
  }

let edges t = Edge_set.elements t.edges
let has_edge t caller callee = Edge_set.mem (caller, callee) t.edges
let num_edges t = Edge_set.cardinal t.edges

(** Functions reachable from [roots] in the recorded graph. *)
let reachable t roots =
  let adj = Hashtbl.create 16 in
  Edge_set.iter
    (fun (a, b) -> Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    t.edges;
  let seen = Hashtbl.create 16 in
  let rec visit f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt adj f))
    end
  in
  List.iter visit roots;
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort Int.compare

(** Graphviz dot rendering; [name] labels functions (e.g. from
    {!Wasabi.Metadata.func_name}). *)
let to_dot ?(name = fun i -> Printf.sprintf "f%d" i) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph calls {\n";
  Edge_set.iter
    (fun (a, b) ->
       let style = if Edge_set.mem (a, b) t.indirect_edges then " [style=dashed]" else "" in
       Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (name a) (name b) style))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let report t =
  Printf.sprintf "call graph: %d edges (%d from indirect calls)\n" (num_edges t)
    (Edge_set.cardinal t.indirect_edges)
