(** Record and replay: captures the full analysis event stream and
    replays it into any other analysis off-line, or renders it as a text
    log. *)

type event

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val events : t -> event list
(** Events in execution order. *)

val length : t -> int

val replay : t -> Wasabi.Analysis.t -> unit
(** Re-dispatch a recorded trace into another analysis. *)

val event_to_string : event -> string
val to_log : t -> string
val report : t -> string
