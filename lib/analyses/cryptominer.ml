(** Cryptominer detection (paper, Figure 1, 10 LoC): profiles the binary
    instructions characteristic of mining workloads (i32 add / and / shl /
    shr_u / xor) and flags executions whose instruction signature is
    dominated by them — a re-implementation of the profiling part of
    SEISMIC. Uses only the [binary] hook. *)

open Wasabi

type t = {
  signature : (string, int) Hashtbl.t;
  mutable total_binary : int;
}

let create () = { signature = Hashtbl.create 8; total_binary = 0 }

let groups = Hook.of_list [ Hook.G_binary ]

let watched = [ "i32.add"; "i32.and"; "i32.shl"; "i32.shr_u"; "i32.xor" ]

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    binary =
      (fun _ op _ _ _ ->
         t.total_binary <- t.total_binary + 1;
         if List.mem op watched then
           Hashtbl.replace t.signature op
             (1 + Option.value ~default:0 (Hashtbl.find_opt t.signature op)));
  }

let count t op = Option.value ~default:0 (Hashtbl.find_opt t.signature op)
let watched_total t = List.fold_left (fun acc op -> acc + count t op) 0 watched

(** Fraction of binary instructions that belong to the mining signature. *)
let signature_ratio t =
  if t.total_binary = 0 then 0.0
  else float_of_int (watched_total t) /. float_of_int t.total_binary

(** Heuristic verdict: hashing loops execute almost exclusively integer
    bit operations. *)
let looks_like_miner ?(threshold = 0.8) t = signature_ratio t >= threshold

let report t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "cryptominer signature (ratio %.2f, miner=%b):\n" (signature_ratio t)
       (looks_like_miner t));
  List.iter
    (fun op -> Buffer.add_string buf (Printf.sprintf "  %-10s %8d\n" op (count t op)))
    watched;
  Buffer.contents buf
