(** Instruction mix analysis (paper, Table 4): counts how often each kind
    of instruction executes. Uses all hooks. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val count : t -> string -> int
(** Executions of one mnemonic, e.g. ["i32.add"]. *)

val merge : into:t -> t -> unit
(** Sum [src]'s counts into [into] (per-key and total). Parallel runs
    count into per-domain values and merge at report time; the source
    is left unchanged. *)

val total : t -> int
val sorted : t -> (string * int) list
(** Counts sorted by frequency, most frequent first. *)

val report : t -> string
