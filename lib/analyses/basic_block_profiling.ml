(** Basic block profiling (paper, Table 4, 9 LoC): counts how often every
    function, block, and loop is entered — the classic tool for finding
    "hot" code. Uses only the [begin] hook. *)

open Wasabi

type t = {
  counts : (Location.t * Hook.block_kind, int) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 64 }

let groups = Hook.of_list [ Hook.G_begin ]

let analysis (t : t) : Analysis.t =
  {
    Analysis.default with
    begin_ =
      (fun loc kind ->
         let key = (loc, kind) in
         Hashtbl.replace t.counts key
           (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key)));
  }

let count t loc kind = Option.value ~default:0 (Hashtbl.find_opt t.counts (loc, kind))

(** Blocks sorted by execution count, hottest first. *)
let hottest t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let report ?(limit = 10) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "basic block profile (hottest first):\n";
  List.iteri
    (fun i ((loc, kind), n) ->
       if i < limit then
         Buffer.add_string buf
           (Printf.sprintf "  %-10s %-8s %8d\n" (Location.to_string loc)
              (Hook.block_kind_name kind) n))
    (hottest t);
  Buffer.contents buf
