(** A generic shadow machine over the Wasabi hook API.

    Mirrors the program's execution with shadow state drawn from a join
    semilattice [L]: a stack of shadow frames (one per active function,
    each with a shadow value stack and shadow locals), shadow globals, and
    a byte-granular shadow memory — all outside the program's heap, which
    Wasabi's instrumentation never touches (paper, Section 2.3).

    Blocks are tracked via the [begin]/[end] hooks: entering a block
    records the shadow stack height; leaving it truncates the shadow stack
    to that height, preserving the top value as the block result if the
    stack grew (exact for the MVP's zero-or-one block results).

    Clients parameterise the interesting transfer functions: the shadow
    value of a constant, of a binary result, and of a call result; and may
    observe every call's shadow arguments (e.g. to check sinks). The taint
    analysis ({!Taint}) and the value-origin analysis ({!Provenance}) are
    both thin instantiations. *)

open Wasabi

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val is_bottom : t -> bool
end

module Make (L : LATTICE) = struct
  type frame = {
    locals : (int, L.t) Hashtbl.t;
    mutable stack : L.t list;  (** head is the top *)
    mutable block_heights : int list;
  }

  type hooks = {
    const_value : Location.t -> Wasm.Value.t -> L.t;
        (** shadow value pushed by a constant *)
    unary_result : Location.t -> string -> L.t -> L.t;
    binary_result : Location.t -> string -> L.t -> L.t -> L.t;
    load_result : Location.t -> string -> memory:L.t -> address:L.t -> L.t;
        (** combine the loaded bytes' shadow with the address's shadow *)
    call_observe : Location.t -> callee:int -> args:L.t list -> table_idx:int option -> unit;
    call_result : Location.t -> callee:int -> args:L.t list -> frame_result:L.t option -> L.t;
        (** shadow of a call's result: [frame_result] is what the callee's
            frame left behind, [None] for host functions *)
  }

  let default_hooks = {
    const_value = (fun _ _ -> L.bottom);
    unary_result = (fun _ _ v -> v);
    binary_result = (fun _ _ a b -> L.join a b);
    load_result = (fun _ _ ~memory ~address:_ -> memory);
    call_observe = (fun _ ~callee:_ ~args:_ ~table_idx:_ -> ());
    call_result =
      (fun _ ~callee:_ ~args ~frame_result ->
         match frame_result with
         | Some v -> v
         | None -> List.fold_left L.join L.bottom args);
  }

  type t = {
    h : hooks;
    mutable frames : frame list;
    globals : (int, L.t) Hashtbl.t;
    memory : (int64, L.t) Hashtbl.t;
    mutable pending_args : L.t list;
    mutable pending_result : L.t option;
    mutable call_stack : (int * L.t list) list;
  }

  let new_frame () = { locals = Hashtbl.create 8; stack = []; block_heights = [] }

  let create ?(hooks = default_hooks) () = {
    h = hooks;
    frames = [ new_frame () ];
    globals = Hashtbl.create 8;
    memory = Hashtbl.create 64;
    pending_args = [];
    pending_result = None;
    call_stack = [];
  }

  let groups = Hook.all

  let frame t =
    match t.frames with
    | f :: _ -> f
    | [] ->
      let f = new_frame () in
      t.frames <- [ f ];
      f

  let push t v =
    let f = frame t in
    f.stack <- v :: f.stack

  let pop t =
    let f = frame t in
    match f.stack with
    | v :: rest ->
      f.stack <- rest;
      v
    | [] -> L.bottom  (* shadow underflow: conservative, not wrong *)

  let pop_n t n = List.init n (fun _ -> pop t)

  let peek t =
    match (frame t).stack with
    | v :: _ -> v
    | [] -> L.bottom

  let local t i = Option.value ~default:L.bottom (Hashtbl.find_opt (frame t).locals i)
  let global t i = Option.value ~default:L.bottom (Hashtbl.find_opt t.globals i)

  (** Width in bytes of a load/store, recovered from its mnemonic. *)
  let access_width op (v : Wasm.Value.t) =
    let contains sub s =
      let n = String.length s and k = String.length sub in
      let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
      k = 0 || go 0
    in
    if contains "8" op then 1
    else if contains "16" op then 2
    else if contains "32" op && contains "i64" op then 4
    else Wasm.Types.byte_width (Wasm.Value.type_of v)

  let effective_address (ma : Analysis.memarg) =
    Int64.add (Int64.logand (Int64.of_int32 ma.addr) 0xFFFFFFFFL) (Int64.of_int ma.offset)

  let memory_at64 t ea width =
    let acc = ref L.bottom in
    for i = 0 to width - 1 do
      match Hashtbl.find_opt t.memory (Int64.add ea (Int64.of_int i)) with
      | Some v -> acc := L.join !acc v
      | None -> ()
    done;
    !acc

  let memory_at t addr = memory_at64 t (Int64.of_int addr) 1

  let set_memory64 t ea width v =
    for i = 0 to width - 1 do
      let a = Int64.add ea (Int64.of_int i) in
      if L.is_bottom v then Hashtbl.remove t.memory a else Hashtbl.replace t.memory a v
    done

  let set_memory t ~addr ~len v = set_memory64 t (Int64.of_int addr) len v

  let enter_block t =
    let f = frame t in
    f.block_heights <- List.length f.stack :: f.block_heights

  let leave_block t =
    let f = frame t in
    match f.block_heights with
    | [] -> ()
    | h :: rest ->
      f.block_heights <- rest;
      let height = List.length f.stack in
      if height > h then begin
        let result = peek t in
        let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
        f.stack <- result :: drop (height - h) f.stack
      end

  let analysis (t : t) : Analysis.t =
    {
      Analysis.default with
      const = (fun loc v -> push t (t.h.const_value loc v));
      unary = (fun loc op _ _ ->
        let v = pop t in
        push t (t.h.unary_result loc op v));
      binary = (fun loc op _ _ _ ->
        let b = pop t in
        let a = pop t in
        push t (t.h.binary_result loc op a b));
      drop = (fun _ _ -> ignore (pop t));
      select = (fun _ _ _ _ ->
        let _cond = pop t in
        let second = pop t in
        let first = pop t in
        push t (L.join first second));
      local = (fun _ op i _ ->
        let f = frame t in
        match op with
        | "local.get" -> push t (local t i)
        | "local.set" -> Hashtbl.replace f.locals i (pop t)
        | _ (* local.tee *) -> Hashtbl.replace f.locals i (peek t));
      global = (fun _ op i _ ->
        match op with
        | "global.get" -> push t (global t i)
        | _ (* global.set *) -> Hashtbl.replace t.globals i (pop t));
      load = (fun loc op ma v ->
        let address = pop t in
        let memory = memory_at64 t (effective_address ma) (access_width op v) in
        push t (t.h.load_result loc op ~memory ~address));
      store = (fun _ op ma v ->
        let value = pop t in
        let _address = pop t in
        set_memory64 t (effective_address ma) (access_width op v) value);
      memory_size = (fun _ _ -> push t L.bottom);
      memory_grow = (fun _ _ _ ->
        let _delta = pop t in
        push t L.bottom);
      if_ = (fun _ _ -> ignore (pop t));
      br_if = (fun _ _ _ -> ignore (pop t));
      br_table = (fun _ _ _ _ -> ignore (pop t));
      begin_ = (fun _ kind ->
        match kind with
        | Hook.Bfunction ->
          let f = new_frame () in
          List.iteri (fun i v -> Hashtbl.replace f.locals i v) t.pending_args;
          t.pending_args <- [];
          t.frames <- f :: t.frames
        | _ -> enter_block t);
      end_ = (fun _ kind _ ->
        match kind with
        | Hook.Bfunction ->
          (match t.frames with
           | f :: rest ->
             t.pending_result <- (match f.stack with v :: _ -> Some v | [] -> None);
             t.frames <- rest
           | [] -> ())
        | _ -> leave_block t);
      call_pre = (fun loc callee args table_idx ->
        let arg_shadows = List.rev (pop_n t (List.length args)) in
        t.h.call_observe loc ~callee ~args:arg_shadows ~table_idx;
        t.pending_args <- arg_shadows;
        t.pending_result <- None;
        t.call_stack <- (callee, arg_shadows) :: t.call_stack);
      call_post = (fun loc results ->
        let callee, args =
          match t.call_stack with
          | entry :: rest ->
            t.call_stack <- rest;
            entry
          | [] -> (-1, [])
        in
        let shadow = t.h.call_result loc ~callee ~args ~frame_result:t.pending_result in
        t.pending_result <- None;
        t.pending_args <- [];
        List.iter (fun _ -> push t shadow) results);
    }
end
