(** Basic block profiling (paper, Table 4): counts how often every
    function, block, and loop is entered. Uses only the [begin] hook. *)

type t

val create : unit -> t
val groups : Wasabi.Hook.Group_set.t
val analysis : t -> Wasabi.Analysis.t

val count : t -> Wasabi.Location.t -> Wasabi.Hook.block_kind -> int
val hottest : t -> ((Wasabi.Location.t * Wasabi.Hook.block_kind) * int) list
(** Blocks sorted by execution count, hottest first. *)

val report : ?limit:int -> t -> string
