(** Record and replay (in the spirit of Jalangi, which the paper cites as
    the JavaScript analogue): records the full stream of analysis events
    during execution and replays it later into any other analysis —
    enabling off-line analyses over a single recorded run, e.g. the
    paper's memory-trace use case.

    Events can also be rendered as a text log for external tools. *)

open Wasabi

type event =
  | E_nop of Location.t
  | E_unreachable of Location.t
  | E_if of Location.t * bool
  | E_br of Location.t * Metadata.target
  | E_br_if of Location.t * Metadata.target * bool
  | E_br_table of Location.t * Metadata.target array * Metadata.target * int
  | E_begin of Location.t * Hook.block_kind
  | E_end of Location.t * Hook.block_kind * Location.t
  | E_const of Location.t * Wasm.Value.t
  | E_drop of Location.t * Wasm.Value.t
  | E_select of Location.t * bool * Wasm.Value.t * Wasm.Value.t
  | E_unary of Location.t * string * Wasm.Value.t * Wasm.Value.t
  | E_binary of Location.t * string * Wasm.Value.t * Wasm.Value.t * Wasm.Value.t
  | E_local of Location.t * string * int * Wasm.Value.t
  | E_global of Location.t * string * int * Wasm.Value.t
  | E_load of Location.t * string * Analysis.memarg * Wasm.Value.t
  | E_store of Location.t * string * Analysis.memarg * Wasm.Value.t
  | E_memory_size of Location.t * int
  | E_memory_grow of Location.t * int * int
  | E_call_pre of Location.t * int * Wasm.Value.t list * int option
  | E_call_post of Location.t * Wasm.Value.t list
  | E_return of Location.t * Wasm.Value.t list
  | E_start of Location.t

type t = {
  mutable events : event list;  (** reversed *)
  mutable count : int;
}

let create () = { events = []; count = 0 }

let groups = Hook.all

let push t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

let analysis (t : t) : Analysis.t =
  {
    Analysis.nop = (fun l -> push t (E_nop l));
    unreachable = (fun l -> push t (E_unreachable l));
    if_ = (fun l c -> push t (E_if (l, c)));
    br = (fun l tg -> push t (E_br (l, tg)));
    br_if = (fun l tg c -> push t (E_br_if (l, tg, c)));
    br_table = (fun l tbl d idx -> push t (E_br_table (l, tbl, d, idx)));
    begin_ = (fun l k -> push t (E_begin (l, k)));
    end_ = (fun l k b -> push t (E_end (l, k, b)));
    const = (fun l v -> push t (E_const (l, v)));
    drop = (fun l v -> push t (E_drop (l, v)));
    select = (fun l c a b -> push t (E_select (l, c, a, b)));
    unary = (fun l op i r -> push t (E_unary (l, op, i, r)));
    binary = (fun l op a b r -> push t (E_binary (l, op, a, b, r)));
    local = (fun l op i v -> push t (E_local (l, op, i, v)));
    global = (fun l op i v -> push t (E_global (l, op, i, v)));
    load = (fun l op ma v -> push t (E_load (l, op, ma, v)));
    store = (fun l op ma v -> push t (E_store (l, op, ma, v)));
    memory_size = (fun l s -> push t (E_memory_size (l, s)));
    memory_grow = (fun l d p -> push t (E_memory_grow (l, d, p)));
    call_pre = (fun l f args ti -> push t (E_call_pre (l, f, args, ti)));
    call_post = (fun l rs -> push t (E_call_post (l, rs)));
    return_ = (fun l rs -> push t (E_return (l, rs)));
    start = (fun l -> push t (E_start l));
  }

(** Events in execution order. *)
let events t = List.rev t.events

let length t = t.count

(** Re-dispatch a recorded trace into another analysis, off-line. *)
let replay t (a : Analysis.t) =
  List.iter
    (fun e ->
       match e with
       | E_nop l -> a.Analysis.nop l
       | E_unreachable l -> a.Analysis.unreachable l
       | E_if (l, c) -> a.Analysis.if_ l c
       | E_br (l, tg) -> a.Analysis.br l tg
       | E_br_if (l, tg, c) -> a.Analysis.br_if l tg c
       | E_br_table (l, tbl, d, idx) -> a.Analysis.br_table l tbl d idx
       | E_begin (l, k) -> a.Analysis.begin_ l k
       | E_end (l, k, b) -> a.Analysis.end_ l k b
       | E_const (l, v) -> a.Analysis.const l v
       | E_drop (l, v) -> a.Analysis.drop l v
       | E_select (l, c, x, y) -> a.Analysis.select l c x y
       | E_unary (l, op, i, r) -> a.Analysis.unary l op i r
       | E_binary (l, op, x, y, r) -> a.Analysis.binary l op x y r
       | E_local (l, op, i, v) -> a.Analysis.local l op i v
       | E_global (l, op, i, v) -> a.Analysis.global l op i v
       | E_load (l, op, ma, v) -> a.Analysis.load l op ma v
       | E_store (l, op, ma, v) -> a.Analysis.store l op ma v
       | E_memory_size (l, s) -> a.Analysis.memory_size l s
       | E_memory_grow (l, d, p) -> a.Analysis.memory_grow l d p
       | E_call_pre (l, f, args, ti) -> a.Analysis.call_pre l f args ti
       | E_call_post (l, rs) -> a.Analysis.call_post l rs
       | E_return (l, rs) -> a.Analysis.return_ l rs
       | E_start l -> a.Analysis.start l)
    (events t)

let vs values = String.concat "," (List.map Wasm.Value.to_string values)
let ls l = Location.to_string l
let tg (t : Metadata.target) = Printf.sprintf "%d->%s" t.Metadata.label (ls t.Metadata.target_loc)

(** One-line rendering of an event, for text logs. *)
let event_to_string = function
  | E_nop l -> Printf.sprintf "%s nop" (ls l)
  | E_unreachable l -> Printf.sprintf "%s unreachable" (ls l)
  | E_if (l, c) -> Printf.sprintf "%s if %b" (ls l) c
  | E_br (l, t) -> Printf.sprintf "%s br %s" (ls l) (tg t)
  | E_br_if (l, t, c) -> Printf.sprintf "%s br_if %s %b" (ls l) (tg t) c
  | E_br_table (l, tbl, d, idx) ->
    Printf.sprintf "%s br_table [%s] default=%s idx=%d" (ls l)
      (String.concat ";" (Array.to_list (Array.map tg tbl)))
      (tg d) idx
  | E_begin (l, k) -> Printf.sprintf "%s begin %s" (ls l) (Hook.block_kind_name k)
  | E_end (l, k, b) -> Printf.sprintf "%s end %s begin=%s" (ls l) (Hook.block_kind_name k) (ls b)
  | E_const (l, v) -> Printf.sprintf "%s const %s" (ls l) (Wasm.Value.to_string v)
  | E_drop (l, v) -> Printf.sprintf "%s drop %s" (ls l) (Wasm.Value.to_string v)
  | E_select (l, c, a, b) ->
    Printf.sprintf "%s select %b %s %s" (ls l) c (Wasm.Value.to_string a) (Wasm.Value.to_string b)
  | E_unary (l, op, i, r) ->
    Printf.sprintf "%s %s %s -> %s" (ls l) op (Wasm.Value.to_string i) (Wasm.Value.to_string r)
  | E_binary (l, op, a, b, r) ->
    Printf.sprintf "%s %s %s %s -> %s" (ls l) op (Wasm.Value.to_string a)
      (Wasm.Value.to_string b) (Wasm.Value.to_string r)
  | E_local (l, op, i, v) -> Printf.sprintf "%s %s %d %s" (ls l) op i (Wasm.Value.to_string v)
  | E_global (l, op, i, v) -> Printf.sprintf "%s %s %d %s" (ls l) op i (Wasm.Value.to_string v)
  | E_load (l, op, ma, v) ->
    Printf.sprintf "%s %s %ld+%d %s" (ls l) op ma.Analysis.addr ma.Analysis.offset
      (Wasm.Value.to_string v)
  | E_store (l, op, ma, v) ->
    Printf.sprintf "%s %s %ld+%d %s" (ls l) op ma.Analysis.addr ma.Analysis.offset
      (Wasm.Value.to_string v)
  | E_memory_size (l, s) -> Printf.sprintf "%s memory.size %d" (ls l) s
  | E_memory_grow (l, d, p) -> Printf.sprintf "%s memory.grow %d prev=%d" (ls l) d p
  | E_call_pre (l, f, args, ti) ->
    Printf.sprintf "%s call_pre func=%d [%s]%s" (ls l) f (vs args)
      (match ti with None -> "" | Some i -> Printf.sprintf " table=%d" i)
  | E_call_post (l, rs) -> Printf.sprintf "%s call_post [%s]" (ls l) (vs rs)
  | E_return (l, rs) -> Printf.sprintf "%s return [%s]" (ls l) (vs rs)
  | E_start l -> Printf.sprintf "%s start" (ls l)

let to_log t = String.concat "\n" (List.map event_to_string (events t))

let report t = Printf.sprintf "trace: %d events recorded\n" t.count
