(** Branch coverage (paper, Table 4 and Figure 7, 14 LoC): records, for
    every conditional construct, which directions were taken. Uses the
    [if], [br_if], [br_table], and [select] hooks — a direct port of the
    paper's Figure 7 JavaScript. *)

open Wasabi

type t = {
  coverage : (Location.t, int list ref) Hashtbl.t;
      (** branches taken at each location: conditions as 0/1, table
          indices for [br_table] *)
}

let create () = { coverage = Hashtbl.create 64 }

let groups = Hook.of_list [ Hook.G_if; Hook.G_br_if; Hook.G_br_table; Hook.G_select ]

let add_branch t loc branch =
  let branches =
    match Hashtbl.find_opt t.coverage loc with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.coverage loc r;
      r
  in
  if not (List.mem branch !branches) then branches := branch :: !branches

let analysis (t : t) : Analysis.t =
  let of_bool c = if c then 1 else 0 in
  {
    Analysis.default with
    if_ = (fun loc cond -> add_branch t loc (of_bool cond));
    br_if = (fun loc _ cond -> add_branch t loc (of_bool cond));
    br_table = (fun loc _ _ idx -> add_branch t loc idx);
    select = (fun loc cond _ _ -> add_branch t loc (of_bool cond));
  }

let branches_at t loc =
  match Hashtbl.find_opt t.coverage loc with
  | Some r -> List.sort Int.compare !r
  | None -> []

(** Locations where only one direction of a two-way branch was observed. *)
let partially_covered t =
  Hashtbl.fold
    (fun loc r acc -> if List.length !r = 1 then loc :: acc else acc)
    t.coverage []
  |> List.sort Location.compare

let covered_locations t = Hashtbl.length t.coverage

let report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "branch coverage: %d branch locations executed\n" (covered_locations t));
  let partial = partially_covered t in
  Buffer.add_string buf
    (Printf.sprintf "  one-sided (only one direction seen): %d\n" (List.length partial));
  List.iter
    (fun loc -> Buffer.add_string buf (Printf.sprintf "    %s\n" (Location.to_string loc)))
    partial;
  Buffer.contents buf
