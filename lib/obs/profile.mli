(** Interpreter profiler: shadow call stack (per-function call counts,
    self/inclusive time), per-instruction-site execution counts, folded
    stacks for flamegraphs, and string-keyed counters/timers for
    hook-dispatch accounting.

    A profile is an explicit value; the interpreter holds a [t option]
    and pays one [match] per straight-line run / per call when profiling
    is off. Recursion is handled: inclusive time is credited only to the
    outermost activation of a function. *)

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** [?clock] defaults to {!Clock.now_ns}; tests inject a fake clock for
    deterministic timings. *)

(** {1 Shadow call stack} *)

val enter : t -> int -> unit
(** Push function [fid]; counts one call. *)

val leave : t -> unit
(** Pop the current frame, attributing self time to the function and
    total time to the parent's child accumulator and the folded stack.
    A no-op on an empty stack. *)

val bump_run : t -> fid:int -> body_len:int -> pc:int -> len:int -> unit
(** Credit one execution of the straight-line run [pc, pc+len) in the
    body of [fid] (with [body_len] instruction positions). *)

(** {1 String-keyed counters and timers} *)

val count : ?by:int -> t -> string -> unit
val add_time : t -> string -> int64 -> unit
(** [add_time t key ns] adds one timed event of [ns] under [key]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t key f] runs [f] and records its wall time under [key];
    exception-safe (the time is charged even when [f] raises). *)

val merge : into:t -> t -> unit
(** [merge ~into src] sums [src]'s function stats, folded stacks, site
    counts, counters and timers into [into]. Used to combine per-domain
    profiles at report time; both profiles must be quiescent (no shadow
    frames in flight). [src] is left unchanged. *)

(** {1 Accessors} *)

type func_row = { fr_fid : int; fr_calls : int; fr_self_ns : int64; fr_incl_ns : int64 }

val func_rows : t -> func_row list
(** Per-function stats, sorted by self time (descending, fid tiebreak). *)

val total_self_ns : t -> int64

val site_counts : t -> int -> int array option
(** Per-position execution counts for one function's body. *)

val iter_sites : t -> (int -> int array -> unit) -> unit

val folded_lines : name_of:(int -> string) -> t -> string list
(** Folded-stack lines ([a;b;c <ns>]) for flamegraph tools, sorted. *)

val counter_list : t -> (string * int) list
val timer_list : t -> (string * int * int64) list
(** [(key, events, total_ns)] per timer, sorted by key. *)
