(** A process-wide registry of named counters, gauges and log-bucketed
    histograms, with Prometheus text and JSON exposition.

    A metric is identified by (name, label set); registering the same pair
    twice returns the existing metric. Exposition order is deterministic
    (first-registration order, grouped into families by name), so tests can
    compare serialized output against golden files byte for byte.

    All operations are domain-safe: counters and gauges are atomics,
    histogram observations take a per-histogram mutex, and registration
    is guarded by the registry lock — so concurrent serve workers and
    fuzz jobs can share one registry without losing updates. *)

type labels = (string * string) list

type registry

val create : unit -> registry
val default : registry
(** The process-wide registry used when [?registry] is omitted. *)

(** {1 Metric kinds} *)

type counter
type gauge

type histogram = {
  h_bounds : float array;  (** inclusive upper bounds, without +Inf *)
  h_buckets : int array;  (** per-bucket counts; last bucket is +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
  h_lock : Mutex.t;  (** guards buckets/sum/count against concurrent observers *)
}

val default_time_bounds : float array
(** Log-spaced seconds buckets: 1 µs doubling up to ~67 s. *)

val counter : ?registry:registry -> ?help:string -> ?labels:labels -> string -> counter
val gauge : ?registry:registry -> ?help:string -> ?labels:labels -> string -> gauge

val histogram :
  ?registry:registry -> ?help:string -> ?labels:labels -> ?bounds:float array ->
  string -> histogram
(** @raise Invalid_argument when the (name, labels) pair is already
    registered with a different metric type (same for the other two). *)

val inc : ?by:float -> counter -> unit
val counter_value : counter -> float

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation: counts it into the first bucket whose upper
    bound is >= the value (the last, +Inf, bucket otherwise). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Exposition} *)

val to_prometheus : registry -> string
(** Prometheus text exposition format, with label values escaped
    (backslash, double quote, newline) and histogram buckets emitted
    cumulatively with [le] labels, as the format requires. *)

val to_json : registry -> string
(** A [{"metrics": [...]}] JSON document, one object per metric in
    registration order; histogram buckets are non-cumulative. *)

(** {1 Escaping helpers}

    Shared by the other hand-rolled emitters in this library. *)

val json_escape : string -> string
val prom_escape : string -> string
val fmt_num : float -> string
