(** Engine-agnostic probe bookkeeping for the engine-side instrumentation
    backend: parsed probe specifications (which hook groups, optionally
    narrowed to one function, one code location, or the k-th matching
    occurrence onward), the registry of attached probe entries, and the
    dynamic fire gate every synthesized event passes through.

    This module deliberately knows nothing about WebAssembly: groups are
    raw strings (validated by the layer that owns the hook vocabulary),
    and sites are (function, instruction) integer pairs. The engine glue
    in [Wasm.Interp] and the event synthesis in [Wasabi.Runtime.Probe]
    build on it.

    Every attach/detach is wrapped in a [probe.attach] / [probe.detach]
    {!Span} phase and counted in the [wasabi_probe_attached_total] /
    [wasabi_probe_detached_total] counters; every delivered event counts
    into [wasabi_probe_fired_total]. Counters live in the default
    {!Metrics} registry unless [create ?registry] says otherwise. *)

(** A parsed probe specification. Concrete syntax:

    {v GROUPS[@func=N][@loc=F:I][@nth=K] v}

    where [GROUPS] is [all] or a comma-separated list of hook group
    names, [@func=N] restricts to events in function [N], [@loc=F:I] to
    events reported at function [F] instruction [I], and [@nth=K] fires
    from the K-th matching occurrence onward (1-based; [K = 1] is
    unconditional). *)
type spec = {
  sp_groups : string list;  (** empty means every group *)
  sp_func : int option;
  sp_loc : (int * int) option;
  sp_nth : int;  (** >= 1; 1 = fire on every occurrence *)
}

(** One attached probe. [e_hits] counts matching events that reached the
    gate, [e_fired] those actually delivered (after the [@nth] filter). *)
type entry = {
  e_id : int;
  e_spec : spec;
  mutable e_active : bool;
  mutable e_hits : int;
  mutable e_fired : int;
}

type t

val create : ?registry:Metrics.registry -> unit -> t

val parse_spec : string -> (spec, string) result
(** Parse the concrete syntax above. Group names are {e not} validated
    here — the caller owns the vocabulary ({!spec_groups} exposes them). *)

val spec_to_string : spec -> string
(** Round-trips with {!parse_spec} (groups in the order given). *)

val attach : t -> spec -> entry
(** Register a new active entry, under a [probe.attach] span. *)

val detach : t -> entry -> unit
(** Deactivate the entry: its events stop firing immediately, even from
    sites compiled into still-running frames. Idempotent. *)

val detach_all : t -> unit

val entries : t -> entry list
(** Active entries, in attach order. *)

val all_entries : t -> entry list
(** Every entry ever attached (active and detached), in attach order. *)

val site_matches : spec -> group:string -> func:int -> instr:int -> bool
(** Static part of the predicate: does an event of [group] reported at
    ([func], [instr]) fall under the spec? *)

val should_fire : entry -> fired:Metrics.counter -> bool
(** Dynamic part: count one matching occurrence against [entry] and
    decide delivery ([e_active] and the [@nth] threshold). When true,
    the event must be delivered and is counted as fired. *)

val fired_counter : t -> Metrics.counter
val attached_total : t -> int
val fired_total : t -> int
val detached_total : t -> int
