(** A process-wide registry of named counters, gauges and log-bucketed
    histograms, with Prometheus text and JSON exposition.

    A metric is identified by its name plus its label set; registering the
    same (name, labels) pair twice returns the existing metric, so call
    sites can look metrics up on the hot path without threading handles
    around. Every operation is domain-safe: registration is mutex-guarded,
    counters and gauges are atomics (increments from concurrent fuzz jobs
    or serve workers never lose updates), and histogram observations take
    a per-histogram mutex — so one registry can absorb the whole domain
    pool's accounting and still expose exact totals.

    Exposition is deterministic: metrics appear in first-registration
    order, grouped into families by name, which lets tests compare the
    serialized forms against golden files byte for byte. *)

type labels = (string * string) list

type histogram = {
  h_bounds : float array;  (** inclusive upper bounds, without +Inf *)
  h_buckets : int array;  (** length [Array.length h_bounds + 1]; last is +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
  h_lock : Mutex.t;  (** guards buckets/sum/count against concurrent observers *)
}

type kind =
  | Counter of float Atomic.t
  | Gauge of float Atomic.t
  | Histogram of histogram

type metric = {
  m_name : string;
  m_help : string;
  m_labels : labels;
  m_kind : kind;
}

type registry = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable order : metric list;  (** reversed registration order *)
  lock : Mutex.t;
}

let create () = { tbl = Hashtbl.create 32; order = []; lock = Mutex.create () }

(** The default process-wide registry. *)
let default = create ()

(** Log-spaced seconds buckets: 1 µs doubling up to ~67 s (27 bounds).
    Doubling buckets keep the relative quantization error bounded at every
    time scale, from a hook dispatch to a whole fuzz campaign. *)
let default_time_bounds =
  Array.init 27 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

type counter = float Atomic.t
type gauge = float Atomic.t

let register reg ~name ~help ~labels ~make ~cast =
  Mutex.lock reg.lock;
  let m =
    match Hashtbl.find_opt reg.tbl (name, labels) with
    | Some m -> m
    | None ->
      let m = { m_name = name; m_help = help; m_labels = labels; m_kind = make () } in
      Hashtbl.add reg.tbl (name, labels) m;
      reg.order <- m :: reg.order;
      m
  in
  Mutex.unlock reg.lock;
  cast m.m_kind

let counter ?(registry = default) ?(help = "") ?(labels = []) name : counter =
  register registry ~name ~help ~labels
    ~make:(fun () -> Counter (Atomic.make 0.0))
    ~cast:(function
      | Counter c -> c
      | _ -> invalid_arg (name ^ ": registered with a different metric type"))

let gauge ?(registry = default) ?(help = "") ?(labels = []) name : gauge =
  register registry ~name ~help ~labels
    ~make:(fun () -> Gauge (Atomic.make 0.0))
    ~cast:(function
      | Gauge g -> g
      | _ -> invalid_arg (name ^ ": registered with a different metric type"))

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(bounds = default_time_bounds) name : histogram =
  register registry ~name ~help ~labels
    ~make:(fun () ->
      Histogram
        { h_bounds = bounds;
          h_buckets = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
          h_lock = Mutex.create () })
    ~cast:(function
      | Histogram h -> h
      | _ -> invalid_arg (name ^ ": registered with a different metric type"))

(* lock-free add: CAS loop over the boxed float *)
let rec atomic_add (c : float Atomic.t) by =
  let cur = Atomic.get c in
  if not (Atomic.compare_and_set c cur (cur +. by)) then atomic_add c by

let inc ?(by = 1.0) (c : counter) = atomic_add c by
let counter_value (c : counter) = Atomic.get c

let set (g : gauge) v = Atomic.set g v
let gauge_value (g : gauge) = Atomic.get g

(** Index of the first bound >= v (binary search over few elements would
    not pay off; bucket arrays are short). *)
let observe (h : histogram) v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && v > h.h_bounds.(!i) do
    incr i
  done;
  Mutex.lock h.h_lock;
  h.h_buckets.(!i) <- h.h_buckets.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_lock

let histogram_count (h : histogram) =
  Mutex.lock h.h_lock;
  let c = h.h_count in
  Mutex.unlock h.h_lock;
  c

let histogram_sum (h : histogram) =
  Mutex.lock h.h_lock;
  let s = h.h_sum in
  Mutex.unlock h.h_lock;
  s

let metrics reg = List.rev reg.order

(** {1 Exposition} *)

(** Prometheus / JSON shared number formatting: integral values render
    without a fractional part, everything else with enough digits to
    round-trip reasonably. *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Prometheus label values escape backslash, double quote and newline. *)
let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

(* labels plus an extra le="..." pair, for histogram bucket lines *)
let prom_labels_le labels le =
  let le_pair = ("le", le) in
  prom_labels (labels @ [ le_pair ])

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(** Prometheus text exposition format. Metrics with the same name form one
    family: a single [# HELP]/[# TYPE] header (the help of the first
    registered member wins) followed by every labeled instance. *)
let to_prometheus reg =
  let b = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let all = metrics reg in
  List.iter
    (fun m ->
       if not (Hashtbl.mem seen m.m_name) then begin
         Hashtbl.add seen m.m_name ();
         let family = List.filter (fun m' -> m'.m_name = m.m_name) all in
         if m.m_help <> "" then
           Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" m.m_name (prom_escape m.m_help));
         Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" m.m_name (type_name m.m_kind));
         List.iter
           (fun m' ->
              match m'.m_kind with
              | Counter v | Gauge v ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %s\n" m'.m_name (prom_labels m'.m_labels)
                     (fmt_num (Atomic.get v)))
              | Histogram h ->
                Mutex.lock h.h_lock;
                let buckets = Array.copy h.h_buckets in
                let sum = h.h_sum and count = h.h_count in
                Mutex.unlock h.h_lock;
                let cum = ref 0 in
                Array.iteri
                  (fun i c ->
                     cum := !cum + c;
                     let le =
                       if i < Array.length h.h_bounds then fmt_num h.h_bounds.(i) else "+Inf"
                     in
                     Buffer.add_string b
                       (Printf.sprintf "%s_bucket%s %d\n" m'.m_name
                          (prom_labels_le m'.m_labels le) !cum))
                  buckets;
                Buffer.add_string b
                  (Printf.sprintf "%s_sum%s %s\n" m'.m_name (prom_labels m'.m_labels)
                     (fmt_num sum));
                Buffer.add_string b
                  (Printf.sprintf "%s_count%s %d\n" m'.m_name (prom_labels m'.m_labels)
                     count))
           family
       end)
    all;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

(** JSON exposition: a [{"metrics": [...]}] document, one object per
    metric in registration order. *)
let to_json reg =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"metrics\": [";
  List.iteri
    (fun i m ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n    {";
       Buffer.add_string b
         (Printf.sprintf "\"name\": \"%s\", \"type\": \"%s\"" (json_escape m.m_name)
            (type_name m.m_kind));
       if m.m_help <> "" then
         Buffer.add_string b (Printf.sprintf ", \"help\": \"%s\"" (json_escape m.m_help));
       Buffer.add_string b (Printf.sprintf ", \"labels\": %s" (json_labels m.m_labels));
       (match m.m_kind with
        | Counter v | Gauge v ->
          Buffer.add_string b (Printf.sprintf ", \"value\": %s" (fmt_num (Atomic.get v)))
        | Histogram h ->
          Mutex.lock h.h_lock;
          let buckets = Array.copy h.h_buckets in
          let sum = h.h_sum and count = h.h_count in
          Mutex.unlock h.h_lock;
          Buffer.add_string b
            (Printf.sprintf ", \"count\": %d, \"sum\": %s, \"buckets\": [" count
               (fmt_num sum));
          Array.iteri
            (fun i c ->
               if i > 0 then Buffer.add_string b ", ";
               let le =
                 if i < Array.length h.h_bounds then fmt_num h.h_bounds.(i) else "\"+Inf\""
               in
               Buffer.add_string b (Printf.sprintf "{\"le\": %s, \"count\": %d}" le c))
            buckets;
          Buffer.add_char b ']');
       Buffer.add_char b '}')
    (metrics reg);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
