(** Monotonic time source for all observability accounting. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock (CLOCK_MONOTONIC); differences are
    meaningful, absolute values are not. *)

val ns_to_us : int64 -> float
val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float
