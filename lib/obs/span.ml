(** Monotonic-clock span tracing for the pipeline phases, emitted as
    Chrome trace-event JSON (loadable in Perfetto or chrome://tracing).

    Tracing is off by default and gated by a single flag: a disabled
    {!with_} is one branch and a closure call, so the library phases can
    stay permanently wrapped without costing anything in production.
    Spans nest naturally — Chrome "complete" events on the same track are
    nested by their [ts]/[dur] intervals, which a stack of {!with_} calls
    produces by construction.

    The collector is global (like {!Metrics.default}): the pipeline spans
    come from deep inside library code, and threading a collector through
    every decode/validate/instrument signature would put an observability
    concern into every API. A mutex guards the buffer so parallel
    instrumentation domains can trace safely; the enabled flag is an
    atomic and span nesting depth lives in domain-local storage, so
    concurrent serve workers nest their own spans without interleaving
    each other's depths. *)

type event = {
  ev_name : string;
  ev_ts_ns : int64;  (** start, relative to the first event of the trace *)
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth at emission, 0 = top level *)
}

type state = {
  enabled : bool Atomic.t;
  mutable events : event list;  (** reversed *)
  mutable epoch : int64 option;  (** raw clock of the trace's first span *)
  lock : Mutex.t;
}

let state =
  { enabled = Atomic.make false; events = []; epoch = None; lock = Mutex.create () }

(* Nesting depth is per-domain: spans opened on one worker must not shift
   the depth another worker's spans are recorded at. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let set_enabled on = Atomic.set state.enabled on
let enabled () = Atomic.get state.enabled

let reset () =
  Mutex.lock state.lock;
  state.events <- [];
  Domain.DLS.get depth_key := 0;
  state.epoch <- None;
  Mutex.unlock state.lock

(** Rebase a raw clock reading against the trace epoch (established by the
    first span to start). Must be called with the lock held. *)
let rebase_locked raw =
  match state.epoch with
  | Some e -> Int64.sub raw e
  | None ->
    state.epoch <- Some raw;
    0L

let add_event ev =
  Mutex.lock state.lock;
  state.events <- ev :: state.events;
  Mutex.unlock state.lock

(** Record a complete event directly (tests use this to build
    deterministic traces; [with_] uses it with live clock readings). *)
let add_complete ?(depth = 0) ~name ~ts_ns ~dur_ns () =
  add_event { ev_name = name; ev_ts_ns = ts_ns; ev_dur_ns = dur_ns; ev_depth = depth }

let with_ name f =
  if not (Atomic.get state.enabled) then f ()
  else begin
    Mutex.lock state.lock;
    let t0 = rebase_locked (Clock.now_ns ()) in
    Mutex.unlock state.lock;
    let depth_cell = Domain.DLS.get depth_key in
    let depth = !depth_cell in
    depth_cell := depth + 1;
    let finish () =
      let t1 = Int64.sub (Clock.now_ns ()) (Option.value ~default:0L state.epoch) in
      depth_cell := depth;
      add_event
        { ev_name = name; ev_ts_ns = t0; ev_dur_ns = Int64.sub t1 t0; ev_depth = depth }
    in
    Fun.protect ~finally:finish f
  end

(** Events in emission order (a span appears after all its children). *)
let events () = List.rev state.events

(** {1 Chrome trace-event JSON}

    One "complete" event (["ph": "X"]) per span, all on pid 1 / tid 1,
    timestamps in (fractional) microseconds as the format specifies. *)

let chrome_json_of_events evs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i ev ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "\n  {\"name\": \"%s\", \"cat\": \"wasabi\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": 1, \"ts\": %.3f, \"dur\": %.3f}"
            (Metrics.json_escape ev.ev_name)
            (Clock.ns_to_us ev.ev_ts_ns)
            (Clock.ns_to_us ev.ev_dur_ns)))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let to_chrome_json () = chrome_json_of_events (events ())
