type spec = {
  sp_groups : string list;
  sp_func : int option;
  sp_loc : (int * int) option;
  sp_nth : int;
}

type entry = {
  e_id : int;
  e_spec : spec;
  mutable e_active : bool;
  mutable e_hits : int;
  mutable e_fired : int;
}

type t = {
  mutable p_entries : entry list;  (** attach order *)
  mutable p_next_id : int;
  c_attached : Metrics.counter;
  c_fired : Metrics.counter;
  c_detached : Metrics.counter;
}

let create ?registry () =
  {
    p_entries = [];
    p_next_id = 0;
    c_attached =
      Metrics.counter ?registry "wasabi_probe_attached_total"
        ~help:"Probe entries attached to the engine-probe backend";
    c_fired =
      Metrics.counter ?registry "wasabi_probe_fired_total"
        ~help:"Hook events delivered by engine-side probes";
    c_detached =
      Metrics.counter ?registry "wasabi_probe_detached_total"
        ~help:"Probe entries detached from the engine-probe backend";
  }

(** {1 Spec syntax} *)

let parse_spec s : (spec, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let s = String.trim s in
  if s = "" then err "empty probe spec"
  else begin
    match String.split_on_char '@' s with
    | [] -> err "empty probe spec"
    | groups_part :: preds ->
      let groups =
        match String.trim groups_part with
        | "" | "all" -> Ok []
        | g ->
          let names = List.map String.trim (String.split_on_char ',' g) in
          if List.exists (fun n -> n = "") names then Error "empty group name"
          else Ok names
      in
      (match groups with
       | Error m -> Error m
       | Ok sp_groups ->
         let rec go acc = function
           | [] -> Ok acc
           | p :: rest ->
             (match String.index_opt p '=' with
              | None -> err "predicate %S is not key=value" p
              | Some eq ->
                let key = String.trim (String.sub p 0 eq) in
                let v = String.trim (String.sub p (eq + 1) (String.length p - eq - 1)) in
                (match key with
                 | "func" ->
                   (match int_of_string_opt v with
                    | Some n when n >= 0 -> go { acc with sp_func = Some n } rest
                    | _ -> err "@func expects a non-negative integer, got %S" v)
                 | "nth" ->
                   (match int_of_string_opt v with
                    | Some k when k >= 1 -> go { acc with sp_nth = k } rest
                    | _ -> err "@nth expects an integer >= 1, got %S" v)
                 | "loc" ->
                   (match String.split_on_char ':' v with
                    | [ f; i ] ->
                      (match int_of_string_opt f, int_of_string_opt i with
                       | Some f, Some i when f >= 0 ->
                         go { acc with sp_loc = Some (f, i) } rest
                       | _ -> err "@loc expects F:I integers, got %S" v)
                    | _ -> err "@loc expects F:I, got %S" v)
                 | k -> err "unknown probe predicate %S" k))
         in
         go { sp_groups; sp_func = None; sp_loc = None; sp_nth = 1 } preds)
  end

let spec_to_string sp =
  let b = Buffer.create 32 in
  Buffer.add_string b
    (match sp.sp_groups with [] -> "all" | gs -> String.concat "," gs);
  (match sp.sp_func with
   | Some n -> Buffer.add_string b (Printf.sprintf "@func=%d" n)
   | None -> ());
  (match sp.sp_loc with
   | Some (f, i) -> Buffer.add_string b (Printf.sprintf "@loc=%d:%d" f i)
   | None -> ());
  if sp.sp_nth > 1 then Buffer.add_string b (Printf.sprintf "@nth=%d" sp.sp_nth);
  Buffer.contents b

(** {1 Registry} *)

let attach t spec =
  Span.with_ "probe.attach" (fun () ->
    let e =
      { e_id = t.p_next_id; e_spec = spec; e_active = true; e_hits = 0; e_fired = 0 }
    in
    t.p_next_id <- t.p_next_id + 1;
    t.p_entries <- t.p_entries @ [ e ];
    Metrics.inc t.c_attached;
    e)

let detach t e =
  Span.with_ "probe.detach" (fun () ->
    if e.e_active then begin
      e.e_active <- false;
      Metrics.inc t.c_detached
    end)

let detach_all t = List.iter (fun e -> detach t e) t.p_entries

let entries t = List.filter (fun e -> e.e_active) t.p_entries
let all_entries t = t.p_entries

(** {1 Predicates} *)

let site_matches sp ~group ~func ~instr =
  (match sp.sp_groups with [] -> true | gs -> List.mem group gs)
  && (match sp.sp_func with None -> true | Some f -> f = func)
  && (match sp.sp_loc with None -> true | Some (f, i) -> f = func && i = instr)

let should_fire e ~fired =
  e.e_active
  && begin
    e.e_hits <- e.e_hits + 1;
    if e.e_hits >= e.e_spec.sp_nth then begin
      e.e_fired <- e.e_fired + 1;
      Metrics.inc fired;
      true
    end
    else false
  end

let fired_counter t = t.c_fired
let attached_total t = int_of_float (Metrics.counter_value t.c_attached)
let fired_total t = int_of_float (Metrics.counter_value t.c_fired)
let detached_total t = int_of_float (Metrics.counter_value t.c_detached)
