(** Monotonic time source for all observability accounting.

    Wraps the CLOCK_MONOTONIC stub that ships with bechamel, so spans and
    profiles are immune to wall-clock adjustments. All of [lib/obs]
    measures in integer nanoseconds and converts to floating-point units
    only at exposition time. *)

let now_ns : unit -> int64 = Monotonic_clock.now

let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9
