(** Monotonic-clock span tracing for pipeline phases, emitted as Chrome
    trace-event JSON.

    Off by default; when disabled, {!with_} runs its thunk directly. The
    collector is global and mutex-guarded, so spans can be recorded from
    parallel instrumentation domains. *)

type event = {
  ev_name : string;
  ev_ts_ns : int64;  (** start, relative to the first event of the trace *)
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth at emission, 0 = top level *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events and restart the trace epoch. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span named [name]. When tracing is
    disabled this is just [f ()]. The span is recorded even when [f]
    raises. *)

val add_complete : ?depth:int -> name:string -> ts_ns:int64 -> dur_ns:int64 -> unit -> unit
(** Record a complete event with explicit timestamps (used by tests to
    build deterministic traces). *)

val events : unit -> event list
(** Recorded events in emission order (a span appears after its children). *)

val to_chrome_json : unit -> string
(** The recorded trace as a Chrome trace-event JSON document
    (["ph": "X"] complete events, timestamps in microseconds). *)
