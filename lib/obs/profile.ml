(** Interpreter profiler: a shadow call stack with per-function call
    counts and self/inclusive time, per-instruction-site execution counts,
    folded stacks for flamegraphs, and string-keyed counters/timers for
    hook-dispatch accounting.

    A profile is an explicit value (not global state like {!Span}): the
    interpreter carries [t option] in its instance and the entire
    accounting sits behind one [match] per straight-line run and per call,
    so an un-profiled execution pays nothing.

    Self/inclusive accounting works the classic way: each shadow frame
    records its start time and the total time spent in callees; on exit,
    [self = total - children] goes to the function, [total] is added to
    the parent's child time, and inclusive time is only credited for the
    outermost activation of a function (per-function on-stack counts), so
    recursion does not double-count. *)

type func_stat = {
  mutable calls : int;
  mutable self_ns : int64;
  mutable incl_ns : int64;
  mutable on_stack : int;
}

type t = {
  clock : unit -> int64;
  (* shadow call stack, parallel arrays grown on demand *)
  mutable depth : int;
  mutable st_fid : int array;
  mutable st_start : int64 array;
  mutable st_child : int64 array;
  funcs : (int, func_stat) Hashtbl.t;  (** fid -> call/time stats *)
  folded : (string, int64 ref) Hashtbl.t;  (** "fid;fid;..." -> self ns *)
  sites : (int, int array) Hashtbl.t;  (** fid -> per-position exec counts *)
  counters : (string, int ref) Hashtbl.t;
  timers : (string, (int ref * int64 ref)) Hashtbl.t;  (** key -> count, ns *)
}

let create ?(clock = Clock.now_ns) () =
  {
    clock;
    depth = 0;
    st_fid = Array.make 64 0;
    st_start = Array.make 64 0L;
    st_child = Array.make 64 0L;
    funcs = Hashtbl.create 64;
    folded = Hashtbl.create 64;
    sites = Hashtbl.create 64;
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
  }

let func_stat t fid =
  match Hashtbl.find_opt t.funcs fid with
  | Some s -> s
  | None ->
    let s = { calls = 0; self_ns = 0L; incl_ns = 0L; on_stack = 0 } in
    Hashtbl.add t.funcs fid s;
    s

let grow t =
  let n = Array.length t.st_fid in
  let extend a zero =
    let a' = Array.make (2 * n) zero in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.st_fid <- extend t.st_fid 0;
  t.st_start <- extend t.st_start 0L;
  t.st_child <- extend t.st_child 0L

let enter t fid =
  if t.depth >= Array.length t.st_fid then grow t;
  let d = t.depth in
  t.st_fid.(d) <- fid;
  t.st_start.(d) <- t.clock ();
  t.st_child.(d) <- 0L;
  t.depth <- d + 1;
  let s = func_stat t fid in
  s.calls <- s.calls + 1;
  s.on_stack <- s.on_stack + 1

(* Key of the current stack (inclusive of the frame being popped), for
   folded-stack accumulation. *)
let stack_key t depth =
  let b = Buffer.create (4 * (depth + 1)) in
  for i = 0 to depth do
    if i > 0 then Buffer.add_char b ';';
    Buffer.add_string b (string_of_int t.st_fid.(i))
  done;
  Buffer.contents b

let leave t =
  if t.depth > 0 then begin
    let d = t.depth - 1 in
    t.depth <- d;
    let fid = t.st_fid.(d) in
    let total = Int64.sub (t.clock ()) t.st_start.(d) in
    let total = if Int64.compare total 0L < 0 then 0L else total in
    let self = Int64.sub total t.st_child.(d) in
    let self = if Int64.compare self 0L < 0 then 0L else self in
    let s = func_stat t fid in
    s.self_ns <- Int64.add s.self_ns self;
    s.on_stack <- s.on_stack - 1;
    if s.on_stack = 0 then s.incl_ns <- Int64.add s.incl_ns total;
    if d > 0 then t.st_child.(d - 1) <- Int64.add t.st_child.(d - 1) total;
    let key = stack_key t d in
    (match Hashtbl.find_opt t.folded key with
     | Some r -> r := Int64.add !r self
     | None -> Hashtbl.add t.folded key (ref self))
  end

(** Credit one straight-line run of [len] instructions starting at [pc]
    inside function [fid] (whose body has [body_len] positions). Called
    from the interpreter's existing fuel charge point, so the off-path
    cost is a single [option] match. *)
let bump_run t ~fid ~body_len ~pc ~len =
  let arr =
    match Hashtbl.find_opt t.sites fid with
    | Some a -> a
    | None ->
      let a = Array.make body_len 0 in
      Hashtbl.add t.sites fid a;
      a
  in
  let stop = min (pc + len) (Array.length arr) in
  for i = pc to stop - 1 do
    Array.unsafe_set arr i (Array.unsafe_get arr i + 1)
  done

(** {1 String-keyed counters and timers (hook dispatch, cache stats)} *)

let count ?(by = 1) t key =
  match Hashtbl.find_opt t.counters key with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters key (ref by)

let add_time t key ns =
  match Hashtbl.find_opt t.timers key with
  | Some (c, total) ->
    incr c;
    total := Int64.add !total ns
  | None -> Hashtbl.add t.timers key (ref 1, ref ns)

(** Run [f] and record its wall time under [key] (exception-safe: the
    time is charged even when [f] raises, e.g. a compiled body that
    traps). *)
let time t key f =
  let t0 = t.clock () in
  Fun.protect ~finally:(fun () -> add_time t key (Int64.sub (t.clock ()) t0)) f

(** Absorb [src]'s accounting into [into]. Used by the serve farm and
    parallel fuzz jobs: each domain profiles into its own [t] (a profile
    value is single-domain, like the instance that carries it), and the
    coordinator merges them at report time. Shadow-stack state is not
    merged — both profiles should be quiescent (no frames in flight). *)
let merge ~into src =
  Hashtbl.iter
    (fun fid s ->
       let d = func_stat into fid in
       d.calls <- d.calls + s.calls;
       d.self_ns <- Int64.add d.self_ns s.self_ns;
       d.incl_ns <- Int64.add d.incl_ns s.incl_ns)
    src.funcs;
  Hashtbl.iter
    (fun key ns ->
       match Hashtbl.find_opt into.folded key with
       | Some r -> r := Int64.add !r !ns
       | None -> Hashtbl.add into.folded key (ref !ns))
    src.folded;
  Hashtbl.iter
    (fun fid arr ->
       match Hashtbl.find_opt into.sites fid with
       | Some dst ->
         let dst =
           if Array.length dst >= Array.length arr then dst
           else begin
             let grown = Array.make (Array.length arr) 0 in
             Array.blit dst 0 grown 0 (Array.length dst);
             Hashtbl.replace into.sites fid grown;
             grown
           end
         in
         Array.iteri (fun i c -> dst.(i) <- dst.(i) + c) arr
       | None -> Hashtbl.add into.sites fid (Array.copy arr))
    src.sites;
  Hashtbl.iter
    (fun key r ->
       match Hashtbl.find_opt into.counters key with
       | Some d -> d := !d + !r
       | None -> Hashtbl.add into.counters key (ref !r))
    src.counters;
  Hashtbl.iter
    (fun key (c, ns) ->
       match Hashtbl.find_opt into.timers key with
       | Some (dc, dns) ->
         dc := !dc + !c;
         dns := Int64.add !dns !ns
       | None -> Hashtbl.add into.timers key (ref !c, ref !ns))
    src.timers

(** {1 Accessors} *)

type func_row = { fr_fid : int; fr_calls : int; fr_self_ns : int64; fr_incl_ns : int64 }

let func_rows t =
  Hashtbl.fold
    (fun fid s acc ->
       { fr_fid = fid; fr_calls = s.calls; fr_self_ns = s.self_ns; fr_incl_ns = s.incl_ns }
       :: acc)
    t.funcs []
  |> List.sort (fun a b ->
       match Int64.compare b.fr_self_ns a.fr_self_ns with
       | 0 -> compare a.fr_fid b.fr_fid
       | c -> c)

let total_self_ns t =
  Hashtbl.fold (fun _ s acc -> Int64.add acc s.self_ns) t.funcs 0L

let site_counts t fid = Hashtbl.find_opt t.sites fid

let iter_sites t f = Hashtbl.iter f t.sites

(** Folded-stack lines ("a;b;c <ns>"), fid paths rendered through
    [name_of], sorted for deterministic output. Zero-duration paths are
    kept: they still witness that the path executed. *)
let folded_lines ~name_of t =
  Hashtbl.fold
    (fun key ns acc ->
       let names =
         String.split_on_char ';' key
         |> List.map (fun s -> name_of (int_of_string s))
         |> String.concat ";"
       in
       (names, !ns) :: acc)
    t.folded []
  |> List.sort compare
  |> List.map (fun (path, ns) -> Printf.sprintf "%s %Ld" path ns)

let counter_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let timer_list t =
  Hashtbl.fold (fun k (c, ns) acc -> (k, !c, !ns) :: acc) t.timers []
  |> List.sort compare
