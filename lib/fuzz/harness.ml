(** Campaign driver: deterministic fuzzing with replayable failures.

    Every case is fully determined by the campaign [seed] and its case
    [index] ({!Rng.for_case}); the generator stream and the mutation
    stream live in disjoint index spaces, so a failure report is always
    just a [(seed, index)] pair. Failing mutated inputs are additionally
    minimized (greedy chunk removal preserving the violation kind) and
    both the original and minimized binaries are dumped to the output
    directory. *)

open Wasm

type case_kind = Generated | Mutated

let kind_name = function Generated -> "gen" | Mutated -> "mut"

type failure = {
  case : case_kind;
  seed : int;
  index : int;
  oracle : string;  (** violation kind, e.g. "totality-decode" *)
  detail : string;
  input : string;  (** the offending binary *)
  minimized : string option;
  fault_plan : string option;
      (** rendered {!Faults.describe} when the campaign ran with fault
          injection; the plan itself replays from [(seed, index)] *)
}

type stats = {
  mutable gen_cases : int;
  mutable mut_cases : int;
  mutable mut_decoded : int;  (** mutants that still decoded *)
  mutable mut_valid : int;  (** mutants that still validated *)
  mutable faulted : int;  (** cases run through the restore-equivalence oracle *)
  mutable skips : int;
  mutable violations : int;
}

let fresh_stats () =
  { gen_cases = 0; mut_cases = 0; mut_decoded = 0; mut_valid = 0; faulted = 0; skips = 0;
    violations = 0 }

(* generator cases use the index directly; mutation cases are offset so
   the two streams never share a per-case RNG *)
let mut_index_base = 0x4000_0000

(** {1 Case construction} *)

let gen_case ~seed ~index : Gen.info =
  Gen.generate (Rng.for_case ~seed ~index)

(** A mutated binary: a fresh small generated module, encoded, then
    structure-aware mutated — all from the case's own RNG. *)
let mut_case ~seed ~index : string =
  let rng = Rng.for_case ~seed ~index:(mut_index_base + index) in
  let base = Encode.encode (Gen.generate rng).Gen.module_ in
  Mutate.mutate rng base

(** {1 Oracles per case} *)

(** Run oracle [f], recording its wall time under
    [fuzz_oracle_seconds{oracle=...}] when a metrics registry is given. *)
let timed metrics oracle f =
  match metrics with
  | None -> f ()
  | Some registry ->
    let h =
      Obs.Metrics.histogram ~registry ~help:"Oracle wall time per case"
        ~labels:[ ("oracle", oracle) ] "fuzz_oracle_seconds"
    in
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    Obs.Metrics.observe h (Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0));
    r

(** First violation of the generated-module pipeline, or the skip/pass
    disposition. [restore] supplies the case's [(seed, index)] pair and
    runs the restore-equivalence (fault-injection) oracle as the final
    stage. [probe_index] round-robins the probe-parity variant (full
    attach / tiered / mid-run attach / mid-run detach) across the
    campaign — pass the case index. *)
let check_generated ?metrics ?restore ?(probe_index = 0) (info : Gen.info) : [ `Pass | `Skip | `Fail of string * string ] =
  let timed oracle f = timed metrics oracle f in
  let m = info.Gen.module_ in
  let restore_stage fallthrough =
    match restore with
    | None -> fallthrough
    | Some (seed, index) ->
      (match timed "restore" (fun () -> Oracle.restore_equivalence ~seed ~index info) with
       | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
       | Oracle.Skip _ | Oracle.Pass -> fallthrough)
  in
  match timed "totality-validate" (fun () -> Oracle.validate_total m) with
  | Error crash -> `Fail ("totality-validate", crash)
  | Ok false -> `Fail ("gen-invalid", "generator produced an invalid module")
  | Ok true ->
    (match timed "round-trip" (fun () -> Oracle.round_trip_generated m) with
     | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
     | Oracle.Skip _ | Oracle.Pass ->
       (* static soundness before the (more expensive) differential runs:
          a lint finding pinpoints the broken invariant directly *)
       (match timed "lint" (fun () -> Oracle.lint_instrumented m) with
        | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
        | Oracle.Skip _ | Oracle.Pass ->
          (match timed "differential" (fun () -> Oracle.differential info) with
           | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
           | (Oracle.Skip _ | Oracle.Pass) as diff ->
             (* tier parity runs even when the instrumentation
                differential skipped: it compares out-of-fuel runs *)
             (match timed "tier-parity" (fun () -> Oracle.tier_differential info) with
              | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
              | Oracle.Skip _ | Oracle.Pass ->
                (* engine-probe backend vs the AOT rewriter on the full
                   hook-event stream, incl. mid-run attach/detach and
                   tier-1 deopt variants *)
                (match timed "probe-parity" (fun () -> Oracle.probe_parity ~index:probe_index info) with
                 | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
                 | Oracle.Skip _ | Oracle.Pass ->
                   (* static over-approximation soundness: observed execution
                      vs abstract-interpretation facts, and folded vs unfolded
                      instrumentation equivalence *)
                   (match timed "absint-soundness" (fun () -> Oracle.absint_soundness info) with
                    | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
                    | Oracle.Skip _ | Oracle.Pass ->
                      restore_stage (match diff with Oracle.Skip _ -> `Skip | _ -> `Pass)))))))

(** The mutated-binary pipeline: totality of decode; then, as far as the
    mutant remains meaningful, validate / round-trip / execute. Returns
    the depth reached so the campaign can report corpus quality. *)
let check_mutated ?metrics (bin : string) : [ `Pass of [ `Rejected | `Decoded | `Valid ] | `Skip | `Fail of string * string ] =
  let timed oracle f = timed metrics oracle f in
  match timed "totality-decode" (fun () -> Oracle.decode_total bin) with
  | Error crash -> `Fail ("totality-decode", crash)
  | Ok None -> `Pass `Rejected
  | Ok (Some m) ->
    (match timed "totality-validate" (fun () -> Oracle.validate_total m) with
     | Error crash -> `Fail ("totality-validate", crash)
     | Ok false -> `Pass `Decoded
     | Ok true ->
       (match timed "round-trip" (fun () -> Oracle.round_trip_bytes m) with
        | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
        | Oracle.Skip _ | Oracle.Pass ->
          (match timed "execution" (fun () -> Oracle.execution_total m) with
           | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
           | Oracle.Skip _ -> `Skip
           | Oracle.Pass ->
             (* a fully-valid mutant also exercises the static
                over-approximation oracle: mutated tables and element
                segments stress the indirect-call resolution *)
             let info =
               { Gen.module_ = m;
                 has_memory = m.Ast.memories <> [];
                 n_globals = List.length m.Ast.globals }
             in
             (match timed "absint-soundness" (fun () -> Oracle.absint_soundness info) with
              | Oracle.Violation { kind; detail } -> `Fail (kind, detail)
              | Oracle.Skip _ | Oracle.Pass -> `Pass `Valid))))

(** {1 Minimization}

    Greedy ddmin-style chunk removal: repeatedly try deleting windows of
    shrinking size, keeping any deletion that preserves the violation
    kind. Bounded by an evaluation budget — minimization is best-effort
    triage help, not a guarantee. *)

let minimize_budget = 400

let violation_kind bin =
  match check_mutated bin with `Fail (kind, _) -> Some kind | _ -> None

let minimize (bin : string) : string option =
  match violation_kind bin with
  | None -> None
  | Some kind ->
    let evals = ref 0 in
    let still_fails cand =
      incr evals;
      !evals <= minimize_budget && violation_kind cand = Some kind
    in
    let remove s at len =
      String.sub s 0 at ^ String.sub s (at + len) (String.length s - at - len)
    in
    let cur = ref bin in
    let chunk = ref (max 1 (String.length bin / 2)) in
    while !chunk >= 1 && !evals <= minimize_budget do
      let progress = ref false in
      let pos = ref 0 in
      while !pos < String.length !cur && !evals <= minimize_budget do
        let len = min !chunk (String.length !cur - !pos) in
        let cand = remove !cur !pos len in
        if String.length cand < String.length !cur && still_fails cand then begin
          cur := cand;
          progress := true
          (* keep [pos]: the next window slid into place *)
        end
        else pos := !pos + len
      done;
      if not !progress then chunk := !chunk / 2
    done;
    if String.length !cur < String.length bin then Some !cur else None

(** {1 Failure reporting} *)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let dump_failure ~out_dir (f : failure) =
  match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let stem = Printf.sprintf "%s/failure-%s-seed%d-case%d" dir (kind_name f.case) f.seed f.index in
    write_file (stem ^ ".wasm") f.input;
    (match f.minimized with Some m -> write_file (stem ^ ".min.wasm") m | None -> ());
    let fault_lines =
      match f.fault_plan with
      | None -> ""
      | Some plan -> Printf.sprintf "fault-plan: %s\n" plan
    in
    write_file (stem ^ ".txt")
      (Printf.sprintf "case: %s\nseed: %d\nindex: %d\noracle: %s\ndetail: %s\n%sreplay: wasabi fuzz --seed %d --replay %s:%d%s\n"
         (kind_name f.case) f.seed f.index f.oracle f.detail fault_lines f.seed (kind_name f.case)
         f.index
         (if f.fault_plan = None then "" else " --faults"))

(** {1 The campaign} *)

let default_seed = 0x5EED

(** Run the campaign, optionally sharded across [jobs] domains.

    Parallelism changes {e nothing} about the findings: every case is
    already fully determined by [(seed, index)] ({!Rng.for_case} derives
    a fresh splitmix64 stream per case), so job [j] simply takes the
    indices congruent to [j] mod [jobs] from both streams, and the
    merged report — stats sums, failures in (generated, then mutated,
    each by ascending index) order, dump files keyed by [(seed, index)]
    — is byte-identical for any job count, including [jobs = 1]'s
    sequential order. Only the interleaving of progress log lines
    differs; [log] itself is serialized under a mutex. Metrics are safe
    to share: counters are atomic, histogram observations mutex-guarded,
    registration registry-locked. *)
let run ?(log = fun (_ : string) -> ()) ?out_dir ?metrics ?(faults = false) ?(jobs = 1)
    ~seed ~gen_count ~mut_count () : stats * failure list =
  let jobs = max 1 jobs in
  (* created up front: job domains dump failures directly *)
  (match out_dir with
   | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
   | _ -> ());
  let log_lock = Mutex.create () in
  let log s = Mutex.protect log_lock (fun () -> log s) in
  let campaign_start = Obs.Clock.now_ns () in
  let case_counter kind =
    Option.map
      (fun registry ->
         Obs.Metrics.counter ~registry ~help:"Fuzz cases executed"
           ~labels:[ ("kind", kind) ] "fuzz_cases_total")
      metrics
  in
  let gen_counter = case_counter "gen" and mut_counter = case_counter "mut" in
  let bump = function None -> () | Some c -> Obs.Metrics.inc c in
  (* one job's share: indices ≡ job (mod jobs), with job-private stats
     and failure accumulation *)
  let run_slice job : stats * failure list =
    let stats = fresh_stats () in
    let failures = ref [] in
    let record ?fault_plan case index oracle detail input minimized =
      stats.violations <- stats.violations + 1;
      let f = { case; seed; index; oracle; detail; input; minimized; fault_plan } in
      failures := f :: !failures;
      dump_failure ~out_dir f;
      log
        (Printf.sprintf "FAIL [%s] (seed %d, index %d): %s — %s" oracle seed index
           (kind_name case) detail)
    in
    let i = ref job in
    while !i < gen_count do
      let index = !i in
      stats.gen_cases <- stats.gen_cases + 1;
      bump gen_counter;
      let info = gen_case ~seed ~index in
      let restore = if faults then Some (seed, index) else None in
      if faults then stats.faulted <- stats.faulted + 1;
      (match check_generated ?metrics ?restore ~probe_index:index info with
       | `Pass -> ()
       | `Skip -> stats.skips <- stats.skips + 1
       | `Fail (oracle, detail) ->
         let fault_plan =
           if faults then Some (Faults.describe (Faults.plan ~seed ~index)) else None
         in
         record ?fault_plan Generated index oracle detail (Encode.encode info.Gen.module_) None);
      if jobs = 1 && (index + 1) mod 1000 = 0 then
        log (Printf.sprintf "gen: %d/%d" (index + 1) gen_count);
      i := index + jobs
    done;
    let i = ref job in
    while !i < mut_count do
      let index = !i in
      stats.mut_cases <- stats.mut_cases + 1;
      bump mut_counter;
      let bin = mut_case ~seed ~index in
      (match check_mutated ?metrics bin with
       | `Pass `Rejected -> ()
       | `Pass `Decoded -> stats.mut_decoded <- stats.mut_decoded + 1
       | `Pass `Valid ->
         stats.mut_decoded <- stats.mut_decoded + 1;
         stats.mut_valid <- stats.mut_valid + 1
       | `Skip -> stats.skips <- stats.skips + 1
       | `Fail (oracle, detail) -> record Mutated index oracle detail bin (minimize bin));
      if jobs = 1 && (index + 1) mod 1000 = 0 then
        log (Printf.sprintf "mut: %d/%d" (index + 1) mut_count);
      i := index + jobs
    done;
    (stats, List.rev !failures)
  in
  let results =
    if jobs = 1 then [| run_slice 0 |]
    else Array.map Domain.join (Array.init jobs (fun j -> Domain.spawn (fun () -> run_slice j)))
  in
  let stats = fresh_stats () in
  Array.iter
    (fun ((s : stats), _) ->
       stats.gen_cases <- stats.gen_cases + s.gen_cases;
       stats.mut_cases <- stats.mut_cases + s.mut_cases;
       stats.mut_decoded <- stats.mut_decoded + s.mut_decoded;
       stats.mut_valid <- stats.mut_valid + s.mut_valid;
       stats.faulted <- stats.faulted + s.faulted;
       stats.skips <- stats.skips + s.skips;
       stats.violations <- stats.violations + s.violations)
    results;
  (* deterministic merged order regardless of job count: generated
     failures by ascending index, then mutated failures likewise —
     exactly the sequential campaign's order *)
  let by_kind k =
    Array.to_list results
    |> List.concat_map (fun (_, fs) -> List.filter (fun f -> f.case = k) fs)
    |> List.sort (fun a b -> compare a.index b.index)
  in
  let failures = by_kind Generated @ by_kind Mutated in
  (match metrics with
   | None -> ()
   | Some registry ->
     let elapsed = Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) campaign_start) in
     let cases = stats.gen_cases + stats.mut_cases in
     let g =
       Obs.Metrics.gauge ~registry ~help:"Campaign throughput" "fuzz_cases_per_second"
     in
     Obs.Metrics.set g (if elapsed > 0.0 then Float.of_int cases /. elapsed else 0.0);
     Obs.Metrics.inc ~by:(Float.of_int stats.violations)
       (Obs.Metrics.counter ~registry ~help:"Oracle violations" "fuzz_violations_total");
     Obs.Metrics.inc ~by:(Float.of_int stats.skips)
       (Obs.Metrics.counter ~registry ~help:"Skipped cases" "fuzz_skips_total"));
  (stats, failures)

(** Structured outcome of replaying one case: the caller decides on exit
    codes and formatting instead of sniffing a rendered string. *)
type disposition =
  | Pass of string  (** detail, e.g. how deep a mutant survived *)
  | Skip of string
  | Fail of { oracle : string; detail : string }

let disposition_to_string = function
  | Pass "" -> "pass"
  | Pass why -> Printf.sprintf "pass (%s)" why
  | Skip why -> Printf.sprintf "skip (%s)" why
  | Fail { oracle; detail } -> Printf.sprintf "FAIL [%s]: %s" oracle detail

(** Re-run a single case. [faults] must match the failing campaign's
    flag: the fault plan is re-derived from the same [(seed, index)]
    pair, so the replay is byte-identical — same faults, same actions,
    at the same host-call indices. *)
let replay ?(faults = false) ~seed ~index (case : case_kind) : disposition =
  match case with
  | Generated ->
    let info = gen_case ~seed ~index in
    let restore = if faults then Some (seed, index) else None in
    (match check_generated ?restore ~probe_index:index info with
     | `Pass -> Pass ""
     | `Skip -> Skip "base run exhausted its fuel"
     | `Fail (oracle, detail) -> Fail { oracle; detail })
  | Mutated ->
    let bin = mut_case ~seed ~index in
    (match check_mutated bin with
     | `Pass `Rejected -> Pass "mutant rejected by decoder"
     | `Pass `Decoded -> Pass "mutant decoded, rejected by validation"
     | `Pass `Valid -> Pass "mutant fully valid and executed"
     | `Skip -> Skip "oversized memory/table"
     | `Fail (oracle, detail) -> Fail { oracle; detail })

let summary (s : stats) =
  Printf.sprintf
    "%d generated + %d mutated cases: %d violations, %d skips (mutants: %d decoded, %d valid)%s"
    s.gen_cases s.mut_cases s.violations s.skips s.mut_decoded s.mut_valid
    (if s.faulted = 0 then "" else Printf.sprintf "; %d fault-injected" s.faulted)
