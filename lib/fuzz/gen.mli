(** Type-directed generation of random-but-valid Wasm modules.

    The generator is a grammar over typed expressions and statements;
    validity holds by construction — every generated module must pass
    [Validate.validate_module], and a rejection is a generator bug that
    the harness reports as a violation. The output deliberately includes
    deterministic fault-injection surface (trapping arithmetic,
    mostly-masked memory addresses, partially-initialised
    [call_indirect] tables, guarded [unreachable]) so the differential
    oracle also compares traps, and is structurally terminating (bounded
    loops, acyclic calls) so it finishes well inside the harness's base
    fuel. *)

(** What the oracles need to know about a generated module. *)
type info = {
  module_ : Wasm.Ast.module_;
  has_memory : bool;
  n_globals : int;
}

val generate : Rng.t -> info
(** Generate one module from the given per-case RNG. Deterministic: the
    same RNG state yields the same module. Every module exports a
    nullary [run] function (the harness's entry point) plus its memory
    and globals when present, so the differential oracle can compare
    final state. *)
