(** Deterministic host fault injection: a seeded, replayable plan that
    wraps bound host functions to trap (["injected-fault"]), return
    corrupt-but-well-typed values, or burn the fuel/deadline budgets on
    the k-th armed host call. A plan is a pure function of
    [(seed, index)] over its own disjoint case-index space, so a repro
    line replays byte-identically. *)

open Wasm

type action = Trap | Corrupt | Burn

type t

val index_base : int
(** Offset of the fault-plan index space ([0x2000_0000]): disjoint from
    generated ([0..]) and mutated ([0x4000_0000..]) case indices. *)

val plan : seed:int -> index:int -> t
(** The fault plan for case [index] of campaign [seed]: one to three
    events, biased toward early host-call indices. Deterministic. *)

val wrap : t -> Interp.host_func -> Interp.host_func
(** Wrap a host function: while the plan is armed, each call is counted
    and the planned fault (if any) fires instead of / around the real
    function. Unarmed calls pass straight through uncounted. One plan
    may wrap any number of host functions — the call counter is shared,
    matching "the k-th host call of the run" semantics. *)

val arm : t -> unit
(** Reset the call counter and start counting/injecting. *)

val disarm : t -> unit
(** Stop injecting; wrapped functions pass through again. *)

val attach : t -> Interp.instance -> unit
(** Instance whose fuel/governor a [Burn] event drains. *)

val injected : t -> int
(** Faults fired since the plan was created (not reset by {!arm}). *)

val describe : t -> string
(** Human-readable plan summary for logs and repro dumps. *)
