(** The eight fuzzing oracles: totality, round-trip, differential
    equivalence (paper, Section 4.2's observational-equivalence claim,
    turned into an executable property), static instrumentation
    soundness via {!Lint.check}, tier parity (tier-0 dispatch loop
    vs the {!Wasm.Tier1} closure compiler), restore equivalence
    (fault containment: snapshot → seeded host faults → restore →
    clean run ≡ fresh instance), static over-approximation
    soundness (every dynamically observed indirect-call target, branch
    outcome, operand and global value must be contained in the
    {!Static.Absint} fact, and [~fold]-instrumented execution must be
    event-for-event identical to the unfolded one), and probe parity
    (the engine-probe backend must deliver the same hook-event stream
    as the AOT rewriter, including under mid-run attach/detach and
    tier-1 deopt). *)

type verdict =
  | Pass
  | Skip of string  (** oracle not applicable to this case *)
  | Violation of { kind : string; detail : string }

val base_fuel : int
(** Interpreter fuel for uninstrumented runs. *)

val hook_fuel_scale : int
(** Fuel multiplier for instrumented runs (hook calls cost fuel too). *)

(** {1 Totality}

    Feeding any byte string through decode (and, when it decodes,
    validate / instantiate / execute) may only raise the structured
    taxonomy exceptions; any other escape is returned as [Error crash]
    with the exception text (and backtrace when recorded). *)

val decode_total : string -> (Wasm.Ast.module_ option, string) result
(** [Ok (Some m)] decoded, [Ok None] rejected inside the taxonomy. *)

val validate_total : Wasm.Ast.module_ -> (bool, string) result
(** [Ok true] valid, [Ok false] rejected inside the taxonomy. *)

(** {1 Round-trip} *)

val round_trip_generated : Wasm.Ast.module_ -> verdict
(** [decode (encode m)] must equal [m] structurally (the generator emits
    no NaN constants, so [=] is exact). *)

val round_trip_bytes : Wasm.Ast.module_ -> verdict
(** Byte idempotence for a decoded-from-mutation module: encode, decode,
    encode again must reproduce the first encoding. *)

(** {1 Execution} *)

type run_result = {
  outcome : (Wasm.Value.t list, Wasm.Error.t) result;
  mem_digest : string option;  (** MD5 of final memory, when exported *)
  globals : (string * Wasm.Value.t) list;  (** exported globals, post-run *)
}

val differential : Gen.info -> verdict
(** Execute the module uninstrumented and instrumented (all hook groups,
    the no-op analysis): result values, trap identity, final memory and
    exported globals must agree. [Skip] when the base run exhausts its
    fuel (the two executions are then cut off at incomparable points). *)

val tier_differential : Gen.info -> verdict
(** Execute the module on tier 0 and with the tier-1 compiler forced on
    (threshold 1), at identical fuel: result values, trap identity,
    final memory and exported globals must agree. Tier 1 charges fuel
    at exactly tier 0's boundaries, so out-of-fuel cases are compared,
    never skipped. *)

val restore_equivalence : seed:int -> index:int -> Gen.info -> verdict
(** The fault-containment oracle: instantiate instrumented, snapshot the
    pristine state, run under the deterministic host-fault plan for
    [(seed, index)] ({!Faults.plan}) with a governor attached, restore,
    run clean — outcome, memory digest and exported globals must match a
    run on a fresh instance at the same fuel. Every odd [index] runs on
    tier 0; every even one forces the tier-1 compiler on (threshold 1)
    with deopt-on-fault enabled, exercising compiled-body unwinding. *)

val lint_instrumented : Wasm.Ast.module_ -> verdict
(** Instrument the module — once fully, once with call-graph-driven
    selective pruning, once with static hook folding on top — and run
    the static soundness lint over each result; any [Error]-severity
    finding is a violation. *)

val absint_soundness : Gen.info -> verdict
(** The static over-approximation soundness oracle. Runs the module
    instrumented with an observing analysis and asserts every observed
    indirect-call target and table index, branch condition, [br_table]
    index, binary operand and global value is contained in the
    corresponding {!Static.Absint} fact (and that no hook fires at a
    statically-dead site); then re-runs with [~fold] instrumentation
    and requires an identical hook-event stream, outcome, final memory
    and exported globals. [Skip] when the base run exhausts its fuel or
    an instrumented run does. *)

val probe_parity : index:int -> Gen.info -> verdict
(** The engine-probe vs AOT-rewrite differential. Runs the module
    plain, AOT-instrumented with a recording analysis, and with engine
    probes delivering to the same recording analysis. The probed run's
    outcome, final memory and exported globals must equal the plain
    run's; the probe event stream must be byte-identical to the AOT
    stream when all groups are attached for the whole run, and an
    order-preserving subsequence of it under mid-run attach/detach.
    [index mod 4] selects the variant: full attach on tier 0, full
    attach with the tier-1 compiler forced on (attach-deopt), tiered
    mid-run attach (step trigger at half the plain run's step count),
    mid-run detach. [Skip] when the base or the AOT run exhausts its
    fuel. *)

val execution_total : Wasm.Ast.module_ -> verdict
(** Execution totality for an arbitrary valid module (mutation
    pipeline): instantiate with no imports and invoke the first nullary
    exported function; only taxonomy failures are acceptable. Modules
    declaring oversized memories/tables are skipped, not failed. *)
