(** Structure-aware mutation of encoded Wasm binaries.

    A mutation round first tries to parse the top-level section skeleton
    (magic/version, then a list of [id, LEB size, payload] spans) and
    then applies 1–4 stacked mutations, mixing blind byte-level noise
    (bit flips, inserts, deletes, truncation) with structural edits that
    byte noise almost never reaches: duplicating / deleting / swapping
    whole sections, rewriting a section's size field, re-encoding a
    LEB128 as a semantically identical over-long form, and corrupting
    index bytes inside a specific section (e.g. type indices in the
    function section). If the skeleton doesn't parse (e.g. the input is
    already heavily mutated), only byte-level mutations apply. *)

type section = {
  hdr_start : int;  (** offset of the id byte *)
  payload_start : int;
  payload_len : int;
}

let header_len = 8

(** Best-effort span parse; returns [] when the skeleton is broken. *)
let sections (bin : string) : section list =
  let n = String.length bin in
  let rec leb pos shift acc =
    if pos >= n || shift > 28 then None
    else
      let b = Char.code bin.[pos] in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then Some (acc, pos + 1) else leb (pos + 1) (shift + 7) acc
  in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match leb (pos + 1) 0 0 with
      | None -> List.rev acc
      | Some (size, payload_start) ->
        if payload_start + size > n then List.rev acc
        else
          go (payload_start + size)
            ({ hdr_start = pos; payload_start; payload_len = size } :: acc)
  in
  if n < header_len then [] else go header_len []

let splice bin ~at ~remove ~insert =
  String.sub bin 0 at ^ insert ^ String.sub bin (at + remove) (String.length bin - at - remove)

let encode_uleb v =
  let buf = Buffer.create 5 in
  let rec go v =
    let b = v land 0x7F and rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr b)
    else begin
      Buffer.add_char buf (Char.chr (b lor 0x80));
      go rest
    end
  in
  go v;
  Buffer.contents buf

(* byte-level mutations: applicable to anything *)

let bit_flip rng bin =
  if String.length bin = 0 then bin
  else
    let i = Rng.int rng (String.length bin) in
    let b = Char.code bin.[i] lxor (1 lsl Rng.int rng 8) in
    splice bin ~at:i ~remove:1 ~insert:(String.make 1 (Char.chr b))

let byte_set rng bin =
  if String.length bin = 0 then bin
  else
    let i = Rng.int rng (String.length bin) in
    splice bin ~at:i ~remove:1 ~insert:(String.make 1 (Char.chr (Rng.int rng 256)))

let byte_insert rng bin =
  let i = Rng.int rng (String.length bin + 1) in
  splice bin ~at:i ~remove:0 ~insert:(String.make 1 (Char.chr (Rng.int rng 256)))

let byte_delete rng bin =
  if String.length bin = 0 then bin
  else splice bin ~at:(Rng.int rng (String.length bin)) ~remove:1 ~insert:""

let truncate rng bin =
  if String.length bin = 0 then bin else String.sub bin 0 (Rng.int rng (String.length bin))

(* structural mutations: need a parsed section skeleton *)

let section_span s =
  (s.hdr_start, s.payload_start + s.payload_len - s.hdr_start)

let dup_section rng bin secs =
  let s = Rng.choose_list rng secs in
  let at, len = section_span s in
  let sec = String.sub bin at len in
  (* reinsert at a section boundary (possibly out of order) *)
  let bounds = header_len :: List.map (fun s -> s.hdr_start) secs in
  let ins = Rng.choose_list rng bounds in
  splice bin ~at:ins ~remove:0 ~insert:sec

let del_section rng bin secs =
  let s = Rng.choose_list rng secs in
  let at, len = section_span s in
  splice bin ~at ~remove:len ~insert:""

let swap_sections rng bin secs =
  match secs with
  | [] | [ _ ] -> bin
  | _ ->
    let a = Rng.choose_list rng secs and b = Rng.choose_list rng secs in
    if a.hdr_start = b.hdr_start then bin
    else
      let a, b = if a.hdr_start < b.hdr_start then (a, b) else (b, a) in
      let a_at, a_len = section_span a and b_at, b_len = section_span b in
      let sa = String.sub bin a_at a_len and sb = String.sub bin b_at b_len in
      String.sub bin 0 a_at ^ sb
      ^ String.sub bin (a_at + a_len) (b_at - a_at - a_len)
      ^ sa
      ^ String.sub bin (b_at + b_len) (String.length bin - b_at - b_len)

(** Rewrite a section's size LEB to a wrong value (too small, too large,
    or enormous) without touching the payload. *)
let resize_section rng bin secs =
  let s = Rng.choose_list rng secs in
  let leb_at = s.hdr_start + 1 in
  let leb_len = s.payload_start - leb_at in
  let forged =
    match Rng.int rng 4 with
    | 0 -> encode_uleb (s.payload_len + 1 + Rng.int rng 64)
    | 1 -> encode_uleb (max 0 (s.payload_len - 1 - Rng.int rng (max 1 s.payload_len)))
    | 2 -> encode_uleb 0xFFFF_FFF
    | _ -> "\xFF\xFF\xFF\xFF\x7F" (* 5-byte maximal LEB *)
  in
  splice bin ~at:leb_at ~remove:leb_len ~insert:forged

(** Re-encode some single-byte LEB (a byte < 0x80 inside a section
    payload) as the over-long two-byte form of the same value: exercises
    the decoder's over-long handling without changing meaning. *)
let overlong_leb rng bin secs =
  let s = Rng.choose_list rng secs in
  if s.payload_len = 0 then bin
  else
    let i = s.payload_start + Rng.int rng s.payload_len in
    let b = Char.code bin.[i] in
    if b land 0x80 <> 0 then bin
    else splice bin ~at:i ~remove:1 ~insert:(String.init 2 (function 0 -> Char.chr (b lor 0x80) | _ -> '\x00'))

(** Corrupt one byte inside a section payload — with the skeleton intact
    this reaches indices (type/func/local) far more often than blind
    byte noise over the whole file. *)
let corrupt_payload rng bin secs =
  let s = Rng.choose_list rng secs in
  if s.payload_len = 0 then bin
  else
    let i = s.payload_start + Rng.int rng s.payload_len in
    let forged =
      match Rng.int rng 3 with
      | 0 -> Char.chr (Rng.int rng 256)
      | 1 -> '\xFF'
      | _ -> Char.chr ((Char.code bin.[i] + 1) land 0xFF)
    in
    splice bin ~at:i ~remove:1 ~insert:(String.make 1 forged)

let mutate_once rng bin =
  let secs = sections bin in
  let structural = secs <> [] in
  match Rng.int rng (if structural then 11 else 5) with
  | 0 -> bit_flip rng bin
  | 1 -> byte_set rng bin
  | 2 -> byte_insert rng bin
  | 3 -> byte_delete rng bin
  | 4 -> truncate rng bin
  | 5 -> dup_section rng bin secs
  | 6 -> del_section rng bin secs
  | 7 -> swap_sections rng bin secs
  | 8 -> resize_section rng bin secs
  | 9 -> overlong_leb rng bin secs
  | _ -> corrupt_payload rng bin secs

(** Apply 1–4 stacked mutations. *)
let mutate rng bin =
  let rounds = Rng.range rng 1 4 in
  let rec go n bin = if n = 0 then bin else go (n - 1) (mutate_once rng bin) in
  go rounds bin
