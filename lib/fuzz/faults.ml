(** Deterministic host fault injection: a seeded, replayable plan of
    faults applied to bound host functions (hook imports,
    [Interp.host_func_raw] bindings).

    A plan is derived entirely from a [(seed, index)] pair through the
    same splitmix64 streams as case generation, on its own disjoint
    index space ({!index_base}), so a repro line carrying the campaign
    seed, the case index and a [--faults] flag replays byte-identically:
    same faults, same actions, at the same host-call indices.

    Three fault actions model the ways a host can misbehave:

    - {b Trap}: the host function raises instead of returning — a
      crashing analysis hook. Classified as code ["injected-fault"], so
      oracles can tell injected faults from genuine guest traps.
    - {b Corrupt}: the host function is {e not} called; deterministic
      well-typed garbage is returned in its stead (hooks with no results
      are silently dropped) — a buggy analysis returning nonsense.
    - {b Burn}: the budget is burned — the attached instance's governor
      deadline is force-expired (or, with no governor, its fuel zeroed)
      — then the call proceeds; the run dies at the next batch boundary.
      This makes wall-clock deadline kills replayable without a clock.

    The wrapper counts only calls made while the plan is {e armed}, so a
    harness can instantiate (start-function hooks and all) before any
    fault becomes eligible, and disarm before the post-restore clean
    re-run. *)

open Wasm

type action = Trap | Corrupt | Burn

(** Case indices for fault plans: disjoint from generated cases ([0..])
    and mutated cases ([Harness.mut_index_base = 0x4000_0000]). *)
let index_base = 0x2000_0000

type event = {
  at : int;  (** armed host-call index the fault fires on *)
  action : action;
}

type t = {
  events : event array;  (** sorted by [at], unique indices *)
  seed : int;
  index : int;
  mutable calls : int;  (** armed host calls seen so far *)
  mutable armed : bool;
  mutable injected : int;  (** faults actually fired *)
  mutable target : Interp.instance option;  (** for [Burn] *)
}

(* hook-instrumented runs make a host call per executed instruction, so
   fault indices are biased small to fire within even tiny runs, with a
   tail reaching further in *)
let draw_at rng = if Rng.chance rng 70 then Rng.int rng 16 else Rng.int rng 256

let draw_action rng =
  match Rng.int rng 3 with 0 -> Trap | 1 -> Corrupt | _ -> Burn

let plan ~seed ~index : t =
  let rng = Rng.for_case ~seed ~index:(index_base + index) in
  let n = Rng.range rng 1 3 in
  let raw = Array.init n (fun _ -> { at = draw_at rng; action = draw_action rng }) in
  Array.sort (fun a b -> compare a.at b.at) raw;
  (* duplicate indices keep the first event only *)
  let events =
    Array.of_list
      (List.rev
         (snd
            (Array.fold_left
               (fun (last, acc) e -> if e.at = last then (last, acc) else (e.at, e :: acc))
               (-1, []) raw)))
  in
  { events; seed; index; calls = 0; armed = false; injected = 0; target = None }

let arm t =
  t.calls <- 0;
  t.armed <- true

let disarm t = t.armed <- false
let attach t inst = t.target <- Some inst
let injected t = t.injected

let action_name = function Trap -> "trap" | Corrupt -> "corrupt" | Burn -> "burn"

let describe t =
  let evs =
    Array.to_list t.events
    |> List.map (fun e -> Printf.sprintf "%s@%d" (action_name e.action) e.at)
    |> String.concat ","
  in
  Printf.sprintf "faults(seed=%d,index=%d):%s" t.seed t.index evs

(* corrupt-but-well-typed results: deterministic per (plan, call index,
   result position), drawn from the plan's own stream so replays agree *)
let corrupt_results t ~(call : int) (results : Types.value_type list) : Value.t list =
  let rng = Rng.for_case ~seed:t.seed ~index:(index_base + t.index + (call * 7919)) in
  List.map
    (fun (ty : Types.value_type) ->
       match ty with
       | Types.I32T -> Value.I32 (Rng.i32_const rng)
       | Types.I64T -> Value.I64 (Rng.i64_const rng)
       | Types.F32T -> Value.F32 (Rng.int32 rng)
       | Types.F64T -> Value.F64 (Int64.float_of_bits (Rng.bits64 rng)))
    results

let event_at t k =
  (* events is tiny (<= 3); linear scan *)
  let rec go i =
    if i >= Array.length t.events then None
    else if t.events.(i).at = k then Some t.events.(i).action
    else if t.events.(i).at > k then None
    else go (i + 1)
  in
  go 0

(* expire the governor's deadline when one is attached (the run dies
   with ["deadline-exceeded"] at the next batch boundary — deterministic,
   no clock involved); zero the fuel otherwise so the run still
   terminates, as plain exhaustion *)
let burn t =
  match t.target with
  | None -> ()
  | Some inst ->
    (match inst.Interp.inst_gov with
     | Some g -> Governor.expire g
     | None -> inst.Interp.fuel <- 0)

let wrap t (h : Interp.host_func) : Interp.host_func =
  let fn args off =
    if not t.armed then h.Interp.h_fn args off
    else begin
      let k = t.calls in
      t.calls <- k + 1;
      match event_at t k with
      | None -> h.Interp.h_fn args off
      | Some Trap ->
        t.injected <- t.injected + 1;
        raise (Value.Trap "injected host fault")
      | Some Corrupt ->
        t.injected <- t.injected + 1;
        corrupt_results t ~call:k h.Interp.h_type.Types.results
      | Some Burn ->
        t.injected <- t.injected + 1;
        burn t;
        h.Interp.h_fn args off
    end
  in
  { h with Interp.h_fn = fn }
