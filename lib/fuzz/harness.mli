(** Campaign driver: deterministic fuzzing with replayable failures.

    Every case is fully determined by the campaign seed and its case
    index ({!Rng.for_case}); the generator stream and the mutation
    stream live in disjoint index spaces, so a failure report is always
    just a [(seed, index)] pair. *)

type case_kind = Generated | Mutated

val kind_name : case_kind -> string
(** ["gen"] / ["mut"], as used in replay specs and failure file names. *)

type failure = {
  case : case_kind;
  seed : int;
  index : int;
  oracle : string;  (** violation kind, e.g. "totality-decode" *)
  detail : string;
  input : string;  (** the offending binary *)
  minimized : string option;
  fault_plan : string option;
      (** rendered fault plan when the campaign ran with [~faults:true];
          the plan replays from [(seed, index)] alone *)
}

type stats = {
  mutable gen_cases : int;
  mutable mut_cases : int;
  mutable mut_decoded : int;  (** mutants that still decoded *)
  mutable mut_valid : int;  (** mutants that still validated *)
  mutable faulted : int;  (** cases run through the restore-equivalence oracle *)
  mutable skips : int;
  mutable violations : int;
}

val fresh_stats : unit -> stats

(** {1 Case construction} *)

val gen_case : seed:int -> index:int -> Gen.info
(** The generated module for a [(seed, index)] pair. Deterministic. *)

val mut_case : seed:int -> index:int -> string
(** The mutated binary for a [(seed, index)] pair: a fresh small
    generated module, encoded, then structure-aware mutated — all from
    the case's own RNG. Deterministic. *)

(** {1 Oracles per case} *)

val check_generated :
  ?metrics:Obs.Metrics.registry -> ?restore:int * int -> ?probe_index:int ->
  Gen.info -> [ `Pass | `Skip | `Fail of string * string ]
(** The generated-module pipeline — validate, round-trip, static
    instrumentation lint, differential execution, tier parity, probe
    parity, absint soundness — stopping at the first violation
    [(kind, detail)]. [?metrics] records each oracle's wall time under
    [fuzz_oracle_seconds{oracle=...}]. [?restore] supplies the case's
    [(seed, index)] and appends the restore-equivalence
    (fault-injection) oracle as the final stage. [?probe_index]
    (default 0) round-robins the probe-parity variant; the campaign
    passes the case index. *)

val check_mutated :
  ?metrics:Obs.Metrics.registry ->
  string -> [ `Pass of [ `Rejected | `Decoded | `Valid ] | `Skip | `Fail of string * string ]
(** The mutated-binary pipeline: totality of decode; then, as far as the
    mutant remains meaningful, validate / round-trip / execute. The
    [`Pass] payload reports the depth reached, for corpus-quality
    statistics. *)

val minimize : string -> string option
(** Greedy ddmin-style chunk removal preserving the violation kind of
    {!check_mutated}; [None] when the input does not fail or could not
    be shrunk within the evaluation budget. *)

(** {1 The campaign} *)

val default_seed : int

val run :
  ?log:(string -> unit) -> ?out_dir:string -> ?metrics:Obs.Metrics.registry ->
  ?faults:bool -> ?jobs:int ->
  seed:int -> gen_count:int -> mut_count:int -> unit -> stats * failure list
(** Run a campaign of [gen_count] generated and [mut_count] mutated
    cases. Failures are returned in case order and, when [out_dir] is
    given, dumped there ([.wasm], minimized [.min.wasm], and a [.txt]
    replay recipe each). [?metrics] records case counters, per-oracle
    timing histograms and the campaign's cases/second. [?faults]
    (default off) runs every generated case through the
    restore-equivalence oracle under its deterministic host-fault plan;
    failure dumps then record the plan and a [--faults] replay line.
    [?jobs] (default 1) shards case indices across that many domains;
    since every case is determined by [(seed, index)] alone, the
    returned stats and failures — and the dump files — are identical
    for any job count. [log] is serialized; only the interleaving of
    progress lines differs under parallel runs. *)

(** Structured outcome of replaying one case. *)
type disposition =
  | Pass of string  (** detail, e.g. how deep a mutant survived; may be empty *)
  | Skip of string
  | Fail of { oracle : string; detail : string }

val disposition_to_string : disposition -> string

val replay : ?faults:bool -> seed:int -> index:int -> case_kind -> disposition
(** Re-run a single case. Pass [~faults:true] iff the failing campaign
    ran with fault injection: the fault plan is re-derived from the same
    [(seed, index)] pair, so the replay is byte-identical. *)

val summary : stats -> string
(** One-line campaign summary. *)
