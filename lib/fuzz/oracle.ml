(** The eight fuzzing oracles: totality, round-trip, differential
    equivalence (paper, Section 4.2's observational-equivalence claim,
    turned into an executable property), static instrumentation
    soundness, tier parity (tier-0 dispatch loop vs the tier-1
    closure compiler), restore equivalence (fault containment),
    static over-approximation soundness (abstract-interpretation facts
    vs observed execution, plus folded-instrumentation equivalence),
    and probe parity (the engine-probe backend vs the AOT rewriter on
    the full hook-event stream).

    {b Totality}: feeding any byte string through decode (and, when it
    decodes, validate / instantiate / execute) may only raise the
    structured taxonomy exceptions ({!Error.classify} returns [Some]).
    [Stack_overflow], [Invalid_argument], [Out_of_memory], [Failure] or
    any other escape is a violation.

    {b Round-trip}: [decode (encode m) = m] for generated modules
    (structurally — the generator emits no NaN constants, so [=] is
    exact), and [encode ∘ decode] is idempotent on the bytes of any
    mutated binary that still decodes.

    {b Differential equivalence}: executing a generated module
    uninstrumented and instrumented (all hook groups, the no-op
    {!Wasabi.Analysis.default}) must produce the same result values, the
    same trap, and the same final memory and exported globals. The
    instrumented run gets its fuel scaled by {!hook_fuel_scale}; when the
    {e base} run already exhausts its fuel the case is skipped (the two
    executions are then cut off at incomparable points).

    {b Instrumentation soundness}: the static lint ({!Lint.check}) must
    report no errors on the instrumented module — once with full
    instrumentation and once with call-graph-driven selective pruning —
    so the structural faithfulness invariants are checked on every
    generated case, not only the behavioural ones the differential
    oracle can observe.

    {b Tier parity}: executing a generated module on tier 0 and with
    the tier-1 closure compiler forced on (threshold 1) must produce
    the same result values, the same trap, and the same final memory
    and exported globals — with the {e same} fuel. Tier 1 charges fuel
    at exactly tier 0's boundaries, so unlike the instrumentation
    differential this oracle does not skip out-of-fuel cases: both
    tiers must exhaust at the same point with the same partial state. *)

open Wasm

type verdict =
  | Pass
  | Skip of string  (** oracle not applicable to this case *)
  | Violation of { kind : string; detail : string }

let base_fuel = 100_000
let hook_fuel_scale = 1024

(* execution gates for arbitrary (mutated) valid modules: keep
   adversarial resource claims from slowing the campaign down — these
   are skips, not failures *)
let max_exec_memory_pages = 64
let max_exec_table_size = 65_536

let violation kind fmt = Printf.ksprintf (fun detail -> Violation { kind; detail }) fmt

(** Run [f]; a structured failure is data, anything else a crash (the
    crash string includes a backtrace when the runtime records them). *)
let guarded f =
  match f () with
  | v -> Ok (Ok v)
  | exception e ->
    (match Error.classify e with
     | Some err -> Ok (Error err)
     | None ->
       let bt = Printexc.get_backtrace () in
       Error (Printexc.to_string e ^ if bt = "" then "" else "\n" ^ bt))

(** {1 Totality} *)

let decode_total (bin : string) : (Ast.module_ option, string) result =
  match guarded (fun () -> Decode.decode bin) with
  | Ok (Ok m) -> Ok (Some m)
  | Ok (Error _) -> Ok None
  | Error crash -> Error crash

let validate_total (m : Ast.module_) : (bool, string) result =
  match guarded (fun () -> Validate.validate_module m) with
  | Ok (Ok ()) -> Ok true
  | Ok (Error _) -> Ok false
  | Error crash -> Error crash

(** {1 Round-trip} *)

let round_trip_generated (m : Ast.module_) : verdict =
  match guarded (fun () -> Decode.decode (Encode.encode m)) with
  | Ok (Ok m') ->
    if m' = m then Pass
    else violation "round-trip" "decode (encode m) differs structurally from m"
  | Ok (Error err) -> violation "round-trip" "re-decode rejected: %s" (Error.to_string err)
  | Error crash -> violation "totality-decode" "re-decode crashed: %s" crash

(** Byte idempotence for a decoded-from-mutation module: encoding, then
    decoding, then encoding again must reproduce the first encoding. *)
let round_trip_bytes (m : Ast.module_) : verdict =
  match guarded (fun () -> Encode.encode m) with
  | Error crash -> violation "totality-encode" "encode crashed: %s" crash
  | Ok (Error err) -> violation "totality-encode" "encode raised taxonomy error: %s" (Error.to_string err)
  | Ok (Ok bytes1) ->
    (match guarded (fun () -> Encode.encode (Decode.decode bytes1)) with
     | Ok (Ok bytes2) ->
       if String.equal bytes1 bytes2 then Pass
       else violation "round-trip" "encode/decode/encode is not idempotent"
     | Ok (Error err) ->
       violation "round-trip" "own encoding rejected: %s" (Error.to_string err)
     | Error crash -> violation "totality-decode" "re-decode crashed: %s" crash)

(** {1 Execution} *)

type run_result = {
  outcome : (Value.t list, Error.t) result;
  mem_digest : string option;  (** MD5 of final memory, when exported *)
  globals : (string * Value.t) list;  (** exported globals, post-run *)
}

let exported_globals (m : Ast.module_) =
  List.filter_map
    (fun (e : Ast.export) -> match e.edesc with Ast.GlobalExport _ -> Some e.name | _ -> None)
    m.exports

let exports_memory (m : Ast.module_) name =
  List.exists
    (fun (e : Ast.export) -> match e.edesc with Ast.MemoryExport _ -> e.name = name | _ -> false)
    m.exports

let snapshot (m : Ast.module_) (inst : Interp.instance) outcome : run_result =
  let mem_digest =
    if exports_memory m "mem" then
      let mem = Interp.export_memory inst "mem" in
      Some (Digest.string (Memory.to_string mem ~at:0 ~len:(Memory.size_bytes mem)))
    else None
  in
  let globals =
    List.map (fun n -> (n, (Interp.export_global inst n).Interp.g_value)) (exported_globals m)
  in
  { outcome; mem_digest; globals }

(** Instantiate and call [run]; crashes surface as [Error crash]. *)
let run_plain (m : Ast.module_) ~fuel : (run_result, string) result =
  match
    guarded (fun () ->
      let inst = Interp.instantiate ~fuel ~imports:[] m in
      let vs = Interp.invoke_export inst "run" [] in
      (inst, vs))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, vs)) -> Ok (snapshot m inst (Ok vs))
  | Ok (Error err) ->
    (* the instance is lost when instantiation itself failed; traps
       during [run] need the post-trap state, so re-run in two phases *)
    (match
       guarded (fun () ->
         let inst = Interp.instantiate ~fuel ~imports:[] m in
         (try ignore (Interp.invoke_export inst "run" []) with _ -> ());
         inst)
     with
     | Ok (Ok inst) -> Ok (snapshot m inst (Error err))
     | _ -> Ok { outcome = Error err; mem_digest = None; globals = [] })

(** Like {!run_plain}, but with the tier-1 compiler forced on
    (threshold 1: every function compiles on its first call). *)
let run_tiered (m : Ast.module_) ~fuel : (run_result, string) result =
  match
    guarded (fun () ->
      let inst = Interp.instantiate ~fuel ~imports:[] m in
      Tier1.enable ~threshold:1 inst;
      let vs = Interp.invoke_export inst "run" [] in
      (inst, vs))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, vs)) -> Ok (snapshot m inst (Ok vs))
  | Ok (Error err) ->
    (match
       guarded (fun () ->
         let inst = Interp.instantiate ~fuel ~imports:[] m in
         Tier1.enable ~threshold:1 inst;
         (try ignore (Interp.invoke_export inst "run" []) with _ -> ());
         inst)
     with
     | Ok (Ok inst) -> Ok (snapshot m inst (Error err))
     | _ -> Ok { outcome = Error err; mem_digest = None; globals = [] })

let run_instrumented (m : Ast.module_) ~fuel : (run_result, string) result =
  match
    guarded (fun () ->
      let res = Wasabi.Instrument.instrument m in
      let inst, _rt = Wasabi.Runtime.instantiate ~fuel res Wasabi.Analysis.default in
      let vs = Interp.invoke_export inst "run" [] in
      (inst, vs))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, vs)) -> Ok (snapshot m inst (Ok vs))
  | Ok (Error err) ->
    (match
       guarded (fun () ->
         let res = Wasabi.Instrument.instrument m in
         let inst, _rt = Wasabi.Runtime.instantiate ~fuel res Wasabi.Analysis.default in
         (try ignore (Interp.invoke_export inst "run" []) with _ -> ());
         inst)
     with
     | Ok (Ok inst) -> Ok (snapshot m inst (Error err))
     | _ -> Ok { outcome = Error err; mem_digest = None; globals = [] })

let string_of_outcome = function
  | Ok vs -> "values [" ^ String.concat "; " (List.map Value.to_string vs) ^ "]"
  | Error (e : Error.t) -> Error.to_string e

let outcomes_agree a b =
  match a, b with
  | Ok va, Ok vb -> List.length va = List.length vb && List.for_all2 Value.equal va vb
  | Error (ea : Error.t), Error (eb : Error.t) ->
    ea.Error.phase = eb.Error.phase && ea.Error.code = eb.Error.code
    && ea.Error.message = eb.Error.message
  | _ -> false

let is_out_of_fuel = function
  | Error (e : Error.t) -> e.Error.code = "resource-exhausted" && e.Error.message = "out of fuel"
  | Ok _ -> false

let engine_bug = function
  | Error (e : Error.t) when Error.is_engine_bug e -> true
  | _ -> false

(** The differential oracle for a generated module. *)
let differential (info : Gen.info) : verdict =
  let m = info.Gen.module_ in
  match run_plain m ~fuel:base_fuel with
  | Error crash -> violation "totality-exec" "uninstrumented run crashed: %s" crash
  | Ok base ->
    if engine_bug base.outcome then
      violation "engine-bug" "uninstrumented run: %s" (string_of_outcome base.outcome)
    else if is_out_of_fuel base.outcome then Skip "base-exhausted"
    else (
      match run_instrumented m ~fuel:(base_fuel * hook_fuel_scale) with
      | Error crash -> violation "totality-exec" "instrumented run crashed: %s" crash
      | Ok instr ->
        if engine_bug instr.outcome then
          violation "engine-bug" "instrumented run: %s" (string_of_outcome instr.outcome)
        else if not (outcomes_agree base.outcome instr.outcome) then
          violation "differential" "outcome diverged: base %s vs instrumented %s"
            (string_of_outcome base.outcome) (string_of_outcome instr.outcome)
        else if base.mem_digest <> instr.mem_digest then
          violation "differential" "final memory diverged"
        else (
          let diverged =
            List.filter
              (fun (n, v) ->
                 match List.assoc_opt n instr.globals with
                 | Some v' -> not (Value.equal v v')
                 | None -> true)
              base.globals
          in
          match diverged with
          | [] -> Pass
          | (n, v) :: _ ->
            let v' =
              match List.assoc_opt n instr.globals with
              | Some v' -> Value.to_string v'
              | None -> "<missing>"
            in
            violation "differential" "global %s diverged: base %s vs instrumented %s" n
              (Value.to_string v) v'))

(** The tier-parity oracle for a generated module: tier 0 and tier 1
    must agree outcome-for-outcome at identical fuel — including on
    out-of-fuel exhaustion, which the charging-parity contract makes
    comparable (both tiers cut off at the same instruction). *)
let tier_differential (info : Gen.info) : verdict =
  let m = info.Gen.module_ in
  match run_plain m ~fuel:base_fuel with
  | Error crash -> violation "totality-exec" "tier-0 run crashed: %s" crash
  | Ok t0 ->
    if engine_bug t0.outcome then
      violation "engine-bug" "tier-0 run: %s" (string_of_outcome t0.outcome)
    else (
      match run_tiered m ~fuel:base_fuel with
      | Error crash -> violation "totality-exec" "tier-1 run crashed: %s" crash
      | Ok t1 ->
        if engine_bug t1.outcome then
          violation "engine-bug" "tier-1 run: %s" (string_of_outcome t1.outcome)
        else if not (outcomes_agree t0.outcome t1.outcome) then
          violation "tier-parity" "outcome diverged: tier0 %s vs tier1 %s"
            (string_of_outcome t0.outcome) (string_of_outcome t1.outcome)
        else if t0.mem_digest <> t1.mem_digest then
          violation "tier-parity" "final memory diverged"
        else (
          let diverged =
            List.filter
              (fun (n, v) ->
                 match List.assoc_opt n t1.globals with
                 | Some v' -> not (Value.equal v v')
                 | None -> true)
              t0.globals
          in
          match diverged with
          | [] -> Pass
          | (n, v) :: _ ->
            let v' =
              match List.assoc_opt n t1.globals with
              | Some v' -> Value.to_string v'
              | None -> "<missing>"
            in
            violation "tier-parity" "global %s diverged: tier0 %s vs tier1 %s" n
              (Value.to_string v) v'))

(** {1 Restore equivalence}

    The fault-containment property, as an executable oracle: take an
    instrumented instance, snapshot it pristine, batter it with a
    seeded host-fault plan (hook trap / corrupt return / budget burn),
    restore, run clean — the restored run must be indistinguishable
    (outcome, memory digest, exported globals) from a run on a fresh
    instance. Half the cases run with the tier-1 compiler forced on and
    deopt-on-fault enabled, so compiled-body unwinding and permanent
    deopt are exercised under the same equivalence. *)

let compare_runs ~kind ~left ~right (a : run_result) (b : run_result) : verdict =
  if not (outcomes_agree a.outcome b.outcome) then
    violation kind "outcome diverged: %s %s vs %s %s" left (string_of_outcome a.outcome) right
      (string_of_outcome b.outcome)
  else if a.mem_digest <> b.mem_digest then violation kind "final memory diverged"
  else (
    let diverged =
      List.filter
        (fun (n, v) ->
           match List.assoc_opt n b.globals with
           | Some v' -> not (Value.equal v v')
           | None -> true)
        a.globals
    in
    match diverged with
    | [] -> Pass
    | (n, v) :: _ ->
      let v' =
        match List.assoc_opt n b.globals with
        | Some v' -> Value.to_string v'
        | None -> "<missing>"
      in
      violation kind "global %s diverged: %s %s vs %s %s" n left (Value.to_string v) right v')

let restore_equivalence ~seed ~index (info : Gen.info) : verdict =
  let m = info.Gen.module_ in
  let fuel = base_fuel * hook_fuel_scale in
  let tiered = index land 1 = 0 in
  let fplan = Faults.plan ~seed ~index in
  (* [guarded] wraps each phase separately so a crash names its phase;
     the instance stays in hand after a structured failure, so post-trap
     state is read directly (no two-phase re-run) *)
  let instantiate_faulted () =
    guarded (fun () ->
      let res = Wasabi.Instrument.instrument m in
      let inst, _rt =
        Wasabi.Runtime.instantiate ~fuel ~wrap_host:(Faults.wrap fplan) res
          Wasabi.Analysis.default
      in
      if tiered then begin
        Tier1.enable ~threshold:1 inst;
        Interp.set_deopt_on_fault inst true
      end;
      let gov = Governor.create () in
      Interp.set_governor inst (Some gov);
      Governor.arm gov;
      (inst, gov))
  in
  let run_on inst =
    match guarded (fun () -> Interp.invoke_export inst "run" []) with
    | Error crash -> Error crash
    | Ok (Ok vs) -> Ok (snapshot m inst (Ok vs))
    | Ok (Error err) -> Ok (snapshot m inst (Error err))
  in
  match instantiate_faulted () with
  | Error crash -> violation "totality-exec" "faulted instantiation crashed: %s" crash
  | Ok (Error err) ->
    (* instantiation failed before any fault was armed — nothing to
       restore; the generator only emits instantiable modules, so treat
       a structured failure here as a skip, not a violation *)
    Skip (Printf.sprintf "instantiation failed: %s" (Error.to_string err))
  | Ok (Ok (inst, gov)) ->
    let pristine = Snapshot.capture inst in
    Faults.attach fplan inst;
    Faults.arm fplan;
    (match run_on inst with
     | Error crash -> violation "totality-exec" "faulted run crashed (%s): %s" (Faults.describe fplan) crash
     | Ok faulted ->
       if engine_bug faulted.outcome then
         violation "engine-bug" "faulted run (%s): %s" (Faults.describe fplan)
           (string_of_outcome faulted.outcome)
       else begin
         Faults.disarm fplan;
         Snapshot.restore pristine inst;
         Governor.arm gov;
         match run_on inst with
         | Error crash ->
           violation "totality-exec" "post-restore run crashed (%s): %s" (Faults.describe fplan)
             crash
         | Ok restored ->
           (* reference: the same module on a fresh instance, same fuel,
              same tier setting, no faults *)
           (match
              guarded (fun () ->
                let res = Wasabi.Instrument.instrument m in
                let inst', _rt = Wasabi.Runtime.instantiate ~fuel res Wasabi.Analysis.default in
                if tiered then Tier1.enable ~threshold:1 inst';
                inst')
            with
            | Error crash -> violation "totality-exec" "fresh instantiation crashed: %s" crash
            | Ok (Error err) ->
              violation "restore" "fresh instantiation failed after faulted one succeeded: %s"
                (Error.to_string err)
            | Ok (Ok fresh_inst) ->
              (match run_on fresh_inst with
               | Error crash -> violation "totality-exec" "fresh run crashed: %s" crash
               | Ok fresh ->
                 compare_runs ~kind:"restore" ~left:"restored" ~right:"fresh" restored fresh))
       end)

(** {1 Instrumentation soundness} *)

(** Instrument the module and run the static soundness lint over the
    result — with full instrumentation, with selective pruning, and with
    static hook folding on top (whose discharged sites the lint verifies
    against recomputed facts). Any [Error]-severity finding — or an
    instrument/lint crash outside the error taxonomy — is a violation. *)
let lint_instrumented (m : Ast.module_) : verdict =
  let one ~prune_unreachable ~fold tag =
    match
      guarded (fun () ->
        Lint.errors (Lint.check (Wasabi.Instrument.instrument ~prune_unreachable ~fold m)))
    with
    | Error crash -> violation "totality-lint" "%s: instrument/lint crashed: %s" tag crash
    | Ok (Error err) ->
      violation "totality-lint" "%s: instrument/lint raised: %s" tag (Error.to_string err)
    | Ok (Ok []) -> Pass
    | Ok (Ok (f :: _ as errs)) ->
      violation "lint" "%s: %d soundness error%s; first: %s" tag (List.length errs)
        (if List.length errs = 1 then "" else "s")
        (Lint.to_string f)
  in
  match one ~prune_unreachable:false ~fold:false "full" with
  | Pass ->
    (match one ~prune_unreachable:true ~fold:false "pruned" with
     | Pass -> one ~prune_unreachable:true ~fold:true "pruned+folded"
     | v -> v)
  | v -> v

(** {1 Static over-approximation soundness}

    The abstract interpretation ({!Static.Absint}) claims its facts
    over-approximate every execution. This oracle tests the claim
    end-to-end: run the module instrumented with an {e observing}
    analysis and assert that every dynamically observed indirect-call
    target and table index, branch condition, [br_table] index, binary
    operand and global value is contained in the corresponding static
    fact — and that no hook fires at a site the analysis reports dead.
    Then run once more with [~fold] instrumentation and require the
    folded module to produce the {e identical} hook-event stream and
    final state, which exercises every statically-discharged site
    against reality. *)

(** An analysis that renders every hook event as one line into [buf]
    (deterministic: locations, op names and values only). *)
let recording_analysis buf : Wasabi.Analysis.t =
  let l (loc : Wasabi.Location.t) =
    Printf.sprintf "%d:%d" loc.Wasabi.Location.func loc.Wasabi.Location.instr
  in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let v = Value.to_string in
  let vs xs = String.concat "," (List.map v xs) in
  let bk = function
    | Wasabi.Hook.Bfunction -> "fn"
    | Wasabi.Hook.Bblock -> "blk"
    | Wasabi.Hook.Bloop -> "loop"
    | Wasabi.Hook.Bif -> "if"
    | Wasabi.Hook.Belse -> "else"
  in
  {
    Wasabi.Analysis.nop = (fun loc -> p "nop %s" (l loc));
    unreachable = (fun loc -> p "unreachable %s" (l loc));
    if_ = (fun loc c -> p "if %s %b" (l loc) c);
    br = (fun loc t -> p "br %s ->%s" (l loc) (l t.Wasabi.Metadata.target_loc));
    br_if = (fun loc t c -> p "br_if %s ->%s %b" (l loc) (l t.Wasabi.Metadata.target_loc) c);
    br_table = (fun loc _targets _default i -> p "br_table %s %d" (l loc) i);
    begin_ = (fun loc k -> p "begin %s %s" (l loc) (bk k));
    end_ = (fun loc k b -> p "end %s %s %s" (l loc) (bk k) (l b));
    const = (fun loc x -> p "const %s %s" (l loc) (v x));
    drop = (fun loc x -> p "drop %s %s" (l loc) (v x));
    select = (fun loc c a b -> p "select %s %b %s %s" (l loc) c (v a) (v b));
    unary = (fun loc op a r -> p "unary %s %s %s %s" (l loc) op (v a) (v r));
    binary = (fun loc op a b r -> p "binary %s %s %s %s %s" (l loc) op (v a) (v b) (v r));
    local = (fun loc op x a -> p "local %s %s %d %s" (l loc) op x (v a));
    global = (fun loc op x a -> p "global %s %s %d %s" (l loc) op x (v a));
    load =
      (fun loc op ma a ->
         p "load %s %s %ld+%d %s" (l loc) op ma.Wasabi.Analysis.addr ma.Wasabi.Analysis.offset (v a));
    store =
      (fun loc op ma a ->
         p "store %s %s %ld+%d %s" (l loc) op ma.Wasabi.Analysis.addr ma.Wasabi.Analysis.offset (v a));
    memory_size = (fun loc s -> p "memory_size %s %d" (l loc) s);
    memory_grow = (fun loc d pr -> p "memory_grow %s %d %d" (l loc) d pr);
    call_pre =
      (fun loc callee args ti ->
         p "call_pre %s %d [%s]%s" (l loc) callee (vs args)
           (match ti with None -> "" | Some i -> Printf.sprintf " tbl:%d" i));
    call_post = (fun loc rs -> p "call_post %s [%s]" (l loc) (vs rs));
    return_ = (fun loc rs -> p "return %s [%s]" (l loc) (vs rs));
    start = (fun loc -> p "start %s" (l loc));
  }

(** Run the module instrumented (optionally [~fold]ed) under [analysis],
    which may write into [buf]; on the two-phase post-trap re-run the
    buffer is cleared so events are not recorded twice. *)
let run_observed (m : Ast.module_) ~fold ~fuel ~analysis ~buf : (run_result, string) result =
  match
    guarded (fun () ->
      let res = Wasabi.Instrument.instrument ~fold m in
      let inst, _rt = Wasabi.Runtime.instantiate ~fuel res analysis in
      let vs = Interp.invoke_export inst "run" [] in
      (inst, vs))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, vs)) -> Ok (snapshot m inst (Ok vs))
  | Ok (Error err) ->
    Buffer.clear buf;
    (match
       guarded (fun () ->
         let res = Wasabi.Instrument.instrument ~fold m in
         let inst, _rt = Wasabi.Runtime.instantiate ~fuel res analysis in
         (try ignore (Interp.invoke_export inst "run" []) with _ -> ());
         inst)
     with
     | Ok (Ok inst) -> Ok (snapshot m inst (Error err))
     | _ -> Ok { outcome = Error err; mem_digest = None; globals = [] })

let first_stream_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i pair =
    match pair with
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) (xs, ys)
      else Printf.sprintf "event %d: %S vs %S" i x y
    | [], y :: _ -> Printf.sprintf "event %d: <end> vs %S" i y
    | x :: _, [] -> Printf.sprintf "event %d: %S vs <end>" i x
    | [], [] -> "identical"
  in
  go 0 (la, lb)

let absint_soundness (info : Gen.info) : verdict =
  let m = info.Gen.module_ in
  match guarded (fun () -> Static.Absint.analyze m) with
  | Error crash -> violation "totality-absint" "abstract interpretation crashed: %s" crash
  | Ok (Error err) ->
    violation "totality-absint" "abstract interpretation raised: %s" (Error.to_string err)
  | Ok (Ok fx) ->
    (match run_plain m ~fuel:base_fuel with
     | Error crash -> violation "totality-exec" "uninstrumented run crashed: %s" crash
     | Ok base ->
       if is_out_of_fuel base.outcome then Skip "base-exhausted"
       else begin
         let bad = ref None in
         let note (loc : Wasabi.Location.t) what detail =
           if !bad = None then
             bad :=
               Some
                 (Printf.sprintf "%s at f%d@%d: %s" what loc.Wasabi.Location.func
                    loc.Wasabi.Location.instr detail)
         in
         let fact ?(depth = 0) (loc : Wasabi.Location.t) =
           Static.Absint.value_at fx ~func:loc.Wasabi.Location.func
             ~pc:loc.Wasabi.Location.instr ~depth
         in
         let n_imp = Ast.num_imported_funcs m in
         let bodies = Array.of_list m.Ast.funcs in
         let instr_at (loc : Wasabi.Location.t) =
           let i = loc.Wasabi.Location.func - n_imp in
           if i < 0 || i >= Array.length bodies then None
           else List.nth_opt bodies.(i).Ast.body loc.Wasabi.Location.instr
         in
         (* the call_pre hook fires before the call dispatches, so the
            static target set is only binding when the dispatch will
            succeed: a resolved callee of the site's exact type (empty or
            type-mismatched slots trap right after the hook) *)
         let dispatches (loc : Wasabi.Location.t) callee =
           callee >= 0
           && (match instr_at loc with
               | Some (Ast.CallIndirect ti) ->
                 (match List.nth_opt m.Ast.types ti with
                  | Some ft -> Types.equal_func_type ft (Ast.func_type_at m callee)
                  | None -> false)
               | _ -> false)
         in
         let check_live (loc : Wasabi.Location.t) what =
           if
             not
               (Static.Absint.live fx ~func:loc.Wasabi.Location.func
                  ~pc:loc.Wasabi.Location.instr)
           then note loc what "event observed at a statically-dead site"
         in
         let check_contains loc what v f =
           if not (Static.Interval.contains f v) then
             note loc what
               (Printf.sprintf "observed %s outside %s" (Value.to_string v)
                  (Static.Interval.to_string f))
         in
         let check_cond loc what c =
           check_live loc what;
           let f = fact loc in
           let ok =
             if c then Static.Interval.may_be_nonzero f else Static.Interval.may_be_zero f
           in
           if not ok then
             note loc what
               (Printf.sprintf "observed condition %b outside %s" c
                  (Static.Interval.to_string f))
         in
         let checker =
           {
             Wasabi.Analysis.default with
             if_ = (fun loc c -> check_cond loc "if-cond" c);
             br_if = (fun loc _t c -> check_cond loc "br-if" c);
             br_table =
               (fun loc _targets _default i ->
                  check_live loc "br-table";
                  check_contains loc "br-table" (Value.I32 (Int32.of_int i)) (fact loc));
             binary =
               (fun loc _op a b _r ->
                  check_live loc "binary";
                  check_contains loc "binary-lhs" a (fact ~depth:1 loc);
                  check_contains loc "binary-rhs" b (fact loc));
             global =
               (fun loc _op x v ->
                  check_contains loc "global" v (Static.Absint.global_fact fx x));
             call_pre =
               (fun loc callee _args ti ->
                  match ti with
                  | None -> ()
                  | Some tbl ->
                    (match
                       Static.Absint.indirect_site fx ~func:loc.Wasabi.Location.func
                         ~pc:loc.Wasabi.Location.instr
                     with
                     | None ->
                       note loc "call-indirect" "executed a statically-dead indirect call site"
                     | Some (iv, targets) ->
                       check_contains loc "call-indirect-index" (Value.I32 (Int32.of_int tbl)) iv;
                       if dispatches loc callee && not (List.mem callee targets) then
                         note loc "call-indirect"
                           (Printf.sprintf "callee %d outside static target set {%s}" callee
                              (String.concat " " (List.map string_of_int targets)))));
           }
         in
         let fuel = base_fuel * hook_fuel_scale in
         let buf0 = Buffer.create 1024 and buf1 = Buffer.create 1024 in
         let observed =
           run_observed m ~fold:false ~fuel
             ~analysis:(Wasabi.Analysis.combine checker (recording_analysis buf0))
             ~buf:buf0
         in
         match observed with
         | Error crash -> violation "totality-exec" "observed run crashed: %s" crash
         | Ok r0 ->
           (match !bad with
            | Some detail -> violation "absint-soundness" "%s" detail
            | None ->
              if is_out_of_fuel r0.outcome then Skip "instrumented-exhausted"
              else (
                match
                  run_observed m ~fold:true ~fuel ~analysis:(recording_analysis buf1) ~buf:buf1
                with
                | Error crash -> violation "totality-exec" "folded run crashed: %s" crash
                | Ok r1 ->
                  if is_out_of_fuel r1.outcome then Skip "folded-exhausted"
                  else if not (String.equal (Buffer.contents buf0) (Buffer.contents buf1)) then
                    violation "absint-fold" "hook-event streams diverged: %s"
                      (first_stream_diff (Buffer.contents buf0) (Buffer.contents buf1))
                  else
                    compare_runs ~kind:"absint-fold" ~left:"unfolded" ~right:"folded" r0 r1))
       end)

(** {1 Probe parity}

    The engine-probe backend ({!Wasabi.Runtime.Probe}) and the AOT
    rewriter are two implementations of one observability contract:
    the same analysis must see the same hook events either way. This
    oracle runs a generated module three times — uninstrumented, AOT
    instrumented with a recording analysis, and uninstrumented with
    engine probes delivering to the same recording analysis — and
    requires:

    - the probed run's outcome, final memory and exported globals to
      equal the {e plain} run's (probes must not perturb execution, and
      they charge fuel at tier-0 parity, so both run at [base_fuel]);
    - with all hook groups attached for the whole run (tier 0 or with
      the tier-1 compiler forced on, so attach-deopt is exercised), the
      probe event stream to be byte-identical to the AOT stream;
    - with a mid-run attach or detach (a step trigger at half the plain
      run's step count), the probe stream to be an order-preserving
      subsequence of the AOT stream — live attachment may only narrow
      the observation window, never reorder or invent events.

    Both recorded runs drop events emitted during instantiation (the
    start function): probes attach after [instantiate] returns, so the
    comparable window starts at the [run] invocation. *)

(** How the probed run attaches its all-groups probe. *)
type probe_variant =
  | P_plain  (** attach before the run, tier 0 throughout *)
  | P_tiered  (** attach before the run, tier-1 compiler forced on *)
  | P_attach_mid of int  (** tiered; attach once [steps] reaches [n] *)
  | P_detach_mid of int  (** attached from the start, detached at [n] *)

(** Uninstrumented run that also reports the final step count (the
    anchor for mid-run trigger placement). The invoke is guarded
    inline so the instance stays in hand after a structured trap. *)
let run_plain_steps (m : Ast.module_) ~fuel : (run_result * int, string) result =
  match
    guarded (fun () ->
      let inst = Interp.instantiate ~fuel ~imports:[] m in
      let outcome =
        try Ok (Interp.invoke_export inst "run" [])
        with e ->
          (match Error.classify e with Some err -> Error err | None -> raise e)
      in
      (inst, outcome))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, outcome)) -> Ok (snapshot m inst outcome, inst.Interp.steps)
  | Ok (Error err) -> Ok ({ outcome = Error err; mem_digest = None; globals = [] }, 0)

(** AOT-instrumented run recording the hook-event stream into [buf],
    cleared right after instantiation so start-function events (which
    the probe run cannot observe — it attaches afterwards) are not
    part of the comparison. *)
let run_recorded_aot (m : Ast.module_) ~fuel ~buf : (run_result, string) result =
  match
    guarded (fun () ->
      let res = Wasabi.Instrument.instrument m in
      let inst, _rt = Wasabi.Runtime.instantiate ~fuel res (recording_analysis buf) in
      Buffer.clear buf;
      let outcome =
        try Ok (Interp.invoke_export inst "run" [])
        with e ->
          (match Error.classify e with Some err -> Error err | None -> raise e)
      in
      (inst, outcome))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, outcome)) -> Ok (snapshot m inst outcome)
  | Ok (Error err) -> Ok { outcome = Error err; mem_digest = None; globals = [] }

(** Engine-probe run on the {e original} module, recording into [buf].
    A fresh metrics registry keeps campaign iterations from sharing
    probe counters. *)
let run_probed (m : Ast.module_) ~fuel ~variant ~buf : (run_result, string) result =
  match
    guarded (fun () ->
      let inst = Interp.instantiate ~fuel ~imports:[] m in
      let c =
        Wasabi.Runtime.Probe.create ~registry:(Obs.Metrics.create ()) inst
          (recording_analysis buf)
      in
      Buffer.clear buf;
      let all =
        { Obs.Probe.sp_groups = []; sp_func = None; sp_loc = None; sp_nth = 1 }
      in
      (match variant with
       | P_plain -> ignore (Wasabi.Runtime.Probe.attach c all)
       | P_tiered ->
         Tier1.enable ~threshold:1 inst;
         ignore (Wasabi.Runtime.Probe.attach c all)
       | P_attach_mid n ->
         Tier1.enable ~threshold:1 inst;
         Wasabi.Runtime.Probe.attach_at c ~step:n all
       | P_detach_mid n ->
         let e = Wasabi.Runtime.Probe.attach c all in
         Wasabi.Runtime.Probe.detach_at c ~step:n e);
      let outcome =
        try Ok (Interp.invoke_export inst "run" [])
        with e ->
          (match Error.classify e with Some err -> Error err | None -> raise e)
      in
      (inst, outcome))
  with
  | Error crash -> Error crash
  | Ok (Ok (inst, outcome)) -> Ok (snapshot m inst outcome)
  | Ok (Error err) -> Ok { outcome = Error err; mem_digest = None; globals = [] }

(** First line of [sub] (as [(index, line)]) that cannot be matched by
    an order-preserving scan of [of_]; [None] when [sub] is a
    subsequence. *)
let subsequence_failure ~sub ~of_ =
  let rec drop_until x = function
    | [] -> None
    | y :: ys -> if String.equal x y then Some ys else drop_until x ys
  in
  let rec go i sub full =
    match sub with
    | [] -> None
    | x :: xs ->
      (match drop_until x full with
       | Some rest -> go (i + 1) xs rest
       | None -> Some (i, x))
  in
  go 0 (String.split_on_char '\n' sub) (String.split_on_char '\n' of_)

(** The probe-parity oracle. [index] picks the variant (round-robin),
    so a campaign interleaves full-attach exactness with mid-run
    attach/detach and tier-1 deopt cases. *)
let probe_parity ~index (info : Gen.info) : verdict =
  let m = info.Gen.module_ in
  match run_plain_steps m ~fuel:base_fuel with
  | Error crash -> violation "totality-exec" "uninstrumented run crashed: %s" crash
  | Ok (base, steps) ->
    if engine_bug base.outcome then
      violation "engine-bug" "uninstrumented run: %s" (string_of_outcome base.outcome)
    else if is_out_of_fuel base.outcome then Skip "base-exhausted"
    else begin
      let buf_aot = Buffer.create 1024 in
      match run_recorded_aot m ~fuel:(base_fuel * hook_fuel_scale) ~buf:buf_aot with
      | Error crash -> violation "totality-exec" "AOT recorded run crashed: %s" crash
      | Ok aot ->
        if engine_bug aot.outcome then
          violation "engine-bug" "AOT recorded run: %s" (string_of_outcome aot.outcome)
        else if is_out_of_fuel aot.outcome then Skip "instrumented-exhausted"
        else begin
          let mid = max 1 (steps / 2) in
          let variant, vname =
            match index mod 4 with
            | 0 -> (P_plain, "attach-all")
            | 1 -> (P_tiered, "tiered attach-all")
            | 2 -> (P_attach_mid mid, "tiered mid-run attach")
            | _ -> (P_detach_mid mid, "mid-run detach")
          in
          let buf_p = Buffer.create 1024 in
          match run_probed m ~fuel:base_fuel ~variant ~buf:buf_p with
          | Error crash -> violation "totality-exec" "probed run (%s) crashed: %s" vname crash
          | Ok probed ->
            if engine_bug probed.outcome then
              violation "engine-bug" "probed run (%s): %s" vname
                (string_of_outcome probed.outcome)
            else begin
              match compare_runs ~kind:"probe-parity" ~left:"plain" ~right:vname base probed with
              | Pass ->
                let sa = Buffer.contents buf_aot and sp = Buffer.contents buf_p in
                (match variant with
                 | P_plain | P_tiered ->
                   if String.equal sa sp then Pass
                   else
                     violation "probe-parity" "hook-event streams diverged (%s): %s" vname
                       (first_stream_diff sa sp)
                 | P_attach_mid _ | P_detach_mid _ ->
                   (match subsequence_failure ~sub:sp ~of_:sa with
                    | None -> Pass
                    | Some (i, line) ->
                      violation "probe-parity"
                        "probe event %d (%s) absent from the AOT stream in order: %S" i vname
                        line))
              | v -> v
            end
        end
    end

(** Execution totality for an arbitrary valid module (mutation pipeline):
    instantiating with no imports and invoking the first nullary exported
    function may fail only inside the taxonomy. Modules whose declared
    memory/table would make execution needlessly expensive are skipped,
    not failed. *)
let execution_total (m : Ast.module_) : verdict =
  let big_memory =
    List.exists (fun (mt : Types.memory_type) -> mt.Types.mem_limits.Types.lim_min > max_exec_memory_pages) m.memories
    || List.exists
         (fun (i : Ast.import) ->
            match i.Ast.idesc with
            | Ast.MemoryImport mt -> mt.Types.mem_limits.Types.lim_min > max_exec_memory_pages
            | _ -> false)
         m.imports
  in
  let big_table =
    List.exists (fun (tt : Types.table_type) -> tt.Types.tbl_limits.Types.lim_min > max_exec_table_size) m.tables
  in
  if big_memory || big_table then Skip "oversized-memory-or-table"
  else (
    let nullary_export =
      (* the first exported function whose type takes no parameters *)
      let n_imported = Ast.num_imported_funcs m in
      List.find_map
        (fun (e : Ast.export) ->
           match e.Ast.edesc with
           | Ast.FuncExport i when i >= n_imported ->
             (match List.nth_opt m.funcs (i - n_imported) with
              | Some f ->
                (match List.nth_opt m.types f.Ast.ftype with
                 | Some ft when ft.Types.params = [] -> Some e.Ast.name
                 | _ -> None)
              | None -> None)
           | _ -> None)
        m.exports
    in
    match
      guarded (fun () ->
        let inst = Interp.instantiate ~fuel:base_fuel ~imports:[] m in
        match nullary_export with
        | Some name -> ignore (Interp.invoke_export inst name [])
        | None -> ())
    with
    | Ok _ -> Pass
    | Error crash -> violation "totality-exec" "execution crashed: %s" crash)
