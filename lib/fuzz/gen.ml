(** Type-directed generation of random-but-valid Wasm modules.

    The generator is a grammar over typed expressions and statements:
    [expr ctx depth ty] emits an instruction sequence that pushes exactly
    one value of type [ty], [stmt ctx depth] one with zero net stack
    effect. Validity holds by construction — every generated module must
    pass [Validate.validate_module]; a rejection is a generator bug and
    the harness reports it as a violation.

    Deliberately included fault-injection surface: trapping operators
    (div/rem by a zero denominator, overflowing float→int truncation),
    out-of-bounds memory accesses (addresses are only {e mostly} masked
    into range), [call_indirect] through partially-initialised or
    out-of-range table slots, and guarded [unreachable]. All of these
    are deterministic, so the differential oracle compares the trap
    itself.

    Termination is structural: loops are bounded counter idioms, the
    call graph is acyclic ([run] → helpers → leaves), and recursion is
    absent — so any generated program terminates well inside the
    harness's base fuel unless the generator has a bug (which the
    differential oracle's skip-statistics would expose). *)

open Wasm
open Types
open Ast
module B = Builder

(** What the oracles need to know about a generated module. *)
type info = {
  module_ : Ast.module_;
  has_memory : bool;
  n_globals : int;
}

type ctx = {
  rng : Rng.t;
  locals : value_type array;  (** params @ declared locals *)
  scratch : int array;  (** reserved i32 loop counters, by loop depth *)
  globals : (value_type * bool) array;  (** (type, mutable) *)
  helpers : int list;  (** callable function indices, all [i32] -> [i32] *)
  has_memory : bool;
  has_table : bool;
  leaf_type : int;  (** type index of [] -> [i32], the call_indirect type *)
  result : value_type;  (** result type of the function being generated *)
  mutable budget : int;  (** remaining instruction allowance *)
}

let max_expr_depth = 4
let max_stmt_depth = 3
let max_loop_depth = 3

let spend ctx n = ctx.budget <- ctx.budget - n

let locals_of_type ctx ty =
  let out = ref [] in
  Array.iteri (fun i t -> if t = ty then out := i :: !out) ctx.locals;
  !out

let globals_of_type ctx ty ~need_mutable =
  let out = ref [] in
  Array.iteri
    (fun i (t, m) -> if t = ty && ((not need_mutable) || m) then out := i :: !out)
    ctx.globals;
  !out

(* finite float pools: no NaN constants, so [decode (encode m) = m] can
   use structural equality *)
let f64_pool = [| 0.0; 1.0; -1.0; 0.5; -2.5; 3.1415926535; 1e10; -1e10; 1e-3; 4096.0; -0.0 |]
let f32_pool =
  [| Int32.bits_of_float 0.0; Int32.bits_of_float 1.0; Int32.bits_of_float (-1.5);
     Int32.bits_of_float 0.25; Int32.bits_of_float 100.0; Int32.bits_of_float (-3.0) |]

let const ctx ty =
  match ty with
  | I32T -> Const (Value.I32 (Rng.i32_const ctx.rng))
  | I64T -> Const (Value.I64 (Rng.i64_const ctx.rng))
  | F32T -> Const (Value.F32 (Rng.choose ctx.rng f32_pool))
  | F64T -> Const (Value.F64 (Rng.choose ctx.rng f64_pool))

let isize_of = function I32T -> S32 | I64T -> S64 | _ -> assert false
let fsize_of = function F32T -> SF32 | F64T -> SF64 | _ -> assert false

let ibinops = [| Add; Sub; Mul; And; Or; Xor; Shl; ShrS; ShrU; Rotl; Rotr; DivS; DivU; RemS; RemU |]
let fbinops = [| FAdd; FSub; FMul; FDiv; Min; Max; CopySign |]
let irelops = [| Eq; Ne; LtS; LtU; GtS; GtU; LeS; LeU; GeS; GeU |]
let frelops = [| FEq; FNe; FLt; FGt; FLe; FGe |]
let funops = [| Abs; Neg; Sqrt; Ceil; Floor; Trunc; Nearest |]

let any_type rng = Rng.choose rng [| I32T; I64T; F32T; F64T |]

(** A memory address expression: usually masked into the first page so
    most accesses land in bounds, sometimes left wild for OOB traps. *)
let rec addr ctx depth =
  let base = expr ctx depth I32T in
  if Rng.chance ctx.rng 85 then
    base @ [ Const (Value.I32 0xFFF0l); Binary (IBin (S32, And)) ]
  else base

(** Emit one value of type [ty]. *)
and expr ctx depth ty : instr list =
  let rng = ctx.rng in
  let leaf () =
    match locals_of_type ctx ty with
    | ls when ls <> [] && Rng.chance rng 55 ->
      spend ctx 1;
      [ LocalGet (Rng.choose_list rng ls) ]
    | _ ->
      (match globals_of_type ctx ty ~need_mutable:false with
       | gs when gs <> [] && Rng.chance rng 30 ->
         spend ctx 1;
         [ GlobalGet (Rng.choose_list rng gs) ]
       | _ ->
         spend ctx 1;
         [ const ctx ty ])
  in
  if depth >= max_expr_depth || ctx.budget <= 0 then leaf ()
  else begin
    spend ctx 1;
    let d = depth + 1 in
    match ty with
    | I32T -> (
      match Rng.int rng 100 with
      | n when n < 22 -> leaf ()
      | n when n < 42 ->
        expr ctx d I32T @ expr ctx d I32T @ [ Binary (IBin (S32, Rng.choose rng ibinops)) ]
      | n when n < 48 ->
        expr ctx d I32T @ [ Unary (IUn (S32, Rng.choose rng [| Clz; Ctz; Popcnt; Ext8S; Ext16S |])) ]
      | n when n < 56 ->
        let cty = any_type rng in
        (match cty with
         | I32T | I64T ->
           let sz = isize_of cty in
           expr ctx d cty @ expr ctx d cty @ [ Compare (IRel (sz, Rng.choose rng irelops)) ]
         | F32T | F64T ->
           let sz = fsize_of cty in
           expr ctx d cty @ expr ctx d cty @ [ Compare (FRel (sz, Rng.choose rng frelops)) ])
      | n when n < 61 ->
        let sz = if Rng.bool rng then S32 else S64 in
        expr ctx d (num_type_of_isize sz) @ [ Test (IEqz sz) ]
      | n when n < 66 -> expr ctx d I64T @ [ Convert I32WrapI64 ]
      | n when n < 70 ->
        let cv = Rng.choose rng [| I32TruncSatF64S; I32TruncSatF64U; I32TruncF64S |] in
        expr ctx d F64T @ [ Convert cv ]
      | n when n < 76 && ctx.has_memory ->
        let pack =
          Rng.choose rng
            [| None; Some (Pack8, ZX); Some (Pack8, SX); Some (Pack16, ZX); Some (Pack16, SX) |]
        in
        let align = match pack with None -> 2 | Some (Pack16, _) -> 1 | _ -> 0 in
        addr ctx d @ [ Load { lty = I32T; lalign = align; loffset = Rng.int rng 16; lpack = pack } ]
      | n when n < 80 && ctx.helpers <> [] ->
        expr ctx d I32T @ [ Call (Rng.choose_list rng ctx.helpers) ]
      | n when n < 84 && ctx.has_table ->
        (* the index is masked loosely: out-of-range and uninitialised
           slots are reachable on purpose *)
        expr ctx d I32T @ [ Const (Value.I32 7l); Binary (IBin (S32, And)); CallIndirect ctx.leaf_type ]
      | n when n < 90 ->
        expr ctx d ty @ expr ctx d ty @ expr ctx d I32T @ [ Select ]
      | n when n < 96 ->
        expr ctx d I32T
        @ [ If (Some ty) ] @ expr ctx d ty @ [ Else ] @ expr ctx d ty @ [ End ]
      | n when n < 98 && ctx.has_memory -> [ MemorySize ]
      | _ -> [ Block (Some ty) ] @ expr ctx d ty @ [ End ])
    | I64T -> (
      match Rng.int rng 100 with
      | n when n < 30 -> leaf ()
      | n when n < 55 ->
        expr ctx d I64T @ expr ctx d I64T @ [ Binary (IBin (S64, Rng.choose rng ibinops)) ]
      | n when n < 63 ->
        expr ctx d I64T
        @ [ Unary (IUn (S64, Rng.choose rng [| Clz; Ctz; Popcnt; Ext8S; Ext16S; Ext32S |])) ]
      | n when n < 75 ->
        let cv = if Rng.bool rng then I64ExtendI32S else I64ExtendI32U in
        expr ctx d I32T @ [ Convert cv ]
      | n when n < 80 ->
        expr ctx d F64T @ [ Convert (if Rng.bool rng then I64TruncSatF64S else I64TruncSatF64U) ]
      | n when n < 84 -> expr ctx d F64T @ [ Convert I64ReinterpretF64 ]
      | n when n < 90 && ctx.has_memory ->
        addr ctx d @ [ Load { lty = I64T; lalign = 3; loffset = Rng.int rng 16; lpack = None } ]
      | n when n < 96 ->
        expr ctx d ty @ expr ctx d ty @ expr ctx d I32T @ [ Select ]
      | _ ->
        expr ctx d I32T
        @ [ If (Some ty) ] @ expr ctx d ty @ [ Else ] @ expr ctx d ty @ [ End ])
    | F64T -> (
      match Rng.int rng 100 with
      | n when n < 30 -> leaf ()
      | n when n < 55 ->
        expr ctx d F64T @ expr ctx d F64T @ [ Binary (FBin (SF64, Rng.choose rng fbinops)) ]
      | n when n < 65 -> expr ctx d F64T @ [ Unary (FUn (SF64, Rng.choose rng funops)) ]
      | n when n < 78 ->
        let cv = Rng.choose rng [| F64ConvertI32S; F64ConvertI32U |] in
        expr ctx d I32T @ [ Convert cv ]
      | n when n < 84 -> expr ctx d F32T @ [ Convert F64PromoteF32 ]
      | n when n < 88 -> expr ctx d I64T @ [ Convert F64ReinterpretI64 ]
      | n when n < 94 && ctx.has_memory ->
        addr ctx d @ [ Load { lty = F64T; lalign = 3; loffset = Rng.int rng 16; lpack = None } ]
      | _ ->
        expr ctx d I32T
        @ [ If (Some ty) ] @ expr ctx d ty @ [ Else ] @ expr ctx d ty @ [ End ])
    | F32T -> (
      match Rng.int rng 100 with
      | n when n < 35 -> leaf ()
      | n when n < 60 ->
        expr ctx d F32T @ expr ctx d F32T @ [ Binary (FBin (SF32, Rng.choose rng fbinops)) ]
      | n when n < 70 -> expr ctx d F32T @ [ Unary (FUn (SF32, Rng.choose rng funops)) ]
      | n when n < 82 ->
        let cv = Rng.choose rng [| F32ConvertI32S; F32ConvertI32U |] in
        expr ctx d I32T @ [ Convert cv ]
      | n when n < 90 -> expr ctx d F64T @ [ Convert F32DemoteF64 ]
      | _ -> expr ctx d I32T @ [ Convert F32ReinterpretI32 ])
  end

(** Emit a statement: net stack effect zero. [loop_depth] indexes the
    reserved counter locals so nested bounded loops don't clobber each
    other. *)
let rec stmt ctx depth loop_depth : instr list =
  let rng = ctx.rng in
  if ctx.budget <= 0 then [ Nop ]
  else begin
    spend ctx 1;
    let d = depth + 1 in
    match Rng.int rng 100 with
    | n when n < 8 -> [ Nop ]
    | n when n < 22 ->
      let ty = any_type rng in
      expr ctx 1 ty @ [ Drop ]
    | n when n < 40 ->
      let ty = any_type rng in
      (match locals_of_type ctx ty with
       | [] -> expr ctx 1 ty @ [ Drop ]
       | ls ->
         let i = Rng.choose_list rng ls in
         if Rng.bool rng then expr ctx 1 ty @ [ LocalSet i ]
         else expr ctx 1 ty @ [ LocalTee i; Drop ])
    | n when n < 50 ->
      let ty = any_type rng in
      (match globals_of_type ctx ty ~need_mutable:true with
       | [] -> expr ctx 1 ty @ [ Drop ]
       | gs -> expr ctx 1 ty @ [ GlobalSet (Rng.choose_list rng gs) ])
    | n when n < 62 && ctx.has_memory ->
      let sty = any_type rng in
      let pack, full_align =
        match sty with
        | I32T -> (Rng.choose rng [| None; Some Pack8; Some Pack16 |], 2)
        | I64T -> (Rng.choose rng [| None; Some Pack8; Some Pack16; Some Pack32 |], 3)
        | F32T -> (None, 2)
        | F64T -> (None, 3)
      in
      let salign =
        match pack with Some Pack8 -> 0 | Some Pack16 -> 1 | Some Pack32 -> 2 | None -> full_align
      in
      addr ctx 1 @ expr ctx 1 sty
      @ [ Store { sty; salign; soffset = Rng.int rng 16; spack = pack } ]
    | n when n < 70 && depth < max_stmt_depth ->
      expr ctx 1 I32T
      @ [ If None ] @ stmts ctx d loop_depth
      @ (if Rng.bool rng then [ Else ] @ stmts ctx d loop_depth else [])
      @ [ End ]
    | n when n < 78 && depth < max_stmt_depth ->
      (* block with an early conditional exit *)
      [ Block None ]
      @ stmts ctx d loop_depth
      @ expr ctx 1 I32T @ [ BrIf 0 ]
      @ stmts ctx d loop_depth
      @ [ End ]
    | n when n < 88 && depth < max_stmt_depth && loop_depth < max_loop_depth ->
      (* bounded counter loop: const n; local.set c; loop ... br_if 0 *)
      let c = ctx.scratch.(loop_depth) in
      let iters = Int32.of_int (Rng.range rng 1 6) in
      [ Const (Value.I32 iters); LocalSet c; Loop None ]
      @ stmts ctx d (loop_depth + 1)
      @ [ LocalGet c; Const (Value.I32 1l); Binary (IBin (S32, Sub)); LocalTee c; BrIf 0; End ]
    | n when n < 93 && depth < max_stmt_depth ->
      (* br_table dispatch into three nested blocks *)
      [ Block None; Block None; Block None ]
      @ expr ctx 1 I32T
      @ [ BrTable ([ 0; 1 ], 2); End ]
      @ stmts ctx d loop_depth @ [ End ]
      @ stmts ctx d loop_depth @ [ End ]
    | n when n < 95 && ctx.has_memory ->
      [ Const (Value.I32 (Int32.of_int (Rng.int rng 3))); MemoryGrow; Drop ]
    | n when n < 97 ->
      (* guarded fault injection *)
      expr ctx 1 I32T @ [ If None; Unreachable; End ]
    | n when n < 99 ->
      (* early return (the code after it is dead but must still validate) *)
      expr ctx 1 ctx.result @ [ Return ]
    | _ -> [ Nop ]
  end

and stmts ctx depth loop_depth =
  let n = Rng.range ctx.rng 0 3 in
  List.concat (List.init n (fun _ -> stmt ctx depth loop_depth))

let gen_locals rng =
  List.init (Rng.int rng 4) (fun _ -> any_type rng)

(** Build a function body: a reserved block of i32 scratch locals (loop
    counters) is appended after the random ones. *)
let gen_body rng ~params ~result ~globals ~helpers ~has_memory ~has_table ~leaf_type ~budget =
  let extra = gen_locals rng in
  let scratch_base = List.length params + List.length extra in
  let locals = extra @ [ I32T; I32T; I32T ] in
  let ctx =
    {
      rng;
      locals = Array.of_list (params @ locals);
      scratch = Array.init max_loop_depth (fun i -> scratch_base + i);
      globals;
      helpers;
      has_memory;
      has_table;
      leaf_type;
      result;
      budget;
    }
  in
  let body = stmts ctx 0 0 @ expr ctx 0 result in
  (locals, body)

(** Generate one random valid module. Layout: an optional memory
    (exported ["mem"]), 0–3 mutable exported globals (["g0"], ...), an
    optional table of leaf functions (the [call_indirect] targets), 0–2
    helper functions, and an exported ["run"] [] -> [i32] entry point.
    The call graph is run → helpers → leaves, so there is no recursion. *)
let generate rng : info =
  let bld = B.create () in
  let has_memory = Rng.chance rng 80 in
  if has_memory then B.add_memory bld ~min_pages:1 ~max_pages:(Some 4);
  let n_globals = Rng.int rng 4 in
  let globals =
    Array.init n_globals (fun _ ->
      let ty = any_type rng in
      (ty, true))
  in
  Array.iteri
    (fun i (ty, _) ->
       let init =
         match ty with
         | I32T -> Value.I32 (Rng.i32_const rng)
         | I64T -> Value.I64 (Rng.i64_const rng)
         | F32T -> Value.F32 (Rng.choose rng f32_pool)
         | F64T -> Value.F64 (Rng.choose rng f64_pool)
       in
       let g = B.add_global bld ~ty ~mutable_:true ~init in
       B.export_global bld ~name:(Printf.sprintf "g%d" i) g)
    globals;
  let leaf_type = B.add_type bld { params = []; results = [ I32T ] } in
  (* leaf functions: bodies with no calls at all *)
  let n_leaves = Rng.int rng 4 in
  let leaves =
    List.init n_leaves (fun _ ->
      let locals, body =
        gen_body rng ~params:[] ~result:I32T ~globals ~helpers:[] ~has_memory
          ~has_table:false ~leaf_type ~budget:(Rng.range rng 5 25)
      in
      B.add_func bld ~params:[] ~results:[ I32T ] ~locals ~body)
  in
  let has_table = leaves <> [] in
  if has_table then begin
    B.add_table bld ~min_size:(n_leaves + Rng.int rng 3) ~max_size:(Some 16);
    B.add_elem bld ~offset:0 ~funcs:leaves
  end;
  (* helper functions: may use the table but not each other *)
  let n_helpers = Rng.int rng 3 in
  let helpers =
    List.init n_helpers (fun _ ->
      let locals, body =
        gen_body rng ~params:[ I32T ] ~result:I32T ~globals ~helpers:[] ~has_memory
          ~has_table ~leaf_type ~budget:(Rng.range rng 10 50)
      in
      B.add_func bld ~params:[ I32T ] ~results:[ I32T ] ~locals ~body)
  in
  let locals, body =
    gen_body rng ~params:[] ~result:I32T ~globals ~helpers ~has_memory ~has_table
      ~leaf_type ~budget:(Rng.range rng 30 150)
  in
  let run = B.add_func bld ~params:[] ~results:[ I32T ] ~locals ~body in
  B.export_func bld ~name:"run" run;
  if has_memory then begin
    B.export_memory bld ~name:"mem";
    if Rng.chance rng 40 then
      B.add_data bld ~offset:(Rng.int rng 256)
        ~bytes:(String.init (Rng.range rng 1 32) (fun _ -> Char.chr (Rng.int rng 256)))
  end;
  { module_ = B.build bld; has_memory; n_globals }
