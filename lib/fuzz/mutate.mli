(** Structure-aware binary mutation for the fuzzing campaign.

    Mutators operate on an encoded module's bytes, informed by a
    best-effort parse of its section layout: besides classic byte-level
    havoc (bit flips, inserts, deletes, truncation), sections can be
    duplicated, dropped, swapped, resized with a lying size prefix, or
    given overlong LEB128 encodings. Mutants are {e expected} to be
    mostly invalid — the oracles assert the decoder rejects them
    gracefully (totality), not that they decode. *)

val mutate_once : Rng.t -> string -> string
(** Apply one randomly chosen mutation to the binary. *)

val mutate : Rng.t -> string -> string
(** Apply a small random number of stacked mutations ({!mutate_once}
    iterated); the result may coincide with the input when mutations
    cancel out. *)
