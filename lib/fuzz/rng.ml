(** Deterministic PRNG for the fuzzing harness: splitmix64.

    [Random.State] would work, but its stream is only specified per OCaml
    release; splitmix64 gives bit-identical case generation across
    compiler versions, so a [(seed, index)] pair in a bug report replays
    forever. Each fuzz case derives its own generator from the campaign
    seed and the case index ({!for_case}), so cases are independent of
    how many random draws their predecessors made. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

(** Generator for case [index] of the campaign started from [seed]. *)
let for_case ~seed ~index =
  { state = mix (Int64.add (mix (Int64.of_int seed)) (Int64.of_int index)) }

let bits64 t = next t
let int32 t = Int64.to_int32 (next t)

(** Uniform-ish in [\[0, n)]; modulo bias is irrelevant at fuzzing scale. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

(** Inclusive range. *)
let range t lo hi = lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

(** [true] with probability [pct]/100. *)
let chance t pct = int t 100 < pct

let choose t arr = arr.(int t (Array.length arr))
let choose_list t l = List.nth l (int t (List.length l))

(** Small ints with a bias toward interesting boundary values. *)
let interesting_i32 = [| 0l; 1l; -1l; 2l; 7l; 127l; 128l; 255l; 256l; 0x7FFFFFFFl; 0x80000000l; 0xFFFFl |]
let interesting_i64 =
  [| 0L; 1L; -1L; 2L; 255L; 0x7FFFFFFFL; 0x80000000L; 0x7FFFFFFFFFFFFFFFL; 0x8000000000000000L |]

let i32_const t = if chance t 50 then choose t interesting_i32 else int32 t
let i64_const t = if chance t 50 then choose t interesting_i64 else bits64 t
