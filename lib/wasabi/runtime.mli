(** The Wasabi runtime: provides the imported low-level hook functions and
    dispatches them to the high-level analysis API, re-joining split i64
    halves, attaching pre-computed static information (resolved branch
    targets, [br_table] entries) and resolving indirect call targets
    through the instance's table. *)

type t = {
  metadata : Metadata.t;
  analysis : Analysis.t;
  mutable instance : Wasm.Interp.instance option;
  mutable indirect_cache : int array;
      (** per-table-slot resolution of indirect call targets, filled
          lazily (MVP tables are immutable after instantiation) *)
  mutable prof : Obs.Profile.t option;
      (** when set, every hook dispatch is counted and timed under
          ["hook.<group>"] *)
}

exception Bad_hook_args of string
(** A low-level hook received arguments inconsistent with its spec —
    an internal error of the instrumentation. *)

val create : Instrument.result -> Analysis.t -> t

val attach_profiler : t -> Obs.Profile.t option -> unit
(** Attach (or detach) a profiler to both the runtime (hook-dispatch
    timing) and the instrumented instance, when one is present. *)

val imports : t -> Wasm.Interp.imports
(** Host functions implementing every generated low-level hook. *)

val instantiate :
  ?fuel:int ->
  ?extra_imports:Wasm.Interp.imports ->
  Instrument.result ->
  Analysis.t ->
  Wasm.Interp.instance * t
(** Instantiate an instrumented module with the analysis attached;
    [extra_imports] supplies the program's own imports. *)
