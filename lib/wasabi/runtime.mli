(** The Wasabi runtime: provides the imported low-level hook functions and
    dispatches them to the high-level analysis API, re-joining split i64
    halves, attaching pre-computed static information (resolved branch
    targets, [br_table] entries) and resolving indirect call targets
    through the instance's table.

    Each monomorphized hook spec is compiled once, at runtime-binding
    time, into a specialized decoder closure that reads its arguments
    straight off the interpreter's operand stack (zero per-call list
    allocation, no map lookups); the original interpretive list-based
    decoder is kept as a debug/reference path, selected with
    [~decoder:`Reference] or the [WASABI_REFERENCE_DECODER] environment
    variable. Both paths produce identical high-level hook invocations. *)

type decoder_kind = [ `Compiled | `Reference ]

type t = {
  metadata : Metadata.t;
  analysis : Analysis.t;
  decoder : decoder_kind;
  br_index : Metadata.br_table_index;
      (** O(1) per-location [br_table] metadata, built once at creation *)
  mutable instance : Wasm.Interp.instance option;
  mutable indirect_cache : int array;
      (** per-table-slot resolution of indirect call targets, filled
          lazily (MVP tables are immutable after instantiation) *)
  mutable prof : Obs.Profile.t option;
      (** when set, every hook dispatch is counted and timed under
          ["hook.<group>"], plus the ["dispatch.decode"] /
          ["dispatch.analysis"] marshalling-vs-analysis split *)
  mark : int64 ref;
      (** first analysis-callback entry time of the current profiled
          dispatch, or [-1L] *)
  marked_analysis : Analysis.t;
      (** the analysis with mark-recording callback wrappers, dispatched
          to only while a profiler is attached *)
}

exception Bad_hook_args of Wasm.Error.t
(** A low-level hook received arguments inconsistent with its spec — an
    internal error of the instrumentation. Rebinding of
    {!Wasm.Error.Hook_error} (phase [Run], code ["bad-hook-args"],
    CLI exit code 9). *)

val create : ?decoder:decoder_kind -> Instrument.result -> Analysis.t -> t
(** [decoder] defaults to [`Compiled], or [`Reference] when the
    [WASABI_REFERENCE_DECODER] environment variable is set non-empty. *)

val attach_profiler : t -> Obs.Profile.t option -> unit
(** Attach (or detach) a profiler to both the runtime (hook-dispatch
    timing) and the instrumented instance, when one is present. *)

val imports : t -> Wasm.Interp.imports
(** Host functions implementing every generated low-level hook. *)

val instantiate :
  ?fuel:int ->
  ?decoder:decoder_kind ->
  ?wrap_host:(Wasm.Interp.host_func -> Wasm.Interp.host_func) ->
  ?extra_imports:Wasm.Interp.imports ->
  Instrument.result ->
  Analysis.t ->
  Wasm.Interp.instance * t
(** Instantiate an instrumented module with the analysis attached;
    [extra_imports] supplies the program's own imports. Hook imports are
    resolved positionally through the runtime's dispatch table (the
    instrumenter appends them after the original imports in ordinal
    order); everything else goes through the name-keyed import list.
    [wrap_host] interposes on every bound host function (hooks and
    [Host_func] extra imports) — the fault-injection seam. *)
