(** The Wasabi runtime: provides the imported low-level hook functions and
    dispatches them to the high-level analysis API, re-joining split i64
    halves, attaching pre-computed static information (resolved branch
    targets, [br_table] entries) and resolving indirect call targets
    through the instance's table.

    Each monomorphized hook spec is compiled once, at runtime-binding
    time, into a specialized decoder closure that reads its arguments
    straight off the interpreter's operand stack (zero per-call list
    allocation, no map lookups); the original interpretive list-based
    decoder is kept as a debug/reference path, selected with
    [~decoder:`Reference] or the [WASABI_REFERENCE_DECODER] environment
    variable. Both paths produce identical high-level hook invocations. *)

type decoder_kind = [ `Compiled | `Reference ]

type t = {
  metadata : Metadata.t;
  analysis : Analysis.t;
  decoder : decoder_kind;
  br_index : Metadata.br_table_index;
      (** O(1) per-location [br_table] metadata, built once at creation *)
  mutable instance : Wasm.Interp.instance option;
  mutable indirect_cache : int array;
      (** per-table-slot resolution of indirect call targets, filled
          lazily (MVP tables are immutable after instantiation) *)
  mutable prof : Obs.Profile.t option;
      (** when set, every hook dispatch is counted and timed under
          ["hook.<group>"], plus the ["dispatch.decode"] /
          ["dispatch.analysis"] marshalling-vs-analysis split *)
  mark : int64 ref;
      (** first analysis-callback entry time of the current profiled
          dispatch, or [-1L] *)
  marked_analysis : Analysis.t;
      (** the analysis with mark-recording callback wrappers, dispatched
          to only while a profiler is attached *)
}

exception Bad_hook_args of Wasm.Error.t
(** A low-level hook received arguments inconsistent with its spec — an
    internal error of the instrumentation. Rebinding of
    {!Wasm.Error.Hook_error} (phase [Run], code ["bad-hook-args"],
    CLI exit code 9). *)

val create :
  ?decoder:decoder_kind ->
  ?sink:(Analysis.event -> unit) ->
  Instrument.result -> Analysis.t -> t
(** [decoder] defaults to [`Compiled], or [`Reference] when the
    [WASABI_REFERENCE_DECODER] environment variable is set non-empty.
    When [sink] is given, hooks decode as usual but the decoded
    invocation is reified as an {!Analysis.event} and handed to [sink]
    instead of running the analysis callbacks inline — the async
    dispatch seam used by the serve layer; the [analysis] argument is
    then only the consumer's to apply. *)

val attach_profiler : t -> Obs.Profile.t option -> unit
(** Attach (or detach) a profiler to both the runtime (hook-dispatch
    timing) and the instrumented instance, when one is present. *)

val imports : t -> Wasm.Interp.imports
(** Host functions implementing every generated low-level hook. *)

val instantiate :
  ?fuel:int ->
  ?decoder:decoder_kind ->
  ?sink:(Analysis.event -> unit) ->
  ?wrap_host:(Wasm.Interp.host_func -> Wasm.Interp.host_func) ->
  ?extra_imports:Wasm.Interp.imports ->
  Instrument.result ->
  Analysis.t ->
  Wasm.Interp.instance * t
(** Instantiate an instrumented module with the analysis attached;
    [extra_imports] supplies the program's own imports. Hook imports are
    resolved positionally through the runtime's dispatch table (the
    instrumenter appends them after the original imports in ordinal
    order); everything else goes through the name-keyed import list.
    [wrap_host] interposes on every bound host function (hooks and
    [Host_func] extra imports) — the fault-injection seam. [sink] as in
    {!create}. *)

val fork :
  ?sink:(Analysis.event -> unit) ->
  t -> Analysis.t -> Wasm.Interp.instance * t
(** Fork an instantiated runtime: a copy-on-write clone of its instance
    ([Wasm.Interp.fork]) paired with a fresh runtime owning its own hook
    host functions, analysis binding and indirect-call cache, sharing the
    immutable per-module work (metadata, [br_table] index, hook specs).
    Hook imports in the forked instance are rebound to the new runtime,
    so its events dispatch to [analysis] (or reify into [sink]). The
    fork starts de-tiered; run [Wasm.Tier1.compile_all] on it for
    tier-1. This is the serve farm's per-worker setup step.
    @raise Invalid_argument if [t] was never instantiated. *)

(** The engine-probe observability backend: run an analysis on an
    {e uninstrumented} module by patching event closures directly into
    the engine's pre-decoded instruction streams. No binary rewrite, no
    i64 splitting, no argument marshalling — closures peek operands off
    the live operand stack and call the same {!Analysis.t} callbacks
    the AOT path dispatches to, with the exact same event placement and
    payloads (held to the AOT stream by the probe-parity fuzz oracle).

    Probes attach and detach while the instance runs: attach takes
    effect at the next entry of each affected function (and deopts its
    tier-1 closure); detach silences events immediately and lets bodies
    re-tier. Specs select sites Whamm-style:
    ["GROUPS\[@func=N\]\[@loc=F:I\]\[@nth=K\]"] — comma-separated hook
    groups (or ["all"]), optional per-function / per-site filters, and
    a fire-every-kth-match count predicate. *)
module Probe : sig
  type controller

  val create :
    ?registry:Obs.Metrics.registry ->
    Wasm.Interp.instance ->
    Analysis.t ->
    controller
  (** Create a probe controller for an instance of the {e original}
      (uninstrumented) module, and register its capture/detach view on
      the instance so {!Wasm.Snapshot} restores the probe set
      explicitly. No probes are attached yet. *)

  val attach : controller -> Obs.Probe.spec -> Obs.Probe.entry
  (** Attach a probe and rebuild the probed bodies it matches. Counted
      by [wasabi_probe_attached_total]; spans a [probe.attach] phase. *)

  val attach_spec : controller -> string -> (Obs.Probe.entry, string) result
  (** [attach] from concrete spec syntax, validating hook-group names. *)

  val validate_spec : string -> (Obs.Probe.spec, string) result

  val detach : controller -> Obs.Probe.entry -> unit
  (** Stop the probe firing immediately and re-derive probed bodies;
      functions left without matching probes return to tiered
      execution. Idempotent. *)

  val detach_all : controller -> unit

  val attach_at : controller -> step:int -> Obs.Probe.spec -> unit
  (** Attach once the instance's step counter first reaches [step]
      (checked at batch-charge boundaries on every tier, immediate when
      already past) — the [--probe-at step=N] trigger. *)

  val detach_at : controller -> step:int -> Obs.Probe.entry -> unit

  val attach_profiler : controller -> Obs.Profile.t option -> unit
  (** Attach (or detach) a profiler to probe dispatch and the instance.
      Probe dispatch time splits into ["hook.<group>"],
      ["dispatch.probe"] (gate + operand capture before the analysis
      callback) and ["dispatch.analysis"]. *)

  val entries : controller -> Obs.Probe.entry list
  (** Currently attached (active) probes. *)

  val all_entries : controller -> Obs.Probe.entry list
  (** Every probe ever attached, including detached ones (for
      [--stats]). *)

  val manager : controller -> Obs.Probe.t
end
