(** The high-level analysis API (paper, Table 2): the 23 hooks an
    analysis may implement. Conditions arrive as [bool], branch hooks get
    statically resolved absolute targets, [call_pre] gets resolved
    indirect callees, and i64 values arrive re-joined as [Value.I64]. *)

open Wasm

type memarg = {
  addr : int32;
  offset : int;
}

type t = {
  nop : Location.t -> unit;
  unreachable : Location.t -> unit;
  if_ : Location.t -> bool -> unit;
  br : Location.t -> Metadata.target -> unit;
  br_if : Location.t -> Metadata.target -> bool -> unit;
  br_table : Location.t -> Metadata.target array -> Metadata.target -> int -> unit;
      (** table, default, runtime index *)
  begin_ : Location.t -> Hook.block_kind -> unit;
  end_ : Location.t -> Hook.block_kind -> Location.t -> unit;
      (** location of the end, kind, location of the matching begin *)
  const : Location.t -> Value.t -> unit;
  drop : Location.t -> Value.t -> unit;
  select : Location.t -> bool -> Value.t -> Value.t -> unit;
      (** condition, first, second *)
  unary : Location.t -> string -> Value.t -> Value.t -> unit;
      (** op, input, result *)
  binary : Location.t -> string -> Value.t -> Value.t -> Value.t -> unit;
      (** op, first, second, result *)
  local : Location.t -> string -> int -> Value.t -> unit;
      (** op, index, value *)
  global : Location.t -> string -> int -> Value.t -> unit;
  load : Location.t -> string -> memarg -> Value.t -> unit;
      (** op, memarg, loaded value *)
  store : Location.t -> string -> memarg -> Value.t -> unit;
  memory_size : Location.t -> int -> unit;  (** current size in pages *)
  memory_grow : Location.t -> int -> int -> unit;  (** delta, previous size *)
  call_pre : Location.t -> int -> Value.t list -> int option -> unit;
      (** callee function index (original index space), arguments, and
          [Some table_index] iff the call is indirect *)
  call_post : Location.t -> Value.t list -> unit;
  return_ : Location.t -> Value.t list -> unit;
  start : Location.t -> unit;
}


val default : t
(** The empty analysis: every hook is a no-op. Build analyses with
    [{ default with binary = ...; ... }]. *)

val combine : t -> t -> t
(** Sequential composition: both analyses observe every event. *)

(** {1 Reified hook events}

    One constructor per callback, carrying exactly its arguments. Events
    are pure values (indirect callees and i64 re-joins happen before
    reification), so they can cross domain boundaries — this is what the
    serve layer's async dispatch ships through its ring buffers. *)

type event =
  | E_nop of Location.t
  | E_unreachable of Location.t
  | E_if of Location.t * bool
  | E_br of Location.t * Metadata.target
  | E_br_if of Location.t * Metadata.target * bool
  | E_br_table of Location.t * Metadata.target array * Metadata.target * int
  | E_begin of Location.t * Hook.block_kind
  | E_end of Location.t * Hook.block_kind * Location.t
  | E_const of Location.t * Value.t
  | E_drop of Location.t * Value.t
  | E_select of Location.t * bool * Value.t * Value.t
  | E_unary of Location.t * string * Value.t * Value.t
  | E_binary of Location.t * string * Value.t * Value.t * Value.t
  | E_local of Location.t * string * int * Value.t
  | E_global of Location.t * string * int * Value.t
  | E_load of Location.t * string * memarg * Value.t
  | E_store of Location.t * string * memarg * Value.t
  | E_memory_size of Location.t * int
  | E_memory_grow of Location.t * int * int
  | E_call_pre of Location.t * int * Value.t list * int option
  | E_call_post of Location.t * Value.t list
  | E_return of Location.t * Value.t list
  | E_start of Location.t

val reify : (event -> unit) -> t
(** An analysis whose every callback packages its arguments as an
    {!event} and hands it to the given function — the producer side of
    async dispatch. *)

val apply : t -> event -> unit
(** Replay a reified event into an analysis (the consumer side);
    [apply a] of the event reified from a hook invocation is exactly the
    direct callback invocation. *)
