(** The high-level analysis API (paper, Table 2): the 23 hooks an
    analysis may implement. Conditions arrive as [bool], branch hooks get
    statically resolved absolute targets, [call_pre] gets resolved
    indirect callees, and i64 values arrive re-joined as [Value.I64]. *)

open Wasm

type memarg = {
  addr : int32;
  offset : int;
}

type t = {
  nop : Location.t -> unit;
  unreachable : Location.t -> unit;
  if_ : Location.t -> bool -> unit;
  br : Location.t -> Metadata.target -> unit;
  br_if : Location.t -> Metadata.target -> bool -> unit;
  br_table : Location.t -> Metadata.target array -> Metadata.target -> int -> unit;
      (** table, default, runtime index *)
  begin_ : Location.t -> Hook.block_kind -> unit;
  end_ : Location.t -> Hook.block_kind -> Location.t -> unit;
      (** location of the end, kind, location of the matching begin *)
  const : Location.t -> Value.t -> unit;
  drop : Location.t -> Value.t -> unit;
  select : Location.t -> bool -> Value.t -> Value.t -> unit;
      (** condition, first, second *)
  unary : Location.t -> string -> Value.t -> Value.t -> unit;
      (** op, input, result *)
  binary : Location.t -> string -> Value.t -> Value.t -> Value.t -> unit;
      (** op, first, second, result *)
  local : Location.t -> string -> int -> Value.t -> unit;
      (** op, index, value *)
  global : Location.t -> string -> int -> Value.t -> unit;
  load : Location.t -> string -> memarg -> Value.t -> unit;
      (** op, memarg, loaded value *)
  store : Location.t -> string -> memarg -> Value.t -> unit;
  memory_size : Location.t -> int -> unit;  (** current size in pages *)
  memory_grow : Location.t -> int -> int -> unit;  (** delta, previous size *)
  call_pre : Location.t -> int -> Value.t list -> int option -> unit;
      (** callee function index (original index space), arguments, and
          [Some table_index] iff the call is indirect *)
  call_post : Location.t -> Value.t list -> unit;
  return_ : Location.t -> Value.t list -> unit;
  start : Location.t -> unit;
}


val default : t
(** The empty analysis: every hook is a no-op. Build analyses with
    [{ default with binary = ...; ... }]. *)

val combine : t -> t -> t
(** Sequential composition: both analyses observe every event. *)
