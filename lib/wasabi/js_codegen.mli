(** Generation of the JavaScript runtime accompanying an instrumented
    binary in a browser (the "generate" arrow of the paper's Figure 2):
    monomorphic low-level hooks that re-join split i64 halves into long.js
    values and dispatch to [Wasabi.analysis], plus the
    [Wasabi.module.info] static-information object. *)

val generate : Instrument.result -> string
(** The complete [.wasabi.js] companion source. *)
