(** The Wasabi runtime: provides the imported low-level hook functions and
    dispatches them to the high-level analysis API.

    This is the OCaml equivalent of the generated JavaScript of the
    original tool: low-level hooks are monomorphic host functions that
    decode their arguments (re-joining split i64 halves), attach
    pre-computed static information from {!Metadata} (resolved branch
    targets, [br_table] entries, indirect call targets) and invoke the
    user's {!Analysis.t} callbacks. *)

open Wasm
open Wasm.Types

type t = {
  metadata : Metadata.t;
  analysis : Analysis.t;
  mutable instance : Interp.instance option;
      (** the instrumented instance, needed to resolve indirect call
          targets through the table; set right after instantiation *)
  mutable indirect_cache : int array;
      (** per-table-slot resolution of {!resolve_indirect}, filled lazily.
          MVP tables are immutable once element segments have been
          applied, so entries never need invalidation. *)
  mutable prof : Obs.Profile.t option;
      (** when set, every hook dispatch is counted and timed under
          ["hook.<group>"]; [None] costs one match per dispatch *)
}

let create (res : Instrument.result) (analysis : Analysis.t) : t =
  { metadata = res.metadata; analysis; instance = None; indirect_cache = [||];
    prof = None }

(** Attach a profiler to both the runtime (hook-dispatch accounting) and
    the instrumented instance, when one is already present. *)
let attach_profiler (rt : t) (p : Obs.Profile.t option) : unit =
  rt.prof <- p;
  match rt.instance with
  | Some inst -> Interp.set_profiler inst p
  | None -> ()

let join_i64 (lo : int32) (hi : int32) : int64 =
  Int64.logor
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 hi) 32)

exception Bad_hook_args of string

let bad msg = raise (Bad_hook_args msg)

(** Argument decoding: consume values according to declared types,
    re-joining i64 halves. *)
let take_i32 = function
  | Value.I32 x :: rest -> (x, rest)
  | _ -> bad "expected i32"

let take_int vs =
  let x, rest = take_i32 vs in
  (Int32.to_int x, rest)

let take_bool vs =
  let x, rest = take_i32 vs in
  (not (Int32.equal x 0l), rest)

let take_value ~split ty vs =
  match ty, vs with
  | I64T, Value.I32 lo :: Value.I32 hi :: rest when split -> (Value.I64 (join_i64 lo hi), rest)
  | I64T, (Value.I64 _ as v) :: rest when not split -> (v, rest)
  | I32T, (Value.I32 _ as v) :: rest -> (v, rest)
  | F32T, (Value.F32 _ as v) :: rest -> (v, rest)
  | F64T, (Value.F64 _ as v) :: rest -> (v, rest)
  | _ -> bad "hook argument type mismatch"

let take_values ~split tys vs =
  List.fold_left
    (fun (acc, vs) ty ->
       let v, vs = take_value ~split ty vs in
       (v :: acc, vs))
    ([], vs) tys
  |> fun (acc, vs) -> (List.rev acc, vs)

let done_ = function [] -> () | _ -> bad "superfluous hook arguments"

(** Map a function instance of the *instrumented* module back to its index
    in the *original* module's function index space. *)
let original_func_index rt (f : Interp.func_inst) : int option =
  match rt.instance with
  | None -> None
  | Some inst ->
    let n_imp = rt.metadata.Metadata.num_original_func_imports in
    let h = rt.metadata.Metadata.num_hooks in
    (match f with
     | Interp.Wasm_func (j, owner) when owner == inst -> Some (n_imp + j)
     | Interp.Wasm_func _ -> None
     | Interp.Host_func _ ->
       (* originally imported function: find its import position *)
       let rec scan i =
         if i >= n_imp + h then None
         else if inst.Interp.inst_funcs.(i) == f then Some i
         else scan (i + 1)
       in
       (match scan 0 with
        | Some i when i < n_imp -> Some i
        | _ -> None))

(* cache sentinel: a table slot whose resolution has not been computed *)
let unresolved = min_int

let resolve_indirect rt (table_idx : int32) : int =
  let missing = -1 in
  match rt.instance with
  | None -> missing
  | Some inst ->
    (match inst.Interp.inst_table with
     | None -> missing
     | Some table ->
       let elems = table.Interp.t_elems in
       let i = Int64.to_int (Int64.logand (Int64.of_int32 table_idx) 0xFFFFFFFFL) in
       if i >= Array.length elems then missing
       else begin
         if Array.length rt.indirect_cache <> Array.length elems then
           rt.indirect_cache <- Array.make (Array.length elems) unresolved;
         let cached = rt.indirect_cache.(i) in
         if cached <> unresolved then cached
         else begin
           let r =
             match elems.(i) with
             | None -> missing
             | Some f ->
               (match original_func_index rt f with Some k -> k | None -> missing)
           in
           rt.indirect_cache.(i) <- r;
           r
         end
       end)

(** Build the host function implementing one low-level hook. *)
let dispatch rt (spec : Hook.spec) : Value.t list -> Value.t list =
  let a = rt.analysis in
  let split = rt.metadata.Metadata.split_i64 in
  let take_value = take_value ~split in
  let take_values = take_values ~split in
  let timer_key = "hook." ^ Hook.group_name (Hook.group_of_spec spec) in
  let body args =
    let fidx, args = take_int args in
    let instr, args = take_int args in
    let loc = Location.make ~func:fidx ~instr in
    (match spec with
     | Hook.S_nop -> done_ args; a.nop loc
     | S_unreachable -> done_ args; a.unreachable loc
     | S_start -> done_ args; a.start loc
     | S_if_cond ->
       let cond, args = take_bool args in
       done_ args;
       a.if_ loc cond
     | S_br ->
       let label, args = take_int args in
       let target, args = take_int args in
       done_ args;
       a.br loc { Metadata.label; target_loc = Location.make ~func:fidx ~instr:target }
     | S_br_if ->
       let label, args = take_int args in
       let target, args = take_int args in
       let cond, args = take_bool args in
       done_ args;
       a.br_if loc { Metadata.label; target_loc = Location.make ~func:fidx ~instr:target } cond
     | S_br_table ->
       let idx, args = take_int args in
       done_ args;
       let info = Metadata.br_table_at rt.metadata loc in
       let targets = Array.map fst info.Metadata.bt_targets in
       let default = fst info.Metadata.bt_default in
       a.br_table loc targets default idx;
       (* the blocks ended by the selected entry, known only at runtime *)
       if Hook.Group_set.mem Hook.G_end rt.metadata.Metadata.groups then begin
         (* the index is an unsigned i32: negative here means >= 2^31,
            which is out of range and takes the default *)
         let _, ended =
           if idx >= 0 && idx < Array.length info.Metadata.bt_targets then
             info.Metadata.bt_targets.(idx)
           else info.Metadata.bt_default
         in
         List.iter
           (fun (eb : Metadata.ended_block) ->
              a.end_ eb.Metadata.eb_end_loc eb.eb_kind
                (Location.make ~func:fidx ~instr:eb.eb_begin_instr))
           ended
       end
     | S_begin kind -> done_ args; a.begin_ loc kind
     | S_end kind ->
       let begin_instr, args = take_int args in
       done_ args;
       a.end_ loc kind (Location.make ~func:fidx ~instr:begin_instr)
     | S_const ty ->
       let v, args = take_value ty args in
       done_ args;
       a.const loc v
     | S_drop ty ->
       let v, args = take_value ty args in
       done_ args;
       a.drop loc v
     | S_select ty ->
       let cond, args = take_bool args in
       let v1, args = take_value ty args in
       let v2, args = take_value ty args in
       done_ args;
       a.select loc cond v1 v2
     | S_unary (op, ity, rty) ->
       let input, args = take_value ity args in
       let result, args = take_value rty args in
       done_ args;
       a.unary loc op input result
     | S_binary (op, aty, bty, rty) ->
       let x, args = take_value aty args in
       let y, args = take_value bty args in
       let r, args = take_value rty args in
       done_ args;
       a.binary loc op x y r
     | S_local (op, ty) ->
       let idx, args = take_int args in
       let v, args = take_value ty args in
       done_ args;
       a.local loc (Hook.local_op_name op) idx v
     | S_global (op, ty) ->
       let idx, args = take_int args in
       let v, args = take_value ty args in
       done_ args;
       a.global loc (Hook.global_op_name op) idx v
     | S_load (op, ty) ->
       let addr, args = take_i32 args in
       let offset, args = take_int args in
       let v, args = take_value ty args in
       done_ args;
       a.load loc op { Analysis.addr; offset } v
     | S_store (op, ty) ->
       let addr, args = take_i32 args in
       let offset, args = take_int args in
       let v, args = take_value ty args in
       done_ args;
       a.store loc op { Analysis.addr; offset } v
     | S_memory_size ->
       let size, args = take_int args in
       done_ args;
       a.memory_size loc size
     | S_memory_grow ->
       let delta, args = take_int args in
       let prev, args = take_int args in
       done_ args;
       a.memory_grow loc delta prev
     | S_call_pre (tys, indirect) ->
       let callee_or_table, args = take_i32 args in
       let vs, args = take_values tys args in
       done_ args;
       if indirect then
         let callee = resolve_indirect rt callee_or_table in
         a.call_pre loc callee vs (Some (Int32.to_int callee_or_table))
       else a.call_pre loc (Int32.to_int callee_or_table) vs None
     | S_call_post tys ->
       let vs, args = take_values tys args in
       done_ args;
       a.call_post loc vs
     | S_return tys ->
       let vs, args = take_values tys args in
       done_ args;
       a.return_ loc vs);
    []
  in
  fun args ->
    match rt.prof with
    | None -> body args
    | Some p ->
      let t0 = Obs.Clock.now_ns () in
      let r = body args in
      Obs.Profile.add_time p timer_key (Int64.sub (Obs.Clock.now_ns ()) t0);
      r

(** Import list providing every generated low-level hook. *)
let imports (rt : t) : Interp.imports =
  rt.metadata.Metadata.hook_specs
  |> Array.to_list
  |> List.map (fun spec ->
    let ft = Hook.signature ~split_i64:rt.metadata.Metadata.split_i64 spec in
    ( Hook.import_module,
      Hook.name spec,
      Interp.host_func ~name:(Hook.name spec) ~params:ft.params ~results:ft.results
        (dispatch rt spec) ))

(** Instantiate an instrumented module with the given analysis attached.
    [extra_imports] supplies the program's own imports (if any). *)
let instantiate ?fuel ?(extra_imports : Interp.imports = []) (res : Instrument.result)
    (analysis : Analysis.t) : Interp.instance * t =
  let rt = create res analysis in
  let inst =
    Interp.instantiate ?fuel ~imports:(imports rt @ extra_imports) res.Instrument.instrumented
  in
  rt.instance <- Some inst;
  (inst, rt)
