(** The Wasabi runtime: provides the imported low-level hook functions and
    dispatches them to the high-level analysis API.

    This is the OCaml equivalent of the generated JavaScript of the
    original tool: low-level hooks are monomorphic host functions that
    decode their arguments (re-joining split i64 halves), attach
    pre-computed static information from {!Metadata} (resolved branch
    targets, [br_table] entries, indirect call targets) and invoke the
    user's {!Analysis.t} callbacks.

    There are two decoder implementations:

    - {b compiled} (the default): every monomorphized hook spec is
      compiled {e once}, at runtime-binding time, into a specialized
      closure — arity, argument slot offsets, i64 split/join, op-name
      strings and [br_table] metadata are all pre-resolved, and arguments
      are read straight out of the interpreter's operand-stack buffer
      (the array ABI of {!Wasm.Interp.host_func_raw}), with no per-call
      list allocation or map lookup;
    - {b reference}: the original interpretive [take_*]-chain over an
      argument list, kept as the debug path and as the oracle for the
      differential decoder tests. Selected with [~decoder:`Reference] or
      by setting the [WASABI_REFERENCE_DECODER] environment variable.

    Both paths must produce identical high-level hook invocations;
    [test/test_decoders.ml] checks this across the whole corpus. *)

open Wasm
open Wasm.Types

type decoder_kind = [ `Compiled | `Reference ]

type t = {
  metadata : Metadata.t;
  analysis : Analysis.t;
  decoder : decoder_kind;
  br_index : Metadata.br_table_index;
      (** O(1) per-location [br_table] metadata, built once at creation *)
  mutable instance : Interp.instance option;
      (** the instrumented instance, needed to resolve indirect call
          targets through the table; set right after instantiation *)
  mutable indirect_cache : int array;
      (** per-table-slot resolution of {!resolve_indirect}, filled lazily.
          MVP tables are immutable once element segments have been
          applied, so entries never need invalidation. *)
  mutable prof : Obs.Profile.t option;
      (** when set, every hook dispatch is counted and timed under
          ["hook.<group>"] plus the ["dispatch.decode"] /
          ["dispatch.analysis"] split; [None] costs one match per
          dispatch *)
  mark : int64 ref;
      (** timestamp of the first analysis-callback entry of the current
          profiled dispatch, or [-1L]; separates marshalling time from
          user analysis time *)
  marked_analysis : Analysis.t;
      (** [analysis] with every callback wrapped to record [mark]; only
          dispatched to while a profiler is attached *)
}

exception Bad_hook_args = Error.Hook_error

let bad fmt = Error.hook_error ~code:"bad-hook-args" fmt

let mark_now mark = if !mark < 0L then mark := Obs.Clock.now_ns ()

(** Wrap every callback so the first one entered during a dispatch
    records its entry time: everything before it is argument decoding,
    everything after it is the user's analysis code. *)
let with_mark mark (a : Analysis.t) : Analysis.t =
  {
    Analysis.nop = (fun l -> mark_now mark; a.Analysis.nop l);
    unreachable = (fun l -> mark_now mark; a.Analysis.unreachable l);
    if_ = (fun l c -> mark_now mark; a.Analysis.if_ l c);
    br = (fun l t -> mark_now mark; a.Analysis.br l t);
    br_if = (fun l t c -> mark_now mark; a.Analysis.br_if l t c);
    br_table = (fun l tbl d i -> mark_now mark; a.Analysis.br_table l tbl d i);
    begin_ = (fun l k -> mark_now mark; a.Analysis.begin_ l k);
    end_ = (fun l k b -> mark_now mark; a.Analysis.end_ l k b);
    const = (fun l v -> mark_now mark; a.Analysis.const l v);
    drop = (fun l v -> mark_now mark; a.Analysis.drop l v);
    select = (fun l c x y -> mark_now mark; a.Analysis.select l c x y);
    unary = (fun l op i r -> mark_now mark; a.Analysis.unary l op i r);
    binary = (fun l op x y r -> mark_now mark; a.Analysis.binary l op x y r);
    local = (fun l op i v -> mark_now mark; a.Analysis.local l op i v);
    global = (fun l op i v -> mark_now mark; a.Analysis.global l op i v);
    load = (fun l op ma v -> mark_now mark; a.Analysis.load l op ma v);
    store = (fun l op ma v -> mark_now mark; a.Analysis.store l op ma v);
    memory_size = (fun l s -> mark_now mark; a.Analysis.memory_size l s);
    memory_grow = (fun l d p -> mark_now mark; a.Analysis.memory_grow l d p);
    call_pre = (fun l f args ti -> mark_now mark; a.Analysis.call_pre l f args ti);
    call_post = (fun l rs -> mark_now mark; a.Analysis.call_post l rs);
    return_ = (fun l rs -> mark_now mark; a.Analysis.return_ l rs);
    start = (fun l -> mark_now mark; a.Analysis.start l);
  }

let default_decoder () : decoder_kind =
  match Sys.getenv_opt "WASABI_REFERENCE_DECODER" with
  | Some s when s <> "" && s <> "0" -> `Reference
  | _ -> `Compiled

let create ?decoder ?sink (res : Instrument.result) (analysis : Analysis.t) : t =
  let decoder = match decoder with Some d -> d | None -> default_decoder () in
  (* a sink interposes at the analysis boundary: hooks still decode
     their arguments as usual, but the decoded invocation is reified as
     an [Analysis.event] and handed to [sink] instead of running the
     callbacks inline — the serve layer's async dispatch path *)
  let analysis =
    match sink with None -> analysis | Some push -> Analysis.reify push
  in
  let mark = ref (-1L) in
  { metadata = res.metadata; analysis; decoder;
    br_index = Metadata.build_br_table_index res.metadata;
    instance = None; indirect_cache = [||]; prof = None;
    mark; marked_analysis = with_mark mark analysis }

(** Attach a profiler to both the runtime (hook-dispatch accounting) and
    the instrumented instance, when one is already present. *)
let attach_profiler (rt : t) (p : Obs.Profile.t option) : unit =
  rt.prof <- p;
  match rt.instance with
  | Some inst -> Interp.set_profiler inst p
  | None -> ()

let join_i64 (lo : int32) (hi : int32) : int64 =
  Int64.logor
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 hi) 32)

(** {1 Reference decoders}

    Argument decoding by folding over the argument list: consume values
    according to declared types, re-joining i64 halves. This is the
    original interpretive path, kept for debugging and as the oracle the
    compiled decoders are differentially tested against. *)

let take_i32 = function
  | Value.I32 x :: rest -> (x, rest)
  | _ -> bad "expected i32"

let take_int vs =
  let x, rest = take_i32 vs in
  (Int32.to_int x, rest)

let take_bool vs =
  let x, rest = take_i32 vs in
  (not (Int32.equal x 0l), rest)

let take_value ~split ty vs =
  match ty, vs with
  | I64T, Value.I32 lo :: Value.I32 hi :: rest when split -> (Value.I64 (join_i64 lo hi), rest)
  | I64T, (Value.I64 _ as v) :: rest when not split -> (v, rest)
  | I32T, (Value.I32 _ as v) :: rest -> (v, rest)
  | F32T, (Value.F32 _ as v) :: rest -> (v, rest)
  | F64T, (Value.F64 _ as v) :: rest -> (v, rest)
  | _ -> bad "hook argument type mismatch"

let take_values ~split tys vs =
  List.fold_left
    (fun (acc, vs) ty ->
       let v, vs = take_value ~split ty vs in
       (v :: acc, vs))
    ([], vs) tys
  |> fun (acc, vs) -> (List.rev acc, vs)

let done_ = function [] -> () | _ -> bad "superfluous hook arguments"

(** Map a function instance of the *instrumented* module back to its index
    in the *original* module's function index space. *)
let original_func_index rt (f : Interp.func_inst) : int option =
  match rt.instance with
  | None -> None
  | Some inst ->
    let n_imp = rt.metadata.Metadata.num_original_func_imports in
    let h = rt.metadata.Metadata.num_hooks in
    (match f with
     | Interp.Wasm_func (j, owner) when owner == inst -> Some (n_imp + j)
     | Interp.Wasm_func _ -> None
     | Interp.Host_func _ ->
       (* originally imported function: find its import position *)
       let rec scan i =
         if i >= n_imp + h then None
         else if inst.Interp.inst_funcs.(i) == f then Some i
         else scan (i + 1)
       in
       (match scan 0 with
        | Some i when i < n_imp -> Some i
        | _ -> None))

(* cache sentinel: a table slot whose resolution has not been computed *)
let unresolved = min_int

let resolve_indirect rt (table_idx : int32) : int =
  let missing = -1 in
  match rt.instance with
  | None -> missing
  | Some inst ->
    (match inst.Interp.inst_table with
     | None -> missing
     | Some table ->
       let elems = table.Interp.t_elems in
       let i = Int64.to_int (Int64.logand (Int64.of_int32 table_idx) 0xFFFFFFFFL) in
       if i >= Array.length elems then missing
       else begin
         if Array.length rt.indirect_cache <> Array.length elems then
           rt.indirect_cache <- Array.make (Array.length elems) unresolved;
         let cached = rt.indirect_cache.(i) in
         if cached <> unresolved then cached
         else begin
           let r =
             match elems.(i) with
             | None -> missing
             | Some f ->
               (match original_func_index rt f with Some k -> k | None -> missing)
           in
           rt.indirect_cache.(i) <- r;
           r
         end
       end)

(** The reference dispatcher for one low-level hook: interpretive
    [take_*] decoding over an argument list. *)
let dispatch_reference rt (a : Analysis.t) (spec : Hook.spec) : Value.t list -> unit =
  let split = rt.metadata.Metadata.split_i64 in
  let take_value = take_value ~split in
  let take_values = take_values ~split in
  fun args ->
    let fidx, args = take_int args in
    let instr, args = take_int args in
    let loc = Location.make ~func:fidx ~instr in
    match spec with
    | Hook.S_nop -> done_ args; a.nop loc
    | S_unreachable -> done_ args; a.unreachable loc
    | S_start -> done_ args; a.start loc
    | S_if_cond ->
      let cond, args = take_bool args in
      done_ args;
      a.if_ loc cond
    | S_br ->
      let label, args = take_int args in
      let target, args = take_int args in
      done_ args;
      a.br loc { Metadata.label; target_loc = Location.make ~func:fidx ~instr:target }
    | S_br_if ->
      let label, args = take_int args in
      let target, args = take_int args in
      let cond, args = take_bool args in
      done_ args;
      a.br_if loc { Metadata.label; target_loc = Location.make ~func:fidx ~instr:target } cond
    | S_br_table ->
      let idx, args = take_int args in
      done_ args;
      let info = Metadata.br_table_at rt.metadata loc in
      let targets = Array.map fst info.Metadata.bt_targets in
      let default = fst info.Metadata.bt_default in
      a.br_table loc targets default idx;
      (* the blocks ended by the selected entry, known only at runtime *)
      if Hook.Group_set.mem Hook.G_end rt.metadata.Metadata.groups then begin
        (* the index is an unsigned i32: negative here means >= 2^31,
           which is out of range and takes the default *)
        let _, ended =
          if idx >= 0 && idx < Array.length info.Metadata.bt_targets then
            info.Metadata.bt_targets.(idx)
          else info.Metadata.bt_default
        in
        List.iter
          (fun (eb : Metadata.ended_block) ->
             a.end_ eb.Metadata.eb_end_loc eb.eb_kind
               (Location.make ~func:fidx ~instr:eb.eb_begin_instr))
          ended
      end
    | S_begin kind -> done_ args; a.begin_ loc kind
    | S_end kind ->
      let begin_instr, args = take_int args in
      done_ args;
      a.end_ loc kind (Location.make ~func:fidx ~instr:begin_instr)
    | S_const ty ->
      let v, args = take_value ty args in
      done_ args;
      a.const loc v
    | S_drop ty ->
      let v, args = take_value ty args in
      done_ args;
      a.drop loc v
    | S_select ty ->
      let cond, args = take_bool args in
      let v1, args = take_value ty args in
      let v2, args = take_value ty args in
      done_ args;
      a.select loc cond v1 v2
    | S_unary (op, ity, rty) ->
      let input, args = take_value ity args in
      let result, args = take_value rty args in
      done_ args;
      a.unary loc op input result
    | S_binary (op, aty, bty, rty) ->
      let x, args = take_value aty args in
      let y, args = take_value bty args in
      let r, args = take_value rty args in
      done_ args;
      a.binary loc op x y r
    | S_local (op, ty) ->
      let idx, args = take_int args in
      let v, args = take_value ty args in
      done_ args;
      a.local loc (Hook.local_op_name op) idx v
    | S_global (op, ty) ->
      let idx, args = take_int args in
      let v, args = take_value ty args in
      done_ args;
      a.global loc (Hook.global_op_name op) idx v
    | S_load (op, ty) ->
      let addr, args = take_i32 args in
      let offset, args = take_int args in
      let v, args = take_value ty args in
      done_ args;
      a.load loc op { Analysis.addr; offset } v
    | S_store (op, ty) ->
      let addr, args = take_i32 args in
      let offset, args = take_int args in
      let v, args = take_value ty args in
      done_ args;
      a.store loc op { Analysis.addr; offset } v
    | S_memory_size ->
      let size, args = take_int args in
      done_ args;
      a.memory_size loc size
    | S_memory_grow ->
      let delta, args = take_int args in
      let prev, args = take_int args in
      done_ args;
      a.memory_grow loc delta prev
    | S_call_pre (tys, indirect) ->
      let callee_or_table, args = take_i32 args in
      let vs, args = take_values tys args in
      done_ args;
      if indirect then
        let callee = resolve_indirect rt callee_or_table in
        a.call_pre loc callee vs (Some (Int32.to_int callee_or_table))
      else a.call_pre loc (Int32.to_int callee_or_table) vs None
    | S_call_post tys ->
      let vs, args = take_values tys args in
      done_ args;
      a.call_post loc vs
    | S_return tys ->
      let vs, args = take_values tys args in
      done_ args;
      a.return_ loc vs

(** {1 Compiled decoders}

    Slot readers, each specialized at compile time to a fixed slot [k]
    relative to the argument base. The hook's wasm signature guarantees
    exactly the declared slots are present ([Interp.call_host] enforces
    the arity), so reads use [unsafe_get]. Slots 0 and 1 are always the
    location (function index, instruction index). *)

let read_int k args off =
  match Array.unsafe_get args (off + k) with
  | Value.I32 x -> Int32.to_int x
  | _ -> bad "expected i32"

let read_i32 k args off =
  match Array.unsafe_get args (off + k) with
  | Value.I32 x -> x
  | _ -> bad "expected i32"

let read_bool k args off =
  match Array.unsafe_get args (off + k) with
  | Value.I32 x -> not (Int32.equal x 0l)
  | _ -> bad "expected i32"

(** Reader for one typed value at slot [k]; returns the reader and the
    number of slots consumed. The i64 split/join decision is resolved
    here, once per spec, instead of per call. *)
let read_value ~split ty k : (Value.t array -> int -> Value.t) * int =
  match ty with
  | I64T when split ->
    ( (fun args off ->
         match Array.unsafe_get args (off + k), Array.unsafe_get args (off + k + 1) with
         | Value.I32 lo, Value.I32 hi -> Value.I64 (join_i64 lo hi)
         | _ -> bad "hook argument type mismatch"),
      2 )
  | I64T ->
    ( (fun args off ->
         match Array.unsafe_get args (off + k) with
         | Value.I64 _ as v -> v
         | _ -> bad "hook argument type mismatch"),
      1 )
  | I32T ->
    ( (fun args off ->
         match Array.unsafe_get args (off + k) with
         | Value.I32 _ as v -> v
         | _ -> bad "hook argument type mismatch"),
      1 )
  | F32T ->
    ( (fun args off ->
         match Array.unsafe_get args (off + k) with
         | Value.F32 _ as v -> v
         | _ -> bad "hook argument type mismatch"),
      1 )
  | F64T ->
    ( (fun args off ->
         match Array.unsafe_get args (off + k) with
         | Value.F64 _ as v -> v
         | _ -> bad "hook argument type mismatch"),
      1 )

(** Reader for a typed argument tuple (call/return hooks): every
    element's slot is pre-resolved; the returned closure builds the
    [Value.t list] in one left-to-right pass with no reversal. *)
let read_values ~split tys k0 : Value.t array -> int -> Value.t list =
  let readers, _ =
    List.fold_left
      (fun (acc, k) ty ->
         let r, w = read_value ~split ty k in
         (r :: acc, k + w))
      ([], k0) tys
  in
  match List.rev readers with
  | [] -> fun _ _ -> []
  | readers ->
    let rec build rs args off =
      match rs with
      | [] -> []
      | r :: rest ->
        (* [let]-bound so elements are read first-to-last, exactly like
           the reference [take_values] chain *)
        let v = r args off in
        v :: build rest args off
    in
    fun args off -> build readers args off

(** Compile one monomorphized hook spec into its specialized decoder.
    Arity, slot offsets, i64 joins, op-name strings and [br_table]
    metadata lookups are all resolved here, once, at runtime-binding
    time; the returned closure does no list traversal and no map walk.
    Argument reads are [let]-bound in the reference decoder's order (not
    inlined into the callback application, whose evaluation order OCaml
    does not define), so the two paths are observationally identical. *)
let compile rt (a : Analysis.t) (spec : Hook.spec) : Value.t array -> int -> unit =
  let split = rt.metadata.Metadata.split_i64 in
  let read_value ty k = read_value ~split ty k in
  let read_values tys k = read_values ~split tys k in
  let loc args off = Location.make ~func:(read_int 0 args off) ~instr:(read_int 1 args off) in
  match spec with
  | Hook.S_nop -> fun args off -> a.nop (loc args off)
  | S_unreachable -> fun args off -> a.unreachable (loc args off)
  | S_start -> fun args off -> a.start (loc args off)
  | S_if_cond ->
    fun args off ->
      let l = loc args off in
      let cond = read_bool 2 args off in
      a.if_ l cond
  | S_br ->
    fun args off ->
      let l = loc args off in
      let label = read_int 2 args off in
      let target = read_int 3 args off in
      a.br l { Metadata.label; target_loc = Location.make ~func:l.Location.func ~instr:target }
  | S_br_if ->
    fun args off ->
      let l = loc args off in
      let label = read_int 2 args off in
      let target = read_int 3 args off in
      let cond = read_bool 4 args off in
      a.br_if l { Metadata.label; target_loc = Location.make ~func:l.Location.func ~instr:target }
        cond
  | S_br_table ->
    let want_end = Hook.Group_set.mem Hook.G_end rt.metadata.Metadata.groups in
    let br_index = rt.br_index in
    fun args off ->
      let fidx = read_int 0 args off in
      let instr = read_int 1 args off in
      let l = Location.make ~func:fidx ~instr in
      let idx = read_int 2 args off in
      let info =
        match Metadata.br_table_find br_index ~func:fidx ~instr with
        | Some info -> info
        | None -> invalid_arg (Printf.sprintf "no br_table at %s" (Location.to_string l))
      in
      let targets = Array.map fst info.Metadata.bt_targets in
      let default = fst info.Metadata.bt_default in
      a.br_table l targets default idx;
      if want_end then begin
        (* the index is an unsigned i32: negative here means >= 2^31,
           which is out of range and takes the default *)
        let _, ended =
          if idx >= 0 && idx < Array.length info.Metadata.bt_targets then
            info.Metadata.bt_targets.(idx)
          else info.Metadata.bt_default
        in
        List.iter
          (fun (eb : Metadata.ended_block) ->
             a.end_ eb.Metadata.eb_end_loc eb.eb_kind
               (Location.make ~func:fidx ~instr:eb.eb_begin_instr))
          ended
      end
  | S_begin kind -> fun args off -> a.begin_ (loc args off) kind
  | S_end kind ->
    fun args off ->
      let fidx = read_int 0 args off in
      let instr = read_int 1 args off in
      let begin_instr = read_int 2 args off in
      a.end_ (Location.make ~func:fidx ~instr) kind (Location.make ~func:fidx ~instr:begin_instr)
  | S_const ty ->
    let rd, _ = read_value ty 2 in
    fun args off ->
      let l = loc args off in
      let v = rd args off in
      a.const l v
  | S_drop ty ->
    let rd, _ = read_value ty 2 in
    fun args off ->
      let l = loc args off in
      let v = rd args off in
      a.drop l v
  | S_select ty ->
    let rd1, w = read_value ty 3 in
    let rd2, _ = read_value ty (3 + w) in
    fun args off ->
      let l = loc args off in
      let cond = read_bool 2 args off in
      let v1 = rd1 args off in
      let v2 = rd2 args off in
      a.select l cond v1 v2
  | S_unary (op, ity, rty) ->
    let rdi, wi = read_value ity 2 in
    let rdr, _ = read_value rty (2 + wi) in
    fun args off ->
      let l = loc args off in
      let input = rdi args off in
      let result = rdr args off in
      a.unary l op input result
  | S_binary (op, aty, bty, rty) ->
    let rda, wa = read_value aty 2 in
    let rdb, wb = read_value bty (2 + wa) in
    let rdr, _ = read_value rty (2 + wa + wb) in
    fun args off ->
      let l = loc args off in
      let x = rda args off in
      let y = rdb args off in
      let r = rdr args off in
      a.binary l op x y r
  | S_local (op, ty) ->
    let opn = Hook.local_op_name op in
    let rd, _ = read_value ty 3 in
    fun args off ->
      let l = loc args off in
      let idx = read_int 2 args off in
      let v = rd args off in
      a.local l opn idx v
  | S_global (op, ty) ->
    let opn = Hook.global_op_name op in
    let rd, _ = read_value ty 3 in
    fun args off ->
      let l = loc args off in
      let idx = read_int 2 args off in
      let v = rd args off in
      a.global l opn idx v
  | S_load (op, ty) ->
    let rd, _ = read_value ty 4 in
    fun args off ->
      let l = loc args off in
      let addr = read_i32 2 args off in
      let offset = read_int 3 args off in
      let v = rd args off in
      a.load l op { Analysis.addr; offset } v
  | S_store (op, ty) ->
    let rd, _ = read_value ty 4 in
    fun args off ->
      let l = loc args off in
      let addr = read_i32 2 args off in
      let offset = read_int 3 args off in
      let v = rd args off in
      a.store l op { Analysis.addr; offset } v
  | S_memory_size ->
    fun args off ->
      let l = loc args off in
      let size = read_int 2 args off in
      a.memory_size l size
  | S_memory_grow ->
    fun args off ->
      let l = loc args off in
      let delta = read_int 2 args off in
      let prev = read_int 3 args off in
      a.memory_grow l delta prev
  | S_call_pre (tys, indirect) ->
    let rdv = read_values tys 3 in
    if indirect then
      fun args off ->
        let l = loc args off in
        let tbl_idx = read_i32 2 args off in
        let vs = rdv args off in
        let callee = resolve_indirect rt tbl_idx in
        a.call_pre l callee vs (Some (Int32.to_int tbl_idx))
    else
      fun args off ->
        let l = loc args off in
        let callee = read_i32 2 args off in
        let vs = rdv args off in
        a.call_pre l (Int32.to_int callee) vs None
  | S_call_post tys ->
    let rdv = read_values tys 2 in
    fun args off ->
      let l = loc args off in
      let vs = rdv args off in
      a.call_post l vs
  | S_return tys ->
    let rdv = read_values tys 2 in
    fun args off ->
      let l = loc args off in
      let vs = rdv args off in
      a.return_ l vs

(** {1 Hook host functions} *)

(** Build the host function implementing one low-level hook: the selected
    decoder body, plus — only while a profiler is attached — a timing
    wrapper that splits total dispatch time into marshalling
    (["dispatch.decode"]) and user analysis code (["dispatch.analysis"])
    at the first analysis-callback entry. *)
let make_hook rt (spec : Hook.spec) : Interp.extern =
  let split_i64 = rt.metadata.Metadata.split_i64 in
  let ft = Hook.signature ~split_i64 spec in
  let nparams = List.length ft.params in
  let body_of a =
    match rt.decoder with
    | `Compiled -> compile rt a spec
    | `Reference ->
      let d = dispatch_reference rt a spec in
      fun args off ->
        let rec build i acc = if i < 0 then acc else build (i - 1) (args.(off + i) :: acc) in
        d (build (nparams - 1) [])
  in
  let fast = body_of rt.analysis in
  let profiled = lazy (body_of rt.marked_analysis) in
  let timer_key = "hook." ^ Hook.group_name (Hook.group_of_spec spec) in
  let mark = rt.mark in
  let h_fn args off =
    (match rt.prof with
     | None -> fast args off
     | Some p ->
       let t0 = Obs.Clock.now_ns () in
       mark := -1L;
       Lazy.force profiled args off;
       let t2 = Obs.Clock.now_ns () in
       let t1 = if !mark < 0L then t2 else !mark in
       Obs.Profile.add_time p timer_key (Int64.sub t2 t0);
       Obs.Profile.add_time p "dispatch.decode" (Int64.sub t1 t0);
       Obs.Profile.add_time p "dispatch.analysis" (Int64.sub t2 t1));
    []
  in
  Interp.host_func_raw ~name:(Hook.name spec) ~params:ft.params ~results:ft.results h_fn

(** The dispatch table: one host function per generated hook, indexed by
    hook ordinal (= import position minus the original import count). *)
let hook_externs (rt : t) : Interp.extern array =
  Array.map (make_hook rt) rt.metadata.Metadata.hook_specs

let imports_of rt (hooks : Interp.extern array) : Interp.imports =
  Array.to_list
    (Array.mapi
       (fun k ext -> (Hook.import_module, Hook.name rt.metadata.Metadata.hook_specs.(k), ext))
       hooks)

(** Import list providing every generated low-level hook. *)
let imports (rt : t) : Interp.imports = imports_of rt (hook_externs rt)

(** Instantiate an instrumented module with the given analysis attached.
    [extra_imports] supplies the program's own imports (if any). The
    instrumenter appends hook imports after the original imports in
    ordinal order, so hooks are resolved positionally through the
    dispatch table (O(1) per import) rather than by name scan; anything
    else falls back to the name-keyed list.

    [wrap_host] is applied to every bound host function — the generated
    hooks and any [Host_func] among [extra_imports] — before binding;
    the fuzzing harness uses it to interpose its fault-injection plan. *)
let instantiate ?fuel ?decoder ?sink ?wrap_host ?(extra_imports : Interp.imports = [])
    (res : Instrument.result) (analysis : Analysis.t) : Interp.instance * t =
  let rt = create ?decoder ?sink res analysis in
  let hooks = hook_externs rt in
  let wrap_extern ext =
    match wrap_host, ext with
    | Some w, Interp.Extern_func (Interp.Host_func h) ->
      Interp.Extern_func (Interp.Host_func (w h))
    | _ -> ext
  in
  let hooks = match wrap_host with None -> hooks | Some _ -> Array.map wrap_extern hooks in
  let extra_imports =
    match wrap_host with
    | None -> extra_imports
    | Some _ -> List.map (fun (m, n, ext) -> (m, n, wrap_extern ext)) extra_imports
  in
  let base = List.length rt.metadata.Metadata.original.Ast.imports in
  let resolve_import i (imp : Ast.import) =
    let k = i - base in
    if k >= 0 && k < Array.length hooks && String.equal imp.module_name Hook.import_module then
      Some (Array.unsafe_get hooks k)
    else None
  in
  let inst =
    Interp.instantiate ?fuel ~resolve_import
      ~imports:(imports_of rt hooks @ extra_imports)
      res.Instrument.instrumented
  in
  rt.instance <- Some inst;
  (inst, rt)

(** Fork an instantiated runtime: a copy-on-write clone of the instance
    ([Interp.fork]) paired with a fresh runtime that owns its own hook
    host functions, analysis binding, indirect-call cache and profiler
    slot, while sharing the immutable per-module work (metadata, the
    [br_table] index, hook specs). Hook imports in the forked instance
    are rebound to the new runtime's hooks, so events dispatch to
    [analysis] (or reify into [sink]), never to the source runtime's.

    The fork starts de-tiered; callers that want tier-1 run
    [Tier1.compile_all] on the forked instance. This is the serve farm's
    worker setup: one instrument+instantiate, then one [fork] per worker
    domain. *)
let fork ?sink (rt : t) (analysis : Analysis.t) : Interp.instance * t =
  let src =
    match rt.instance with
    | Some i -> i
    | None -> invalid_arg "Runtime.fork: runtime has no instance"
  in
  let analysis =
    match sink with None -> analysis | Some push -> Analysis.reify push
  in
  let mark = ref (-1L) in
  let rt' =
    { metadata = rt.metadata; analysis; decoder = rt.decoder;
      br_index = rt.br_index; instance = None; indirect_cache = [||];
      prof = None; mark; marked_analysis = with_mark mark analysis }
  in
  let hooks = hook_externs rt' in
  (* hook ordinal [k] sits at function index [num_original_func_imports + k]
     (the instrumenter appends hook imports after the original ones) *)
  let fbase = rt.metadata.Metadata.num_original_func_imports in
  let wrap_import i (h : Interp.host_func) =
    let k = i - fbase in
    if k >= 0 && k < Array.length hooks then
      match hooks.(k) with
      | Interp.Extern_func (Interp.Host_func h') -> h'
      | _ -> h
    else h
  in
  let inst = Interp.fork ~wrap_import src in
  rt'.instance <- Some inst;
  (inst, rt')

(** {1 The engine-probe backend}

    The second way to run an analysis: instead of rewriting the binary
    ahead of time, probes are patched into the {e original} module's
    pre-decoded instruction stream inside the engine ([Interp.probe_function]).
    No re-encode, no i64 splitting, no argument marshalling through wasm
    locals — event closures peek operands directly off the live operand
    stack and invoke the same {!Analysis.t} callbacks the AOT hook path
    dispatches to, so every analysis runs unmodified under either
    backend.

    Event synthesis mirrors the instrumenter's contract exactly
    (location values, event order, [end] events of every block a branch
    exits, [br_table] runtime selection, call argument/result capture);
    the probe-parity differential fuzz oracle holds the two backends to
    an identical hook-event stream.

    Probes attach and detach while the instance runs. Attach takes
    effect at the next entry of each function (frames already on the
    stack finish on the code they entered with); detach silences the
    already-installed closures immediately via the entry's active flag.
    Attaching deopts tier-1-compiled bodies back to the probed tier-0
    loop; detaching lets them re-tier naturally. *)
module Probe = struct
  open Wasm.Interp
  open Wasm.Ast

  (** Static control-stack entry of the probe builder's walk, the
      analogue of the instrumenter's [ctrl_entry]. *)
  type pctrl = {
    k : Hook.block_kind;
    cb : int;  (** begin instruction index; -1 for the function *)
    ce : int;  (** matching [End] index; body length for the function *)
  }

  type controller = {
    pc_inst : instance;  (** an instance of the {e original} module *)
    pc_analysis : Analysis.t;
    pc_marked : Analysis.t;  (** mark-wrapped, dispatched under a profiler *)
    pc_mark : int64 ref;
    pc_mgr : Obs.Probe.t;
    mutable pc_prof : Obs.Profile.t option;
    mutable pc_indirect : int array;  (** per-table-slot callee resolution *)
    pc_n_imp : int;  (** imported functions: defined j ↔ index n_imp + j *)
    pc_start : int option;
    pc_xbodies : xinstr array option array;  (** unfused re-decodes, cached *)
  }

  let target_instr (e : pctrl) =
    match e.k with
    | Hook.Bloop -> e.cb + 1
    | Hook.Bfunction -> e.ce
    | Hook.Bblock | Hook.Bif | Hook.Belse -> e.ce + 1

  (** Original-module function index of a table slot's callee, -1 when
      null / foreign; cached per slot (MVP tables are immutable). *)
  let resolve_indirect_orig c (tbl : int32) : int =
    match c.pc_inst.inst_table with
    | None -> -1
    | Some table ->
      let elems = table.t_elems in
      let i = Int64.to_int (Int64.logand (Int64.of_int32 tbl) 0xFFFFFFFFL) in
      if i >= Array.length elems then -1
      else begin
        if Array.length c.pc_indirect <> Array.length elems then
          c.pc_indirect <- Array.make (Array.length elems) unresolved;
        let cached = c.pc_indirect.(i) in
        if cached <> unresolved then cached
        else begin
          let r =
            match elems.(i) with
            | None -> -1
            | Some (Wasm_func (j, owner)) when owner == c.pc_inst -> c.pc_n_imp + j
            | Some f ->
              let rec scan i =
                if i >= c.pc_n_imp then -1
                else if c.pc_inst.inst_funcs.(i) == f then i
                else scan (i + 1)
              in
              scan 0
          in
          c.pc_indirect.(i) <- r;
          r
        end
      end

  let xbody_of c j =
    match c.pc_xbodies.(j) with
    | Some x -> x
    | None ->
      let x = unfused_xbody c.pc_inst.inst_code.(j) in
      c.pc_xbodies.(j) <- Some x;
      x

  (** Build the probed body of defined function [j] from the currently
      attached probe set: [None] when no active probe matches any event
      site in the function. Every synthesized event closure is a gate
      (the statically-matching probe entries' dynamic [should_fire])
      around the analysis callback, wrapped — only while a profiler is
      attached — in the ["hook.<group>"] / ["dispatch.probe"] /
      ["dispatch.analysis"] timing split. *)
  let build_hooks c ~(j : int) : probe_hooks option =
    let inst = c.pc_inst in
    let code = inst.inst_code.(j) in
    let fidx = c.pc_n_imp + j in
    let body = code.c_body in
    let n = Array.length body in
    let jumps = code.c_jumps in
    let st = inst.inst_stack in
    let peek d = Array.unsafe_get st.data (st.size - 1 - d) in
    let loc at = Location.make ~func:fidx ~instr:at in
    let mk_event ~group ~at (build : Analysis.t -> Value.t array -> unit) :
        (Value.t array -> unit) option =
      let gname = Hook.group_name group in
      match
        List.filter
          (fun (e : Obs.Probe.entry) ->
             Obs.Probe.site_matches e.Obs.Probe.e_spec ~group:gname ~func:fidx ~instr:at)
          (Obs.Probe.entries c.pc_mgr)
      with
      | [] -> None
      | es ->
        let fast = build c.pc_analysis in
        let profiled = lazy (build c.pc_marked) in
        let timer_key = "hook." ^ gname in
        let fired = Obs.Probe.fired_counter c.pc_mgr in
        Some
          (fun locals ->
             (* every matching entry counts the occurrence (no
                short-circuit): the [@nth] counters stay exact even
                when another entry already fires the event *)
             let fire =
               List.fold_left
                 (fun acc e -> Obs.Probe.should_fire e ~fired || acc)
                 false es
             in
             if fire then
               match c.pc_prof with
               | None -> fast locals
               | Some p ->
                 let t0 = Obs.Clock.now_ns () in
                 c.pc_mark := -1L;
                 (Lazy.force profiled) locals;
                 let t2 = Obs.Clock.now_ns () in
                 let t1 = if !(c.pc_mark) < 0L then t2 else !(c.pc_mark) in
                 Obs.Profile.add_time p timer_key (Int64.sub t2 t0);
                 Obs.Profile.add_time p "dispatch.probe" (Int64.sub t1 t0);
                 Obs.Profile.add_time p "dispatch.analysis" (Int64.sub t2 t1))
    in
    let pre = Array.make n [] and post = Array.make n [] in
    let any = ref false in
    let add_pre i f =
      any := true;
      pre.(i) <- f :: pre.(i)
    in
    let add_post i f =
      any := true;
      post.(i) <- f :: post.(i)
    in
    let add_pre_event i = function None -> () | Some f -> add_pre i f in
    let add_post_event i = function None -> () | Some f -> add_post i f in
    let ctrl = ref [ { k = Hook.Bfunction; cb = -1; ce = n } ] in
    let resolve_target l : Metadata.target =
      let e = List.nth !ctrl l in
      { Metadata.label = l; target_loc = loc (target_instr e) }
    in
    let ended_blocks l : Metadata.ended_block list =
      List.filteri (fun i _ -> i <= l) !ctrl
      |> List.map (fun e ->
        { Metadata.eb_kind = e.k; eb_end_loc = loc e.ce; eb_begin_instr = e.cb })
    in
    (* gated end-event closures of the blocks a branch exits, innermost
       first — each gated at its own reported location *)
    let end_events ended =
      List.filter_map
        (fun (eb : Metadata.ended_block) ->
           mk_event ~group:Hook.G_end ~at:eb.Metadata.eb_end_loc.Location.instr
             (fun a _ ->
                a.Analysis.end_ eb.Metadata.eb_end_loc eb.Metadata.eb_kind
                  (loc eb.Metadata.eb_begin_instr)))
        ended
    in
    let cond_of v = not (Int32.equal (Value.as_i32 v) 0l) in
    Array.iteri
      (fun at ins ->
         match ins with
         | Nop ->
           add_post_event at
             (mk_event ~group:Hook.G_nop ~at (fun a _ -> a.Analysis.nop (loc at)))
         | Unreachable ->
           add_pre_event at
             (mk_event ~group:Hook.G_unreachable ~at (fun a _ ->
                a.Analysis.unreachable (loc at)))
         | Block _ ->
           ctrl := { k = Hook.Bblock; cb = at; ce = jumps.end_of.(at) } :: !ctrl;
           add_post_event at
             (mk_event ~group:Hook.G_begin ~at (fun a _ ->
                a.Analysis.begin_ (loc at) Hook.Bblock))
         | Loop _ ->
           ctrl := { k = Hook.Bloop; cb = at; ce = jumps.end_of.(at) } :: !ctrl;
           (* on the loop-head slot, the back-branch target: fires once
              per iteration, like the AOT hook inside the loop *)
           add_pre_event (at + 1)
             (mk_event ~group:Hook.G_begin ~at (fun a _ ->
                a.Analysis.begin_ (loc at) Hook.Bloop))
         | If _ ->
           add_pre_event at
             (mk_event ~group:Hook.G_if ~at (fun a _ ->
                a.Analysis.if_ (loc at) (cond_of (peek 0))));
           ctrl := { k = Hook.Bif; cb = at; ce = jumps.end_of.(at) } :: !ctrl;
           (* first slot of the then-branch: fires only when the
              condition was true, like the AOT hook inside the branch *)
           add_pre_event (at + 1)
             (mk_event ~group:Hook.G_begin ~at (fun a _ ->
                a.Analysis.begin_ (loc at) Hook.Bif))
         | Else ->
           let e, rest =
             match !ctrl with
             | e :: rest -> (e, rest)
             | [] -> invalid_arg "else without open block"
           in
           ctrl := { e with k = Hook.Belse; cb = at } :: rest;
           (* reached only by the then-branch falling through *)
           add_pre_event at
             (mk_event ~group:Hook.G_end ~at (fun a _ ->
                a.Analysis.end_ (loc at) Hook.Bif (loc e.cb)));
           (* first slot of the else-branch: false-condition path only *)
           add_pre_event (at + 1)
             (mk_event ~group:Hook.G_begin ~at (fun a _ ->
                a.Analysis.begin_ (loc at) Hook.Belse))
         | End ->
           let e, rest =
             match !ctrl with
             | e :: rest -> (e, rest)
             | [] -> invalid_arg "unbalanced end"
           in
           ctrl := rest;
           add_pre_event at
             (mk_event ~group:Hook.G_end ~at (fun a _ ->
                a.Analysis.end_ (loc at) e.k (loc e.cb)))
         | Br l ->
           let t = resolve_target l in
           add_pre_event at
             (mk_event ~group:Hook.G_br ~at (fun a _ -> a.Analysis.br (loc at) t));
           List.iter (add_pre at) (end_events (ended_blocks l))
         | BrIf l ->
           let t = resolve_target l in
           add_pre_event at
             (mk_event ~group:Hook.G_br_if ~at (fun a _ ->
                a.Analysis.br_if (loc at) t (cond_of (peek 0))));
           (match end_events (ended_blocks l) with
            | [] -> ()
            | evs ->
              (* end events fire only when the branch is taken *)
              add_pre at (fun locals ->
                if cond_of (peek 0) then List.iter (fun f -> f locals) evs))
         | BrTable (ls, d) ->
           let entry l = (resolve_target l, ended_blocks l) in
           let targets_info = Array.of_list (List.map entry ls) in
           let default_info = entry d in
           let targets = Array.map fst targets_info in
           let default_t = fst default_info in
           let bt_event =
             mk_event ~group:Hook.G_br_table ~at (fun a _ ->
               a.Analysis.br_table (loc at) targets default_t
                 (Int32.to_int (Value.as_i32 (peek 0))))
           in
           let entry_ends = Array.map (fun (_, ended) -> end_events ended) targets_info in
           let default_ends = end_events (snd default_info) in
           let have_ends =
             (match default_ends with [] -> false | _ -> true)
             || Array.exists (function [] -> false | _ -> true) entry_ends
           in
           if bt_event <> None || have_ends then
             add_pre at (fun locals ->
               (match bt_event with None -> () | Some f -> f locals);
               if have_ends then begin
                 (* signed read, like the AOT dispatcher: a negative
                    index is >= 2^31 unsigned, out of range, default *)
                 let idx = Int32.to_int (Value.as_i32 (peek 0)) in
                 let ends =
                   if idx >= 0 && idx < Array.length entry_ends then entry_ends.(idx)
                   else default_ends
                 in
                 List.iter (fun f -> f locals) ends
               end)
         | Return ->
           let arity = code.c_arity in
           add_pre_event at
             (mk_event ~group:Hook.G_return ~at (fun a _ ->
                a.Analysis.return_ (loc at) (if arity = 0 then [] else [ peek 0 ])));
           List.iter (add_pre at) (end_events (ended_blocks (List.length !ctrl - 1)))
         | Call fi ->
           let ft = func_type_of inst.inst_funcs.(fi) in
           let np = List.length ft.Types.params in
           let nr = List.length ft.Types.results in
           add_pre_event at
             (mk_event ~group:Hook.G_call ~at (fun a _ ->
                let args = List.init np (fun i -> peek (np - 1 - i)) in
                a.Analysis.call_pre (loc at) fi args None));
           add_post_event at
             (mk_event ~group:Hook.G_call ~at (fun a _ ->
                a.Analysis.call_post (loc at) (if nr = 0 then [] else [ peek 0 ])))
         | CallIndirect ti ->
           let ft = inst.inst_types.(ti) in
           let np = List.length ft.Types.params in
           let nr = List.length ft.Types.results in
           add_pre_event at
             (mk_event ~group:Hook.G_call ~at (fun a _ ->
                let tbl = Value.as_i32 (peek 0) in
                let args = List.init np (fun i -> peek (np - i)) in
                a.Analysis.call_pre (loc at) (resolve_indirect_orig c tbl) args
                  (Some (Int32.to_int tbl))));
           add_post_event at
             (mk_event ~group:Hook.G_call ~at (fun a _ ->
                a.Analysis.call_post (loc at) (if nr = 0 then [] else [ peek 0 ])))
         | Drop ->
           add_pre_event at
             (mk_event ~group:Hook.G_drop ~at (fun a _ -> a.Analysis.drop (loc at) (peek 0)))
         | Select ->
           add_pre_event at
             (mk_event ~group:Hook.G_select ~at (fun a _ ->
                a.Analysis.select (loc at) (cond_of (peek 0)) (peek 2) (peek 1)))
         | LocalGet x | LocalSet x | LocalTee x ->
           let opn =
             Hook.local_op_name
               (match ins with
                | LocalGet _ -> Hook.Lget
                | LocalSet _ -> Hook.Lset
                | _ -> Hook.Ltee)
           in
           (* after the instruction the local holds the reported value
              for all three ops, like the AOT [local.get x] argument *)
           add_post_event at
             (mk_event ~group:Hook.G_local ~at (fun a locals ->
                a.Analysis.local (loc at) opn x locals.(x)))
         | GlobalGet x ->
           add_post_event at
             (mk_event ~group:Hook.G_global ~at (fun a _ ->
                a.Analysis.global (loc at) (Hook.global_op_name Hook.Gget) x (peek 0)))
         | GlobalSet x ->
           add_post_event at
             (mk_event ~group:Hook.G_global ~at (fun a _ ->
                a.Analysis.global (loc at) (Hook.global_op_name Hook.Gset) x
                  inst.inst_globals.(x).g_value))
         | Load op ->
           let opn = string_of_instr ins in
           let addr = ref 0l in
           (match
              mk_event ~group:Hook.G_load ~at (fun a _ ->
                a.Analysis.load (loc at) opn
                  { Analysis.addr = !addr; offset = op.loffset }
                  (peek 0))
            with
            | None -> ()
            | Some ev ->
              add_pre at (fun _ -> addr := Value.as_i32 (peek 0));
              add_post at ev)
         | Store op ->
           let opn = string_of_instr ins in
           let addr = ref 0l in
           let v = ref (Value.I32 0l) in
           (match
              mk_event ~group:Hook.G_store ~at (fun a _ ->
                a.Analysis.store (loc at) opn
                  { Analysis.addr = !addr; offset = op.soffset }
                  !v)
            with
            | None -> ()
            | Some ev ->
              add_pre at (fun _ ->
                v := peek 0;
                addr := Value.as_i32 (peek 1));
              add_post at ev)
         | MemorySize ->
           add_post_event at
             (mk_event ~group:Hook.G_memory_size ~at (fun a _ ->
                a.Analysis.memory_size (loc at) (Int32.to_int (Value.as_i32 (peek 0)))))
         | MemoryGrow ->
           let delta = ref 0 in
           (match
              mk_event ~group:Hook.G_memory_grow ~at (fun a _ ->
                a.Analysis.memory_grow (loc at) !delta
                  (Int32.to_int (Value.as_i32 (peek 0))))
            with
            | None -> ()
            | Some ev ->
              add_pre at (fun _ -> delta := Int32.to_int (Value.as_i32 (peek 0)));
              add_post at ev)
         | Const v ->
           add_post_event at
             (mk_event ~group:Hook.G_const ~at (fun a _ -> a.Analysis.const (loc at) v))
         | Test _ | Unary _ | Convert _ ->
           let opn = string_of_instr ins in
           let input = ref (Value.I32 0l) in
           (match
              mk_event ~group:Hook.G_unary ~at (fun a _ ->
                a.Analysis.unary (loc at) opn !input (peek 0))
            with
            | None -> ()
            | Some ev ->
              add_pre at (fun _ -> input := peek 0);
              add_post at ev)
         | Compare _ | Binary _ ->
           let opn = string_of_instr ins in
           let xa = ref (Value.I32 0l) in
           let xb = ref (Value.I32 0l) in
           (match
              mk_event ~group:Hook.G_binary ~at (fun a _ ->
                a.Analysis.binary (loc at) opn !xa !xb (peek 0))
            with
            | None -> ()
            | Some ev ->
              add_pre at (fun _ ->
                xb := peek 0;
                xa := peek 1);
              add_post at ev))
      body;
    let enter_evs =
      (if c.pc_start = Some fidx then
         match
           mk_event ~group:Hook.G_start ~at:(-1) (fun a _ -> a.Analysis.start (loc (-1)))
         with
         | None -> []
         | Some f -> [ f ]
       else [])
      @
      match
        mk_event ~group:Hook.G_begin ~at:(-1) (fun a _ ->
          a.Analysis.begin_ (loc (-1)) Hook.Bfunction)
      with
      | None -> []
      | Some f -> [ f ]
    in
    let exit_ev =
      mk_event ~group:Hook.G_end ~at:n (fun a _ ->
        a.Analysis.end_ (loc n) Hook.Bfunction (loc (-1)))
    in
    match (!any, enter_evs, exit_ev) with
    | false, [], None -> None
    | _ ->
      let compose = function
        | [] -> None
        | [ f ] -> Some f
        | fs -> Some (fun locals -> List.iter (fun f -> f locals) fs)
      in
      Some
        {
          pp_body = xbody_of c j;
          pp_pre = Array.map (fun fs -> compose (List.rev fs)) pre;
          pp_post = Array.map (fun fs -> compose (List.rev fs)) post;
          pp_enter = compose enter_evs;
          pp_exit = exit_ev;
        }

  (** Re-derive every probed body from the current probe set. Functions
      with at least one matching event site get a probed body (deopting
      any tier-1 closure); the rest return to normal tiered execution. *)
  let rebuild c =
    Array.iteri
      (fun j _ ->
         match build_hooks c ~j with
         | Some ph -> probe_function c.pc_inst j ph
         | None -> unprobe_function c.pc_inst j)
      c.pc_inst.inst_code

  let detach_all c =
    Obs.Probe.detach_all c.pc_mgr;
    rebuild c

  (** Create a probe controller for an instance of an {e uninstrumented}
      module and register its snapshot-facing view on the instance:
      [Snapshot.capture] records the attached spec set, restore re-arms
      exactly that set (fresh hit counters). *)
  let create ?registry (inst : instance) (analysis : Analysis.t) : controller =
    let mark = ref (-1L) in
    let c =
      {
        pc_inst = inst;
        pc_analysis = analysis;
        pc_marked = with_mark mark analysis;
        pc_mark = mark;
        pc_mgr = Obs.Probe.create ?registry ();
        pc_prof = None;
        pc_indirect = [||];
        pc_n_imp = num_imported_funcs inst.inst_module;
        pc_start = inst.inst_module.start;
        pc_xbodies = Array.make (Array.length inst.inst_code) None;
      }
    in
    set_probes inst
      (Some
         {
           ps_capture =
             (fun () ->
                let specs =
                  List.map (fun (e : Obs.Probe.entry) -> e.Obs.Probe.e_spec)
                    (Obs.Probe.entries c.pc_mgr)
                in
                fun () ->
                  Obs.Probe.detach_all c.pc_mgr;
                  List.iter (fun sp -> ignore (Obs.Probe.attach c.pc_mgr sp)) specs;
                  rebuild c);
           ps_detach_all = (fun () -> detach_all c);
         });
    c

  let attach c spec =
    let e = Obs.Probe.attach c.pc_mgr spec in
    rebuild c;
    e

  let detach c e =
    Obs.Probe.detach c.pc_mgr e;
    rebuild c

  (** Parse and validate a probe spec: syntax via {!Obs.Probe.parse_spec},
      group names against the hook vocabulary. *)
  let validate_spec (s : string) : (Obs.Probe.spec, string) result =
    match Obs.Probe.parse_spec s with
    | Error m -> Error m
    | Ok sp ->
      let unknown =
        List.filter
          (fun g ->
             match Hook.group_of_name g with
             | exception Invalid_argument _ -> true
             | _ -> false)
          sp.Obs.Probe.sp_groups
      in
      (match unknown with
       | [] -> Ok sp
       | g :: _ -> Error (Printf.sprintf "unknown hook group %S" g))

  let attach_spec c s =
    match validate_spec s with
    | Error _ as e -> e
    | Ok sp -> Ok (attach c sp)

  (** Attach [spec] once the instance's step counter first reaches
      [step] (checked at batch charge boundaries on every tier). *)
  let attach_at c ~step spec =
    add_step_trigger c.pc_inst ~at:step (fun () -> ignore (attach c spec))

  let detach_at c ~step e = add_step_trigger c.pc_inst ~at:step (fun () -> detach c e)

  (** Attach (or detach) a profiler to the controller's dispatch timing
      and to the instance (per-function and per-run accounting). Probe
      dispatch splits into ["dispatch.probe"] (gate + operand capture up
      to the first analysis-callback entry) and ["dispatch.analysis"]. *)
  let attach_profiler c p =
    c.pc_prof <- p;
    set_profiler c.pc_inst p

  let entries c = Obs.Probe.entries c.pc_mgr
  let all_entries c = Obs.Probe.all_entries c.pc_mgr
  let manager c = c.pc_mgr
end
