(** Code locations reported to analyses: a function index and an
    instruction index within that function, both referring to the
    *original* (uninstrumented) module.

    Following the paper's abstract control stack (Figure 6), the implicit
    beginning of a function body is instruction [-1] and its implicit end
    is [length of the body]. *)

type t = {
  func : int;
  instr : int;
}

let make ~func ~instr = { func; instr }

let compare a b =
  match Int.compare a.func b.func with
  | 0 -> Int.compare a.instr b.instr
  | c -> c

let equal a b = compare a b = 0
let to_string { func; instr } = Printf.sprintf "%d:%d" func instr
let pp fmt l = Format.pp_print_string fmt (to_string l)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
