(** The Wasabi binary instrumenter (paper, Section 2.4): inserts calls to
    imported low-level hooks around every instruction of the selected
    groups, following Table 3 of the paper. The instrumented module
    faithfully preserves the original behaviour, including its memory. *)

type result = {
  instrumented : Wasm.Ast.module_;
  metadata : Metadata.t;
  hook_map : Hook.Map.t;
}

val instrument :
  ?groups:Hook.Group_set.t -> ?split_i64:bool -> ?domains:int ->
  ?prune_unreachable:bool -> Wasm.Ast.module_ -> result
(** Instrument for the given hook groups (default: all). [split_i64]
    (default [true]) splits i64 hook arguments into two i32 halves, as
    required when the analysis host is JavaScript; [false] is the
    native-host ablation. [domains] (default 1) instruments functions in
    parallel — the monomorphization map is the only shared state and is
    mutex-guarded, mirroring the paper's Section 3. [prune_unreachable]
    (default [false]) consults the static call graph and leaves functions
    unreachable from any export/start root uninstrumented (their bodies
    are kept verbatim, only call sites are remapped); the skipped indices
    are recorded in [Metadata.pruned_funcs]. The input module must be
    valid; the output module validates and imports its hooks from
    [Hook.import_module]. *)

val remap_index : n_imp:int -> n_orig:int -> h:int -> int -> int
(** The function-index remapping applied after hook imports are inserted
    (exposed for tests): original imports keep their indices, hooks take
    the next [h] indices, defined functions shift up by [h]. *)
