(** The Wasabi binary instrumenter (paper, Section 2.4): inserts calls to
    imported low-level hooks around every instruction of the selected
    groups, following Table 3 of the paper. The instrumented module
    faithfully preserves the original behaviour, including its memory. *)

type result = {
  instrumented : Wasm.Ast.module_;
  metadata : Metadata.t;
  hook_map : Hook.Map.t;
}

val instrument :
  ?groups:Hook.Group_set.t -> ?split_i64:bool -> ?domains:int ->
  ?prune_unreachable:bool -> ?fold:bool -> Wasm.Ast.module_ -> result
(** Instrument for the given hook groups (default: all). [split_i64]
    (default [true]) splits i64 hook arguments into two i32 halves, as
    required when the analysis host is JavaScript; [false] is the
    native-host ablation. [domains] (default 1) instruments functions in
    parallel — the monomorphization map is the only shared state and is
    mutex-guarded, mirroring the paper's Section 3. [prune_unreachable]
    (default [false]) consults the static call graph and leaves functions
    unreachable from any export/start root uninstrumented (their bodies
    are kept verbatim, only call sites are remapped); the skipped indices
    are recorded in [Metadata.pruned_funcs]. [fold] (default [false]) runs
    the whole-module abstract interpretation ({!Static.Absint}) first and
    discharges hook sites statically: sites proven unreachable keep their
    instruction verbatim with no hooks, and hook value arguments proven
    constant are passed as immediates instead of being duplicated through
    temp locals ([Metadata.folded]; with [prune_unreachable] it also
    prunes against the precise call graph). The input module must be
    valid; the output module validates and imports its hooks from
    [Hook.import_module]. *)

val static_fold_args :
  Static.Absint.t -> func:int -> at:int -> Wasm.Ast.instr -> Wasm.Value.t list option
(** Hook value arguments provable constant at [func:at] from
    abstract-interpretation facts, in hook-argument order; [None] when
    they are not all singletons (or the instruction's hook takes no
    foldable value arguments). Exposed so {!Lint} can recompute and check
    every [Metadata.F_args] claim against the original module. *)

val remap_index : n_imp:int -> n_orig:int -> h:int -> int -> int
(** The function-index remapping applied after hook imports are inserted
    (exposed for tests): original imports keep their indices, hooks take
    the next [h] indices, defined functions shift up by [h]. *)
