(** Code locations reported to analyses: a function index and an
    instruction index within that function, both referring to the
    {e original} (uninstrumented) module. The implicit begin of a function
    body is instruction [-1] and its implicit end is the body length
    (paper, Figure 6). *)

type t = {
  func : int;
  instr : int;
}

val make : func:int -> instr:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
