(** The Wasabi binary instrumenter (paper, Section 2.4).

    Given a module and a set of hook {e groups} (selective
    instrumentation), produces a new module in which every instruction of
    an enabled group is surrounded by calls to imported low-level hooks.
    The transformation follows Table 3 of the paper:

    - values consumed or produced by an instruction are duplicated through
      freshly generated locals and passed to the hook;
    - hooks are imported functions, monomorphized on demand (one per
      instruction mnemonic and concrete type variant);
    - relative branch labels are resolved to absolute instruction
      locations with an abstract control stack;
    - branches and returns additionally invoke the [end] hooks of every
      block they jump out of ([br_table] entries are extracted statically
      and selected at runtime via {!Metadata});
    - i64 values are split into two i32 halves before being passed to a
      hook.

    Adding the hook imports shifts the indices of all originally defined
    functions, so instrumented code initially calls hooks through
    placeholder indices which a final pass remaps (along with all original
    call sites, element segments, exports and the start function). *)

open Wasm
open Wasm.Types
open Wasm.Ast
open Hook
module Tracker = Validate.Stack_tracker

type result = {
  instrumented : module_;
  metadata : Metadata.t;
  hook_map : Hook.Map.t;
}

(** Abstract control stack entry (paper, Figure 6). *)
type ctrl_entry = {
  ce_kind : Hook.block_kind;
  ce_begin : int;  (** instruction index of the block begin; -1 for the function *)
  ce_end : int;  (** instruction index of the matching [End]; body length for the function *)
}

type fctx = {
  fidx : int;  (** function-space index of the function being instrumented *)
  groups : Hook.Group_set.t;
  hooks : Hook.Map.t;
  placeholder_base : int;  (** hook k is called as function [placeholder_base + k] *)
  tracker : Tracker.t;
  mutable ctrl : ctrl_entry list;
  temp_tbl : (value_type * int, int) Hashtbl.t;
  hook_cache : (Hook.spec, int) Hashtbl.t;
      (** per-function cache over the shared, mutex-guarded map *)
  req_counts : (Hook.spec, int ref) Hashtbl.t;
      (** hook requests by this function, flushed to the shared map in one
          batch when the function is done (monomorphization-cache stats) *)
  mutable extra_locals : value_type list;  (** reversed *)
  mutable n_extra : int;
  first_temp : int;
  split_i64 : bool;
  mutable br_tables : Metadata.br_table_info list;
  mutable dead_skipped : int list;
      (** instruction indices where instrumentation was skipped because the
          stack type is polymorphic (statically-unreachable code) *)
  facts : Static.Absint.t option;
      (** whole-module abstract-interpretation facts ([~fold] mode);
          read-only, so safe to share across instrumentation domains *)
  mutable folded : (int * Value.t list option) list;
      (** hook sites discharged statically: [(at, None)] = proven dead,
          [(at, Some vs)] = hook value arguments proven constant *)
}

(** A branch/return in statically-unreachable code: its operand types are
    polymorphic, so no hook arguments can be materialised. The site is
    recorded so the lint can surface it instead of a silent fallthrough. *)
let skip_dead c ~at plain =
  c.dead_skipped <- at :: c.dead_skipped;
  plain

let enabled c g = Hook.Group_set.mem g c.groups

(** Fresh (or reused) local of type [ty]; [slot] distinguishes temporaries
    that must coexist within one instrumented instruction. Temporaries are
    reused across instructions, so each function gains only a handful of
    locals. *)
let temp c ty slot =
  match Hashtbl.find_opt c.temp_tbl (ty, slot) with
  | Some i -> i
  | None ->
    let i = c.first_temp + c.n_extra in
    c.n_extra <- c.n_extra + 1;
    c.extra_locals <- ty :: c.extra_locals;
    Hashtbl.add c.temp_tbl (ty, slot) i;
    i

let iconst k = Const (Value.i32_of_int k)

(** Push the value held in local [l] (of type [ty]) as hook argument(s):
    i64 values are split into low and high i32 halves (Table 3, row 6)
    unless splitting is disabled (native-host ablation). *)
let push_local ?(split = true) ty l =
  match ty with
  | I64T when split ->
    [ LocalGet l; Convert I32WrapI64;
      LocalGet l; Const (Value.I64 32L); Binary (IBin (S64, ShrS)); Convert I32WrapI64 ]
  | _ -> [ LocalGet l ]

(** Push an immediate as hook argument(s); for i64 the paper's row 6
    sequence (duplicate, wrap / shift, wrap) is emitted. *)
let push_const_split ?(split = true) v =
  match v with
  | Value.I64 _ when split ->
    [ Const v; Convert I32WrapI64;
      Const v; Const (Value.I64 32L); Binary (IBin (S64, ShrS)); Convert I32WrapI64 ]
  | _ -> [ Const v ]

(** Hook value arguments provable constant at instruction [at] from
    whole-module abstract-interpretation facts, in hook-argument order.
    [None] when the arguments are not all singletons or the instruction's
    hook takes no foldable value arguments. Facts {e before} [at] describe
    the operands an instruction consumes; facts before [at + 1] describe
    the value it pushes (joins at block boundaries only widen, so a
    singleton there is still exact). Shared with {!Lint}, which recomputes
    this on the original module to verify [Metadata.F_args] claims. *)
let static_fold_args fx ~func ~at (ins : instr) : Value.t list option =
  let v depth = Static.Interval.singleton (Static.Absint.value_at fx ~func ~pc:at ~depth) in
  let next depth =
    Static.Interval.singleton (Static.Absint.value_at fx ~func ~pc:(at + 1) ~depth)
  in
  match ins with
  | If _ | BrIf _ | BrTable _ | Drop | LocalSet _ | LocalTee _ | GlobalSet _ | Return ->
    (* the consumed operand: top of stack before the instruction *)
    (match v 0 with Some x -> Some [ x ] | None -> None)
  | LocalGet _ | GlobalGet _ ->
    (* the produced value: top of stack after the instruction *)
    (match next 0 with Some x -> Some [ x ] | None -> None)
  | Test _ | Unary _ | Convert _ ->
    (match v 0, next 0 with Some a, Some r -> Some [ a; r ] | _ -> None)
  | Compare _ | Binary _ ->
    (match v 1, v 0, next 0 with
     | Some a, Some b, Some r -> Some [ a; b; r ]
     | _ -> None)
  | _ -> None

(** Constant hook arguments for this site, when folding is on and the
    abstract-interpretation facts pin every runtime value argument. *)
let fold_args c ~at ins =
  match c.facts with
  | None -> None
  | Some fx -> static_fold_args fx ~func:c.fidx ~at ins

let record_fold c ~at vs = c.folded <- (at, Some vs) :: c.folded

(** Call hook [spec] at source location [at], with [args] already
    flattened (each element pushes the corresponding hook arguments). *)
let hook_ordinal c spec =
  (match Hashtbl.find_opt c.req_counts spec with
   | Some r -> incr r
   | None -> Hashtbl.add c.req_counts spec (ref 1));
  match Hashtbl.find_opt c.hook_cache spec with
  | Some k -> k
  | None ->
    let k = Hook.Map.ordinal c.hooks spec in
    Hashtbl.add c.hook_cache spec k;
    k

let hook_call c ~at spec args =
  let k = hook_ordinal c spec in
  (iconst c.fidx :: iconst at :: List.concat args) @ [ Call (c.placeholder_base + k) ]

(** Instruction index executed next if a branch to [e] is taken. *)
let target_instr (e : ctrl_entry) =
  match e.ce_kind with
  | Hook.Bloop -> e.ce_begin + 1
  | Hook.Bfunction -> e.ce_end  (* the implicit end of the function *)
  | Hook.Bblock | Hook.Bif | Hook.Belse -> e.ce_end + 1

let ctrl_at c l =
  match List.nth_opt c.ctrl l with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "branch label %d exceeds control stack" l)

let resolve_target c l : Metadata.target =
  let e = ctrl_at c l in
  { Metadata.label = l; target_loc = Location.make ~func:c.fidx ~instr:(target_instr e) }

(** Blocks exited by a taken branch with label [l]: control-stack entries
    0..l, innermost first (paper, Section 2.4.5). *)
let ended_blocks c l =
  List.filteri (fun i _ -> i <= l) c.ctrl
  |> List.map (fun e ->
    { Metadata.eb_kind = e.ce_kind;
      eb_end_loc = Location.make ~func:c.fidx ~instr:e.ce_end;
      eb_begin_instr = e.ce_begin })

(** Explicit calls to the [end] hooks of all blocks a branch jumps out of. *)
let end_hook_calls c (ended : Metadata.ended_block list) =
  List.concat_map
    (fun (eb : Metadata.ended_block) ->
       hook_call c ~at:eb.Metadata.eb_end_loc.Location.instr (Hook.S_end eb.eb_kind)
         [ [ iconst eb.eb_begin_instr ] ])
    ended

let known_peek c n =
  match Tracker.peek c.tracker n with
  | Validate.Known t -> Some t
  | Validate.Unknown -> None

(** The save / call-pre / restore / call / save / call-post / restore
    sequence for direct and indirect calls (Table 3, row 3). *)
let instrument_call c ~at ~(ft : func_type) ~callee_arg ~indirect ~original =
  let n = List.length ft.params in
  let param_temps = List.mapi (fun j ty -> (ty, temp c ty j)) ft.params in
  let saves = List.rev_map (fun (_, t) -> LocalSet t) param_temps in
  let restores = List.map (fun (_, t) -> LocalGet t) param_temps in
  let arg_pushes = List.map (fun (ty, t) -> push_local ~split:c.split_i64 ty t) param_temps in
  let idx_save, idx_restore, idx_push =
    if indirect then
      let ti = temp c I32T n in
      ([ LocalSet ti ], [ LocalGet ti ], [ LocalGet ti ])
    else ([], [], callee_arg)
  in
  let pre_hook =
    hook_call c ~at (Hook.S_call_pre (ft.params, indirect)) (idx_push :: arg_pushes)
  in
  let post =
    match ft.results with
    | [] -> hook_call c ~at (Hook.S_call_post []) []
    | [ rt ] ->
      let tr = temp c rt (n + 1) in
      LocalTee tr :: hook_call c ~at (Hook.S_call_post [ rt ]) [ push_local ~split:c.split_i64 rt tr ]
    | _ -> invalid_arg "multiple results not supported"
  in
  idx_save @ saves @ pre_hook @ restores @ idx_restore @ [ original ] @ post

(** Instrument one original instruction at index [at], returning the
    replacement sequence. Must be called before [Tracker.step] for this
    instruction (it inspects the abstract stack), and takes care of the
    control-stack bookkeeping itself. *)
let instrument_instr_live c ~at (ins : instr) (jumps : Interp.jump_info) : instr list =
  let plain = [ ins ] in
  match ins with
  | Nop ->
    if enabled c G_nop then ins :: hook_call c ~at S_nop [] else plain
  | Unreachable ->
    if enabled c G_unreachable then hook_call c ~at S_unreachable [] @ plain else plain
  | Block _ ->
    c.ctrl <- { ce_kind = Bblock; ce_begin = at; ce_end = jumps.Interp.end_of.(at) } :: c.ctrl;
    if enabled c G_begin then ins :: hook_call c ~at (S_begin Bblock) [] else plain
  | Loop _ ->
    c.ctrl <- { ce_kind = Bloop; ce_begin = at; ce_end = jumps.Interp.end_of.(at) } :: c.ctrl;
    (* the hook sits inside the loop: it fires once per iteration *)
    if enabled c G_begin then ins :: hook_call c ~at (S_begin Bloop) [] else plain
  | If _ ->
    let cond_hook =
      if enabled c G_if then
        match fold_args c ~at ins with
        | Some [ k ] ->
          (* constant condition: pass it as an immediate, no duplication *)
          record_fold c ~at [ k ];
          hook_call c ~at S_if_cond [ [ Const k ] ]
        | _ ->
          (match known_peek c 0 with
           | Some _ ->
             let tc = temp c I32T 0 in
             LocalTee tc :: hook_call c ~at S_if_cond [ [ LocalGet tc ] ]
           | None -> [])
      else []
    in
    c.ctrl <- { ce_kind = Bif; ce_begin = at; ce_end = jumps.Interp.end_of.(at) } :: c.ctrl;
    let begin_hook = if enabled c G_begin then hook_call c ~at (S_begin Bif) [] else [] in
    cond_hook @ [ ins ] @ begin_hook
  | Else ->
    let e, rest =
      match c.ctrl with
      | e :: rest -> (e, rest)
      | [] -> invalid_arg "else without open block"
    in
    (* the then-branch ends here; the else-branch begins *)
    c.ctrl <- { e with ce_kind = Belse; ce_begin = at } :: rest;
    let end_hook =
      if enabled c G_end then hook_call c ~at (S_end Bif) [ [ iconst e.ce_begin ] ] else []
    in
    let begin_hook = if enabled c G_begin then hook_call c ~at (S_begin Belse) [] else [] in
    end_hook @ [ ins ] @ begin_hook
  | End ->
    let e, rest =
      match c.ctrl with
      | e :: rest -> (e, rest)
      | [] -> invalid_arg "unbalanced end"
    in
    c.ctrl <- rest;
    let kind = e.ce_kind in
    if enabled c G_end then
      hook_call c ~at (S_end kind) [ [ iconst e.ce_begin ] ] @ [ ins ]
    else plain
  | Br l ->
    let br_hook =
      if enabled c G_br then
        let t = resolve_target c l in
        hook_call c ~at S_br [ [ iconst l ]; [ iconst t.Metadata.target_loc.Location.instr ] ]
      else []
    in
    let ends = if enabled c G_end then end_hook_calls c (ended_blocks c l) else [] in
    br_hook @ ends @ plain
  | BrIf l ->
    let need_cond = enabled c G_br_if || enabled c G_end in
    if not need_cond then plain
    else begin
      match fold_args c ~at ins with
      | Some [ Value.I32 k as kv ] ->
        (* constant condition: the branch outcome is statically decided,
           so the end hooks need no runtime guard *)
        record_fold c ~at [ kv ];
        let hook =
          if enabled c G_br_if then
            let t = resolve_target c l in
            hook_call c ~at S_br_if
              [ [ iconst l ];
                [ iconst t.Metadata.target_loc.Location.instr ];
                [ Const kv ] ]
          else []
        in
        let ends =
          if enabled c G_end && k <> 0l then end_hook_calls c (ended_blocks c l)
          else []
        in
        hook @ ends @ plain
      | _ ->
      match known_peek c 0 with
      | None -> skip_dead c ~at plain
      | Some _ ->
        let tc = temp c I32T 0 in
        let hook =
          if enabled c G_br_if then
            let t = resolve_target c l in
            hook_call c ~at S_br_if
              [ [ iconst l ];
                [ iconst t.Metadata.target_loc.Location.instr ];
                [ LocalGet tc ] ]
          else []
        in
        let ends =
          if enabled c G_end then
            match end_hook_calls c (ended_blocks c l) with
            | [] -> []
            | calls -> (LocalGet tc :: If None :: calls) @ [ End ]
          else []
        in
        (LocalTee tc :: hook) @ ends @ plain
    end
  | BrTable (ls, d) ->
    let entry l = (resolve_target c l, ended_blocks c l) in
    let info =
      { Metadata.bt_loc = Location.make ~func:c.fidx ~instr:at;
        bt_targets = Array.of_list (List.map entry ls);
        bt_default = entry d }
    in
    if enabled c G_br_table || enabled c G_end then begin
      match known_peek c 0 with
      | None -> skip_dead c ~at plain
      | Some _ ->
        c.br_tables <- info :: c.br_tables;
        (* end hooks are selected and called at runtime from the metadata *)
        (match fold_args c ~at ins with
         | Some [ kv ] ->
           record_fold c ~at [ kv ];
           hook_call c ~at S_br_table [ [ Const kv ] ] @ plain
         | _ ->
           let ti = temp c I32T 0 in
           (LocalTee ti :: hook_call c ~at S_br_table [ [ LocalGet ti ] ]) @ plain)
    end
    else plain
  | Return ->
    let want_ret = enabled c G_return in
    let want_end = enabled c G_end in
    if not (want_ret || want_end) then plain
    else begin
      let results = (Tracker.results c.tracker : value_type list) in
      (* the end-hook calls are stack neutral, so the result value only
         needs saving around the return hook itself *)
      let save_restore_hook =
        match results with
        | [] -> Some ([], [], fun () -> hook_call c ~at (Hook.S_return []) [])
        | _ when not want_ret -> Some ([], [], fun () -> [])
        | [ rt ] ->
          (match fold_args c ~at ins with
           | Some [ v ] ->
             (* constant result: no save/restore around the hook *)
             record_fold c ~at [ v ];
             Some
               ( [], [],
                 fun () ->
                   hook_call c ~at (Hook.S_return [ rt ])
                     [ push_const_split ~split:c.split_i64 v ] )
           | _ ->
           match known_peek c 0 with
           | None ->
             c.dead_skipped <- at :: c.dead_skipped;
             None
           | Some _ ->
             let tr = temp c rt 0 in
             Some
               ( [ LocalSet tr ],
                 [ LocalGet tr ],
                 fun () ->
                   hook_call c ~at (Hook.S_return [ rt ])
                     [ push_local ~split:c.split_i64 rt tr ] ))
        | _ -> invalid_arg "multiple results not supported"
      in
      match save_restore_hook with
      | None -> plain
      | Some (save, restore, make_ret_hook) ->
        let ends =
          if want_end then end_hook_calls c (ended_blocks c (List.length c.ctrl - 1))
          else []
        in
        let hook = if want_ret then make_ret_hook () else [] in
        if hook = [] && ends = [] then plain
        else save @ hook @ ends @ restore @ plain
    end
  | Call f ->
    if enabled c G_call then
      let ft = Tracker.func_type c.tracker f in
      instrument_call c ~at ~ft ~callee_arg:[ iconst f ] ~indirect:false ~original:ins
    else plain
  | CallIndirect ti ->
    if enabled c G_call then
      let ft = Tracker.type_at c.tracker ti in
      instrument_call c ~at ~ft ~callee_arg:[] ~indirect:true ~original:ins
    else plain
  | Drop ->
    if enabled c G_drop then
      match known_peek c 0 with
      | None -> plain
      | Some ty ->
        (match fold_args c ~at ins with
         | Some [ v ] ->
           record_fold c ~at [ v ];
           ins :: hook_call c ~at (S_drop ty) [ push_const_split ~split:c.split_i64 v ]
         | _ ->
           let t = temp c ty 0 in
           (* the hook consumes the value in place of the drop (Table 3, row 4) *)
           LocalSet t :: hook_call c ~at (S_drop ty) [ push_local ~split:c.split_i64 ty t ])
    else plain
  | Select ->
    if enabled c G_select then
      match known_peek c 1, known_peek c 2 with
      | Some ty, _ | _, Some ty ->
        let tc = temp c I32T 0 in
        let t2 = temp c ty 1 in
        let t1 = temp c ty 2 in
        [ LocalSet tc; LocalSet t2; LocalSet t1 ]
        @ hook_call c ~at (S_select ty)
            [ [ LocalGet tc ]; push_local ~split:c.split_i64 ty t1; push_local ~split:c.split_i64 ty t2 ]
        @ [ LocalGet t1; LocalGet t2; LocalGet tc; Select ]
      | None, None -> plain
    else plain
  | LocalGet x | LocalSet x | LocalTee x ->
    if enabled c G_local then begin
      let ty = Tracker.local_type c.tracker x in
      let op =
        match ins with
        | LocalGet _ -> Lget
        | LocalSet _ -> Lset
        | _ -> Ltee
      in
      let value_arg =
        match fold_args c ~at ins with
        | Some [ v ] ->
          record_fold c ~at [ v ];
          push_const_split ~split:c.split_i64 v
        | _ -> push_local ~split:c.split_i64 ty x
      in
      ins :: hook_call c ~at (S_local (op, ty)) [ [ iconst x ]; value_arg ]
    end
    else plain
  | GlobalGet x ->
    if enabled c G_global then begin
      let ty = (Tracker.global_type c.tracker x).content in
      match fold_args c ~at ins with
      | Some [ v ] ->
        record_fold c ~at [ v ];
        ins
        :: hook_call c ~at (S_global (Gget, ty))
             [ [ iconst x ]; push_const_split ~split:c.split_i64 v ]
      | _ ->
        let t = temp c ty 0 in
        [ ins; LocalTee t ]
        @ hook_call c ~at (S_global (Gget, ty)) [ [ iconst x ]; push_local ~split:c.split_i64 ty t ]
    end
    else plain
  | GlobalSet x ->
    if enabled c G_global then begin
      let ty = (Tracker.global_type c.tracker x).content in
      match fold_args c ~at ins with
      | Some [ v ] ->
        record_fold c ~at [ v ];
        ins
        :: hook_call c ~at (S_global (Gset, ty))
             [ [ iconst x ]; push_const_split ~split:c.split_i64 v ]
      | _ ->
        let t = temp c ty 0 in
        [ LocalTee t; ins ]
        @ hook_call c ~at (S_global (Gset, ty)) [ [ iconst x ]; push_local ~split:c.split_i64 ty t ]
    end
    else plain
  | Load op ->
    if enabled c G_load then
      let ta = temp c I32T 0 in
      let tv = temp c op.lty 1 in
      [ LocalTee ta; ins; LocalTee tv ]
      @ hook_call c ~at (S_load (string_of_instr ins, op.lty))
          [ [ LocalGet ta ]; [ iconst op.loffset ]; push_local ~split:c.split_i64 op.lty tv ]
    else plain
  | Store op ->
    if enabled c G_store then
      let tv = temp c op.sty 1 in
      let ta = temp c I32T 0 in
      [ LocalSet tv; LocalTee ta; LocalGet tv; ins ]
      @ hook_call c ~at (S_store (string_of_instr ins, op.sty))
          [ [ LocalGet ta ]; [ iconst op.soffset ]; push_local ~split:c.split_i64 op.sty tv ]
    else plain
  | MemorySize ->
    if enabled c G_memory_size then
      let t = temp c I32T 0 in
      [ ins; LocalTee t ] @ hook_call c ~at S_memory_size [ [ LocalGet t ] ]
    else plain
  | MemoryGrow ->
    if enabled c G_memory_grow then
      let td = temp c I32T 0 in
      let tp = temp c I32T 1 in
      [ LocalTee td; ins; LocalTee tp ]
      @ hook_call c ~at S_memory_grow [ [ LocalGet td ]; [ LocalGet tp ] ]
    else plain
  | Const v ->
    if enabled c G_const then
      ins :: hook_call c ~at (S_const (Value.type_of v)) [ push_const_split ~split:c.split_i64 v ]
    else plain
  | Test _ | Unary _ | Convert _ ->
    if enabled c G_unary then begin
      let it, rt =
        match ins with
        | Test (IEqz sz) -> (num_type_of_isize sz, I32T)
        | Unary (IUn (sz, _)) -> (num_type_of_isize sz, num_type_of_isize sz)
        | Unary (FUn (sz, _)) -> (num_type_of_fsize sz, num_type_of_fsize sz)
        | Convert op ->
          let f, t = Tracker.cvt_types op in
          (f, t)
        | _ -> assert false
      in
      match fold_args c ~at ins with
      | Some [ vin; vres ] ->
        record_fold c ~at [ vin; vres ];
        ins
        :: hook_call c ~at (S_unary (string_of_instr ins, it, rt))
             [ push_const_split ~split:c.split_i64 vin;
               push_const_split ~split:c.split_i64 vres ]
      | _ ->
        let t_in = temp c it 0 in
        let t_res = temp c rt 1 in
        [ LocalTee t_in; ins; LocalTee t_res ]
        @ hook_call c ~at (S_unary (string_of_instr ins, it, rt))
            [ push_local ~split:c.split_i64 it t_in; push_local ~split:c.split_i64 rt t_res ]
    end
    else plain
  | Compare _ | Binary _ ->
    if enabled c G_binary then begin
      let ot, rt =
        match ins with
        | Compare (IRel (sz, _)) -> (num_type_of_isize sz, I32T)
        | Compare (FRel (sz, _)) -> (num_type_of_fsize sz, I32T)
        | Binary (IBin (sz, _)) -> (num_type_of_isize sz, num_type_of_isize sz)
        | Binary (FBin (sz, _)) -> (num_type_of_fsize sz, num_type_of_fsize sz)
        | _ -> assert false
      in
      match fold_args c ~at ins with
      | Some [ va; vb; vr ] ->
        record_fold c ~at [ va; vb; vr ];
        ins
        :: hook_call c ~at (S_binary (string_of_instr ins, ot, ot, rt))
             [ push_const_split ~split:c.split_i64 va;
               push_const_split ~split:c.split_i64 vb;
               push_const_split ~split:c.split_i64 vr ]
      | _ ->
        let ta = temp c ot 0 in
        let tb = temp c ot 1 in
        let tr = temp c rt 2 in
        [ LocalSet tb; LocalTee ta; LocalGet tb; ins; LocalTee tr ]
        @ hook_call c ~at (S_binary (string_of_instr ins, ot, ot, rt))
            [ push_local ~split:c.split_i64 ot ta; push_local ~split:c.split_i64 ot tb; push_local ~split:c.split_i64 rt tr ]
    end
    else plain

(** Would any enabled group emit hooks at this instruction? Used to
    decide whether dropping the hooks of a statically-dead site is worth
    recording. Structured control instructions are excluded: their arms
    also maintain the control stack, so they are never dead-folded. *)
let would_hook c = function
  | Block _ | Loop _ | If _ | Else | End -> false
  | Nop -> enabled c G_nop
  | Unreachable -> enabled c G_unreachable
  | Br _ -> enabled c G_br || enabled c G_end
  | BrIf _ -> enabled c G_br_if || enabled c G_end
  | BrTable _ -> enabled c G_br_table || enabled c G_end
  | Return -> enabled c G_return || enabled c G_end
  | Call _ | CallIndirect _ -> enabled c G_call
  | Drop -> enabled c G_drop
  | Select -> enabled c G_select
  | LocalGet _ | LocalSet _ | LocalTee _ -> enabled c G_local
  | GlobalGet _ | GlobalSet _ -> enabled c G_global
  | Load _ -> enabled c G_load
  | Store _ -> enabled c G_store
  | MemorySize -> enabled c G_memory_size
  | MemoryGrow -> enabled c G_memory_grow
  | Const _ -> enabled c G_const
  | Test _ | Unary _ | Convert _ -> enabled c G_unary
  | Compare _ | Binary _ -> enabled c G_binary

(** In [~fold] mode a site the abstract interpretation proves unreachable
    keeps its instruction verbatim: no hook can ever fire there, so none
    is emitted ([Metadata.F_dead], verified by the lint against the
    recomputed facts). Everything else goes through the normal per-arm
    instrumentation (which may still fold constant arguments). *)
let instrument_instr c ~at (ins : instr) (jumps : Interp.jump_info) : instr list =
  match c.facts with
  | Some fx when would_hook c ins && not (Static.Absint.live fx ~func:c.fidx ~pc:at) ->
    c.folded <- (at, None) :: c.folded;
    [ ins ]
  | _ -> instrument_instr_live c ~at ins jumps

let instrument_func ~groups ~hooks ~placeholder_base ~split_i64 ~vctx ~fidx ~is_start
    ~facts (f : func)
    : func * Metadata.br_table_info list * int list * (int * Value.t list option) list =
  let body = Array.of_list f.body in
  let jumps = Interp.compute_jumps body in
  let params = vctx.Validate.Module_ctx.types.(f.ftype).params in
  let c = {
    fidx;
    groups;
    hooks;
    placeholder_base;
    tracker = Tracker.create_in vctx f;
    ctrl = [ { ce_kind = Bfunction; ce_begin = -1; ce_end = Array.length body } ];
    temp_tbl = Hashtbl.create 8;
    hook_cache = Hashtbl.create 32;
    req_counts = Hashtbl.create 32;
    extra_locals = [];
    n_extra = 0;
    first_temp = List.length params + List.length f.locals;
    split_i64;
    br_tables = [];
    dead_skipped = [];
    facts;
    folded = [];
  } in
  let out = ref [] in
  let emit is = out := List.rev_append is !out in
  if is_start && enabled c G_start then emit (hook_call c ~at:(-1) S_start []);
  if enabled c G_begin then emit (hook_call c ~at:(-1) (S_begin Bfunction) []);
  Array.iteri
    (fun at ins ->
       let replacement = instrument_instr c ~at ins jumps in
       Tracker.step c.tracker ins;
       emit replacement)
    body;
  if enabled c G_end then
    emit (hook_call c ~at:(Array.length body) (S_end Bfunction) [ [ iconst (-1) ] ]);
  let f' = {
    f with
    locals = f.locals @ List.rev c.extra_locals;
    body = List.rev !out;
  } in
  Hook.Map.note_requests hooks
    (Hashtbl.fold (fun s r acc -> (s, !r) :: acc) c.req_counts []);
  (f', c.br_tables, List.rev c.dead_skipped, List.rev c.folded)

(** Remap a function index after hook imports have been inserted.
    [n_imp] original imported functions keep their indices; the [h] hooks
    take indices [n_imp .. n_imp+h-1]; originally defined functions shift
    up by [h]. Instrumented code refers to hook [k] through the
    placeholder index [n_orig + k]. *)
let remap_index ~n_imp ~n_orig ~h idx =
  if idx < n_imp then idx
  else if idx >= n_orig then n_imp + (idx - n_orig)  (* hook placeholder *)
  else idx + h

let remap_instr remap = function
  | Call f -> Call (remap f)
  | i -> i

(** Instrument the defined functions, optionally across several domains:
    functions are independent — the only shared state is the mutex-guarded
    monomorphization map (paper, Section 3). Results are kept in function
    order regardless of scheduling. *)
let instrument_functions ~groups ~hooks ~split_i64 ~vctx ~n_imp ~n_orig ~start ~domains
    ~instrument_fidx ~facts funcs =
  let arr = Array.of_list funcs in
  let results = Array.make (Array.length arr) None in
  let one i f =
    let fidx = n_imp + i in
    results.(i) <-
      Some
        (if instrument_fidx fidx then
           instrument_func ~groups ~hooks ~placeholder_base:n_orig ~split_i64 ~vctx ~fidx
             ~is_start:(start = Some fidx) ~facts f
         else
           (* pruned: the body is kept verbatim; the final remapping pass
              still fixes its call sites for the shifted index space *)
           (f, [], [], []))
  in
  if domains <= 1 || Array.length arr < 2 then Array.iteri one arr
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length arr then begin
          one i arr.(i);
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list (Array.map Option.get results)

(** Instrument [m] for the hook groups in [groups] (defaults to all).
    [domains] > 1 instruments functions in parallel (hook ordinals then
    depend on scheduling, but the output is always valid and equivalent).
    The input module must be valid. *)
let instrument ?(groups = Hook.all) ?(split_i64 = true) ?(domains = 1)
    ?(prune_unreachable = false) ?(fold = false) (m : module_) : result =
  Obs.Span.with_ "instrument" @@ fun () ->
  let hooks = Hook.Map.create () in
  let vctx = Validate.Module_ctx.create m in
  let n_imp = num_imported_funcs m in
  let n_orig = num_funcs m in
  let facts =
    if fold then
      Some (Obs.Span.with_ "instrument.absint" @@ fun () -> Static.Absint.analyze m)
    else None
  in
  let pruned_funcs =
    if prune_unreachable then
      Obs.Span.with_ "instrument.prune" @@ fun () ->
      (* with folding on, prune against the abstract-interpretation call
         graph: resolved indirect targets expose more dead functions *)
      Static.Callgraph.dead_functions (Static.Callgraph.build ~precise:fold m)
    else []
  in
  let instrument_fidx fidx = not (List.mem fidx pruned_funcs) in
  let br_tables = ref Location.Map.empty in
  let dead_skipped = ref [] in
  let folded_sites = ref [] in
  let instrumented_funcs =
    Obs.Span.with_ "instrument.functions" @@ fun () ->
    instrument_functions ~groups ~hooks ~split_i64 ~vctx ~n_imp ~n_orig ~start:m.start ~domains
      ~instrument_fidx ~facts m.funcs
  in
  Obs.Span.with_ "instrument.assemble" @@ fun () ->
  let funcs' =
    List.mapi
      (fun i (f', bts, dead, folded) ->
         List.iter
           (fun (bt : Metadata.br_table_info) ->
              br_tables := Location.Map.add bt.bt_loc bt !br_tables)
           bts;
         List.iter
           (fun at ->
              dead_skipped := Location.make ~func:(n_imp + i) ~instr:at :: !dead_skipped)
           dead;
         List.iter
           (fun (at, args) ->
              let loc = Location.make ~func:(n_imp + i) ~instr:at in
              folded_sites :=
                (match args with
                 | None -> Metadata.F_dead loc
                 | Some vs -> Metadata.F_args (loc, vs))
                :: !folded_sites)
           folded;
         f')
      instrumented_funcs
  in
  let h = Hook.Map.count hooks in
  let specs = Hook.Map.specs hooks in
  (* add hook signatures to the type section (re-using existing entries) *)
  let types = ref (List.rev m.types) in
  let n_types = ref (List.length m.types) in
  let type_index ft =
    let rec find i = function
      | [] -> None
      | t :: rest -> if equal_func_type t ft then Some (!n_types - 1 - i) else find (i + 1) rest
    in
    match find 0 !types with
    | Some i -> i
    | None ->
      types := ft :: !types;
      incr n_types;
      !n_types - 1
  in
  let hook_imports =
    Array.to_list specs
    |> List.map (fun spec ->
      { module_name = Hook.import_module;
        item_name = Hook.name spec;
        idesc = FuncImport (type_index (Hook.signature ~split_i64 spec)) })
  in
  let remap = remap_index ~n_imp ~n_orig ~h in
  let funcs'' =
    List.map (fun f -> { f with body = List.map (remap_instr remap) f.body }) funcs'
  in
  let instrumented = {
    m with
    types = List.rev !types;
    imports = m.imports @ hook_imports;
    funcs = funcs'';
    exports =
      List.map
        (fun e ->
           match e.edesc with
           | FuncExport i -> { e with edesc = FuncExport (remap i) }
           | _ -> e)
        m.exports;
    start = Option.map remap m.start;
    elems =
      List.map (fun e -> { e with einit = List.map remap e.einit }) m.elems;
  } in
  let metadata = {
    Metadata.original = m;
    groups;
    split_i64;
    br_tables = !br_tables;
    num_hooks = h;
    hook_specs = specs;
    num_original_func_imports = n_imp;
    func_names = Metadata.extract_func_names m;
    dead_skipped = List.rev !dead_skipped;
    pruned_funcs;
    folded = List.rev !folded_sites;
  } in
  { instrumented; metadata; hook_map = hooks }
