(** Generation of the JavaScript runtime that accompanies an instrumented
    binary when it runs in a browser — the "generate" arrow of the paper's
    Figure 2.

    The original Wasabi emits a [.wasabi.js] file next to the instrumented
    binary containing (i) one monomorphic low-level hook per generated
    import, which re-joins split i64 halves into long.js objects and calls
    the user's high-level hook, and (ii) a [Wasabi.module.info] object
    with static information (function types, branch tables, ...).

    This module reproduces that file so the OCaml pipeline can target real
    JavaScript hosts; inside this repository the generated code is checked
    structurally (the in-process host is {!Runtime}). *)

open Wasm.Types

let escape_js_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c when Char.code c < 0x20 || Char.code c >= 0x7F ->
         Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** JavaScript-safe identifier for a hook import name. *)
let js_ident name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

(** Parameter names and the expressions decoding them (i64 halves are
    joined with long.js, conditions become booleans). *)
let decode_args ~split_i64 (tys : value_type list) ~names =
  let rec go k tys names params exprs =
    match tys, names with
    | [], _ -> (List.rev params, List.rev exprs)
    | ty :: tys', n :: names' ->
      (match ty with
       | I64T when split_i64 ->
         let lo = Printf.sprintf "%s_low" n and hi = Printf.sprintf "%s_high" n in
         go (k + 2) tys' names' (hi :: lo :: params)
           (Printf.sprintf "new Long(%s, %s)" lo hi :: exprs)
       | _ -> go (k + 1) tys' names' (n :: params) (n :: exprs))
    | _ :: _, [] -> invalid_arg "decode_args: not enough names"
  in
  go 0 tys names [] []

let bool_of n = Printf.sprintf "Boolean(%s)" n

(** The body of one low-level hook: decode arguments, call the matching
    high-level hook with pre-computed static info attached. *)
let hook_function ~split_i64 (spec : Hook.spec) : string =
  let name = Hook.name spec in
  let ident = js_ident name in
  let loc = "{func, instr}" in
  let make params call =
    Printf.sprintf "  %s: function (func, instr%s) {\n    %s;\n  },\n" ident
      (String.concat "" (List.map (fun p -> ", " ^ p) params))
      call
  in
  match spec with
  | Hook.S_nop -> make [] (Printf.sprintf "Wasabi.analysis.nop(%s)" loc)
  | S_unreachable -> make [] (Printf.sprintf "Wasabi.analysis.unreachable(%s)" loc)
  | S_start -> make [] (Printf.sprintf "Wasabi.analysis.start(%s)" loc)
  | S_if_cond -> make [ "cond" ] (Printf.sprintf "Wasabi.analysis.if_(%s, %s)" loc (bool_of "cond"))
  | S_br ->
    make [ "label"; "target" ]
      (Printf.sprintf "Wasabi.analysis.br(%s, {label, location: {func, instr: target}})" loc)
  | S_br_if ->
    make [ "label"; "target"; "cond" ]
      (Printf.sprintf "Wasabi.analysis.br_if(%s, {label, location: {func, instr: target}}, %s)"
         loc (bool_of "cond"))
  | S_br_table ->
    make [ "idx" ]
      (Printf.sprintf
         "const entry = Wasabi.module.info.brTables[func + \":\" + instr];\n\
         \    Wasabi.analysis.br_table(%s, entry.table, entry.default, idx);\n\
         \    const ended = idx < entry.table.length ? entry.ended[idx] : entry.endedDefault;\n\
         \    for (const e of ended) Wasabi.analysis.end(e.loc, e.kind, e.begin)"
         loc)
  | S_begin kind ->
    make [] (Printf.sprintf "Wasabi.analysis.begin(%s, %S)" loc (Hook.block_kind_name kind))
  | S_end kind ->
    make [ "beginInstr" ]
      (Printf.sprintf "Wasabi.analysis.end(%s, %S, {func, instr: beginInstr})" loc
         (Hook.block_kind_name kind))
  | S_const ty ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "v" ] in
    make params (Printf.sprintf "Wasabi.analysis.const_(%s, %s)" loc (List.hd exprs))
  | S_drop ty ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "v" ] in
    make params (Printf.sprintf "Wasabi.analysis.drop(%s, %s)" loc (List.hd exprs))
  | S_select ty ->
    let params, exprs = decode_args ~split_i64 [ ty; ty ] ~names:[ "first"; "second" ] in
    make (("cond" :: params))
      (Printf.sprintf "Wasabi.analysis.select(%s, %s, %s)" loc (bool_of "cond")
         (String.concat ", " exprs))
  | S_unary (op, ity, rty) ->
    let params, exprs = decode_args ~split_i64 [ ity; rty ] ~names:[ "input"; "result" ] in
    make params
      (Printf.sprintf "Wasabi.analysis.unary(%s, %S, %s)" loc op (String.concat ", " exprs))
  | S_binary (op, aty, bty, rty) ->
    let params, exprs =
      decode_args ~split_i64 [ aty; bty; rty ] ~names:[ "first"; "second"; "result" ]
    in
    make params
      (Printf.sprintf "Wasabi.analysis.binary(%s, %S, %s)" loc op (String.concat ", " exprs))
  | S_local (op, ty) ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "value" ] in
    make ("index" :: params)
      (Printf.sprintf "Wasabi.analysis.local(%s, %S, index, %s)" loc (Hook.local_op_name op)
         (List.hd exprs))
  | S_global (op, ty) ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "value" ] in
    make ("index" :: params)
      (Printf.sprintf "Wasabi.analysis.global(%s, %S, index, %s)" loc (Hook.global_op_name op)
         (List.hd exprs))
  | S_load (op, ty) ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "value" ] in
    make ([ "addr"; "offset" ] @ params)
      (Printf.sprintf "Wasabi.analysis.load(%s, %S, {addr, offset}, %s)" loc op (List.hd exprs))
  | S_store (op, ty) ->
    let params, exprs = decode_args ~split_i64 [ ty ] ~names:[ "value" ] in
    make ([ "addr"; "offset" ] @ params)
      (Printf.sprintf "Wasabi.analysis.store(%s, %S, {addr, offset}, %s)" loc op (List.hd exprs))
  | S_memory_size -> make [ "size" ] (Printf.sprintf "Wasabi.analysis.memory_size(%s, size)" loc)
  | S_memory_grow ->
    make [ "delta"; "previous" ]
      (Printf.sprintf "Wasabi.analysis.memory_grow(%s, delta, previous)" loc)
  | S_call_pre (tys, indirect) ->
    let names = List.mapi (fun k _ -> Printf.sprintf "arg%d" k) tys in
    let params, exprs = decode_args ~split_i64 tys ~names in
    let first = if indirect then "tableIdx" else "callee" in
    let call =
      if indirect then
        Printf.sprintf
          "const target = Wasabi.resolveTableIdx(tableIdx);\n\
          \    Wasabi.analysis.call_pre(%s, target, [%s], tableIdx)"
          loc (String.concat ", " exprs)
      else
        Printf.sprintf "Wasabi.analysis.call_pre(%s, callee, [%s], null)" loc
          (String.concat ", " exprs)
    in
    make (first :: params) call
  | S_call_post tys ->
    let names = List.mapi (fun k _ -> Printf.sprintf "result%d" k) tys in
    let params, exprs = decode_args ~split_i64 tys ~names in
    make params
      (Printf.sprintf "Wasabi.analysis.call_post(%s, [%s])" loc (String.concat ", " exprs))
  | S_return tys ->
    let names = List.mapi (fun k _ -> Printf.sprintf "result%d" k) tys in
    let params, exprs = decode_args ~split_i64 tys ~names in
    make params
      (Printf.sprintf "Wasabi.analysis.return_(%s, [%s])" loc (String.concat ", " exprs))

let js_of_target (t : Metadata.target) =
  Printf.sprintf "{label: %d, location: {func: %d, instr: %d}}" t.Metadata.label
    t.Metadata.target_loc.Location.func t.Metadata.target_loc.Location.instr

let js_of_ended (ebs : Metadata.ended_block list) =
  "["
  ^ String.concat ", "
      (List.map
         (fun (eb : Metadata.ended_block) ->
            Printf.sprintf "{loc: {func: %d, instr: %d}, kind: %S, begin: {func: %d, instr: %d}}"
              eb.Metadata.eb_end_loc.Location.func eb.Metadata.eb_end_loc.Location.instr
              (Hook.block_kind_name eb.eb_kind) eb.Metadata.eb_end_loc.Location.func
              eb.eb_begin_instr)
         ebs)
  ^ "]"

(** Static module information, the [Wasabi.module.info] object. *)
let module_info (meta : Metadata.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  functions: [\n";
  let n = Metadata.num_functions meta in
  for idx = 0 to n - 1 do
    let ft = Metadata.func_type meta idx in
    let name =
      match Metadata.func_name meta idx with
      | Some name -> Printf.sprintf "\"%s\"" (escape_js_string name)
      | None -> "null"
    in
    Buffer.add_string buf
      (Printf.sprintf "    {type: \"%s\", export: %s, import: %s},\n"
         (escape_js_string (string_of_func_type ft))
         name
         (if idx < meta.Metadata.num_original_func_imports then "true" else "false"))
  done;
  Buffer.add_string buf "  ],\n  brTables: {\n";
  Location.Map.iter
    (fun loc (info : Metadata.br_table_info) ->
       let targets = Array.to_list info.Metadata.bt_targets in
       Buffer.add_string buf
         (Printf.sprintf "    \"%d:%d\": {table: [%s], default: %s, ended: [%s], endedDefault: %s},\n"
            loc.Location.func loc.Location.instr
            (String.concat ", " (List.map (fun (t, _) -> js_of_target t) targets))
            (js_of_target (fst info.Metadata.bt_default))
            (String.concat ", " (List.map (fun (_, e) -> js_of_ended e) targets))
            (js_of_ended (snd info.Metadata.bt_default))))
    meta.Metadata.br_tables;
  Buffer.add_string buf "  }\n}";
  Buffer.contents buf

(** Generate the complete [.wasabi.js] companion source. *)
let generate (res : Instrument.result) : string =
  let meta = res.Instrument.metadata in
  let split_i64 = meta.Metadata.split_i64 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "// generated by wasabi — do not edit\n";
  Buffer.add_string buf "// import object: {\"";
  Buffer.add_string buf Hook.import_module;
  Buffer.add_string buf "\": Wasabi.lowlevelHooks}\n";
  Buffer.add_string buf "const Wasabi = {\n";
  Buffer.add_string buf "  analysis: {},  // to be filled by the user's analysis script\n";
  Buffer.add_string buf "  resolveTableIdx: function (idx) {\n";
  Buffer.add_string buf "    const table = Wasabi.exports && Wasabi.exports.table;\n";
  Buffer.add_string buf "    if (!table) return -1;\n";
  Buffer.add_string buf "    const fn = table.get(idx);\n";
  Buffer.add_string buf "    return fn === null ? -1 : Wasabi.module.info.functionIndex(fn);\n";
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  module: { info: ";
  Buffer.add_string buf (module_info meta);
  Buffer.add_string buf " },\n";
  Buffer.add_string buf "  lowlevelHooks: {\n";
  Array.iter
    (fun spec -> Buffer.add_string buf (hook_function ~split_i64 spec))
    meta.Metadata.hook_specs;
  Buffer.add_string buf "  },\n};\n";
  (* default no-op high-level hooks, as the real runtime installs *)
  Buffer.add_string buf
    "for (const h of [\"nop\", \"unreachable\", \"if_\", \"br\", \"br_if\", \"br_table\",\n\
    \  \"begin\", \"end\", \"const_\", \"drop\", \"select\", \"unary\", \"binary\", \"local\",\n\
    \  \"global\", \"load\", \"store\", \"memory_size\", \"memory_grow\", \"call_pre\",\n\
    \  \"call_post\", \"return_\", \"start\"]) {\n\
    \  if (!Wasabi.analysis[h]) Wasabi.analysis[h] = function () {};\n\
     }\n";
  Buffer.contents buf
