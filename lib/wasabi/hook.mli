(** Hooks: the units of selective instrumentation ({!group}) and the
    monomorphic low-level hook specifications ({!spec}) generated on
    demand during instrumentation (paper, Sections 2.4.2 and 2.4.3). *)

(** Selective-instrumentation groups, in the order of the paper's
    Figures 8 and 9 (plus [G_start]). An analysis declares the groups it
    needs; only matching instructions are instrumented. *)
type group =
  | G_nop
  | G_unreachable
  | G_memory_size
  | G_memory_grow
  | G_select
  | G_drop
  | G_load
  | G_store
  | G_call
  | G_return
  | G_const
  | G_unary
  | G_binary
  | G_global
  | G_local
  | G_begin
  | G_end
  | G_if
  | G_br
  | G_br_if
  | G_br_table
  | G_start

val all_groups : group list
val figure_groups : group list
(** The 21 groups on the x-axis of Figures 8 and 9. *)

val group_name : group -> string
val group_of_name : string -> group
(** @raise Invalid_argument on unknown names. *)

module Group_set : Set.S with type elt = group

val all : Group_set.t
val none : Group_set.t
val of_list : group list -> Group_set.t

(** Block kinds visible to the [begin]/[end] hooks. *)
type block_kind =
  | Bfunction
  | Bblock
  | Bloop
  | Bif
  | Belse

val block_kind_name : block_kind -> string

type local_op = Lget | Lset | Ltee
type global_op = Gget | Gset

val local_op_name : local_op -> string
val global_op_name : global_op -> string

(** One monomorphic low-level hook: two instrumented call sites share a
    hook exactly when their specs are equal. *)
type spec =
  | S_nop
  | S_unreachable
  | S_if_cond
  | S_br
  | S_br_if
  | S_br_table
  | S_begin of block_kind
  | S_end of block_kind
  | S_const of Wasm.Types.value_type
  | S_drop of Wasm.Types.value_type
  | S_select of Wasm.Types.value_type
  | S_unary of string * Wasm.Types.value_type * Wasm.Types.value_type
  | S_binary of string * Wasm.Types.value_type * Wasm.Types.value_type * Wasm.Types.value_type
  | S_local of local_op * Wasm.Types.value_type
  | S_global of global_op * Wasm.Types.value_type
  | S_load of string * Wasm.Types.value_type
  | S_store of string * Wasm.Types.value_type
  | S_memory_size
  | S_memory_grow
  | S_call_pre of Wasm.Types.value_type list * bool  (** arg types; [true] = indirect *)
  | S_call_post of Wasm.Types.value_type list
  | S_return of Wasm.Types.value_type list
  | S_start

val group_of_spec : spec -> group

val flatten_type_with : split:bool -> Wasm.Types.value_type -> Wasm.Types.value_type list
val flatten_type : Wasm.Types.value_type -> Wasm.Types.value_type list
(** i64 becomes two i32 halves (paper, Section 2.4.6). *)

val signature : ?split_i64:bool -> spec -> Wasm.Types.func_type
(** Wasm-level signature of the imported hook: two i32 location parameters
    followed by the spec's arguments ([split_i64] defaults to [true], the
    JavaScript-compatible convention). *)

val param_count : ?split_i64:bool -> spec -> int
(** Flattened Wasm-level parameter count of {!signature}, including the
    two location slots — the arity of a compiled dispatch decoder. *)

val name : spec -> string
(** Import name of the generated hook, e.g. ["i32.add"], ["drop_i64"],
    ["call_pre_i32_f64"], ["begin_loop"]. Distinct specs can share a name
    only if their signatures agree. *)

val import_module : string
(** The import module name of all hooks. *)

(** The on-demand monomorphization map (paper, Section 2.4.3). *)
module Map : sig
  type t

  val create : unit -> t
  val ordinal : t -> spec -> int
  (** Stable ordinal of the spec, generating the hook on first request. *)

  val count : t -> int
  val specs : t -> spec array
  (** All generated specs, in ordinal order. *)

  val note_requests : t -> (spec * int) list -> unit
  (** Record a batch of per-spec request counts (typically one
      instrumented function's worth) under one lock acquisition. *)

  val requests : t -> (spec * int) array
  (** Per-spec request counts, in ordinal order. *)

  val total_requests : t -> int

  val hits : t -> int
  (** Requests that found their hook already generated. *)

  val misses : t -> int
  (** Requests that had to generate a hook (= {!count}). *)
end

val eager_call_hook_count : max_params:int -> float
(** Number of call hooks eager monomorphization would need for calls with
    up to [max_params] parameters (the 4^n explosion of Section 2.4.3). *)
