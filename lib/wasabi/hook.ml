(** Hooks: the units of selective instrumentation ({!group}) and the
    monomorphic low-level hook specifications ({!spec}) generated
    on demand during instrumentation (paper, Sections 2.4.2 and 2.4.3).

    A {e group} is what an analysis declares interest in ("instrument all
    [binary] instructions") — the x-axis of Figures 8 and 9. A {e spec}
    identifies one generated low-level hook: one per instruction mnemonic
    and, for type-polymorphic instructions, per concrete type variant. *)

open Wasm.Types

(** Selective-instrumentation groups, in the order of the paper's
    Figures 8 and 9 (plus [G_start], which has no figure column). *)
type group =
  | G_nop
  | G_unreachable
  | G_memory_size
  | G_memory_grow
  | G_select
  | G_drop
  | G_load
  | G_store
  | G_call
  | G_return
  | G_const
  | G_unary
  | G_binary
  | G_global
  | G_local
  | G_begin
  | G_end
  | G_if
  | G_br
  | G_br_if
  | G_br_table
  | G_start

let all_groups =
  [ G_nop; G_unreachable; G_memory_size; G_memory_grow; G_select; G_drop;
    G_load; G_store; G_call; G_return; G_const; G_unary; G_binary; G_global;
    G_local; G_begin; G_end; G_if; G_br; G_br_if; G_br_table; G_start ]

(** The 21 groups shown on the x-axis of Figures 8 and 9. *)
let figure_groups = List.filter (fun g -> g <> G_start) all_groups

let group_name = function
  | G_nop -> "nop"
  | G_unreachable -> "unreachable"
  | G_memory_size -> "memory_size"
  | G_memory_grow -> "memory_grow"
  | G_select -> "select"
  | G_drop -> "drop"
  | G_load -> "load"
  | G_store -> "store"
  | G_call -> "call"
  | G_return -> "return"
  | G_const -> "const"
  | G_unary -> "unary"
  | G_binary -> "binary"
  | G_global -> "global"
  | G_local -> "local"
  | G_begin -> "begin"
  | G_end -> "end"
  | G_if -> "if"
  | G_br -> "br"
  | G_br_if -> "br_if"
  | G_br_table -> "br_table"
  | G_start -> "start"

let group_of_name s =
  match List.find_opt (fun g -> group_name g = s) all_groups with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "unknown hook group %S" s)

module Group_set = Set.Make (struct
  type t = group
  let compare = Stdlib.compare
end)

let all = Group_set.of_list all_groups
let none = Group_set.empty
let of_list = Group_set.of_list

(** The kinds of blocks visible to the [begin]/[end] hooks. *)
type block_kind =
  | Bfunction
  | Bblock
  | Bloop
  | Bif
  | Belse

let block_kind_name = function
  | Bfunction -> "function"
  | Bblock -> "block"
  | Bloop -> "loop"
  | Bif -> "if"
  | Belse -> "else"

type local_op = Lget | Lset | Ltee
type global_op = Gget | Gset

let local_op_name = function Lget -> "local.get" | Lset -> "local.set" | Ltee -> "local.tee"
let global_op_name = function Gget -> "global.get" | Gset -> "global.set"

(** One monomorphic low-level hook. Two instrumented call sites share a
    hook exactly when their specs are equal — the on-demand
    monomorphization map is keyed by this type. *)
type spec =
  | S_nop
  | S_unreachable
  | S_if_cond
  | S_br
  | S_br_if
  | S_br_table
  | S_begin of block_kind
  | S_end of block_kind
  | S_const of value_type
  | S_drop of value_type
  | S_select of value_type
  | S_unary of string * value_type * value_type  (** mnemonic, input, result *)
  | S_binary of string * value_type * value_type * value_type
  | S_local of local_op * value_type
  | S_global of global_op * value_type
  | S_load of string * value_type
  | S_store of string * value_type
  | S_memory_size
  | S_memory_grow
  | S_call_pre of value_type list * bool  (** argument types; [true] for indirect calls *)
  | S_call_post of value_type list  (** result types *)
  | S_return of value_type list
  | S_start

let group_of_spec = function
  | S_nop -> G_nop
  | S_unreachable -> G_unreachable
  | S_if_cond -> G_if
  | S_br -> G_br
  | S_br_if -> G_br_if
  | S_br_table -> G_br_table
  | S_begin _ -> G_begin
  | S_end _ -> G_end
  | S_const _ -> G_const
  | S_drop _ -> G_drop
  | S_select _ -> G_select
  | S_unary _ -> G_unary
  | S_binary _ -> G_binary
  | S_local _ -> G_local
  | S_global _ -> G_global
  | S_load _ -> G_load
  | S_store _ -> G_store
  | S_memory_size -> G_memory_size
  | S_memory_grow -> G_memory_grow
  | S_call_pre _ | S_call_post _ -> G_call
  | S_return _ -> G_return
  | S_start -> G_start

(** i64 values cannot cross the host boundary of a JavaScript host
    (paper, Section 2.4.6): a single i64 hook argument becomes two i32
    parameters (low, high). With [split = false] (the ablation for
    native hosts) i64 arguments pass through unchanged. *)
let flatten_type_with ~split = function
  | I64T when split -> [ I32T; I32T ]
  | t -> [ t ]

let flatten_type = flatten_type_with ~split:true

(** The Wasm-level signature of the imported hook function. Every hook
    takes the two i32 location parameters first. *)
let signature ?(split_i64 = true) (s : spec) : func_type =
  let flatten_type = flatten_type_with ~split:split_i64 in
  let flatten_types tys = List.concat_map flatten_type tys in
  let args =
    match s with
    | S_nop | S_unreachable | S_start -> []
    | S_if_cond -> [ I32T ]  (* condition *)
    | S_br -> [ I32T; I32T ]  (* label, resolved target *)
    | S_br_if -> [ I32T; I32T; I32T ]  (* label, resolved target, condition *)
    | S_br_table -> [ I32T ]  (* runtime table index *)
    | S_begin _ -> []
    | S_end _ -> [ I32T ]  (* instruction index of the matching begin *)
    | S_const t | S_drop t -> flatten_type t
    | S_select t -> (I32T :: flatten_type t) @ flatten_type t  (* cond, first, second *)
    | S_unary (_, i, r) -> flatten_type i @ flatten_type r
    | S_binary (_, a, b, r) -> flatten_type a @ flatten_type b @ flatten_type r
    | S_local (_, t) | S_global (_, t) -> I32T :: flatten_type t  (* index, value *)
    | S_load (_, t) -> I32T :: I32T :: flatten_type t  (* addr, offset, value *)
    | S_store (_, t) -> I32T :: I32T :: flatten_type t
    | S_memory_size -> [ I32T ]  (* current size *)
    | S_memory_grow -> [ I32T; I32T ]  (* delta, previous size *)
    | S_call_pre (tys, _indirect) -> I32T :: flatten_types tys  (* callee / table idx, args *)
    | S_call_post tys | S_return tys -> flatten_types tys
  in
  func_type (I32T :: I32T :: args) []

let type_suffix tys =
  match tys with
  | [] -> ""
  | _ -> "_" ^ String.concat "_" (List.map string_of_value_type tys)

(** Import name of the generated hook, e.g. ["i32.add"], ["drop_i64"],
    ["call_pre_i32_f64"], ["begin_loop"]. *)
let name (s : spec) : string =
  match s with
  | S_nop -> "nop"
  | S_unreachable -> "unreachable"
  | S_if_cond -> "if"
  | S_br -> "br"
  | S_br_if -> "br_if"
  | S_br_table -> "br_table"
  | S_begin k -> "begin_" ^ block_kind_name k
  | S_end k -> "end_" ^ block_kind_name k
  | S_const t -> string_of_value_type t ^ ".const"
  | S_drop t -> "drop" ^ type_suffix [ t ]
  | S_select t -> "select" ^ type_suffix [ t ]
  | S_unary (op, _, _) -> op
  | S_binary (op, _, _, _) -> op
  | S_local (op, t) -> local_op_name op ^ type_suffix [ t ]
  | S_global (op, t) -> global_op_name op ^ type_suffix [ t ]
  | S_load (op, _) -> op
  | S_store (op, _) -> op
  | S_memory_size -> "memory.size"
  | S_memory_grow -> "memory.grow"
  | S_call_pre (tys, indirect) ->
    (if indirect then "call_pre_indirect" else "call_pre") ^ type_suffix tys
  | S_call_post tys -> "call_post" ^ type_suffix tys
  | S_return tys -> "return" ^ type_suffix tys
  | S_start -> "start"

(** Flattened Wasm-level parameter count of the hook, including the two
    location slots — the arity of a compiled dispatch decoder. *)
let param_count ?split_i64 (s : spec) : int =
  List.length (signature ?split_i64 s).params

(** Import module name under which all hooks are imported. *)
let import_module = "wasabi_hooks"

(** The on-demand monomorphization map (paper, Section 2.4.3): hooks are
    generated lazily, keyed by {!spec}; each receives a stable ordinal in
    generation order.

    The map is the only state shared between functions during
    instrumentation, so — as in the paper's Section 3, where it is guarded
    by a readers/writer lock — it is protected by a mutex, allowing
    functions to be instrumented in parallel. *)
module Map = struct
  type t = {
    tbl : (spec, int) Hashtbl.t;
    mutable order : spec list;  (** reversed *)
    mutable next : int;
    reqs : (spec, int ref) Hashtbl.t;
        (** instrumentation sites that requested each spec; requests
            beyond the first are monomorphization-cache hits *)
    lock : Mutex.t;
  }

  let create () =
    { tbl = Hashtbl.create 64; order = []; next = 0;
      reqs = Hashtbl.create 64; lock = Mutex.create () }

  (** Ordinal of [s], generating the hook on first request. Thread safe. *)
  let ordinal t s =
    Mutex.lock t.lock;
    let k =
      match Hashtbl.find_opt t.tbl s with
      | Some k -> k
      | None ->
        let k = t.next in
        Hashtbl.add t.tbl s k;
        t.order <- s :: t.order;
        t.next <- k + 1;
        k
    in
    Mutex.unlock t.lock;
    k

  let count t =
    Mutex.lock t.lock;
    let n = t.next in
    Mutex.unlock t.lock;
    n

  (** All generated specs, in ordinal order. *)
  let specs t =
    Mutex.lock t.lock;
    let order = t.order in
    Mutex.unlock t.lock;
    Array.of_list (List.rev order)

  (** Record a batch of per-spec request counts (one instrumented
      function's worth) under a single lock acquisition, so the parallel
      instrumentation path is not serialized per site. *)
  let note_requests t (batch : (spec * int) list) =
    Mutex.lock t.lock;
    List.iter
      (fun (s, n) ->
         match Hashtbl.find_opt t.reqs s with
         | Some r -> r := !r + n
         | None -> Hashtbl.add t.reqs s (ref n))
      batch;
    Mutex.unlock t.lock

  (** Requests per generated spec, in ordinal order. Readers take the
      lock too: these run while parallel instrumentation domains may
      still be noting requests. *)
  let requests t =
    Mutex.lock t.lock;
    let rows =
      List.rev_map
        (fun s ->
           (s, match Hashtbl.find_opt t.reqs s with Some r -> !r | None -> 0))
        t.order
    in
    Mutex.unlock t.lock;
    Array.of_list rows

  let total_requests t =
    Mutex.lock t.lock;
    let n = Hashtbl.fold (fun _ r acc -> acc + !r) t.reqs 0 in
    Mutex.unlock t.lock;
    n

  (** Cache hits: sites that found their hook already generated. *)
  let hits t = max 0 (total_requests t - count t)

  (** Cache misses, i.e. hooks actually generated. *)
  let misses t = count t
end

(** Number of monomorphic hooks eager generation would need for calls with
    up to [max_params] parameters (the 4^n explosion the paper's Section
    2.4.3 argues against). Returns a float because the count overflows
    quickly. *)
let eager_call_hook_count ~max_params =
  let rec go n acc total = if n > max_params then total else go (n + 1) (acc *. 4.0) (total +. acc *. 4.0) in
  go 1 1.0 1.0  (* 1 for the zero-argument variant *)
