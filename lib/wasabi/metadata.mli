(** Static information extracted during instrumentation and consumed by
    the Wasabi runtime — the OCaml equivalent of the JavaScript the
    original tool generates ([Wasabi.module.info] plus the stored branch
    table entries). *)

(** A resolved branch target: the raw relative label and the absolute
    location of the next instruction executed if the branch is taken
    (paper, Section 2.4.4). *)
type target = {
  label : int;
  target_loc : Location.t;
}

(** A block that a taken branch exits; the runtime calls its [end] hook
    (paper, Section 2.4.5). *)
type ended_block = {
  eb_kind : Hook.block_kind;
  eb_end_loc : Location.t;
  eb_begin_instr : int;
}

(** Statically extracted information about one [br_table]: per entry (and
    default) the resolved target and the blocks ended when it is taken. *)
type br_table_info = {
  bt_loc : Location.t;
  bt_targets : (target * ended_block list) array;
  bt_default : target * ended_block list;
}

(** One hook site discharged statically during [~fold] instrumentation:
    either proven unreachable (no hooks emitted) or with its runtime
    value arguments proven constant (passed as immediates). *)
type fold_site =
  | F_dead of Location.t
  | F_args of Location.t * Wasm.Value.t list

type t = {
  original : Wasm.Ast.module_;
  groups : Hook.Group_set.t;
  split_i64 : bool;
  br_tables : br_table_info Location.Map.t;
  num_hooks : int;
  hook_specs : Hook.spec array;
  num_original_func_imports : int;
  func_names : (int * string) list;
  dead_skipped : Location.t list;
      (** statically-unreachable branch/return sites left uninstrumented *)
  pruned_funcs : int list;
      (** original indices of functions skipped by selective instrumentation *)
  folded : fold_site list;
      (** hook sites discharged statically by [~fold] instrumentation *)
}

val br_table_at : t -> Location.t -> br_table_info
(** @raise Invalid_argument when no [br_table] was instrumented there. *)

type br_table_index = br_table_info option array array
(** O(1) per-location view of [br_tables]: indexed by original function
    index, then instruction index. Built once per runtime binding so the
    hot [br_table] hook never walks the map. *)

val build_br_table_index : t -> br_table_index

val br_table_find : br_table_index -> func:int -> instr:int -> br_table_info option
(** Bounds-checked lookup; [None] where no [br_table] was instrumented. *)

val func_type : t -> int -> Wasm.Types.func_type
(** Type of an original function, by original index. *)

val num_functions : t -> int
val func_name : t -> int -> string option
(** Export name of an original function, if any. *)

val extract_func_names : Wasm.Ast.module_ -> (int * string) list
