(** The high-level analysis API (paper, Table 2).

    An analysis implements a subset of these 23 callbacks; {!default} is
    the empty analysis. Each callback receives the {!Location.t} of the
    original instruction. Following the paper's JavaScript API:

    - related instructions are grouped into one hook, distinguished by an
      [op] mnemonic argument (e.g. all 123 numeric instructions map to
      [unary]/[binary]);
    - conditions are passed as [bool];
    - branch hooks receive statically resolved absolute {!Metadata.target}
      locations in addition to the raw relative label;
    - [call_pre] receives the resolved callee for indirect calls;
    - i64 values arrive as full [Value.I64] (the runtime re-joins the two
      i32 halves, as long.js does on the JavaScript side). *)

open Wasm

type memarg = {
  addr : int32;
  offset : int;
}

type t = {
  nop : Location.t -> unit;
  unreachable : Location.t -> unit;
  if_ : Location.t -> bool -> unit;
  br : Location.t -> Metadata.target -> unit;
  br_if : Location.t -> Metadata.target -> bool -> unit;
  br_table : Location.t -> Metadata.target array -> Metadata.target -> int -> unit;
      (** table, default, runtime index *)
  begin_ : Location.t -> Hook.block_kind -> unit;
  end_ : Location.t -> Hook.block_kind -> Location.t -> unit;
      (** location of the end, kind, location of the matching begin *)
  const : Location.t -> Value.t -> unit;
  drop : Location.t -> Value.t -> unit;
  select : Location.t -> bool -> Value.t -> Value.t -> unit;
      (** condition, first, second *)
  unary : Location.t -> string -> Value.t -> Value.t -> unit;
      (** op, input, result *)
  binary : Location.t -> string -> Value.t -> Value.t -> Value.t -> unit;
      (** op, first, second, result *)
  local : Location.t -> string -> int -> Value.t -> unit;
      (** op, index, value *)
  global : Location.t -> string -> int -> Value.t -> unit;
  load : Location.t -> string -> memarg -> Value.t -> unit;
      (** op, memarg, loaded value *)
  store : Location.t -> string -> memarg -> Value.t -> unit;
  memory_size : Location.t -> int -> unit;  (** current size in pages *)
  memory_grow : Location.t -> int -> int -> unit;  (** delta, previous size *)
  call_pre : Location.t -> int -> Value.t list -> int option -> unit;
      (** callee function index (original index space), arguments, and
          [Some table_index] iff the call is indirect *)
  call_post : Location.t -> Value.t list -> unit;
  return_ : Location.t -> Value.t list -> unit;
  start : Location.t -> unit;
}

let nop1 _ = ()
let nop2 _ _ = ()
let nop3 _ _ _ = ()
let nop4 _ _ _ _ = ()
let nop5 _ _ _ _ _ = ()

(** The empty analysis: every hook is a no-op. Build analyses with
    [{ default with binary = ...; ... }]. *)
let default = {
  nop = nop1;
  unreachable = nop1;
  if_ = nop2;
  br = nop2;
  br_if = nop3;
  br_table = nop4;
  begin_ = nop2;
  end_ = nop3;
  const = nop2;
  drop = nop2;
  select = nop4;
  unary = nop4;
  binary = nop5;
  local = nop4;
  global = nop4;
  load = nop4;
  store = nop4;
  memory_size = nop2;
  memory_grow = nop3;
  call_pre = nop4;
  call_post = nop2;
  return_ = nop2;
  start = nop1;
}

(** {1 Reified hook events}

    One constructor per callback, carrying exactly the callback's
    arguments. An event is a pure value: the runtime's compiled decoders
    resolve everything instance-relative (indirect callees, re-joined i64
    halves) before the callback fires, so a reified event can cross a
    domain boundary and be applied by a consumer that never touches the
    instance. This is what the serve layer's async dispatch ships through
    its ring buffers. *)

type event =
  | E_nop of Location.t
  | E_unreachable of Location.t
  | E_if of Location.t * bool
  | E_br of Location.t * Metadata.target
  | E_br_if of Location.t * Metadata.target * bool
  | E_br_table of Location.t * Metadata.target array * Metadata.target * int
  | E_begin of Location.t * Hook.block_kind
  | E_end of Location.t * Hook.block_kind * Location.t
  | E_const of Location.t * Value.t
  | E_drop of Location.t * Value.t
  | E_select of Location.t * bool * Value.t * Value.t
  | E_unary of Location.t * string * Value.t * Value.t
  | E_binary of Location.t * string * Value.t * Value.t * Value.t
  | E_local of Location.t * string * int * Value.t
  | E_global of Location.t * string * int * Value.t
  | E_load of Location.t * string * memarg * Value.t
  | E_store of Location.t * string * memarg * Value.t
  | E_memory_size of Location.t * int
  | E_memory_grow of Location.t * int * int
  | E_call_pre of Location.t * int * Value.t list * int option
  | E_call_post of Location.t * Value.t list
  | E_return of Location.t * Value.t list
  | E_start of Location.t

(** An analysis whose every callback reifies its arguments and hands the
    event to [push]. Binding [reify push] into the runtime turns the
    synchronous hook path into an event producer. *)
let reify push : t = {
  nop = (fun l -> push (E_nop l));
  unreachable = (fun l -> push (E_unreachable l));
  if_ = (fun l c -> push (E_if (l, c)));
  br = (fun l t -> push (E_br (l, t)));
  br_if = (fun l t c -> push (E_br_if (l, t, c)));
  br_table = (fun l tbl d i -> push (E_br_table (l, tbl, d, i)));
  begin_ = (fun l k -> push (E_begin (l, k)));
  end_ = (fun l k bl -> push (E_end (l, k, bl)));
  const = (fun l v -> push (E_const (l, v)));
  drop = (fun l v -> push (E_drop (l, v)));
  select = (fun l c x y -> push (E_select (l, c, x, y)));
  unary = (fun l op i r -> push (E_unary (l, op, i, r)));
  binary = (fun l op x y r -> push (E_binary (l, op, x, y, r)));
  local = (fun l op i v -> push (E_local (l, op, i, v)));
  global = (fun l op i v -> push (E_global (l, op, i, v)));
  load = (fun l op ma v -> push (E_load (l, op, ma, v)));
  store = (fun l op ma v -> push (E_store (l, op, ma, v)));
  memory_size = (fun l s -> push (E_memory_size (l, s)));
  memory_grow = (fun l d p -> push (E_memory_grow (l, d, p)));
  call_pre = (fun l f args ti -> push (E_call_pre (l, f, args, ti)));
  call_post = (fun l rs -> push (E_call_post (l, rs)));
  return_ = (fun l rs -> push (E_return (l, rs)));
  start = (fun l -> push (E_start l));
}

(** Replay one reified event into an analysis — the consumer side of
    {!reify}. [apply a (reify Fun.id <hook args>)] is exactly the direct
    callback invocation, which the serve tests verify differentially. *)
let apply (a : t) = function
  | E_nop l -> a.nop l
  | E_unreachable l -> a.unreachable l
  | E_if (l, c) -> a.if_ l c
  | E_br (l, t) -> a.br l t
  | E_br_if (l, t, c) -> a.br_if l t c
  | E_br_table (l, tbl, d, i) -> a.br_table l tbl d i
  | E_begin (l, k) -> a.begin_ l k
  | E_end (l, k, bl) -> a.end_ l k bl
  | E_const (l, v) -> a.const l v
  | E_drop (l, v) -> a.drop l v
  | E_select (l, c, x, y) -> a.select l c x y
  | E_unary (l, op, i, r) -> a.unary l op i r
  | E_binary (l, op, x, y, r) -> a.binary l op x y r
  | E_local (l, op, i, v) -> a.local l op i v
  | E_global (l, op, i, v) -> a.global l op i v
  | E_load (l, op, ma, v) -> a.load l op ma v
  | E_store (l, op, ma, v) -> a.store l op ma v
  | E_memory_size (l, s) -> a.memory_size l s
  | E_memory_grow (l, d, p) -> a.memory_grow l d p
  | E_call_pre (l, f, args, ti) -> a.call_pre l f args ti
  | E_call_post (l, rs) -> a.call_post l rs
  | E_return (l, rs) -> a.return_ l rs
  | E_start l -> a.start l

(** Sequential composition: both analyses observe every event, [a] first. *)
let combine (a : t) (b : t) : t = {
  nop = (fun l -> a.nop l; b.nop l);
  unreachable = (fun l -> a.unreachable l; b.unreachable l);
  if_ = (fun l c -> a.if_ l c; b.if_ l c);
  br = (fun l t -> a.br l t; b.br l t);
  br_if = (fun l t c -> a.br_if l t c; b.br_if l t c);
  br_table = (fun l tbl d i -> a.br_table l tbl d i; b.br_table l tbl d i);
  begin_ = (fun l k -> a.begin_ l k; b.begin_ l k);
  end_ = (fun l k bl -> a.end_ l k bl; b.end_ l k bl);
  const = (fun l v -> a.const l v; b.const l v);
  drop = (fun l v -> a.drop l v; b.drop l v);
  select = (fun l c x y -> a.select l c x y; b.select l c x y);
  unary = (fun l op i r -> a.unary l op i r; b.unary l op i r);
  binary = (fun l op x y r -> a.binary l op x y r; b.binary l op x y r);
  local = (fun l op i v -> a.local l op i v; b.local l op i v);
  global = (fun l op i v -> a.global l op i v; b.global l op i v);
  load = (fun l op ma v -> a.load l op ma v; b.load l op ma v);
  store = (fun l op ma v -> a.store l op ma v; b.store l op ma v);
  memory_size = (fun l s -> a.memory_size l s; b.memory_size l s);
  memory_grow = (fun l d p -> a.memory_grow l d p; b.memory_grow l d p);
  call_pre = (fun l f args ti -> a.call_pre l f args ti; b.call_pre l f args ti);
  call_post = (fun l rs -> a.call_post l rs; b.call_post l rs);
  return_ = (fun l rs -> a.return_ l rs; b.return_ l rs);
  start = (fun l -> a.start l; b.start l);
}
