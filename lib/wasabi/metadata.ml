(** Static information extracted during instrumentation and consumed by
    the Wasabi runtime. In the original tool this is the generated
    JavaScript ([Wasabi.module.info] plus the stored branch-table
    entries); here it is a plain data structure handed from
    {!Instrument} to {!Runtime}. *)

(** A resolved branch target: the raw relative label (as in the binary)
    and the absolute location of the next instruction executed if the
    branch is taken (paper, Section 2.4.4). *)
type target = {
  label : int;
  target_loc : Location.t;
}

(** A block that a taken branch exits; the runtime calls its [end] hook
    (paper, Section 2.4.5). *)
type ended_block = {
  eb_kind : Hook.block_kind;
  eb_end_loc : Location.t;  (** location of the block's [end] *)
  eb_begin_instr : int;  (** instruction index of the matching begin *)
}

(** Statically extracted information about one [br_table] instruction:
    for every table entry (and the default), the resolved target and the
    list of blocks ended when that entry is taken. Selected at runtime by
    the low-level hook. *)
type br_table_info = {
  bt_loc : Location.t;
  bt_targets : (target * ended_block list) array;
  bt_default : target * ended_block list;
}

(** One hook site discharged statically by abstract-interpretation
    facts ({!Static.Absint}) during [~fold] instrumentation. *)
type fold_site =
  | F_dead of Location.t
      (** the site is statically unreachable: the instruction was kept
          verbatim with no hook calls *)
  | F_args of Location.t * Wasm.Value.t list
      (** the hook's runtime value arguments were proven constant and
          passed as immediates (no duplication through temp locals) *)

type t = {
  original : Wasm.Ast.module_;
  groups : Hook.Group_set.t;  (** groups that were instrumented *)
  split_i64 : bool;  (** whether hook arguments split i64 into two i32 *)
  br_tables : br_table_info Location.Map.t;
  num_hooks : int;
  hook_specs : Hook.spec array;
  num_original_func_imports : int;
  func_names : (int * string) list;  (** export names of functions, by original index *)
  dead_skipped : Location.t list;
      (** statically-unreachable branch/return sites the instrumenter left
          uninstrumented (their stack type is polymorphic, so no hook
          arguments can be materialised) *)
  pruned_funcs : int list;
      (** original indices of functions selective instrumentation skipped
          entirely (statically unreachable from any export/start root) *)
  folded : fold_site list;
      (** hook sites discharged statically by [~fold] instrumentation,
          verified against the recomputed facts by the lint *)
}

let br_table_at t loc =
  match Location.Map.find_opt loc t.br_tables with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "no br_table at %s" (Location.to_string loc))

type br_table_index = br_table_info option array array

(** Build the O(1) lookup structure from the location-keyed map in two
    passes: size each per-function row by its largest instrumented
    instruction index, then fill. Functions (or instruction prefixes)
    without any [br_table] get empty rows, so lookups degrade to [None]
    rather than allocate. *)
let build_br_table_index t : br_table_index =
  let max_func =
    Location.Map.fold (fun (l : Location.t) _ acc -> max acc l.func) t.br_tables (-1)
  in
  let row_len = Array.make (max_func + 1) 0 in
  Location.Map.iter
    (fun (l : Location.t) _ -> row_len.(l.func) <- max row_len.(l.func) (l.instr + 1))
    t.br_tables;
  let idx = Array.init (max_func + 1) (fun f -> Array.make row_len.(f) None) in
  Location.Map.iter (fun (l : Location.t) info -> idx.(l.func).(l.instr) <- Some info) t.br_tables;
  idx

let br_table_find (idx : br_table_index) ~func ~instr =
  if func >= 0 && func < Array.length idx then begin
    let row = Array.unsafe_get idx func in
    if instr >= 0 && instr < Array.length row then Array.unsafe_get row instr else None
  end
  else None

(** Static information about the original module, in the spirit of the
    [Wasabi.module.info] object available to analyses. *)
let func_type t idx = Wasm.Ast.func_type_at t.original idx
let num_functions t = Wasm.Ast.num_funcs t.original

let func_name t idx =
  match List.assoc_opt idx t.func_names with
  | Some n -> Some n
  | None -> None

let extract_func_names (m : Wasm.Ast.module_) =
  List.filter_map
    (fun (e : Wasm.Ast.export) ->
       match e.edesc with
       | Wasm.Ast.FuncExport i -> Some (i, e.name)
       | _ -> None)
    m.exports
