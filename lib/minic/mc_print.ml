(** Pretty-printer for MiniC programs: renders the AST in a C-like
    concrete syntax, for debugging workloads and error reports. *)

open Mc_ast

let ty_name = function
  | TInt -> "int"
  | TLong -> "long"
  | TSingle -> "single"
  | TFloat -> "float"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | ShrU -> ">>>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | LAnd -> "&&"
  | LOr -> "||"

let unop_name = function
  | Neg -> "-"
  | Not -> "!"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Floor -> "floor"
  | Ceil -> "ceil"
  | Clz -> "clz"
  | Popcnt -> "popcnt"

let rec expr_to_string (e : expr) : string =
  match e with
  | Int x -> Int32.to_string x
  | Long x -> Int64.to_string x ^ "L"
  | Single x -> Printf.sprintf "%gf" x
  | Float x -> Printf.sprintf "%g" x
  | Var n -> n
  | Global n -> "@" ^ n
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op) (expr_to_string b)
  | Unop ((Neg | Not) as op, a) -> Printf.sprintf "%s%s" (unop_name op) (expr_to_string a)
  | Unop (op, a) -> Printf.sprintf "%s(%s)" (unop_name op) (expr_to_string a)
  | Cast (ty, a) -> Printf.sprintf "(%s)%s" (ty_name ty) (expr_to_string a)
  | Load (ty, addr) -> Printf.sprintf "*(%s*)(%s)" (ty_name ty) (expr_to_string addr)
  | Load8u addr -> Printf.sprintf "*(byte*)(%s)" (expr_to_string addr)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | CallIndirect (idx, _, _) -> Printf.sprintf "table[%s]()" (expr_to_string idx)
  | Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a) (expr_to_string b)
  | MemSize -> "memory.size()"
  | MemGrow e -> Printf.sprintf "memory.grow(%s)" (expr_to_string e)

let rec stmt_lines ~indent (s : stmt) : string list =
  let pad = String.make indent ' ' in
  let block body = List.concat_map (stmt_lines ~indent:(indent + 2)) body in
  match s with
  | Assign (n, e) -> [ Printf.sprintf "%s%s = %s;" pad n (expr_to_string e) ]
  | SetGlobal (n, e) -> [ Printf.sprintf "%s@%s = %s;" pad n (expr_to_string e) ]
  | Store (ty, addr, v) ->
    [ Printf.sprintf "%s*(%s*)(%s) = %s;" pad (ty_name ty) (expr_to_string addr)
        (expr_to_string v) ]
  | Store8 (addr, v) ->
    [ Printf.sprintf "%s*(byte*)(%s) = %s;" pad (expr_to_string addr) (expr_to_string v) ]
  | If (c, then_, []) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c) :: block then_) @ [ pad ^ "}" ]
  | If (c, then_, else_) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c) :: block then_)
    @ [ pad ^ "} else {" ] @ block else_ @ [ pad ^ "}" ]
  | While (c, body) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_to_string c) :: block body) @ [ pad ^ "}" ]
  | For (v, lo, hi, body) ->
    (Printf.sprintf "%sfor (%s = %s; %s < %s; %s++) {" pad v (expr_to_string lo) v
       (expr_to_string hi) v
     :: block body)
    @ [ pad ^ "}" ]
  | ForStep (v, lo, hi, step, body) ->
    (Printf.sprintf "%sfor (%s = %s; ...%s; %s += %s) {" pad v (expr_to_string lo)
       (expr_to_string hi) v (expr_to_string step)
     :: block body)
    @ [ pad ^ "}" ]
  | Switch (e, cases, default) ->
    (Printf.sprintf "%sswitch (%s) {" pad (expr_to_string e)
     :: List.concat
          (List.mapi
             (fun k body ->
                Printf.sprintf "%s  case %d:" pad k
                :: block body
                @ [ Printf.sprintf "%s    break;" pad ])
             cases))
    @ (Printf.sprintf "%s  default:" pad :: block default)
    @ [ pad ^ "}" ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Expr e -> [ Printf.sprintf "%s%s;" pad (expr_to_string e) ]

let func_to_string (fd : func_def) : string =
  let params =
    String.concat ", " (List.map (fun (n, ty) -> ty_name ty ^ " " ^ n) fd.fd_params)
  in
  let result = match fd.fd_result with None -> "void" | Some ty -> ty_name ty in
  let locals =
    List.map (fun (n, ty) -> Printf.sprintf "  %s %s;" (ty_name ty) n) fd.fd_locals
  in
  String.concat "\n"
    ((Printf.sprintf "%s %s(%s)%s {" result fd.fd_name params
        (if fd.fd_export then "" else " /* internal */")
      :: locals)
     @ List.concat_map (stmt_lines ~indent:2) fd.fd_body
     @ [ "}" ])

(** Render a whole program. *)
let to_string (p : program) : string =
  let globals =
    List.map
      (fun (n, ty, init) -> Printf.sprintf "%s @%s = %s;" (ty_name ty) n (expr_to_string init))
      p.pr_globals
  in
  let table =
    match p.pr_table with
    | [] -> []
    | fs -> [ Printf.sprintf "table = [%s];" (String.concat ", " fs) ]
  in
  String.concat "\n\n" (globals @ table @ List.map func_to_string p.pr_funcs) ^ "\n"
