(** Compilation of MiniC programs to WebAssembly modules. *)

exception Compile_error of string
(** Raised on type errors, unknown identifiers, arity mismatches, ... *)

val wasm_ty : Mc_ast.ty -> Wasm.Types.value_type

val compile : Mc_ast.program -> Wasm.Ast.module_
(** Compile a program. The produced module always validates; a memory is
    exported as "memory" when the program declares pages.
    @raise Compile_error on ill-typed programs. *)

val compile_checked : Mc_ast.program -> Wasm.Ast.module_
(** [compile] followed by {!Wasm.Validate.validate_module} (a failure here
    is a bug in this compiler). *)
