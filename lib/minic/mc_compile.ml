(** Compilation of MiniC programs to WebAssembly modules. *)

open Wasm
open Wasm.Types
open Wasm.Ast
open Mc_ast

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let wasm_ty = function
  | TInt -> I32T
  | TLong -> I64T
  | TSingle -> F32T
  | TFloat -> F64T

let ty_name = function
  | TInt -> "int"
  | TLong -> "long"
  | TSingle -> "single"
  | TFloat -> "float"

type env = {
  locals : (string, int * ty) Hashtbl.t;
  globals : (string, int * ty) Hashtbl.t;
  funcs : (string, int * ty list * ty option) Hashtbl.t;
  bld : Builder.t;
  fn_result : ty option;
}

let lookup_local env name =
  match Hashtbl.find_opt env.locals name with
  | Some x -> x
  | None -> error "unknown variable %S" name

let lookup_global env name =
  match Hashtbl.find_opt env.globals name with
  | Some x -> x
  | None -> error "unknown global %S" name

let lookup_func env name =
  match Hashtbl.find_opt env.funcs name with
  | Some x -> x
  | None -> error "unknown function %S" name

let isize_of = function TInt -> S32 | TLong -> S64 | _ -> assert false
let fsize_of = function TSingle -> SF32 | TFloat -> SF64 | _ -> assert false
let is_int = function TInt | TLong -> true | TSingle | TFloat -> false

let arith_op ty op =
  if is_int ty then
    let sz = isize_of ty in
    let o = match op with
      | Add -> Ast.Add | Sub -> Ast.Sub | Mul -> Ast.Mul
      | Div -> Ast.DivS | Rem -> Ast.RemS
      | BAnd -> Ast.And | BOr -> Ast.Or | BXor -> Ast.Xor
      | Shl -> Ast.Shl | Shr -> Ast.ShrS | ShrU -> Ast.ShrU
      | _ -> error "not an arithmetic operator"
    in
    Binary (IBin (sz, o))
  else
    let sz = fsize_of ty in
    let o = match op with
      | Add -> FAdd | Sub -> FSub | Mul -> FMul | Div -> FDiv
      | Rem | BAnd | BOr | BXor | Shl | Shr | ShrU ->
        error "operator not defined on %s" (ty_name ty)
      | _ -> error "not an arithmetic operator"
    in
    Binary (FBin (sz, o))

let compare_op ty op =
  if is_int ty then
    let sz = isize_of ty in
    let o = match op with
      | Eq -> Ast.Eq | Ne -> Ast.Ne | Lt -> LtS | Le -> LeS | Gt -> GtS | Ge -> GeS
      | _ -> assert false
    in
    Compare (IRel (sz, o))
  else
    let sz = fsize_of ty in
    let o = match op with
      | Eq -> FEq | Ne -> FNe | Lt -> FLt | Le -> FLe | Gt -> FGt | Ge -> FGe
      | _ -> assert false
    in
    Compare (FRel (sz, o))

let cast_instrs ~from_ ~to_ =
  match from_, to_ with
  | a, b when a = b -> []
  | TInt, TLong -> [ Convert I64ExtendI32S ]
  | TInt, TSingle -> [ Convert F32ConvertI32S ]
  | TInt, TFloat -> [ Convert F64ConvertI32S ]
  | TLong, TInt -> [ Convert I32WrapI64 ]
  | TLong, TSingle -> [ Convert F32ConvertI64S ]
  | TLong, TFloat -> [ Convert F64ConvertI64S ]
  | TSingle, TInt -> [ Convert I32TruncF32S ]
  | TSingle, TLong -> [ Convert I64TruncF32S ]
  | TSingle, TFloat -> [ Convert F64PromoteF32 ]
  | TFloat, TInt -> [ Convert I32TruncF64S ]
  | TFloat, TLong -> [ Convert I64TruncF64S ]
  | TFloat, TSingle -> [ Convert F32DemoteF64 ]
  | _ -> assert false

let load_op ty =
  match ty with
  | TInt -> Ast.Load { lty = I32T; lalign = 2; loffset = 0; lpack = None }
  | TLong -> Ast.Load { lty = I64T; lalign = 3; loffset = 0; lpack = None }
  | TSingle -> Ast.Load { lty = F32T; lalign = 2; loffset = 0; lpack = None }
  | TFloat -> Ast.Load { lty = F64T; lalign = 3; loffset = 0; lpack = None }

let store_op ty =
  match ty with
  | TInt -> Ast.Store { sty = I32T; salign = 2; soffset = 0; spack = None }
  | TLong -> Ast.Store { sty = I64T; salign = 3; soffset = 0; spack = None }
  | TSingle -> Ast.Store { sty = F32T; salign = 2; soffset = 0; spack = None }
  | TFloat -> Ast.Store { sty = F64T; salign = 3; soffset = 0; spack = None }

(** [0/1] test of an int expression (logical normalisation). *)
let to_bool = [ Const (Value.I32 0l); Compare (IRel (S32, Ne)) ]

let rec compile_expr env (e : expr) : instr list * ty =
  match e with
  | Int x -> ([ Const (Value.I32 x) ], TInt)
  | Long x -> ([ Const (Value.I64 x) ], TLong)
  | Single x -> ([ Const (Value.f32 x) ], TSingle)
  | Float x -> ([ Const (Value.F64 x) ], TFloat)
  | Var name ->
    let idx, ty = lookup_local env name in
    ([ LocalGet idx ], ty)
  | Global name ->
    let idx, ty = lookup_global env name in
    ([ GlobalGet idx ], ty)
  | Binop ((LAnd | LOr) as op, a, b) ->
    let ia = compile_int env a in
    let ib = compile_int env b in
    let o = if op = LAnd then Ast.And else Ast.Or in
    (ia @ to_bool @ ib @ to_bool @ [ Binary (IBin (S32, o)) ], TInt)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let ia, ta = compile_expr env a in
    let ib, tb = compile_expr env b in
    if ta <> tb then error "comparison of %s and %s" (ty_name ta) (ty_name tb);
    (ia @ ib @ [ compare_op ta op ], TInt)
  | Binop (op, a, b) ->
    let ia, ta = compile_expr env a in
    let ib, tb = compile_expr env b in
    if ta <> tb then error "operands of %s and %s" (ty_name ta) (ty_name tb);
    (ia @ ib @ [ arith_op ta op ], ta)
  | Unop (Neg, a) ->
    let ia, ta = compile_expr env a in
    if is_int ta then
      let zero = if ta = TInt then Const (Value.I32 0l) else Const (Value.I64 0L) in
      ((zero :: ia) @ [ arith_op ta Sub ], ta)
    else (ia @ [ Unary (FUn (fsize_of ta, Ast.Neg)) ], ta)
  | Unop (Not, a) ->
    let ia = compile_int env a in
    (ia @ [ Test (IEqz S32) ], TInt)
  | Unop ((Sqrt | Abs | Floor | Ceil) as op, a) ->
    let ia, ta = compile_expr env a in
    if is_int ta then error "%s requires a float operand" (ty_name ta);
    let o = match op with
      | Sqrt -> Ast.Sqrt | Abs -> Ast.Abs | Floor -> Ast.Floor | Ceil -> Ast.Ceil
      | _ -> assert false
    in
    (ia @ [ Unary (FUn (fsize_of ta, o)) ], ta)
  | Unop ((Clz | Popcnt) as op, a) ->
    let ia, ta = compile_expr env a in
    if not (is_int ta) then error "bit counting requires an integer operand";
    let o = match op with Clz -> Ast.Clz | Popcnt -> Ast.Popcnt | _ -> assert false in
    (ia @ [ Unary (IUn (isize_of ta, o)) ], ta)
  | Cast (to_, a) ->
    let ia, from_ = compile_expr env a in
    (ia @ cast_instrs ~from_ ~to_, to_)
  | Load (ty, addr) ->
    let ia = compile_int env addr in
    (ia @ [ load_op ty ], ty)
  | Load8u addr ->
    let ia = compile_int env addr in
    (ia @ [ Load { lty = I32T; lalign = 0; loffset = 0; lpack = Some (Pack8, ZX) } ], TInt)
  | Call (name, args) ->
    let fidx, params, result = lookup_func env name in
    if List.length args <> List.length params then
      error "%S expects %d argument(s)" name (List.length params);
    let compiled =
      List.map2
        (fun a expected ->
           let ia, ta = compile_expr env a in
           if ta <> expected then error "argument type mismatch in call to %S" name;
           ia)
        args params
    in
    (List.concat compiled @ [ Ast.Call fidx ],
     match result with
     | Some t -> t
     | None -> error "call to %S used as an expression but returns nothing" name)
  | CallIndirect (idx, params, result) ->
    let compiled_idx = compile_int env idx in
    (* callers must push arguments via Call wrappers; for simplicity the
       indirect-call expression takes no value arguments beyond the index *)
    let ti =
      Builder.add_type env.bld
        (func_type (List.map wasm_ty params) (Option.to_list (Option.map wasm_ty result)))
    in
    if params <> [] then error "indirect calls with parameters not supported directly";
    (compiled_idx @ [ Ast.CallIndirect ti ],
     match result with
     | Some t -> t
     | None -> error "indirect call used as an expression but returns nothing")
  | Select (cond, a, b) ->
    let ic = compile_int env cond in
    let ia, ta = compile_expr env a in
    let ib, tb = compile_expr env b in
    if ta <> tb then error "select arms of %s and %s" (ty_name ta) (ty_name tb);
    (ia @ ib @ ic @ [ Ast.Select ], ta)
  | MemSize -> ([ MemorySize ], TInt)
  | MemGrow e ->
    let ie = compile_int env e in
    (ie @ [ MemoryGrow ], TInt)

and compile_int env e =
  let ia, ta = compile_expr env e in
  if ta <> TInt then error "expected an int expression, got %s" (ty_name ta);
  ia

(** Compile a statement list. [depth] is the number of enclosing blocks in
    the current function body; [breaks]/[continues] hold the inside-depths
    of the innermost break/continue targets. *)
let rec compile_stmts env ~depth ~breaks ~continues stmts =
  List.concat_map (compile_stmt env ~depth ~breaks ~continues) stmts

and compile_stmt env ~depth ~breaks ~continues (s : stmt) : instr list =
  match s with
  | Assign (name, e) ->
    let idx, ty = lookup_local env name in
    let ie, te = compile_expr env e in
    if te <> ty then error "assigning %s to %s variable %S" (ty_name te) (ty_name ty) name;
    ie @ [ LocalSet idx ]
  | SetGlobal (name, e) ->
    let idx, ty = lookup_global env name in
    let ie, te = compile_expr env e in
    if te <> ty then error "assigning %s to %s global %S" (ty_name te) (ty_name ty) name;
    ie @ [ GlobalSet idx ]
  | Store (ty, addr, value) ->
    let ia = compile_int env addr in
    let iv, tv = compile_expr env value in
    if tv <> ty then error "storing %s as %s" (ty_name tv) (ty_name ty);
    ia @ iv @ [ store_op ty ]
  | Store8 (addr, value) ->
    let ia = compile_int env addr in
    let iv = compile_int env value in
    ia @ iv @ [ Ast.Store { sty = I32T; salign = 0; soffset = 0; spack = Some Pack8 } ]
  | If (cond, then_, else_) ->
    let ic = compile_int env cond in
    let it = compile_stmts env ~depth:(depth + 1) ~breaks ~continues then_ in
    let ie = compile_stmts env ~depth:(depth + 1) ~breaks ~continues else_ in
    ic
    @ (match ie with
       | [] -> (Ast.If None :: it) @ [ End ]
       | _ -> (Ast.If None :: it) @ (Else :: ie) @ [ End ])
  | While (cond, body) ->
    (* block (break d+1) { loop (continue d+2) { if !cond br 1; body; br 0 } } *)
    let ic = compile_int env cond in
    let ib =
      compile_stmts env ~depth:(depth + 2) ~breaks:(depth + 1 :: breaks)
        ~continues:(depth + 2 :: continues) body
    in
    [ Block None; Loop None ]
    @ ic @ [ Test (IEqz S32); BrIf 1 ]
    @ ib
    @ [ Br 0; End; End ]
  | For (var, lo, hi, body) -> compile_for env ~depth ~breaks ~continues var lo hi (Int 1l) body
  | ForStep (var, lo, hi, step, body) ->
    compile_for env ~depth ~breaks ~continues var lo hi step body
  | Switch (scrutinee, cases, default) ->
    compile_switch env ~depth ~breaks ~continues scrutinee cases default
  | Break ->
    (match breaks with
     | target :: _ -> [ Br (depth - target) ]
     | [] -> error "break outside of loop or switch")
  | Continue ->
    (match continues with
     | target :: _ -> [ Br (depth - target) ]
     | [] -> error "continue outside of loop")
  | Return None ->
    if env.fn_result <> None then error "missing return value";
    [ Ast.Return ]
  | Return (Some e) ->
    let ie, te = compile_expr env e in
    if Some te <> env.fn_result then error "return type mismatch";
    ie @ [ Ast.Return ]
  | Expr e ->
    (match e with
     | CallIndirect (idx, [], None) ->
       let compiled_idx = compile_int env idx in
       let ti = Builder.add_type env.bld (Wasm.Types.func_type [] []) in
       compiled_idx @ [ Ast.CallIndirect ti ]
     | Call (name, args) when (let _, _, r = lookup_func env name in r = None) ->
       let fidx, params, _ = lookup_func env name in
       if List.length args <> List.length params then
         error "%S expects %d argument(s)" name (List.length params);
       let compiled =
         List.map2
           (fun a expected ->
              let ia, ta = compile_expr env a in
              if ta <> expected then error "argument type mismatch in call to %S" name;
              ia)
           args params
       in
       List.concat compiled @ [ Ast.Call fidx ]
     | _ ->
       let ie, _ = compile_expr env e in
       ie @ [ Drop ])

and compile_for env ~depth ~breaks ~continues var lo hi step body =
  let idx, ty = lookup_local env var in
  if ty <> TInt then error "loop variable %S must be int" var;
  let ilo = compile_int env lo in
  let ihi = compile_int env hi in
  let istep = compile_int env step in
  (* ascending loops run while i < hi; a negative constant step descends
     while i > hi, so the exit test flips *)
  let exit_test =
    match step with
    | Int k when Int32.compare k 0l < 0 -> Compare (IRel (S32, LeS))
    | Binop (Sub, Int 0l, Int _) -> Compare (IRel (S32, LeS))
    | _ -> Compare (IRel (S32, GeS))
  in
  (* i = lo;
     block (break d+1) { loop (d+2) {
       if i >= hi br 1;   (i <= hi when descending)
       block (continue d+3) { body }
       i += step; br 0 } } *)
  let ib =
    compile_stmts env ~depth:(depth + 3) ~breaks:(depth + 1 :: breaks)
      ~continues:(depth + 3 :: continues) body
  in
  ilo @ [ LocalSet idx ]
  @ [ Block None; Loop None; LocalGet idx ]
  @ ihi
  @ [ exit_test; BrIf 1 ]
  @ [ Block None ] @ ib @ [ End; LocalGet idx ]
  @ istep
  @ [ Binary (IBin (S32, Ast.Add)); LocalSet idx; Br 0; End; End ]

and compile_switch env ~depth ~breaks ~continues scrutinee cases default =
  let n = List.length cases in
  let iscr = compile_int env scrutinee in
  (* blocks from outside in: exit (d+1), default (d+2), case n-1 (d+3),
     ..., case 0 (d+2+n); the br_table sits at depth d+2+n *)
  let opens = List.init (n + 2) (fun _ -> Block None) in
  let table = List.init n (fun k -> k) in
  let case_code =
    List.concat
      (List.mapi
         (fun k case ->
            (* after closing case k's block we are at depth d+2+n-(k+1) *)
            let case_depth = depth + 2 + n - (k + 1) in
            let body =
              compile_stmts env ~depth:case_depth ~breaks:(depth + 1 :: breaks) ~continues
                case
            in
            (End :: body) @ [ Br (case_depth - (depth + 1)) ])
         cases)
  in
  let default_code =
    End
    :: compile_stmts env ~depth:(depth + 1) ~breaks:(depth + 1 :: breaks) ~continues default
  in
  opens @ iscr @ [ BrTable (table, n) ] @ case_code @ default_code @ [ End ]

(** Compile a whole program to a Wasm module. Raises {!Compile_error} on
    type errors; the produced module always validates. *)
let compile (p : program) : module_ =
  let bld = Builder.create () in
  if p.pr_memory_pages > 0 then begin
    Builder.add_memory bld ~min_pages:p.pr_memory_pages ~max_pages:None;
    Builder.export_memory bld ~name:"memory"
  end;
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (name, ty, init) ->
       let value =
         match init, ty with
         | Int x, TInt -> Value.I32 x
         | Long x, TLong -> Value.I64 x
         | Single x, TSingle -> Value.f32 x
         | Float x, TFloat -> Value.F64 x
         | _ -> error "global %S: initialiser must be a constant of type %s" name (ty_name ty)
       in
       let idx = Builder.add_global bld ~ty:(wasm_ty ty) ~mutable_:true ~init:value in
       if Hashtbl.mem globals name then error "duplicate global %S" name;
       Hashtbl.add globals name (idx, ty))
    p.pr_globals;
  (* two passes: declare all functions first so calls can be resolved *)
  let funcs = Hashtbl.create 16 in
  let handles =
    List.map
      (fun fd ->
         let params = List.map (fun (_, ty) -> wasm_ty ty) fd.fd_params in
         let results = Option.to_list (Option.map wasm_ty fd.fd_result) in
         let fh = Builder.declare_func bld ~params ~results in
         if Hashtbl.mem funcs fd.fd_name then error "duplicate function %S" fd.fd_name;
         Hashtbl.add funcs fd.fd_name
           (fh.Builder.fh_index, List.map snd fd.fd_params, fd.fd_result);
         (fd, fh))
      p.pr_funcs
  in
  List.iter
    (fun (fd, fh) ->
       let locals = Hashtbl.create 8 in
       List.iteri
         (fun k (name, ty) ->
            if Hashtbl.mem locals name then error "duplicate parameter %S" name;
            Hashtbl.add locals name (k, ty))
         fd.fd_params;
       let n_params = List.length fd.fd_params in
       List.iteri
         (fun k (name, ty) ->
            if Hashtbl.mem locals name then error "duplicate local %S" name;
            Hashtbl.add locals name (n_params + k, ty))
         fd.fd_locals;
       let env = { locals; globals; funcs; bld; fn_result = fd.fd_result } in
       let body = compile_stmts env ~depth:0 ~breaks:[] ~continues:[] fd.fd_body in
       (* a function with a result whose body does not end in an explicit
          return would fall off the end without a value; supply a default
          (after a trailing Return the extra const is dead code) *)
       let body =
         match fd.fd_result with
         | None -> body
         | Some ty ->
           (match List.rev fd.fd_body with
            | Return (Some _) :: _ -> body
            | _ -> body @ [ Const (Value.default (wasm_ty ty)) ])
       in
       Builder.set_body fh ~locals:(List.map (fun (_, ty) -> wasm_ty ty) fd.fd_locals) ~body;
       if fd.fd_export then Builder.export_func bld ~name:fd.fd_name fh.Builder.fh_index)
    handles;
  if p.pr_table <> [] then begin
    Builder.add_table bld ~min_size:(List.length p.pr_table) ~max_size:None;
    let indices =
      List.map
        (fun name ->
           let idx, _, _ = try Hashtbl.find funcs name with Not_found -> error "unknown table function %S" name in
           idx)
        p.pr_table
    in
    Builder.add_elem bld ~offset:0 ~funcs:indices
  end;
  List.iter (fun (offset, bytes) -> Builder.add_data bld ~offset ~bytes) p.pr_data;
  (match p.pr_start with
   | None -> ()
   | Some name ->
     let idx, params, result = lookup_func { locals = Hashtbl.create 0; globals; funcs; bld; fn_result = None } name in
     if params <> [] || result <> None then error "start function %S must take and return nothing" name;
     Builder.set_start bld idx);
  Builder.build bld

(** Compile and validate; raises if the output is ill-typed (an internal
    error in this compiler). *)
let compile_checked p =
  let m = compile p in
  Validate.validate_module m;
  m
