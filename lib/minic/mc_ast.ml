(** MiniC: a small imperative language compiled to WebAssembly.

    Stands in for the paper's emscripten-compiled C benchmarks: loop
    nests, arrays in linear memory, scalar arithmetic over all four Wasm
    value types, function calls (direct and indirect through a table),
    structured control flow including [switch] (compiled to [br_table]),
    and manual memory addressing. *)

type ty =
  | TInt  (** i32 *)
  | TLong  (** i64 *)
  | TSingle  (** f32 *)
  | TFloat  (** f64 *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr | ShrU
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** logical; non-short-circuiting, operate on ints *)

type unop =
  | Neg
  | Not  (** logical not: x == 0 *)
  | Sqrt | Abs | Floor | Ceil  (** float only *)
  | Clz | Popcnt  (** int/long only *)

type expr =
  | Int of int32
  | Long of int64
  | Single of float
  | Float of float
  | Var of string
  | Global of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of ty * expr
  | Load of ty * expr  (** typed load at a byte address *)
  | Load8u of expr  (** byte load, zero extended to int *)
  | Call of string * expr list
  | CallIndirect of expr * ty list * ty option
      (** table index, parameter types, result type *)
  | Select of expr * expr * expr  (** cond, then, else (no short circuit) *)
  | MemSize
  | MemGrow of expr

type stmt =
  | Assign of string * expr
  | SetGlobal of string * expr
  | Store of ty * expr * expr  (** type, address, value *)
  | Store8 of expr * expr  (** address, value (low byte of an int) *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** [For (i, lo, hi, body)]: i from lo while i < hi, step 1 *)
  | ForStep of string * expr * expr * expr * stmt list  (** explicit step *)
  | Switch of expr * stmt list list * stmt list  (** cases 0..n-1, default *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr  (** evaluate for side effects, drop any result *)

type func_def = {
  fd_name : string;
  fd_params : (string * ty) list;
  fd_result : ty option;
  fd_locals : (string * ty) list;
  fd_body : stmt list;
  fd_export : bool;
}

type program = {
  pr_globals : (string * ty * expr) list;  (** initialisers must be constants *)
  pr_funcs : func_def list;
  pr_memory_pages : int;  (** 0 for no memory *)
  pr_table : string list;  (** functions installed in the table, in order *)
  pr_data : (int * string) list;  (** initial memory contents *)
  pr_start : string option;
}

let program ?(globals = []) ?(memory_pages = 1) ?(table = []) ?(data = []) ?start funcs = {
  pr_globals = globals;
  pr_funcs = funcs;
  pr_memory_pages = memory_pages;
  pr_table = table;
  pr_data = data;
  pr_start = start;
}

let func ?(params = []) ?result ?(locals = []) ?(export = true) name body = {
  fd_name = name;
  fd_params = params;
  fd_result = result;
  fd_locals = locals;
  fd_body = body;
  fd_export = export;
}

(** Expression shorthands used pervasively by the workloads. Open
    [Mc_ast.Dsl] locally — it shadows the standard comparison and
    arithmetic operators. *)
module Dsl = struct
  let i k = Int (Int32.of_int k)
  let f x = Float x
  let v name = Var name
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
  let ( % ) a b = Binop (Rem, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( > ) a b = Binop (Gt, a, b)
  let ( <= ) a b = Binop (Le, a, b)
  let ( >= ) a b = Binop (Ge, a, b)
  let ( = ) a b = Binop (Eq, a, b)
  let ( <> ) a b = Binop (Ne, a, b)
  let ( && ) a b = Binop (LAnd, a, b)
  let ( || ) a b = Binop (LOr, a, b)
  let ( := ) name e = Assign (name, e)

  (** Float array access at [base] (bytes), 8-byte elements. *)
  let fload base idx = Load (TFloat, Binop (Add, base, Binop (Mul, idx, i 8)))
  let fstore base idx value = Store (TFloat, Binop (Add, base, Binop (Mul, idx, i 8)), value)

  (** Int array access at [base] (bytes), 4-byte elements. *)
  let iload base idx = Load (TInt, Binop (Add, base, Binop (Mul, idx, i 4)))
  let istore base idx value = Store (TInt, Binop (Add, base, Binop (Mul, idx, i 4)), value)
end
