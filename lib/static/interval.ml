open Wasm

type t =
  | Bot
  | Set of Value.t list
  | I32R of int32 * int32
  | I64R of int64 * int64
  | Top

let max_set = 8
let top = Top
let bot = Bot
let of_value v = Set [ v ]

(* Threshold ladders: interval bounds are always rounded outward onto
   these, so the set of representable intervals is finite and joins
   terminate without a dedicated widening operator. The small powers of
   two (and 2^k - 1 masks) are the values bitmask- and modulus-style
   table index computations actually produce. *)

let thresholds32 =
  [|
    Int32.min_int; -65536l; -4096l; -256l; -64l; -16l; -8l; -4l; -2l; -1l; 0l;
    1l; 2l; 3l; 4l; 7l; 8l; 15l; 16l; 31l; 32l; 63l; 64l; 127l; 128l; 255l;
    256l; 1023l; 1024l; 4095l; 4096l; 65535l; 65536l; Int32.max_int;
  |]

let thresholds64 =
  [|
    Int64.min_int; -65536L; -4096L; -256L; -64L; -16L; -8L; -4L; -2L; -1L; 0L;
    1L; 2L; 3L; 4L; 7L; 8L; 15L; 16L; 31L; 32L; 63L; 64L; 127L; 128L; 255L;
    256L; 1023L; 1024L; 4095L; 4096L; 65535L; 65536L; Int64.max_int;
  |]

let round_lo32 x =
  let best = ref Int32.min_int in
  Array.iter (fun th -> if th <= x && th > !best then best := th) thresholds32;
  !best

let round_hi32 x =
  let best = ref Int32.max_int in
  Array.iter (fun th -> if th >= x && th < !best then best := th) thresholds32;
  !best

let round_lo64 x =
  let best = ref Int64.min_int in
  Array.iter (fun th -> if th <= x && th > !best then best := th) thresholds64;
  !best

let round_hi64 x =
  let best = ref Int64.max_int in
  Array.iter (fun th -> if th >= x && th < !best then best := th) thresholds64;
  !best

let i32_range lo hi =
  if lo > hi then Bot
  else
    let lo = round_lo32 lo and hi = round_hi32 hi in
    if Int32.equal lo hi then Set [ Value.I32 lo ] else I32R (lo, hi)

let i64_range lo hi =
  if lo > hi then Bot
  else
    let lo = round_lo64 lo and hi = round_hi64 hi in
    if Int64.equal lo hi then Set [ Value.I64 lo ] else I64R (lo, hi)

(* Sorted-distinct invariant for [Set]. [contains] tests membership with
   the bit-exact [Value.equal], so the dedup order must distinguish the
   same bit patterns: Stdlib.compare on [F64 of float] is numeric and
   would merge -0.0 with +0.0 (losing one of them from a join). F32
   already carries its raw bits as an int32. *)
let val_compare a b =
  match (a, b) with
  | Value.F64 x, Value.F64 y ->
      Int64.compare (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Stdlib.compare a b

let norm_values vs = List.sort_uniq val_compare vs

let all_i32 vs =
  List.for_all (function Value.I32 _ -> true | _ -> false) vs

let all_i64 vs =
  List.for_all (function Value.I64 _ -> true | _ -> false) vs

let of_values vs =
  match norm_values vs with
  | [] -> Bot
  | vs when List.length vs <= max_set -> Set vs
  | vs when all_i32 vs ->
      let ks = List.map (function Value.I32 k -> k | _ -> assert false) vs in
      let lo = List.fold_left min Int32.max_int ks
      and hi = List.fold_left max Int32.min_int ks in
      i32_range lo hi
  | vs when all_i64 vs ->
      let ks = List.map (function Value.I64 k -> k | _ -> assert false) vs in
      let lo = List.fold_left min Int64.max_int ks
      and hi = List.fold_left max Int64.min_int ks in
      i64_range lo hi
  | _ -> Top

let bool01 = Set [ Value.I32 0l; Value.I32 1l ]

(* Hull of a value set with an i32/i64 interval; None when types mix. *)
let hull32 lo hi vs =
  if not (all_i32 vs) then None
  else
    let lo, hi =
      List.fold_left
        (fun (lo, hi) v ->
          match v with
          | Value.I32 k -> (min lo k, max hi k)
          | _ -> (lo, hi))
        (lo, hi) vs
    in
    Some (i32_range lo hi)

let hull64 lo hi vs =
  if not (all_i64 vs) then None
  else
    let lo, hi =
      List.fold_left
        (fun (lo, hi) v ->
          match v with
          | Value.I64 k -> (min lo k, max hi k)
          | _ -> (lo, hi))
        (lo, hi) vs
    in
    Some (i64_range lo hi)

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Set va, Set vb -> of_values (va @ vb)
  | (Set vs, I32R (lo, hi)) | (I32R (lo, hi), Set vs) -> (
      match hull32 lo hi vs with Some r -> r | None -> Top)
  | (Set vs, I64R (lo, hi)) | (I64R (lo, hi), Set vs) -> (
      match hull64 lo hi vs with Some r -> r | None -> Top)
  | I32R (a0, a1), I32R (b0, b1) -> i32_range (min a0 b0) (max a1 b1)
  | I64R (a0, a1), I64R (b0, b1) -> i64_range (min a0 b0) (max a1 b1)
  | I32R _, I64R _ | I64R _, I32R _ -> Top

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Set va, Set vb ->
      List.length va = List.length vb && List.for_all2 Value.equal va vb
  | I32R (a0, a1), I32R (b0, b1) -> Int32.equal a0 b0 && Int32.equal a1 b1
  | I64R (a0, a1), I64R (b0, b1) -> Int64.equal a0 b0 && Int64.equal a1 b1
  | _ -> false

let is_bot t = t = Bot

let contains t v =
  match (t, v) with
  | Bot, _ -> false
  | Top, _ -> true
  | Set vs, _ -> List.exists (Value.equal v) vs
  | I32R (lo, hi), Value.I32 k -> lo <= k && k <= hi
  | I64R (lo, hi), Value.I64 k -> lo <= k && k <= hi
  | (I32R _ | I64R _), _ -> false

let singleton = function Set [ v ] -> Some v | _ -> None
let values = function Set vs -> Some vs | Bot -> Some [] | _ -> None

let may_be_zero = function
  | Bot -> false
  | Top -> true
  | Set vs ->
      List.exists
        (function Value.I32 0l -> true | Value.I32 _ -> false | _ -> true)
        vs
  | I32R (lo, hi) -> lo <= 0l && 0l <= hi
  | I64R _ -> true

let may_be_nonzero = function
  | Bot -> false
  | Top -> true
  | Set vs ->
      List.exists (function Value.I32 0l -> false | _ -> true) vs
  | I32R (lo, hi) -> not (Int32.equal lo 0l && Int32.equal hi 0l)
  | I64R _ -> true

let may_select_case t i = contains t (Value.I32 (Int32.of_int i))

(* br_table interprets the index as unsigned: every negative i32 also
   selects the default. *)
let may_select_default t ~n_cases =
  let n = Int32.of_int n_cases in
  match t with
  | Bot -> false
  | Top -> true
  | Set vs ->
      List.exists
        (function Value.I32 k -> k < 0l || k >= n | _ -> true)
        vs
  | I32R (lo, hi) -> lo < 0l || hi >= n
  | I64R _ -> true

let nonneg_max_i32 = function
  | Set vs when all_i32 vs ->
      List.fold_left
        (fun acc v ->
          match (acc, v) with
          | Some m, Value.I32 k when k >= 0l -> Some (max m k)
          | _ -> None)
        (Some 0l) vs
  | I32R (lo, hi) when lo >= 0l -> Some hi
  | _ -> None

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Set vs -> "{" ^ String.concat "," (List.map Value.to_string vs) ^ "}"
  | I32R (lo, hi) -> Printf.sprintf "i32:[%ld,%ld]" lo hi
  | I64R (lo, hi) -> Printf.sprintf "i64:[%Ld,%Ld]" lo hi
