(** Instrumentation-soundness lint: statically verifies that an
    instrumented module is a faithful rewriting of its original (in the
    spirit of BREWasm's post-rewrite soundness checks), complementing the
    fuzzer's dynamic differential oracle.

    Checked invariants:
    - the instrumented import section is the original one followed by
      exactly the monomorphized hook imports recorded in the metadata
      (names, import module, signatures);
    - memory, data, table, global and type sections are unchanged (the
      original types remain a prefix), exports / element segments / start
      are unchanged up to the hook-insertion index remapping;
    - every original instruction reappears in the instrumented body, in
      order, with an {e identical abstract stack shape} at each original
      program point (so every inserted hook-call sequence is
      stack-neutral) — [drop] may be realised as a store to a fresh
      temporary, per the paper's Table 3;
    - inserted instructions come only from the instrumenter's vocabulary:
      constants, reads of any local, writes to fresh temporaries, calls to
      hook imports, i64-splitting arithmetic, and the [if]/[end] wrapper
      around conditional end-hooks;
    - functions pruned by selective instrumentation are kept verbatim
      (calls remapped only) and are indeed unreachable in the static call
      graph (the precise, abstract-interpretation-based graph when the
      type-pool one disagrees, since [~fold] prunes against the former);
    - hook sites discharged statically by [~fold] instrumentation
      ([Metadata.folded]) are re-justified against freshly recomputed
      abstract-interpretation facts: dead-folded sites must be
      unreachable, and folded constant arguments must match
      [Instrument.static_fold_args] on the original module.

    Branch/return sites the instrumenter skipped inside
    statically-unreachable code ([Metadata.dead_skipped]) are surfaced as
    [Info] findings. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** machine-readable class, e.g. ["order"], ["hook-import"] *)
  func : int option;  (** original function index *)
  at : int option;  (** original instruction index *)
  message : string;
}

val check : Wasabi.Instrument.result -> finding list
(** All findings, errors first. The original module is taken from the
    result's metadata. *)

val errors : finding list -> finding list
(** Only the [Error]-severity findings. *)

val to_string : finding -> string
(** One-line rendering, e.g. ["error[order] f3@17: original instruction
    i32.add lost"]. *)

val report : finding list -> string
(** Multi-line rendering plus a one-line summary. *)
