(** Per-function control-flow graphs over the flat instruction form.

    Basic blocks partition the body's instruction indices; block delimiters
    ([Block], [Loop], [End], [Else]) are ordinary instructions, so every
    program point of the instrumenter's location scheme maps to exactly one
    block. A virtual exit block (at pc = body length) collects [Return],
    branches to the function label, and the fall-off-the-end edge.

    Construction runs the validation algorithm ({!Wasm.Validate.Stack_tracker})
    alongside the structural scan, so every program point carries the
    abstract stack shape the validator computed there. *)

open Wasm

(** Why an edge is taken. [Jump] covers unconditional [br], [return]
    (modelled as a branch to the function label), and the skip over an
    else-arm when the then-arm completes. *)
type edge_kind =
  | Fallthrough
  | Jump
  | Taken  (** [br_if], condition true *)
  | NotTaken  (** [br_if], condition false *)
  | IfTrue
  | IfFalse
  | Case of int  (** [br_table] entry *)
  | Default  (** [br_table] default *)

type edge = {
  dst : int;  (** successor block id *)
  kind : edge_kind;
  carried : int option;
      (** [Some a]: a label-targeted branch; only the top [a] values survive
          the stack unwinding. [None]: the whole stack flows through. *)
}

type block = {
  id : int;
  first : int;  (** pc of the first instruction; body length for the exit block *)
  last : int;  (** pc of the last instruction; [first > last] for the exit block *)
  succs : edge list;
  preds : int list;
  stack_in : Validate.vknown list;  (** abstract stack at entry, top first *)
  dead_in : bool;  (** validator dead-code flag at entry *)
}

type t = {
  func : Ast.func;
  body : Ast.instr array;
  nlocals : int;  (** parameters + declared locals *)
  nparams : int;
  results : Types.value_type list;
  blocks : block array;
  block_at : int array;  (** pc -> block id, length [Array.length body + 1] *)
  entry : int;
  exit_ : int;
  stacks : Validate.vknown list array;  (** per-pc abstract stack, top first *)
  dead : bool array;  (** per-pc validator dead-code flag *)
}

val build : Validate.Module_ctx.t -> Ast.func -> t
(** Build the CFG of one function. The function must be valid.
    @raise Validate.Invalid on ill-typed code. *)

val successors : t -> int -> edge list
val predecessors : t -> int -> int list

val reachable_blocks : t -> bool array
(** Graph reachability from the entry block. *)

val unreachable_blocks : t -> block list
(** Non-exit blocks unreachable from the entry block: statically dead code. *)

val restrict : t -> keep:(int -> edge -> bool) -> t
(** [restrict t ~keep] drops terminator edges for which [keep last_pc edge]
    is false ([last_pc] is the pc of the block's terminating instruction)
    and recomputes predecessor lists. Fallthrough edges of non-terminator
    blocks are always kept. *)

val to_dot : ?label:string -> t -> string
(** GraphViz rendering: one node per block with its instruction range and
    mnemonics, edges annotated with their kind. *)
