(** Whole-module abstract interpretation over the {!Interval} value-set
    domain (after Paccamiccio et al., "Building Call Graph of WebAssembly
    Programs via Abstract Semantics").

    The analysis runs the {!Dataflow} solver intraprocedurally per
    function (solve, tighten infeasible branch edges with the inferred
    facts, re-solve) and connects functions through a worklist over the
    SCC condensation of a coarse call graph: argument facts join into
    callee parameter summaries, return facts join back into callers,
    and module globals are modelled as per-index abstract cells.
    [call_indirect] targets are resolved through the static table layout
    against the inferred index fact, which is what makes the precise
    call-graph mode ({!Callgraph.build}[ ~precise]) and hook folding
    ({!val:Wasabi.Instrument.instrument}[ ~fold]) possible.

    Soundness contract (checked end-to-end by the fuzzer's
    absint-soundness oracle): for every dynamically reachable program
    point, every concrete value is {!Interval.contains}-ed in the
    corresponding fact, every executed indirect call's table index and
    resolved target are contained in the recorded site, and every block
    the analysis reports dead never executes.

    Host escape hatches are over-approximated: imported and
    exported-mutable globals are [Top] cells; exported functions and —
    when the table escapes — element-segment entries are analyzed with
    [Top] parameters; calls into imports return [Top]. When the table
    escapes, indirect targets additionally include every export and
    element entry of the site's type (in the MVP the embedder can only
    obtain function references from exports and element segments), and
    such sites may also reach host functions, so their results are
    [Top]. *)

open Wasm

val table_layout : Ast.module_ -> escapes:bool -> int option array option
(** Static table layout: [Some slots] when every element segment has a
    constant offset into a non-escaping table, so slot contents cannot
    change at run time. [None] slots are uninitialised (calls trap). *)

(** {1 Intraprocedural engine}

    The same abstract machine with an uninformative environment (globals,
    call results and indirect targets all [Top]); {!Stackval} is a thin
    wrapper over this. *)

type intra

val analyze_intra : Validate.Module_ctx.t -> Cfg.t -> intra
val intra_value_at : intra -> pc:int -> depth:int -> Interval.t
val intra_live : intra -> pc:int -> bool

val tighten_edges : (int -> int -> Interval.t) -> Cfg.t -> Cfg.t
(** [tighten_edges value_at cfg] drops [br_if] / [br_table] terminator
    edges contradicted by the condition / index fact ([value_at pc depth],
    depth 0 = top of stack just before [pc]). *)

(** {1 Whole-module analysis} *)

type t

val analyze : Ast.module_ -> t
(** The module must be valid. Runs the interprocedural fixpoint and a
    final per-function recording pass; functions the fixpoint never
    reached are still analyzed (with [Top] parameters, effect-free) so
    every query below is total. *)

val value_at : t -> func:int -> pc:int -> depth:int -> Interval.t
(** Fact for the operand-stack slot [depth] (0 = top) just before
    executing [pc] of [func]. [Bot] when the point is unreachable, [Top]
    below the known stack or for imported functions. [pc] = body length
    addresses the function's exit point. *)

val live : t -> func:int -> pc:int -> bool
(** Whether the analysis considers the program point reachable. Imported
    functions and out-of-range pcs are not live. *)

val indirect_site : t -> func:int -> pc:int -> (Interval.t * int list) option
(** The inferred table-index fact and resolved target set of the
    [call_indirect] at [(func, pc)]; [None] when there is no such site or
    it is unreachable. The target list covers only module functions —
    when {!table_escapes}, sites may additionally reach host functions. *)

val global_fact : t -> int -> Interval.t
val param_facts : t -> int -> Interval.t list
val result_facts : t -> int -> Interval.t list

val reached : t -> int -> bool
(** Whether the interprocedural fixpoint reached the function (a sound
    over-approximation of "some export transitively calls it"). *)

val table_escapes : t -> bool
val n_sccs : t -> int

val dump_func : ?stacks:bool -> t -> int -> string
(** Per-function fact dump: signature summaries, indirect-call sites,
    dead pcs; [stacks] adds the per-pc abstract stack. *)

val summary : t -> string
