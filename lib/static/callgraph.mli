(** Whole-module static call graph with type-and-table-based indirect-call
    resolution (after Paccamiccio et al., "Building Call Graph of
    WebAssembly Programs via Abstract Semantics") and export-rooted
    reachability.

    [call_indirect] edges are over-approximated: a site of type [ft] may
    target any function of type [ft] listed in an element segment — or any
    function of type [ft] at all when the table escapes (is imported or
    exported, so the host can repopulate it). When the table layout is
    fully static and {!Stackval} proves the index constant, the target is
    resolved exactly; in [~precise] mode the whole-module abstract
    interpreter ({!Absint}) narrows every site to the table slots its
    inferred index {e set} can select and drops sites in statically-dead
    code. The graph is therefore a sound superset of any dynamically
    observed call graph, and functions unreachable from the roots
    (function exports, the start function, escaping table entries) can
    safely be skipped by selective instrumentation. *)

open Wasm

type t

val build : ?tighten:bool -> ?precise:bool -> Ast.module_ -> t
(** [tighten] (default [true]) runs {!Stackval} per function to resolve
    constant-index indirect calls exactly. [precise] (default [false])
    runs the interprocedural {!Absint} analysis instead, resolving
    indirect edges from inferred table-index sets; the result has at most
    the edges of the default mode. The module must be valid. *)

val n_funcs : t -> int
(** Size of the function index space (imports first). *)

val n_imports : t -> int

val edges : t -> (int * int) list
(** All caller/callee pairs, sorted, deduplicated. *)

val direct_edges : t -> (int * int) list
val indirect_edges : t -> (int * int) list

val callees : t -> int -> int list
val has_edge : t -> int -> int -> bool

val roots : t -> int list
(** Entry points callable by the host: function exports, the start
    function, and element-segment entries when the table escapes. *)

val table_escapes : t -> bool

val is_reachable : t -> int -> bool
(** Reachable from the {!roots}. *)

val dead_functions : t -> int list
(** Module-defined functions not reachable from any root: candidates for
    skipping during instrumentation. *)

val func_name : t -> int -> string option
(** Export name of a function, if any. *)

val to_dot : t -> string
(** GraphViz rendering; dead functions are greyed out, indirect edges
    dashed. *)

val summary : t -> string
(** One-paragraph human-readable summary (counts of nodes, edges, roots,
    dead functions). *)
