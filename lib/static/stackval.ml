(** Constant / stack-value analysis (see stackval.mli).

    Since the introduction of {!Absint} this is a thin wrapper over its
    intraprocedural engine: the same abstract machine over the
    {!Interval} value-set domain, run with an uninformative environment
    (globals and call results are [Top]). The historical two-point
    lattice ([Known v | Top]) is subsumed by {!Interval.singleton}. *)

open Wasm

type t = Absint.intra

let analyze (ctx : Validate.Module_ctx.t) (cfg : Cfg.t) : t =
  Absint.analyze_intra ctx cfg

let value_at t pc depth = Absint.intra_value_at t ~pc ~depth
let top_of_stack t pc = Interval.singleton (value_at t pc 0)

let tighten t (cfg : Cfg.t) : Cfg.t =
  Absint.tighten_edges (fun pc depth -> value_at t pc depth) cfg
