(** Constant / stack-value analysis (see stackval.mli).

    The lattice element is a per-block machine state: one abstract value
    per local plus an abstract operand stack. The stack representation is
    allowed to be {e shorter} than the real stack — missing lower slots
    mean "unknown" — which makes joining stacks of mismatched height (and
    the unwinding a taken branch performs) a simple truncation: a branch
    edge carries only the label's result values ({!Cfg.edge.carried});
    everything below becomes unknown at the target. *)

open Wasm
open Wasm.Ast

type aval = Top | Known of Value.t

let join_aval a b =
  match a, b with
  | Known x, Known y when Value.equal x y -> a
  | _ -> Top

let equal_aval a b =
  match a, b with
  | Top, Top -> true
  | Known x, Known y -> Value.equal x y
  | _ -> false

type machine = { locals : aval array; stack : aval list }
type state = Unreached | S of machine

module Lattice = struct
  type t = state

  let bottom = Unreached

  let rec join_stack s1 s2 =
    match s1, s2 with
    | a :: r1, b :: r2 -> join_aval a b :: join_stack r1 r2
    | _, [] | [], _ -> []  (* height mismatch: below this, unknown *)

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | S m1, S m2 ->
      S { locals = Array.map2 join_aval m1.locals m2.locals;
          stack = join_stack m1.stack m2.stack }

  let equal a b =
    match a, b with
    | Unreached, Unreached -> true
    | S m1, S m2 ->
      Array.for_all2 equal_aval m1.locals m2.locals
      && List.length m1.stack = List.length m2.stack
      && List.for_all2 equal_aval m1.stack m2.stack
    | _ -> false
end

module Solver = Dataflow.Make (Lattice)

(** Pop [k] abstract values (top first), padding with [Top] when the
    abstract stack is shorter than the real one. *)
let pop k stack =
  let rec go k stack acc =
    if k = 0 then (List.rev acc, stack)
    else
      match stack with
      | v :: rest -> go (k - 1) rest (v :: acc)
      | [] -> go (k - 1) [] (Top :: acc)
  in
  go k stack []

let fold1 f v = match v with Known x -> (try Known (f x) with Value.Trap _ -> Top) | Top -> Top

let fold2 f a b =
  match a, b with
  | Known x, Known y -> (try Known (f x y) with Value.Trap _ -> Top)
  | _ -> Top

let step (ctx : Validate.Module_ctx.t) (m : machine) (ins : instr) : machine =
  let set_local i v =
    let locals = Array.copy m.locals in
    locals.(i) <- v;
    locals
  in
  let types = ctx.Validate.Module_ctx.types in
  let func_types = ctx.Validate.Module_ctx.func_types in
  match ins with
  | Nop | Block _ | Loop _ | End | Else | Br _ | Return | Unreachable -> m
  | If _ | BrIf _ | BrTable _ | Drop | GlobalSet _ ->
    let _, stack = pop 1 m.stack in
    { m with stack }
  | Call f ->
    let ft = func_types.(f) in
    let _, stack = pop (List.length ft.Types.params) m.stack in
    { m with stack = List.map (fun _ -> Top) ft.Types.results @ stack }
  | CallIndirect ti ->
    let ft = types.(ti) in
    let _, stack = pop (1 + List.length ft.Types.params) m.stack in
    { m with stack = List.map (fun _ -> Top) ft.Types.results @ stack }
  | Select ->
    (match pop 3 m.stack with
     | [ c; b; a ], stack ->
       let v =
         match c with
         | Known (Value.I32 k) -> if k <> 0l then a else b
         | _ -> join_aval a b
       in
       { m with stack = v :: stack }
     | _ -> assert false)
  | LocalGet x -> { m with stack = m.locals.(x) :: m.stack }
  | LocalSet x ->
    (match pop 1 m.stack with
     | [ v ], stack -> { locals = set_local x v; stack }
     | _ -> assert false)
  | LocalTee x ->
    (match m.stack with
     | v :: _ -> { m with locals = set_local x v }
     | [] -> { m with locals = set_local x Top })
  | GlobalGet _ | MemorySize -> { m with stack = Top :: m.stack }
  | Load _ | MemoryGrow ->
    let _, stack = pop 1 m.stack in
    { m with stack = Top :: stack }
  | Store _ ->
    let _, stack = pop 2 m.stack in
    { m with stack }
  | Const v -> { m with stack = Known v :: m.stack }
  | Test op ->
    (match pop 1 m.stack with
     | [ a ], stack -> { m with stack = fold1 (Eval_numeric.eval_testop op) a :: stack }
     | _ -> assert false)
  | Unary op ->
    (match pop 1 m.stack with
     | [ a ], stack -> { m with stack = fold1 (Eval_numeric.eval_unop op) a :: stack }
     | _ -> assert false)
  | Convert op ->
    (match pop 1 m.stack with
     | [ a ], stack -> { m with stack = fold1 (Eval_numeric.eval_cvtop op) a :: stack }
     | _ -> assert false)
  | Compare op ->
    (match pop 2 m.stack with
     | [ b; a ], stack -> { m with stack = fold2 (Eval_numeric.eval_relop op) a b :: stack }
     | _ -> assert false)
  | Binary op ->
    (match pop 2 m.stack with
     | [ b; a ], stack -> { m with stack = fold2 (Eval_numeric.eval_binop op) a b :: stack }
     | _ -> assert false)

let transfer ctx (cfg : Cfg.t) id (st : state) : state =
  match st with
  | Unreached -> Unreached
  | S m ->
    let b = cfg.Cfg.blocks.(id) in
    let m = ref m in
    for pc = b.Cfg.first to b.Cfg.last do
      m := step ctx !m cfg.Cfg.body.(pc)
    done;
    S !m

let edge_adjust (e : Cfg.edge) (st : state) : state =
  match st, e.Cfg.carried with
  | Unreached, _ | _, None -> st
  | S m, Some a ->
    let carried, _ = pop (min a (List.length m.stack)) m.stack in
    S { m with stack = carried }

type t = {
  cfg : Cfg.t;
  tops : Value.t option array;  (** known top-of-stack just before each pc *)
}

let analyze (ctx : Validate.Module_ctx.t) (cfg : Cfg.t) : t =
  let init =
    let locals =
      Array.init cfg.Cfg.nlocals (fun i ->
        if i < cfg.Cfg.nparams then Top
        else
          (* declared locals are zero-initialised *)
          let ty = List.nth cfg.Cfg.func.locals (i - cfg.Cfg.nparams) in
          Known (Value.default ty))
    in
    S { locals; stack = [] }
  in
  let res = Solver.solve ~edge:edge_adjust cfg ~init ~transfer:(transfer ctx) in
  let n = Array.length cfg.Cfg.body in
  let tops = Array.make (max n 1) None in
  Array.iter
    (fun (b : Cfg.block) ->
       match res.Solver.before.(b.Cfg.id) with
       | Unreached -> ()
       | S m ->
         let m = ref m in
         for pc = b.Cfg.first to b.Cfg.last do
           (match !m.stack with
            | Known v :: _ -> tops.(pc) <- Some v
            | _ -> ());
           m := step ctx !m cfg.Cfg.body.(pc)
         done)
    cfg.Cfg.blocks;
  { cfg; tops }

let top_of_stack t pc =
  if pc >= 0 && pc < Array.length t.cfg.Cfg.body then t.tops.(pc) else None

let tighten t (cfg : Cfg.t) : Cfg.t =
  Cfg.restrict cfg ~keep:(fun pc (e : Cfg.edge) ->
    match cfg.Cfg.body.(pc), top_of_stack t pc with
    | BrIf _, Some (Value.I32 k) ->
      (match e.Cfg.kind with
       | Cfg.Taken -> k <> 0l
       | Cfg.NotTaken -> k = 0l
       | _ -> true)
    | BrTable (ls, _), Some (Value.I32 k) ->
      let n_cases = List.length ls in
      (* the index is interpreted as unsigned: out of range selects the default *)
      let selected =
        if k >= 0l && k < Int32.of_int n_cases then Cfg.Case (Int32.to_int k) else Cfg.Default
      in
      e.Cfg.kind = selected
    | _ -> true)
