(** Constant / stack-value analysis: an abstract interpretation over
    {!Dataflow} that tracks statically-known constants through locals and
    the operand stack (folding pure numeric operators with the
    interpreter's own {!Wasm.Eval_numeric} semantics).

    Its product is the statically-known top-of-stack value at every
    program point, which tightens [br_table] / [br_if] edge sets
    ({!tighten}) and resolves constant-index [call_indirect] targets
    exactly (used by {!Callgraph}). *)

open Wasm

type t

val analyze : Validate.Module_ctx.t -> Cfg.t -> t

val top_of_stack : t -> int -> Value.t option
(** [top_of_stack t pc] is the statically-known value on top of the
    operand stack just before executing the instruction at [pc], if the
    analysis proved it constant on every path. *)

val tighten : t -> Cfg.t -> Cfg.t
(** Narrow terminator edges using known constants: a [br_if] whose
    condition is constant keeps only its taken (or not-taken) edge, a
    [br_table] with a constant index keeps only the selected case. The
    result exposes statically-dead successors via
    {!Cfg.unreachable_blocks}. *)
