(** Constant / stack-value analysis: the intraprocedural face of the
    {!Absint} abstract interpreter, tracking {!Interval} value sets
    through locals and the operand stack (folding pure numeric operators
    with the interpreter's own {!Wasm.Eval_numeric} semantics).

    Its product is a per-program-point abstract stack, which tightens
    [br_table] / [br_if] edge sets ({!tighten}) and resolves
    constant-index [call_indirect] targets exactly (used by
    {!Callgraph}). For whole-module facts (function summaries, global
    cells, indirect-call target sets) use {!Absint.analyze}. *)

open Wasm

type t

val analyze : Validate.Module_ctx.t -> Cfg.t -> t

val value_at : t -> int -> int -> Interval.t
(** [value_at t pc depth] is the fact for the operand-stack slot at
    [depth] (0 = top) just before executing the instruction at [pc]:
    {!Interval.bot} when the point is unreachable, {!Interval.top} below
    the known portion of the stack. *)

val top_of_stack : t -> int -> Value.t option
(** [top_of_stack t pc] is the statically-known value on top of the
    operand stack just before executing the instruction at [pc], if the
    analysis proved it constant on every path. *)

val tighten : t -> Cfg.t -> Cfg.t
(** Narrow terminator edges using the inferred facts: a [br_if] whose
    condition cannot be zero (or nonzero) keeps only the corresponding
    edge, a [br_table] keeps only the cases its index set can select.
    The result exposes statically-dead successors via
    {!Cfg.unreachable_blocks}. *)
