(** Instrumentation-soundness lint (see lint.mli).

    The core is a greedy two-pointer subsequence match between the
    original and instrumented bodies, driven by two validation trackers
    running in lock-step: an instrumented instruction is accepted as the
    image of the next original instruction only when the instructions
    agree (after index remapping) {e and} the two abstract stacks are
    identical at that point. The shape guard is what makes greedy matching
    safe: an inserted hook-argument constant can only be mistaken for an
    original constant when it pushes the same value at the same stack
    shape, in which case the match is semantically interchangeable and the
    two streams re-synchronise within a few instructions. Everything
    between matches must be stack-neutral (enforced by the shape equality
    at match points) and drawn from the instrumenter's insertion
    vocabulary. *)

open Wasm
open Wasm.Ast
module W = Wasabi
module Tracker = Validate.Stack_tracker

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  func : int option;
  at : int option;
  message : string;
}

(* [Stdlib.compare] rather than [=]: instruction immediates contain
   floats, and NaN-valued constants must compare equal to themselves *)
let eq a b = Stdlib.compare a b = 0

let finding ?func ?at severity code fmt =
  Printf.ksprintf (fun message -> { severity; code; func; at; message }) fmt

(* ------------------------------------------------------------------ *)
(* Import / section checks *)

let check_imports (orig : module_) (inst : module_) (md : W.Metadata.t) =
  let out = ref [] in
  let add f = out := f :: !out in
  let inst_types = Array.of_list inst.types in
  let n_orig_imports = List.length orig.imports in
  let rec split n l =
    if n = 0 then ([], l)
    else match l with [] -> ([], []) | x :: r -> let a, b = split (n - 1) r in (x :: a, b)
  in
  let kept, hook_imports = split n_orig_imports inst.imports in
  if not (eq kept orig.imports) then
    add (finding Error "import" "original imports are not preserved as a prefix");
  let specs = md.W.Metadata.hook_specs in
  if List.length hook_imports <> Array.length specs then
    add
      (finding Error "hook-import" "%d hook imports for %d recorded hook specs"
         (List.length hook_imports) (Array.length specs))
  else
    List.iteri
      (fun k im ->
         let spec = specs.(k) in
         if im.module_name <> W.Hook.import_module then
           add
             (finding Error "hook-import" "hook %d imported from %S, expected %S" k
                im.module_name W.Hook.import_module);
         if im.item_name <> W.Hook.name spec then
           add
             (finding Error "hook-import" "hook %d named %S, expected %S" k im.item_name
                (W.Hook.name spec));
         match im.idesc with
         | FuncImport ti ->
           let expect = W.Hook.signature ~split_i64:md.W.Metadata.split_i64 spec in
           if ti < 0 || ti >= Array.length inst_types
              || not (Types.equal_func_type inst_types.(ti) expect)
           then
             add
               (finding Error "hook-import" "hook %d (%s) has a wrong signature" k
                  (W.Hook.name spec))
         | _ -> add (finding Error "hook-import" "hook %d is not a function import" k))
      hook_imports;
  !out

let check_sections (orig : module_) (inst : module_) ~remap =
  let out = ref [] in
  let add f = out := f :: !out in
  if not (eq orig.memories inst.memories) then
    add (finding Error "section" "memory section changed");
  if not (eq orig.datas inst.datas) then
    add (finding Error "section" "data section changed");
  if not (eq orig.tables inst.tables) then
    add (finding Error "section" "table section changed");
  if not (eq orig.globals inst.globals) then
    add (finding Error "section" "global section changed");
  (* original types must be preserved as a prefix (hook signatures append) *)
  let rec is_prefix a b =
    match a, b with
    | [], _ -> true
    | x :: a', y :: b' -> Types.equal_func_type x y && is_prefix a' b'
    | _, [] -> false
  in
  if not (is_prefix orig.types inst.types) then
    add (finding Error "section" "original types are not preserved as a prefix");
  if List.length orig.exports <> List.length inst.exports then
    add (finding Error "export" "export count changed")
  else
    List.iter2
      (fun (a : export) (b : export) ->
         if a.name <> b.name then
           add (finding Error "export" "export %S renamed to %S" a.name b.name)
         else
           let ok =
             match a.edesc, b.edesc with
             | FuncExport i, FuncExport j -> j = remap i
             | da, db -> eq da db
           in
           if not ok then
             add (finding Error "export" "export %S maps to the wrong index" a.name))
      orig.exports inst.exports;
  (match orig.start, inst.start with
   | None, None -> ()
   | Some s, Some s' when s' = remap s -> ()
   | _ -> add (finding Error "section" "start function changed"));
  if List.length orig.elems <> List.length inst.elems then
    add (finding Error "section" "element segment count changed")
  else
    List.iter2
      (fun (a : elem_segment) (b : elem_segment) ->
         if a.etable <> b.etable || not (eq a.eoffset b.eoffset)
            || not (eq (List.map remap a.einit) b.einit)
         then add (finding Error "section" "element segment changed"))
      orig.elems inst.elems;
  !out

(* ------------------------------------------------------------------ *)
(* Per-function body check *)

(** Instructions the instrumenter may insert between original ones:
    hook-argument pushes (constants, local reads, i64 splitting), value
    plumbing through fresh temporaries, calls to hook imports, and the
    [if]/[end] wrapper around conditional end-hook calls. *)
let inserted_ok ~first_temp ~is_hook ins =
  match ins with
  | Const _ | LocalGet _ -> true
  | LocalSet l | LocalTee l -> l >= first_temp
  | Call k -> is_hook k
  | Convert I32WrapI64 -> true
  | Binary (IBin (Types.S64, ShrS)) -> true
  | If None | End -> true
  | _ -> false

let check_func ~ctx_o ~ctx_i ~remap ~is_hook ~fidx (f : func) (g : func) =
  let out = ref [] in
  let add f = out := f :: !out in
  if f.ftype <> g.ftype then
    add (finding Error "func-type" ~func:fidx "function type index changed");
  let rec is_prefix a b =
    match a, b with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _, [] -> false
  in
  if not (is_prefix f.locals g.locals) then
    add (finding Error "locals" ~func:fidx "original locals are not preserved as a prefix");
  let nparams = List.length ctx_o.Validate.Module_ctx.types.(f.ftype).Types.params in
  let first_temp = nparams + List.length f.locals in
  let ob = Array.of_list f.body and ib = Array.of_list g.body in
  let no = Array.length ob and ni = Array.length ib in
  let tr_o = Tracker.create_in ctx_o f and tr_i = Tracker.create_in ctx_i g in
  let shapes_ok () =
    Tracker.in_dead_code tr_o || Tracker.in_dead_code tr_i
    || (Tracker.value_depth tr_o = Tracker.value_depth tr_i
        && Tracker.stack tr_o = Tracker.stack tr_i)
  in
  let expected j = match ob.(j) with Call t -> Call (remap t) | ins -> ins in
  let matches j i =
    let instr_ok =
      eq ib.(i) (expected j)
      || (match ob.(j), ib.(i) with
          | Drop, LocalSet l -> l >= first_temp  (* Table 3, row 4 *)
          | _ -> false)
    in
    instr_ok && shapes_ok ()
  in
  let insertions_flagged = ref 0 in
  let flag_insertion i =
    if not (inserted_ok ~first_temp ~is_hook ib.(i)) && !insertions_flagged < 5 then begin
      incr insertions_flagged;
      add
        (finding Error "insertion" ~func:fidx
           "inserted instruction %s is outside the instrumenter's vocabulary"
           (Ast.string_of_instr ib.(i)))
    end
  in
  (try
     let j = ref 0 and i = ref 0 in
     let lost = ref false in
     while (not !lost) && !j < no do
       if !i >= ni then begin
         lost := true;
         add
           (finding Error "order" ~func:fidx ~at:!j
              "original instruction %s lost (or reordered / stack shape changed)"
              (Ast.string_of_instr ob.(!j)))
       end
       else if matches !j !i then begin
         Tracker.step tr_o ob.(!j);
         Tracker.step tr_i ib.(!i);
         incr j;
         incr i
       end
       else begin
         flag_insertion !i;
         Tracker.step tr_i ib.(!i);
         incr i
       end
     done;
     if not !lost then begin
       for k = !i to ni - 1 do
         flag_insertion k;
         Tracker.step tr_i ib.(k)
       done;
       if not (shapes_ok ()) then
         add
           (finding Error "stack-shape" ~func:fidx ~at:no
              "stack shape differs at the end of the function body");
       Tracker.finish tr_o;
       Tracker.finish tr_i
     end
   with Validate.Invalid msg ->
     add (finding Error "invalid" ~func:fidx "body does not validate: %s" msg));
  !out

let check_pruned ~remap ~fidx (f : func) (g : func) =
  let expect =
    { f with body = List.map (function Call t -> Call (remap t) | i -> i) f.body }
  in
  if eq expect g then []
  else [ finding Error "pruned" ~func:fidx "pruned function was modified beyond call remapping" ]

(* ------------------------------------------------------------------ *)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let check (r : W.Instrument.result) : finding list =
  let md = r.W.Instrument.metadata in
  let orig = md.W.Metadata.original in
  let inst = r.W.Instrument.instrumented in
  let n_imp = md.W.Metadata.num_original_func_imports in
  let n_orig = Ast.num_funcs orig in
  let h = md.W.Metadata.num_hooks in
  let remap = W.Instrument.remap_index ~n_imp ~n_orig ~h in
  let is_hook k = k >= n_imp && k < n_imp + h in
  let out = ref [] in
  let add l = out := l @ !out in
  add (check_imports orig inst md);
  add (check_sections orig inst ~remap);
  if List.length orig.funcs <> List.length inst.funcs then
    add [ finding Error "section" "defined function count changed" ]
  else begin
    let ctx_o = Validate.Module_ctx.create orig in
    match Validate.Module_ctx.create inst with
    | exception Validate.Invalid msg ->
      add [ finding Error "invalid" "instrumented module context: %s" msg ]
    | ctx_i ->
      List.iteri
        (fun k (f, g) ->
           let fidx = n_imp + k in
           if List.mem fidx md.W.Metadata.pruned_funcs then
             add (check_pruned ~remap ~fidx f g)
           else add (check_func ~ctx_o ~ctx_i ~remap ~is_hook ~fidx f g))
        (List.combine orig.funcs inst.funcs)
  end;
  (* selective instrumentation must only prune statically-dead functions;
     with [~fold] the pruner uses the abstract-interpretation call graph,
     so a function reachable in the type-pool graph is re-checked against
     the precise one before being flagged *)
  if md.W.Metadata.pruned_funcs <> [] then begin
    let cg = Static.Callgraph.build orig in
    let pcg = lazy (Static.Callgraph.build ~precise:true orig) in
    List.iter
      (fun fidx ->
         if Static.Callgraph.is_reachable cg fidx
            && Static.Callgraph.is_reachable (Lazy.force pcg) fidx
         then
           add
             [ finding Error "pruned" ~func:fidx
                 "pruned function is reachable from an export/start root" ])
      md.W.Metadata.pruned_funcs
  end;
  (* every statically-discharged hook site must be justified by the facts
     recomputed from the original module *)
  if md.W.Metadata.folded <> [] then begin
    let fx = Static.Absint.analyze orig in
    let bodies = Array.of_list orig.funcs in
    let instr_at (loc : W.Location.t) =
      let i = loc.W.Location.func - n_imp in
      if i < 0 || i >= Array.length bodies then None
      else List.nth_opt bodies.(i).body loc.W.Location.instr
    in
    List.iter
      (fun site ->
         match site with
         | W.Metadata.F_dead loc ->
           if Static.Absint.live fx ~func:loc.W.Location.func ~pc:loc.W.Location.instr
           then
             add
               [ finding Error "fold" ~func:loc.W.Location.func ~at:loc.W.Location.instr
                   "dead-folded site is live in the recomputed facts" ]
         | W.Metadata.F_args (loc, vs) ->
           (match instr_at loc with
            | None ->
              add
                [ finding Error "fold" ~func:loc.W.Location.func ~at:loc.W.Location.instr
                    "folded site does not exist in the original module" ]
            | Some ins ->
              let agree =
                match
                  W.Instrument.static_fold_args fx ~func:loc.W.Location.func
                    ~at:loc.W.Location.instr ins
                with
                | Some vs' -> List.length vs = List.length vs' && List.for_all2 eq vs vs'
                | None -> false
              in
              if not agree then
                add
                  [ finding Error "fold" ~func:loc.W.Location.func ~at:loc.W.Location.instr
                      "folded constant arguments disagree with the recomputed facts" ]))
      md.W.Metadata.folded
  end;
  List.iter
    (fun (loc : W.Location.t) ->
       add
         [ finding Info "dead-skip" ~func:loc.W.Location.func ~at:loc.W.Location.instr
             "branch/return in statically-unreachable code left uninstrumented" ])
    md.W.Metadata.dead_skipped;
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
    (List.rev !out)

let errors = List.filter (fun f -> f.severity = Error)

let to_string f =
  let sev = match f.severity with Error -> "error" | Warning -> "warning" | Info -> "info" in
  let loc =
    match f.func, f.at with
    | Some fn, Some at -> Printf.sprintf " f%d@%d" fn at
    | Some fn, None -> Printf.sprintf " f%d" fn
    | None, _ -> ""
  in
  Printf.sprintf "%s[%s]%s: %s" sev f.code loc f.message

let report findings =
  let lines = List.map to_string findings in
  let n_err = List.length (errors findings) in
  let summary =
    if findings = [] then "lint: clean"
    else
      Printf.sprintf "lint: %d finding%s (%d error%s)"
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
        n_err
        (if n_err = 1 then "" else "s")
  in
  String.concat "\n" (lines @ [ summary ])
