(** Whole-module static call graph (see callgraph.mli). *)

open Wasm
open Wasm.Ast

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  n_funcs : int;
  n_imports : int;
  direct : Pair_set.t;
  indirect : Pair_set.t;
  succ : int list array;
  roots : int list;
  reachable_ : bool array;
  table_escapes_ : bool;
  names : (int, string) Hashtbl.t;
}

let build ?(tighten = true) ?(precise = false) (m : module_) : t =
  let ctx = Validate.Module_ctx.create m in
  let func_types = ctx.Validate.Module_ctx.func_types in
  let types = ctx.Validate.Module_ctx.types in
  let n_imports = num_imported_funcs m in
  let n_funcs = Array.length func_types in
  let exported_table =
    List.exists (fun e -> match e.edesc with TableExport _ -> true | _ -> false) m.exports
  in
  let imported_table =
    List.exists (fun i -> match i.idesc with TableImport _ -> true | _ -> false) m.imports
  in
  let table_escapes_ = exported_table || imported_table in
  let layout = Absint.table_layout m ~escapes:table_escapes_ in
  let elem_funcs = List.sort_uniq compare (List.concat_map (fun e -> e.einit) m.elems) in
  let has_table = ctx.Validate.Module_ctx.has_table in
  let candidates_of_type ft =
    if not has_table then []
    else
      let pool =
        if table_escapes_ then List.init n_funcs Fun.id else elem_funcs
      in
      List.filter (fun f -> Types.equal_func_type func_types.(f) ft) pool
  in
  (* precise mode: whole-module abstract interpretation resolves indirect
     targets from inferred table-index sets and drops call sites in
     statically-dead code *)
  let facts = if precise then Some (Absint.analyze m) else None in
  let direct = ref Pair_set.empty in
  let indirect = ref Pair_set.empty in
  List.iteri
    (fun i (f : func) ->
       let caller = n_imports + i in
       let sv =
         if facts = None && tighten
            && List.exists (function CallIndirect _ -> true | _ -> false) f.body
         then Some (Stackval.analyze ctx (Cfg.build ctx f))
         else None
       in
       List.iteri
         (fun pc ins ->
            match ins with
            | Call callee ->
              let dead_site =
                match facts with
                | Some fx -> not (Absint.live fx ~func:caller ~pc)
                | None -> false
              in
              if not dead_site then direct := Pair_set.add (caller, callee) !direct
            | CallIndirect ti ->
              let ft = types.(ti) in
              let targets =
                match facts with
                | Some fx ->
                  (match Absint.indirect_site fx ~func:caller ~pc with
                   | Some (_, ts) -> ts
                   | None -> []  (* dead site *))
                | None ->
                  let exact =
                    match layout, sv with
                    | Some slots, Some sv ->
                      (match Stackval.top_of_stack sv pc with
                       | Some (Value.I32 k) ->
                         let k = Int32.to_int k in
                         if k >= 0 && k < Array.length slots then
                           (* out-of-range or type-mismatched slots trap: no edge *)
                           Some
                             (match slots.(k) with
                              | Some callee
                                when Types.equal_func_type func_types.(callee) ft ->
                                [ callee ]
                              | _ -> [])
                         else Some []
                       | _ -> None)
                    | _ -> None
                  in
                  (match exact with Some ts -> ts | None -> candidates_of_type ft)
              in
              List.iter
                (fun callee -> indirect := Pair_set.add (caller, callee) !indirect)
                targets
            | _ -> ())
         f.body)
    m.funcs;
  let succ = Array.make (max n_funcs 1) [] in
  Pair_set.iter (fun (a, b) -> succ.(a) <- b :: succ.(a)) (Pair_set.union !direct !indirect);
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq compare l) succ;
  let export_roots =
    List.filter_map (fun e -> match e.edesc with FuncExport i -> Some i | _ -> None) m.exports
  in
  let roots =
    List.sort_uniq compare
      (export_roots
       @ Option.to_list m.start
       @ (if table_escapes_ then elem_funcs else []))
  in
  let reachable_ = Array.make (max n_funcs 1) false in
  let rec visit f =
    if f < n_funcs && not reachable_.(f) then begin
      reachable_.(f) <- true;
      List.iter visit succ.(f)
    end
  in
  List.iter visit roots;
  let names = Hashtbl.create 16 in
  List.iter
    (fun e ->
       match e.edesc with
       | FuncExport i -> if not (Hashtbl.mem names i) then Hashtbl.add names i e.name
       | _ -> ())
    m.exports;
  { n_funcs; n_imports; direct = !direct; indirect = !indirect; succ; roots;
    reachable_; table_escapes_; names }

let n_funcs t = t.n_funcs
let n_imports t = t.n_imports
let edges t = Pair_set.elements (Pair_set.union t.direct t.indirect)
let direct_edges t = Pair_set.elements t.direct
let indirect_edges t = Pair_set.elements t.indirect
let callees t f = if f < 0 || f >= t.n_funcs then [] else t.succ.(f)
let has_edge t a b = Pair_set.mem (a, b) t.direct || Pair_set.mem (a, b) t.indirect
let roots t = t.roots
let table_escapes t = t.table_escapes_
let is_reachable t f = f >= 0 && f < t.n_funcs && t.reachable_.(f)

let dead_functions t =
  List.filter (fun f -> not t.reachable_.(f))
    (List.init (t.n_funcs - t.n_imports) (fun i -> t.n_imports + i))

let func_name t f = Hashtbl.find_opt t.names f

let node_label t f =
  match func_name t f with
  | Some n -> Printf.sprintf "f%d %S" f n
  | None -> Printf.sprintf "f%d" f

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph callgraph {\n  node [shape=ellipse fontname=monospace];\n";
  for f = 0 to t.n_funcs - 1 do
    let attrs = ref [] in
    if f < t.n_imports then attrs := "shape=box" :: !attrs;
    if not t.reachable_.(f) then attrs := "style=filled" :: "fillcolor=lightgrey" :: !attrs;
    if List.mem f t.roots then attrs := "penwidth=2" :: !attrs;
    Buffer.add_string buf
      (Printf.sprintf "  f%d [label=\"%s\"%s];\n" f (node_label t f)
         (if !attrs = [] then "" else " " ^ String.concat " " !attrs))
  done;
  Pair_set.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  f%d -> f%d;\n" a b))
    t.direct;
  Pair_set.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  f%d -> f%d [style=dashed];\n" a b))
    t.indirect;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary t =
  let dead = dead_functions t in
  Printf.sprintf
    "%d functions (%d imported), %d direct + %d indirect edges, %d roots%s, %d unreachable%s"
    t.n_funcs t.n_imports
    (Pair_set.cardinal t.direct) (Pair_set.cardinal t.indirect)
    (List.length t.roots)
    (if t.table_escapes_ then " (table escapes)" else "")
    (List.length dead)
    (match dead with
     | [] -> ""
     | l ->
       Printf.sprintf " [%s]"
         (String.concat " " (List.map (fun f -> Printf.sprintf "f%d" f) l)))
