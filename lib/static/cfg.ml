(** Per-function control-flow graph construction (see cfg.mli).

    One linear scan resolves structured control flow: a control stack of
    open blocks (mirroring the instrumenter's abstract control stack,
    paper Section 2.4.4) turns relative branch labels into absolute
    instruction indices — [loop] targets its first body instruction,
    [block]/[if] target the instruction after their [End], the function
    label targets the virtual exit at pc = body length. A second scan over
    the recorded leaders cuts basic blocks and wires edges. *)

open Wasm
open Wasm.Ast

type edge_kind =
  | Fallthrough
  | Jump
  | Taken
  | NotTaken
  | IfTrue
  | IfFalse
  | Case of int
  | Default

type edge = {
  dst : int;
  kind : edge_kind;
  carried : int option;
}

type block = {
  id : int;
  first : int;
  last : int;
  succs : edge list;
  preds : int list;
  stack_in : Validate.vknown list;
  dead_in : bool;
}

type t = {
  func : Ast.func;
  body : Ast.instr array;
  nlocals : int;
  nparams : int;
  results : Types.value_type list;
  blocks : block array;
  block_at : int array;
  entry : int;
  exit_ : int;
  stacks : Validate.vknown list array;
  dead : bool array;
}

(** Open structured block during the scan. [c_arity] is the branch arity of
    the block's label (values a taken branch carries through unwinding). *)
type centry = {
  ckind : [ `Block | `Loop | `If ];
  c_begin : int;
  c_end : int;
}

let bt_arity : block_type -> int = function None -> 0 | Some _ -> 1

let build (ctx : Validate.Module_ctx.t) (f : func) : t =
  let body = Array.of_list f.body in
  let n = Array.length body in
  let ft = ctx.Validate.Module_ctx.types.(f.ftype) in
  let nparams = List.length ft.Types.params in
  let nlocals = nparams + List.length f.locals in
  let results = ft.Types.results in
  let jumps = Interp.compute_jumps body in
  let end_of = jumps.Interp.end_of and else_of = jumps.Interp.else_of in
  (* abstract stack shapes: run the validator alongside *)
  let stacks = Array.make (n + 1) [] in
  let dead = Array.make (n + 1) false in
  let tr = Validate.Stack_tracker.create_in ctx f in
  for pc = 0 to n - 1 do
    stacks.(pc) <- Validate.Stack_tracker.stack tr;
    dead.(pc) <- Validate.Stack_tracker.in_dead_code tr;
    Validate.Stack_tracker.step tr body.(pc)
  done;
  stacks.(n) <- Validate.Stack_tracker.stack tr;
  dead.(n) <- Validate.Stack_tracker.in_dead_code tr;
  Validate.Stack_tracker.finish tr;
  (* branch-label resolution: target pc and carried arity *)
  let ctrl = ref [] in
  let rec resolve stack l =
    match stack, l with
    | [], _ -> (n, List.length results)  (* the function label *)
    | e :: _, 0 ->
      let target = match e.ckind with `Loop -> e.c_begin + 1 | _ -> e.c_end + 1 in
      let arity =
        match e.ckind, body.(e.c_begin) with
        | `Loop, _ -> 0  (* MVP loops have no label results *)
        | _, (Block bt | If bt) -> bt_arity bt
        | _ -> 0
      in
      (target, arity)
    | _ :: rest, l -> resolve rest (l - 1)
  in
  let branch l =
    let target, arity = resolve !ctrl l in
    (target, Some arity)
  in
  (* terminator edges, by pc; None = plain fallthrough *)
  let term = Array.make (max n 1) None in
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  leader.(n) <- true;
  let set_term pc edges =
    term.(pc) <- Some edges;
    List.iter (fun (_, t, _) -> leader.(t) <- true) edges;
    if pc + 1 <= n then leader.(pc + 1) <- true
  in
  for pc = 0 to n - 1 do
    match body.(pc) with
    | Block _ -> ctrl := { ckind = `Block; c_begin = pc; c_end = end_of.(pc) } :: !ctrl
    | Loop _ -> ctrl := { ckind = `Loop; c_begin = pc; c_end = end_of.(pc) } :: !ctrl
    | If _ ->
      ctrl := { ckind = `If; c_begin = pc; c_end = end_of.(pc) } :: !ctrl;
      let false_target = if else_of.(pc) >= 0 then else_of.(pc) + 1 else end_of.(pc) + 1 in
      set_term pc [ (IfTrue, pc + 1, None); (IfFalse, false_target, None) ]
    | Else ->
      (* reached by falling out of the then-arm: skip past the matching End *)
      (match !ctrl with
       | e :: _ -> set_term pc [ (Jump, e.c_end + 1, None) ]
       | [] -> Error.decode_error ~code:"control" "else without open block")
    | End -> (match !ctrl with _ :: rest -> ctrl := rest | [] -> ())
    | Br l ->
      let t, a = branch l in
      set_term pc [ (Jump, t, a) ]
    | BrIf l ->
      let t, a = branch l in
      set_term pc [ (Taken, t, a); (NotTaken, pc + 1, None) ]
    | BrTable (ls, d) ->
      let cases = List.mapi (fun i l -> let t, a = branch l in (Case i, t, a)) ls in
      let t, a = branch d in
      set_term pc (cases @ [ (Default, t, a) ])
    | Return -> set_term pc [ (Jump, n, Some (List.length results)) ]
    | Unreachable -> set_term pc []
    | _ -> ()
  done;
  (* cut blocks at leaders *)
  let block_at = Array.make (n + 1) 0 in
  let firsts = ref [] in
  for pc = n downto 0 do
    if leader.(pc) then firsts := pc :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let n_blocks = Array.length firsts in
  Array.iteri
    (fun id first ->
       let last = if id + 1 < n_blocks then firsts.(id + 1) - 1 else n in
       for pc = first to min last n do
         block_at.(pc) <- id
       done)
    firsts;
  if n = 0 then block_at.(0) <- 0;
  let exit_ = if n = 0 then 0 else block_at.(n) in
  let succ_arr = Array.make (max n_blocks 1) [] in
  let pred_arr = Array.make (max n_blocks 1) [] in
  Array.iteri
    (fun id first ->
       if first < n then begin
         let last = if id + 1 < n_blocks then firsts.(id + 1) - 1 else n - 1 in
         let edges =
           match term.(last) with
           | Some es -> List.map (fun (kind, t, carried) -> { kind; dst = block_at.(t); carried }) es
           | None -> [ { kind = Fallthrough; dst = block_at.(last + 1); carried = None } ]
         in
         succ_arr.(id) <- edges;
         List.iter (fun e -> pred_arr.(e.dst) <- id :: pred_arr.(e.dst)) edges
       end)
    firsts;
  let blocks =
    Array.init (max n_blocks 1) (fun id ->
      let first = if n_blocks = 0 then 0 else firsts.(id) in
      let last = if id + 1 < n_blocks then firsts.(id + 1) - 1 else if first >= n then first - 1 else n - 1 in
      { id;
        first;
        last;
        succs = succ_arr.(id);
        preds = List.sort_uniq compare pred_arr.(id);
        stack_in = stacks.(min first n);
        dead_in = dead.(min first n) })
  in
  { func = f; body; nlocals; nparams; results; blocks; block_at;
    entry = 0; exit_; stacks; dead }

let successors t id = t.blocks.(id).succs
let predecessors t id = t.blocks.(id).preds

let reachable_blocks t =
  let seen = Array.make (Array.length t.blocks) false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter (fun e -> go e.dst) t.blocks.(id).succs
    end
  in
  go t.entry;
  seen

let unreachable_blocks t =
  let seen = reachable_blocks t in
  Array.to_list t.blocks
  |> List.filter (fun b -> (not seen.(b.id)) && b.id <> t.exit_)

let restrict t ~keep =
  let n_blocks = Array.length t.blocks in
  let pred_arr = Array.make n_blocks [] in
  let blocks =
    Array.map
      (fun b ->
         let succs =
           List.filter (fun e -> e.kind = Fallthrough || keep b.last e) b.succs
         in
         List.iter (fun e -> pred_arr.(e.dst) <- b.id :: pred_arr.(e.dst)) succs;
         { b with succs })
      t.blocks
  in
  let blocks =
    Array.map (fun b -> { b with preds = List.sort_uniq compare pred_arr.(b.id) }) blocks
  in
  { t with blocks }

let string_of_kind = function
  | Fallthrough -> ""
  | Jump -> "jump"
  | Taken -> "T"
  | NotTaken -> "F"
  | IfTrue -> "T"
  | IfFalse -> "F"
  | Case i -> Printf.sprintf "case %d" i
  | Default -> "default"

let to_dot ?(label = "cfg") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  node [shape=box fontname=monospace];\n" label);
  Array.iter
    (fun b ->
       let text =
         if b.id = t.exit_ && b.first >= Array.length t.body then "(exit)"
         else begin
           let lines = ref [] in
           for pc = min b.last (b.first + 5) downto b.first do
             lines := Printf.sprintf "%d: %s" pc (Ast.string_of_instr t.body.(pc)) :: !lines
           done;
           if b.last > b.first + 5 then lines := !lines @ [ "..." ];
           String.concat "\\l" !lines ^ "\\l"
         end
       in
       Buffer.add_string buf (Printf.sprintf "  b%d [label=\"%s\"];\n" b.id text);
       List.iter
         (fun e ->
            let k = string_of_kind e.kind in
            if k = "" then Buffer.add_string buf (Printf.sprintf "  b%d -> b%d;\n" b.id e.dst)
            else Buffer.add_string buf (Printf.sprintf "  b%d -> b%d [label=%S];\n" b.id e.dst k))
         b.succs)
    t.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
