(** The abstract value domain of the whole-module abstract interpreter
    ({!Absint}): small value sets refined with threshold-bounded signed
    intervals for i32/i64 (after Paccamiccio et al., "Building Call
    Graph of WebAssembly Programs via Abstract Semantics").

    An element over-approximates the set of runtime {!Wasm.Value.t}s a
    program point may hold. Sets stay exact up to {!max_set} values;
    integer sets that overflow widen to an interval whose bounds are
    drawn from a fixed, finite threshold ladder, so every ascending
    chain is finite and the {!Dataflow} solver terminates without a
    separate widening pass. [Bot] is the value of unreachable code. *)

open Wasm

type t =
  | Bot  (** no value reaches this point (unreachable) *)
  | Set of Value.t list
      (** 1..{!max_set} values, sorted, distinct, all of one type *)
  | I32R of int32 * int32  (** signed bounds from the threshold ladder *)
  | I64R of int64 * int64
  | Top

val max_set : int
(** Largest exact value set kept before widening (8). *)

val top : t
val bot : t
val of_value : Value.t -> t

val of_values : Value.t list -> t
(** Normalize an arbitrary (possibly unsorted, duplicated) collection:
    [Bot] when empty, a {!Set} when small, a threshold-widened interval
    when an integer set overflows, [Top] otherwise. *)

val i32_range : int32 -> int32 -> t
(** Interval with the bounds rounded outward to the threshold ladder
    (collapses to a {!Set} when the rounded range is a single value). *)

val i64_range : int64 -> int64 -> t

val bool01 : t
(** The result set of comparisons and tests: {[0; 1]}. *)

val join : t -> t -> t
val equal : t -> t -> bool
val is_bot : t -> bool

val contains : t -> Value.t -> bool
(** Soundness predicate: may this abstract value take the concrete
    value? [Bot] contains nothing, [Top] everything. *)

val singleton : t -> Value.t option
(** The value, when the element is a one-value set. *)

val values : t -> Value.t list option
(** All concrete values, when the element is a finite set. *)

val may_be_zero : t -> bool
(** May an i32 condition with this fact be zero? ([Top] and non-i32
    elements answer [true]; [Bot] answers [false].) *)

val may_be_nonzero : t -> bool

val may_select_case : t -> int -> bool
(** May a [br_table] index with this fact select case [i] (unsigned
    interpretation, [i >= 0])? *)

val may_select_default : t -> n_cases:int -> bool
(** May the unsigned index be [>= n_cases], selecting the default? *)

val nonneg_max_i32 : t -> int32 option
(** [Some m] when every concrete value is an i32 in [[0, m]]; the basis
    of the bitmask / unsigned-division range refinements. *)

val to_string : t -> string
