(** Whole-module abstract interpretation (see absint.mli). *)

open Wasm
open Wasm.Ast

(* ------------------------------------------------------------------ *)
(* Table layout                                                        *)
(* ------------------------------------------------------------------ *)

let table_layout (m : module_) ~escapes =
  if escapes || m.tables = [] then None
  else
    let constant_offset e =
      match e.eoffset with [ Const (Value.I32 c) ] -> Some c | _ -> None
    in
    let offsets = List.map constant_offset m.elems in
    if List.exists Option.is_none offsets then None
    else begin
      let size =
        List.fold_left2
          (fun acc e off -> max acc (Int32.to_int (Option.get off) + List.length e.einit))
          0 m.elems offsets
      in
      let slots = Array.make size None in
      List.iter2
        (fun e off ->
           List.iteri (fun i f -> slots.(Int32.to_int (Option.get off) + i) <- Some f) e.einit)
        m.elems offsets;
      Some slots
    end

(* ------------------------------------------------------------------ *)
(* Abstract machine                                                    *)
(* ------------------------------------------------------------------ *)

(* Like {!Stackval}'s machine, the abstract stack may be shorter than the
   real one: missing lower slots mean Top, which turns joins of
   mismatched heights (branch unwinding) into truncation. *)
type machine = { locals : Interval.t array; stack : Interval.t list }
type state = Unreached | S of machine

module Lattice = struct
  type t = state

  let bottom = Unreached

  let rec join_stack s1 s2 =
    match s1, s2 with
    | a :: r1, b :: r2 -> Interval.join a b :: join_stack r1 r2
    | _, [] | [], _ -> []

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | S m1, S m2 ->
      S { locals = Array.map2 Interval.join m1.locals m2.locals;
          stack = join_stack m1.stack m2.stack }

  let equal a b =
    match a, b with
    | Unreached, Unreached -> true
    | S m1, S m2 ->
      Array.for_all2 Interval.equal m1.locals m2.locals
      && List.length m1.stack = List.length m2.stack
      && List.for_all2 Interval.equal m1.stack m2.stack
    | _ -> false
end

module Solver = Dataflow.Make (Lattice)

let pop k stack =
  let rec go k stack acc =
    if k = 0 then (List.rev acc, stack)
    else
      match stack with
      | v :: rest -> go (k - 1) rest (v :: acc)
      | [] -> go (k - 1) [] (Interval.top :: acc)
  in
  go k stack []

(* The interprocedural environment a function executes in. Facts flow
   out (argument / global joins) and in (global cells, callee result
   summaries) through these callbacks; the intraprocedural engine uses
   an uninformative instance. *)
type env = {
  e_global : int -> Interval.t;
  e_global_set : int -> Interval.t -> unit;
  e_call : int -> Interval.t list -> Interval.t list;
      (** callee, argument facts in parameter order -> result facts *)
  e_indirect : int -> Interval.t -> Interval.t list -> Interval.t list;
      (** type index, table-index fact, argument facts -> result facts *)
}

(* Pointwise operator folding over finite value sets, dropping pairs
   that trap: a trapping evaluation reaches no program point after the
   instruction, so it contributes no value (all-trap folds to Bot). *)

let lift1 f v =
  match Interval.values v with
  | Some vs ->
    Interval.of_values
      (List.filter_map (fun x -> try Some (f x) with Value.Trap _ -> None) vs)
  | None -> Interval.top

let lift2 f a b =
  match Interval.values a, Interval.values b with
  | Some va, Some vb ->
    Some
      (Interval.of_values
         (List.concat_map
            (fun x ->
               List.filter_map (fun y -> try Some (f x y) with Value.Trap _ -> None) vb)
            va))
  | _ -> None

(* Range refinements for the operators table-index computations are
   built from; everything else falls back to Top / the boolean set. *)
let binary_fact op a b =
  if Interval.is_bot a || Interval.is_bot b then Interval.bot
  else
    match lift2 (Eval_numeric.eval_binop op) a b with
    | Some r -> r
    | None ->
      let const_divisors b =
        match Interval.values b with
        | Some vs when vs <> [] -> Some vs
        | _ -> None
      in
      (match op with
       | IBin (S32, And) ->
         (* x land y <= min m when either operand lies in [0, m] *)
         (match Interval.nonneg_max_i32 a, Interval.nonneg_max_i32 b with
          | Some m, Some m' -> Interval.i32_range 0l (min m m')
          | Some m, None | None, Some m -> Interval.i32_range 0l m
          | None, None -> Interval.top)
       | IBin (S32, RemS) ->
         (* |x rem c| < |c|; a non-negative dividend keeps the result
            non-negative. min_int divisors are excluded (|min_int|
            overflows). *)
         (match const_divisors b with
          | Some divs
            when List.for_all
                (function Value.I32 k -> k <> 0l && k <> Int32.min_int | _ -> false)
                divs ->
            let m =
              List.fold_left
                (fun acc v ->
                   match v with Value.I32 k -> max acc (Int32.abs k) | _ -> acc)
                1l divs
            in
            let m = Int32.sub m 1l in
            if Option.is_some (Interval.nonneg_max_i32 a) then Interval.i32_range 0l m
            else Interval.i32_range (Int32.neg m) m
          | _ -> Interval.top)
       | IBin (S32, RemU) ->
         (match const_divisors b with
          | Some divs
            when List.for_all (function Value.I32 k -> k > 0l | _ -> false) divs ->
            let m =
              List.fold_left
                (fun acc v -> match v with Value.I32 k -> max acc k | _ -> acc)
                1l divs
            in
            Interval.i32_range 0l (Int32.sub m 1l)
          | _ -> Interval.top)
       | IBin (S32, (DivU | ShrU | ShrS)) ->
         (* unsigned quotients and right shifts of a value in [0, m]
            stay in [0, m] *)
         (match Interval.nonneg_max_i32 a with
          | Some m -> Interval.i32_range 0l m
          | None -> Interval.top)
       | _ -> Interval.top)

let compare_fact op a b =
  if Interval.is_bot a || Interval.is_bot b then Interval.bot
  else
    match lift2 (Eval_numeric.eval_relop op) a b with
    | Some r -> r
    | None -> Interval.bool01

let test_fact op a =
  if Interval.is_bot a then Interval.bot
  else match Interval.values a with Some _ -> lift1 (Eval_numeric.eval_testop op) a | None -> Interval.bool01

let step (ctx : Validate.Module_ctx.t) (env : env) (m : machine) (ins : instr) : machine =
  let set_local i v =
    let locals = Array.copy m.locals in
    locals.(i) <- v;
    locals
  in
  let types = ctx.Validate.Module_ctx.types in
  let func_types = ctx.Validate.Module_ctx.func_types in
  match ins with
  | Nop | Block _ | Loop _ | End | Else | Br _ | Return | Unreachable -> m
  | If _ | BrIf _ | BrTable _ | Drop ->
    let _, stack = pop 1 m.stack in
    { m with stack }
  | GlobalSet g ->
    (match pop 1 m.stack with
     | [ v ], stack ->
       env.e_global_set g v;
       { m with stack }
     | _ -> assert false)
  | GlobalGet g -> { m with stack = env.e_global g :: m.stack }
  | Call f ->
    let ft = func_types.(f) in
    let args, stack = pop (List.length ft.Types.params) m.stack in
    let results = env.e_call f (List.rev args) in
    { m with stack = List.rev results @ stack }
  | CallIndirect ti ->
    let ft = types.(ti) in
    (match pop 1 m.stack with
     | [ idx ], stack ->
       let args, stack = pop (List.length ft.Types.params) stack in
       let results = env.e_indirect ti idx (List.rev args) in
       { m with stack = List.rev results @ stack }
     | _ -> assert false)
  | Select ->
    (match pop 3 m.stack with
     | [ c; b; a ], stack ->
       let v =
         if Interval.is_bot c then Interval.bot
         else
           match Interval.may_be_nonzero c, Interval.may_be_zero c with
           | true, false -> a
           | false, true -> b
           | _ -> Interval.join a b
       in
       { m with stack = v :: stack }
     | _ -> assert false)
  | LocalGet x -> { m with stack = m.locals.(x) :: m.stack }
  | LocalSet x ->
    (match pop 1 m.stack with
     | [ v ], stack -> { locals = set_local x v; stack }
     | _ -> assert false)
  | LocalTee x ->
    (match m.stack with
     | v :: _ -> { m with locals = set_local x v }
     | [] -> { m with locals = set_local x Interval.top })
  | MemorySize -> { m with stack = Interval.top :: m.stack }
  | Load _ | MemoryGrow ->
    let _, stack = pop 1 m.stack in
    { m with stack = Interval.top :: stack }
  | Store _ ->
    let _, stack = pop 2 m.stack in
    { m with stack }
  | Const v -> { m with stack = Interval.of_value v :: m.stack }
  | Test op ->
    (match pop 1 m.stack with
     | [ a ], stack -> { m with stack = test_fact op a :: stack }
     | _ -> assert false)
  | Unary op ->
    (match pop 1 m.stack with
     | [ a ], stack ->
       let r = if Interval.is_bot a then Interval.bot else lift1 (Eval_numeric.eval_unop op) a in
       { m with stack = r :: stack }
     | _ -> assert false)
  | Convert op ->
    (match pop 1 m.stack with
     | [ a ], stack ->
       let r = if Interval.is_bot a then Interval.bot else lift1 (Eval_numeric.eval_cvtop op) a in
       { m with stack = r :: stack }
     | _ -> assert false)
  | Compare op ->
    (match pop 2 m.stack with
     | [ b; a ], stack -> { m with stack = compare_fact op a b :: stack }
     | _ -> assert false)
  | Binary op ->
    (match pop 2 m.stack with
     | [ b; a ], stack -> { m with stack = binary_fact op a b :: stack }
     | _ -> assert false)

let transfer ctx env (cfg : Cfg.t) id (st : state) : state =
  match st with
  | Unreached -> Unreached
  | S m ->
    let b = cfg.Cfg.blocks.(id) in
    let m = ref m in
    for pc = b.Cfg.first to b.Cfg.last do
      m := step ctx env !m cfg.Cfg.body.(pc)
    done;
    S !m

let edge_adjust (e : Cfg.edge) (st : state) : state =
  match st, e.Cfg.carried with
  | Unreached, _ | _, None -> st
  | S m, Some a ->
    let carried, _ = pop (min a (List.length m.stack)) m.stack in
    S { m with stack = carried }

(* ------------------------------------------------------------------ *)
(* Intraprocedural runs: solve, tighten, re-solve, record              *)
(* ------------------------------------------------------------------ *)

type intra = {
  icfg : Cfg.t;  (* with contradicted branch edges removed *)
  istacks : Interval.t list option array;
      (* per-pc abstract stack (top first) just before the pc; index
         [body length] holds the exit point; None = unreachable *)
}

let tighten_edges value_at (cfg : Cfg.t) : Cfg.t =
  (* hoisted out of the keep-closure: [restrict] evaluates it per edge *)
  let n_cases =
    Array.map
      (function BrTable (ls, _) -> List.length ls | _ -> 0)
      cfg.Cfg.body
  in
  Cfg.restrict cfg ~keep:(fun pc (e : Cfg.edge) ->
    match cfg.Cfg.body.(pc) with
    | BrIf _ ->
      let c = value_at pc 0 in
      (match e.Cfg.kind with
       | Cfg.Taken -> Interval.may_be_nonzero c
       | Cfg.NotTaken -> Interval.may_be_zero c
       | _ -> true)
    | BrTable _ ->
      let c = value_at pc 0 in
      (match e.Cfg.kind with
       | Cfg.Case i -> Interval.may_select_case c i
       | Cfg.Default -> Interval.may_select_default c ~n_cases:n_cases.(pc)
       | _ -> true)
    | _ -> true)

let record_stacks ctx env (cfg : Cfg.t) (res : Solver.result) =
  let n = Array.length cfg.Cfg.body in
  let stacks = Array.make (n + 1) None in
  Array.iter
    (fun (b : Cfg.block) ->
       match res.Solver.before.(b.Cfg.id) with
       | Unreached -> ()
       | S m ->
         if b.Cfg.id = cfg.Cfg.exit_ then stacks.(n) <- Some m.stack
         else begin
           let m = ref m in
           for pc = b.Cfg.first to b.Cfg.last do
             stacks.(pc) <- Some !m.stack;
             m := step ctx env !m cfg.Cfg.body.(pc)
           done
         end)
    cfg.Cfg.blocks;
  stacks

let run ctx env (cfg : Cfg.t) ~(params : Interval.t array) : intra * state =
  let init =
    let locals =
      Array.init cfg.Cfg.nlocals (fun i ->
        if i < cfg.Cfg.nparams then
          (if i < Array.length params then params.(i) else Interval.top)
        else
          let ty = List.nth cfg.Cfg.func.locals (i - cfg.Cfg.nparams) in
          Interval.of_value (Value.default ty))
    in
    S { locals; stack = [] }
  in
  let solve cfg = Solver.solve ~edge:edge_adjust cfg ~init ~transfer:(transfer ctx env) in
  let res = solve cfg in
  let stacks = record_stacks ctx env cfg res in
  let value_at pc depth =
    match stacks.(pc) with
    | None -> Interval.bot
    | Some st -> (match List.nth_opt st depth with Some v -> v | None -> Interval.top)
  in
  let cfg' = tighten_edges value_at cfg in
  let res' = solve cfg' in
  let stacks' = record_stacks ctx env cfg' res' in
  ({ icfg = cfg'; istacks = stacks' }, res'.Solver.before.(cfg'.Cfg.exit_))

let intra_value_at (i : intra) ~pc ~depth =
  if pc < 0 || pc >= Array.length i.istacks then Interval.top
  else
    match i.istacks.(pc) with
    | None -> Interval.bot
    | Some st -> (match List.nth_opt st depth with Some v -> v | None -> Interval.top)

let intra_live (i : intra) ~pc =
  pc >= 0 && pc < Array.length i.istacks && i.istacks.(pc) <> None

let uninformative_env (ctx : Validate.Module_ctx.t) : env =
  let func_types = ctx.Validate.Module_ctx.func_types in
  let types = ctx.Validate.Module_ctx.types in
  {
    e_global = (fun _ -> Interval.top);
    e_global_set = (fun _ _ -> ());
    e_call =
      (fun f _ -> List.map (fun _ -> Interval.top) func_types.(f).Types.results);
    e_indirect =
      (fun ti _ _ -> List.map (fun _ -> Interval.top) types.(ti).Types.results);
  }

let analyze_intra ctx (cfg : Cfg.t) : intra =
  let params = Array.make cfg.Cfg.nparams Interval.top in
  fst (run ctx (uninformative_env ctx) cfg ~params)

(* ------------------------------------------------------------------ *)
(* Interprocedural analysis                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  ctx : Validate.Module_ctx.t;
  n_imports : int;
  n_funcs : int;
  escapes : bool;
  globals_ : Interval.t array;
  params_ : Interval.t array array;
  results_ : Interval.t array array;
  reached_ : bool array;
  intra_ : intra option array;  (* indexed by f - n_imports *)
  sites_ : (int * int, Interval.t * int list) Hashtbl.t;
  n_sccs_ : int;
}

(* Tarjan's SCC algorithm over a successor array; returns the component
   index of each node, components numbered in reverse topological order
   (callees before callers). *)
let sccs (succ : int list array) : int array * int =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succ.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !n_comps in
      incr n_comps;
      let rec popc () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- c;
          if w <> v then popc ()
        | [] -> ()
      in
      popc ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (comp, !n_comps)

let analyze (m : module_) : t =
  let ctx = Validate.Module_ctx.create m in
  let func_types = ctx.Validate.Module_ctx.func_types in
  let types = ctx.Validate.Module_ctx.types in
  let has_table = ctx.Validate.Module_ctx.has_table in
  let n_imports = num_imported_funcs m in
  let n_funcs = Array.length func_types in
  let n_defined = n_funcs - n_imports in
  let escapes =
    List.exists (fun e -> match e.edesc with TableExport _ -> true | _ -> false) m.exports
    || List.exists (fun i -> match i.idesc with TableImport _ -> true | _ -> false) m.imports
  in
  let layout = table_layout m ~escapes in
  let elem_funcs = List.sort_uniq compare (List.concat_map (fun e -> e.einit) m.elems) in
  let export_roots =
    List.filter_map (fun e -> match e.edesc with FuncExport i -> Some i | _ -> None) m.exports
  in
  let funcs = Array.of_list m.funcs in
  let cfgs = Array.make (max n_defined 1) None in
  let cfg_of f =
    let fi = f - n_imports in
    match cfgs.(fi) with
    | Some c -> c
    | None ->
      let c = Cfg.build ctx funcs.(fi) in
      cfgs.(fi) <- Some c;
      c
  in
  (* global cells *)
  let n_gimp = num_imported_globals m in
  let n_globals = Array.length ctx.Validate.Module_ctx.global_types in
  let exported_global g =
    List.exists (fun e -> match e.edesc with GlobalExport i -> i = g | _ -> false) m.exports
  in
  let globals_ =
    Array.init n_globals (fun g ->
      if g < n_gimp then Interval.top
      else
        let gl = List.nth m.globals (g - n_gimp) in
        let init =
          match gl.ginit with [ Const v ] -> Interval.of_value v | _ -> Interval.top
        in
        match gl.gtype.Types.mutability with
        | Types.Immutable -> init
        | Types.Mutable -> if exported_global g then Interval.top else init)
  in
  let params_ =
    Array.init n_funcs (fun f ->
      Array.make (List.length func_types.(f).Types.params) Interval.bot)
  in
  let results_ =
    Array.init n_funcs (fun f ->
      Array.make (List.length func_types.(f).Types.results)
        (if f < n_imports then Interval.top else Interval.bot))
  in
  let reached_ = Array.make (max n_funcs 1) false in
  let intra_ = Array.make (max n_defined 1) None in
  let sites_ = Hashtbl.create 16 in
  (* worklist: dirty functions, drained in SCC-condensation order *)
  let dirty = Array.make (max n_funcs 1) false in
  let enqueue f = if f >= n_imports && f < n_funcs then dirty.(f) <- true in
  (* dependency records *)
  let g_readers = Array.make (max n_globals 1) [] in
  let f_dependents = Array.make (max n_funcs 1) [] in
  let add_once arr i f = if not (List.mem f arr.(i)) then arr.(i) <- f :: arr.(i) in
  let join_params callee args =
    let arr = params_.(callee) in
    List.iteri
      (fun i a ->
         if i < Array.length arr then begin
           let j = Interval.join arr.(i) a in
           if not (Interval.equal j arr.(i)) then begin
             arr.(i) <- j;
             enqueue callee
           end
         end)
      args
  in
  (* indirect resolution against the inferred index fact *)
  let pool ft =
    if not has_table then []
    else
      let base = if escapes then List.sort_uniq compare (export_roots @ elem_funcs) else elem_funcs in
      List.filter (fun f -> Types.equal_func_type func_types.(f) ft) base
  in
  let resolve ti idx =
    let ft = types.(ti) in
    match layout with
    | Some slots ->
      let n = Array.length slots in
      let keep_all =
        n > 4096 && (match idx with Interval.Set _ -> false | _ -> true)
      in
      if keep_all then pool ft
      else
        List.sort_uniq compare
          (List.filter_map
             (fun k ->
                if Interval.contains idx (Value.I32 (Int32.of_int k)) then
                  match slots.(k) with
                  | Some callee when Types.equal_func_type func_types.(callee) ft ->
                    Some callee
                  | _ -> None  (* empty or mismatched slot: the call traps *)
                else None)
             (List.init n Fun.id))
    | None -> pool ft
  in
  let live_env f : env =
    {
      e_global =
        (fun g ->
           add_once g_readers g f;
           globals_.(g));
      e_global_set =
        (fun g v ->
           let j = Interval.join globals_.(g) v in
           if not (Interval.equal j globals_.(g)) then begin
             globals_.(g) <- j;
             List.iter enqueue g_readers.(g)
           end);
      e_call =
        (fun callee args ->
           if callee < n_imports then Array.to_list results_.(callee)
           else begin
             add_once f_dependents callee f;
             join_params callee args;
             (* parameter joins only enqueue on growth; a nullary (or
                already-saturated) callee still needs its first run *)
             if not reached_.(callee) then enqueue callee;
             Array.to_list results_.(callee)
           end);
      e_indirect =
        (fun ti idx args ->
           let ts = resolve ti idx in
           List.iter
             (fun callee ->
                if callee >= n_imports then begin
                  add_once f_dependents callee f;
                  join_params callee args;
                  if not reached_.(callee) then enqueue callee
                end)
             ts;
           let ft = types.(ti) in
           if escapes then List.map (fun _ -> Interval.top) ft.Types.results
           else
             List.mapi
               (fun i _ ->
                  List.fold_left
                    (fun acc callee ->
                       Interval.join acc
                         (if callee < n_imports then Interval.top
                          else results_.(callee).(i)))
                    Interval.bot ts)
               ft.Types.results);
    }
  in
  (* effect-free environment for recording functions the fixpoint never
     reached: read current facts, contribute nothing *)
  let frozen_env f : env =
    let live = live_env f in
    {
      e_global = (fun g -> globals_.(g));
      e_global_set = (fun _ _ -> ());
      e_call =
        (fun callee _ -> Array.to_list results_.(callee));
      e_indirect = (fun ti idx _ -> live.e_indirect ti idx []);
    }
  in
  let process f =
    reached_.(f) <- true;
    let cfg = cfg_of f in
    let intra, exit_state = run ctx (live_env f) cfg ~params:params_.(f) in
    intra_.(f - n_imports) <- Some intra;
    (match exit_state with
     | Unreached -> ()  (* no path returns: results stay Bot *)
     | S mch ->
       let n = Array.length results_.(f) in
       let vs, _ = pop n mch.stack in
       let vs = List.rev vs in
       let grew = ref false in
       List.iteri
         (fun i v ->
            let j = Interval.join results_.(f).(i) v in
            if not (Interval.equal j results_.(f).(i)) then begin
              results_.(f).(i) <- j;
              grew := true
            end)
         vs;
       if !grew then List.iter enqueue f_dependents.(f))
  in
  (* roots: host-callable entry points get Top parameters *)
  let roots =
    List.sort_uniq compare
      (export_roots @ Option.to_list m.start @ (if escapes then elem_funcs else []))
  in
  List.iter
    (fun f ->
       if f >= n_imports && f < n_funcs then begin
         Array.fill params_.(f) 0 (Array.length params_.(f)) Interval.top;
         enqueue f
       end)
    roots;
  (* coarse call graph (direct + type-pool indirect) for SCC-guided
     processing order: callers first, so parameter summaries settle
     before their consumers run *)
  let coarse_succ = Array.make (max n_funcs 1) [] in
  Array.iteri
    (fun fi (f : func) ->
       let callees =
         List.concat_map
           (function
             | Call c -> [ c ]
             | CallIndirect ti -> pool types.(ti)
             | _ -> [])
           f.body
       in
       coarse_succ.(n_imports + fi) <- List.sort_uniq compare callees)
    funcs;
  let comp, n_sccs_ = sccs coarse_succ in
  (* Tarjan numbers components callees-first; sort descending for a
     callers-first sweep, so parameter summaries settle before their
     consumers run *)
  let order =
    List.sort (fun a b -> compare comp.(b) comp.(a)) (List.init n_funcs Fun.id)
  in
  let drain () =
    let again = ref true in
    while !again do
      again := false;
      List.iter
        (fun f ->
           if dirty.(f) then begin
             dirty.(f) <- false;
             again := true;
             process f
           end)
        order
    done
  in
  drain ();
  (* final recording passes: at the fixpoint re-running a function can
     grow nothing, but guard with a stabilization loop anyway *)
  let rec finalize budget =
    for f = n_imports to n_funcs - 1 do
      if reached_.(f) then begin
        let intra, _ = run ctx (live_env f) (cfg_of f) ~params:params_.(f) in
        intra_.(f - n_imports) <- Some intra
      end
    done;
    if Array.exists Fun.id dirty && budget > 0 then begin
      drain ();
      finalize (budget - 1)
    end
  in
  finalize 8;
  (* functions the fixpoint never reached still get facts (with Top
     parameters, effect-free) so queries are total *)
  for f = n_imports to n_funcs - 1 do
    if not reached_.(f) then begin
      let cfg = cfg_of f in
      let params = Array.make cfg.Cfg.nparams Interval.top in
      let intra, _ = run ctx (frozen_env f) cfg ~params in
      intra_.(f - n_imports) <- Some intra
    end
  done;
  (* record indirect-call sites from the final facts *)
  for f = n_imports to n_funcs - 1 do
    match intra_.(f - n_imports) with
    | None -> ()
    | Some intra ->
      Array.iteri
        (fun pc ins ->
           match ins with
           | CallIndirect ti ->
             (match intra.istacks.(pc) with
              | None -> ()  (* dead site *)
              | Some st ->
                let idx = match st with v :: _ -> v | [] -> Interval.top in
                Hashtbl.replace sites_ (f, pc) (idx, resolve ti idx))
           | _ -> ())
        intra.icfg.Cfg.body
  done;
  { ctx; n_imports; n_funcs; escapes; globals_; params_; results_; reached_;
    intra_; sites_; n_sccs_ }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let intra_of t f =
  if f < t.n_imports || f >= t.n_funcs then None else t.intra_.(f - t.n_imports)

let value_at t ~func ~pc ~depth =
  match intra_of t func with
  | None -> Interval.top
  | Some i -> intra_value_at i ~pc ~depth

let live t ~func ~pc =
  match intra_of t func with None -> false | Some i -> intra_live i ~pc

let indirect_site t ~func ~pc = Hashtbl.find_opt t.sites_ (func, pc)

let global_fact t g =
  if g < 0 || g >= Array.length t.globals_ then Interval.top else t.globals_.(g)

let param_facts t f =
  if f < 0 || f >= t.n_funcs then [] else Array.to_list t.params_.(f)

let result_facts t f =
  if f < 0 || f >= t.n_funcs then [] else Array.to_list t.results_.(f)

let reached t f = f >= 0 && f < t.n_funcs && t.reached_.(f)
let table_escapes t = t.escapes
let n_sccs t = t.n_sccs_

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let string_of_facts vs =
  "[" ^ String.concat " " (List.map Interval.to_string vs) ^ "]"

let dump_func ?(stacks = false) t f =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "func %d%s: params %s -> results %s%s\n" f
    (if t.reached_.(f) then "" else " (unreached)")
    (string_of_facts (param_facts t f))
    (string_of_facts (result_facts t f))
    (if f < t.n_imports then " (import)" else "");
  (match intra_of t f with
   | None -> ()
   | Some i ->
     let body = i.icfg.Cfg.body in
     Array.iteri
       (fun pc ins ->
          let dead = not (intra_live i ~pc) in
          (match ins with
           | CallIndirect _ when not dead ->
             (match indirect_site t ~func:f ~pc with
              | Some (idx, ts) ->
                Printf.bprintf buf "  pc %d %s: index %s -> {%s}%s\n" pc
                  (Ast.string_of_instr ins) (Interval.to_string idx)
                  (String.concat " " (List.map string_of_int ts))
                  (if t.escapes then " (+host)" else "")
              | None -> ())
           | _ -> ());
          if dead then Printf.bprintf buf "  pc %d %s: dead\n" pc (Ast.string_of_instr ins)
          else if stacks then
            match i.istacks.(pc) with
            | Some st ->
              Printf.bprintf buf "  pc %d %s: stack %s\n" pc (Ast.string_of_instr ins)
                (string_of_facts st)
            | None -> ())
       body);
  Buffer.contents buf

let summary t =
  let n_defined = t.n_funcs - t.n_imports in
  let n_reached = Array.fold_left (fun a r -> if r then a + 1 else a) 0 t.reached_ in
  let n_sites = Hashtbl.length t.sites_ in
  let exact =
    Hashtbl.fold
      (fun _ (idx, _) acc -> if Interval.values idx <> None then acc + 1 else acc)
      t.sites_ 0
  in
  let dead_pcs = ref 0 and total_pcs = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some i ->
        let n = Array.length i.icfg.Cfg.body in
        total_pcs := !total_pcs + n;
        for pc = 0 to n - 1 do
          if not (intra_live i ~pc) then incr dead_pcs
        done)
    t.intra_;
  Printf.sprintf
    "%d functions (%d imported, %d defined), %d reached, %d SCCs, %d indirect sites \
     (%d with finite index sets)%s, %d/%d instructions dead"
    t.n_funcs t.n_imports n_defined n_reached t.n_sccs_ n_sites exact
    (if t.escapes then ", table escapes" else "")
    !dead_pcs !total_pcs
