(** Worklist fixpoint solver (see dataflow.mli). *)

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    before : L.t array;
    after : L.t array;
  }

  let solve ?(direction = Forward) ?(edge = fun _ fact -> fact) (cfg : Cfg.t)
      ~(init : L.t) ~(transfer : Cfg.t -> int -> L.t -> L.t) : result =
    let n = Array.length cfg.Cfg.blocks in
    let before = Array.make n L.bottom in
    let after = Array.make n L.bottom in
    (* incoming.(id): edges whose fact flows into block [id], paired with
       the block the fact is read from *)
    let incoming = Array.make n [] in
    let outgoing = Array.make n [] in
    Array.iter
      (fun (b : Cfg.block) ->
         List.iter
           (fun (e : Cfg.edge) ->
              match direction with
              | Forward ->
                incoming.(e.Cfg.dst) <- (b.Cfg.id, e) :: incoming.(e.Cfg.dst);
                outgoing.(b.Cfg.id) <- e.Cfg.dst :: outgoing.(b.Cfg.id)
              | Backward ->
                incoming.(b.Cfg.id) <- (e.Cfg.dst, e) :: incoming.(b.Cfg.id);
                outgoing.(e.Cfg.dst) <- b.Cfg.id :: outgoing.(e.Cfg.dst))
           b.Cfg.succs)
      cfg.Cfg.blocks;
    let seed = match direction with Forward -> cfg.Cfg.entry | Backward -> cfg.Cfg.exit_ in
    let on_list = Array.make n false in
    let work = Queue.create () in
    let push id =
      if not on_list.(id) then begin
        on_list.(id) <- true;
        Queue.add id work
      end
    in
    let processed = Array.make n false in
    push seed;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      on_list.(id) <- false;
      let in_fact =
        List.fold_left
          (fun acc (src, e) -> L.join acc (edge e after.(src)))
          (if id = seed then init else L.bottom)
          incoming.(id)
      in
      before.(id) <- in_fact;
      let out_fact = transfer cfg id in_fact in
      let changed = not (L.equal out_fact after.(id)) in
      if changed then after.(id) <- out_fact;
      if changed || not processed.(id) then begin
        processed.(id) <- true;
        List.iter push (List.sort_uniq compare outgoing.(id))
      end
    done;
    { before; after }
  end
