(** Generic worklist dataflow solver over {!Cfg} basic blocks,
    functorized over a join-semilattice. Supports forward and backward
    problems and an optional per-edge transfer (used by the stack-value
    analysis to model branch-time stack unwinding). *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of {!join}; the fact of unreached blocks. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;
        (** Per block: the fact where flow enters it — at block entry for
            forward problems, at block exit for backward problems. *)
    after : L.t array;
        (** Per block: the fact where flow leaves it (the transfer of
            [before]). *)
  }

  val solve :
    ?direction:direction ->
    ?edge:(Cfg.edge -> L.t -> L.t) ->
    Cfg.t ->
    init:L.t ->
    transfer:(Cfg.t -> int -> L.t -> L.t) ->
    result
  (** Iterate to a fixpoint. [init] seeds the entry block (forward) or the
      exit block (backward); all other blocks start at [L.bottom].
      [transfer cfg id fact] flows [fact] through block [id]; [edge]
      (default: identity) adjusts a fact as it crosses a specific edge.
      Blocks unreachable in the chosen direction keep [L.bottom]. *)
end
