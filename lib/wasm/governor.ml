(** Per-run resource governor: operator-policy budgets beyond fuel.

    Fuel bounds the number of executed instructions, but a production
    instance farm needs three more knobs: a wall-clock deadline (an
    instrumented run can burn arbitrary time per fuel unit inside host
    hooks), a cap on memory *growth* (a run may only acquire so many
    fresh pages regardless of the module's declared maximum), and a
    budget on host calls (a runaway analysis loop is a host-call loop).

    Design constraints, in order:

    - {b free when disabled}: the interpreter and the tier-1 compiled
      bodies consult the governor only at the existing fuel-batch
      boundaries (one [option] match per straight-line run), and
      [Memory.grow] / host-call sites pay one match each — all cold
      paths. No per-instruction cost anywhere.
    - {b cheap when enabled}: the deadline check reads the monotonic
      clock only every [check_stride] batches; growth and host-call
      budgets are a single decrement + compare.
    - {b structured violations}: every budget violation raises
      {!Error.Governor_limit} with its own stable code
      (["deadline-exceeded"], ["memory-growth-limit"],
      ["host-call-budget"]) and CLI exit code (10/11/12), so callers
      triage governor kills apart from traps and fuel exhaustion.

    A governor is re-armable: [arm] resets all budgets to their
    configured values, so one governor serves every run of a pooled
    instance (pairs with [Snapshot.restore]). *)

(* clock reads are ~25ns but batch boundaries can be hit every handful
   of instructions in call-heavy code; amortize over a stride. *)
let check_stride = 64

type t = {
  deadline_budget_ns : int64;  (** per-run budget; [Int64.max_int] = none *)
  grow_pages_budget : int;  (** per-run growable pages; [max_int] = none *)
  host_call_budget : int;  (** per-run host calls; [max_int] = none *)
  mutable deadline_ns : int64;  (** absolute monotonic deadline of this run *)
  mutable grow_pages_left : int;
  mutable host_calls_left : int;
  mutable countdown : int;  (** batches until the next clock read *)
  mutable expired : bool;  (** forced-expiry latch, set by fault injection *)
}

let create ?deadline_ms ?max_grow_pages ?host_call_budget () =
  let deadline_budget_ns =
    match deadline_ms with
    | None -> Int64.max_int
    | Some ms -> Int64.of_float (ms *. 1e6)
  in
  {
    deadline_budget_ns;
    grow_pages_budget = (match max_grow_pages with None -> max_int | Some n -> n);
    host_call_budget = (match host_call_budget with None -> max_int | Some n -> n);
    deadline_ns = Int64.max_int;
    grow_pages_left = max_int;
    host_calls_left = max_int;
    countdown = check_stride;
    expired = false;
  }

let arm t =
  t.grow_pages_left <- t.grow_pages_budget;
  t.host_calls_left <- t.host_call_budget;
  t.countdown <- check_stride;
  t.expired <- false;
  t.deadline_ns <-
    (if t.deadline_budget_ns = Int64.max_int then Int64.max_int
     else Int64.add (Obs.Clock.now_ns ()) t.deadline_budget_ns)

let expire t = t.expired <- true

let deadline_violation t =
  t.expired <- true;
  Error.governor_error ~code:"deadline-exceeded" "wall-clock deadline exceeded (budget %.3f ms)"
    (Int64.to_float t.deadline_budget_ns /. 1e6)

(* called from the fuel-batch prologue of both tiers; must stay cheap *)
let check_batch t =
  if t.expired then deadline_violation t
  else if t.deadline_ns <> Int64.max_int then begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- check_stride;
      if Obs.Clock.now_ns () > t.deadline_ns then deadline_violation t
    end
  end

let count_host_call t =
  if t.host_calls_left <> max_int then begin
    if t.host_calls_left <= 0 then
      Error.governor_error ~code:"host-call-budget" "host-call budget exceeded (budget %d)"
        t.host_call_budget;
    t.host_calls_left <- t.host_calls_left - 1
  end

(* Composes with both the instance's declared maximum and the engine's
   absolute page cap, which [Memory.grow] itself enforces atomically
   (allocate-then-swap): the budget is checked *before* delegating, and
   debited only on success, so a rejected grow — by either layer — never
   partially commits pages or consumes budget. *)
let governed_grow t mem delta =
  if delta > 0 && delta > t.grow_pages_left then
    Error.governor_error ~code:"memory-growth-limit"
      "memory growth of %d pages exceeds remaining per-run budget of %d (budget %d)" delta
      t.grow_pages_left t.grow_pages_budget;
  let old = Memory.grow mem delta in
  if old >= 0 && delta > 0 && t.grow_pages_left <> max_int then
    t.grow_pages_left <- t.grow_pages_left - delta;
  old
