(** The unified error taxonomy of the Wasm pipeline.

    Every structured failure mode of the library — malformed binaries,
    invalid modules, unresolvable imports, runtime traps and resource
    exhaustion — is described by one record: a {e phase} (which pipeline
    stage rejected the input), a stable {e code} (a machine-readable
    bucket for triage, e.g. by the fuzzing harness), an optional byte
    {e offset} into the input (decode-phase errors), and a human-readable
    message.

    The five public exceptions are declared here and re-exported under
    their historical names ([Decode.Decode_error], [Validate.Invalid],
    [Interp.Link_error], [Interp.Exhaustion], [Value.Trap]) via exception
    rebinding, so matching on either name catches the same exception.
    {!classify} is the single chokepoint that maps an arbitrary exception
    to its structured description; an exception it does not recognise
    (e.g. [Stack_overflow], [Invalid_argument], [Out_of_memory],
    [Failure]) is by definition an engine bug on untrusted-input paths —
    the fuzzing harness treats exactly that set as totality violations. *)

type phase =
  | Decode  (** binary parsing of untrusted bytes *)
  | Validate  (** type checking of a decoded module *)
  | Link  (** instantiation: imports, segments *)
  | Run  (** execution: traps and exhaustion *)

let phase_name = function
  | Decode -> "decode"
  | Validate -> "validate"
  | Link -> "link"
  | Run -> "run"

type t = {
  phase : phase;
  code : string;
      (** stable kebab-case bucket, e.g. ["unexpected-eof"],
          ["malformed-leb128"], ["section-order"], ["divide-by-zero"] *)
  offset : int option;  (** byte offset into the input, when known *)
  message : string;
}

let make ~phase ~code ?offset fmt =
  Printf.ksprintf (fun message -> { phase; code; offset; message }) fmt

let to_string e =
  match e.offset with
  | Some off -> Printf.sprintf "%s error [%s] at byte %d: %s" (phase_name e.phase) e.code off e.message
  | None -> Printf.sprintf "%s error [%s]: %s" (phase_name e.phase) e.code e.message

(** {1 The exception surface}

    [Decode_error] carries the full structured description (decoding is
    where offsets and fine-grained codes matter); the other four carry
    the message only, for compatibility with the historical API, and are
    structured on the fly by {!classify}. *)

exception Decode_error of t

exception Invalid of string
(** re-exported as [Validate.Invalid] *)

exception Link_error of string
(** re-exported as [Interp.Link_error] *)

exception Trap of string
(** re-exported as [Value.Trap] *)

exception Exhaustion of string
(** re-exported as [Interp.Exhaustion] *)

exception Hook_error of t
(** re-exported as [Wasabi.Runtime.Bad_hook_args]: a low-level hook
    received arguments inconsistent with its spec — an internal error of
    the instrumentation, carried structured (phase [Run], code
    ["bad-hook-args"]) so the CLI and the fuzzing harness triage it apart
    from program traps. *)

exception Governor_limit of t
(** A resource-governor budget was violated during execution: the
    per-run wall-clock deadline (code ["deadline-exceeded"]), the
    per-run memory-growth cap (["memory-growth-limit"]) or the host-call
    budget (["host-call-budget"]). Always phase [Run]. Distinct from
    {!Exhaustion}: fuel and call depth are engine-intrinsic limits,
    governor budgets are operator policy applied to a specific run. *)

let decode_error ~code ?offset fmt =
  Printf.ksprintf
    (fun message -> raise (Decode_error { phase = Decode; code; offset; message }))
    fmt

let hook_error ~code ?offset fmt =
  Printf.ksprintf
    (fun message -> raise (Hook_error { phase = Run; code; offset; message }))
    fmt

let governor_error ~code fmt =
  Printf.ksprintf
    (fun message -> raise (Governor_limit { phase = Run; code; offset = None; message }))
    fmt

(** Canonical codes of the spec-mandated trap messages, so fuzzing
    buckets and exit-code mapping do not depend on prose. *)
let trap_code msg =
  match msg with
  | "integer divide by zero" -> "divide-by-zero"
  | "integer overflow" -> "integer-overflow"
  | "invalid conversion to integer" -> "invalid-conversion"
  | "out of bounds memory access" -> "oob-memory-access"
  | "unreachable executed" -> "unreachable"
  | "undefined element" -> "undefined-element"
  | "uninitialized element" -> "uninitialized-element"
  | "indirect call type mismatch" -> "indirect-call-mismatch"
  | "no memory" -> "no-memory"
  | "no table" -> "no-table"
  | "injected host fault" -> "injected-fault"
  | _ -> "trap"

(** [true] iff the error message indicates an internal invariant
    violation rather than a property of the input. The interpreter tags
    such traps with "(engine bug)"; the fuzzer escalates them. *)
let is_engine_bug e =
  let s = e.message and sub = "(engine bug)" in
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(** Map an exception to its structured description; [None] means the
    exception is not part of the structured error surface (an escape of
    the taxonomy — a bug on any untrusted-input path). *)
let classify : exn -> t option = function
  | Decode_error e -> Some e
  | Hook_error e -> Some e
  | Governor_limit e -> Some e
  | Invalid message -> Some { phase = Validate; code = "invalid-module"; offset = None; message }
  | Link_error message -> Some { phase = Link; code = "link"; offset = None; message }
  | Trap message -> Some { phase = Run; code = trap_code message; offset = None; message }
  | Exhaustion message ->
    (* one stable code for both engine-intrinsic limits (fuel, call
       depth); the message still says which resource ran out *)
    Some { phase = Run; code = "resource-exhausted"; offset = None; message }
  | _ -> None

(** Process exit code for a structured error, used by the CLI tools:
    decode 3, validate 4, link 5, trap 6, resource exhaustion 7,
    hook-dispatch 9, governor deadline 10, governor memory-growth cap 11,
    governor host-call budget 12 (8 is taken by the
    instrumentation-soundness lint). *)
let exit_code e =
  match e.phase with
  | Decode -> 3
  | Validate -> 4
  | Link -> 5
  | Run ->
    (match e.code with
     | "resource-exhausted" -> 7
     | "bad-hook-args" -> 9
     | "deadline-exceeded" -> 10
     | "memory-growth-limit" -> 11
     | "host-call-budget" -> 12
     | _ -> 6)
