(** Emission of the WebAssembly binary format (MVP, version 1). *)

val encode : Ast.module_ -> string
(** Serialise a module to its binary representation. *)

val size : Ast.module_ -> int
(** [String.length (encode m)]. *)

val write_instr : Buffer.t -> Ast.instr -> unit
(** Append the encoding of a single instruction (exposed for tests). *)
