(** Per-run resource governor: operator-policy budgets beyond fuel —
    wall-clock deadline, memory-growth cap and host-call budget.

    Attach one to an instance with [Interp.set_governor]; it is
    consulted only at the existing fuel-batch boundaries (deadline), at
    [memory.grow] (growth cap) and at host-call dispatch (call budget),
    so the uninstrumented hot path is untouched and an instance without
    a governor pays a single [option] match per straight-line run.

    Violations raise {!Error.Governor_limit} with stable codes
    ["deadline-exceeded"] / ["memory-growth-limit"] /
    ["host-call-budget"] (CLI exit codes 10/11/12). *)

type t

val create : ?deadline_ms:float -> ?max_grow_pages:int -> ?host_call_budget:int -> unit -> t
(** A governor with the given per-run budgets; omitted budgets are
    unlimited. The configuration is fixed; budgets are re-armable. *)

val arm : t -> unit
(** Reset all budgets to their configured values and start the deadline
    clock for a new run. Call once per run, before execution. *)

val expire : t -> unit
(** Force the deadline to be considered exceeded at the next batch
    check, regardless of the clock. Used by deterministic fault
    injection ([Fuzz.Faults]) to make deadline kills replayable. *)

val check_batch : t -> unit
(** Deadline check, called from the fuel-batch prologue of both tiers.
    Reads the monotonic clock only every few dozen batches.
    @raise Error.Governor_limit code ["deadline-exceeded"]. *)

val count_host_call : t -> unit
(** Debit one host call.
    @raise Error.Governor_limit code ["host-call-budget"] when the
    budget is already spent. *)

val governed_grow : t -> Memory.t -> int -> int
(** [governed_grow t mem delta] is [Memory.grow mem delta] guarded by
    the per-run growth budget: the budget is checked before delegating
    and debited only on success, so a grow rejected by any layer (budget,
    declared maximum, absolute cap) never partially commits pages.
    @raise Error.Governor_limit code ["memory-growth-limit"]. *)
