(** Evaluation of numeric instructions on runtime values. *)

open Ast

let type_error () = raise (Value.Trap "type mismatch in numeric operation")

let f32_un f v =
  match v with
  | Value.F32 bits -> Value.f32 (f (Value.F32_repr.to_float bits))
  | _ -> type_error ()

(* f32 NaN handling works directly on the stored bit pattern: routing a
   single-precision NaN through an OCaml [float] (double) and back
   quiets signalling NaNs and can lose payload bits, so sign-only
   operators (abs/neg/copysign) are pure bit operations and the
   remaining unary operators return the input NaN with the quiet bit
   forced — an arithmetic NaN with the payload preserved. *)
let f32_is_nan (bits : int32) =
  Int32.equal (Int32.logand bits 0x7F80_0000l) 0x7F80_0000l
  && not (Int32.equal (Int32.logand bits 0x007F_FFFFl) 0l)

let f32_quiet (bits : int32) = Int32.logor bits 0x0040_0000l
let f32_abs_bits (bits : int32) = Int32.logand bits Int32.max_int
let f32_neg_bits (bits : int32) = Int32.logxor bits Int32.min_int

let f32_copysign_bits (a : int32) (b : int32) =
  Int32.logor (Int32.logand a Int32.max_int) (Int32.logand b Int32.min_int)

let f64_un f v =
  match v with
  | Value.F64 x -> Value.F64 (f x)
  | _ -> type_error ()

let funop_impl = function
  | Abs -> abs_float
  | Neg -> (fun f -> -.f)
  | Sqrt -> sqrt
  | Ceil -> Float.ceil
  | Floor -> Float.floor
  | Trunc -> Value.F_ops.trunc
  | Nearest -> Value.F_ops.nearest

let sign_extend_i32 bits x =
  let shift = 32 - bits in
  Int32.shift_right (Int32.shift_left x shift) shift

let sign_extend_i64 bits x =
  let shift = 64 - bits in
  Int64.shift_right (Int64.shift_left x shift) shift

let eval_unop (op : unop) (v : Value.t) : Value.t =
  match op, v with
  | IUn (S32, Ext8S), Value.I32 x -> Value.I32 (sign_extend_i32 8 x)
  | IUn (S32, Ext16S), Value.I32 x -> Value.I32 (sign_extend_i32 16 x)
  | IUn (S64, Ext8S), Value.I64 x -> Value.I64 (sign_extend_i64 8 x)
  | IUn (S64, Ext16S), Value.I64 x -> Value.I64 (sign_extend_i64 16 x)
  | IUn (S64, Ext32S), Value.I64 x -> Value.I64 (sign_extend_i64 32 x)
  | IUn (S32, Clz), Value.I32 x -> Value.i32_of_int (Value.I32_ops.clz x)
  | IUn (S32, Ctz), Value.I32 x -> Value.i32_of_int (Value.I32_ops.ctz x)
  | IUn (S32, Popcnt), Value.I32 x -> Value.i32_of_int (Value.I32_ops.popcnt x)
  | IUn (S64, Clz), Value.I64 x -> Value.I64 (Int64.of_int (Value.I64_ops.clz x))
  | IUn (S64, Ctz), Value.I64 x -> Value.I64 (Int64.of_int (Value.I64_ops.ctz x))
  | IUn (S64, Popcnt), Value.I64 x -> Value.I64 (Int64.of_int (Value.I64_ops.popcnt x))
  | FUn (SF32, Abs), Value.F32 b -> Value.F32 (f32_abs_bits b)
  | FUn (SF32, Neg), Value.F32 b -> Value.F32 (f32_neg_bits b)
  | FUn (SF32, _), Value.F32 b when f32_is_nan b -> Value.F32 (f32_quiet b)
  | FUn (SF32, fop), (Value.F32 _ as v) -> f32_un (funop_impl fop) v
  | FUn (SF64, fop), (Value.F64 _ as v) -> f64_un (funop_impl fop) v
  | _ -> type_error ()

let ibinop_i32 (op : ibinop) (a : int32) (b : int32) : int32 =
  let open Value.I32_ops in
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | Mul -> Int32.mul a b
  | DivS -> div_s a b
  | DivU -> div_u a b
  | RemS -> rem_s a b
  | RemU -> rem_u a b
  | And -> Int32.logand a b
  | Or -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Shl -> shl a b
  | ShrS -> shr_s a b
  | ShrU -> shr_u a b
  | Rotl -> rotl a b
  | Rotr -> rotr a b

let ibinop_i64 (op : ibinop) (a : int64) (b : int64) : int64 =
  let open Value.I64_ops in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | DivS -> div_s a b
  | DivU -> div_u a b
  | RemS -> rem_s a b
  | RemU -> rem_u a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> shl a b
  | ShrS -> shr_s a b
  | ShrU -> shr_u a b
  | Rotl -> rotl a b
  | Rotr -> rotr a b

let fbinop_impl (op : fbinop) (a : float) (b : float) : float =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  | Min -> Value.F_ops.fmin a b
  | Max -> Value.F_ops.fmax a b
  | CopySign -> Value.F_ops.copysign a b

let eval_binop (op : binop) (a : Value.t) (b : Value.t) : Value.t =
  match op, a, b with
  | IBin (S32, iop), Value.I32 x, Value.I32 y -> Value.I32 (ibinop_i32 iop x y)
  | IBin (S64, iop), Value.I64 x, Value.I64 y -> Value.I64 (ibinop_i64 iop x y)
  | FBin (SF32, CopySign), Value.F32 x, Value.F32 y -> Value.F32 (f32_copysign_bits x y)
  | FBin (SF32, fop), Value.F32 x, Value.F32 y ->
    Value.f32 (fbinop_impl fop (Value.F32_repr.to_float x) (Value.F32_repr.to_float y))
  | FBin (SF64, fop), Value.F64 x, Value.F64 y -> Value.F64 (fbinop_impl fop x y)
  | _ -> type_error ()

let eval_testop (op : testop) (v : Value.t) : Value.t =
  match op, v with
  | IEqz S32, Value.I32 x -> Value.i32_of_bool (Int32.equal x 0l)
  | IEqz S64, Value.I64 x -> Value.i32_of_bool (Int64.equal x 0L)
  | _ -> type_error ()

let irelop_impl_i32 (op : irelop) (a : int32) (b : int32) : bool =
  let open Value.I32_ops in
  match op with
  | Eq -> Int32.equal a b
  | Ne -> not (Int32.equal a b)
  | LtS -> Int32.compare a b < 0
  | LtU -> lt_u a b
  | GtS -> Int32.compare a b > 0
  | GtU -> gt_u a b
  | LeS -> Int32.compare a b <= 0
  | LeU -> le_u a b
  | GeS -> Int32.compare a b >= 0
  | GeU -> ge_u a b

let irelop_impl_i64 (op : irelop) (a : int64) (b : int64) : bool =
  let open Value.I64_ops in
  match op with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | LtS -> Int64.compare a b < 0
  | LtU -> lt_u a b
  | GtS -> Int64.compare a b > 0
  | GtU -> gt_u a b
  | LeS -> Int64.compare a b <= 0
  | LeU -> le_u a b
  | GeS -> Int64.compare a b >= 0
  | GeU -> ge_u a b

let frelop_impl (op : frelop) (a : float) (b : float) : bool =
  match op with
  | FEq -> a = b
  | FNe -> a <> b
  | FLt -> a < b
  | FGt -> a > b
  | FLe -> a <= b
  | FGe -> a >= b

let eval_relop (op : relop) (a : Value.t) (b : Value.t) : Value.t =
  match op, a, b with
  | IRel (S32, iop), Value.I32 x, Value.I32 y -> Value.i32_of_bool (irelop_impl_i32 iop x y)
  | IRel (S64, iop), Value.I64 x, Value.I64 y -> Value.i32_of_bool (irelop_impl_i64 iop x y)
  | FRel (SF32, fop), Value.F32 x, Value.F32 y ->
    Value.i32_of_bool (frelop_impl fop (Value.F32_repr.to_float x) (Value.F32_repr.to_float y))
  | FRel (SF64, fop), Value.F64 x, Value.F64 y -> Value.i32_of_bool (frelop_impl fop x y)
  | _ -> type_error ()

let eval_cvtop (op : cvtop) (v : Value.t) : Value.t =
  let open Value in
  match op, v with
  | I32WrapI64, I64 x -> I32 (Int64.to_int32 x)
  | I32TruncF32S, F32 b -> I32 (Cvt.i32_trunc_s (F32_repr.to_float b))
  | I32TruncF32U, F32 b -> I32 (Cvt.i32_trunc_u (F32_repr.to_float b))
  | I32TruncF64S, F64 f -> I32 (Cvt.i32_trunc_s f)
  | I32TruncF64U, F64 f -> I32 (Cvt.i32_trunc_u f)
  | I64ExtendI32S, I32 x -> I64 (Int64.of_int32 x)
  | I64ExtendI32U, I32 x -> I64 (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)
  | I64TruncF32S, F32 b -> I64 (Cvt.i64_trunc_s (F32_repr.to_float b))
  | I64TruncF32U, F32 b -> I64 (Cvt.i64_trunc_u (F32_repr.to_float b))
  | I64TruncF64S, F64 f -> I64 (Cvt.i64_trunc_s f)
  | I64TruncF64U, F64 f -> I64 (Cvt.i64_trunc_u f)
  | F32ConvertI32S, I32 x -> f32 (Int32.to_float x)
  | F32ConvertI32U, I32 x -> f32 (Cvt.u32_to_float x)
  | F32ConvertI64S, I64 x -> f32 (Int64.to_float x)
  | F32ConvertI64U, I64 x -> f32 (Cvt.u64_to_float x)
  | F32DemoteF64, F64 f -> f32 f
  | F64ConvertI32S, I32 x -> F64 (Int32.to_float x)
  | F64ConvertI32U, I32 x -> F64 (Cvt.u32_to_float x)
  | F64ConvertI64S, I64 x -> F64 (Int64.to_float x)
  | F64ConvertI64U, I64 x -> F64 (Cvt.u64_to_float x)
  | F64PromoteF32, F32 b -> F64 (F32_repr.to_float b)
  | I32ReinterpretF32, F32 b -> I32 b
  | I64ReinterpretF64, F64 f -> I64 (Int64.bits_of_float f)
  | F32ReinterpretI32, I32 x -> F32 x
  | F64ReinterpretI64, I64 x -> F64 (Int64.float_of_bits x)
  | I32TruncSatF32S, F32 b -> I32 (Cvt.i32_trunc_sat_s (F32_repr.to_float b))
  | I32TruncSatF32U, F32 b -> I32 (Cvt.i32_trunc_sat_u (F32_repr.to_float b))
  | I32TruncSatF64S, F64 f -> I32 (Cvt.i32_trunc_sat_s f)
  | I32TruncSatF64U, F64 f -> I32 (Cvt.i32_trunc_sat_u f)
  | I64TruncSatF32S, F32 b -> I64 (Cvt.i64_trunc_sat_s (F32_repr.to_float b))
  | I64TruncSatF32U, F32 b -> I64 (Cvt.i64_trunc_sat_u (F32_repr.to_float b))
  | I64TruncSatF64S, F64 f -> I64 (Cvt.i64_trunc_sat_s f)
  | I64TruncSatF64U, F64 f -> I64 (Cvt.i64_trunc_sat_u f)
  | _ -> type_error ()

(** {1 Compile-time operator tables (tier 1)}

    Per-operator closures with the operator dispatch hoisted out: the
    closure compiler ({!Tier1}) resolves each operator once at compile
    time instead of matching per execution. The semantics are by
    construction those of the [*_impl] dispatchers above — in
    particular shift/rotate counts are masked modulo the bit width
    through the same {!Value.I32_ops} / {!Value.I64_ops} functions, and
    trapping operators (division, remainder) trap identically. *)

let ibinop_i32_fn : ibinop -> int32 -> int32 -> int32 = function
  | Add -> Int32.add
  | Sub -> Int32.sub
  | Mul -> Int32.mul
  | DivS -> Value.I32_ops.div_s
  | DivU -> Value.I32_ops.div_u
  | RemS -> Value.I32_ops.rem_s
  | RemU -> Value.I32_ops.rem_u
  | And -> Int32.logand
  | Or -> Int32.logor
  | Xor -> Int32.logxor
  | Shl -> Value.I32_ops.shl
  | ShrS -> Value.I32_ops.shr_s
  | ShrU -> Value.I32_ops.shr_u
  | Rotl -> Value.I32_ops.rotl
  | Rotr -> Value.I32_ops.rotr

let ibinop_i64_fn : ibinop -> int64 -> int64 -> int64 = function
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Mul -> Int64.mul
  | DivS -> Value.I64_ops.div_s
  | DivU -> Value.I64_ops.div_u
  | RemS -> Value.I64_ops.rem_s
  | RemU -> Value.I64_ops.rem_u
  | And -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Shl -> Value.I64_ops.shl
  | ShrS -> Value.I64_ops.shr_s
  | ShrU -> Value.I64_ops.shr_u
  | Rotl -> Value.I64_ops.rotl
  | Rotr -> Value.I64_ops.rotr

let fbinop_fn : fbinop -> float -> float -> float = function
  | FAdd -> ( +. )
  | FSub -> ( -. )
  | FMul -> ( *. )
  | FDiv -> ( /. )
  | Min -> Value.F_ops.fmin
  | Max -> Value.F_ops.fmax
  | CopySign -> Value.F_ops.copysign

let irelop_i32_fn : irelop -> int32 -> int32 -> bool = function
  | Eq -> Int32.equal
  | Ne -> (fun a b -> not (Int32.equal a b))
  | LtS -> (fun a b -> Int32.compare a b < 0)
  | LtU -> Value.I32_ops.lt_u
  | GtS -> (fun a b -> Int32.compare a b > 0)
  | GtU -> Value.I32_ops.gt_u
  | LeS -> (fun a b -> Int32.compare a b <= 0)
  | LeU -> Value.I32_ops.le_u
  | GeS -> (fun a b -> Int32.compare a b >= 0)
  | GeU -> Value.I32_ops.ge_u

let irelop_i64_fn : irelop -> int64 -> int64 -> bool = function
  | Eq -> Int64.equal
  | Ne -> (fun a b -> not (Int64.equal a b))
  | LtS -> (fun a b -> Int64.compare a b < 0)
  | LtU -> Value.I64_ops.lt_u
  | GtS -> (fun a b -> Int64.compare a b > 0)
  | GtU -> Value.I64_ops.gt_u
  | LeS -> (fun a b -> Int64.compare a b <= 0)
  | LeU -> Value.I64_ops.le_u
  | GeS -> (fun a b -> Int64.compare a b >= 0)
  | GeU -> Value.I64_ops.ge_u

let frelop_fn : frelop -> float -> float -> bool = function
  | FEq -> (fun (a : float) b -> a = b)
  | FNe -> (fun (a : float) b -> a <> b)
  | FLt -> (fun (a : float) b -> a < b)
  | FGt -> (fun (a : float) b -> a > b)
  | FLe -> (fun (a : float) b -> a <= b)
  | FGe -> (fun (a : float) b -> a >= b)

(** {1 Int-domain i32 operators (tier 1)}

    The closure compiler represents i32 values as sign-extended native
    ints ("canonical form": bits 31..62 replicate bit 31), which makes
    the hot integer paths allocation-free. These operators take and
    return canonical ints and replicate {!Value.I32_ops} semantics bit
    for bit — same masked shift/rotate counts, same trap conditions and
    messages — as checked by the numeric regression tests and the
    tier-parity fuzz oracle. *)

(** Sign-extend the low 32 bits into canonical form. *)
let norm32 (x : int) : int = (x lsl 31) asr 31

(** The unsigned value of a canonical i32. *)
let uns32 (x : int) : int = x land 0xFFFFFFFF

let i32_min = -0x8000_0000

let ibinop_i32_int : ibinop -> int -> int -> int = function
  | Add -> fun a b -> norm32 (a + b)
  | Sub -> fun a b -> norm32 (a - b)
  | Mul -> fun a b -> norm32 (a * b)
  | DivS ->
    fun a b ->
      if b = 0 then raise (Value.Trap "integer divide by zero")
      else if a = i32_min && b = -1 then raise (Value.Trap "integer overflow")
      else a / b
  | DivU ->
    fun a b ->
      if b = 0 then raise (Value.Trap "integer divide by zero")
      else norm32 (uns32 a / uns32 b)
  | RemS ->
    fun a b ->
      if b = 0 then raise (Value.Trap "integer divide by zero")
      else a mod b (* i32_min mod -1 is 0, as Int32.rem; no trap *)
  | RemU ->
    fun a b ->
      if b = 0 then raise (Value.Trap "integer divide by zero")
      else norm32 (uns32 a mod uns32 b)
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl -> fun a b -> norm32 (a lsl (b land 31))
  | ShrS -> fun a b -> a asr (b land 31)
  | ShrU -> fun a b -> norm32 (uns32 a lsr (b land 31))
  | Rotl ->
    fun a b ->
      let n = b land 31 in
      let u = uns32 a in
      norm32 ((u lsl n) lor (u lsr (32 - n)))
  | Rotr ->
    fun a b ->
      let n = b land 31 in
      let u = uns32 a in
      norm32 ((u lsr n) lor (u lsl (32 - n)))

let irelop_i32_int : irelop -> int -> int -> bool = function
  | Eq -> fun (a : int) b -> a = b
  | Ne -> fun (a : int) b -> a <> b
  | LtS -> fun (a : int) b -> a < b
  | LtU -> fun a b -> uns32 a < uns32 b
  | GtS -> fun (a : int) b -> a > b
  | GtU -> fun a b -> uns32 a > uns32 b
  | LeS -> fun (a : int) b -> a <= b
  | LeU -> fun a b -> uns32 a <= uns32 b
  | GeS -> fun (a : int) b -> a >= b
  | GeU -> fun a b -> uns32 a >= uns32 b
