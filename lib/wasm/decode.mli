(** Parsing of the WebAssembly binary format (MVP, version 1). *)

exception Decode_error of string

val decode : string -> Ast.module_
(** Parse a complete binary module. Custom sections are skipped.
    @raise Decode_error on malformed input. *)
