(** Parsing of the WebAssembly binary format (MVP, version 1).

    Decoding is total over arbitrary byte strings: every failure raises
    the structured {!Decode_error} (phase, stable code, byte offset) —
    never [Stack_overflow], [Invalid_argument] or an uncaught [Failure].
    Attacker-controlled counts are clamped against the remaining input
    before allocation; nesting depth and per-function local counts are
    bounded by {!limits}. *)

exception Decode_error of Error.t
(** Rebinding of {!Error.Decode_error}: matching either name catches the
    same exception. *)

type limits = {
  max_nesting : int;  (** deepest block/loop/if nesting inside one body *)
  max_locals : int;  (** declared locals per function *)
  max_items : int;  (** hard cap on any single vector length *)
}

val default_limits : limits

val decode : ?limits:limits -> string -> Ast.module_
(** Parse a complete binary module. Custom sections are skipped.
    @raise Decode_error on malformed input. *)
