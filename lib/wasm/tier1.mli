(** Tier-1 execution: closure compilation of pre-decoded function
    bodies, with the tier-0 dispatch loop as reference and deopt path.

    A compiled body implements {!Interp.compiled_body} — the exact
    [exec_body] calling convention (locals in, results at the frame
    base, same exceptions) — so tier-0 and tier-1 frames interleave
    freely, and fuel/step/profile charging matches tier 0 boundary for
    boundary. *)

val default_threshold : int
(** Calls observed on tier 0 before a function is compiled when no
    explicit threshold is given (and for [WASABI_TIER=on]). *)

val compile : Interp.instance -> int -> Interp.compiled_body option
(** [compile inst fid] closure-compiles function [fid] of [inst];
    [None] when the body uses a shape the compiler does not support
    (the function then stays on tier 0 permanently). *)

val policy : ?threshold:int -> unit -> Interp.tier_policy
(** A tier-up policy compiling with {!compile} after [threshold]
    tier-0 calls (clamped to ≥ 1; default {!default_threshold}). *)

val enable : ?threshold:int -> Interp.instance -> unit
(** Install a {!policy} on the instance (resets all tier state). *)

val disable : Interp.instance -> unit
(** Remove the tier policy and reset every function to tier 0. *)

val compile_all : Interp.instance -> int
(** Eagerly compile every body, marking unsupported ones so they stay
    on tier 0; returns the number compiled. Installs a threshold-1
    policy if none is present. *)

val env_threshold : unit -> int option
(** The tier-up threshold requested by the [WASABI_TIER] environment
    variable: [None] when unset / ["0"] / ["off"] / ["none"] (or
    unparseable), {!default_threshold} for ["on"] / ["default"], the
    integer itself for a positive number. *)

val enable_from_env : Interp.instance -> unit
(** {!enable} with {!env_threshold}'s value, a no-op when the
    environment does not request tiering. *)
