(** WebAssembly types (MVP): the four primitive value types, function
    types, and the types of module entities. *)

type num_type =
  | I32T
  | I64T
  | F32T
  | F64T

type value_type = num_type
(** In the MVP, value types are exactly the numeric types. *)

(** Integer width, used to index integer operators. *)
type isize = S32 | S64

(** Float width, used to index float operators. *)
type fsize = SF32 | SF64

val num_type_of_isize : isize -> num_type
val num_type_of_fsize : fsize -> num_type

type func_type = {
  params : value_type list;
  results : value_type list;
}

type limits = {
  lim_min : int;
  lim_max : int option;
}

type mutability = Immutable | Mutable

type global_type = {
  content : value_type;
  mutability : mutability;
}

type table_type = { tbl_limits : limits }
(** MVP tables always hold function references. *)

type memory_type = { mem_limits : limits }

val func_type : value_type list -> value_type list -> func_type
val string_of_num_type : num_type -> string
val string_of_value_type : value_type -> string
val string_of_func_type : func_type -> string
val equal_func_type : func_type -> func_type -> bool

val byte_width : value_type -> int
(** Size in bytes of a value of the given type. *)

val page_size : int
(** The Wasm page size: 64 KiB. *)
